module treep

go 1.24
