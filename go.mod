module treep

go 1.24

// Dependency-free by design. The batched UDP I/O (recvmmsg/sendmmsg)
// is implemented directly over syscall.RawConn in internal/udptransport
// instead of pinning golang.org/x/net (whose ipv4.PacketConn wraps the
// same two syscalls); DESIGN.md §14 records the trade-off, and the CI
// darwin cross-compile step proves the non-Linux fallback builds.
