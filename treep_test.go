package treep

import (
	"testing"
	"time"
)

func TestSimNetworkLookup(t *testing.T) {
	nw, err := NewSimNetwork(SimOptions{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algo{AlgoG, AlgoNG, AlgoNGSA} {
		res, err := nw.Lookup(3, nw.NodeID(77), algo)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != LookupFound || res.Best.ID != nw.NodeID(77) {
			t.Fatalf("%v: %+v", algo, res)
		}
	}
}

func TestSimNetworkValidation(t *testing.T) {
	if _, err := NewSimNetwork(SimOptions{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
}

func TestSimNetworkDHT(t *testing.T) {
	nw, err := NewSimNetwork(SimOptions{N: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Put(5, []byte("greeting"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := nw.Get(60, []byte("greeting"))
	if err != nil || string(v) != "hello" {
		t.Fatalf("get: %q %v", v, err)
	}
}

func TestSimNetworkVersionedStore(t *testing.T) {
	nw, err := NewSimNetwork(SimOptions{N: 80, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := nw.PutIf(5, []byte("cfg"), []byte("one"), AnyVersion)
	if err != nil || v1 == 0 {
		t.Fatalf("initial PutIf: v=%d err=%v", v1, err)
	}
	rec, err := nw.GetRecord(33, []byte("cfg"))
	if err != nil || string(rec.Value) != "one" || rec.Version != v1 {
		t.Fatalf("GetRecord: %+v %v (want version %d)", rec, err, v1)
	}
	// A stale base must conflict; the read version must succeed.
	if _, err := nw.PutIf(40, []byte("cfg"), []byte("stale"), AnyVersion); err != ErrConflict {
		t.Fatalf("stale PutIf: %v", err)
	}
	v2, err := nw.PutIf(40, []byte("cfg"), []byte("two"), rec.Version)
	if err != nil || v2 <= v1 {
		t.Fatalf("CAS PutIf: v=%d err=%v", v2, err)
	}
	if v, err := nw.Get(7, []byte("cfg")); err != nil || string(v) != "two" {
		t.Fatalf("final read: %q %v", v, err)
	}
	if _, err := nw.Get(7, []byte("missing")); err != ErrNotFound {
		t.Fatalf("missing key: %v", err)
	}
}

// TestSimNetworkStorageScenario seeds records through the public scenario
// API, churns the overlay, and checks the engine's durability verdict and
// an end-to-end read afterwards.
func TestSimNetworkStorageScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	nw, err := NewSimNetwork(SimOptions{N: 200, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	res := nw.RunScenario(
		StoreRecordsPhase{Count: 50},
		ChurnPhase{For: 10 * time.Second, JoinRate: 2, LeaveRate: 2},
		SettlePhase{For: 14 * time.Second},
	)
	for _, v := range res.Final {
		t.Errorf("violation: %s", v)
	}
	if len(res.Final) != 0 {
		t.Fatal("storage scenario left violations")
	}
	// Seeded records are reachable through the ordinary public read path.
	origin := -1
	for i := 0; i < nw.N(); i++ {
		if nw.Alive(i) {
			origin = i
			break
		}
	}
	if v, err := nw.Get(origin, []byte("rec-000007")); err != nil || string(v) != "v-rec-000007" {
		t.Fatalf("seeded record unreadable after churn: %q %v", v, err)
	}
}

func TestSimNetworkDiscovery(t *testing.T) {
	nw, err := NewSimNetwork(SimOptions{N: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := nw.Directory(4)
	err = dir.Advertise(Resource{
		Name: "gpu-1", Attrs: map[string]string{"gpu": "a100"},
		Capacity: 4, Load: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := nw.Directory(40).Discover("gpu", "a100")
	if err != nil || len(rs) != 1 {
		t.Fatalf("discover: %v %v", rs, err)
	}
	best, err := nw.Directory(70).PickLeastLoaded("gpu", "a100")
	if err != nil || best.Name != "gpu-1" {
		t.Fatalf("pick: %+v %v", best, err)
	}
}

func TestSimNetworkKillAndHeal(t *testing.T) {
	nw, err := NewSimNetwork(SimOptions{N: 150, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	killed := nw.KillRandomFraction(0.2)
	if killed == 0 {
		t.Fatal("nothing killed")
	}
	nw.Run(20 * time.Second)
	ok, total := 0, 0
	for i := 0; i < 40; i++ {
		origin := (i * 7) % nw.N()
		target := (i*13 + 3) % nw.N()
		if !nw.Alive(origin) || !nw.Alive(target) {
			continue
		}
		total++
		res, err := nw.Lookup(origin, nw.NodeID(target), AlgoG)
		if err == nil && res.Status == LookupFound && res.Best.ID == nw.NodeID(target) {
			ok++
		}
	}
	if total == 0 || ok < total*3/4 {
		t.Fatalf("after heal: %d/%d lookups ok", ok, total)
	}
}

func TestSimNetworkLevels(t *testing.T) {
	nw, err := NewSimNetwork(SimOptions{N: 120, Seed: 5, Children: CapacityChildren(2, 16)})
	if err != nil {
		t.Fatal(err)
	}
	levels := nw.Levels()
	if len(levels) < 2 {
		t.Fatalf("no hierarchy: %v", levels)
	}
	if levels[0] == 0 {
		t.Fatal("no level-0 peers?")
	}
}

// TestSimNetworkScenario drives the public scenario API: live churn with
// dynamic joins, then asserts every runtime invariant checker passes and
// the overlay (including scenario-joined peers) still resolves lookups
// and serves the DHT.
func TestSimNetworkScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	nw, err := NewSimNetwork(SimOptions{N: 150, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	before := nw.N()
	res := nw.RunScenario(
		ChurnPhase{For: 12 * time.Second, JoinRate: 2, LeaveRate: 2},
		SettlePhase{For: 14 * time.Second},
	)
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn injected nothing: %+v", res)
	}
	if nw.N() != before+res.Joins {
		t.Fatalf("population %d, want %d", nw.N(), before+res.Joins)
	}
	if len(res.Final) != 0 {
		for _, v := range res.Final {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d invariant violations after settle", len(res.Final))
	}
	if v := nw.CheckInvariants(); len(v) != 0 {
		t.Fatalf("CheckInvariants disagrees with scenario result: %v", v)
	}
	// A scenario-joined peer is a first-class citizen: resolvable by
	// lookup and attached to the DHT layer.
	joined := before // first spawned node's index
	if !nw.Alive(joined) {
		t.Skip("first joined peer was churned out again")
	}
	origin := -1
	for i := 0; i < before; i++ {
		if nw.Alive(i) {
			origin = i
			break
		}
	}
	if origin < 0 {
		t.Fatal("no original peer survived")
	}
	lr, err := nw.Lookup(origin, nw.NodeID(joined), AlgoG)
	if err != nil || lr.Status != LookupFound || lr.Best.ID != nw.NodeID(joined) {
		t.Fatalf("joined peer not resolvable: %+v %v", lr, err)
	}
	if err := nw.Put(joined, []byte("spawned"), []byte("ok")); err != nil {
		t.Fatalf("joined peer DHT put: %v", err)
	}
	if v, err := nw.Get(origin, []byte("spawned")); err != nil || string(v) != "ok" {
		t.Fatalf("get via original peer: %q %v", v, err)
	}
}

func TestUDPNodePair(t *testing.T) {
	a, err := StartUDPNode(UDPOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := StartUDPNode(UDPOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.PeerCount() > 0 && b.PeerCount() > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if a.PeerCount() == 0 || b.PeerCount() == 0 {
		t.Fatal("UDP pair never connected")
	}
	res, err := b.Lookup(a.ID(), AlgoG)
	if err != nil || res.Status != LookupFound {
		t.Fatalf("lookup: %+v %v", res, err)
	}

	// The storage stack runs over the same pair of real sockets.
	if err := a.Put([]byte("pair-key"), []byte("pair-value")); err != nil {
		t.Fatalf("put over UDP: %v", err)
	}
	if v, err := b.Get([]byte("pair-key")); err != nil || string(v) != "pair-value" {
		t.Fatalf("get over UDP: %q %v", v, err)
	}
}
