package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets each validation test re-execute this test binary as
// treep-bench itself: with the env marker set, the process runs main()
// and exits through treep-bench's real exit paths, so the tests observe
// the actual process exit codes users get.
func TestMain(m *testing.M) {
	if os.Getenv("TREEP_BENCH_UNDER_TEST") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runBench re-executes the test binary as treep-bench with args and
// returns combined output plus the process exit code.
func runBench(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TREEP_BENCH_UNDER_TEST=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v", args, err)
	}
	return string(out), ee.ExitCode()
}

// TestConflictingFlagsExit2 pins the CLI contract: every flag conflict,
// mode mismatch, and malformed operand exits with status 2 and prints
// the usage synopsis, so scripts can distinguish "you called it wrong"
// from a failed run (exit 1).
func TestConflictingFlagsExit2(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"scale-and-compare", []string{"-scale", "500", "-compare", "chord"}},
		{"storage-without-scale", []string{"-storage"}},
		{"zipf-without-scale", []string{"-zipf"}},
		{"shards-without-scale", []string{"-shards", "2"}},
		{"budget-without-scale", []string{"-budget", "1m"}},
		{"bad-population", []string{"-scale", "abc"}},
		{"bad-shard-count", []string{"-scale", "100", "-shards", "-3"}},
		{"stray-operand", []string{"extra"}},
		{"udp-and-scale", []string{"-udp", "-scale", "500"}},
		{"udp-and-compare", []string{"-udp", "-compare", "chord"}},
		{"udp-variant-without-udp", []string{"-udp-variant", "batch"}},
		{"udp-for-without-udp", []string{"-udp-for", "2s"}},
		{"udp-workers-without-udp", []string{"-udp-workers", "4"}},
		{"bad-udp-variant", []string{"-udp", "-udp-variant", "fast"}},
		{"udp-one-node", []string{"-udp", "-n", "1"}},
		{"udp-zero-workers", []string{"-udp", "-udp-workers", "0"}},
		{"udp-negative-window", []string{"-udp", "-udp-for", "-1s"}},
		{"udp-rate-without-udp", []string{"-udp-rate", "100"}},
		{"udp-negative-rate", []string{"-udp", "-udp-rate", "-5"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runBench(t, tc.args...)
			if code != 2 {
				t.Errorf("%v exited %d, want 2\noutput:\n%s", tc.args, code, out)
			}
			if !strings.Contains(out, "Flags:") {
				t.Errorf("%v did not print usage\noutput:\n%s", tc.args, out)
			}
		})
	}
}

// TestScaleZipfRow runs a real (tiny) -scale -zipf invocation end to end
// and checks the exported table carries the zipf workload row with the
// keying fields benchguard compares on.
func TestScaleZipfRow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real scale point")
	}
	dir := t.TempDir()
	out, code := runBench(t, "-scale", "80", "-zipf", "-lookups", "5", "-out", dir)
	if code != 0 {
		t.Fatalf("scale run exited %d\noutput:\n%s", code, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "scale-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Workload string  `json:"workload"`
		N        int     `json:"n"`
		Shards   int     `json:"shards"`
		FailPct  float64 `json:"fail_pct"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	var zipf, churn bool
	for _, r := range rows {
		switch r.Workload {
		case "zipf":
			zipf = true
			if r.N != 80 || r.Shards != 0 {
				t.Errorf("zipf row keyed (n=%d, shards=%d), want (80, 0)", r.N, r.Shards)
			}
			if r.FailPct != 0 {
				t.Errorf("zipf row read-miss %.2f%%, want 0", r.FailPct)
			}
		case "":
			churn = true
		}
	}
	if !zipf || !churn {
		t.Errorf("exported rows missing workloads (zipf=%v churn=%v):\n%s", zipf, churn, data)
	}
}

// TestUDPBenchRow runs a real (tiny) -udp invocation end to end: a
// 3-node loopback cluster, one worker, a short window — and checks the
// exported table carries the udp workload row keyed the way benchguard
// compares it, with traffic actually measured.
func TestUDPBenchRow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real UDP cluster")
	}
	dir := t.TempDir()
	out, code := runBench(t, "-udp", "-n", "3", "-udp-for", "500ms",
		"-udp-workers", "1", "-udp-records", "2", "-udp-variant", "batch", "-out", dir)
	if code != 0 {
		t.Fatalf("udp run exited %d\noutput:\n%s", code, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "udp-bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Workload string  `json:"workload"`
		N        int     `json:"n"`
		Shards   int     `json:"shards"`
		Events   uint64  `json:"events"`
		FailPct  float64 `json:"fail_pct"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("udp-bench.json has %d rows, want 1 (batch only):\n%s", len(rows), data)
	}
	r := rows[0]
	if r.Workload != "udp" || r.N != 3 || r.Shards != 0 {
		t.Errorf("udp row keyed (%q, n=%d, shards=%d), want (\"udp\", 3, 0)", r.Workload, r.N, r.Shards)
	}
	if r.Events == 0 {
		t.Errorf("udp row measured zero datagrams:\n%s", data)
	}
	if r.FailPct > 50 {
		t.Errorf("udp row read-miss %.1f%%: cluster unhealthy\noutput:\n%s", r.FailPct, out)
	}
}
