package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"treep/internal/experiment"
	"treep/internal/proto"
	"treep/internal/scenario"
	"treep/internal/simrt"
)

// ScalePoint is one row of the machine-generated substrate scale table
// (EXPERIMENTS.md): one workload at one population, with the three
// quantities the scale claims are judged on — events/s must stay flat as
// N grows, allocs/run and peak heap must grow linearly at worst.
type ScalePoint struct {
	// Workload identifies the scenario: "" (the canonical churn timeline,
	// kept empty for baseline compatibility) or "dht" (the
	// put/get-under-churn storage workload).
	Workload   string  `json:"workload,omitempty"`
	N          int     `json:"n"`
	WallSec    float64 `json:"wall_sec"`
	Events     uint64  `json:"events"`
	EventsPerS float64 `json:"events_per_sec"`
	// AllocsRun is the number of heap allocations over the run (the
	// machine-independent cost metric; runtime.MemStats.Mallocs delta).
	AllocsRun uint64 `json:"allocs_run"`
	// PeakHeapBytes is the maximum live heap observed while the scenario
	// ran (sampled HeapAlloc).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// FailPct is the workload's failure metric: failed-lookup percentage
	// for churn, read-miss percentage for dht.
	FailPct    float64 `json:"fail_pct"`
	Violations float64 `json:"violations_end"`
}

// scaleChurnPhases is the canonical churn timeline used at every scale
// point — identical to BenchmarkScenarioChurn* in bench_test.go so the
// table and the CI benchmarks track the same workload.
func scaleChurnPhases() []scenario.Phase {
	return []scenario.Phase{
		scenario.Churn{For: 15 * time.Second, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 12 * time.Second},
	}
}

// heapWatcher samples HeapAlloc until stopped and reports the maximum.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		// ReadMemStats stops the world; a 250 ms cadence keeps the peak
		// estimate honest without perturbing the run it is measuring.
		var ms runtime.MemStats
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.peak.Load() {
				w.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *heapWatcher) Stop() uint64 {
	close(w.stop)
	<-w.done
	return w.peak.Load()
}

// dhtChurnPhases mirrors BenchmarkDHTChurn*'s canonical storage timeline:
// seed records, run a put/get mix with concurrent churn, settle.
func dhtChurnPhases() []scenario.Phase {
	return []scenario.Phase{
		scenario.Settle{For: 8 * time.Second},
		scenario.StoreRecords{Count: 300},
		scenario.StorageWorkload{For: 15 * time.Second, PutRate: 5, GetRate: 10, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 10 * time.Second},
	}
}

// runStoragePoint plays the storage workload at one population and
// returns its scale row (workload "dht").
func runStoragePoint(n int) ScalePoint {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	w := watchHeap()
	start := time.Now()

	c := simrt.New(simrt.Options{N: n, Seed: 1, Bulk: true})
	st := scenario.NewStorage(3)
	st.AttachAll(c)
	c.StartAll()
	res := scenario.Run(c, scenario.Options{
		Checkers:    append(scenario.AllCheckers(), scenario.StorageCheckers(0.99)...),
		Storage:     st,
		FinalGrace:  3 * time.Second,
		FinalChecks: 4,
	}, dhtChurnPhases()...)

	wall := time.Since(start)
	peak := w.Stop()
	runtime.ReadMemStats(&ms)

	p := ScalePoint{
		Workload:      "dht",
		N:             n,
		WallSec:       wall.Seconds(),
		Events:        res.Events,
		EventsPerS:    float64(res.Events) / wall.Seconds(),
		AllocsRun:     ms.Mallocs - mallocs0,
		PeakHeapBytes: peak,
		Violations:    float64(len(res.Final)),
	}
	if st.Gets > 0 {
		p.FailPct = 100 * float64(st.GetMiss) / float64(st.Gets)
	}
	return p
}

// runScale executes the churn scenario (and, with storage, the dht
// workload) once per population and writes the scale table as CSV + JSON
// under outDir.
func runScale(spec, outDir string, lookups int, storage bool) {
	var ns []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			fail("bad -scale population %q", f)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		fail("-scale needs at least one population")
	}

	fmt.Printf("# Substrate scale — churn 15s@2+2, settle 12s, %d lookups/phase, seed 1\n\n", lookups)
	fmt.Printf("| %8s | %7s | %9s | %9s | %11s | %9s | %6s | %10s |\n",
		"workload", "N", "wall", "events/s", "allocs/run", "peak heap", "fail%", "violations")

	points := make([]ScalePoint, 0, len(ns))
	var ms runtime.MemStats
	for _, n := range ns {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		mallocs0 := ms.Mallocs
		w := watchHeap()
		start := time.Now()
		res := experiment.RunScenario(experiment.ScenarioOptions{
			N:               n,
			Seeds:           []int64{1},
			Phases:          scaleChurnPhases(),
			LookupsPerPhase: lookups,
			Parallel:        1,
		})
		wall := time.Since(start)
		peak := w.Stop()
		runtime.ReadMemStats(&ms)

		p := ScalePoint{
			N:             n,
			WallSec:       wall.Seconds(),
			AllocsRun:     ms.Mallocs - mallocs0,
			PeakHeapBytes: peak,
		}
		if r := res.Trials[0].Result; r != nil {
			p.Events = r.Events
			p.EventsPerS = float64(r.Events) / wall.Seconds()
		}
		fr := res.FailRateByPhase(proto.AlgoG)
		if len(fr.Y) > 0 {
			p.FailPct = fr.Y[len(fr.Y)-1]
		}
		vi := res.ViolationsByPhase()
		if len(vi.Y) > 0 {
			p.Violations = vi.Y[len(vi.Y)-1]
		}
		points = append(points, p)
		printScaleRow(p)
		if storage {
			sp := runStoragePoint(n)
			points = append(points, sp)
			printScaleRow(sp)
		}
	}

	if err := writeScale(outDir, points); err != nil {
		fatal("writing scale records: %v", err)
	}
	fmt.Printf("\nrecords: %s, %s\n",
		filepath.Join(outDir, "scale-churn.csv"), filepath.Join(outDir, "scale-churn.json"))
}

// printScaleRow prints one table row (workload "" renders as churn).
func printScaleRow(p ScalePoint) {
	wl := p.Workload
	if wl == "" {
		wl = "churn"
	}
	fmt.Printf("| %8s | %7d | %8.1fs | %9.0f | %11d | %8.1fM | %6.1f | %10.1f |\n",
		wl, p.N, p.WallSec, p.EventsPerS, p.AllocsRun, float64(p.PeakHeapBytes)/(1<<20), p.FailPct, p.Violations)
}

// writeScale exports the scale table as CSV + JSON.
func writeScale(outDir string, points []ScalePoint) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(outDir, "scale-churn.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(jf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}

	cf, err := os.Create(filepath.Join(outDir, "scale-churn.csv"))
	if err != nil {
		return err
	}
	cw := csv.NewWriter(cf)
	_ = cw.Write([]string{"workload", "n", "wall_sec", "events", "events_per_sec", "allocs_run", "peak_heap_bytes", "fail_pct", "violations_end"})
	for _, p := range points {
		wl := p.Workload
		if wl == "" {
			wl = "churn"
		}
		_ = cw.Write([]string{
			wl,
			strconv.Itoa(p.N),
			strconv.FormatFloat(p.WallSec, 'f', 3, 64),
			strconv.FormatUint(p.Events, 10),
			strconv.FormatFloat(p.EventsPerS, 'f', 1, 64),
			strconv.FormatUint(p.AllocsRun, 10),
			strconv.FormatUint(p.PeakHeapBytes, 10),
			strconv.FormatFloat(p.FailPct, 'f', 2, 64),
			strconv.FormatFloat(p.Violations, 'f', 2, 64),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
