package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"treep/internal/core"
	"treep/internal/experiment"
	"treep/internal/proto"
	"treep/internal/scenario"
	"treep/internal/simrt"
)

// ScalePoint is one row of the machine-generated substrate scale table
// (EXPERIMENTS.md): one workload at one population on one engine
// configuration, with the quantities the scale claims are judged on —
// events/s must stay flat as N grows, allocs/run and peak heap must grow
// linearly at worst, and sharded rows must show wall-clock speedup over
// the single-shard reference when cores are available.
type ScalePoint struct {
	// Workload identifies the scenario: "" (the canonical churn timeline,
	// kept empty for baseline compatibility) or "dht" (the
	// put/get-under-churn storage workload).
	Workload string `json:"workload,omitempty"`
	N        int    `json:"n"`
	// Shards is the engine configuration: 0 is the classic
	// single-threaded kernel, ≥1 the sharded kernel with that many
	// worker shards.
	Shards int `json:"shards"`
	// MaxProcs records GOMAXPROCS at measurement time. Speedup claims are
	// only meaningful when MaxProcs covers the shard count; benchguard
	// gates its speedup floor on this field so a single-core CI runner
	// cannot fail (or trivially pass) a parallelism assertion.
	MaxProcs   int     `json:"maxprocs"`
	WallSec    float64 `json:"wall_sec"`
	Events     uint64  `json:"events"`
	EventsPerS float64 `json:"events_per_sec"`
	// AllocsRun is the number of heap allocations over the run (the
	// machine-independent cost metric; runtime.MemStats.Mallocs delta).
	AllocsRun uint64 `json:"allocs_run"`
	// PeakHeapBytes is the maximum live heap observed while the scenario
	// ran (sampled HeapAlloc).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	// Speedup is wall-clock of this row's single-shard counterpart
	// divided by this row's wall-clock — the parallel speedup at this
	// shard count. Zero when no shards=1 row for the same (workload, N)
	// exists in the run, or when either row was truncated.
	Speedup float64 `json:"speedup,omitempty"`
	// Truncated reports the -budget wall-clock cap expired mid-row: the
	// virtual timeline did not finish and every measurement covers only
	// the completed prefix. Truncated rows are incomparable — benchguard
	// skips them in both directions.
	Truncated bool `json:"truncated,omitempty"`
	// FailPct is the workload's failure metric: failed-lookup percentage
	// for churn, read-miss percentage for dht.
	FailPct    float64 `json:"fail_pct"`
	Violations float64 `json:"violations_end"`
}

// parsePop parses one -scale population, accepting plain integers and
// k/M magnitude suffixes ("100k" = 100_000, "1M" = 1_000_000).
func parsePop(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad population %q", s)
	}
	return n * mult, nil
}

// scaleChurnPhases is the canonical churn timeline used at every scale
// point — identical to BenchmarkScenarioChurn* in bench_test.go so the
// table and the CI benchmarks track the same workload.
func scaleChurnPhases() []scenario.Phase {
	return []scenario.Phase{
		scenario.Churn{For: 15 * time.Second, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 12 * time.Second},
	}
}

// heapWatcher samples HeapAlloc until stopped and reports the maximum.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		// ReadMemStats stops the world; a 250 ms cadence keeps the peak
		// estimate honest without perturbing the run it is measuring.
		var ms runtime.MemStats
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.peak.Load() {
				w.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *heapWatcher) Stop() uint64 {
	close(w.stop)
	<-w.done
	return w.peak.Load()
}

// dhtChurnPhases mirrors BenchmarkDHTChurn*'s canonical storage timeline:
// seed records, run a put/get mix with concurrent churn, settle.
func dhtChurnPhases() []scenario.Phase {
	return []scenario.Phase{
		scenario.Settle{For: 8 * time.Second},
		scenario.StoreRecords{Count: 300},
		scenario.StorageWorkload{For: 15 * time.Second, PutRate: 5, GetRate: 10, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 10 * time.Second},
	}
}

// runChurnPoint plays the canonical churn timeline at one population on
// one engine configuration and returns its scale row.
func runChurnPoint(n, shards, lookups int, budget time.Duration) ScalePoint {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	w := watchHeap()
	start := time.Now()
	res := experiment.RunScenario(experiment.ScenarioOptions{
		N:               n,
		Seeds:           []int64{1},
		Phases:          scaleChurnPhases(),
		LookupsPerPhase: lookups,
		Parallel:        1,
		Shards:          shards,
		Budget:          budget,
	})
	wall := time.Since(start)
	peak := w.Stop()
	runtime.ReadMemStats(&ms)

	p := ScalePoint{
		N:             n,
		Shards:        shards,
		MaxProcs:      runtime.GOMAXPROCS(0),
		WallSec:       wall.Seconds(),
		AllocsRun:     ms.Mallocs - mallocs0,
		PeakHeapBytes: peak,
		Truncated:     res.Trials[0].Truncated,
	}
	if r := res.Trials[0].Result; r != nil {
		p.Events = r.Events
		p.EventsPerS = float64(r.Events) / wall.Seconds()
	}
	fr := res.FailRateByPhase(proto.AlgoG)
	if len(fr.Y) > 0 {
		p.FailPct = fr.Y[len(fr.Y)-1]
	}
	vi := res.ViolationsByPhase()
	if len(vi.Y) > 0 {
		p.Violations = vi.Y[len(vi.Y)-1]
	}
	return p
}

// runStoragePoint plays the storage workload at one population and
// returns its scale row (workload "dht"). The DHT workload always runs
// on the classic engine: it is the baseline-continuity row, and the
// sharded engine's scaling story is told by the churn rows.
func runStoragePoint(n int, budget time.Duration) ScalePoint {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	w := watchHeap()
	start := time.Now()

	c := simrt.New(simrt.Options{N: n, Seed: 1, Bulk: true})
	if budget > 0 {
		watchdog := time.AfterFunc(budget, c.Interrupt)
		defer watchdog.Stop()
	}
	st := scenario.NewStorage(3)
	st.AttachAll(c)
	c.StartAll()
	res := scenario.Run(c, scenario.Options{
		Checkers:    append(scenario.AllCheckers(), scenario.StorageCheckers(0.99)...),
		Storage:     st,
		FinalGrace:  3 * time.Second,
		FinalChecks: 4,
	}, dhtChurnPhases()...)

	wall := time.Since(start)
	peak := w.Stop()
	runtime.ReadMemStats(&ms)

	p := ScalePoint{
		Workload:      "dht",
		N:             n,
		MaxProcs:      runtime.GOMAXPROCS(0),
		WallSec:       wall.Seconds(),
		Events:        res.Events,
		EventsPerS:    float64(res.Events) / wall.Seconds(),
		AllocsRun:     ms.Mallocs - mallocs0,
		PeakHeapBytes: peak,
		Truncated:     c.Interrupted(),
		Violations:    float64(len(res.Final)),
	}
	if st.Gets > 0 {
		p.FailPct = 100 * float64(st.GetMiss) / float64(st.Gets)
	}
	return p
}

// zipfReadPhases mirrors BenchmarkZipfBalanced2k's skewed-read timeline:
// ledger records, then a Zipf(1.0) read storm whose aggregate rate scales
// with the population (N/2 reads per virtual second, floor 100).
func zipfReadPhases(n int) []scenario.Phase {
	rate := float64(n) / 2
	if rate < 100 {
		rate = 100
	}
	return []scenario.Phase{
		scenario.Settle{For: 8 * time.Second},
		scenario.StoreRecords{Count: 64},
		scenario.Settle{For: 2 * time.Second},
		scenario.ZipfReads{For: 20 * time.Second, Rate: rate, Theta: 1.0, Readers: 64},
	}
}

// runZipfPoint plays the skewed-read workload with the balancer on at one
// population and returns its scale row (workload "zipf"). Like dht rows
// it always runs the classic engine; the overlay invariants plus both
// balance checkers gate the end state.
func runZipfPoint(n int, budget time.Duration) ScalePoint {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	w := watchHeap()
	start := time.Now()

	c := simrt.New(simrt.Options{N: n, Seed: 1, Bulk: true, Config: core.Config{Balancer: true}})
	if budget > 0 {
		watchdog := time.AfterFunc(budget, c.Interrupt)
		defer watchdog.Stop()
	}
	st := scenario.NewStorage(3)
	st.HotCache = true
	st.AttachAll(c)
	c.StartAll()
	res := scenario.Run(c, scenario.Options{
		Checkers:    append(scenario.AllCheckers(), scenario.BalanceCheckers()...),
		Storage:     st,
		FinalGrace:  3 * time.Second,
		FinalChecks: 4,
	}, zipfReadPhases(n)...)

	wall := time.Since(start)
	peak := w.Stop()
	runtime.ReadMemStats(&ms)

	p := ScalePoint{
		Workload:      "zipf",
		N:             n,
		MaxProcs:      runtime.GOMAXPROCS(0),
		WallSec:       wall.Seconds(),
		Events:        res.Events,
		EventsPerS:    float64(res.Events) / wall.Seconds(),
		AllocsRun:     ms.Mallocs - mallocs0,
		PeakHeapBytes: peak,
		Truncated:     c.Interrupted(),
		Violations:    float64(len(res.Final)),
	}
	if st.Gets > 0 {
		p.FailPct = 100 * float64(st.GetMiss) / float64(st.Gets)
	}
	return p
}

// fillSpeedups computes each sharded row's wall-clock speedup against its
// single-shard counterpart at the same (workload, N). Truncated rows get
// no speedup in either role: a row cut short by the budget is
// incomparable, not fast.
func fillSpeedups(points []ScalePoint) {
	ref := make(map[string]float64) // (workload, n) -> shards=1 wall
	for _, p := range points {
		if p.Shards == 1 && !p.Truncated {
			ref[p.Workload+"/"+strconv.Itoa(p.N)] = p.WallSec
		}
	}
	for i := range points {
		p := &points[i]
		if p.Shards < 1 || p.Truncated {
			continue
		}
		if base, ok := ref[p.Workload+"/"+strconv.Itoa(p.N)]; ok && p.WallSec > 0 {
			p.Speedup = base / p.WallSec
		}
	}
}

// runScale executes the churn scenario once per (population, shard
// count) — and, with storage/zipf, the dht and skewed-read workloads
// once per population — and writes the scale table as CSV + JSON under
// outDir.
func runScale(spec, shardsSpec, outDir string, lookups int, storage, zipf bool, budget time.Duration) {
	var ns []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := parsePop(f)
		if err != nil {
			fail("-scale: %v", err)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		fail("-scale needs at least one population")
	}
	var shardCounts []int
	for _, f := range strings.Split(shardsSpec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		s, err := strconv.Atoi(f)
		if err != nil || s < 0 {
			fail("bad -shards count %q", f)
		}
		shardCounts = append(shardCounts, s)
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{0}
	}

	fmt.Printf("# Substrate scale — churn 15s@2+2, settle 12s, %d lookups/phase, seed 1, GOMAXPROCS=%d\n",
		lookups, runtime.GOMAXPROCS(0))
	if budget > 0 {
		fmt.Printf("# wall-clock budget %v per row: truncated rows marked T, excluded from speedup and benchguard\n", budget)
	}
	fmt.Println()
	fmt.Printf("| %8s | %8s | %6s | %9s | %9s | %11s | %9s | %6s | %10s |\n",
		"workload", "N", "shards", "wall", "events/s", "allocs/run", "peak heap", "fail%", "violations")

	points := make([]ScalePoint, 0, len(ns)*(len(shardCounts)+1))
	for _, n := range ns {
		for _, s := range shardCounts {
			p := runChurnPoint(n, s, lookups, budget)
			points = append(points, p)
			printScaleRow(p)
		}
		if storage {
			sp := runStoragePoint(n, budget)
			points = append(points, sp)
			printScaleRow(sp)
		}
		if zipf {
			zp := runZipfPoint(n, budget)
			points = append(points, zp)
			printScaleRow(zp)
		}
	}

	fillSpeedups(points)
	speedups := false
	for _, p := range points {
		if p.Shards >= 2 && p.Speedup > 0 {
			if !speedups {
				fmt.Println()
				speedups = true
			}
			fmt.Printf("speedup: %s N=%d %d shards: %.2fx vs 1 shard\n",
				workloadName(p.Workload), p.N, p.Shards, p.Speedup)
		}
	}

	if err := writeScale(outDir, points); err != nil {
		fatal("writing scale records: %v", err)
	}
	fmt.Printf("\nrecords: %s, %s\n",
		filepath.Join(outDir, "scale-churn.csv"), filepath.Join(outDir, "scale-churn.json"))
}

func workloadName(wl string) string {
	if wl == "" {
		return "churn"
	}
	return wl
}

// printScaleRow prints one table row (workload "" renders as churn;
// classic-engine rows render shards as "-").
func printScaleRow(p ScalePoint) {
	shards := "-"
	if p.Shards > 0 {
		shards = strconv.Itoa(p.Shards)
	}
	trunc := " "
	if p.Truncated {
		trunc = "T"
	}
	fmt.Printf("| %8s | %8d | %6s | %7.1fs%s | %9.0f | %11d | %8.1fM | %6.1f | %10.1f |\n",
		workloadName(p.Workload), p.N, shards, p.WallSec, trunc,
		p.EventsPerS, p.AllocsRun, float64(p.PeakHeapBytes)/(1<<20), p.FailPct, p.Violations)
}

// writeScale exports the scale table as CSV + JSON.
func writeScale(outDir string, points []ScalePoint) error {
	return writeScaleAs(outDir, "scale-churn", points)
}

// writeScaleAs exports a scale table under outDir as <base>.csv and
// <base>.json (the udp bench writes its rows beside the simulator's scale
// table without clobbering it).
func writeScaleAs(outDir, base string, points []ScalePoint) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(outDir, base+".json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(jf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(points); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}

	cf, err := os.Create(filepath.Join(outDir, base+".csv"))
	if err != nil {
		return err
	}
	cw := csv.NewWriter(cf)
	_ = cw.Write([]string{"workload", "n", "shards", "maxprocs", "wall_sec", "events", "events_per_sec", "allocs_run", "peak_heap_bytes", "speedup", "truncated", "fail_pct", "violations_end"})
	for _, p := range points {
		_ = cw.Write([]string{
			workloadName(p.Workload),
			strconv.Itoa(p.N),
			strconv.Itoa(p.Shards),
			strconv.Itoa(p.MaxProcs),
			strconv.FormatFloat(p.WallSec, 'f', 3, 64),
			strconv.FormatUint(p.Events, 10),
			strconv.FormatFloat(p.EventsPerS, 'f', 1, 64),
			strconv.FormatUint(p.AllocsRun, 10),
			strconv.FormatUint(p.PeakHeapBytes, 10),
			strconv.FormatFloat(p.Speedup, 'f', 3, 64),
			strconv.FormatBool(p.Truncated),
			strconv.FormatFloat(p.FailPct, 'f', 2, 64),
			strconv.FormatFloat(p.Violations, 'f', 2, 64),
		})
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}
