package main

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"treep/internal/core"
	"treep/internal/dht"
	"treep/internal/idspace"
	"treep/internal/udptransport"
)

// udpResult is one variant's measurement over the real-socket cluster.
type udpResult struct {
	variant  string // "batch" or "single"
	batched  bool   // whether the kernel batch path was actually active
	nodes    int
	wall     time.Duration
	msgs     uint64 // datagrams sent across the cluster in the window
	recvMsgs uint64
	sendSys  uint64
	recvSys  uint64
	allocs   uint64 // heap allocations across the window (whole process)
	peakHeap uint64
	gets     uint64
	misses   uint64
	drops    uint64
	decErrs  uint64
	oversize uint64
}

func (r udpResult) msgsPerSec() float64 {
	return float64(r.msgs) / r.wall.Seconds()
}

func (r udpResult) allocsPerMsg() float64 {
	if r.msgs == 0 {
		return 0
	}
	return float64(r.allocs) / float64(r.msgs)
}

func (r udpResult) syscallsPerMsg() float64 {
	if r.msgs == 0 {
		return 0
	}
	return float64(r.sendSys+r.recvSys) / float64(r.msgs)
}

func (r udpResult) missPct() float64 {
	if r.gets == 0 {
		return 0
	}
	return 100 * float64(r.misses) / float64(r.gets)
}

// sumStats totals the wire counters across the cluster.
func sumStats(trs []*udptransport.Transport) udptransport.Snapshot {
	var t udptransport.Snapshot
	for _, tr := range trs {
		s := tr.Stats()
		t.Recv += s.Recv
		t.Sent += s.Sent
		t.DecodeErrs += s.DecodeErrs
		t.Drops += s.Drops
		t.Oversize += s.Oversize
		t.RecvSyscalls += s.RecvSyscalls
		t.SendSyscalls += s.SendSyscalls
		t.Flushes += s.Flushes
	}
	return t
}

// runUDPVariant brings up an n-node loopback cluster, preloads records,
// drives DHT reads for the window and returns the wire-level measurement.
// rate > 0 paces each worker to that many gets/s — both variants then
// perform the same application work and allocs/msg compares the wire
// planes like for like; rate 0 is closed-loop saturation, where the
// faster arm serves more gets and is charged their allocations.
func runUDPVariant(variant string, n, workers, records, rate int, window time.Duration) udpResult {
	single := variant == "single"
	trs := make([]*udptransport.Transport, 0, n)
	svcs := make([]*dht.Service, n)
	for i := 0; i < n; i++ {
		cfg := core.Defaults()
		cfg.ID = idspace.FromFraction((float64(i) + 0.5) / float64(n))
		// Saturation configuration: the keep-alive plane is driven as hard
		// as each node can consume it (SetPeriodic re-arms only after the
		// loop processes a tick, so the ping rate self-throttles to the
		// data path's capacity — which is exactly what this benchmark
		// measures). Failure detection is effectively disabled for the
		// window: a saturated slow arm must score its real throughput, not
		// drown the measurement in expiry/repair traffic it caused itself.
		cfg.KeepAlive = 5 * time.Millisecond
		cfg.EntryTTL = 60 * time.Second
		cfg.SweepInterval = 10 * time.Second
		cfg.ChildReport = 200 * time.Millisecond
		cfg.ElectionMin = 50 * time.Millisecond
		cfg.ElectionMax = 200 * time.Millisecond
		cfg.LookupTimeout = 2 * time.Second
		tr, err := udptransport.ListenOpts(cfg, "127.0.0.1:0", int64(i+1),
			udptransport.Options{SingleDatagram: single})
		if err != nil {
			fatal("udp: listen node %d: %v", i, err)
		}
		trs = append(trs, tr)
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for i, tr := range trs {
		i := i
		if err := tr.Do(func(nd *core.Node) { svcs[i] = dht.Attach(nd) }); err != nil {
			fatal("udp: attach dht %d: %v", i, err)
		}
	}
	boot := trs[0].OverlayAddr()
	for i, tr := range trs {
		var err error
		if i == 0 {
			err = tr.Start()
		} else {
			err = tr.Join(boot)
		}
		if err != nil {
			fatal("udp: start node %d: %v", i, err)
		}
	}

	// Convergence: every node must know at least one peer before the
	// workload starts, else early gets measure join races, not the wire.
	deadline := time.Now().Add(10 * time.Second)
	for {
		connected := 0
		for _, tr := range trs {
			var l0 int
			_ = tr.Do(func(nd *core.Node) { l0 = nd.Table().Level0.Len() })
			if l0 > 0 {
				connected++
			}
		}
		if connected == n || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)

	// Preload the records the read workers will fetch.
	keys := make([][]byte, records)
	for k := range keys {
		keys[k] = []byte(fmt.Sprintf("udp-rec-%d", k))
		stored := false
		for attempt := 0; attempt < 3 && !stored; attempt++ {
			errCh := make(chan error, 1)
			owner := trs[k%n]
			if err := owner.Do(func(*core.Node) {
				svcs[k%n].Put(keys[k], []byte(fmt.Sprintf("value-%d", k)), func(e error) { errCh <- e })
			}); err != nil {
				fatal("udp: put %d: %v", k, err)
			}
			select {
			case err := <-errCh:
				stored = err == nil
			case <-time.After(5 * time.Second):
			}
			if !stored {
				time.Sleep(300 * time.Millisecond)
			}
		}
		if !stored {
			fatal("udp: record %d never stored; overlay unhealthy", k)
		}
	}

	// Measurement window: closed-loop readers issue a get, wait for its
	// callback, issue the next — saturating the request plane while the
	// accelerated keep-alive timers load the maintenance plane.
	var gets, misses atomic.Uint64
	stop := make(chan struct{})
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			// The reply channel and timeout timer live for the worker's
			// whole life: the bench must not charge its own plumbing to
			// the allocs/msg it measures. A timed-out channel may still
			// receive a late callback, so it is abandoned, not reused.
			done := make(chan error, 1)
			timeout := time.NewTimer(time.Hour)
			defer timeout.Stop()
			var pace *time.Ticker
			if rate > 0 {
				pace = time.NewTicker(time.Second / time.Duration(rate))
				defer pace.Stop()
			}
			for !stopped() {
				if pace != nil {
					select {
					case <-pace.C:
					case <-stop:
						return
					}
				}
				i := rng.Intn(n)
				key := keys[rng.Intn(len(keys))]
				ch := done
				if err := trs[i].Do(func(*core.Node) {
					svcs[i].GetRecord(key, func(_ dht.Record, e error) { ch <- e })
				}); err != nil {
					return // cluster shutting down
				}
				timeout.Reset(5 * time.Second)
				var err error
				select {
				case err = <-done:
				case <-timeout.C:
					err = fmt.Errorf("get timed out")
					done = make(chan error, 1)
				}
				if !timeout.Stop() {
					select {
					case <-timeout.C:
					default:
					}
				}
				gets.Add(1)
				if err != nil {
					misses.Add(1)
				}
			}
		}(w)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs0 := ms.Mallocs
	before := sumStats(trs)
	hw := watchHeap()
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	wall := time.Since(start)
	after := sumStats(trs)
	peak := hw.Stop()
	runtime.ReadMemStats(&ms)

	return udpResult{
		variant:  variant,
		batched:  trs[0].Batched(),
		nodes:    n,
		wall:     wall,
		msgs:     after.Sent - before.Sent,
		recvMsgs: after.Recv - before.Recv,
		sendSys:  after.SendSyscalls - before.SendSyscalls,
		recvSys:  after.RecvSyscalls - before.RecvSyscalls,
		allocs:   ms.Mallocs - mallocs0,
		peakHeap: peak,
		gets:     gets.Load(),
		misses:   misses.Load(),
		drops:    after.Drops - before.Drops,
		decErrs:  after.DecodeErrs - before.DecodeErrs,
		oversize: after.Oversize - before.Oversize,
	}
}

// udpScalePoint converts one variant measurement into a scale-table row.
// AllocsRun is normalised to allocations per 1000 messages: wall-clock
// workloads are not event-deterministic, but the per-message allocation
// cost is stable enough for benchguard's tolerance.
func udpScalePoint(r udpResult) ScalePoint {
	workload := "udp"
	if r.variant == "single" {
		workload = "udpsingle"
	}
	var allocsPerK uint64
	if r.msgs > 0 {
		allocsPerK = r.allocs * 1000 / r.msgs
	}
	return ScalePoint{
		Workload:      workload,
		N:             r.nodes,
		MaxProcs:      runtime.GOMAXPROCS(0),
		WallSec:       r.wall.Seconds(),
		Events:        r.msgs,
		EventsPerS:    r.msgsPerSec(),
		AllocsRun:     allocsPerK,
		PeakHeapBytes: r.peakHeap,
		FailPct:       r.missPct(),
	}
}

// runUDP executes the real-socket benchmark: the requested variants run
// sequentially on identical clusters and workloads, the before/after
// table prints, and the rows export as udp-bench.{csv,json} under outDir.
func runUDP(variant string, n, workers, records, rate int, window time.Duration, outDir string) {
	load := "closed-loop"
	if rate > 0 {
		load = fmt.Sprintf("%d gets/s each", rate)
	}
	fmt.Printf("# Real-socket UDP bench — n=%d nodes, %d workers (%s), %d records, %v window, GOMAXPROCS=%d\n\n",
		n, workers, load, records, window, runtime.GOMAXPROCS(0))

	var results []udpResult
	variants := []string{"batch", "single"}
	if variant != "both" {
		variants = []string{variant}
	}
	for _, v := range variants {
		r := runUDPVariant(v, n, workers, records, rate, window)
		if v == "batch" && !r.batched {
			fmt.Printf("note: kernel batch path unavailable on this platform; \"batch\" ran the fallback\n")
		}
		results = append(results, r)
		// A fresh cluster per variant: let the closed sockets drain and
		// collect the previous cluster before measuring the next.
		runtime.GC()
		time.Sleep(200 * time.Millisecond)
	}

	fmt.Printf("| %7s | %5s | %9s | %9s | %12s | %10s | %7s | %6s |\n",
		"variant", "nodes", "msgs", "msgs/s", "syscalls/msg", "allocs/msg", "gets/s", "miss%")
	for _, r := range results {
		fmt.Printf("| %7s | %5d | %9d | %9.0f | %12.3f | %10.1f | %7.0f | %6.2f |\n",
			r.variant, r.nodes, r.msgs, r.msgsPerSec(), r.syscallsPerMsg(),
			r.allocsPerMsg(), float64(r.gets)/r.wall.Seconds(), r.missPct())
	}
	for _, r := range results {
		if r.decErrs > 0 || r.oversize > 0 {
			fmt.Printf("note: %s variant saw %d decode errors, %d oversize rejects\n",
				r.variant, r.decErrs, r.oversize)
		}
	}

	points := make([]ScalePoint, 0, len(results))
	for _, r := range results {
		points = append(points, udpScalePoint(r))
	}
	if len(results) == 2 {
		batch, single := results[0], results[1]
		gainMsgs := batch.msgsPerSec() / single.msgsPerSec()
		gainAllocs := single.allocsPerMsg() / batch.allocsPerMsg()
		gainSys := single.syscallsPerMsg() / batch.syscallsPerMsg()
		fmt.Printf("\nbatch vs single: %.2fx msgs/s, %.2fx fewer allocs/msg, %.2fx fewer syscalls/msg\n",
			gainMsgs, gainAllocs, gainSys)
		// The throughput gain rides in the udp row's speedup column so
		// benchguard's speedup floor can gate it.
		points[0].Speedup = gainMsgs
	}

	if err := writeScaleAs(outDir, "udp-bench", points); err != nil {
		fatal("writing udp records: %v", err)
	}
	fmt.Printf("\nrecords: %s, %s\n",
		filepath.Join(outDir, "udp-bench.csv"), filepath.Join(outDir, "udp-bench.json"))
}
