// treep-bench regenerates every figure and analytic claim of the TreeP
// paper's evaluation (§IV and §III.e) plus the ablations listed in
// DESIGN.md, printing the series the paper plots. Run with -quick for a
// reduced sweep.
//
// With -compare it instead runs the cross-protocol harness: TreeP and the
// named baselines play the same scenario script from identical seeds, and
// the per-phase records are exported as CSV + JSON under -out:
//
//	treep-bench -compare chord,flood -scenario churn -n 2000 -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"treep/internal/experiment"
	"treep/internal/metrics"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
)

// usage prints the synopsis to stderr (installed as flag.Usage, and called
// on every operand/flag-value error before the non-zero exit).
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `treep-bench: TreeP paper reproduction and comparative benchmarks

Paper mode (default): regenerate the kill-sweep figures, analytics and
ablations of §IV / §III.e.

Compare mode (-compare): run TreeP head-to-head against the named
baselines through one scenario script from identical seeds, exporting
per-phase CSV + JSON records:

  treep-bench -compare chord,flood -scenario churn -n 2000 -out results/

Scale mode (-scale): run the canonical churn scenario at each listed
population (k/M suffixes accepted: 100k, 1M) and export the substrate
scale table (events/s, allocs/run, peak heap, speedup) as CSV + JSON —
the machine-readable source of the EXPERIMENTS.md scale table and CI's
allocation-budget guard. -shards lists engine configurations per
population (0 = classic single-threaded kernel, ≥1 = sharded multi-core
kernel; sharded rows report wall-clock speedup against the shards=1
row). -budget caps each row's wall clock: rows that overrun are marked
truncated and excluded from speedup and benchguard comparisons. With
-storage, each population also plays the DHT put/get-under-churn
workload and exports it as "dht" rows in the same table; with -zipf,
the skewed Zipf(1.0) read workload with the load balancer on as "zipf"
rows. -shards applies only to the churn rows: the dht and zipf rows
always run on the classic single-threaded kernel (their shard column is
0), so listing more shard counts multiplies the churn rows but never
the workload rows:

  treep-bench -scale 10k,100k,1M -shards 1,4 -budget 5m -out results/
  treep-bench -scale 500,2000 -lookups 60 -storage -zipf -out results/

UDP mode (-udp): run the real-socket benchmark — an -n node loopback
cluster (real UDP sockets, wall-clock timers, the binary codec) carrying
saturating keep-alive traffic plus rate-paced DHT reads, measured as
msgs/s, allocs/msg and syscalls/msg. -udp-variant both (the default)
runs the kernel-batched fast path and the single-datagram fallback on
identical workloads and prints the before/after table; rows export as
udp-bench.{csv,json} ("udp" and "udpsingle" workloads, allocs_run
normalised to allocations per 1000 messages):

  treep-bench -udp -n 50 -udp-for 5s -out results/

-cpuprofile/-memprofile/-blockprofile write pprof profiles of any mode.

Backends: %s. Scenarios: %s.

Flags:
`, strings.Join(experiment.CompareBackends, ", "), strings.Join(experiment.CompareScenarios, ", "))
	flag.PrintDefaults()
}

// flushProfiles finalises any active -cpuprofile/-memprofile output; it
// must run before every exit path or the profile files are truncated.
// main installs the real implementation once the flags are parsed.
var flushProfiles = func() {}

// fail prints the error and the usage, then exits non-zero.
func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "treep-bench: "+format+"\n\n", args...)
	usage()
	flushProfiles()
	os.Exit(2)
}

// fatal prints the error (no usage — the flags were fine) and exits
// non-zero, flushing profiles first.
func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "treep-bench: "+format+"\n", args...)
	flushProfiles()
	os.Exit(1)
}

func main() {
	quick := flag.Bool("quick", false, "reduced network and trial count")
	n := flag.Int("n", 1000, "network size for the kill sweeps")
	trials := flag.Int("trials", 3, "trials (seeds) per sweep")
	lookups := flag.Int("lookups", 150, "lookups per algorithm per step")
	settle := flag.Duration("settle", 8*time.Second, "repair window after each kill step")
	compare := flag.String("compare", "", "comma-separated baselines to compare TreeP against (chord, flood); enables compare mode")
	scen := flag.String("scenario", "churn", "compare mode: scenario script (churn, flashcrowd, zonefail, partition)")
	out := flag.String("out", "results", "compare/scale mode: directory for the CSV/JSON records")
	scale := flag.String("scale", "", "comma-separated populations (e.g. 500,2000,100k,1M): run the canonical churn scenario per N and export the substrate scale table; enables scale mode")
	shards := flag.String("shards", "0", "scale mode: comma-separated engine configurations per population (0 = classic kernel, ≥1 = sharded kernel with that many shards)")
	budget := flag.Duration("budget", 0, "scale mode: wall-clock cap per row; rows that overrun are interrupted and marked truncated (0 = no cap)")
	storage := flag.Bool("storage", false, "scale mode: additionally run the DHT put/get-under-churn workload per N (workload \"dht\" rows)")
	zipf := flag.Bool("zipf", false, "scale mode: additionally run the skewed Zipf(1.0) read workload with the load balancer on per N (workload \"zipf\" rows)")
	udp := flag.Bool("udp", false, "real-socket benchmark: an -n node loopback UDP cluster measured as msgs/s, allocs/msg, syscalls/msg; enables udp mode")
	udpFor := flag.Duration("udp-for", 5*time.Second, "udp mode: measurement window per variant")
	udpWorkers := flag.Int("udp-workers", 8, "udp mode: DHT read workers")
	udpRecords := flag.Int("udp-records", 64, "udp mode: DHT records preloaded for the read workload")
	udpRate := flag.Int("udp-rate", 500, "udp mode: gets/s per worker, so both variants do identical application work (0 = unpaced closed loop: the faster arm serves more gets and is charged their allocations)")
	udpVariant := flag.String("udp-variant", "both", "udp mode: batch, single, or both (the ablation pair)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit (shard workers park at epoch barriers; this shows where)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() > 0 {
		fail("unexpected argument %q", flag.Arg(0))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
	}
	if *blockprofile != "" {
		// Rate 1 records every blocking event; the sharded kernel's barrier
		// parks dominate, which is exactly what the profile is for.
		runtime.SetBlockProfileRate(1)
	}
	cpuOn, memPath, blockPath := *cpuprofile != "", *memprofile, *blockprofile
	flushed := false
	flushProfiles = func() {
		if flushed {
			return
		}
		flushed = true
		if cpuOn {
			pprof.StopCPUProfile()
		}
		writeProfile := func(path, profile string, gc bool) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "treep-bench: %s profile: %v\n", profile, err)
				return
			}
			defer f.Close()
			if gc {
				runtime.GC()
			}
			if err := pprof.Lookup(profile).WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "treep-bench: %s profile: %v\n", profile, err)
			}
		}
		writeProfile(memPath, "allocs", true)
		writeProfile(blockPath, "block", false)
	}
	defer flushProfiles()

	if *quick {
		*n, *trials, *lookups = 400, 2, 60
	}
	seeds := make([]int64, *trials)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	if *scale != "" && *compare != "" {
		fail("-scale and -compare are mutually exclusive")
	}
	if *udp && (*scale != "" || *compare != "") {
		fail("-udp is mutually exclusive with -scale and -compare")
	}
	if *storage && *scale == "" {
		fail("-storage requires -scale")
	}
	if *zipf && *scale == "" {
		fail("-zipf requires -scale")
	}
	if *scale == "" && (*shards != "0" || *budget != 0) {
		fail("-shards and -budget require -scale")
	}
	if !*udp && (*udpFor != 5*time.Second || *udpWorkers != 8 || *udpRecords != 64 || *udpRate != 500 || *udpVariant != "both") {
		fail("-udp-for, -udp-workers, -udp-records, -udp-rate and -udp-variant require -udp")
	}
	if *udp {
		switch *udpVariant {
		case "both", "batch", "single":
		default:
			fail("-udp-variant must be both, batch or single (got %q)", *udpVariant)
		}
		if *n < 2 {
			fail("udp mode needs -n >= 2 nodes")
		}
		if *udpWorkers < 1 || *udpRecords < 1 {
			fail("-udp-workers and -udp-records must be positive")
		}
		if *udpRate < 0 {
			fail("-udp-rate must be non-negative")
		}
		if *udpFor <= 0 {
			fail("-udp-for must be positive")
		}
		runUDP(*udpVariant, *n, *udpWorkers, *udpRecords, *udpRate, *udpFor, *out)
		return
	}
	if *scale != "" {
		runScale(*scale, *shards, *out, *lookups, *storage, *zipf, *budget)
		return
	}
	if *compare != "" {
		runCompare(*compare, *scen, *out, *n, seeds, *lookups)
		return
	}
	base := experiment.Options{
		N: *n, Seeds: seeds, LookupsPerStep: *lookups, Settle: *settle,
		KillStep: 0.05, MaxKill: 0.80,
	}

	fmt.Printf("# TreeP paper reproduction — n=%d trials=%d lookups/step=%d settle=%v\n\n",
		*n, *trials, *lookups, *settle)

	// --- Case 1: fixed nc = 4 (paper §IV.a) -------------------------------
	fixed := base
	fixed.Policy = nodeprof.FixedPolicy{NC: 4}
	start := time.Now()
	resFixed := experiment.RunKillSweep(fixed)
	fmt.Printf("## FIG-A — failed lookups %% vs killed %% (nc=4)  [%v]\n", time.Since(start).Truncate(time.Second))
	printSeries(resFixed.KillPcts(),
		resFixed.FailRateSeries(proto.AlgoG),
		resFixed.FailRateSeries(proto.AlgoNG),
		resFixed.FailRateSeries(proto.AlgoNGSA))

	fmt.Println("## FIG-B — average hops vs killed % (nc=4)")
	printSeries(resFixed.KillPcts(),
		resFixed.AvgHopsSeries(proto.AlgoG),
		resFixed.AvgHopsSeries(proto.AlgoNG),
		resFixed.AvgHopsSeries(proto.AlgoNGSA))

	fmt.Println("## FIG-E — min/max failed lookups envelope (G, nc=4) + partitions")
	lo, hi := resFixed.FailEnvelope(proto.AlgoG)
	printSeries(resFixed.KillPcts(), lo, hi, resFixed.PartitionSeries())

	fmt.Println("## FIG-F — hop surface, algorithm G (nc=4): % of requests (cells) resolved in N hops")
	fmt.Println(resFixed.HopSurface(proto.AlgoG).Render(12))
	fmt.Println("## FIG-G — hop surface, algorithm NG (nc=4)")
	fmt.Println(resFixed.HopSurface(proto.AlgoNG).Render(12))

	// --- Case 2: nc variable (capacity-driven, paper §IV.b) ---------------
	variable := base
	variable.Policy = nodeprof.CapacityPolicy{Min: 2, Max: 16}
	resVar := experiment.RunKillSweep(variable)
	fmt.Println("## FIG-C — failed lookups % vs killed % (nc variable)")
	printSeries(resVar.KillPcts(),
		resVar.FailRateSeries(proto.AlgoG),
		resVar.FailRateSeries(proto.AlgoNG),
		resVar.FailRateSeries(proto.AlgoNGSA))

	fmt.Println("## FIG-D — average hops: fixed nc vs variable nc (G)")
	fx := resFixed.AvgHopsSeries(proto.AlgoG)
	fx.Name = "hops/fixed-nc4"
	vr := resVar.AvgHopsSeries(proto.AlgoG)
	vr.Name = "hops/variable-nc"
	printSeries(resFixed.KillPcts(), fx, vr)

	fmt.Println("## FIG-H — hop surface, algorithm G (nc variable)")
	fmt.Println(resVar.HopSurface(proto.AlgoG).Render(12))
	fmt.Println("## FIG-I — hop surface, algorithm NG (nc variable)")
	fmt.Println(resVar.HopSurface(proto.AlgoNG).Render(12))

	// --- Analytic checks (§III.e/f) ----------------------------------------
	fmt.Println("## AN-1 — height law h ≈ log_c((n+1)/2)")
	fmt.Println(experiment.RenderHeightLaw(experiment.HeightLaw([]int{256, 1024, 4096}, nil, 1)))

	fmt.Println("## AN-2 — routing-table sizes vs §III.e formulas")
	fmt.Println(experiment.RenderTableSizes(experiment.TableSizes(minInt(*n, 1000), 1)))

	fmt.Println("## AN-3 — lookup hops vs n (O(log n) claim)")
	fmt.Println(experiment.RenderHops(experiment.LogNHops([]int{250, 500, 1000, 2000}, 1, *lookups)))

	// --- Ablations ----------------------------------------------------------
	abl := base
	abl.Seeds = seeds[:1]
	abl.MaxKill = 0.50

	fmt.Println("## ABL-1 — distance model: paper L/2^(h-l) vs branching L/c^(h-l)")
	ablBase := experiment.RunKillSweep(abl)
	ablB := abl
	ablB.Model = routing.BranchingModel{Height: 6, Branching: 4}
	resB := experiment.RunKillSweep(ablB)
	p1 := ablBase.FailRateSeries(proto.AlgoG)
	p1.Name = "fail%/paper-model"
	p2 := resB.FailRateSeries(proto.AlgoG)
	p2.Name = "fail%/branching-model"
	printSeries(ablBase.KillPcts(), p1, p2)

	fmt.Println("## ABL-2 — immediate updates vs piggyback-only (§III.d)")
	ablP := abl
	ablP.PiggybackOnly = true
	resP := experiment.RunKillSweep(ablP)
	p3 := ablBase.FailRateSeries(proto.AlgoG)
	p3.Name = "fail%/immediate"
	p4 := resP.FailRateSeries(proto.AlgoG)
	p4.Name = "fail%/piggyback"
	printSeries(ablBase.KillPcts(), p3, p4)

	fmt.Println("## ABL-3 — retain upper levels without children (§VI future work)")
	ablR := abl
	ablR.RetainUpperLevels = true
	resR := experiment.RunKillSweep(ablR)
	p5 := ablBase.FailRateSeries(proto.AlgoG)
	p5.Name = "fail%/demote"
	p6 := resR.FailRateSeries(proto.AlgoG)
	p6.Name = "fail%/retain"
	printSeries(ablBase.KillPcts(), p5, p6)
}

// runCompare executes the cross-protocol harness and exports its records.
func runCompare(compare, scen, out string, n int, seeds []int64, lookups int) {
	// TreeP is always measured; -compare names the baselines. Dedupe so
	// "-compare chord,chord" cannot double-run trials. Name and scenario
	// validation is RunCompare's job — one source of truth.
	backends := []string{"treep"}
	seen := map[string]bool{"treep": true}
	for _, b := range strings.Split(compare, ",") {
		b = strings.TrimSpace(b)
		if b == "" || seen[b] {
			continue
		}
		seen[b] = true
		backends = append(backends, b)
	}
	opts := experiment.CompareOptions{
		N:               n,
		Seeds:           seeds,
		Backends:        backends,
		Scenario:        scen,
		LookupsPerPhase: lookups,
	}
	fmt.Printf("# Comparative run — backends=%s scenario=%s n=%d trials=%d lookups/phase=%d\n\n",
		strings.Join(backends, ","), scen, n, len(seeds), lookups)
	start := time.Now()
	res, err := experiment.RunCompare(opts)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("## per-phase means across %d trials  [%v]\n", len(seeds), time.Since(start).Truncate(time.Second))
	fmt.Println(experiment.CompareSummary(res))

	csvPath, jsonPath, err := res.Recorder.Export(out, "compare-"+scen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "treep-bench: writing records: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("records: %s, %s (%d rows)\n", csvPath, jsonPath, len(res.Recorder.Records))
}

func printSeries(xs []float64, cols ...*metrics.Series) {
	fmt.Println(metrics.Table("kill%", xs, cols))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
