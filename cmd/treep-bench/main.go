// treep-bench regenerates every figure and analytic claim of the TreeP
// paper's evaluation (§IV and §III.e) plus the ablations listed in
// DESIGN.md, printing the series the paper plots. Run with -quick for a
// reduced sweep.
package main

import (
	"flag"
	"fmt"
	"time"

	"treep/internal/experiment"
	"treep/internal/metrics"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
)

func main() {
	quick := flag.Bool("quick", false, "reduced network and trial count")
	n := flag.Int("n", 1000, "network size for the kill sweeps")
	trials := flag.Int("trials", 3, "trials (seeds) per sweep")
	lookups := flag.Int("lookups", 150, "lookups per algorithm per step")
	settle := flag.Duration("settle", 8*time.Second, "repair window after each kill step")
	flag.Parse()

	if *quick {
		*n, *trials, *lookups = 400, 2, 60
	}
	seeds := make([]int64, *trials)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	base := experiment.Options{
		N: *n, Seeds: seeds, LookupsPerStep: *lookups, Settle: *settle,
		KillStep: 0.05, MaxKill: 0.80,
	}

	fmt.Printf("# TreeP paper reproduction — n=%d trials=%d lookups/step=%d settle=%v\n\n",
		*n, *trials, *lookups, *settle)

	// --- Case 1: fixed nc = 4 (paper §IV.a) -------------------------------
	fixed := base
	fixed.Policy = nodeprof.FixedPolicy{NC: 4}
	start := time.Now()
	resFixed := experiment.RunKillSweep(fixed)
	fmt.Printf("## FIG-A — failed lookups %% vs killed %% (nc=4)  [%v]\n", time.Since(start).Truncate(time.Second))
	printSeries(resFixed.KillPcts(),
		resFixed.FailRateSeries(proto.AlgoG),
		resFixed.FailRateSeries(proto.AlgoNG),
		resFixed.FailRateSeries(proto.AlgoNGSA))

	fmt.Println("## FIG-B — average hops vs killed % (nc=4)")
	printSeries(resFixed.KillPcts(),
		resFixed.AvgHopsSeries(proto.AlgoG),
		resFixed.AvgHopsSeries(proto.AlgoNG),
		resFixed.AvgHopsSeries(proto.AlgoNGSA))

	fmt.Println("## FIG-E — min/max failed lookups envelope (G, nc=4) + partitions")
	lo, hi := resFixed.FailEnvelope(proto.AlgoG)
	printSeries(resFixed.KillPcts(), lo, hi, resFixed.PartitionSeries())

	fmt.Println("## FIG-F — hop surface, algorithm G (nc=4): % of requests (cells) resolved in N hops")
	fmt.Println(resFixed.HopSurface(proto.AlgoG).Render(12))
	fmt.Println("## FIG-G — hop surface, algorithm NG (nc=4)")
	fmt.Println(resFixed.HopSurface(proto.AlgoNG).Render(12))

	// --- Case 2: nc variable (capacity-driven, paper §IV.b) ---------------
	variable := base
	variable.Policy = nodeprof.CapacityPolicy{Min: 2, Max: 16}
	resVar := experiment.RunKillSweep(variable)
	fmt.Println("## FIG-C — failed lookups % vs killed % (nc variable)")
	printSeries(resVar.KillPcts(),
		resVar.FailRateSeries(proto.AlgoG),
		resVar.FailRateSeries(proto.AlgoNG),
		resVar.FailRateSeries(proto.AlgoNGSA))

	fmt.Println("## FIG-D — average hops: fixed nc vs variable nc (G)")
	fx := resFixed.AvgHopsSeries(proto.AlgoG)
	fx.Name = "hops/fixed-nc4"
	vr := resVar.AvgHopsSeries(proto.AlgoG)
	vr.Name = "hops/variable-nc"
	printSeries(resFixed.KillPcts(), fx, vr)

	fmt.Println("## FIG-H — hop surface, algorithm G (nc variable)")
	fmt.Println(resVar.HopSurface(proto.AlgoG).Render(12))
	fmt.Println("## FIG-I — hop surface, algorithm NG (nc variable)")
	fmt.Println(resVar.HopSurface(proto.AlgoNG).Render(12))

	// --- Analytic checks (§III.e/f) ----------------------------------------
	fmt.Println("## AN-1 — height law h ≈ log_c((n+1)/2)")
	fmt.Println(experiment.RenderHeightLaw(experiment.HeightLaw([]int{256, 1024, 4096}, nil, 1)))

	fmt.Println("## AN-2 — routing-table sizes vs §III.e formulas")
	fmt.Println(experiment.RenderTableSizes(experiment.TableSizes(minInt(*n, 1000), 1)))

	fmt.Println("## AN-3 — lookup hops vs n (O(log n) claim)")
	fmt.Println(experiment.RenderHops(experiment.LogNHops([]int{250, 500, 1000, 2000}, 1, *lookups)))

	// --- Ablations ----------------------------------------------------------
	abl := base
	abl.Seeds = seeds[:1]
	abl.MaxKill = 0.50

	fmt.Println("## ABL-1 — distance model: paper L/2^(h-l) vs branching L/c^(h-l)")
	ablBase := experiment.RunKillSweep(abl)
	ablB := abl
	ablB.Model = routing.BranchingModel{Height: 6, Branching: 4}
	resB := experiment.RunKillSweep(ablB)
	p1 := ablBase.FailRateSeries(proto.AlgoG)
	p1.Name = "fail%/paper-model"
	p2 := resB.FailRateSeries(proto.AlgoG)
	p2.Name = "fail%/branching-model"
	printSeries(ablBase.KillPcts(), p1, p2)

	fmt.Println("## ABL-2 — immediate updates vs piggyback-only (§III.d)")
	ablP := abl
	ablP.PiggybackOnly = true
	resP := experiment.RunKillSweep(ablP)
	p3 := ablBase.FailRateSeries(proto.AlgoG)
	p3.Name = "fail%/immediate"
	p4 := resP.FailRateSeries(proto.AlgoG)
	p4.Name = "fail%/piggyback"
	printSeries(ablBase.KillPcts(), p3, p4)

	fmt.Println("## ABL-3 — retain upper levels without children (§VI future work)")
	ablR := abl
	ablR.RetainUpperLevels = true
	resR := experiment.RunKillSweep(ablR)
	p5 := ablBase.FailRateSeries(proto.AlgoG)
	p5.Name = "fail%/demote"
	p6 := resR.FailRateSeries(proto.AlgoG)
	p6.Name = "fail%/retain"
	printSeries(ablBase.KillPcts(), p5, p6)
}

func printSeries(xs []float64, cols ...*metrics.Series) {
	fmt.Println(metrics.Table("kill%", xs, cols))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
