// benchguard gates CI on allocation regressions: it compares a fresh
// scale-table JSON (treep-bench -scale) against the checked-in baseline
// and exits non-zero when allocs/run regressed beyond the tolerance.
//
// Allocations per run are the machine-independent cost metric of the
// deterministic simulation — wall-clock on shared CI runners swings 2×,
// but the allocation count of a seeded scenario is stable to a fraction
// of a percent, so a 15% jump is a real regression, not noise.
//
//	benchguard -baseline ci/bench-baseline.json -current results/scale-churn.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// point mirrors the fields of treep-bench's ScalePoint that the guard
// cares about; extra fields in either file are ignored.
type point struct {
	// Workload distinguishes scale rows sharing a population ("" is the
	// canonical churn timeline, "dht" the storage workload).
	Workload  string `json:"workload"`
	N         int    `json:"n"`
	AllocsRun uint64 `json:"allocs_run"`
}

// key identifies one guarded scale row.
type key struct {
	workload string
	n        int
}

func (k key) String() string {
	wl := k.workload
	if wl == "" {
		wl = "churn"
	}
	return fmt.Sprintf("%s/N=%d", wl, k.n)
}

func load(path string) (map[key]point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pts []point
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[key]point, len(pts))
	for _, p := range pts {
		out[key{p.Workload, p.N}] = p
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "ci/bench-baseline.json", "checked-in baseline scale table")
	current := flag.String("current", "results/scale-churn.json", "freshly generated scale table")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional allocs/run growth before failing")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}

	failed := false
	compared := 0
	for k, b := range base {
		c, ok := cur[k]
		if !ok {
			// A missing scale point silently unguards it — treat it as a
			// failure so the CI -scale invocation and the baseline cannot
			// drift apart unnoticed.
			fmt.Fprintf(os.Stderr, "benchguard: %s in baseline but missing from current run\n", k)
			failed = true
			continue
		}
		compared++
		ratio := float64(c.AllocsRun) / float64(b.AllocsRun)
		status := "ok"
		if ratio > 1+*maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchguard: %s allocs/run %d -> %d (%+.1f%%) %s\n",
			k, b.AllocsRun, c.AllocsRun, 100*(ratio-1), status)
		if ratio < 1-*maxRegress {
			fmt.Printf("benchguard: %s improved beyond tolerance — update %s to lock in the gain\n", k, *baseline)
		}
	}
	// The reverse direction: a current row with no baseline entry is an
	// unguarded scale point — allocations there could regress arbitrarily
	// while CI stays green. Fail so adding a population or workload to the
	// CI -scale invocation forces a baseline regeneration in the same
	// change.
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s in current run but missing from baseline — regenerate %s\n", k, *baseline)
			failed = true
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no comparable populations between baseline and current")
		os.Exit(1)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: allocs/run regressed more than %.0f%%\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Println("benchguard: allocation budget holds")
}
