// benchguard gates CI on substrate performance regressions: it compares
// a fresh scale-table JSON (treep-bench -scale) against the checked-in
// baseline and exits non-zero when allocs/run regressed beyond the
// tolerance, or when a sharded row's parallel speedup fell below the
// configured floor.
//
// Allocations per run are the machine-independent cost metric of the
// deterministic simulation — wall-clock on shared CI runners swings 2×,
// but the allocation count of a seeded scenario is stable to a fraction
// of a percent, so a 15% jump is a real regression, not noise. The
// speedup floor is the one wall-clock assertion: it only fires when the
// current run's recorded GOMAXPROCS actually covers the shard count, so
// a single-core runner cannot fail (or vacuously pass) a parallelism
// claim it cannot measure.
//
//	benchguard -baseline ci/bench-baseline.json -current results/scale-churn.json \
//	    -min-speedup 2.5 -speedup-n 10000 -speedup-shards 4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// point mirrors the fields of treep-bench's ScalePoint that the guard
// cares about; extra fields in either file are ignored.
type point struct {
	// Workload distinguishes scale rows sharing a population ("" is the
	// canonical churn timeline, "dht" the storage workload).
	Workload string `json:"workload"`
	N        int    `json:"n"`
	// Shards is the engine configuration (0 = classic kernel).
	Shards int `json:"shards"`
	// MaxProcs is GOMAXPROCS recorded when the row was measured; the
	// speedup floor only applies when it covers Shards.
	MaxProcs  int     `json:"maxprocs"`
	AllocsRun uint64  `json:"allocs_run"`
	Speedup   float64 `json:"speedup"`
	// Truncated rows hit the -budget wall-clock cap: their counters cover
	// an unknown prefix of the timeline, so they are skipped in both
	// directions rather than compared.
	Truncated bool `json:"truncated"`
}

// key identifies one guarded scale row.
type key struct {
	workload string
	n        int
	shards   int
}

// canonWorkload maps the user-facing workload name to the JSON field
// value: the canonical churn timeline writes workload "" and prints as
// "churn", so flags accept either spelling.
func canonWorkload(w string) string {
	if w == "churn" {
		return ""
	}
	return w
}

func (k key) String() string {
	wl := k.workload
	if wl == "" {
		wl = "churn"
	}
	if k.shards > 0 {
		return fmt.Sprintf("%s/N=%d/shards=%d", wl, k.n, k.shards)
	}
	return fmt.Sprintf("%s/N=%d", wl, k.n)
}

func load(path string) (map[key]point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pts []point
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[key]point, len(pts))
	for _, p := range pts {
		if p.Truncated {
			// A truncated row measured an arbitrary wall-clock prefix;
			// comparing its counters would flag noise, and using it as a
			// baseline would unguard the real run.
			continue
		}
		out[key{p.Workload, p.N, p.Shards}] = p
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "ci/bench-baseline.json", "checked-in baseline scale table")
	current := flag.String("current", "results/scale-churn.json", "freshly generated scale table")
	maxRegress := flag.Float64("max-regress", 0.15, "allowed fractional allocs/run growth before failing")
	minSpeedup := flag.Float64("min-speedup", 0, "minimum speedup the guarded row must reach (0 disables)")
	speedupN := flag.Int("speedup-n", 10000, "population of the speedup-guarded row")
	speedupShards := flag.Int("speedup-shards", 4, "shard count of the speedup-guarded row")
	speedupWorkload := flag.String("speedup-workload", "churn", "workload of the speedup-guarded row")
	only := flag.String("only", "", "comma-separated workloads to guard (empty = all; \"churn\" names the canonical timeline)")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	if *only != "" {
		// Different CI steps generate different slices of the table (the
		// simulated scale run vs the real-socket udp run); -only scopes both
		// files to the named workloads so each step guards its own rows
		// without tripping the missing-row check on the other step's.
		keep := make(map[string]bool)
		for _, w := range strings.Split(*only, ",") {
			keep[canonWorkload(strings.TrimSpace(w))] = true
		}
		for k := range base {
			if !keep[k.workload] {
				delete(base, k)
			}
		}
		for k := range cur {
			if !keep[k.workload] {
				delete(cur, k)
			}
		}
	}

	failed := false
	compared := 0
	for k, b := range base {
		c, ok := cur[k]
		if !ok {
			// A missing scale point silently unguards it — treat it as a
			// failure so the CI -scale invocation and the baseline cannot
			// drift apart unnoticed. (A row truncated by -budget in the
			// current run counts as missing: the budget must be set high
			// enough for the guarded rows to finish.)
			fmt.Fprintf(os.Stderr, "benchguard: %s in baseline but missing (or truncated) in current run\n", k)
			failed = true
			continue
		}
		compared++
		ratio := float64(c.AllocsRun) / float64(b.AllocsRun)
		status := "ok"
		if ratio > 1+*maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("benchguard: %s allocs/run %d -> %d (%+.1f%%) %s\n",
			k, b.AllocsRun, c.AllocsRun, 100*(ratio-1), status)
		if ratio < 1-*maxRegress {
			fmt.Printf("benchguard: %s improved beyond tolerance — update %s to lock in the gain\n", k, *baseline)
		}
	}
	// The reverse direction: a current row with no baseline entry is an
	// unguarded scale point — allocations there could regress arbitrarily
	// while CI stays green. Fail so adding a population or workload to the
	// CI -scale invocation forces a baseline regeneration in the same
	// change.
	for k := range cur {
		if _, ok := base[k]; !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s in current run but missing from baseline — regenerate %s\n", k, *baseline)
			failed = true
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no comparable populations between baseline and current")
		os.Exit(1)
	}

	if *minSpeedup > 0 {
		k := key{canonWorkload(*speedupWorkload), *speedupN, *speedupShards}
		switch c, ok := cur[k]; {
		case !ok:
			fmt.Fprintf(os.Stderr, "benchguard: speedup floor set but %s missing from current run\n", k)
			failed = true
		case c.MaxProcs < c.Shards:
			// The floor is a parallelism claim; a runner without the cores
			// can neither validate nor refute it. Report, don't fail.
			fmt.Printf("benchguard: %s speedup %.2fx unchecked (GOMAXPROCS=%d < %d shards)\n",
				k, c.Speedup, c.MaxProcs, c.Shards)
		case c.Speedup < *minSpeedup:
			fmt.Fprintf(os.Stderr, "benchguard: %s speedup %.2fx below floor %.2fx (GOMAXPROCS=%d) REGRESSION\n",
				k, c.Speedup, *minSpeedup, c.MaxProcs)
			failed = true
		default:
			fmt.Printf("benchguard: %s speedup %.2fx ≥ floor %.2fx ok\n", k, c.Speedup, *minSpeedup)
		}
	}

	if failed {
		fmt.Fprintln(os.Stderr, "benchguard: performance budget violated")
		os.Exit(1)
	}
	fmt.Println("benchguard: performance budget holds")
}
