// treep-node runs a standalone TreeP peer on a real UDP socket. Start the
// first node with just -bind; point later nodes at any running peer with
// -join host:port. The node prints its state once per period.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"treep"
	"treep/internal/udptransport"
)

func main() {
	bind := flag.String("bind", "127.0.0.1:0", "UDP address to listen on (IPv4)")
	join := flag.String("join", "", "bootstrap peer host:port (empty: start a new overlay)")
	every := flag.Duration("status", 5*time.Second, "status print interval")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	flag.Parse()

	node, err := treep.StartUDPNode(treep.UDPOptions{Bind: *bind, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	self := udptransport.UintToAddr(node.Addr())
	wirePath := "single-datagram syscalls"
	if node.Batched() {
		wirePath = "batched syscalls (sendmmsg/recvmmsg)"
	}
	fmt.Printf("treep-node listening on %s (overlay id %v, %s)\n", self, node.ID(), wirePath)
	fmt.Printf("others can join with: treep-node -join %s\n", self)

	if *join != "" {
		raddr, err := net.ResolveUDPAddr("udp4", *join)
		if err != nil {
			log.Fatalf("resolve -join %q: %v", *join, err)
		}
		boot := udptransport.AddrToUint(raddr)
		if boot == 0 {
			log.Fatalf("-join %q is not an IPv4 host:port", *join)
		}
		if err := node.Join(boot); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("joining overlay via %s\n", raddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	tick := time.NewTicker(*every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			ws := node.WireStats()
			fmt.Printf("[%s] level=%d peers=%d records=%d wire[in=%d out=%d sys=%d/%d drop=%d badpkt=%d]\n",
				time.Now().Format("15:04:05"), node.Level(), node.PeerCount(), node.StoredRecords(),
				ws.Recv, ws.Sent, ws.RecvSyscalls, ws.SendSyscalls, ws.Drops, ws.DecodeErrs+ws.Oversize)
		case <-sigs:
			// Graceful shutdown: Close announces the departure to every
			// peer before the socket goes away, so the overlay repairs
			// immediately instead of treating this ^C as a crash and
			// burning a failure-detection round on it.
			fmt.Println("announcing departure and shutting down")
			return
		}
	}
}
