// treep-sim runs one TreeP simulation scenario from flags and prints a
// summary: hierarchy shape, lookup performance, message accounting, and
// optional failure injection.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"treep"
)

func main() {
	n := flag.Int("n", 1000, "number of peers")
	seed := flag.Int64("seed", 1, "simulation seed")
	kill := flag.Float64("kill", 0, "fraction of peers to kill before measuring")
	lookups := flag.Int("lookups", 200, "number of lookups to measure")
	algoName := flag.String("algo", "G", "lookup algorithm: G, NG, NGSA")
	variable := flag.Bool("variable-nc", false, "capacity-driven max children instead of nc=4")
	settle := flag.Duration("settle", 10*time.Second, "repair window after the kill")
	flag.Parse()

	var algo treep.Algo
	switch *algoName {
	case "G":
		algo = treep.AlgoG
	case "NG":
		algo = treep.AlgoNG
	case "NGSA":
		algo = treep.AlgoNGSA
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}

	opts := treep.SimOptions{N: *n, Seed: *seed}
	if *variable {
		opts.Children = treep.CapacityChildren(2, 16)
	}
	nw, err := treep.NewSimNetwork(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: n=%d seed=%d levels=%v\n", *n, *seed, nw.Levels())
	if *kill > 0 {
		killed := nw.KillRandomFraction(*kill)
		nw.Run(*settle)
		fmt.Printf("killed %d peers (%.0f%%), settled %v, alive=%d levels=%v\n",
			killed, *kill*100, *settle, nw.AliveCount(), nw.Levels())
	}

	ok, failed, hops := 0, 0, 0
	for i := 0; i < *lookups; i++ {
		origin := (i * 7919) % nw.N()
		target := (i*104729 + 13) % nw.N()
		if !nw.Alive(origin) || !nw.Alive(target) {
			continue
		}
		res, err := nw.Lookup(origin, nw.NodeID(target), algo)
		if err != nil {
			continue
		}
		if res.Status == treep.LookupFound && res.Best.ID == nw.NodeID(target) {
			ok++
			hops += res.Hops
		} else {
			failed++
		}
	}
	total := ok + failed
	if total == 0 {
		log.Fatal("no measurable lookups")
	}
	fmt.Printf("lookups (%s): %d ok, %d failed (%.1f%%), avg hops %.2f\n",
		*algoName, ok, failed, 100*float64(failed)/float64(total),
		float64(hops)/float64(maxInt(ok, 1)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
