// treep-sim runs one TreeP simulation scenario from flags and prints a
// summary: hierarchy shape, lookup performance, message accounting, and
// optional failure injection.
//
// Two modes:
//
//	-kill 0.3                     legacy one-shot kill + measure
//	-scenario churn ...           scripted timeline with live churn and
//	                              runtime invariant checking
//
// Scenarios (see internal/scenario): churn, flashcrowd, zonefail,
// partition, bridge, revival.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"treep"
)

func main() {
	n := flag.Int("n", 1000, "number of peers")
	seed := flag.Int64("seed", 1, "simulation seed")
	kill := flag.Float64("kill", 0, "fraction of peers to kill before measuring")
	lookups := flag.Int("lookups", 200, "number of lookups to measure")
	algoName := flag.String("algo", "G", "lookup algorithm: G, NG, NGSA")
	variable := flag.Bool("variable-nc", false, "capacity-driven max children instead of nc=4")
	settle := flag.Duration("settle", 10*time.Second, "repair window after the kill or scenario")

	scen := flag.String("scenario", "", "scripted scenario: churn, flashcrowd, zonefail, partition, bridge, revival")
	duration := flag.Duration("duration", 20*time.Second, "churn phase length")
	joinRate := flag.Float64("join-rate", 2, "churn joins per virtual second")
	leaveRate := flag.Float64("leave-rate", 2, "churn leaves per virtual second")
	crowd := flag.Int("crowd", 100, "flash-crowd join count")
	zoneLo := flag.Float64("zone-lo", 0.40, "zone failure: low edge as a fraction of the ID space")
	zoneHi := flag.Float64("zone-hi", 0.55, "zone failure: high edge as a fraction of the ID space")
	hold := flag.Duration("hold", 10*time.Second, "partition hold time")
	flag.Parse()

	var algo treep.Algo
	switch *algoName {
	case "G":
		algo = treep.AlgoG
	case "NG":
		algo = treep.AlgoNG
	case "NGSA":
		algo = treep.AlgoNGSA
	default:
		log.Fatalf("unknown algorithm %q", *algoName)
	}

	opts := treep.SimOptions{N: *n, Seed: *seed}
	if *variable {
		opts.Children = treep.CapacityChildren(2, 16)
	}
	nw, err := treep.NewSimNetwork(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: n=%d seed=%d levels=%v\n", *n, *seed, nw.Levels())

	if *scen != "" {
		phases, err := buildScenario(*scen, scenarioParams{
			duration: *duration, joinRate: *joinRate, leaveRate: *leaveRate,
			crowd: *crowd, zoneLo: *zoneLo, zoneHi: *zoneHi,
			hold: *hold, settle: *settle,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := nw.RunScenario(phases...)
		fmt.Printf("scenario %q: +%d joins, -%d leaves, -%d zone-killed, +%d revived, alive=%d levels=%v\n",
			*scen, res.Joins, res.Leaves, res.ZoneKilled, res.Revived, nw.AliveCount(), nw.Levels())
		for _, s := range res.Samples {
			if len(s.Violations) > 0 {
				fmt.Printf("  t=%-6v %-14s alive=%-5d violations=%d\n",
					s.At, s.Phase, s.Alive, len(s.Violations))
			}
		}
		if len(res.Final) == 0 {
			fmt.Println("invariants: all hold after settle (ring closure, tessellation coverage, parent/child, loop freedom)")
		} else {
			fmt.Printf("invariants: %d violations after settle:\n", len(res.Final))
			for _, v := range res.Final {
				fmt.Printf("  %s\n", v)
			}
		}
	} else if *kill > 0 {
		killed := nw.KillRandomFraction(*kill)
		nw.Run(*settle)
		fmt.Printf("killed %d peers (%.0f%%), settled %v, alive=%d levels=%v\n",
			killed, *kill*100, *settle, nw.AliveCount(), nw.Levels())
	}

	ok, failed, hops := 0, 0, 0
	for i := 0; i < *lookups; i++ {
		origin := (i * 7919) % nw.N()
		target := (i*104729 + 13) % nw.N()
		if !nw.Alive(origin) || !nw.Alive(target) {
			continue
		}
		res, err := nw.Lookup(origin, nw.NodeID(target), algo)
		if err != nil {
			continue
		}
		if res.Status == treep.LookupFound && res.Best.ID == nw.NodeID(target) {
			ok++
			hops += res.Hops
		} else {
			failed++
		}
	}
	total := ok + failed
	if total == 0 {
		log.Fatal("no measurable lookups")
	}
	fmt.Printf("lookups (%s): %d ok, %d failed (%.1f%%), avg hops %.2f\n",
		*algoName, ok, failed, 100*float64(failed)/float64(total),
		float64(hops)/float64(maxInt(ok, 1)))
}

type scenarioParams struct {
	duration            time.Duration
	joinRate, leaveRate float64
	crowd               int
	zoneLo, zoneHi      float64
	hold                time.Duration
	settle              time.Duration
}

// buildScenario maps a scenario name and its parameters to a phase
// timeline ending in a settle window.
func buildScenario(name string, p scenarioParams) ([]treep.ScenarioPhase, error) {
	switch name {
	case "churn":
		return []treep.ScenarioPhase{
			treep.ChurnPhase{For: p.duration, JoinRate: p.joinRate, LeaveRate: p.leaveRate},
			treep.SettlePhase{For: p.settle},
		}, nil
	case "flashcrowd":
		return []treep.ScenarioPhase{
			treep.FlashCrowdPhase{Joins: p.crowd, Over: p.duration / 4},
			treep.SettlePhase{For: p.settle},
		}, nil
	case "zonefail":
		return []treep.ScenarioPhase{
			treep.ZoneFailurePhase{Zone: treep.ZoneFraction(p.zoneLo, p.zoneHi), Settle: p.settle},
		}, nil
	case "partition":
		return []treep.ScenarioPhase{
			treep.PartitionHealPhase{Hold: p.hold, Heal: p.settle},
		}, nil
	case "bridge":
		return []treep.ScenarioPhase{
			treep.IslandsMergePhase{Hold: p.hold, Merge: p.settle},
		}, nil
	case "revival":
		return []treep.ScenarioPhase{
			treep.ZoneFailurePhase{Zone: treep.ZoneFraction(p.zoneLo, p.zoneHi), Settle: p.settle / 2},
			treep.RevivalWavePhase{Over: 5 * time.Second},
			treep.SettlePhase{For: p.settle},
		}, nil
	}
	return nil, fmt.Errorf("unknown scenario %q (want churn, flashcrowd, zonefail, partition, bridge, or revival)", name)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
