// DHT key-value store: the paper notes TreeP "can be easily modified to
// provide DHT functionality" — store and fetch versioned values from any
// peer, survive owner failures through replication and read-repair, and
// update concurrently without lost writes via compare-and-swap.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"treep"
)

func main() {
	nw, err := treep.NewSimNetwork(treep.SimOptions{N: 200, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// Store a handful of records from different peers.
	records := map[string]string{
		"user/alice": "dublin",
		"user/bob":   "cork",
		"job/42":     "rendering",
		"job/43":     "queued",
	}
	for k, v := range records {
		if err := nw.Put(3, []byte(k), []byte(v)); err != nil {
			log.Fatalf("put %q: %v", k, err)
		}
	}
	fmt.Printf("stored %d records\n", len(records))

	// Read them back from unrelated peers.
	for k, want := range records {
		v, err := nw.Get(150, []byte(k))
		if err != nil {
			log.Fatalf("get %q: %v", k, err)
		}
		fmt.Printf("get %-12q -> %q (want %q)\n", k, v, want)
	}

	// Records are versioned: conditional writes turn read-modify-write
	// into compare-and-swap, so a stale writer cannot silently erase a
	// concurrent update.
	rec, err := nw.GetRecord(7, []byte("job/42"))
	if err != nil {
		log.Fatalf("get record: %v", err)
	}
	if _, err := nw.PutIf(7, []byte("job/42"), []byte("done"), rec.Version); err != nil {
		log.Fatalf("cas: %v", err)
	}
	if _, err := nw.PutIf(9, []byte("job/42"), []byte("stale"), rec.Version); !errors.Is(err, treep.ErrConflict) {
		log.Fatalf("stale cas: want conflict, got %v", err)
	}
	fmt.Println("compare-and-swap: fresh base accepted, stale base rejected")

	// Failure tolerance: kill a slice of the network and read again —
	// replica maintenance re-replicates as owners die, ownership hands
	// off to surviving closer nodes, and reads heal fresh owners from
	// replicas, so every record survives.
	nw.KillRandomFraction(0.15)
	nw.Run(15 * time.Second)
	survived := 0
	for k := range records {
		if _, err := nw.Get(120, []byte(k)); err == nil {
			survived++
		}
	}
	fmt.Printf("after killing 15%% of peers: %d/%d records still resolvable\n",
		survived, len(records))
}
