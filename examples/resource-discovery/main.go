// Resource discovery and load balancing: the DGET-style grid-middleware
// scenario that motivated TreeP — workers advertise attributes, a
// scheduler discovers matches and places jobs on the least-loaded one.
package main

import (
	"fmt"
	"log"

	"treep"
)

func main() {
	nw, err := treep.NewSimNetwork(treep.SimOptions{N: 250, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// Ten workers advertise heterogeneous capabilities.
	archs := []string{"amd64", "amd64", "amd64", "arm64", "arm64"}
	for i := 0; i < 10; i++ {
		dir := nw.Directory(i * 20)
		res := treep.Resource{
			Name:     fmt.Sprintf("worker-%02d", i),
			Attrs:    map[string]string{"arch": archs[i%len(archs)], "queue": "batch"},
			Capacity: 4 + i%5,
			Load:     i % 3,
		}
		if err := dir.Advertise(res); err != nil {
			log.Fatalf("advertise %s: %v", res.Name, err)
		}
	}

	// A scheduler on an unrelated peer discovers the amd64 pool.
	sched := nw.Directory(201)
	pool, err := sched.Discover("arch", "amd64")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("amd64 pool: %d workers\n", len(pool))
	for _, r := range pool {
		fmt.Printf("  %-10s load %d/%d\n", r.Name, r.Load, r.Capacity)
	}

	// Place five jobs, re-advertising the updated load each time: the
	// balancer spreads them across head-room.
	for job := 0; job < 5; job++ {
		best, err := sched.PickLeastLoaded("queue", "batch")
		if err != nil {
			log.Fatal(err)
		}
		best.Load++
		if err := sched.Advertise(best); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d -> %s (now %d/%d)\n", job, best.Name, best.Load, best.Capacity)
	}
}
