// UDP overlay: run a real TreeP network on loopback sockets — the same
// protocol state machines as the simulation, over the wire encoding the
// paper's UDP design calls for.
package main

import (
	"fmt"
	"log"
	"time"

	"treep"
)

func main() {
	const n = 8
	nodes := make([]*treep.UDPNode, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	for i := 0; i < n; i++ {
		nd, err := treep.StartUDPNode(treep.UDPOptions{Seed: int64(i + 1)})
		if err != nil {
			log.Fatal(err)
		}
		nodes = append(nodes, nd)
		if i > 0 {
			if err := nd.Join(nodes[0].Addr()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("started %d UDP nodes; letting the overlay converge...\n", n)
	time.Sleep(3 * time.Second)

	for i, nd := range nodes {
		fmt.Printf("node %d: id=%v level=%d peers=%d\n", i, nd.ID(), nd.Level(), nd.PeerCount())
	}

	res, err := nodes[5].Lookup(nodes[2].ID(), treep.AlgoG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup node2 from node5: status=%v hops=%d\n", res.Status, res.Hops)
}
