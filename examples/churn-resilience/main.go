// Churn resilience: reproduce the paper's §IV robustness experiment in
// miniature — kill peers in 10% waves and watch lookup success and the
// self-healing hierarchy.
package main

import (
	"fmt"
	"log"
	"time"

	"treep"
)

func main() {
	nw, err := treep.NewSimNetwork(treep.SimOptions{N: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-8s %-10s %-10s\n", "killed%", "alive", "lookupOK%", "avgHops")

	for _, frac := range []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5} {
		if frac > 0 {
			nw.KillRandomFraction(0.1) // one more 10% wave
			nw.Run(10 * time.Second)   // let the overlay repair
		}
		ok, total, hops := 0, 0, 0
		for i := 0; i < 60; i++ {
			origin := (i * 13) % nw.N()
			target := (i*29 + 5) % nw.N()
			if !nw.Alive(origin) || !nw.Alive(target) {
				continue
			}
			total++
			res, err := nw.Lookup(origin, nw.NodeID(target), treep.AlgoG)
			if err == nil && res.Status == treep.LookupFound && res.Best.ID == nw.NodeID(target) {
				ok++
				hops += res.Hops
			}
		}
		avg := 0.0
		if ok > 0 {
			avg = float64(hops) / float64(ok)
		}
		fmt.Printf("%-8.0f %-8d %-10.1f %-10.2f\n",
			frac*100, nw.AliveCount(), 100*float64(ok)/float64(total), avg)
	}
}
