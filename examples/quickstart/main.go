// Quickstart: build a simulated TreeP overlay, inspect the hierarchy, and
// resolve peers with the three lookup algorithms of the paper.
package main

import (
	"fmt"
	"log"

	"treep"
)

func main() {
	// 500 heterogeneous peers, arranged into the B+tree-like hierarchy and
	// settled into steady state.
	nw, err := treep.NewSimNetwork(treep.SimOptions{N: 500, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hierarchy (level -> peers):")
	levels := nw.Levels()
	for lvl := 0; lvl <= 8; lvl++ {
		if n, ok := levels[lvl]; ok {
			fmt.Printf("  level %d: %d peers\n", lvl, n)
		}
	}

	// Resolve peer 321's coordinate from peer 7 with each algorithm.
	target := nw.NodeID(321)
	for _, algo := range []treep.Algo{treep.AlgoG, treep.AlgoNG, treep.AlgoNGSA} {
		res, err := nw.Lookup(7, target, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5v -> status=%v hops=%d latency=%v\n", algo, res.Status, res.Hops, res.Latency)
	}

	// Keys hash into the same space; the lookup resolves their owner.
	key := treep.HashKey([]byte("some-object"))
	res, err := nw.Lookup(7, key, treep.AlgoG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner of %v is peer %v (level %d)\n", key, res.Best.ID, res.Best.MaxLevel)
}
