package dget

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"treep/internal/dht"
	"treep/internal/simrt"
)

func cluster(t *testing.T, n int, seed int64) (*simrt.Cluster, []*Directory) {
	t.Helper()
	c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true})
	dirs := make([]*Directory, n)
	for i, nd := range c.Nodes {
		dirs[i] = NewDirectory(dht.Attach(nd))
	}
	c.StartAll()
	c.Run(6 * time.Second)
	return c, dirs
}

func TestAdvertiseAndDiscover(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, dirs := cluster(t, 100, 1)
	res := Resource{
		Name:     "worker-1",
		Attrs:    map[string]string{"arch": "amd64", "site": "dublin"},
		Capacity: 8,
		Load:     2,
		Addr:     c.Nodes[10].Addr(),
	}
	var advErr error
	done := false
	dirs[10].Advertise(res, func(err error) { advErr = err; done = true })
	c.Run(10 * time.Second)
	if !done || advErr != nil {
		t.Fatalf("advertise: done=%v err=%v", done, advErr)
	}

	var got []Resource
	var disErr error
	done = false
	dirs[55].Discover("arch", "amd64", func(rs []Resource, err error) { got, disErr, done = rs, err, true })
	c.Run(10 * time.Second)
	if !done || disErr != nil {
		t.Fatalf("discover: done=%v err=%v", done, disErr)
	}
	if len(got) != 1 || got[0].Name != "worker-1" || got[0].HeadRoom() != 6 {
		t.Fatalf("discovered %+v", got)
	}
	// The other attribute also resolves.
	done = false
	dirs[70].Discover("site", "dublin", func(rs []Resource, err error) { got, disErr, done = rs, err, true })
	c.Run(10 * time.Second)
	if !done || disErr != nil || len(got) != 1 {
		t.Fatalf("site discover: %v %v", got, disErr)
	}
}

func TestDiscoverNoMatch(t *testing.T) {
	c, dirs := cluster(t, 80, 2)
	var err error
	done := false
	dirs[0].Discover("arch", "sparc", func(_ []Resource, e error) { err = e; done = true })
	c.Run(10 * time.Second)
	if !done || !errors.Is(err, ErrNoMatch) {
		t.Fatalf("done=%v err=%v", done, err)
	}
	_ = c
}

func TestPickLeastLoaded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, dirs := cluster(t, 100, 3)
	for i, load := range []int{7, 2, 5} {
		res := Resource{
			Name:     fmt.Sprintf("worker-%d", i),
			Attrs:    map[string]string{"queue": "batch"},
			Capacity: 8,
			Load:     load,
			Addr:     c.Nodes[i].Addr(),
		}
		ok := false
		dirs[i].Advertise(res, func(err error) { ok = err == nil })
		c.Run(10 * time.Second)
		if !ok {
			t.Fatalf("advertise %d failed", i)
		}
	}
	var picked Resource
	var err error
	done := false
	dirs[40].PickLeastLoaded("queue", "batch", func(r Resource, e error) { picked, err, done = r, e, true })
	c.Run(10 * time.Second)
	if !done || err != nil {
		t.Fatalf("pick: done=%v err=%v", done, err)
	}
	if picked.Name != "worker-1" {
		t.Fatalf("picked %+v, want the least loaded worker-1", picked)
	}
}

func TestAdvertiseRefreshReplaces(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, dirs := cluster(t, 80, 4)
	res := Resource{Name: "w", Attrs: map[string]string{"a": "b"}, Capacity: 4, Load: 1}
	dirs[0].Advertise(res, func(error) {})
	c.Run(10 * time.Second)
	res.Load = 3
	dirs[0].Advertise(res, func(error) {})
	c.Run(10 * time.Second)
	var got []Resource
	dirs[5].Discover("a", "b", func(rs []Resource, _ error) { got = rs })
	c.Run(10 * time.Second)
	if len(got) != 1 || got[0].Load != 3 {
		t.Fatalf("refresh did not replace: %+v", got)
	}
}

func TestAdvertiseValidation(t *testing.T) {
	_, dirs := cluster(t, 16, 5)
	var err error
	dirs[0].Advertise(Resource{}, func(e error) { err = e })
	if err == nil {
		t.Fatal("nameless resource accepted")
	}
	dirs[0].Advertise(Resource{Name: "x"}, func(e error) { err = e })
	if err == nil {
		t.Fatal("attribute-less resource accepted")
	}
}

// TestConcurrentAdvertiseNoLostUpdate is the regression test for the
// read-modify-write race the registry used to have: two resources
// advertising into the same attribute list at the same time both read the
// old list, and whichever write landed second silently erased the first
// (last-writer-wins). With versioned records the second write's
// conditional store conflicts, re-reads the list that now contains the
// first resource, and merges — both must be discoverable afterwards.
func TestConcurrentAdvertiseNoLostUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, dirs := cluster(t, 100, 7)
	mk := func(i int) Resource {
		return Resource{
			Name:     fmt.Sprintf("racer-%d", i),
			Attrs:    map[string]string{"pool": "contended"},
			Capacity: 4,
			Addr:     c.Nodes[i].Addr(),
		}
	}
	// Launch both advertisements before advancing time: both read the
	// attribute list before either write commits, which is exactly the
	// interleaving that lost an update under last-writer-wins.
	errs := make([]error, 2)
	fired := 0
	dirs[10].Advertise(mk(0), func(e error) { errs[0] = e; fired++ })
	dirs[60].Advertise(mk(1), func(e error) { errs[1] = e; fired++ })
	c.Run(15 * time.Second)
	if fired != 2 || errs[0] != nil || errs[1] != nil {
		t.Fatalf("advertise: fired=%d errs=%v", fired, errs)
	}

	var got []Resource
	var derr error
	done := false
	dirs[33].Discover("pool", "contended", func(rs []Resource, e error) { got, derr, done = rs, e, true })
	c.Run(10 * time.Second)
	if !done || derr != nil {
		t.Fatalf("discover: done=%v err=%v", done, derr)
	}
	if len(got) != 2 {
		t.Fatalf("lost update: %d/2 resources survived concurrent advertise: %+v", len(got), got)
	}
}

func TestSaturatedPoolRejected(t *testing.T) {
	c, dirs := cluster(t, 80, 6)
	res := Resource{Name: "full", Attrs: map[string]string{"q": "z"}, Capacity: 2, Load: 2}
	dirs[0].Advertise(res, func(error) {})
	c.Run(10 * time.Second)
	var err error
	done := false
	dirs[9].PickLeastLoaded("q", "z", func(_ Resource, e error) { err = e; done = true })
	c.Run(10 * time.Second)
	if !done || err == nil {
		t.Fatalf("saturated pool must be rejected: done=%v err=%v", done, err)
	}
}
