// Package dget is a minimal entity-based resource discovery and
// load-balancing layer in the spirit of the DGET grid middleware that
// TreeP was designed to serve ("provides the DGET grid middleware a P2P
// basic functionality for discovery and load-balancing", §I).
//
// Resources advertise themselves under attribute keys (e.g. "arch=amd64",
// "site=dublin"); each attribute hashes into the TreeP ID space and the
// DHT stores the matching resource list at the owner node. Discovery is a
// DHT read; the load balancer picks the least-loaded match.
//
// Registry updates are read-modify-write over the DHT's versioned records:
// each write is a conditional store (dht.PutIf) against the version the
// writer read, and a conflict re-runs the read-modify-write against the
// fresh list. Two resources advertising into the same attribute list
// concurrently therefore both land — the old unconditional write lost
// whichever update committed first.
package dget

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"treep/internal/dht"
)

// Resource is one advertised grid entity.
type Resource struct {
	// Name uniquely identifies the resource (e.g. "worker-17").
	Name string `json:"name"`
	// Attrs are the discoverable attributes.
	Attrs map[string]string `json:"attrs"`
	// Capacity is the resource's job capacity.
	Capacity int `json:"capacity"`
	// Load is the current number of running jobs.
	Load int `json:"load"`
	// Addr is the owner node's overlay address, so a scheduler can contact
	// the resource after discovery.
	Addr uint64 `json:"addr"`
}

// HeadRoom returns remaining capacity.
func (r Resource) HeadRoom() int { return r.Capacity - r.Load }

// attrKey renders the DHT key for one attribute pair.
func attrKey(k, v string) []byte { return []byte("dget/attr/" + k + "=" + v) }

// Directory performs discovery operations through one node's DHT service.
type Directory struct {
	dht *dht.Service
}

// NewDirectory wraps a DHT service.
func NewDirectory(s *dht.Service) *Directory { return &Directory{dht: s} }

// ErrNoMatch is returned when discovery finds no resource.
var ErrNoMatch = errors.New("dget: no matching resource")

// ErrContention is returned when a registry update keeps losing its
// compare-and-swap beyond the retry budget (pathological write pressure on
// one attribute).
var ErrContention = errors.New("dget: registry update contention")

// casRetries bounds how many times one attribute update re-runs its
// read-modify-write after a version conflict.
const casRetries = 8

// Advertise registers (or refreshes) the resource under every attribute it
// carries. cb fires once with the first error or nil after all attribute
// lists are updated.
func (d *Directory) Advertise(res Resource, cb func(error)) {
	if res.Name == "" {
		cb(errors.New("dget: resource needs a name"))
		return
	}
	keys := make([][]byte, 0, len(res.Attrs))
	for k, v := range res.Attrs {
		keys = append(keys, attrKey(k, v))
	}
	if len(keys) == 0 {
		cb(errors.New("dget: resource needs at least one attribute"))
		return
	}
	// Sort for deterministic update order.
	sort.Slice(keys, func(i, j int) bool { return string(keys[i]) < string(keys[j]) })

	remaining := len(keys)
	var firstErr error
	done := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			cb(firstErr)
		}
	}
	for _, key := range keys {
		key := key
		d.updateList(key, res, done)
	}
}

// updateList reads the attribute's list (with its version), upserts res,
// and writes it back conditionally on the version it read. A conflict
// means another writer committed in between: re-read the fresh list —
// which now contains that writer's entry — and retry, so concurrent
// advertisements merge instead of overwriting each other.
func (d *Directory) updateList(key []byte, res Resource, cb func(error)) {
	attempts := 0
	var attempt func()
	attempt = func() {
		if attempts > casRetries {
			cb(ErrContention)
			return
		}
		attempts++
		d.dht.GetRecord(key, func(rec dht.Record, err error) {
			base := uint64(dht.AnyVersion)
			var list []Resource
			if err == nil {
				base = rec.Version
				if jerr := json.Unmarshal(rec.Value, &list); jerr != nil {
					list = nil
				}
			} else if !errors.Is(err, dht.ErrNotFound) {
				cb(err)
				return
			}
			replaced := false
			for i := range list {
				if list[i].Name == res.Name {
					list[i] = res
					replaced = true
					break
				}
			}
			if !replaced {
				list = append(list, res)
			}
			sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
			buf, jerr := json.Marshal(list)
			if jerr != nil {
				cb(fmt.Errorf("dget: encode registry: %w", jerr))
				return
			}
			d.dht.PutIf(key, buf, base, func(_ uint64, perr error) {
				if errors.Is(perr, dht.ErrConflict) {
					attempt()
					return
				}
				cb(perr)
			})
		})
	}
	attempt()
}

// Discover returns all resources advertised under attribute k=v.
func (d *Directory) Discover(k, v string, cb func([]Resource, error)) {
	d.dht.Get(attrKey(k, v), func(value []byte, err error) {
		if err != nil {
			if errors.Is(err, dht.ErrNotFound) {
				cb(nil, ErrNoMatch)
				return
			}
			cb(nil, err)
			return
		}
		var list []Resource
		if jerr := json.Unmarshal(value, &list); jerr != nil {
			cb(nil, fmt.Errorf("dget: decode registry: %w", jerr))
			return
		}
		if len(list) == 0 {
			cb(nil, ErrNoMatch)
			return
		}
		cb(list, nil)
	})
}

// PickLeastLoaded discovers resources under k=v and returns the one with
// the most head-room (ties by name for determinism). This is the
// load-balancing primitive the paper positions TreeP to provide.
func (d *Directory) PickLeastLoaded(k, v string, cb func(Resource, error)) {
	d.Discover(k, v, func(list []Resource, err error) {
		if err != nil {
			cb(Resource{}, err)
			return
		}
		best := list[0]
		for _, r := range list[1:] {
			if r.HeadRoom() > best.HeadRoom() ||
				(r.HeadRoom() == best.HeadRoom() && r.Name < best.Name) {
				best = r
			}
		}
		if best.HeadRoom() <= 0 {
			cb(Resource{}, fmt.Errorf("dget: all %d resources saturated: %w", len(list), ErrNoMatch))
			return
		}
		cb(best, nil)
	})
}
