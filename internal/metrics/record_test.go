package metrics

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleRecords() []PhaseRecord {
	return []PhaseRecord{
		{Backend: "flood", Scenario: "churn", Phase: "settle", PhaseIdx: 1, Seed: 2, N: 100, Alive: 98, Lookups: 50, Found: 50},
		{Backend: "treep", Scenario: "churn", Phase: "churn", PhaseIdx: 0, Seed: 1, N: 100, Alive: 97,
			Lookups: 50, Found: 45, FailPct: 10, HopMean: 2.5, MaintMsgs: 1234, MsgsPerLookup: 7.5},
		{Backend: "treep", Scenario: "churn", Phase: "settle", PhaseIdx: 1, Seed: 1, N: 100, Alive: 97, Lookups: 50, Found: 50},
	}
}

// TestRecorderSortOrder: records order by (backend, seed, phase index).
func TestRecorderSortOrder(t *testing.T) {
	var rec Recorder
	for _, r := range sampleRecords() {
		rec.Add(r)
	}
	rec.Sort()
	got := make([]string, len(rec.Records))
	for i, r := range rec.Records {
		got[i] = r.Backend + "/" + r.Phase
	}
	want := []string{"flood/settle", "treep/churn", "treep/settle"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", got, want)
		}
	}
}

// TestRecorderCSV: the CSV has a header matching every row's width, and
// values land in the named columns.
func TestRecorderCSV(t *testing.T) {
	var rec Recorder
	for _, r := range sampleRecords() {
		rec.Add(r)
	}
	rec.Sort()
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want header + 3", len(rows))
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, want := range []string{"backend", "fail_pct", "maint_msgs", "net_msgs_per_lookup", "state_per_node"} {
		if _, ok := col[want]; !ok {
			t.Errorf("CSV header missing column %q", want)
		}
	}
	if rows[2][col["backend"]] != "treep" || rows[2][col["maint_msgs"]] != "1234" {
		t.Errorf("unexpected row 2: %v", rows[2])
	}
}

// TestRecorderJSONRoundTrip: WriteJSON output unmarshals back losslessly.
func TestRecorderJSONRoundTrip(t *testing.T) {
	var rec Recorder
	for _, r := range sampleRecords() {
		rec.Add(r)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back []PhaseRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != 3 {
		t.Fatalf("round-trip has %d records, want 3", len(back))
	}
	if back[1] != rec.Records[1] {
		t.Errorf("record 1 changed in round trip:\n got %+v\nwant %+v", back[1], rec.Records[1])
	}
}

// TestRecorderExport: Export creates the directory and both files.
func TestRecorderExport(t *testing.T) {
	var rec Recorder
	rec.Add(sampleRecords()[0])
	dir := filepath.Join(t.TempDir(), "nested", "out")
	csvPath, jsonPath, err := rec.Export(dir, "compare-test")
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	for _, p := range []string{csvPath, jsonPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("export artefact %s missing or empty (err=%v)", p, err)
		}
	}
}
