// Package metrics provides the measurement plumbing for the TreeP
// evaluation: hop histograms (Histogram), the hops×failure surfaces of
// Figures F–I (Surface), min/max envelopes of Figure E (MinMax, Series),
// union-find partition analysis of the live overlay (UnionFind — the
// paper attributes its Figure E spike to the network splitting into
// isolated sub-networks), and the structured per-phase recorder of the
// comparative harness (PhaseRecord, Recorder), which exports CSV and
// JSON artefacts.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts occurrences of small non-negative integer values (hop
// counts). The zero value is ready to use.
type Histogram struct {
	counts []uint64
	total  uint64
}

// Observe records one value; negatives are clamped to 0.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the observations of value v.
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum uint64
	for v, c := range h.counts {
		sum += uint64(v) * c
	}
	return float64(sum) / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the observations are ≤ v.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := uint64(p * float64(h.total))
	var acc uint64
	for v, c := range h.counts {
		acc += c
		if acc >= need {
			return v
		}
	}
	return len(h.counts) - 1
}

// Fraction returns the share of observations equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// FractionLE returns the share of observations ≤ v.
func (h *Histogram) FractionLE(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var acc uint64
	for i := 0; i <= v && i < len(h.counts); i++ {
		acc += h.counts[i]
	}
	return float64(acc) / float64(h.total)
}

// Merge adds all observations of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for v, c := range o.counts {
		for len(h.counts) <= v {
			h.counts = append(h.counts, 0)
		}
		h.counts[v] += c
		h.total += c
	}
}

// Surface is the Figures F–I structure: for each kill percentage (x axis)
// a hop histogram (y axis), rendered as the percentage of requests (z)
// resolved in a given number of hops.
type Surface struct {
	byKill map[int]*Histogram
}

// NewSurface returns an empty surface.
func NewSurface() *Surface { return &Surface{byKill: map[int]*Histogram{}} }

// At returns the histogram for a kill percentage, creating it on demand.
func (s *Surface) At(killPct int) *Histogram {
	h, ok := s.byKill[killPct]
	if !ok {
		h = &Histogram{}
		s.byKill[killPct] = h
	}
	return h
}

// KillPcts returns the recorded kill percentages in ascending order.
func (s *Surface) KillPcts() []int {
	out := make([]int, 0, len(s.byKill))
	for k := range s.byKill {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Render prints the surface as a table: rows = kill %, columns = hops
// 0..maxHops, cells = % of requests resolved in that many hops.
func (s *Surface) Render(maxHops int) string {
	var b strings.Builder
	b.WriteString("kill%")
	for hop := 0; hop <= maxHops; hop++ {
		fmt.Fprintf(&b, "\t%dh", hop)
	}
	b.WriteString("\n")
	for _, k := range s.KillPcts() {
		h := s.byKill[k]
		fmt.Fprintf(&b, "%d", k)
		for hop := 0; hop <= maxHops; hop++ {
			fmt.Fprintf(&b, "\t%.1f", h.Fraction(hop)*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// MinMax tracks an envelope across trials (Figure E).
type MinMax struct {
	min, max float64
	seen     bool
}

// Observe records a value.
func (m *MinMax) Observe(v float64) {
	if !m.seen || v < m.min {
		m.min = v
	}
	if !m.seen || v > m.max {
		m.max = v
	}
	m.seen = true
}

// Min returns the smallest observed value (0 when empty).
func (m *MinMax) Min() float64 { return m.min }

// Max returns the largest observed value (0 when empty).
func (m *MinMax) Max() float64 { return m.max }

// Spread returns max − min.
func (m *MinMax) Spread() float64 { return m.max - m.min }

// Seen reports whether any value was observed.
func (m *MinMax) Seen() bool { return m.seen }

// UnionFind is a disjoint-set structure used to count connected components
// of the live overlay's knowledge graph (partition detection).
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), sets: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set (path compression).
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b, reporting whether they were distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// Sets returns the number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Series is a simple (x, y) sequence for line figures (A–D).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Render prints the series as x→y lines.
func (s *Series) Render() string {
	var b strings.Builder
	for i := range s.X {
		fmt.Fprintf(&b, "%s\t%.2f\t%.3f\n", s.Name, s.X[i], s.Y[i])
	}
	return b.String()
}

// Table renders named columns against a shared x axis as a TSV with
// header, used by the bench harness to print paper-figure rows.
func Table(xLabel string, xs []float64, cols []*Series) string {
	var b strings.Builder
	b.WriteString(xLabel)
	for _, c := range cols {
		b.WriteString("\t" + c.Name)
	}
	b.WriteString("\n")
	for i, x := range xs {
		fmt.Fprintf(&b, "%.0f", x)
		for _, c := range cols {
			if i < len(c.Y) {
				fmt.Fprintf(&b, "\t%.2f", c.Y[i])
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
