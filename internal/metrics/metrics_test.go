package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Total() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram invariants")
	}
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Observe(v)
	}
	if h.Total() != 6 || h.Count(2) != 2 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Fatalf("counts wrong: %+v", h)
	}
	if h.Max() != 3 {
		t.Fatalf("max %d", h.Max())
	}
	if mean := h.Mean(); mean < 2.3 || mean > 2.4 {
		t.Fatalf("mean %v", mean)
	}
	if h.Percentile(0.5) != 2 || h.Percentile(1) != 3 {
		t.Fatalf("percentiles %d %d", h.Percentile(0.5), h.Percentile(1))
	}
	if h.Fraction(3) != 0.5 || h.FractionLE(2) != 0.5 {
		t.Fatalf("fractions %v %v", h.Fraction(3), h.FractionLE(2))
	}
	h.Observe(-5) // clamps to 0
	if h.Count(0) != 1 {
		t.Fatal("negative clamp")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	a.Observe(1)
	b.Observe(5)
	b.Observe(1)
	a.Merge(b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(5) != 1 {
		t.Fatalf("merge: %+v", a)
	}
}

func TestHistogramPercentileProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		h := &Histogram{}
		for _, v := range raw {
			h.Observe(int(v) % 32)
		}
		if h.Total() == 0 {
			return true
		}
		// Percentile must be monotone in p.
		prev := -1
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSurface(t *testing.T) {
	s := NewSurface()
	s.At(10).Observe(5)
	s.At(10).Observe(5)
	s.At(30).Observe(7)
	if got := s.KillPcts(); len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("kill pcts %v", got)
	}
	if s.At(10).Fraction(5) != 1 {
		t.Fatal("fraction at 10%")
	}
	out := s.Render(8)
	if !strings.Contains(out, "kill%") || !strings.Contains(out, "100.0") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestMinMax(t *testing.T) {
	var m MinMax
	if m.Seen() {
		t.Fatal("empty seen")
	}
	m.Observe(5)
	m.Observe(2)
	m.Observe(9)
	if m.Min() != 2 || m.Max() != 9 || m.Spread() != 7 || !m.Seen() {
		t.Fatalf("minmax %+v", m)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatal("initial sets")
	}
	if !uf.Union(0, 1) || uf.Union(0, 1) {
		t.Fatal("union semantics")
	}
	uf.Union(2, 3)
	if uf.Sets() != 3 {
		t.Fatalf("sets %d", uf.Sets())
	}
	if uf.Find(0) != uf.Find(1) || uf.Find(0) == uf.Find(2) {
		t.Fatal("find")
	}
	uf.Union(1, 3)
	if uf.Sets() != 2 || uf.Find(0) != uf.Find(2) {
		t.Fatal("transitive union")
	}
}

func TestUnionFindRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	uf := NewUnionFind(n)
	// Reference components via adjacency + flood fill.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < 100; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		uf.Union(a, b)
		adj[a][b], adj[b][a] = true, true
	}
	// Count components by DFS.
	seen := make([]bool, n)
	comps := 0
	var dfs func(int)
	dfs = func(v int) {
		seen[v] = true
		for w, ok := range adj[v] {
			if ok && !seen[w] {
				dfs(w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if !seen[v] {
			comps++
			dfs(v)
		}
	}
	if uf.Sets() != comps {
		t.Fatalf("union-find %d vs dfs %d", uf.Sets(), comps)
	}
}

func TestSeriesAndTable(t *testing.T) {
	s := &Series{Name: "G"}
	s.Add(10, 0.5)
	s.Add(20, 0.7)
	if out := s.Render(); !strings.Contains(out, "G\t10.00\t0.500") {
		t.Fatalf("series render:\n%s", out)
	}
	tbl := Table("kill%", []float64{10, 20}, []*Series{s})
	if !strings.Contains(tbl, "kill%\tG") || !strings.Contains(tbl, "10\t0.50") {
		t.Fatalf("table:\n%s", tbl)
	}
}
