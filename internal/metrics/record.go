package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// PhaseRecord is one backend × trial × phase measurement row of a
// comparative run: the lookup outcome distribution at the phase boundary
// plus the message/byte cost charged to the phase itself (maintenance,
// churn protocol) and to the measurement window.
type PhaseRecord struct {
	// Backend names the protocol ("treep", "chord", "flood").
	Backend string `json:"backend"`
	// Scenario names the phase script the trial played.
	Scenario string `json:"scenario"`
	// Phase names the phase this boundary closed, PhaseIdx its position.
	Phase    string `json:"phase"`
	PhaseIdx int    `json:"phase_idx"`
	// Seed is the trial's seed; identical across backends.
	Seed int64 `json:"seed"`
	// N is the initial population, Alive the live population at the
	// boundary.
	N     int `json:"n"`
	Alive int `json:"alive"`
	// Joins/Leaves/ZoneKilled count membership events injected during the
	// phase.
	Joins      int `json:"joins"`
	Leaves     int `json:"leaves"`
	ZoneKilled int `json:"zone_killed"`
	// Lookups is the number issued at the boundary; Found of them
	// resolved to the exact target.
	Lookups int `json:"lookups"`
	Found   int `json:"found"`
	// FailPct is failures / lookups in percent.
	FailPct float64 `json:"fail_pct"`
	// HopMean/HopP50/HopP99 summarise successful-lookup path lengths.
	HopMean float64 `json:"hop_mean"`
	HopP50  int     `json:"hop_p50"`
	HopP99  int     `json:"hop_p99"`
	// LatencyMeanMs is the mean resolution latency of successful lookups
	// in virtual milliseconds.
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	// MaintMsgs/MaintBytes is the network traffic sent during the phase
	// window (maintenance plus join/leave protocol; no measurement
	// lookups).
	MaintMsgs  uint64 `json:"maint_msgs"`
	MaintBytes uint64 `json:"maint_bytes"`
	// LookupMsgs/LookupBytes is the traffic sent during the measurement
	// window (lookup routing plus the background maintenance that keeps
	// running; the same background applies to every backend).
	LookupMsgs  uint64 `json:"lookup_msgs"`
	LookupBytes uint64 `json:"lookup_bytes"`
	// MsgsPerLookup is LookupMsgs / Lookups (raw window cost).
	MsgsPerLookup float64 `json:"msgs_per_lookup"`
	// PhaseSecs and WindowSecs are the virtual durations of the phase and
	// measurement windows, the denominators for rate corrections.
	PhaseSecs  float64 `json:"phase_secs"`
	WindowSecs float64 `json:"window_secs"`
	// NetMsgsPerLookup estimates the per-lookup routing cost with the
	// phase's maintenance rate subtracted from the measurement window
	// (clamped at zero): (LookupMsgs − MaintMsgs/PhaseSecs·WindowSecs) /
	// Lookups.
	NetMsgsPerLookup float64 `json:"net_msgs_per_lookup"`
	// StateSize is the total routing-state entry count across live nodes;
	// StatePerNode the per-node mean.
	StateSize    int     `json:"state_size"`
	StatePerNode float64 `json:"state_per_node"`
}

// recordHeader lists the CSV columns, in PhaseRecord field order.
var recordHeader = []string{
	"backend", "scenario", "phase", "phase_idx", "seed", "n", "alive",
	"joins", "leaves", "zone_killed",
	"lookups", "found", "fail_pct",
	"hop_mean", "hop_p50", "hop_p99", "latency_mean_ms",
	"maint_msgs", "maint_bytes", "lookup_msgs", "lookup_bytes",
	"msgs_per_lookup", "phase_secs", "window_secs", "net_msgs_per_lookup",
	"state_size", "state_per_node",
}

// row renders the record as CSV fields matching recordHeader.
func (r *PhaseRecord) row() []string {
	return []string{
		r.Backend, r.Scenario, r.Phase,
		fmt.Sprint(r.PhaseIdx), fmt.Sprint(r.Seed), fmt.Sprint(r.N), fmt.Sprint(r.Alive),
		fmt.Sprint(r.Joins), fmt.Sprint(r.Leaves), fmt.Sprint(r.ZoneKilled),
		fmt.Sprint(r.Lookups), fmt.Sprint(r.Found), fmt.Sprintf("%.2f", r.FailPct),
		fmt.Sprintf("%.2f", r.HopMean), fmt.Sprint(r.HopP50), fmt.Sprint(r.HopP99),
		fmt.Sprintf("%.2f", r.LatencyMeanMs),
		fmt.Sprint(r.MaintMsgs), fmt.Sprint(r.MaintBytes),
		fmt.Sprint(r.LookupMsgs), fmt.Sprint(r.LookupBytes),
		fmt.Sprintf("%.2f", r.MsgsPerLookup),
		fmt.Sprintf("%.2f", r.PhaseSecs), fmt.Sprintf("%.2f", r.WindowSecs),
		fmt.Sprintf("%.2f", r.NetMsgsPerLookup),
		fmt.Sprint(r.StateSize), fmt.Sprintf("%.2f", r.StatePerNode),
	}
}

// Recorder accumulates PhaseRecords and exports them as CSV and JSON, the
// machine-readable artefacts of a comparative run.
type Recorder struct {
	Records []PhaseRecord
}

// Add appends one record.
func (rec *Recorder) Add(r PhaseRecord) { rec.Records = append(rec.Records, r) }

// Sort orders records by (backend, seed, phase index) so exports are
// stable regardless of trial completion order.
func (rec *Recorder) Sort() {
	sort.SliceStable(rec.Records, func(i, j int) bool {
		a, b := &rec.Records[i], &rec.Records[j]
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.PhaseIdx < b.PhaseIdx
	})
}

// WriteCSV writes a header plus one line per record.
func (rec *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(recordHeader); err != nil {
		return err
	}
	for i := range rec.Records {
		if err := cw.Write(rec.Records[i].row()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the records as an indented JSON array.
func (rec *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec.Records)
}

// Export writes <base>.csv and <base>.json under dir, creating the
// directory as needed, and returns the two paths.
func (rec *Recorder) Export(dir, base string) (csvPath, jsonPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	csvPath = filepath.Join(dir, base+".csv")
	jsonPath = filepath.Join(dir, base+".json")
	cf, err := os.Create(csvPath)
	if err != nil {
		return "", "", err
	}
	defer cf.Close()
	if err := rec.WriteCSV(cf); err != nil {
		return "", "", err
	}
	jf, err := os.Create(jsonPath)
	if err != nil {
		return "", "", err
	}
	defer jf.Close()
	if err := rec.WriteJSON(jf); err != nil {
		return "", "", err
	}
	return csvPath, jsonPath, nil
}
