package scenario

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/simrt"
)

// zipf_test.go is the skewed-workload acceptance suite for the load
// balancer: the Zipf sampler's distribution, the headline p99-load cut
// under Zipf(1.0) reads, the flash-crowd regime, and the balance
// checkers staying quiet across a seed sweep of healthy balanced runs.

// TestZipfRankDistribution checks the sampler against the analytic
// Zipf(1.0) mass function: rank r's expected share of draws is
// 1/((r+1)·H_n).
func TestZipfRankDistribution(t *testing.T) {
	const n, draws = 100, 200000
	z := NewZipf(n, 1.0)
	if z.N() != n {
		t.Fatalf("N() = %d, want %d", z.N(), n)
	}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng.Float64())]++
	}
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	for _, r := range []int{0, 1, 2, 9} {
		want := float64(draws) / (float64(r+1) * h)
		got := float64(counts[r])
		if got < 0.9*want || got > 1.1*want {
			t.Errorf("rank %d drawn %d times, want %.0f ±10%%", r, counts[r], want)
		}
	}
	if !(counts[0] > counts[9] && counts[9] > counts[99]) {
		t.Errorf("head/tail ordering violated: counts[0]=%d counts[9]=%d counts[99]=%d",
			counts[0], counts[9], counts[99])
	}
}

// TestZipfSamplerEdgeCases pins the clamping rules: degenerate n and
// theta fall back to a single rank / the canonical exponent, and the
// extremes of the uniform input map to the first and last rank.
func TestZipfSamplerEdgeCases(t *testing.T) {
	z := NewZipf(0, -1)
	if z.N() != 1 || z.Rank(0) != 0 || z.Rank(0.999999) != 0 {
		t.Fatalf("degenerate sampler: N=%d Rank(0)=%d Rank(~1)=%d", z.N(), z.Rank(0), z.Rank(0.999999))
	}
	z = NewZipf(8, 1.0)
	if z.Rank(0) != 0 {
		t.Errorf("Rank(0) = %d, want 0", z.Rank(0))
	}
	if got := z.Rank(0.9999999); got != 7 {
		t.Errorf("Rank(~1) = %d, want 7", got)
	}
}

// balanceArm summarises one measured arm of a balance experiment.
type balanceArm struct {
	// Load is the per-node message-load distribution over the measured
	// window.
	Load LoadStats
	// ReaderHops is the mix-controlled static path length from the actual
	// reader pool to every ledgered key (see StaticHops), over RWalks
	// delivered walks.
	ReaderHops float64
	RWalks     int
	// GetsW / ServesW count client reads and reader-side cache serves
	// during the measured window.
	GetsW, ServesW uint64
}

// armCluster builds the standard balance-experiment fixture: every node
// carries a DHT service, records are ledgered, the overlay is settled.
func armCluster(n int, seed int64, balanced bool, records int) (*simrt.Cluster, *Storage, *Engine) {
	opts := simrt.Options{N: n, Seed: seed, Bulk: true}
	if balanced {
		opts.Config = core.Config{Balancer: true}
	}
	c := simrt.New(opts)
	st := NewStorage(3)
	st.HotCache = balanced
	st.AttachAll(c)
	c.StartAll()
	e := NewEngine(c, Options{Storage: st})
	Settle{For: 8 * time.Second}.Run(e)
	StoreRecords{Count: records}.Run(e)
	Settle{For: 2 * time.Second}.Run(e)
	return c, st, e
}

func totalCacheServes(c *simrt.Cluster, st *Storage) uint64 {
	var sum uint64
	for _, nd := range c.Nodes {
		if s := st.Service(nd.Addr()); s != nil {
			sum += s.Stats.CacheServes
		}
	}
	return sum
}

// measureArm plays the warmup phase, snapshots, plays the measurement
// phase, and summarises the window.
func measureArm(c *simrt.Cluster, st *Storage, e *Engine, warm, measure Phase) balanceArm {
	warm.Run(e)
	prev := SnapshotLoad(c)
	gets0 := st.Gets
	serves0 := totalCacheServes(c, st)
	measure.Run(e)
	arm := balanceArm{
		Load:    LoadPercentiles(LoadDeltas(c, prev)),
		GetsW:   st.Gets - gets0,
		ServesW: totalCacheServes(c, st) - serves0,
	}
	var readers []*core.Node
	for _, a := range e.readers.addrs {
		if nd := c.NodeByAddr(a); nd != nil {
			readers = append(readers, nd)
		}
	}
	arm.ReaderHops, arm.RWalks = StaticHops(c, readers, st.keys)
	return arm
}

// zipfArm runs one Zipf(1.0) read arm end to end.
func zipfArm(n int, seed int64, balanced bool, rate float64) balanceArm {
	c, st, e := armCluster(n, seed, balanced, 64)
	return measureArm(c, st, e,
		ZipfReads{For: 12 * time.Second, Rate: rate, Theta: 1.0, Readers: 64},
		ZipfReads{For: 20 * time.Second, Rate: rate, Theta: 1.0, Readers: 64})
}

// checkBalanceArm asserts the headline acceptance pair on an off/on arm
// couple: the balancer cuts the p99 per-node load by at least minCut
// while stretching the mix-controlled reader path length by at most
// maxStretch.
func checkBalanceArm(t *testing.T, name string, off, on balanceArm, minCut, maxStretch float64) {
	t.Helper()
	t.Logf("%s off: load %v readerHops=%.2f (%d walks)", name, off.Load, off.ReaderHops, off.RWalks)
	t.Logf("%s on:  load %v readerHops=%.2f (%d walks) servesW=%d/%d",
		name, on.Load, on.ReaderHops, on.RWalks, on.ServesW, on.GetsW)
	if on.Load.P99 == 0 {
		t.Fatalf("%s: balanced arm measured no load", name)
	}
	cut := float64(off.Load.P99) / float64(on.Load.P99)
	if cut < minCut {
		t.Errorf("%s: p99 load cut %.2fx (off %d / on %d), want >= %.1fx",
			name, cut, off.Load.P99, on.Load.P99, minCut)
	}
	stretch := on.ReaderHops/off.ReaderHops - 1
	if stretch > maxStretch {
		t.Errorf("%s: balancer stretched reader paths %.1f%% (%.2f -> %.2f), want <= %.0f%%",
			name, 100*stretch, off.ReaderHops, on.ReaderHops, 100*maxStretch)
	}
}

// TestZipfBalancerCutsTailLoad is the headline acceptance test: under a
// Zipf(1.0) read storm at N=2000, turning the balancer on (load
// observability + hot-key fan-out cache) must cut the p99 per-node
// message load at least 3x while keeping the mix-controlled lookup path
// length within 10% of the unbalanced baseline. Both arms run the
// identical workload from the identical seed; only the balancer flag
// differs.
func TestZipfBalancerCutsTailLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("N=2000 acceptance run; TestZipfBalancerSmoke covers short mode")
	}
	for _, seed := range []int64{1, 2} {
		off := zipfArm(2000, seed, false, 1500)
		on := zipfArm(2000, seed, true, 1500)
		checkBalanceArm(t, fmt.Sprintf("zipf/seed%d", seed), off, on, 3.0, 0.10)
		if on.ServesW*10 < on.GetsW*9 {
			t.Errorf("seed %d: cache absorbed only %d of %d window reads, want >= 90%%",
				seed, on.ServesW, on.GetsW)
		}
	}
}

// TestZipfBalancerSmoke is the scaled-down variant that runs in -short
// suites: same workload shape at N=300, looser (but still meaningful)
// bounds.
func TestZipfBalancerSmoke(t *testing.T) {
	off := zipfArm(300, 1, false, 200)
	on := zipfArm(300, 1, true, 200)
	checkBalanceArm(t, "zipf-smoke", off, on, 1.5, 0.15)
	if on.ServesW == 0 {
		t.Error("balanced smoke arm never served from reader caches")
	}
}

// TestFlashCrowdFanout pins the flash-crowd regime: the entire read rate
// aimed at ONE key. Without the balancer the key's owner absorbs nearly
// every lookup (max load is tens of times the mean); with fan-out the
// reader-side caches take the whole crowd and the hottest node stays
// within an order of magnitude of its peers.
func TestFlashCrowdFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("flash-crowd acceptance run")
	}
	for _, seed := range []int64{1, 2} {
		flash := func(balanced bool) balanceArm {
			c, st, e := armCluster(800, seed, balanced, 64)
			return measureArm(c, st, e,
				FlashCrowdReads{For: 8 * time.Second, Rate: 800, Readers: 64},
				FlashCrowdReads{For: 15 * time.Second, Rate: 800, Readers: 64})
		}
		off := flash(false)
		on := flash(true)
		t.Logf("flash/seed%d off: load %v", seed, off.Load)
		t.Logf("flash/seed%d on:  load %v servesW=%d/%d", seed, on.Load, on.ServesW, on.GetsW)
		if on.Load.Max == 0 {
			t.Fatalf("seed %d: balanced arm measured no load", seed)
		}
		if cut := float64(off.Load.Max) / float64(on.Load.Max); cut < 10 {
			t.Errorf("seed %d: hottest-node cut %.1fx (off max %d / on max %d), want >= 10x",
				seed, cut, off.Load.Max, on.Load.Max)
		}
		if on.ServesW != on.GetsW {
			t.Errorf("seed %d: crowd window served %d of %d reads from caches, want all",
				seed, on.ServesW, on.GetsW)
		}
	}
}

// TestBalanceCheckersHealthyUnderZipf sweeps 16 seeds of the balanced
// Zipf timeline with both balance checkers sampling every 2 s: a healthy
// balanced overlay must never trip them. (The companion trip tests in
// checker_test.go prove the same checkers DO fire on injected
// violations, so this quietness is evidence, not a tautology.)
func TestBalanceCheckersHealthyUnderZipf(t *testing.T) {
	seeds := int64(16)
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= seeds; seed++ {
		c := simrt.New(simrt.Options{N: 300, Seed: seed, Bulk: true, Config: core.Config{Balancer: true}})
		st := NewStorage(3)
		st.HotCache = true
		st.AttachAll(c)
		c.StartAll()
		e := NewEngine(c, Options{Storage: st, Checkers: BalanceCheckers(), SampleEvery: 2 * time.Second})
		res := e.Play(
			Settle{For: 8 * time.Second},
			StoreRecords{Count: 32},
			Settle{For: 2 * time.Second},
			ZipfReads{For: 16 * time.Second, Rate: 200, Theta: 1.0, Readers: 32},
		)
		for _, s := range res.Samples {
			for _, v := range s.Violations {
				t.Errorf("seed %d: %s at %v during %s: %s", seed, v.Checker, s.At, s.Phase, v.Detail)
			}
		}
		for _, v := range res.Final {
			t.Errorf("seed %d: final %s: %s", seed, v.Checker, v.Detail)
		}
	}
}
