package scenario

import (
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
)

// Settle runs the overlay quietly for a duration: maintenance, repair and
// elections proceed with no injected events. Every stress phase is
// normally followed by one before invariants are asserted.
type Settle struct {
	For time.Duration
}

// Name implements Phase.
func (Settle) Name() string { return "settle" }

// Run implements Phase.
func (s Settle) Run(e *Engine) { e.advance(s.For) }

// Churn injects continuous Poisson arrivals and departures: joins spawn
// brand-new nodes that bootstrap through the live overlay (dynamic
// membership), leaves fail-stop random live nodes with no goodbye. This is
// the steady-state regime the kill sweep never reaches.
type Churn struct {
	// For is the phase duration.
	For time.Duration
	// JoinRate and LeaveRate are Poisson intensities in events per virtual
	// second. Either may be zero.
	JoinRate, LeaveRate float64
}

// Name implements Phase.
func (Churn) Name() string { return "churn" }

// Run implements Phase.
func (c Churn) Run(e *Engine) {
	now := e.C.Now()
	end := now + c.For
	nextJoin, nextLeave := maxDuration, maxDuration
	if d := e.expDelay(c.JoinRate); d < maxDuration {
		nextJoin = now + d
	}
	if d := e.expDelay(c.LeaveRate); d < maxDuration {
		nextLeave = now + d
	}
	for {
		next := nextJoin
		if nextLeave < next {
			next = nextLeave
		}
		if next > end {
			e.advanceUntil(end)
			return
		}
		e.advanceUntil(next)
		if next == nextJoin {
			e.join()
			nextJoin = next + e.expDelay(c.JoinRate)
		} else {
			e.leave()
			nextLeave = next + e.expDelay(c.LeaveRate)
		}
	}
}

// FlashCrowd is a mass-arrival burst: Joins new nodes bootstrap over the
// Over window (all at once when Over is zero). It stresses the join path,
// the election machinery and the split rate limiter simultaneously.
type FlashCrowd struct {
	Joins int
	Over  time.Duration
}

// Name implements Phase.
func (FlashCrowd) Name() string { return "flash-crowd" }

// Run implements Phase.
func (f FlashCrowd) Run(e *Engine) {
	if f.Joins <= 0 {
		return
	}
	step := f.Over / time.Duration(f.Joins)
	for i := 0; i < f.Joins; i++ {
		e.join()
		if step > 0 {
			e.advance(step)
		}
	}
}

// ZoneFailure fail-stops every live node whose ID falls in a contiguous
// region of the space — a correlated failure that takes out a subtree's
// parents at every level along with their children, unlike the kill
// sweep's uniform sampling. Settle is the repair window run afterwards.
type ZoneFailure struct {
	Zone   idspace.Region
	Settle time.Duration
}

// Name implements Phase.
func (ZoneFailure) Name() string { return "zone-failure" }

// Run implements Phase.
func (z ZoneFailure) Run(e *Engine) {
	for _, n := range e.C.AliveNodes() {
		if z.Zone.Contains(n.ID()) {
			e.C.Kill(n)
			e.res.ZoneKilled++
		}
	}
	e.advance(z.Settle)
}

// ZoneFraction builds the zone [lo, hi] from fractions of the ID space,
// for callers scripting zones without raw coordinates.
func ZoneFraction(lo, hi float64) idspace.Region {
	return idspace.Region{Lo: idspace.FromFraction(lo), Hi: idspace.FromFraction(hi)}
}

// PartitionHeal splits the network at a coordinate — datagrams between the
// sides vanish in flight — holds the split, then heals it and lets the
// halves re-merge. The paper attributes its failure spikes to exactly this
// kind of partitioning (Figure E).
type PartitionHeal struct {
	// At is the split coordinate; zero means the middle of the space.
	At idspace.ID
	// Hold is how long the partition lasts.
	Hold time.Duration
	// Heal is the settle window after connectivity returns.
	Heal time.Duration
}

// Name implements Phase.
func (PartitionHeal) Name() string { return "partition-heal" }

// Run implements Phase.
func (p PartitionHeal) Run(e *Engine) {
	at := p.At
	if at == 0 {
		at = idspace.MaxID / 2
	}
	e.C.Partition(at)
	e.advance(p.Hold)
	e.C.Heal()
	e.advance(p.Heal)
}

// RevivalWave brings dead nodes back over a window: each revived node
// keeps its identity and stale protocol state and re-joins through a live
// bootstrap, as after a rolling restart or a power-restored rack.
type RevivalWave struct {
	// Count caps how many nodes revive; non-positive revives all dead.
	Count int
	// Over is the window the revivals spread across.
	Over time.Duration
}

// Name implements Phase.
func (RevivalWave) Name() string { return "revival-wave" }

// Run implements Phase.
func (w RevivalWave) Run(e *Engine) {
	dead := e.C.DeadNodes()
	count := w.Count
	if count <= 0 || count > len(dead) {
		count = len(dead)
	}
	if count == 0 {
		return
	}
	step := w.Over / time.Duration(count)
	for i := 0; i < count; i++ {
		n := dead[i]
		alive := e.C.AliveNodes()
		if len(alive) == 0 {
			return
		}
		boot := alive[e.rng.Intn(len(alive))]
		e.C.Revive(n)
		n.Join(boot.Addr())
		e.res.Revived++
		if step > 0 {
			e.advance(step)
		}
	}
}

// IslandsMerge fragments the overlay into two fully interleaved islands
// and then re-merges them through exactly ONE bridge link. The link
// filter splits nodes by address parity, so each island's ring spans the
// whole ID space with the other island's members woven between its own —
// the worst case for a merge protocol. During Hold every cross-island
// entry expires and each island converges into its own closed ring
// (self-healing probes drive that internal repair). Heal then restores
// connectivity but creates no links by itself: two converged rings are
// mutually invisible, and repair probes provably cannot cross (no node
// on a probe's walk knows any member of the other ring inside the void
// it probes). The single bridge — one node of one island joining through
// one node of the other — is all the merge protocol gets; the zip
// introductions and first-contact exchanges must rebuild one ring,
// hierarchy, and DHT keyspace from it.
type IslandsMerge struct {
	// Hold is the isolation window; it must exceed the entry TTL so the
	// islands truly separate.
	Hold time.Duration
	// Merge is the settle window after the bridge join.
	Merge time.Duration
}

// Name implements Phase.
func (IslandsMerge) Name() string { return "islands-merge" }

// Run implements Phase.
func (p IslandsMerge) Run(e *Engine) {
	side := func(n *core.Node) bool { return n.Addr()%2 == 0 }
	e.C.PartitionBy(side)
	e.advance(p.Hold)
	e.C.Heal()
	// One bridge: the lowest-ID live node of each island, deterministic
	// across runs.
	var a, b *core.Node
	for _, n := range e.C.AliveNodes() {
		switch {
		case side(n) && (a == nil || n.ID() < a.ID()):
			a = n
		case !side(n) && (b == nil || n.ID() < b.ID()):
			b = n
		}
	}
	if a != nil && b != nil {
		a.Join(b.Addr())
	}
	e.advance(p.Merge)
}
