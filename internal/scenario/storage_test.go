package scenario

import (
	"strings"
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/simrt"
)

// storageOpts is checkedOpts plus a bound storage context and the
// durability checkers.
func storageOpts(c *simrt.Cluster, factor int, minReadable float64, sample time.Duration) Options {
	st := NewStorage(factor)
	st.AttachAll(c)
	o := checkedOpts(sample)
	o.Storage = st
	o.Checkers = append(o.Checkers, StorageCheckers(minReadable)...)
	return o
}

// storageViolations filters a result's final violations to the storage
// checkers.
func storageViolations(res *Result) []Violation {
	var out []Violation
	for _, v := range res.Final {
		if strings.HasPrefix(v.Checker, "storage-") {
			out = append(out, v)
		}
	}
	return out
}

func TestStoreRecordsSeedsLedger(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := newCluster(t, 200, 11)
	opts := storageOpts(c, 3, 0.99, 0)
	res := Run(c, opts,
		Settle{For: 8 * time.Second},
		StoreRecords{Count: 60},
		Settle{For: 8 * time.Second})
	if opts.Storage.Records() < 55 {
		t.Fatalf("only %d/60 records ledgered (put fails: %d)",
			opts.Storage.Records(), opts.Storage.PutFails)
	}
	if sv := storageViolations(res); len(sv) > 0 {
		t.Fatalf("storage violations in steady state: %v", sv)
	}
	assertClean(t, res)
}

func TestStorageWorkloadUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := newCluster(t, 300, 12)
	opts := storageOpts(c, 3, 0.99, 5*time.Second)
	res := Run(c, opts,
		Settle{For: 8 * time.Second},
		StoreRecords{Count: 80},
		StorageWorkload{For: 20 * time.Second, PutRate: 3, GetRate: 6, JoinRate: 1, LeaveRate: 1},
		Settle{For: 12 * time.Second})
	st := opts.Storage
	if st.Puts == 0 || st.Gets == 0 {
		t.Fatalf("workload idle: %d puts, %d gets", st.Puts, st.Gets)
	}
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("no concurrent churn: %d joins, %d leaves", res.Joins, res.Leaves)
	}
	// Reads against a live replicated store should essentially never miss.
	if st.GetMiss*10 > st.Gets {
		t.Fatalf("%d/%d workload reads missed", st.GetMiss, st.Gets)
	}
	if sv := storageViolations(res); len(sv) > 0 {
		t.Fatalf("storage violations: %v", sv)
	}
}

// TestDurabilityUnderChurn2000 is the acceptance scenario: N=2000 with
// replication factor 3, a churn phase that replaces 30% of the
// population, and the engine's own durability checkers requiring ≥ 99% of
// pre-churn records readable afterwards.
func TestDurabilityUnderChurn2000(t *testing.T) {
	if testing.Short() {
		t.Skip("N=2000 durability scenario; skipped with -short")
	}
	c := newCluster(t, 2000, 13)
	opts := storageOpts(c, 3, 0.99, 0)
	// 30% of 2000 = 600 replacements: 60 virtual seconds at 10 leaves and
	// 10 joins per second.
	res := Run(c, opts,
		Settle{For: 8 * time.Second},
		StoreRecords{Count: 400},
		Churn{For: 60 * time.Second, JoinRate: 10, LeaveRate: 10},
		Settle{For: 14 * time.Second})
	if opts.Storage.Records() < 380 {
		t.Fatalf("seeding failed: %d/400 records", opts.Storage.Records())
	}
	if res.Leaves < 500 {
		t.Fatalf("churn too weak to exercise durability: %d leaves", res.Leaves)
	}
	// The acceptance bar for heavy replacement churn is the readable
	// fraction (≥ 99%); total loss of an individual record is possible
	// when an owner and both replicas die inside one maintenance window,
	// and is judged by the zonefail test's zero-loss bar instead.
	for _, v := range res.Final {
		if v.Checker == "storage-durability" {
			t.Fatalf("durability below threshold after 30%% replacement churn: %s", v.Detail)
		}
	}
}

// TestDurabilityZoneFailSingleNode checks the zero-loss half of the
// acceptance criterion: killing any single node (a one-node zone failure)
// must lose no record at all with replication factor 3.
func TestDurabilityZoneFailSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("N=2000 durability scenario; skipped with -short")
	}
	c := newCluster(t, 2000, 14)
	opts := storageOpts(c, 3, 1.0, 0)
	// A zone that contains exactly one live node: the one with the median
	// ID (any would do; the median avoids space-edge special cases).
	ids := make([]idspace.ID, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		ids = append(ids, n.ID())
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	victim := ids[len(ids)/2]
	res := Run(c, opts,
		Settle{For: 8 * time.Second},
		StoreRecords{Count: 300},
		ZoneFailure{Zone: idspace.Region{Lo: victim, Hi: victim}, Settle: 12 * time.Second})
	if res.ZoneKilled != 1 {
		t.Fatalf("zone killed %d nodes, want exactly 1", res.ZoneKilled)
	}
	for _, v := range res.Final {
		if v.Checker == "storage-no-loss" {
			t.Fatalf("record lost to a single-node failure: %s", v.Detail)
		}
	}
	if sv := storageViolations(res); len(sv) > 0 {
		t.Fatalf("storage violations after single-node zonefail: %v", sv)
	}
}

// TestDurabilityAblation pits active repair against the seed's
// put-time-only replication on an identical churn timeline: the repair
// machinery must keep strictly more records readable.
func TestDurabilityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	run := func(putTimeOnly bool) (readable, total int) {
		c := newCluster(t, 500, 16)
		st := NewStorage(3)
		st.PutTimeOnly = putTimeOnly
		st.AttachAll(c)
		opts := Options{Storage: st}
		Run(c, opts,
			Settle{For: 8 * time.Second},
			StoreRecords{Count: 200},
			Churn{For: 30 * time.Second, JoinRate: 5, LeaveRate: 5},
			Settle{For: 14 * time.Second})
		ctx := NewCtx(c)
		ctx.Storage = st
		for _, k := range st.keys {
			if recordReadable(ctx, st, k) {
				readable++
			}
		}
		return readable, st.Records()
	}
	repairedOK, repairedTotal := run(false)
	ablatedOK, ablatedTotal := run(true)
	t.Logf("active repair: %d/%d readable; put-time-only: %d/%d readable",
		repairedOK, repairedTotal, ablatedOK, ablatedTotal)
	if repairedTotal == 0 || ablatedTotal == 0 {
		t.Fatal("seeding failed")
	}
	repairedFrac := float64(repairedOK) / float64(repairedTotal)
	ablatedFrac := float64(ablatedOK) / float64(ablatedTotal)
	if repairedFrac < 0.99 {
		t.Fatalf("active repair kept only %.1f%% readable", 100*repairedFrac)
	}
	if repairedFrac <= ablatedFrac {
		t.Fatalf("ablation did not degrade durability: repair %.1f%% vs put-time-only %.1f%%",
			100*repairedFrac, 100*ablatedFrac)
	}
}

func TestStorageScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	run := func() (int, uint64, uint64) {
		c := newCluster(t, 150, 15)
		opts := storageOpts(c, 3, 0.99, 0)
		Run(c, opts,
			Settle{For: 6 * time.Second},
			StoreRecords{Count: 40},
			StorageWorkload{For: 10 * time.Second, PutRate: 2, GetRate: 4, JoinRate: 1, LeaveRate: 1},
			Settle{For: 8 * time.Second})
		return opts.Storage.Records(), opts.Storage.Puts, opts.Storage.Gets
	}
	r1, p1, g1 := run()
	r2, p2, g2 := run()
	if r1 != r2 || p1 != p2 || g1 != g2 {
		t.Fatalf("storage scenario not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			r1, p1, g1, r2, p2, g2)
	}
}
