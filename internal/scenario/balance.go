package scenario

import (
	"fmt"
	"sort"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/routing"
	"treep/internal/simrt"
)

// balance.go holds the load-balance observability plane: per-node
// message-load measurement (the p50/p99/max the EXPERIMENTS.md tables
// report) and the two runtime invariant checkers that make hotspots a
// test failure instead of a graph to eyeball.

// LoadStats summarises per-node message-load deltas over one window.
type LoadStats struct {
	Nodes int
	Mean  float64
	P50   uint64
	P99   uint64
	Max   uint64
}

// String formats the stats for logs and experiment tables.
func (s LoadStats) String() string {
	return fmt.Sprintf("nodes=%d mean=%.1f p50=%d p99=%d max=%d", s.Nodes, s.Mean, s.P50, s.P99, s.Max)
}

// SnapshotLoad captures every node's cumulative message count (in plus
// out). Diff two snapshots with LoadDeltas to get per-window loads.
func SnapshotLoad(c *simrt.Cluster) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(c.Nodes))
	for _, n := range c.Nodes {
		out[n.Addr()] = n.Stats.MsgsIn + n.Stats.MsgsOut
	}
	return out
}

// LoadDeltas returns the per-node message-count growth since prev for
// every currently live node that prev covered, ordered by node ID
// (deterministic). Nodes that joined after prev are skipped — their
// window is shorter and would read as artificially idle.
func LoadDeltas(c *simrt.Cluster, prev map[uint64]uint64) []uint64 {
	nodes := append([]*core.Node(nil), c.AliveNodes()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	out := make([]uint64, 0, len(nodes))
	for _, n := range nodes {
		base, ok := prev[n.Addr()]
		if !ok {
			continue
		}
		cur := n.Stats.MsgsIn + n.Stats.MsgsOut
		if cur >= base {
			out = append(out, cur-base)
		}
	}
	return out
}

// LoadPercentiles computes the window summary over a delta slice.
func LoadPercentiles(deltas []uint64) LoadStats {
	if len(deltas) == 0 {
		return LoadStats{}
	}
	sorted := append([]uint64(nil), deltas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum uint64
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) uint64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return LoadStats{
		Nodes: len(sorted),
		Mean:  float64(sum) / float64(len(sorted)),
		P50:   pct(0.50),
		P99:   pct(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// StaticHops walks the greedy (G) forwarding decision from each origin
// toward each target over the current routing tables — no time advances,
// no messages are sent — and returns the mean number of forwarding steps
// over the walks that delivered, plus how many of the origin×target walks
// that was. The runtime hops counter (LookupsForwarded/LookupsStarted)
// is confounded by the lookup MIX: a cache layer absorbs exactly the
// hot-key lookups, so the surviving lookups are the cold Zipf tail with
// its own path-length distribution. This walk asks the mix-controlled
// question — for the SAME origin/target pairs, did the balancer's routing
// bias stretch paths?
func StaticHops(c *simrt.Cluster, origins []*core.Node, targets []idspace.ID) (mean float64, delivered int) {
	var scratch routing.Scratch
	seen := make(map[walkState]bool, 64)
	var sum, n int
	for _, origin := range origins {
		for _, target := range targets {
			if hops, ok := staticWalk(c, &scratch, seen, origin, target); ok {
				sum += hops
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(sum) / float64(n), n
}

// staticWalk follows Route decisions from origin toward target and counts
// forwarding steps. ok is false when the walk cycles, exhausts the TTL,
// or hits a dead next hop — those are loop-freedom/liveness matters with
// their own checkers, not path-length samples.
func staticWalk(c *simrt.Cluster, scratch *routing.Scratch, seen map[walkState]bool, origin *core.Node, target idspace.ID) (int, bool) {
	req := &proto.LookupRequest{
		Origin: origin.Ref(),
		Target: target,
		TTL:    origin.Config().MaxTTL,
		Algo:   proto.AlgoG,
	}
	clear(seen)
	cur := origin
	var sender uint64
	hops := 0
	for {
		if req.TTL == 0 {
			return 0, false
		}
		params := cur.Config().Routing
		st := walkState{cur.Addr(), sender, req.Hops > params.Height}
		if seen[st] {
			return 0, false
		}
		seen[st] = true
		parent, has := cur.Table().Parent()
		fromParent := sender != 0 && has && parent.Addr == sender
		step := routing.RouteWith(scratch, cur.Ref(), cur.Table(), req, fromParent, sender, params)
		switch step.Action {
		case routing.Deliver:
			return hops, true
		case routing.Forward:
		default:
			return 0, false
		}
		next := c.NodeByAddr(step.Next.Addr)
		if next == nil || !c.Alive(next) {
			return 0, false
		}
		fwd := *req
		fwd.TTL--
		fwd.Hops++
		fwd.Alternates = step.Alternates
		req = &fwd
		sender = cur.Addr()
		cur = next
		hops++
	}
}

// --- invariant checkers -----------------------------------------------------

// BalanceCheckers returns the two load-balance invariants with the
// default bounds the balancer is expected to hold. They are not part of
// AllCheckers: pre-balancer timelines (and deliberately unbalanced
// ablation runs) would trip them by design.
func BalanceCheckers() []Checker {
	return []Checker{LoadSpread(8, 40), ChildBalance(3, 2)}
}

// LoadSpread checks that no live node's message load over the last
// checking window exceeds bound × the window's mean load. The checker
// keeps the previous pass's counters internally, so the first pass
// only primes the window. Windows whose mean is below minMean messages
// are skipped: ratios over near-idle traffic flag nothing but noise
// (one node answering one lookup during a quiet window is 10× a mean
// of 0.1).
func LoadSpread(bound float64, minMean float64) Checker {
	prev := map[uint64]uint64{}
	return Checker{Name: "load-spread", Check: func(x *Ctx) []Violation {
		alive := x.AliveByID()
		type sample struct {
			addr  uint64
			id    string
			delta uint64
		}
		var samples []sample
		var sum uint64
		for _, n := range alive {
			cur := n.Stats.MsgsIn + n.Stats.MsgsOut
			base, ok := prev[n.Addr()]
			if ok && cur >= base {
				samples = append(samples, sample{n.Addr(), n.ID().String(), cur - base})
				sum += cur - base
			}
			prev[n.Addr()] = cur
		}
		if len(samples) == 0 {
			return nil
		}
		mean := float64(sum) / float64(len(samples))
		if mean < minMean {
			return nil
		}
		limit := bound * mean
		var out []Violation
		for _, s := range samples {
			if float64(s.delta) > limit {
				out = append(out, Violation{
					Checker: "load-spread",
					Detail: fmt.Sprintf("node %s carried %d msgs this window (mean %.1f, bound %.0fx)",
						s.id, s.delta, mean, bound),
				})
			}
		}
		return out
	}}
}

// ChildBalance checks that at every hierarchy level, no parent carries
// more than factor × the median child count of its level (plus slack
// absolute children, so tiny medians do not flag normal variance). A
// violation is the tree-shape hotspot D3-Tree warns about: one node
// parenting a disproportionate share of a level while its peers idle.
func ChildBalance(factor float64, slack int) Checker {
	return Checker{Name: "child-balance", Check: func(x *Ctx) []Violation {
		alive := x.AliveByID()
		// Group live parents by level; alive is ID-sorted so each group
		// keeps a deterministic order.
		counts := map[uint8][]int{}
		for _, n := range alive {
			if c := n.Table().Children.Len(); c > 0 {
				counts[n.MaxLevel()] = append(counts[n.MaxLevel()], c)
			}
		}
		var levels []uint8
		for lvl := range counts {
			levels = append(levels, lvl)
		}
		sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
		var out []Violation
		for _, lvl := range levels {
			cs := append([]int(nil), counts[lvl]...)
			sort.Ints(cs)
			median := cs[len(cs)/2]
			limit := int(factor*float64(median)) + slack
			for _, n := range alive {
				if n.MaxLevel() != lvl {
					continue
				}
				if c := n.Table().Children.Len(); c > limit {
					out = append(out, Violation{
						Checker: "child-balance",
						Detail: fmt.Sprintf("level-%d node %s parents %d children (median %d, limit %d)",
							lvl, n.ID(), c, median, limit),
					})
				}
			}
		}
		return out
	}}
}
