package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"treep/internal/core"
	"treep/internal/dht"
	"treep/internal/idspace"
	"treep/internal/simrt"
)

// Storage makes DHT records a first-class scenario workload: it binds a
// dht.Service to every cluster node (including nodes churned in
// mid-scenario), keeps a ledger of every record the scenario wrote, and
// backs the durability checkers that judge whether the overlay kept its
// data through the timeline.
type Storage struct {
	// Factor is the replication factor configured on attached services.
	Factor int
	// PutTimeOnly disables active repair (replica maintenance, handoff,
	// read-repair) on every service this context attaches — the seed
	// implementation's put-time-only replication, for the durability
	// ablation in EXPERIMENTS.md.
	PutTimeOnly bool
	// HotCache enables hot-key replica fan-out and reader-side caching on
	// every attached service — the storage half of the load balancer
	// (core's side is Config.Balancer). Off by default so pre-balancer
	// timelines stay bit-identical.
	HotCache bool

	services map[uint64]*dht.Service

	// mu guards the ledger, the counters and wave bookkeeping against
	// concurrent completion callbacks: on a sharded cluster a Put/Get
	// callback runs on the issuing node's shard worker, and two requests
	// issued through different shards may complete in the same epoch.
	// The protected results are commutative (counters, a sorted+deduped
	// key set), so determinism does not depend on completion order.
	mu sync.Mutex

	// The ledger: every key the scenario successfully wrote, with the raw
	// key bytes for re-reading. keys stays sorted for deterministic
	// iteration.
	keys []idspace.ID
	raw  map[idspace.ID][]byte

	// Workload counters (read by benchmarks and tests).
	Puts, PutFails uint64
	Gets, GetMiss  uint64
}

// NewStorage creates a storage context with the given replication factor
// (0 means the dht default).
func NewStorage(factor int) *Storage {
	return &Storage{
		Factor:   factor,
		services: map[uint64]*dht.Service{},
		raw:      map[idspace.ID][]byte{},
	}
}

// AttachAll creates and binds a DHT service on every current cluster node.
// Call once before the scenario when the cluster has no services yet; use
// Bind when the caller already attached its own.
func (st *Storage) AttachAll(c *simrt.Cluster) {
	for _, nd := range c.Nodes {
		st.Attach(nd)
	}
}

// Attach creates and binds a DHT service on one node (the engine calls
// this for nodes spawned mid-scenario).
func (st *Storage) Attach(n *core.Node) {
	if _, ok := st.services[n.Addr()]; ok {
		return
	}
	s := dht.Attach(n)
	if st.Factor > 0 {
		s.ReplicationFactor = st.Factor
	}
	if st.PutTimeOnly {
		s.ActiveRepair = false
	}
	if st.HotCache {
		s.HotCache = true
	}
	st.services[n.Addr()] = s
}

// Bind registers an existing service (a caller that attached DHT services
// itself — the public SimNetwork does — shares them with the scenario).
func (st *Storage) Bind(s *dht.Service) {
	st.services[s.Node().Addr()] = s
	if st.Factor > 0 {
		s.ReplicationFactor = st.Factor
	}
	if st.PutTimeOnly {
		s.ActiveRepair = false
	}
	if st.HotCache {
		s.HotCache = true
	}
}

// Service returns the bound service for a node address (nil if none).
func (st *Storage) Service(addr uint64) *dht.Service { return st.services[addr] }

// Records returns the number of ledgered records.
func (st *Storage) Records() int { return len(st.keys) }

// ledger records a successful write.
func (st *Storage) ledger(rawKey []byte) {
	k := idspace.HashKey(rawKey)
	if _, ok := st.raw[k]; ok {
		return
	}
	i := sort.Search(len(st.keys), func(i int) bool { return st.keys[i] >= k })
	st.keys = append(st.keys, 0)
	copy(st.keys[i+1:], st.keys[i:])
	st.keys[i] = k
	st.raw[k] = append([]byte(nil), rawKey...)
}

// serviceOf picks the storage client bound to a live node, preferring the
// engine's deterministic random stream.
func (st *Storage) serviceOf(e *Engine) *dht.Service {
	alive := e.C.AliveNodes()
	for tries := 0; tries < 8 && len(alive) > 0; tries++ {
		nd := alive[e.rng.Intn(len(alive))]
		if s := st.services[nd.Addr()]; s != nil {
			return s
		}
	}
	return nil
}

// --- phases -----------------------------------------------------------------

// StoreRecords seeds Count records through random live writers and ledgers
// every acknowledged write; the durability checkers judge the ledger at
// sample time. Writes are issued in small concurrent waves and the phase
// drives the clock until each wave acknowledges.
type StoreRecords struct {
	Count int
	// Prefix namespaces the keys (default "rec"), so multiple store phases
	// in one timeline write distinct key sets.
	Prefix string
}

// Name implements Phase.
func (StoreRecords) Name() string { return "store-records" }

// Run implements Phase.
func (p StoreRecords) Run(e *Engine) {
	st := e.opts.Storage
	if st == nil || p.Count <= 0 {
		return
	}
	prefix := p.Prefix
	if prefix == "" {
		prefix = "rec"
	}
	const wave = 32
	for base := 0; base < p.Count; base += wave {
		end := base + wave
		if end > p.Count {
			end = p.Count
		}
		pending := 0
		for i := base; i < end; i++ {
			s := st.serviceOf(e)
			if s == nil {
				st.PutFails++
				continue
			}
			key := []byte(fmt.Sprintf("%s-%06d", prefix, i))
			value := []byte(fmt.Sprintf("v-%s-%06d", prefix, i))
			pending++
			st.Puts++
			s.Put(key, value, func(err error) {
				st.mu.Lock()
				defer st.mu.Unlock()
				pending--
				if err != nil {
					st.PutFails++
					return
				}
				st.ledger(key)
			})
		}
		deadline := e.C.Now() + 30*time.Second
		for e.C.Now() < deadline && !e.C.Interrupted() {
			st.mu.Lock()
			done := pending == 0
			st.mu.Unlock()
			if done {
				break
			}
			e.advance(100 * time.Millisecond)
		}
	}
}

// StorageWorkload drives a continuous put/get mix — optionally with
// concurrent membership churn, the regime the one-shot replication of the
// old DHT silently lost data under. Reads draw from the ledger and count
// misses; writes go to fresh keys and extend the ledger.
type StorageWorkload struct {
	// For is the phase duration.
	For time.Duration
	// PutRate and GetRate are Poisson intensities in ops per virtual
	// second. Either may be zero.
	PutRate, GetRate float64
	// JoinRate and LeaveRate inject churn concurrently with the workload
	// (zero for a quiet overlay).
	JoinRate, LeaveRate float64
	// Prefix namespaces workload keys (default "wl").
	Prefix string
}

// Name implements Phase.
func (StorageWorkload) Name() string { return "storage-workload" }

// Run implements Phase.
func (w StorageWorkload) Run(e *Engine) {
	st := e.opts.Storage
	if st == nil {
		// No storage context: degrade to plain churn so timelines stay
		// comparable.
		Churn{For: w.For, JoinRate: w.JoinRate, LeaveRate: w.LeaveRate}.Run(e)
		return
	}
	prefix := w.Prefix
	if prefix == "" {
		prefix = "wl"
	}
	now := e.C.Now()
	end := now + w.For
	next := [4]time.Duration{maxDuration, maxDuration, maxDuration, maxDuration}
	rates := [4]float64{w.PutRate, w.GetRate, w.JoinRate, w.LeaveRate}
	for i, r := range rates {
		if d := e.expDelay(r); d < maxDuration {
			next[i] = now + d
		}
	}
	seq := 0
	for {
		which, at := -1, end
		for i, t := range next {
			if t < at {
				which, at = i, t
			}
		}
		if which < 0 {
			e.advanceUntil(end)
			return
		}
		e.advanceUntil(at)
		switch which {
		case 0: // put
			if s := st.serviceOf(e); s != nil {
				key := []byte(fmt.Sprintf("%s-%06d", prefix, seq))
				value := []byte(fmt.Sprintf("v-%s-%06d", prefix, seq))
				seq++
				st.Puts++
				s.Put(key, value, func(err error) {
					if err != nil {
						st.PutFails++
						return
					}
					st.ledger(key)
				})
			}
		case 1: // get
			if len(st.keys) > 0 {
				if s := st.serviceOf(e); s != nil {
					k := st.keys[e.rng.Intn(len(st.keys))]
					st.Gets++
					s.Get(st.raw[k], func(_ []byte, err error) {
						if err != nil {
							st.GetMiss++
						}
					})
				}
			}
		case 2:
			e.join()
		case 3:
			e.leave()
		}
		next[which] = at + e.expDelay(rates[which])
	}
}

// --- durability checkers ----------------------------------------------------

// StorageCheckers returns the storage invariants; append them to
// AllCheckers when the scenario carries a Storage context.
func StorageCheckers(minReadable float64) []Checker {
	return []Checker{StorageNoLoss(), StorageDurability(minReadable)}
}

// StorageNoLoss flags every ledgered record with no live holder at all:
// such a record is unrecoverable — durability, not availability, was lost.
func StorageNoLoss() Checker {
	return Checker{Name: "storage-no-loss", Check: func(x *Ctx) []Violation {
		st := x.Storage
		if st == nil {
			return nil
		}
		var out []Violation
		for _, k := range st.keys {
			if !anyLiveHolder(x, st, k) {
				out = append(out, Violation{
					Checker: "storage-no-loss",
					Detail:  fmt.Sprintf("record %v has no live holder", k),
				})
			}
		}
		return out
	}}
}

// StorageDurability checks that at least minReadable of the ledgered
// records are *readable*: the static mirror of the Get path — the live
// node nearest the key holds the record, or one of its consult targets
// does (read-repair would heal and serve it). One aggregate violation is
// reported when the fraction falls below the threshold.
func StorageDurability(minReadable float64) Checker {
	return Checker{Name: "storage-durability", Check: func(x *Ctx) []Violation {
		st := x.Storage
		if st == nil || len(st.keys) == 0 {
			return nil
		}
		readable := 0
		for _, k := range st.keys {
			if recordReadable(x, st, k) {
				readable++
			}
		}
		frac := float64(readable) / float64(len(st.keys))
		if frac >= minReadable {
			return nil
		}
		return []Violation{{
			Checker: "storage-durability",
			Detail: fmt.Sprintf("%d/%d records readable (%.2f%% < %.2f%%)",
				readable, len(st.keys), 100*frac, 100*minReadable),
		}}
	}}
}

// anyLiveHolder reports whether any live node's service holds k.
func anyLiveHolder(x *Ctx, st *Storage, k idspace.ID) bool {
	for _, n := range x.C.AliveNodes() {
		s := st.services[n.Addr()]
		if s == nil {
			continue
		}
		if _, ok := s.LocalHashed(k); ok {
			return true
		}
	}
	return false
}

// recordReadable statically mirrors a Get: resolve the true owner (nearest
// live node to k — lookup correctness is the loop-freedom checker's job),
// then accept if the owner holds the record or any node in its consult set
// does.
func recordReadable(x *Ctx, st *Storage, k idspace.ID) bool {
	alive := x.AliveByID()
	if len(alive) == 0 {
		return false
	}
	var owner *core.Node
	var bestD uint64
	for _, n := range alive {
		if d := idspace.Dist(n.ID(), k); owner == nil || d < bestD {
			owner, bestD = n, d
		}
	}
	os := st.services[owner.Addr()]
	if os == nil {
		return false
	}
	if _, ok := os.LocalHashed(k); ok {
		return true
	}
	if !os.ActiveRepair {
		// Put-time-only services never consult replicas on a miss.
		return false
	}
	for _, tgt := range os.ReplicaTargets(k) {
		ts := st.services[tgt.Addr]
		if ts == nil {
			continue
		}
		nd := x.C.NodeByAddr(tgt.Addr)
		if nd == nil || !x.C.Alive(nd) {
			continue
		}
		if _, ok := ts.LocalHashed(k); ok {
			return true
		}
	}
	return false
}
