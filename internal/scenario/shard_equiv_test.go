package scenario

import (
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/simrt"
)

// TestShardEquivalenceChurn is the end-to-end equivalence oracle for the
// sharded kernel: the full churn scenario — Poisson joins and fail-stop
// leaves driven by the scenario engine, with the invariant checkers
// sampling mid-run, exactly as CI runs them — must reach a bit-identical
// cluster digest at every shard count. The checkers run unmodified
// against the sharded engine; any divergence in delivery order, timer
// interleaving, or random-draw sequencing across shard placements shows
// up as a digest mismatch against the single-shard reference.
func TestShardEquivalenceChurn(t *testing.T) {
	seeds := []int64{2, 29, 101}
	n := 150
	if testing.Short() {
		seeds = seeds[:2]
		n = 64
	}
	timeline := []Phase{
		Settle{For: 4 * time.Second},
		Churn{For: 10 * time.Second, JoinRate: 2, LeaveRate: 2},
		Settle{For: 4 * time.Second},
	}
	for _, seed := range seeds {
		var want uint64
		var wantRes *Result
		for _, shards := range []int{1, 2, 4, 8} {
			c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true, Shards: shards})
			c.StartAll()
			c.Run(4 * time.Second)
			eng := NewEngine(c, Options{
				Checkers:    AllCheckers(),
				SampleEvery: 2 * time.Second,
			})
			res := eng.Play(timeline...)
			got := c.StateDigest()
			c.Engine.Close()
			if shards == 1 {
				want, wantRes = got, res
				continue
			}
			if got != want {
				t.Errorf("seed %d: digest at %d shards = %#x, want %#x (1 shard)",
					seed, shards, got, want)
			}
			if res.Joins != wantRes.Joins || res.Leaves != wantRes.Leaves {
				t.Errorf("seed %d: %d shards churned %d joins/%d leaves, want %d/%d",
					seed, shards, res.Joins, res.Leaves, wantRes.Joins, wantRes.Leaves)
			}
			if len(res.Samples) != len(wantRes.Samples) {
				t.Errorf("seed %d: %d shards took %d samples, want %d",
					seed, shards, len(res.Samples), len(wantRes.Samples))
				continue
			}
			for i, s := range res.Samples {
				if w := wantRes.Samples[i]; s.Alive != w.Alive || len(s.Violations) != len(w.Violations) {
					t.Errorf("seed %d: %d shards sample %d = (alive %d, violations %d), want (%d, %d)",
						seed, shards, i, s.Alive, len(s.Violations), w.Alive, len(w.Violations))
				}
			}
		}
	}
}

// TestShardBalancerEquivalence is the seed-sweep equivalence oracle for
// the balancer stack: the full skewed-read timeline — Zipf reads, a
// flash crowd, hot-key fan-out, horizon-refresh probes and the balance
// checkers sampling mid-run — must reach a bit-identical cluster digest
// at every shard count, across a wide seed sweep. Everything the
// balancer added (load EWMAs, cache fan-out, versioned invalidation,
// deterministic horizon lookups) rides the same virtual-time kernel as
// the rest of the overlay, so any hidden wall-clock or map-order
// dependence shows up here as a digest mismatch.
func TestShardBalancerEquivalence(t *testing.T) {
	seeds := int64(16)
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		seeds = 4
		shardCounts = []int{1, 2}
	}
	timeline := []Phase{
		Settle{For: 4 * time.Second},
		StoreRecords{Count: 32},
		Settle{For: 2 * time.Second},
		ZipfReads{For: 8 * time.Second, Rate: 200, Theta: 1.0, Readers: 32},
		FlashCrowdReads{For: 4 * time.Second, Rate: 200, Readers: 32},
	}
	for seed := int64(1); seed <= seeds; seed++ {
		var want uint64
		var wantRes *Result
		var wantGets, wantServes uint64
		for _, shards := range shardCounts {
			c := simrt.New(simrt.Options{
				N: 300, Seed: seed, Bulk: true, Shards: shards,
				Config: core.Config{Balancer: true},
			})
			st := NewStorage(3)
			st.HotCache = true
			st.AttachAll(c)
			c.StartAll()
			eng := NewEngine(c, Options{
				Storage:     st,
				Checkers:    BalanceCheckers(),
				SampleEvery: 2 * time.Second,
			})
			res := eng.Play(timeline...)
			got := c.StateDigest()
			var serves uint64
			for _, nd := range c.Nodes {
				if s := st.Service(nd.Addr()); s != nil {
					serves += s.Stats.CacheServes
				}
			}
			c.Engine.Close()
			if shards == shardCounts[0] {
				want, wantRes, wantGets, wantServes = got, res, st.Gets, serves
				continue
			}
			if got != want {
				t.Errorf("seed %d: digest at %d shards = %#x, want %#x (%d shards)",
					seed, shards, got, want, shardCounts[0])
			}
			if st.Gets != wantGets || serves != wantServes {
				t.Errorf("seed %d: %d shards read %d gets/%d cache serves, want %d/%d",
					seed, shards, st.Gets, serves, wantGets, wantServes)
			}
			if len(res.Samples) != len(wantRes.Samples) {
				t.Errorf("seed %d: %d shards took %d samples, want %d",
					seed, shards, len(res.Samples), len(wantRes.Samples))
				continue
			}
			for i, s := range res.Samples {
				if w := wantRes.Samples[i]; s.Alive != w.Alive || len(s.Violations) != len(w.Violations) {
					t.Errorf("seed %d: %d shards sample %d = (alive %d, violations %d), want (%d, %d)",
						seed, shards, i, s.Alive, len(s.Violations), w.Alive, len(w.Violations))
				}
			}
		}
	}
}
