package scenario

import (
	"testing"
	"time"

	"treep/internal/simrt"
)

// TestShardEquivalenceChurn is the end-to-end equivalence oracle for the
// sharded kernel: the full churn scenario — Poisson joins and fail-stop
// leaves driven by the scenario engine, with the invariant checkers
// sampling mid-run, exactly as CI runs them — must reach a bit-identical
// cluster digest at every shard count. The checkers run unmodified
// against the sharded engine; any divergence in delivery order, timer
// interleaving, or random-draw sequencing across shard placements shows
// up as a digest mismatch against the single-shard reference.
func TestShardEquivalenceChurn(t *testing.T) {
	seeds := []int64{2, 29, 101}
	n := 150
	if testing.Short() {
		seeds = seeds[:2]
		n = 64
	}
	timeline := []Phase{
		Settle{For: 4 * time.Second},
		Churn{For: 10 * time.Second, JoinRate: 2, LeaveRate: 2},
		Settle{For: 4 * time.Second},
	}
	for _, seed := range seeds {
		var want uint64
		var wantRes *Result
		for _, shards := range []int{1, 2, 4, 8} {
			c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true, Shards: shards})
			c.StartAll()
			c.Run(4 * time.Second)
			eng := NewEngine(c, Options{
				Checkers:    AllCheckers(),
				SampleEvery: 2 * time.Second,
			})
			res := eng.Play(timeline...)
			got := c.StateDigest()
			c.Engine.Close()
			if shards == 1 {
				want, wantRes = got, res
				continue
			}
			if got != want {
				t.Errorf("seed %d: digest at %d shards = %#x, want %#x (1 shard)",
					seed, shards, got, want)
			}
			if res.Joins != wantRes.Joins || res.Leaves != wantRes.Leaves {
				t.Errorf("seed %d: %d shards churned %d joins/%d leaves, want %d/%d",
					seed, shards, res.Joins, res.Leaves, wantRes.Joins, wantRes.Leaves)
			}
			if len(res.Samples) != len(wantRes.Samples) {
				t.Errorf("seed %d: %d shards took %d samples, want %d",
					seed, shards, len(res.Samples), len(wantRes.Samples))
				continue
			}
			for i, s := range res.Samples {
				if w := wantRes.Samples[i]; s.Alive != w.Alive || len(s.Violations) != len(w.Violations) {
					t.Errorf("seed %d: %d shards sample %d = (alive %d, violations %d), want (%d, %d)",
						seed, shards, i, s.Alive, len(s.Violations), w.Alive, len(w.Violations))
				}
			}
		}
	}
}
