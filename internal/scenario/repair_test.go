package scenario

import (
	"fmt"
	"testing"
	"time"
)

// TestChurnRingRepairRegression reproduces the ring-repair hole: under
// sustained churn (N=300, 4 joins + 4 leaves per second for 30s) the
// passive repair machinery used to leave two ID-adjacent survivors
// mutually unaware at seeds 6, 8, 9 and 14 of this sweep — and, with
// early revisions of the active repair, a node whose anchors all died
// could go permanently dark (seed 7). The self-healing probes, the
// farewell greeting and the recent-peers rejoin fallback must close
// every gap at every seed; ring closure is checked with the persistence
// filter so only gaps that survive the grace window fail the test.
func TestChurnRingRepairRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("16 N=300 churn simulations; skipped with -short")
	}
	for seed := int64(1); seed <= 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, 300, seed)
			res := Run(c, Options{
				Checkers:    []Checker{RingClosure(), RingWalk()},
				FinalGrace:  3 * time.Second,
				FinalChecks: 4,
			},
				Settle{For: 8 * time.Second},
				Churn{For: 30 * time.Second, JoinRate: 4, LeaveRate: 4},
				Settle{For: 14 * time.Second})
			assertClean(t, res)
		})
	}
}

// TestIslandsMergeBridge drives the full partition-merge protocol: the
// overlay splits into two address-parity islands (each island's ring
// interleaved with the other across the whole ID space), converges
// separately past the entry TTL, then re-merges through exactly one
// bridge join. The zip cascade must rebuild a single closed ring (ring
// closure AND the successor walk across the whole live population), the
// hierarchy must re-tessellate, and every DHT record stored before the
// partition must be readable afterwards.
func TestIslandsMergeBridge(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := newCluster(t, 200, 21)
	opts := storageOpts(c, 3, 0.99, 0)
	res := Run(c, opts,
		Settle{For: 8 * time.Second},
		StoreRecords{Count: 60},
		Settle{For: 4 * time.Second},
		IslandsMerge{Hold: 15 * time.Second, Merge: 40 * time.Second})
	if opts.Storage.Records() < 55 {
		t.Fatalf("only %d/60 records ledgered before the partition (put fails: %d)",
			opts.Storage.Records(), opts.Storage.PutFails)
	}
	assertClean(t, res)
}
