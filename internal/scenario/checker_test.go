package scenario

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
	"treep/internal/simrt"
)

// checker_test.go proves the balance checkers actually detect what they
// claim to: each test primes a healthy cluster (no violations), injects
// a synthetic violation of exactly the invariant under test, and
// demands the checker fire — with a detail string naming the culprit.
// TestBalanceCheckersHealthyUnderZipf (zipf_test.go) is the other half:
// healthy balanced runs across 16 seeds never trip them.

// TestLoadSpreadTripsOnInjectedHotspot drives the windowed load checker
// through its whole lifecycle: priming pass, healthy window, an
// injected hotspot (one node's counters inflated far past bound x the
// mean), and the post-injection quiet window.
func TestLoadSpreadTripsOnInjectedHotspot(t *testing.T) {
	c := simrt.New(simrt.Options{N: 50, Seed: 1, Bulk: true})
	c.StartAll()
	c.Run(8 * time.Second)

	ch := LoadSpread(8, 40)
	var x Ctx
	x.reset(c, nil)
	if v := ch.Check(&x); len(v) != 0 {
		t.Fatalf("priming pass flagged: %v", v)
	}

	// A healthy window of ordinary maintenance traffic stays quiet.
	c.Run(2 * time.Second)
	x.reset(c, nil)
	if v := ch.Check(&x); len(v) != 0 {
		t.Fatalf("healthy window flagged: %v", v)
	}

	// Inject: one node claims a window load vastly above 8x the mean.
	hot := c.AliveNodes()[0]
	hot.Stats.MsgsIn += 50000
	x.reset(c, nil)
	v := ch.Check(&x)
	if len(v) != 1 {
		t.Fatalf("injected hotspot produced %d violations, want 1: %v", len(v), v)
	}
	if v[0].Checker != "load-spread" || !strings.Contains(v[0].Detail, hot.ID().String()) {
		t.Errorf("violation does not name the hot node %s: %+v", hot.ID(), v[0])
	}

	// The injection was consumed into the window baseline: with no new
	// traffic the next pass sees zero deltas and stays quiet.
	x.reset(c, nil)
	if v := ch.Check(&x); len(v) != 0 {
		t.Errorf("post-injection quiet window flagged: %v", v)
	}
}

// TestLoadSpreadSkipsIdleWindows pins the minMean guard: a lone busy
// node over a near-idle window is noise, not a hotspot.
func TestLoadSpreadSkipsIdleWindows(t *testing.T) {
	c := simrt.New(simrt.Options{N: 50, Seed: 1, Bulk: true})
	c.StartAll()
	c.Run(8 * time.Second)

	ch := LoadSpread(8, 1000000) // minMean far above any real window
	var x Ctx
	x.reset(c, nil)
	ch.Check(&x)
	c.AliveNodes()[0].Stats.MsgsIn += 50000
	x.reset(c, nil)
	if v := ch.Check(&x); len(v) != 0 {
		t.Errorf("idle-window guard failed: %v", v)
	}
}

// TestChildBalanceTripsOnInjectedFanIn checks the tree-shape invariant:
// after confirming a settled overlay is balanced, it stuffs dozens of
// synthetic children into one parent's table and demands the checker
// flag that parent — and only that parent.
func TestChildBalanceTripsOnInjectedFanIn(t *testing.T) {
	c := simrt.New(simrt.Options{N: 100, Seed: 1, Bulk: true})
	c.StartAll()
	c.Run(10 * time.Second)

	ch := ChildBalance(3, 2)
	var x Ctx
	x.reset(c, nil)
	if v := ch.Check(&x); len(v) != 0 {
		t.Fatalf("settled overlay flagged: %v", v)
	}

	// Pick a parent that already has children and give it an absurd
	// fan-in: far beyond factor x the level median plus slack.
	var parent *core.Node
	for _, nd := range c.AliveNodes() {
		if nd.MaxLevel() >= 1 && nd.Table().Children.Len() > 0 {
			parent = nd
			break
		}
	}
	if parent == nil {
		t.Fatal("no parent with children after settle")
	}
	now := c.Now()
	for i := uint64(0); i < 40; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], i)
		ref := proto.NodeRef{
			ID:    idspace.HashKey(b[:]),
			Addr:  1<<60 + i, // far outside real node addresses
			Score: 100,
		}
		parent.Table().Children.Upsert(ref, 0, now, 0, rtable.Direct)
	}
	x.reset(c, nil)
	v := ch.Check(&x)
	if len(v) == 0 {
		t.Fatal("injected fan-in tripped nothing")
	}
	for _, viol := range v {
		if viol.Checker != "child-balance" || !strings.Contains(viol.Detail, parent.ID().String()) {
			t.Errorf("violation does not name the overloaded parent %s: %+v", parent.ID(), viol)
		}
	}
}
