package scenario

import (
	"fmt"
	"sort"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/routing"
	"treep/internal/simrt"
)

// Violation is one broken-invariant occurrence.
type Violation struct {
	// Checker names the invariant that failed.
	Checker string
	// Detail says where and how.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Checker + ": " + v.Detail }

// Ctx is the shared state of one invariant-checking pass. Checkers are
// read-only and run between simulation events, so every checker in a pass
// sees the same snapshot — which is what lets the pass share one sorted
// alive-list (an O(N log N) sort that previously ran once per checker per
// sample) and the per-walk scratch buffers.
type Ctx struct {
	C *simrt.Cluster
	// Storage is the scenario's storage context (nil without one); the
	// durability checkers read its ledger and services.
	Storage *Storage

	aliveSorted []*core.Node
	ids         []idspace.ID
	cells       []idspace.Region
	chain       []uint64
	walkSeen    map[walkState]bool
	route       routing.Scratch
}

// NewCtx builds a checking context for one pass over the cluster.
func NewCtx(c *simrt.Cluster) *Ctx { return &Ctx{C: c} }

// reset invalidates the snapshot caches for a new pass (the engine reuses
// one Ctx across passes; buffers keep their capacity).
func (x *Ctx) reset(c *simrt.Cluster, st *Storage) {
	x.C = c
	x.Storage = st
	x.aliveSorted = x.aliveSorted[:0]
}

// AliveByID returns the live nodes sorted by coordinate, computed once
// per pass and shared by every checker. Callers must not mutate it.
func (x *Ctx) AliveByID() []*core.Node {
	if len(x.aliveSorted) == 0 {
		x.aliveSorted = append(x.aliveSorted[:0], x.C.AliveNodes()...)
		sort.Slice(x.aliveSorted, func(i, j int) bool {
			return x.aliveSorted[i].ID() < x.aliveSorted[j].ID()
		})
	}
	return x.aliveSorted
}

// Checker examines a live cluster and reports invariant violations. Checks
// are read-only and run between simulation events, so they see a
// consistent snapshot of every routing table.
type Checker struct {
	Name  string
	Check func(*Ctx) []Violation
}

// AllCheckers returns every invariant checker with default settings.
func AllCheckers() []Checker {
	return []Checker{
		RingClosure(),
		RingWalk(),
		TessellationCoverage(),
		ParentChildConsistency(),
		LookupLoopFreedom(32),
	}
}

// RingClosure checks the level-0 chain over the live population: every two
// ID-adjacent live nodes must be linked (at least one knows the other in
// its level-0 table). A break means a region of the space is unreachable
// by ring walking — the fall-back every lookup algorithm ultimately leans
// on (§III.f).
func RingClosure() Checker {
	return Checker{Name: "ring-closure", Check: func(x *Ctx) []Violation {
		alive := x.AliveByID()
		var out []Violation
		for i := 0; i+1 < len(alive); i++ {
			a, b := alive[i], alive[i+1]
			if a.Table().Level0.Get(b.Addr()) == nil && b.Table().Level0.Get(a.Addr()) == nil {
				out = append(out, Violation{
					Checker: "ring-closure",
					Detail:  fmt.Sprintf("gap between %s and %s", a.ID(), b.ID()),
				})
			}
		}
		return out
	}}
}

// RingWalk checks that the level-0 successor chain traverses the whole
// live population: starting from the lowest-ID live node, each step moves
// to the nearest live contact strictly to the walker's right in its own
// level-0 table, and the walk must visit every live node. RingClosure is
// a pairwise oracle — it tolerates a population that is closed pair by
// pair yet globally fractured into interleaved sub-rings, which is
// exactly what two merged islands look like mid-zip. The walk is the
// end-to-end statement that ONE ring emerged.
func RingWalk() Checker {
	return Checker{Name: "ring-walk", Check: func(x *Ctx) []Violation {
		alive := x.AliveByID()
		if len(alive) < 2 {
			return nil
		}
		cur := alive[0]
		visited := 1
		for steps := 1; steps < len(alive); steps++ {
			next := nextAliveRight(x, cur)
			if next == nil {
				break
			}
			cur = next
			visited++
		}
		if visited != len(alive) {
			return []Violation{{
				Checker: "ring-walk",
				Detail: fmt.Sprintf("successor walk visited %d of %d live nodes (stuck after %s)",
					visited, len(alive), cur.ID()),
			}}
		}
		return nil
	}}
}

// nextAliveRight resolves the walker's nearest live level-0 contact
// strictly to its right, or nil. Refs() is ID-sorted, so the first live
// hit is the nearest; skipping a live node here means the walker does not
// know its true successor and the walk undercounts — the violation.
func nextAliveRight(x *Ctx, cur *core.Node) *core.Node {
	for _, r := range cur.Table().Level0.Refs() {
		if r.ID <= cur.ID() {
			continue
		}
		if n := x.C.NodeByAddr(r.Addr); n != nil && x.C.Alive(n) {
			return n
		}
	}
	return nil
}

// TessellationCoverage checks that, at every occupied hierarchy level, the
// cells of the live members jointly cover the whole ID space (§III.a: each
// level tessellates the space). Each member's cell derives from its own
// bus view restricted to peers that really are live members of the level:
// entries for just-demoted or just-dead peers are eventual-consistency
// noise the protocol corrects on its own clock, but *missing* knowledge of
// a co-member shrinks no cell — so any gap means some slice of the space
// has no live responsible node that its neighbours know how to reach.
// Cells may overlap (partial views claim conservatively large cells).
func TessellationCoverage() Checker {
	return Checker{Name: "tessellation-coverage", Check: func(x *Ctx) []Violation {
		alive := x.C.AliveNodes()
		var maxLvl uint8
		for _, n := range alive {
			if n.MaxLevel() > maxLvl {
				maxLvl = n.MaxLevel()
			}
		}
		var out []Violation
		for lvl := uint8(1); lvl <= maxLvl; lvl++ {
			cells := x.cells[:0]
			for _, n := range alive {
				if n.MaxLevel() >= lvl {
					cells = append(cells, memberCell(x, n, lvl))
				}
			}
			x.cells = cells
			if len(cells) == 0 {
				// A vacated level is legal (the hierarchy shrank); coverage
				// is only owed by levels that still have members.
				continue
			}
			sort.Slice(cells, func(i, j int) bool { return cells[i].Lo < cells[j].Lo })
			if cells[0].Lo != 0 {
				out = append(out, Violation{
					Checker: "tessellation-coverage",
					Detail:  fmt.Sprintf("level %d: space before %s uncovered", lvl, cells[0].Lo),
				})
				continue
			}
			covered := cells[0].Hi // highest coordinate covered so far
			gap := false
			for _, cell := range cells[1:] {
				if covered < idspace.MaxID && cell.Lo > covered+1 {
					out = append(out, Violation{
						Checker: "tessellation-coverage",
						Detail:  fmt.Sprintf("level %d: gap (%s, %s)", lvl, covered, cell.Lo),
					})
					gap = true
					break
				}
				if cell.Hi > covered {
					covered = cell.Hi
				}
			}
			if !gap && covered != idspace.MaxID {
				out = append(out, Violation{
					Checker: "tessellation-coverage",
					Detail:  fmt.Sprintf("level %d: space after %s uncovered", lvl, covered),
				})
			}
		}
		return out
	}}
}

// memberCell computes n's tessellation cell at level lvl from its bus
// view restricted to live actual members of the level (§III.a midpoint
// rule; self is always a member).
func memberCell(x *Ctx, n *core.Node, lvl uint8) idspace.Region {
	ids := append(x.ids[:0], n.ID())
	if s, ok := n.Table().Bus[lvl]; ok {
		for _, r := range s.Refs() {
			actual := x.C.NodeByAddr(r.Addr)
			if actual != nil && x.C.Alive(actual) && actual.MaxLevel() >= lvl {
				ids = append(ids, r.ID)
			}
		}
	}
	x.ids = ids
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	self := sort.Search(len(ids), func(i int) bool { return ids[i] >= n.ID() })
	return idspace.FullRegion().CellOf(ids, self)
}

// ParentChildConsistency checks the tree edges over live nodes: a live
// child's parent must be live, must actually list the child, and must sit
// at a strictly higher level; and following parent pointers from any node
// must terminate without cycling (the hierarchy is a forest, never a
// graph with back edges).
func ParentChildConsistency() Checker {
	return Checker{Name: "parent-child", Check: func(x *Ctx) []Violation {
		var out []Violation
		for _, n := range x.C.AliveNodes() {
			p, ok := n.Table().Parent()
			if !ok {
				continue
			}
			pn := x.C.NodeByAddr(p.Addr)
			if pn == nil || !x.C.Alive(pn) {
				out = append(out, Violation{
					Checker: "parent-child",
					Detail:  fmt.Sprintf("%s has dead parent %s", n.ID(), p.ID),
				})
				continue
			}
			if pn.Table().Children.Get(n.Addr()) == nil {
				out = append(out, Violation{
					Checker: "parent-child",
					Detail:  fmt.Sprintf("parent %s does not list child %s", pn.ID(), n.ID()),
				})
			}
			if pn.MaxLevel() < n.MaxLevel()+1 {
				out = append(out, Violation{
					Checker: "parent-child",
					Detail: fmt.Sprintf("parent %s at level %d cannot parent %s at level %d",
						pn.ID(), pn.MaxLevel(), n.ID(), n.MaxLevel()),
				})
			}
			// Walk the parent chain; a chain longer than the height bound
			// has a cycle (or an impossible tower). The chain is at most
			// MaxHeight+2 nodes, so a linear scan replaces the per-node
			// map the old checker allocated.
			chain := append(x.chain[:0], n.Addr())
			cur := pn
			for depth := 0; depth <= int(n.Config().MaxHeight)+1; depth++ {
				seen := false
				for _, a := range chain {
					if a == cur.Addr() {
						seen = true
						break
					}
				}
				if seen {
					out = append(out, Violation{
						Checker: "parent-child",
						Detail:  fmt.Sprintf("parent cycle through %s", cur.ID()),
					})
					break
				}
				chain = append(chain, cur.Addr())
				next, ok := cur.Table().Parent()
				if !ok {
					break
				}
				nn := x.C.NodeByAddr(next.Addr)
				if nn == nil {
					break
				}
				cur = nn
			}
			x.chain = chain
		}
		return out
	}}
}

// walkState is one (node, sender, distance-regime) step of a static
// forwarding walk; revisiting a state means the walk cycles.
type walkState struct {
	node, sender uint64
	euclidean    bool
}

// LookupLoopFreedom statically walks the greedy (G) forwarding decision
// over the current routing tables for sampled origin/target pairs and
// flags cycles: revisiting a (node, sender) state in the same distance
// regime repeats deterministically forever, and exhausting the TTL on a
// static snapshot means the tables cannot resolve a live target. Both are
// routing-loop pathologies the TTL only papers over.
func LookupLoopFreedom(samples int) Checker {
	return Checker{Name: "lookup-loop-freedom", Check: func(x *Ctx) []Violation {
		alive := x.C.AliveNodes()
		if len(alive) < 2 {
			return nil
		}
		rng := x.C.Stream(0x6c6f6f70) // "loop"
		var out []Violation
		for i := 0; i < samples; i++ {
			origin := alive[rng.Intn(len(alive))]
			target := alive[rng.Intn(len(alive))]
			if v, ok := walkForLoop(x, origin, target.ID()); !ok {
				out = append(out, v)
			}
		}
		return out
	}}
}

// walkForLoop follows Route decisions from origin toward target without
// advancing time. It returns ok=false with a violation when the walk
// cycles or exhausts the TTL; termination (delivery, not-found, or a dead
// next hop — a liveness matter, judged by the lookup metrics instead)
// is ok.
func walkForLoop(x *Ctx, origin *core.Node, target idspace.ID) (Violation, bool) {
	req := &proto.LookupRequest{
		Origin: origin.Ref(),
		Target: target,
		TTL:    origin.Config().MaxTTL,
		Algo:   proto.AlgoG,
	}
	if x.walkSeen == nil {
		x.walkSeen = make(map[walkState]bool, 64)
	}
	clear(x.walkSeen)
	seen := x.walkSeen
	cur := origin
	var sender uint64
	for {
		if req.TTL == 0 {
			return Violation{
				Checker: "lookup-loop-freedom",
				Detail:  fmt.Sprintf("TTL exhausted from %s to %s", origin.ID(), target),
			}, false
		}
		params := cur.Config().Routing
		st := walkState{cur.Addr(), sender, req.Hops > params.Height}
		if seen[st] {
			return Violation{
				Checker: "lookup-loop-freedom",
				Detail:  fmt.Sprintf("cycle at %s routing %s", cur.ID(), target),
			}, false
		}
		seen[st] = true
		parent, has := cur.Table().Parent()
		fromParent := sender != 0 && has && parent.Addr == sender
		step := routing.RouteWith(&x.route, cur.Ref(), cur.Table(), req, fromParent, sender, params)
		if step.Action != routing.Forward {
			return Violation{}, true
		}
		next := x.C.NodeByAddr(step.Next.Addr)
		if next == nil || !x.C.Alive(next) {
			return Violation{}, true
		}
		fwd := *req
		fwd.TTL--
		fwd.Hops++
		fwd.Alternates = step.Alternates
		req = &fwd
		sender = cur.Addr()
		cur = next
	}
}
