package scenario

import (
	"math"
	"sort"
	"time"
)

// Zipf is a deterministic Zipf(θ) rank sampler: the CDF over n ranks is
// precomputed and a uniform draw maps to a rank by binary search. The
// stdlib's rand.Zipf requires s > 1 and owns its RNG; this one supports
// the canonical θ = 1.0 and is driven by any uniform float the caller
// supplies — in the scenario engine, the engine's seeded stream, which
// keeps every workload bit-identical per seed at any shard count.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over ranks 0..n-1 with exponent theta
// (weights 1/(rank+1)^theta). n < 1 is treated as 1; theta <= 0 as 1.0.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		n = 1
	}
	if theta <= 0 {
		theta = 1.0
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Rank maps a uniform draw u in [0, 1) to a rank; rank 0 is the most
// popular.
func (z *Zipf) Rank(u float64) int {
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// --- skewed-read phases -----------------------------------------------------

// readerPool is a bounded set of repeat readers: real clients are
// long-lived processes that issue many reads each, not a fresh node per
// request — and that repetition is exactly what reader-side caching
// exploits. Dead pool members are replaced on use so churn does not
// silently shrink the read rate.
type readerPool struct {
	addrs []uint64
}

// readerPool returns the engine's shared reader pool, creating or
// growing it to want members. The pool persists across phases: the same
// client population keeps reading through warmup, measurement and
// flash-crowd phases, which is both realistic and what lets reader-side
// caches built in one phase serve the next.
func (e *Engine) readerPool(want int) *readerPool {
	if want <= 0 {
		want = 64
	}
	if e.readers == nil {
		e.readers = &readerPool{}
	}
	e.readers.fill(e, want)
	return e.readers
}

// fill draws distinct live service-bearing nodes through the engine's
// deterministic stream until the pool has want members (or tries run out).
func (p *readerPool) fill(e *Engine, want int) {
	st := e.opts.Storage
	alive := e.C.AliveNodes()
	for tries := 0; tries < want*8 && len(p.addrs) < want && len(alive) > 0; tries++ {
		nd := alive[e.rng.Intn(len(alive))]
		if st.services[nd.Addr()] == nil {
			continue
		}
		dup := false
		for _, a := range p.addrs {
			if a == nd.Addr() {
				dup = true
				break
			}
		}
		if !dup {
			p.addrs = append(p.addrs, nd.Addr())
		}
	}
}

// pick returns a live reader's service, replacing dead slots in place.
func (p *readerPool) pick(e *Engine) (uint64, bool) {
	st := e.opts.Storage
	for tries := 0; tries < 8 && len(p.addrs) > 0; tries++ {
		i := e.rng.Intn(len(p.addrs))
		addr := p.addrs[i]
		if nd := e.C.NodeByAddr(addr); nd != nil && e.C.Alive(nd) && st.services[addr] != nil {
			return addr, true
		}
		// Replace the dead slot with a fresh live reader.
		alive := e.C.AliveNodes()
		if len(alive) == 0 {
			return 0, false
		}
		repl := alive[e.rng.Intn(len(alive))]
		if st.services[repl.Addr()] != nil {
			p.addrs[i] = repl.Addr()
		}
	}
	return 0, false
}

// ZipfReads drives Poisson-paced reads whose key popularity follows
// Zipf(Theta) over the ledgered records: rank 0 (the smallest hashed
// key) takes the lion's share, the tail almost nothing. This is the
// skewed regime that concentrates load on a handful of owners — the
// workload the capacity balancer exists for.
type ZipfReads struct {
	// For is the phase duration.
	For time.Duration
	// Rate is the aggregate read intensity in reads per virtual second.
	Rate float64
	// Theta is the Zipf exponent (default 1.0).
	Theta float64
	// Readers bounds the repeat-reader pool (default 64).
	Readers int
}

// Name implements Phase.
func (ZipfReads) Name() string { return "zipf-reads" }

// Run implements Phase.
func (z ZipfReads) Run(e *Engine) {
	st := e.opts.Storage
	if st == nil || len(st.keys) == 0 || z.Rate <= 0 {
		e.advance(z.For)
		return
	}
	dist := NewZipf(len(st.keys), z.Theta)
	pool := e.readerPool(z.Readers)
	runReads(e, z.For, z.Rate, pool, func() int { return dist.Rank(e.rng.Float64()) })
}

// FlashCrowdReads aims the whole read rate at ONE ledgered key — the
// flash-crowd regime (every client fetching the same just-published
// record) that turns a single owner into the hottest node in the
// overlay.
type FlashCrowdReads struct {
	// For is the phase duration.
	For time.Duration
	// Rate is the aggregate read intensity in reads per virtual second.
	Rate float64
	// Readers bounds the repeat-reader pool (default 64).
	Readers int
	// KeyIndex selects the crowd's key by index into the sorted ledger
	// (default 0).
	KeyIndex int
}

// Name implements Phase.
func (FlashCrowdReads) Name() string { return "flash-crowd-reads" }

// Run implements Phase.
func (f FlashCrowdReads) Run(e *Engine) {
	st := e.opts.Storage
	if st == nil || len(st.keys) == 0 || f.Rate <= 0 {
		e.advance(f.For)
		return
	}
	idx := f.KeyIndex
	if idx < 0 || idx >= len(st.keys) {
		idx = 0
	}
	pool := e.readerPool(f.Readers)
	runReads(e, f.For, f.Rate, pool, func() int { return idx })
}

// runReads is the shared Poisson next-event loop: each event picks a
// reader from the pool and a ledger rank from rankOf, issues the Get,
// and counts the outcome into the storage context.
func runReads(e *Engine, dur time.Duration, rate float64, pool *readerPool, rankOf func() int) {
	st := e.opts.Storage
	now := e.C.Now()
	end := now + dur
	next := now + e.expDelay(rate)
	for next <= end {
		e.advanceUntil(next)
		if e.C.Interrupted() {
			return
		}
		if addr, ok := pool.pick(e); ok {
			s := st.services[addr]
			k := st.keys[rankOf()]
			st.mu.Lock()
			st.Gets++
			st.mu.Unlock()
			s.Get(st.raw[k], func(_ []byte, err error) {
				if err != nil {
					st.mu.Lock()
					st.GetMiss++
					st.mu.Unlock()
				}
			})
		}
		next += e.expDelay(rate)
	}
	e.advanceUntil(end)
}
