// Package scenario drives a simrt.Cluster through scripted dynamic
// workloads and checks runtime invariants of the overlay mid-run.
//
// The paper's evaluation (§IV) is a one-way kill sweep: nodes are removed
// until a fraction of the initial population remains. Real overlays are
// judged under *dynamic* operation — interleaved joins and departures,
// mass arrivals, correlated regional failures, partitions that heal. A
// Scenario is a timeline of such phases played against a live cluster;
// between and during phases the engine samples invariant checkers
// (invariants.go) that double as test oracles for every stress and
// property test in the repository.
//
// Phases compose freely:
//
//	eng := scenario.NewEngine(cluster, scenario.Options{
//		Checkers:    scenario.AllCheckers(),
//		SampleEvery: 2 * time.Second,
//	})
//	res := eng.Play(
//		scenario.Settle{For: 8 * time.Second},
//		scenario.Churn{For: 30 * time.Second, JoinRate: 2, LeaveRate: 2},
//		scenario.Settle{For: 10 * time.Second},
//	)
//	if len(res.Final) > 0 { ... }
package scenario

import (
	"math/rand"
	"time"

	"treep/internal/simrt"
)

// maxDuration is "never" for next-event bookkeeping.
const maxDuration = time.Duration(1<<63 - 1)

// Phase is one segment of a scenario timeline. A phase advances the
// cluster's virtual clock as it runs; the engine samples invariants on the
// way through.
type Phase interface {
	// Name identifies the phase in samples and logs.
	Name() string
	// Run executes the phase against the engine's cluster.
	Run(e *Engine)
}

// Options configures an Engine.
type Options struct {
	// Checkers are the invariants sampled during the run and evaluated at
	// the end. Nil means AllCheckers is not implied — no checking.
	Checkers []Checker
	// SampleEvery is the virtual-time interval between mid-run invariant
	// samples. Zero disables sampling (Final is still evaluated by Play).
	SampleEvery time.Duration
	// FinalGrace and FinalChecks implement the persistence filter for the
	// final evaluation: mid-run violations are expected while the overlay
	// absorbs churn, persistent ones are not. When the last phase ends
	// with violations and FinalChecks > 0, the engine advances FinalGrace
	// of extra virtual time and re-checks, up to FinalChecks times,
	// reporting only what the overlay failed to repair. Zero FinalChecks
	// keeps the single strict boundary check (the experiment harness
	// relies on exact phase-boundary timing).
	FinalGrace  time.Duration
	FinalChecks int
	// Storage enables the DHT workload phases (StoreRecords,
	// StorageWorkload) and the durability checkers: it carries the
	// per-node services and the ledger of written records. Nodes the
	// scenario spawns are attached to it automatically.
	Storage *Storage
}

// Sample is one mid-run invariant evaluation.
type Sample struct {
	// At is the virtual time of the sample.
	At time.Duration
	// Phase is the name of the phase that was running.
	Phase string
	// Alive is the live population at the sample.
	Alive int
	// Violations holds whatever the checkers found. Mid-run violations are
	// expected while the overlay absorbs churn; persistent ones are not.
	Violations []Violation
}

// Result aggregates one scenario run.
type Result struct {
	// Samples are the mid-run invariant evaluations in time order.
	Samples []Sample
	// Final holds the violations found after the last phase completed.
	Final []Violation
	// Joins counts nodes spawned and bootstrapped into the overlay.
	Joins int
	// Leaves counts nodes fail-stopped by churn.
	Leaves int
	// ZoneKilled counts nodes fail-stopped by zone failures.
	ZoneKilled int
	// Revived counts nodes brought back by revival waves.
	Revived int
	// Events is the kernel's executed-event count when Play returned,
	// the denominator of the substrate's events/sec scaling numbers.
	Events uint64
}

// Engine plays phases against a cluster and samples invariants.
type Engine struct {
	C *simrt.Cluster

	opts       Options
	rng        *rand.Rand
	res        Result
	curPhase   string
	nextSample time.Duration
	// readers is the shared repeat-reader pool for skewed-read phases
	// (lazily built by the first such phase, reused by the rest).
	readers *readerPool
	// ctx is the shared invariant-checking context, reset per pass so all
	// checkers in one CheckNow share a single sorted alive-list and the
	// walk scratch buffers.
	ctx Ctx
}

// NewEngine binds an engine to a cluster. Scenario randomness (which node
// leaves, which bootstrap a reviver uses) draws from a dedicated kernel
// stream, so runs are reproducible from the cluster seed.
func NewEngine(c *simrt.Cluster, opts Options) *Engine {
	e := &Engine{C: c, opts: opts, rng: c.Stream(0x7363656e)} // "scen"
	if opts.SampleEvery > 0 {
		e.nextSample = c.Now() + opts.SampleEvery
	}
	return e
}

// Play runs the phases in order, evaluates the checkers one final time
// (with the configured persistence filter), and returns the accumulated
// result.
func (e *Engine) Play(phases ...Phase) *Result {
	for _, p := range phases {
		e.curPhase = p.Name()
		p.Run(e)
	}
	final := e.CheckNow()
	grace := e.opts.FinalGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	for retry := 0; len(final) > 0 && retry < e.opts.FinalChecks; retry++ {
		e.advance(grace)
		final = e.CheckNow()
	}
	e.res.Final = final
	e.res.Events = e.C.Events()
	return &e.res
}

// Run is the one-shot convenience: build an engine, play the phases.
func Run(c *simrt.Cluster, opts Options, phases ...Phase) *Result {
	return NewEngine(c, opts).Play(phases...)
}

// CheckNow evaluates every configured checker against the current overlay
// state and returns the violations. All checkers in one pass share a
// cached sorted alive-list instead of each re-sorting the cluster.
func (e *Engine) CheckNow() []Violation {
	e.ctx.reset(e.C, e.opts.Storage)
	var out []Violation
	for _, ch := range e.opts.Checkers {
		out = append(out, ch.Check(&e.ctx)...)
	}
	return out
}

// advance moves virtual time forward by d, taking invariant samples on the
// configured cadence.
func (e *Engine) advance(d time.Duration) { e.advanceUntil(e.C.Now() + d) }

// advanceUntil moves virtual time to t (absolute), sampling on the way.
// After a wall-clock Interrupt the cluster clock freezes, so the loop
// checks the flag explicitly rather than spinning on a time that will
// never arrive.
func (e *Engine) advanceUntil(t time.Duration) {
	for e.C.Now() < t && !e.C.Interrupted() {
		next := t
		if e.opts.SampleEvery > 0 && e.nextSample < next {
			next = e.nextSample
		}
		e.C.RunUntil(next)
		if e.opts.SampleEvery > 0 && e.C.Now() >= e.nextSample {
			e.takeSample()
			e.nextSample = e.C.Now() + e.opts.SampleEvery
		}
	}
}

func (e *Engine) takeSample() {
	e.res.Samples = append(e.res.Samples, Sample{
		At:         e.C.Now(),
		Phase:      e.curPhase,
		Alive:      len(e.C.AliveNodes()),
		Violations: e.CheckNow(),
	})
}

// join spawns one node and bootstraps it through a live peer; with storage
// enabled the joiner gets its DHT service immediately, so it participates
// in replication (and can be handed ownership) from its first tick.
func (e *Engine) join() {
	n := e.C.SpawnJoin()
	if n == nil {
		return
	}
	e.res.Joins++
	if e.opts.Storage != nil {
		e.opts.Storage.Attach(n)
	}
}

// leave fail-stops a random live node, never shrinking below two.
func (e *Engine) leave() {
	alive := e.C.AliveNodes()
	if len(alive) <= 2 {
		return
	}
	e.C.Kill(alive[e.rng.Intn(len(alive))])
	e.res.Leaves++
}

// expDelay draws a Poisson inter-arrival gap for the given events/second
// rate; a non-positive rate means the event never fires.
func (e *Engine) expDelay(rate float64) time.Duration {
	if rate <= 0 {
		return maxDuration
	}
	return time.Duration(e.rng.ExpFloat64() / rate * float64(time.Second))
}
