package scenario

import (
	"testing"
	"time"

	"treep/internal/simrt"
)

// newCluster builds a started, bulk-built cluster.
func newCluster(t *testing.T, n int, seed int64) *simrt.Cluster {
	t.Helper()
	c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true})
	c.StartAll()
	return c
}

// checkedOpts is the standard invariant configuration for scenario tests:
// all checkers, optional mid-run sampling, and the persistence filter on
// the final evaluation — the oracle is "the overlay converges to an
// invariant-clean state within a bounded window after the last phase",
// not "the boundary instant catches no repair in flight".
func checkedOpts(sample time.Duration) Options {
	return Options{
		Checkers:    AllCheckers(),
		SampleEvery: sample,
		FinalGrace:  3 * time.Second,
		FinalChecks: 4,
	}
}

// assertClean fails the test when the final invariant evaluation found
// anything, printing every violation.
func assertClean(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Final) == 0 {
		return
	}
	for _, v := range res.Final {
		t.Errorf("violation: %s", v)
	}
	t.Fatalf("%d invariant violations after settle", len(res.Final))
}

func TestSteadyStateInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 simulation; skipped with -short")
	}
	c := newCluster(t, 500, 1)
	res := Run(c, checkedOpts(0),
		Settle{For: 10 * time.Second})
	assertClean(t, res)
}

func TestContinuousChurnInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 simulation; skipped with -short")
	}
	c := newCluster(t, 500, 2)
	before := len(c.Nodes)
	res := Run(c, checkedOpts(5*time.Second),
		Settle{For: 8 * time.Second},
		Churn{For: 20 * time.Second, JoinRate: 2, LeaveRate: 2},
		Settle{For: 14 * time.Second})
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn injected nothing: %d joins, %d leaves", res.Joins, res.Leaves)
	}
	if got := len(c.Nodes) - before; got != res.Joins {
		t.Fatalf("population grew by %d, joins counted %d", got, res.Joins)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no mid-run samples taken")
	}
	assertClean(t, res)
}

func TestFlashCrowdInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 simulation; skipped with -short")
	}
	c := newCluster(t, 500, 3)
	res := Run(c, checkedOpts(0),
		Settle{For: 8 * time.Second},
		FlashCrowd{Joins: 100, Over: 5 * time.Second},
		Settle{For: 14 * time.Second})
	if res.Joins != 100 {
		t.Fatalf("flash crowd joined %d, want 100", res.Joins)
	}
	if alive := len(c.AliveNodes()); alive != 600 {
		t.Fatalf("alive after crowd: %d, want 600", alive)
	}
	assertClean(t, res)
}

func TestZoneFailureInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 simulation; skipped with -short")
	}
	c := newCluster(t, 500, 4)
	res := Run(c, checkedOpts(0),
		Settle{For: 8 * time.Second},
		ZoneFailure{Zone: ZoneFraction(0.40, 0.55), Settle: 22 * time.Second})
	// A 15% contiguous slice of a balanced population dies together.
	if res.ZoneKilled < 50 {
		t.Fatalf("zone killed only %d nodes", res.ZoneKilled)
	}
	assertClean(t, res)
}

func TestPartitionHealInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 simulation; skipped with -short")
	}
	c := newCluster(t, 500, 5)
	res := Run(c, checkedOpts(0),
		Settle{For: 8 * time.Second},
		PartitionHeal{Hold: 10 * time.Second, Heal: 25 * time.Second})
	assertClean(t, res)
}

func TestRevivalWaveInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("N=500 simulation; skipped with -short")
	}
	c := newCluster(t, 500, 6)
	res := Run(c, checkedOpts(0),
		Settle{For: 8 * time.Second},
		ZoneFailure{Zone: ZoneFraction(0.70, 0.80), Settle: 15 * time.Second},
		RevivalWave{Over: 5 * time.Second},
		Settle{For: 15 * time.Second})
	if res.Revived == 0 || res.Revived != res.ZoneKilled {
		t.Fatalf("revived %d of %d killed", res.Revived, res.ZoneKilled)
	}
	if alive := len(c.AliveNodes()); alive != 500 {
		t.Fatalf("alive after revival: %d, want 500", alive)
	}
	assertClean(t, res)
}

// TestCheckersDetectDamage verifies the oracles actually fire: killing a
// node that is someone's parent, with no repair window, must trip the
// parent-child checker.
func TestCheckersDetectDamage(t *testing.T) {
	c := newCluster(t, 100, 7)
	c.Run(6 * time.Second)

	killedParent := false
	for _, n := range c.AliveNodes() {
		if p, ok := n.Table().Parent(); ok {
			if pn := c.NodeByAddr(p.Addr); pn != nil && c.Alive(pn) {
				c.Kill(pn)
				killedParent = true
				break
			}
		}
	}
	if !killedParent {
		t.Fatal("no parent found to kill")
	}
	if v := ParentChildConsistency().Check(NewCtx(c)); len(v) == 0 {
		t.Fatal("dead parent not detected")
	}
}

// TestScenarioDeterministic replays the same scenario on the same seed and
// expects identical event counts and final state.
func TestScenarioDeterministic(t *testing.T) {
	run := func() (*Result, int) {
		c := newCluster(t, 150, 8)
		res := Run(c, Options{},
			Settle{For: 4 * time.Second},
			Churn{For: 8 * time.Second, JoinRate: 3, LeaveRate: 2},
			Settle{For: 4 * time.Second})
		return res, len(c.AliveNodes())
	}
	r1, a1 := run()
	r2, a2 := run()
	if r1.Joins != r2.Joins || r1.Leaves != r2.Leaves || a1 != a2 {
		t.Fatalf("not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			r1.Joins, r1.Leaves, a1, r2.Joins, r2.Leaves, a2)
	}
}

// TestSamplesCarryPhaseNames checks the mid-run sampling bookkeeping.
func TestSamplesCarryPhaseNames(t *testing.T) {
	c := newCluster(t, 60, 9)
	res := Run(c, Options{Checkers: []Checker{RingClosure()}, SampleEvery: 2 * time.Second},
		Settle{For: 5 * time.Second},
		FlashCrowd{Joins: 5, Over: 4 * time.Second})
	if len(res.Samples) < 3 {
		t.Fatalf("samples: %d", len(res.Samples))
	}
	names := map[string]bool{}
	for _, s := range res.Samples {
		names[s.Phase] = true
		if s.Alive == 0 {
			t.Fatal("sample with zero alive population")
		}
	}
	if !names["settle"] || !names["flash-crowd"] {
		t.Fatalf("phases sampled: %v", names)
	}
}
