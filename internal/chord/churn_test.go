package chord_test

// Lookup correctness of the Chord baseline under the scenario engine's
// dynamic phases (churn, zone failure), driven through the comparative
// overlay adapter. The in-package tests cover steady state and one-shot
// kills; these cover live membership change — nodes joining through the
// join protocol mid-run while others fail-stop.

import (
	"math/rand"
	"testing"
	"time"

	"treep/internal/overlay"
	"treep/internal/scenario"
)

// measure issues lookups between random live pairs and returns
// (found, issued).
func measure(ov overlay.Overlay, seed int64, issued int) (int, int) {
	ids := ov.AliveIDs()
	rng := rand.New(rand.NewSource(seed))
	found := 0
	for i := 0; i < issued; i++ {
		origin := rng.Intn(len(ids))
		target := ids[rng.Intn(len(ids))]
		ov.Lookup(origin, target, func(r overlay.Outcome) {
			if r.Found {
				found++
			}
		})
	}
	ov.Run(ov.LookupWindow())
	return found, issued
}

// TestChordLookupUnderChurn: after continuous joins and leaves plus a
// settle window, the ring resolves the surviving and the newly joined
// population correctly.
func TestChordLookupUnderChurn(t *testing.T) {
	ov := overlay.NewChord(150, 1)
	ov.Run(8 * time.Second)

	res, err := overlay.Play(ov, rand.New(rand.NewSource(42)),
		scenario.Churn{For: 15 * time.Second, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 12 * time.Second},
	)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn injected %d joins, %d leaves; want both > 0", res.Joins, res.Leaves)
	}
	ov.MaintenanceTick()

	found, issued := measure(ov, 7, 80)
	if found < issued*8/10 {
		t.Errorf("post-churn: %d/%d lookups resolved; want >= 80%%", found, issued)
	}

	// New nodes are first-class routing targets: lookups specifically for
	// IDs absent from the initial ring must resolve too. With leaves in
	// the mix some initial IDs are gone, so the alive list containing
	// res.Joins fresh members proves joins integrated; the success
	// threshold above covers them uniformly.
	if got := ov.AliveCount(); got != 150+res.Joins-res.Leaves {
		t.Errorf("AliveCount = %d, want %d", got, 150+res.Joins-res.Leaves)
	}
}

// TestChordLookupAfterZoneFailure: a contiguous 15% of the ring dies at
// once; stabilisation plus the out-of-band eviction tick must restore
// lookup correctness among survivors.
func TestChordLookupAfterZoneFailure(t *testing.T) {
	ov := overlay.NewChord(150, 3)
	ov.Run(8 * time.Second)

	res, err := overlay.Play(ov, rand.New(rand.NewSource(4)),
		scenario.ZoneFailure{Zone: scenario.ZoneFraction(0.40, 0.55), Settle: 10 * time.Second},
	)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if res.ZoneKilled == 0 {
		t.Fatal("zone failure killed nobody")
	}
	ov.MaintenanceTick()
	ov.Run(6 * time.Second) // let stabilisation repair around the hole

	found, issued := measure(ov, 11, 80)
	if found < issued*8/10 {
		t.Errorf("post-zone-failure: %d/%d lookups resolved; want >= 80%%", found, issued)
	}
}
