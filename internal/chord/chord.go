// Package chord implements a compact Chord DHT baseline (Stoica et al.) on
// the same simulated network as TreeP. The paper positions TreeP against
// DHTs like Chord (§I, §III.d: "Unlike some systems such as Chord, the
// TreeP routing table is maintained in a very efficient way"); this
// baseline lets the EXT-1 bench subject both to the same kill sweep.
//
// The implementation is deliberately standard: 64-bit ring, finger tables,
// successor lists for fault tolerance, periodic stabilisation with
// fix_fingers, dynamic joins bootstrapped through a successor lookup, and
// recursive lookups answered directly to the origin. Key types: Cluster
// (a simulated deployment), Node, LookupResult. The comparative harness
// drives it through the overlay.Chord adapter.
package chord

import (
	"math/rand"
	"sort"
	"time"

	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/sim"
)

// ringDist returns the clockwise distance from a to b on the ring.
func ringDist(a, b idspace.ID) uint64 { return uint64(b - a) }

// between reports whether x ∈ (a, b] clockwise.
func between(x, a, b idspace.ID) bool {
	if a == b {
		return true
	}
	return ringDist(a, x) <= ringDist(a, b) && x != a
}

// ref names a chord node.
type ref struct {
	ID   idspace.ID
	Addr netsim.Addr
}

func (r ref) zero() bool { return r.Addr == 0 }

// Message types (simulation-only; the chord baseline does not need wire
// encoding).
type findSuccessor struct {
	Origin ref
	Target idspace.ID
	ReqID  uint64
	Hops   uint8
	TTL    uint8
}

type foundSuccessor struct {
	ReqID uint64
	Succ  ref
	Hops  uint8
}

type getPredecessor struct{ From ref }

type predecessorIs struct {
	Pred ref
	// SuccList is the sender's successor list, for successor-list repair.
	SuccList []ref
}

type notify struct{ From ref }

// Node is one Chord peer.
type Node struct {
	id   idspace.ID
	addr netsim.Addr
	net  *netsim.Network
	rng  *rand.Rand

	fingers  [64]ref
	succList []ref // r successors, nearest first
	pred     ref

	alive bool

	// nextFinger rotates through the finger table for fix_fingers.
	nextFinger int
	// bootstrapping guards against concurrent bootstrap chains: stabilize
	// re-triggers bootstrapJoin every round while the successor list is
	// empty, but only one resolution may be in flight at a time.
	bootstrapping bool
	// stabTimer is the periodic stabilisation driver, cancelled on Kill so
	// dead nodes stop consuming kernel events.
	stabTimer *sim.Timer

	nextReq uint64
	pending map[uint64]*pendingLookup

	// Stats counters.
	Stats Stats
}

// Stats counts chord events.
type Stats struct {
	LookupsStarted uint64
	Forwards       uint64
	StabilizeMsgs  uint64
}

type pendingLookup struct {
	cb    func(LookupResult)
	timer *sim.Timer
}

// LookupResult reports a chord lookup outcome.
type LookupResult struct {
	Found bool
	Succ  idspace.ID
	Addr  netsim.Addr
	Hops  int
}

// successors kept per node.
const succListLen = 4

// Cluster is a simulated Chord deployment.
type Cluster struct {
	Kernel *sim.Kernel
	Net    *netsim.Network
	Nodes  []*Node

	byAddr map[netsim.Addr]*Node
	// timers are per-cluster periodic drivers.
	stabilizeEvery time.Duration
	lookupTimeout  time.Duration
	// spawnRand drives dynamic-join decisions (new IDs, bootstrap picks).
	spawnRand *rand.Rand
}

// New builds a Chord ring of n nodes with fully initialised fingers
// (steady state, mirroring the TreeP bulk build) and starts periodic
// stabilisation.
func New(n int, seed int64) *Cluster {
	k := sim.New(seed)
	net := netsim.New(k)
	c := &Cluster{
		Kernel:         k,
		Net:            net,
		byAddr:         map[netsim.Addr]*Node{},
		stabilizeEvery: 2 * time.Second,
		lookupTimeout:  10 * time.Second,
		spawnRand:      k.Stream(0x73706e63), // "spnc"
	}
	idRand := k.Stream(0x63686f72) // "chor"
	for i := 0; i < n; i++ {
		nd := &Node{
			net:     net,
			rng:     k.Stream(uint64(i) + 1000),
			pending: map[uint64]*pendingLookup{},
			alive:   true,
			id:      idspace.ID(idRand.Uint64()),
		}
		nd.addr = net.Attach(func(from netsim.Addr, payload interface{}, size int) {
			nd.handle(from, payload)
		})
		c.Nodes = append(c.Nodes, nd)
		c.byAddr[nd.addr] = nd
	}
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i].id < c.Nodes[j].id })

	// Steady-state initialisation: exact fingers, successors, predecessors.
	refs := make([]ref, n)
	ids := make([]idspace.ID, n)
	for i, nd := range c.Nodes {
		refs[i] = ref{ID: nd.id, Addr: nd.addr}
		ids[i] = nd.id
	}
	for i, nd := range c.Nodes {
		for s := 1; s <= succListLen; s++ {
			nd.succList = append(nd.succList, refs[(i+s)%n])
		}
		nd.pred = refs[(i-1+n)%n]
		for f := 0; f < 64; f++ {
			start := nd.id + idspace.ID(uint64(1)<<uint(f))
			// successor(start): first node clockwise from start.
			j := sort.Search(n, func(j int) bool { return ids[j] >= start })
			if j == n {
				j = 0
			}
			nd.fingers[f] = refs[j]
		}
	}

	// Periodic stabilisation per node.
	for _, nd := range c.Nodes {
		c.startStabilize(nd)
	}
	return c
}

// startStabilize schedules a node's periodic stabilisation with a random
// phase offset so rounds do not synchronise cluster-wide. The recurring
// leg rides the kernel's pooled periodic path and is cancelled on Kill.
func (c *Cluster) startStabilize(nd *Node) {
	offset := time.Duration(nd.rng.Int63n(int64(c.stabilizeEvery)))
	c.Kernel.Schedule(offset, func() {
		if !nd.alive {
			return
		}
		nd.stabilize(c)
		nd.stabTimer = c.Kernel.SchedulePeriodic(c.stabilizeEvery, func() {
			if nd.alive {
				nd.stabilize(c)
			}
		})
	})
}

// Join spawns a brand-new node mid-simulation and bootstraps it through a
// live peer: the bootstrap resolves successor(newID); the joiner adopts
// the answer as its successor, seeds its fingers with it, and lets
// periodic stabilisation repair fingers and predecessors — the standard
// simulation treatment of Chord's join. Integration completes
// asynchronously as the kernel advances; it returns nil when no live
// bootstrap exists.
func (c *Cluster) Join() *Node {
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	nd := &Node{
		net:     c.Net,
		pending: map[uint64]*pendingLookup{},
		alive:   true,
		id:      idspace.ID(c.spawnRand.Uint64()),
	}
	nd.addr = c.Net.Attach(func(from netsim.Addr, payload interface{}, size int) {
		nd.handle(from, payload)
	})
	nd.rng = c.Kernel.Stream(uint64(nd.addr) + 1000)
	c.Nodes = append(c.Nodes, nd)
	c.byAddr[nd.addr] = nd

	c.bootstrapJoin(nd)
	c.startStabilize(nd)
	return nd
}

// bootstrapJoin resolves successor(nd.id) through a random live peer and
// installs the answer. A failed resolution (the bootstrap died, the ring
// was churning, the lookup timed out) is retried through a fresh
// bootstrap every stabilisation interval until the node has a successor —
// without the retry a lost join leaves a permanent ghost that counts as
// alive but can neither route nor be routed to.
func (c *Cluster) bootstrapJoin(nd *Node) {
	if !nd.alive || nd.bootstrapping || !nd.firstLiveSuccessor().zero() {
		return
	}
	var boot *Node
	for _, cand := range c.AliveNodes() {
		if cand.addr != nd.addr {
			boot = cand
			break
		}
	}
	if boot == nil {
		return
	}
	// Randomise among live peers: scan start chosen by the spawn stream.
	if alive := c.AliveNodes(); len(alive) > 1 {
		for tries := 0; tries < 4; tries++ {
			cand := alive[c.spawnRand.Intn(len(alive))]
			if cand.addr != nd.addr {
				boot = cand
				break
			}
		}
	}
	nd.bootstrapping = true
	boot.Lookup(c, nd.id, func(r LookupResult) {
		nd.bootstrapping = false
		if !nd.alive || !nd.firstLiveSuccessor().zero() {
			return
		}
		if !r.Found || r.Addr == nd.addr {
			c.Kernel.Schedule(c.stabilizeEvery, func() { c.bootstrapJoin(nd) })
			return
		}
		succ := ref{ID: r.Succ, Addr: r.Addr}
		nd.succList = append([]ref{succ}, nd.succList...)
		if len(nd.succList) > succListLen {
			nd.succList = nd.succList[:succListLen]
		}
		for f := range nd.fingers {
			if nd.fingers[f].zero() {
				nd.fingers[f] = succ
			}
		}
	})
}

// Partition splits the network at the given ring coordinate: datagrams
// between nodes on opposite sides of split are dropped until Heal.
func (c *Cluster) Partition(split idspace.ID) {
	c.Net.SetLinkFilter(netsim.SplitFilter(split, func(a netsim.Addr) (idspace.ID, bool) {
		nd, ok := c.byAddr[a]
		if !ok {
			return 0, false
		}
		return nd.id, true
	}))
}

// Heal removes the partition installed by Partition.
func (c *Cluster) Heal() { c.Net.SetLinkFilter(nil) }

// LookupTimeout reports how long a lookup can stay pending before its
// origin gives up.
func (c *Cluster) LookupTimeout() time.Duration { return c.lookupTimeout }

// StateSize returns the node's routing-state entry count: distinct peers
// referenced by its fingers, successor list and predecessor.
func (nd *Node) StateSize() int {
	seen := map[netsim.Addr]bool{}
	for _, f := range nd.fingers {
		if !f.zero() {
			seen[f.Addr] = true
		}
	}
	for _, s := range nd.succList {
		if !s.zero() {
			seen[s.Addr] = true
		}
	}
	if !nd.pred.zero() {
		seen[nd.pred.Addr] = true
	}
	return len(seen)
}

// Run advances virtual time.
func (c *Cluster) Run(d time.Duration) { _ = c.Kernel.RunFor(d) }

// Kill fail-stops a node.
func (c *Cluster) Kill(nd *Node) {
	nd.alive = false
	if nd.stabTimer != nil {
		nd.stabTimer.Cancel()
		nd.stabTimer = nil
	}
	c.Net.Kill(nd.addr)
}

// Alive reports liveness.
func (c *Cluster) Alive(nd *Node) bool { return nd.alive }

// AliveNodes lists surviving nodes.
func (c *Cluster) AliveNodes() []*Node {
	out := make([]*Node, 0, len(c.Nodes))
	for _, nd := range c.Nodes {
		if nd.alive {
			out = append(out, nd)
		}
	}
	return out
}

// ID returns the node's ring coordinate.
func (nd *Node) ID() idspace.ID { return nd.id }

// Lookup resolves successor(target) and calls cb exactly once. The kernel
// must be advanced by the caller (Cluster.Run).
func (nd *Node) Lookup(c *Cluster, target idspace.ID, cb func(LookupResult)) {
	nd.Stats.LookupsStarted++
	nd.nextReq++
	req := nd.nextReq
	pl := &pendingLookup{cb: cb}
	nd.pending[req] = pl
	pl.timer = c.Kernel.Schedule(c.lookupTimeout, func() {
		if _, ok := nd.pending[req]; !ok {
			return
		}
		delete(nd.pending, req)
		cb(LookupResult{Found: false})
	})
	nd.route(&findSuccessor{Origin: ref{ID: nd.id, Addr: nd.addr}, Target: target, ReqID: req, TTL: 200})
}

// route implements the recursive findSuccessor step at this node.
func (nd *Node) route(m *findSuccessor) {
	if m.TTL == 0 {
		return
	}
	succ := nd.firstLiveSuccessor()
	if succ.zero() {
		return
	}
	// Target in (self, successor]: the successor owns it.
	if between(m.Target, nd.id, succ.ID) {
		nd.net.Send(nd.addr, m.Origin.Addr, &foundSuccessor{ReqID: m.ReqID, Succ: succ, Hops: m.Hops + 1}, 64)
		return
	}
	next := nd.closestPreceding(m.Target)
	if next.zero() || next.Addr == nd.addr {
		next = succ
	}
	fwd := *m
	fwd.Hops++
	fwd.TTL--
	nd.Stats.Forwards++
	nd.net.Send(nd.addr, next.Addr, &fwd, 64)
}

// closestPreceding scans fingers and the successor list for the closest
// node preceding the target.
func (nd *Node) closestPreceding(target idspace.ID) ref {
	var best ref
	consider := func(r ref) {
		if r.zero() {
			return
		}
		if between(r.ID, nd.id, target) && r.ID != target {
			if best.zero() || between(best.ID, nd.id, r.ID) {
				best = r
			}
		}
	}
	for f := 63; f >= 0; f-- {
		consider(nd.fingers[f])
	}
	for _, s := range nd.succList {
		consider(s)
	}
	return best
}

func (nd *Node) firstLiveSuccessor() ref {
	if len(nd.succList) == 0 {
		return ref{}
	}
	return nd.succList[0]
}

// stabilize is Chord's periodic maintenance: verify the successor, adopt
// its predecessor when closer, refresh the successor list, notify, and
// run one fix_fingers step.
func (nd *Node) stabilize(c *Cluster) {
	// Keepalive-based failure detection, modelled out-of-band at
	// stabilise cadence (the same convention as DropDead): dead entries
	// fall off the front of the successor list and a dead predecessor is
	// forgotten. A node whose entire successor list died re-bootstraps
	// through a live peer — without this, a node orphaned by its
	// successor's death would probe the corpse forever.
	for len(nd.succList) > 0 && !c.Net.Alive(nd.succList[0].Addr) {
		nd.succList = nd.succList[1:]
	}
	if !nd.pred.zero() && !c.Net.Alive(nd.pred.Addr) {
		nd.pred = ref{}
	}
	succ := nd.firstLiveSuccessor()
	if succ.zero() {
		c.bootstrapJoin(nd)
		return
	}
	nd.Stats.StabilizeMsgs++
	nd.net.Send(nd.addr, succ.Addr, &getPredecessor{From: ref{ID: nd.id, Addr: nd.addr}}, 32)
	nd.fixFinger(c)
}

// fixFinger is Chord's fix_fingers: re-resolve successor(id + 2^f) for one
// finger per round, rotating f. The resolution is a normal recursive
// lookup, so dead fingers heal and newly joined nodes become finger
// targets without any out-of-band state.
func (nd *Node) fixFinger(c *Cluster) {
	f := nd.nextFinger
	nd.nextFinger = (nd.nextFinger + 1) % len(nd.fingers)
	start := nd.id + idspace.ID(uint64(1)<<uint(f))
	nd.Lookup(c, start, func(r LookupResult) {
		if r.Found && nd.alive {
			nd.fingers[f] = ref{ID: r.Succ, Addr: r.Addr}
		}
	})
}

// handle dispatches chord messages.
func (nd *Node) handle(from netsim.Addr, payload interface{}) {
	if !nd.alive {
		return
	}
	switch m := payload.(type) {
	case *findSuccessor:
		nd.route(m)
	case *foundSuccessor:
		if pl, ok := nd.pending[m.ReqID]; ok {
			delete(nd.pending, m.ReqID)
			pl.timer.Cancel()
			pl.cb(LookupResult{Found: true, Succ: m.Succ.ID, Addr: m.Succ.Addr, Hops: int(m.Hops)})
		}
	case *getPredecessor:
		nd.net.Send(nd.addr, from, &predecessorIs{Pred: nd.pred, SuccList: append([]ref(nil), nd.succList...)}, 128)
		// The asker is alive and behind us: candidate predecessor.
		if nd.pred.zero() || between(m.From.ID, nd.pred.ID, nd.id) {
			nd.pred = m.From
		}
	case *predecessorIs:
		succ := nd.firstLiveSuccessor()
		// successor's predecessor between us and successor: adopt it.
		if !m.Pred.zero() && !succ.zero() && between(m.Pred.ID, nd.id, succ.ID) && m.Pred.ID != succ.ID && m.Pred.Addr != nd.addr {
			nd.succList = append([]ref{m.Pred}, nd.succList...)
		} else if len(m.SuccList) > 0 {
			// Refresh our successor list from the successor's: succ + its
			// list, truncated.
			merged := append([]ref{succ}, m.SuccList...)
			nd.succList = merged
		}
		if len(nd.succList) > succListLen {
			nd.succList = nd.succList[:succListLen]
		}
		if s := nd.firstLiveSuccessor(); !s.zero() {
			nd.net.Send(nd.addr, s.Addr, &notify{From: ref{ID: nd.id, Addr: nd.addr}}, 16)
		}
	case *notify:
		if nd.pred.zero() || between(m.From.ID, nd.pred.ID, nd.id) {
			nd.pred = m.From
		}
	}
}

// DropDead removes dead refs from successor lists and fingers; called by
// the harness after kills to model Chord's timeout-based failure detection
// without simulating per-entry timers.
func (c *Cluster) DropDead() {
	aliveAddr := map[netsim.Addr]bool{}
	for _, nd := range c.Nodes {
		if nd.alive {
			aliveAddr[nd.addr] = true
		}
	}
	for _, nd := range c.Nodes {
		if !nd.alive {
			continue
		}
		kept := nd.succList[:0]
		for _, s := range nd.succList {
			if aliveAddr[s.Addr] {
				kept = append(kept, s)
			}
		}
		nd.succList = kept
		for f := range nd.fingers {
			if !nd.fingers[f].zero() && !aliveAddr[nd.fingers[f].Addr] {
				// Point dead fingers at the first live successor (repaired
				// properly by later stabilisation rounds).
				if s := nd.firstLiveSuccessor(); !s.zero() {
					nd.fingers[f] = s
				} else {
					nd.fingers[f] = ref{}
				}
			}
		}
		if !nd.pred.zero() && !aliveAddr[nd.pred.Addr] {
			nd.pred = ref{}
		}
	}
}
