package chord

import (
	"testing"
	"time"
)

func TestSteadyStateLookups(t *testing.T) {
	c := New(128, 1)
	c.Run(4 * time.Second)
	found, failed, hops := 0, 0, 0
	rng := c.Kernel.Stream(99)
	for i := 0; i < 100; i++ {
		origin := c.Nodes[rng.Intn(len(c.Nodes))]
		target := c.Nodes[rng.Intn(len(c.Nodes))]
		// successor(target.id) == target itself (its ID is on the ring).
		want := target.ID()
		origin.Lookup(c, want, func(r LookupResult) {
			if r.Found && r.Succ == want {
				found++
				hops += r.Hops
			} else {
				failed++
			}
		})
	}
	c.Run(12 * time.Second)
	if failed > 2 {
		t.Fatalf("steady state: %d found %d failed", found, failed)
	}
	avg := float64(hops) / float64(found)
	// log2(128) = 7; typical chord average is ~0.5*log2(n).
	if avg > 10 {
		t.Fatalf("avg hops %.1f too high", avg)
	}
	t.Logf("chord steady: found=%d avg hops %.2f", found, avg)
}

func TestLookupHopsLogarithmic(t *testing.T) {
	small := avgHops(t, 64, 2)
	large := avgHops(t, 512, 3)
	if large > small*2.2+2 {
		t.Fatalf("hops not logarithmic: n=64 -> %.2f, n=512 -> %.2f", small, large)
	}
}

func avgHops(t *testing.T, n int, seed int64) float64 {
	t.Helper()
	c := New(n, seed)
	c.Run(2 * time.Second)
	rng := c.Kernel.Stream(7)
	found, hops := 0, 0
	for i := 0; i < 80; i++ {
		origin := c.Nodes[rng.Intn(len(c.Nodes))]
		target := c.Nodes[rng.Intn(len(c.Nodes))]
		want := target.ID()
		origin.Lookup(c, want, func(r LookupResult) {
			if r.Found && r.Succ == want {
				found++
				hops += r.Hops
			}
		})
	}
	c.Run(12 * time.Second)
	if found == 0 {
		t.Fatal("no lookups succeeded")
	}
	return float64(hops) / float64(found)
}

func TestSurvivesFailuresWithStabilization(t *testing.T) {
	c := New(200, 4)
	c.Run(4 * time.Second)
	rng := c.Kernel.Stream(11)
	killed := 0
	for killed < 40 { // 20%
		nd := c.Nodes[rng.Intn(len(c.Nodes))]
		if c.Alive(nd) {
			c.Kill(nd)
			killed++
		}
	}
	c.DropDead()
	c.Run(10 * time.Second) // stabilisation rounds

	alive := c.AliveNodes()
	found, failed := 0, 0
	for i := 0; i < 100; i++ {
		origin := alive[rng.Intn(len(alive))]
		target := alive[rng.Intn(len(alive))]
		want := target.ID()
		origin.Lookup(c, want, func(r LookupResult) {
			if r.Found && r.Succ == want {
				found++
			} else {
				failed++
			}
		})
	}
	c.Run(12 * time.Second)
	if found < 60 {
		t.Fatalf("chord after 20%% kill: found=%d failed=%d", found, failed)
	}
	t.Logf("chord after 20%% kill: found=%d failed=%d", found, failed)
}

func TestKillStopsNode(t *testing.T) {
	c := New(16, 5)
	nd := c.Nodes[3]
	c.Kill(nd)
	if c.Alive(nd) {
		t.Fatal("alive after kill")
	}
	if len(c.AliveNodes()) != 15 {
		t.Fatal("alive count")
	}
}
