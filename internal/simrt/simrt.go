// Package simrt binds core TreeP nodes to the deterministic simulator: it
// is the runtime the experiments and benchmarks use. A Cluster owns a sim
// kernel, a netsim network, and a set of nodes whose core.Env is backed by
// virtual time and simulated datagrams.
package simrt

import (
	"fmt"
	"math/rand"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/sim"
)

// Options configures a cluster build.
type Options struct {
	// N is the number of nodes.
	N int
	// Seed drives every random decision (IDs, profiles, latencies, the
	// workload) — same seed, same run.
	Seed int64
	// Config is the per-node protocol configuration (ID and Profile fields
	// are filled per node).
	Config core.Config
	// Classes is the profile mixture (nodeprof.DefaultClasses when nil).
	Classes []nodeprof.Class
	// Assigner produces node IDs (balanced with jitter when nil, which
	// keeps bulk-built trees near the paper's height law).
	Assigner idspace.Assigner
	// NetOpts configures the simulated network (latency, loss, tracing).
	NetOpts []netsim.Option
	// Bulk installs the steady-state hierarchy via core.BulkBuild. When
	// false the cluster starts as disconnected level-0 nodes (protocol
	// bootstrap tests).
	Bulk bool
}

// Cluster is a simulated TreeP deployment.
type Cluster struct {
	Kernel *sim.Kernel
	Net    *netsim.Network
	Nodes  []*core.Node

	// byAddr and alive are indexed by transport address: the cluster's
	// netsim hands out sequential addresses from 1, and both are read on
	// the per-event hot path (every send and every timer fire checks
	// liveness), where an array index beats a map probe. Slot 0 is unused.
	byAddr []*core.Node
	alive  []bool
	// aliveList caches AliveNodes (construction order); nil means stale.
	// Churn scenarios query liveness per injected event, which was an
	// O(N) rebuild each time and dominated at N ≥ 5k populations.
	aliveList []*core.Node
	// LevelCounts reports the bulk-built members per level (nil without
	// Bulk).
	LevelCounts []int

	// Construction machinery retained for dynamic spawns: the base config,
	// the profile generator, and a dedicated ID stream. Spawned nodes draw
	// random IDs (the paper's "assigned randomly" join case) rather than
	// re-running the balanced assigner, whose placement assumes a fixed n.
	baseCfg   core.Config
	gen       *nodeprof.Generator
	spawnRand *rand.Rand
}

// New builds a cluster.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("simrt: N must be positive")
	}
	k := sim.New(opts.Seed)
	net := netsim.New(k, opts.NetOpts...)
	classes := opts.Classes
	if classes == nil {
		classes = nodeprof.DefaultClasses()
	}
	gen := nodeprof.NewGenerator(classes, opts.Seed^0x70726f66) // "prof"
	assigner := opts.Assigner
	if assigner == nil {
		assigner = idspace.BalancedAssigner{Rand: k.Stream(0x696473), JitterFrac: 0.8} // "ids"
	}

	c := &Cluster{
		Kernel:    k,
		Net:       net,
		byAddr:    make([]*core.Node, 1, opts.N+1),
		alive:     make([]bool, 1, opts.N+1),
		baseCfg:   opts.Config,
		gen:       gen,
		spawnRand: k.Stream(0x7370776e), // "spwn"
	}

	anchorRand := k.Stream(0x616e6368) // "anch"
	for i := 0; i < opts.N; i++ {
		cfg := opts.Config
		cfg.ID = assigner.Assign(i, opts.N, fmt.Sprintf("10.0.%d.%d:7000", i/256, i%256))
		cfg.Profile = gen.Next()
		// Three random anchors per node (addresses are assigned 1..N in
		// construction order by netsim).
		for a := 0; a < 3; a++ {
			cfg.Anchors = append(cfg.Anchors, uint64(1+anchorRand.Intn(opts.N)))
		}
		c.attach(cfg)
	}

	if opts.Bulk {
		// Node configs have had defaults applied; read the effective height.
		c.LevelCounts = core.BulkBuild(c.Nodes, c.Nodes[0].Config().MaxHeight)
	}
	return c
}

// attach wires one configured node into the network and bookkeeping maps.
func (c *Cluster) attach(cfg core.Config) *core.Node {
	addr := c.Net.Attach(func(netsim.Addr, interface{}, int) {})
	env := &simEnv{cluster: c, addr: uint64(addr), rng: c.Kernel.Stream(uint64(addr))}
	node := core.NewNode(cfg, env)
	c.Net.SetHandler(addr, func(from netsim.Addr, payload interface{}, size int) {
		if msg, ok := payload.(proto.Message); ok {
			node.HandleMessage(uint64(from), msg)
		}
	})
	c.Nodes = append(c.Nodes, node)
	// Addresses are sequential; attach order matches slice growth.
	if uint64(addr) != uint64(len(c.byAddr)) {
		panic("simrt: non-sequential address from netsim")
	}
	c.byAddr = append(c.byAddr, node)
	c.alive = append(c.alive, true)
	c.aliveList = nil
	return node
}

// Spawn creates a brand-new node mid-simulation (dynamic membership: the
// population is no longer fixed at New). The node draws a random ID and a
// fresh profile, anchors on three random existing endpoints, and is
// returned started but not yet joined; callers normally use SpawnJoin.
func (c *Cluster) Spawn() *core.Node {
	cfg := c.baseCfg
	cfg.ID = idspace.ID(c.spawnRand.Uint64())
	cfg.Profile = c.gen.Next()
	cfg.Anchors = nil
	total := len(c.Nodes)
	for a := 0; a < 3 && total > 0; a++ {
		cfg.Anchors = append(cfg.Anchors, uint64(1+c.spawnRand.Intn(total)))
	}
	n := c.attach(cfg)
	n.Start()
	return n
}

// SpawnJoin spawns a node and bootstraps it into the overlay through a
// live peer chosen deterministically from the spawn stream. It returns nil
// when no live bootstrap exists.
func (c *Cluster) SpawnJoin() *core.Node {
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	boot := alive[c.spawnRand.Intn(len(alive))]
	n := c.Spawn()
	n.Join(boot.Addr())
	return n
}

// StartAll starts every node's maintenance timers.
func (c *Cluster) StartAll() {
	for _, n := range c.Nodes {
		n.Start()
	}
}

// Run advances virtual time by d.
func (c *Cluster) Run(d time.Duration) { _ = c.Kernel.RunFor(d) }

// Kill removes a node from the network (fail-stop, no goodbye): its
// endpoint stops receiving and its timers stop firing.
func (c *Cluster) Kill(n *core.Node) {
	addr := n.Addr()
	if !c.isAlive(addr) {
		return
	}
	c.alive[addr] = false
	c.aliveList = nil
	c.Net.Kill(netsim.Addr(addr))
	n.Stop()
}

// Revive brings a killed node back (same address and identity; protocol
// state continues from wherever it was). Callers normally follow with
// node.Join to reintegrate.
func (c *Cluster) Revive(n *core.Node) {
	addr := n.Addr()
	if c.isAlive(addr) {
		return
	}
	c.alive[addr] = true
	c.aliveList = nil
	c.Net.Revive(netsim.Addr(addr))
}

// isAlive reports liveness for a transport address.
func (c *Cluster) isAlive(addr uint64) bool {
	return addr < uint64(len(c.alive)) && c.alive[addr]
}

// Alive reports whether the node is still up.
func (c *Cluster) Alive(n *core.Node) bool { return c.isAlive(n.Addr()) }

// AliveNodes returns the live nodes in construction order. The slice is
// cached between membership changes and must not be mutated by callers; it
// is a snapshot that goes stale at the next Kill/Revive/Spawn.
func (c *Cluster) AliveNodes() []*core.Node {
	if c.aliveList == nil {
		c.aliveList = make([]*core.Node, 0, len(c.Nodes))
		for _, n := range c.Nodes {
			if c.isAlive(n.Addr()) {
				c.aliveList = append(c.aliveList, n)
			}
		}
	}
	return c.aliveList
}

// AliveCount returns the live population without materialising the list.
func (c *Cluster) AliveCount() int {
	if c.aliveList != nil {
		return len(c.aliveList)
	}
	count := 0
	for _, up := range c.alive {
		if up {
			count++
		}
	}
	return count
}

// DeadNodes returns the killed nodes in construction order (revival-wave
// scenarios pick their candidates here).
func (c *Cluster) DeadNodes() []*core.Node {
	out := make([]*core.Node, 0)
	for _, n := range c.Nodes {
		if !c.isAlive(n.Addr()) {
			out = append(out, n)
		}
	}
	return out
}

// Partition splits the network at the given coordinate: datagrams between
// nodes on opposite sides of split are dropped until Heal. The link
// filter is consulted at send time (datagrams already in flight still
// arrive), and it resolves sides from node IDs lazily, so nodes spawned
// mid-partition are partitioned correctly too.
func (c *Cluster) Partition(split idspace.ID) {
	c.Net.SetLinkFilter(netsim.SplitFilter(split, func(a netsim.Addr) (idspace.ID, bool) {
		n := c.NodeByAddr(uint64(a))
		if n == nil {
			return 0, false
		}
		return n.ID(), true
	}))
}

// PartitionBy installs a link filter that drops datagrams between nodes
// on different sides of an arbitrary predicate — Partition is the
// coordinate special case. A parity split by address fragments the
// overlay into two fully interleaved islands, the worst case for any
// merge protocol. Addresses that resolve to no node pass unconditionally,
// mirroring SplitFilter. Heal removes it.
func (c *Cluster) PartitionBy(side func(n *core.Node) bool) {
	c.Net.SetLinkFilter(func(from, to netsim.Addr) bool {
		a, b := c.NodeByAddr(uint64(from)), c.NodeByAddr(uint64(to))
		if a == nil || b == nil {
			return true
		}
		return side(a) == side(b)
	})
}

// Heal removes the partition installed by Partition or PartitionBy.
func (c *Cluster) Heal() { c.Net.SetLinkFilter(nil) }

// NodeByAddr resolves an address to its node, or nil.
func (c *Cluster) NodeByAddr(addr uint64) *core.Node {
	if addr == 0 || addr >= uint64(len(c.byAddr)) {
		return nil
	}
	return c.byAddr[addr]
}

// Rand returns a deterministic random stream for workload decisions,
// distinct from all node streams.
func (c *Cluster) Rand() *rand.Rand { return c.Kernel.Stream(0x776b6c64) } // "wkld"

// simEnv adapts the cluster to core.Env for one node.
type simEnv struct {
	cluster *Cluster
	addr    uint64
	rng     *rand.Rand
}

func (e *simEnv) Addr() uint64       { return e.addr }
func (e *simEnv) Now() time.Duration { return e.cluster.Kernel.Now() }
func (e *simEnv) Rand() *rand.Rand   { return e.rng }

func (e *simEnv) Send(to uint64, msg proto.Message) {
	// Dead senders cannot transmit: a killed node's queued timer closures
	// are cancelled, but guard against stragglers.
	if !e.cluster.isAlive(e.addr) {
		return
	}
	e.cluster.Net.Send(netsim.Addr(e.addr), netsim.Addr(to), msg, proto.WireSize(msg))
}

func (e *simEnv) SetTimer(d time.Duration, fn func()) core.Timer {
	guarded := func() {
		if e.cluster.isAlive(e.addr) {
			fn()
		}
	}
	return e.cluster.Kernel.Schedule(d, guarded)
}

func (e *simEnv) SetPeriodic(d time.Duration, fn func()) core.Timer {
	// One guard closure for the timer's whole lifetime; the kernel
	// re-queues the same pooled event every interval.
	guarded := func() {
		if e.cluster.isAlive(e.addr) {
			fn()
		}
	}
	return e.cluster.Kernel.SchedulePeriodic(d, guarded)
}
