// Package simrt binds core TreeP nodes to the deterministic simulator: it
// is the runtime the experiments and benchmarks use. A Cluster owns a sim
// kernel, a netsim network, and a set of nodes whose core.Env is backed by
// virtual time and simulated datagrams.
package simrt

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/sim"
)

// Options configures a cluster build.
type Options struct {
	// N is the number of nodes.
	N int
	// Seed drives every random decision (IDs, profiles, latencies, the
	// workload) — same seed, same run.
	Seed int64
	// Config is the per-node protocol configuration (ID and Profile fields
	// are filled per node).
	Config core.Config
	// Classes is the profile mixture (nodeprof.DefaultClasses when nil).
	Classes []nodeprof.Class
	// Assigner produces node IDs (balanced with jitter when nil, which
	// keeps bulk-built trees near the paper's height law).
	Assigner idspace.Assigner
	// NetOpts configures the simulated network (latency, loss, tracing).
	NetOpts []netsim.Option
	// Bulk installs the steady-state hierarchy via core.BulkBuild. When
	// false the cluster starts as disconnected level-0 nodes (protocol
	// bootstrap tests).
	Bulk bool
	// Shards selects the execution engine. 0 (the default) is the classic
	// single-threaded kernel — bit-identical to every pre-sharding run.
	// ≥ 1 runs the sharded engine: nodes are partitioned across shards by
	// ID range and advanced in lockstep epochs with deterministic barrier
	// exchange, so any Shards ≥ 1 value produces the same end state as
	// Shards == 1 for a given seed (the equivalence the oracle test
	// enforces). Classic and sharded runs of the same seed differ — the
	// classic network consumes one global latency/loss stream in global
	// send order, which no parallel schedule can reproduce.
	Shards int
}

// Cluster is a simulated TreeP deployment.
type Cluster struct {
	// Kernel is the classic single-threaded kernel; nil in sharded mode
	// (use the dispatch methods Now/Run/RunUntil/Stream/Events, which
	// cover both engines).
	Kernel *sim.Kernel
	// Engine is the sharded engine; nil in classic mode.
	Engine *sim.Sharded
	Net    *netsim.Network
	Nodes  []*core.Node

	// byAddr and alive are indexed by transport address: the cluster's
	// netsim hands out sequential addresses from 1, and both are read on
	// the per-event hot path (every send and every timer fire checks
	// liveness), where an array index beats a map probe. Slot 0 is unused.
	byAddr []*core.Node
	alive  []bool
	// aliveList caches AliveNodes (construction order); nil means stale.
	// Churn scenarios query liveness per injected event, which was an
	// O(N) rebuild each time and dominated at N ≥ 5k populations.
	aliveList []*core.Node
	// LevelCounts reports the bulk-built members per level (nil without
	// Bulk).
	LevelCounts []int

	// Construction machinery retained for dynamic spawns: the base config,
	// the profile generator, and a dedicated ID stream. Spawned nodes draw
	// random IDs (the paper's "assigned randomly" join case) rather than
	// re-running the balanced assigner, whose placement assumes a fixed n.
	baseCfg   core.Config
	gen       *nodeprof.Generator
	spawnRand *rand.Rand

	// interrupted is set by Interrupt (wall-clock budget watchdogs); once
	// set, Run/RunUntil become no-ops so scenario drivers wind down at
	// the next control-plane check instead of burning more virtual time.
	interrupted atomic.Bool
}

// shardOfID places a node ID on a shard by contiguous ID range: with the
// balanced assigner spreading IDs uniformly, populations divide evenly,
// and the mapping is independent of attach order so re-running a seed at
// a different shard count keeps every node's identity and streams.
func shardOfID(id uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	stride := ^uint64(0)/uint64(shards) + 1
	return int(id / stride)
}

// New builds a cluster.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("simrt: N must be positive")
	}
	var net *netsim.Network
	var k *sim.Kernel
	if opts.Shards > 0 {
		net = netsim.NewSharded(opts.Seed, opts.Shards, opts.NetOpts...)
	} else {
		k = sim.New(opts.Seed)
		net = netsim.New(k, opts.NetOpts...)
	}
	classes := opts.Classes
	if classes == nil {
		classes = nodeprof.DefaultClasses()
	}
	gen := nodeprof.NewGenerator(classes, opts.Seed^0x70726f66) // "prof"

	c := &Cluster{
		Kernel:  k,
		Engine:  net.Engine(),
		Net:     net,
		byAddr:  make([]*core.Node, 1, opts.N+1),
		alive:   make([]bool, 1, opts.N+1),
		baseCfg: opts.Config,
		gen:     gen,
	}
	// Every control-plane stream goes through c.Stream, which derives
	// identically in both modes, so a seed's node IDs, profiles, anchors
	// and workload are the same population classic or sharded.
	c.spawnRand = c.Stream(0x7370776e) // "spwn"
	assigner := opts.Assigner
	if assigner == nil {
		assigner = idspace.BalancedAssigner{Rand: c.Stream(0x696473), JitterFrac: 0.8} // "ids"
	}

	anchorRand := c.Stream(0x616e6368) // "anch"
	for i := 0; i < opts.N; i++ {
		cfg := opts.Config
		cfg.ID = assigner.Assign(i, opts.N, fmt.Sprintf("10.0.%d.%d:7000", i/256, i%256))
		cfg.Profile = gen.Next()
		// Three random anchors per node (addresses are assigned 1..N in
		// construction order by netsim).
		for a := 0; a < 3; a++ {
			cfg.Anchors = append(cfg.Anchors, uint64(1+anchorRand.Intn(opts.N)))
		}
		c.attach(cfg)
	}

	if opts.Bulk {
		// Node configs have had defaults applied; read the effective height.
		c.LevelCounts = core.BulkBuild(c.Nodes, c.Nodes[0].Config().MaxHeight)
	}
	return c
}

// attach wires one configured node into the network and bookkeeping maps.
// In sharded mode the node lands on the shard owning its ID range, and
// its environment (clock, timers, rng) binds to that shard's kernel —
// the same-seed derivation keeps the rng identical at any shard count.
func (c *Cluster) attach(cfg core.Config) *core.Node {
	shard := 0
	if c.Engine != nil {
		shard = shardOfID(uint64(cfg.ID), c.Engine.Shards())
	}
	addr := c.Net.AttachOn(shard, func(netsim.Addr, interface{}, int) {})
	kern := c.kernelFor(shard)
	env := &simEnv{cluster: c, addr: uint64(addr), rng: kern.Stream(uint64(addr)), kern: kern}
	node := core.NewNode(cfg, env)
	c.Net.SetHandler(addr, func(from netsim.Addr, payload interface{}, size int) {
		if msg, ok := payload.(proto.Message); ok {
			node.HandleMessage(uint64(from), msg)
		}
	})
	c.Nodes = append(c.Nodes, node)
	// Addresses are sequential; attach order matches slice growth.
	if uint64(addr) != uint64(len(c.byAddr)) {
		panic("simrt: non-sequential address from netsim")
	}
	c.byAddr = append(c.byAddr, node)
	c.alive = append(c.alive, true)
	c.aliveList = nil
	return node
}

// Spawn creates a brand-new node mid-simulation (dynamic membership: the
// population is no longer fixed at New). The node draws a random ID and a
// fresh profile, anchors on three random existing endpoints, and is
// returned started but not yet joined; callers normally use SpawnJoin.
func (c *Cluster) Spawn() *core.Node {
	cfg := c.baseCfg
	cfg.ID = idspace.ID(c.spawnRand.Uint64())
	cfg.Profile = c.gen.Next()
	cfg.Anchors = nil
	total := len(c.Nodes)
	for a := 0; a < 3 && total > 0; a++ {
		cfg.Anchors = append(cfg.Anchors, uint64(1+c.spawnRand.Intn(total)))
	}
	n := c.attach(cfg)
	n.Start()
	return n
}

// SpawnJoin spawns a node and bootstraps it into the overlay through a
// live peer chosen deterministically from the spawn stream. It returns nil
// when no live bootstrap exists.
func (c *Cluster) SpawnJoin() *core.Node {
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	boot := alive[c.spawnRand.Intn(len(alive))]
	n := c.Spawn()
	n.Join(boot.Addr())
	return n
}

// StartAll starts every node's maintenance timers.
func (c *Cluster) StartAll() {
	for _, n := range c.Nodes {
		n.Start()
	}
}

// kernelFor returns the kernel owning a shard (the classic kernel when
// unsharded).
func (c *Cluster) kernelFor(shard int) *sim.Kernel {
	if c.Engine != nil {
		return c.Engine.Shard(shard)
	}
	return c.Kernel
}

// Shards returns the shard count (0 = classic engine).
func (c *Cluster) Shards() int {
	if c.Engine != nil {
		return c.Engine.Shards()
	}
	return 0
}

// Now returns the cluster's virtual clock: the kernel clock, or the
// sharded engine's barrier clock (control plane only).
func (c *Cluster) Now() time.Duration {
	if c.Engine != nil {
		return c.Engine.Now()
	}
	return c.Kernel.Now()
}

// RunUntil advances virtual time to the target on whichever engine the
// cluster runs. After Interrupt it is a no-op, so scenario drivers wind
// down at their next control-plane check.
func (c *Cluster) RunUntil(t time.Duration) {
	if c.interrupted.Load() {
		return
	}
	if c.Engine != nil {
		_ = c.Engine.RunUntil(t)
		return
	}
	_ = c.Kernel.RunUntil(t)
}

// Run advances virtual time by d.
func (c *Cluster) Run(d time.Duration) { c.RunUntil(c.Now() + d) }

// Events returns the number of events executed so far (summed across
// shards; control plane only).
func (c *Cluster) Events() uint64 {
	if c.Engine != nil {
		return c.Engine.Executed()
	}
	return c.Kernel.Executed()
}

// Stream returns the deterministic random stream for a label, identical
// across engines and shard counts for a given seed (control plane only).
func (c *Cluster) Stream(label uint64) *rand.Rand {
	if c.Engine != nil {
		return c.Engine.Stream(label)
	}
	return c.Kernel.Stream(label)
}

// Interrupt aborts the run at the next event (classic) or epoch barrier
// (sharded) and makes all further Run/RunUntil calls no-ops. It is the
// one cluster method safe to call from another goroutine: wall-clock
// budget watchdogs use it to cap a row's runtime.
func (c *Cluster) Interrupt() {
	c.interrupted.Store(true)
	if c.Engine != nil {
		c.Engine.Interrupt()
		return
	}
	c.Kernel.Stop()
}

// Interrupted reports whether Interrupt cut the run short.
func (c *Cluster) Interrupted() bool { return c.interrupted.Load() }

// Kill removes a node from the network (fail-stop, no goodbye): its
// endpoint stops receiving and its timers stop firing.
func (c *Cluster) Kill(n *core.Node) {
	addr := n.Addr()
	if !c.isAlive(addr) {
		return
	}
	c.alive[addr] = false
	c.aliveList = nil
	c.Net.Kill(netsim.Addr(addr))
	n.Stop()
}

// Revive brings a killed node back (same address and identity; protocol
// state continues from wherever it was). Callers normally follow with
// node.Join to reintegrate.
func (c *Cluster) Revive(n *core.Node) {
	addr := n.Addr()
	if c.isAlive(addr) {
		return
	}
	c.alive[addr] = true
	c.aliveList = nil
	c.Net.Revive(netsim.Addr(addr))
}

// isAlive reports liveness for a transport address.
func (c *Cluster) isAlive(addr uint64) bool {
	return addr < uint64(len(c.alive)) && c.alive[addr]
}

// Alive reports whether the node is still up.
func (c *Cluster) Alive(n *core.Node) bool { return c.isAlive(n.Addr()) }

// AliveNodes returns the live nodes in construction order. The slice is
// cached between membership changes and must not be mutated by callers; it
// is a snapshot that goes stale at the next Kill/Revive/Spawn.
func (c *Cluster) AliveNodes() []*core.Node {
	if c.aliveList == nil {
		c.aliveList = make([]*core.Node, 0, len(c.Nodes))
		for _, n := range c.Nodes {
			if c.isAlive(n.Addr()) {
				c.aliveList = append(c.aliveList, n)
			}
		}
	}
	return c.aliveList
}

// AliveCount returns the live population without materialising the list.
func (c *Cluster) AliveCount() int {
	if c.aliveList != nil {
		return len(c.aliveList)
	}
	count := 0
	for _, up := range c.alive {
		if up {
			count++
		}
	}
	return count
}

// DeadNodes returns the killed nodes in construction order (revival-wave
// scenarios pick their candidates here).
func (c *Cluster) DeadNodes() []*core.Node {
	out := make([]*core.Node, 0)
	for _, n := range c.Nodes {
		if !c.isAlive(n.Addr()) {
			out = append(out, n)
		}
	}
	return out
}

// Partition splits the network at the given coordinate: datagrams between
// nodes on opposite sides of split are dropped until Heal. The link
// filter is consulted at send time (datagrams already in flight still
// arrive), and it resolves sides from node IDs lazily, so nodes spawned
// mid-partition are partitioned correctly too.
func (c *Cluster) Partition(split idspace.ID) {
	c.Net.SetLinkFilter(netsim.SplitFilter(split, func(a netsim.Addr) (idspace.ID, bool) {
		n := c.NodeByAddr(uint64(a))
		if n == nil {
			return 0, false
		}
		return n.ID(), true
	}))
}

// PartitionBy installs a link filter that drops datagrams between nodes
// on different sides of an arbitrary predicate — Partition is the
// coordinate special case. A parity split by address fragments the
// overlay into two fully interleaved islands, the worst case for any
// merge protocol. Addresses that resolve to no node pass unconditionally,
// mirroring SplitFilter. Heal removes it.
func (c *Cluster) PartitionBy(side func(n *core.Node) bool) {
	c.Net.SetLinkFilter(func(from, to netsim.Addr) bool {
		a, b := c.NodeByAddr(uint64(from)), c.NodeByAddr(uint64(to))
		if a == nil || b == nil {
			return true
		}
		return side(a) == side(b)
	})
}

// Heal removes the partition installed by Partition or PartitionBy.
func (c *Cluster) Heal() { c.Net.SetLinkFilter(nil) }

// NodeByAddr resolves an address to its node, or nil.
func (c *Cluster) NodeByAddr(addr uint64) *core.Node {
	if addr == 0 || addr >= uint64(len(c.byAddr)) {
		return nil
	}
	return c.byAddr[addr]
}

// Rand returns a deterministic random stream for workload decisions,
// distinct from all node streams.
func (c *Cluster) Rand() *rand.Rand { return c.Stream(0x776b6c64) } // "wkld"

// simEnv adapts the cluster to core.Env for one node. kern is the
// kernel the node's shard runs on (the classic kernel when unsharded):
// its clock and timers must be the node's own shard's, both for
// correctness (a node's events execute on its shard) and because the
// shard kernel's clock is exact mid-epoch while the engine's barrier
// clock lags it.
type simEnv struct {
	cluster *Cluster
	addr    uint64
	rng     *rand.Rand
	kern    *sim.Kernel
}

func (e *simEnv) Addr() uint64       { return e.addr }
func (e *simEnv) Now() time.Duration { return e.kern.Now() }
func (e *simEnv) Rand() *rand.Rand   { return e.rng }

func (e *simEnv) Send(to uint64, msg proto.Message) {
	// Dead senders cannot transmit: a killed node's queued timer closures
	// are cancelled, but guard against stragglers.
	if !e.cluster.isAlive(e.addr) {
		return
	}
	e.cluster.Net.Send(netsim.Addr(e.addr), netsim.Addr(to), msg, proto.WireSize(msg))
}

func (e *simEnv) SetTimer(d time.Duration, fn func()) core.Timer {
	guarded := func() {
		if e.cluster.isAlive(e.addr) {
			fn()
		}
	}
	return e.kern.Schedule(d, guarded)
}

func (e *simEnv) SetPeriodic(d time.Duration, fn func()) core.Timer {
	// One guard closure for the timer's whole lifetime; the kernel
	// re-queues the same pooled event every interval.
	guarded := func() {
		if e.cluster.isAlive(e.addr) {
			fn()
		}
	}
	return e.kern.SchedulePeriodic(d, guarded)
}
