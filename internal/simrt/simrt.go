// Package simrt binds core TreeP nodes to the deterministic simulator: it
// is the runtime the experiments and benchmarks use. A Cluster owns a sim
// kernel, a netsim network, and a set of nodes whose core.Env is backed by
// virtual time and simulated datagrams.
package simrt

import (
	"fmt"
	"math/rand"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/sim"
)

// Options configures a cluster build.
type Options struct {
	// N is the number of nodes.
	N int
	// Seed drives every random decision (IDs, profiles, latencies, the
	// workload) — same seed, same run.
	Seed int64
	// Config is the per-node protocol configuration (ID and Profile fields
	// are filled per node).
	Config core.Config
	// Classes is the profile mixture (nodeprof.DefaultClasses when nil).
	Classes []nodeprof.Class
	// Assigner produces node IDs (balanced with jitter when nil, which
	// keeps bulk-built trees near the paper's height law).
	Assigner idspace.Assigner
	// NetOpts configures the simulated network (latency, loss, tracing).
	NetOpts []netsim.Option
	// Bulk installs the steady-state hierarchy via core.BulkBuild. When
	// false the cluster starts as disconnected level-0 nodes (protocol
	// bootstrap tests).
	Bulk bool
}

// Cluster is a simulated TreeP deployment.
type Cluster struct {
	Kernel *sim.Kernel
	Net    *netsim.Network
	Nodes  []*core.Node

	byAddr map[uint64]*core.Node
	alive  map[uint64]bool
	// LevelCounts reports the bulk-built members per level (nil without
	// Bulk).
	LevelCounts []int
}

// New builds a cluster.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("simrt: N must be positive")
	}
	k := sim.New(opts.Seed)
	net := netsim.New(k, opts.NetOpts...)
	classes := opts.Classes
	if classes == nil {
		classes = nodeprof.DefaultClasses()
	}
	gen := nodeprof.NewGenerator(classes, opts.Seed^0x70726f66) // "prof"
	assigner := opts.Assigner
	if assigner == nil {
		assigner = idspace.BalancedAssigner{Rand: k.Stream(0x696473), JitterFrac: 0.8} // "ids"
	}

	c := &Cluster{
		Kernel: k,
		Net:    net,
		byAddr: make(map[uint64]*core.Node, opts.N),
		alive:  make(map[uint64]bool, opts.N),
	}

	anchorRand := k.Stream(0x616e6368) // "anch"
	for i := 0; i < opts.N; i++ {
		cfg := opts.Config
		cfg.ID = assigner.Assign(i, opts.N, fmt.Sprintf("10.0.%d.%d:7000", i/256, i%256))
		cfg.Profile = gen.Next()
		// Three random anchors per node (addresses are assigned 1..N in
		// construction order by netsim).
		for a := 0; a < 3; a++ {
			cfg.Anchors = append(cfg.Anchors, uint64(1+anchorRand.Intn(opts.N)))
		}
		addr := net.Attach(func(netsim.Addr, interface{}, int) {})
		env := &simEnv{cluster: c, addr: uint64(addr), rng: k.Stream(uint64(addr))}
		node := core.NewNode(cfg, env)
		net.SetHandler(addr, func(from netsim.Addr, payload interface{}, size int) {
			if msg, ok := payload.(proto.Message); ok {
				node.HandleMessage(uint64(from), msg)
			}
		})
		c.Nodes = append(c.Nodes, node)
		c.byAddr[uint64(addr)] = node
		c.alive[uint64(addr)] = true
	}

	if opts.Bulk {
		// Node configs have had defaults applied; read the effective height.
		c.LevelCounts = core.BulkBuild(c.Nodes, c.Nodes[0].Config().MaxHeight)
	}
	return c
}

// StartAll starts every node's maintenance timers.
func (c *Cluster) StartAll() {
	for _, n := range c.Nodes {
		n.Start()
	}
}

// Run advances virtual time by d.
func (c *Cluster) Run(d time.Duration) { _ = c.Kernel.RunFor(d) }

// Kill removes a node from the network (fail-stop, no goodbye): its
// endpoint stops receiving and its timers stop firing.
func (c *Cluster) Kill(n *core.Node) {
	addr := n.Addr()
	if !c.alive[addr] {
		return
	}
	c.alive[addr] = false
	c.Net.Kill(netsim.Addr(addr))
	n.Stop()
}

// Revive brings a killed node back (same address and identity; protocol
// state continues from wherever it was). Callers normally follow with
// node.Join to reintegrate.
func (c *Cluster) Revive(n *core.Node) {
	addr := n.Addr()
	if c.alive[addr] {
		return
	}
	c.alive[addr] = true
	c.Net.Revive(netsim.Addr(addr))
}

// Alive reports whether the node is still up.
func (c *Cluster) Alive(n *core.Node) bool { return c.alive[n.Addr()] }

// AliveNodes returns the live nodes in construction order.
func (c *Cluster) AliveNodes() []*core.Node {
	out := make([]*core.Node, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if c.alive[n.Addr()] {
			out = append(out, n)
		}
	}
	return out
}

// NodeByAddr resolves an address to its node.
func (c *Cluster) NodeByAddr(addr uint64) *core.Node { return c.byAddr[addr] }

// Rand returns a deterministic random stream for workload decisions,
// distinct from all node streams.
func (c *Cluster) Rand() *rand.Rand { return c.Kernel.Stream(0x776b6c64) } // "wkld"

// simEnv adapts the cluster to core.Env for one node.
type simEnv struct {
	cluster *Cluster
	addr    uint64
	rng     *rand.Rand
}

func (e *simEnv) Addr() uint64       { return e.addr }
func (e *simEnv) Now() time.Duration { return e.cluster.Kernel.Now() }
func (e *simEnv) Rand() *rand.Rand   { return e.rng }

func (e *simEnv) Send(to uint64, msg proto.Message) {
	// Dead senders cannot transmit: a killed node's queued timer closures
	// are cancelled, but guard against stragglers.
	if !e.cluster.alive[e.addr] {
		return
	}
	e.cluster.Net.Send(netsim.Addr(e.addr), netsim.Addr(to), msg, proto.WireSize(msg))
}

func (e *simEnv) SetTimer(d time.Duration, fn func()) core.Timer {
	guarded := func() {
		if e.cluster.alive[e.addr] {
			fn()
		}
	}
	return e.cluster.Kernel.Schedule(d, guarded)
}
