package simrt

import (
	"hash/fnv"
	"sort"

	"treep/internal/rtable"
)

// StateDigest folds the cluster's complete observable end state into one
// FNV-1a hash: per node (in address order) its liveness, identity, level,
// parent, and every routing-table set entry with flags and timestamps,
// plus the network counters and the total executed event count. It is
// the equivalence oracle for the sharded engine — two runs of one seed
// at different shard counts must produce the same digest, and any
// reordering of deliveries, timer interleavings or random draws shows up
// here because routing tables accumulate exactly those decisions.
// Control plane only.
func (c *Cluster) StateDigest() uint64 {
	f := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		for b := 0; b < 8; b++ {
			buf[b] = byte(v >> (8 * b))
		}
		f.Write(buf[:])
	}
	wset := func(s *rtable.Set) {
		if s == nil {
			w(0)
			return
		}
		w(uint64(s.Len()))
		s.Each(func(e *rtable.Entry) {
			w(uint64(e.Ref.ID))
			w(e.Ref.Addr)
			w(uint64(e.Ref.MaxLevel)<<16 | uint64(e.Ref.Score))
			w(uint64(e.Flags))
			w(uint64(e.LastSeen))
			w(uint64(e.LastDirect))
		})
	}

	levels := make([]int, 0, 8)
	for addr := 1; addr < len(c.byAddr); addr++ {
		n := c.byAddr[addr]
		w(uint64(addr))
		if c.alive[addr] {
			w(1)
		} else {
			w(0)
		}
		w(uint64(n.ID()))
		w(uint64(n.MaxLevel()))
		t := n.Table()
		w(uint64(t.Version()))
		if ref, ok := t.Parent(); ok {
			w(ref.Addr)
			w(uint64(ref.ID))
		} else {
			w(0)
		}
		wset(t.Level0)
		wset(t.Children)
		wset(t.NbrChildren)
		wset(t.Superiors)
		levels = levels[:0]
		for lvl := range t.Bus {
			levels = append(levels, int(lvl))
		}
		sort.Ints(levels)
		for _, lvl := range levels {
			w(uint64(lvl))
			wset(t.Bus[uint8(lvl)])
		}
	}

	st := c.Net.Stats()
	w(st.Sent)
	w(st.Delivered)
	w(st.LostRandom)
	w(st.LostDead)
	w(st.LostFiltered)
	w(st.Bytes)
	w(c.Events())
	return f.Sum64()
}
