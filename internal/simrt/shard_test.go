package simrt

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/proto"
)

// buildSharded runs one full cluster lifecycle on the sharded engine:
// bulk build, settle, deterministic kills and spawns, more settling —
// the ingredients whose ordering the barrier exchange must keep
// placement-invariant.
func buildSharded(seed int64, shards, n int) *Cluster {
	c := New(Options{N: n, Seed: seed, Bulk: true, Shards: shards})
	c.StartAll()
	c.Run(6 * time.Second)
	rng := c.Rand()
	for i := 0; i < n/10; i++ {
		if victim := c.Nodes[rng.Intn(len(c.Nodes))]; c.Alive(victim) {
			c.Kill(victim)
		}
	}
	for i := 0; i < n/20; i++ {
		c.SpawnJoin()
		c.Run(200 * time.Millisecond)
	}
	c.Run(6 * time.Second)
	return c
}

// TestShardedClusterDigestEquivalence is the runtime-level equivalence
// oracle: the full TreeP protocol (bulk build, maintenance, kills,
// joins) must reach a bit-identical end state at every shard count.
func TestShardedClusterDigestEquivalence(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 80
	}
	for _, seed := range []int64{3, 17} {
		var want uint64
		for _, shards := range []int{1, 2, 4, 8} {
			c := buildSharded(seed, shards, n)
			got := c.StateDigest()
			c.Engine.Close()
			if shards == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d: digest at %d shards = %#x, want %#x (1 shard)", seed, shards, got, want)
			}
		}
	}
}

// TestShardedClusterLookups checks the protocol actually works sharded:
// steady-state lookups resolve. Callbacks run on the origin's shard
// worker, so the counters take a lock — the runtime serializes nodes,
// not test code.
func TestShardedClusterLookups(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 256, Seed: 11, Bulk: true, Shards: 4})
	defer c.Engine.Close()
	c.StartAll()
	c.Run(8 * time.Second)

	var mu sync.Mutex
	found, failed := 0, 0
	for _, p := range randomPairs(c, 200) {
		targetID := p[1].ID()
		p[0].Lookup(targetID, proto.AlgoG, func(r core.LookupResult) {
			mu.Lock()
			if r.Status == core.LookupFound && r.Best.ID == targetID {
				found++
			} else {
				failed++
			}
			mu.Unlock()
		})
	}
	c.Run(origin0Timeout(c) + time.Second)
	if failed > found/20 {
		t.Fatalf("sharded steady state: %d found, %d failed", found, failed)
	}
	t.Logf("sharded steady state: %d found, %d failed", found, failed)
}

// TestShardedClusterInterrupt checks the wall-clock budget path end to
// end at the cluster level.
func TestShardedClusterInterrupt(t *testing.T) {
	c := New(Options{N: 32, Seed: 5, Bulk: true, Shards: 2})
	defer c.Engine.Close()
	c.StartAll()
	c.Run(time.Second)
	c.Interrupt()
	at := c.Now()
	c.Run(10 * time.Second)
	if c.Now() != at {
		t.Fatalf("run advanced %v past interrupt", c.Now()-at)
	}
	if !c.Interrupted() {
		t.Fatal("Interrupted() = false")
	}
}

// TestShardedSteadyStateAllocs pins the sharded hot path: once the
// overlay settles, advancing virtual time must allocate (almost)
// nothing beyond what the classic engine allocates — the exchange
// slices, inbox heaps, delivery records and event pools all reach
// steady state and recycle shard-locally. Skipped under the race
// detector, which instruments allocations (see race_on_test.go).
func TestShardedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	measure := func(shards int) float64 {
		c := New(Options{N: 200, Seed: 9, Bulk: true, Shards: shards})
		if c.Engine != nil {
			defer c.Engine.Close()
		}
		c.StartAll()
		c.Run(8 * time.Second) // settle: splits, elections, pool growth
		ev0 := c.Events()
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		c.Run(5 * time.Second)
		runtime.ReadMemStats(&m1)
		events := c.Events() - ev0
		if events == 0 {
			t.Fatal("no events in measurement window")
		}
		return float64(m1.Mallocs-m0.Mallocs) / float64(events)
	}
	classic := measure(0)
	sharded := measure(2)
	t.Logf("allocs/event: classic %.4f, sharded(2) %.4f", classic, sharded)
	// The two engines run different (individually deterministic) event
	// streams, so compare budgets, not exact counts: steady state sits
	// around 0.5 allocs/event for both (residual maintenance churn), and
	// 0.05 of headroom catches any systematic per-event or per-epoch
	// allocation the exchange might add.
	if sharded > classic+0.05 {
		t.Fatalf("sharded steady state allocates: %.4f/event vs classic %.4f/event", sharded, classic)
	}
}
