//go:build !race

package simrt

// raceEnabled reports whether the race detector is compiled in; the
// sharded alloc-pin test skips under it (the detector instruments
// allocations).
const raceEnabled = false
