package simrt

import (
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
)

// TestSpawnJoinIntegrates exercises dynamic membership: nodes spawned
// mid-simulation must bootstrap through the live overlay, land on the
// level-0 ring, and become resolvable by lookup.
func TestSpawnJoinIntegrates(t *testing.T) {
	c := New(Options{N: 120, Seed: 31, Bulk: true})
	c.StartAll()
	c.Run(6 * time.Second)

	var spawned []*core.Node
	for i := 0; i < 5; i++ {
		n := c.SpawnJoin()
		if n == nil {
			t.Fatal("SpawnJoin returned nil with a live overlay")
		}
		spawned = append(spawned, n)
		c.Run(2 * time.Second)
	}
	if len(c.Nodes) != 125 {
		t.Fatalf("population %d, want 125", len(c.Nodes))
	}
	c.Run(8 * time.Second)

	for i, n := range spawned {
		if !c.Alive(n) {
			t.Fatalf("spawned node %d not alive", i)
		}
		if n.Table().Level0.Len() == 0 {
			t.Fatalf("spawned node %d never linked into the ring", i)
		}
	}
	// Every spawned node's ID resolves from an original node.
	pairs := make([][2]*core.Node, len(spawned))
	for i, n := range spawned {
		pairs[i] = [2]*core.Node{c.Nodes[i], n}
	}
	found, failed, _ := runLookups(c, pairs, proto.AlgoG)
	if failed > 0 {
		t.Fatalf("spawned nodes resolvable: %d found, %d failed", found, failed)
	}
}

// TestSpawnDeterministic verifies spawns draw from the kernel's seeded
// streams: same seed, same IDs.
func TestSpawnDeterministic(t *testing.T) {
	build := func() []idspace.ID {
		c := New(Options{N: 50, Seed: 32, Bulk: true})
		c.StartAll()
		c.Run(2 * time.Second)
		var ids []idspace.ID
		for i := 0; i < 3; i++ {
			ids = append(ids, c.SpawnJoin().ID())
		}
		return ids
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spawn %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestPartitionBlocksAndHeals checks the cluster-level partition helper:
// datagrams crossing the split vanish, and Heal restores connectivity.
func TestPartitionBlocksAndHeals(t *testing.T) {
	c := New(Options{N: 60, Seed: 33, Bulk: true})
	c.StartAll()
	c.Run(4 * time.Second)

	c.Partition(idspace.MaxID / 2)
	before := c.Net.Stats().LostFiltered
	c.Run(4 * time.Second)
	if got := c.Net.Stats().LostFiltered; got == before {
		t.Fatal("no datagrams filtered during partition")
	}
	c.Heal()
	start := c.Net.Stats().LostFiltered
	c.Run(4 * time.Second)
	if got := c.Net.Stats().LostFiltered; got != start {
		t.Fatalf("datagrams still filtered after heal: %d", got-start)
	}
}
