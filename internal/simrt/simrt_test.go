package simrt

import (
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/netsim"
	"treep/internal/proto"
)

// runLookups issues one lookup from each origin to each target's ID and
// returns (found, failed, totalHops over found).
func runLookups(c *Cluster, pairs [][2]*core.Node, algo proto.Algo) (found, failed, totalHops int) {
	done := 0
	for _, p := range pairs {
		origin, target := p[0], p[1]
		targetID := target.ID()
		origin.Lookup(targetID, algo, func(r core.LookupResult) {
			done++
			if r.Status == core.LookupFound && r.Best.ID == targetID {
				found++
				totalHops += r.Hops
			} else {
				failed++
			}
		})
	}
	// Let requests, replies and timeouts play out.
	c.Run(origin0Timeout(c) + time.Second)
	return found, failed, totalHops
}

func origin0Timeout(c *Cluster) time.Duration {
	return c.Nodes[0].Config().LookupTimeout
}

// randomPairs picks k random (origin, target) pairs among live nodes.
func randomPairs(c *Cluster, k int) [][2]*core.Node {
	alive := c.AliveNodes()
	rng := c.Rand()
	pairs := make([][2]*core.Node, 0, k)
	for i := 0; i < k; i++ {
		o := alive[rng.Intn(len(alive))]
		t := alive[rng.Intn(len(alive))]
		pairs = append(pairs, [2]*core.Node{o, t})
	}
	return pairs
}

func TestBulkClusterSteadyStateLookups(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 256, Seed: 1, Bulk: true})
	c.StartAll()
	c.Run(8 * time.Second) // settle: reports, pings, initial splits

	found, failed, hops := runLookups(c, randomPairs(c, 200), proto.AlgoG)
	if failed > found/20 {
		t.Fatalf("steady state: %d found, %d failed", found, failed)
	}
	avg := float64(hops) / float64(found)
	if avg > 10 {
		t.Fatalf("average hops %.1f too high", avg)
	}
	t.Logf("steady state: %d found, %d failed, avg hops %.2f, levels %v",
		found, failed, avg, c.LevelCounts)
}

func TestBulkClusterAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 200, Seed: 2, Bulk: true})
	c.StartAll()
	c.Run(8 * time.Second)
	for _, algo := range []proto.Algo{proto.AlgoG, proto.AlgoNG, proto.AlgoNGSA} {
		found, failed, _ := runLookups(c, randomPairs(c, 100), algo)
		if found == 0 || failed > found/5 {
			t.Fatalf("%v: %d found, %d failed", algo, found, failed)
		}
	}
}

func TestResilienceToFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 300, Seed: 3, Bulk: true})
	c.StartAll()
	c.Run(8 * time.Second)

	// Kill 20% of the nodes at random.
	rng := c.Rand()
	killed := 0
	for killed < 60 {
		n := c.Nodes[rng.Intn(len(c.Nodes))]
		if c.Alive(n) {
			c.Kill(n)
			killed++
		}
	}
	// Repair window: sweeps expire dead entries, elections and bus repairs
	// run.
	c.Run(20 * time.Second)

	found, failed, _ := runLookups(c, randomPairs(c, 200), proto.AlgoG)
	total := found + failed
	if total == 0 {
		t.Fatal("no lookups completed")
	}
	failRate := float64(failed) / float64(total)
	// The paper reports ~10% failures at 30% killed; at 20% killed the
	// rate should comfortably stay below 25%.
	if failRate > 0.25 {
		t.Fatalf("fail rate %.2f after 20%% failures", failRate)
	}
	t.Logf("after 20%% killed: %d found, %d failed (rate %.3f)", found, failed, failRate)
}

func TestHierarchyRepairAfterParentDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 128, Seed: 4, Bulk: true})
	c.StartAll()
	c.Run(5 * time.Second)

	// Kill every level>=2 node: the upper hierarchy must regrow.
	for _, n := range c.Nodes {
		if n.MaxLevel() >= 2 {
			c.Kill(n)
		}
	}
	c.Run(40 * time.Second)

	// Some surviving node must have been promoted to level >= 2 again, or
	// at least elections must have fired.
	promoted := 0
	var elections uint64
	for _, n := range c.AliveNodes() {
		if n.MaxLevel() >= 2 {
			promoted++
		}
		elections += n.Stats.ElectionsStarted
	}
	if promoted == 0 && elections == 0 {
		t.Fatal("no hierarchy regrowth after killing upper levels")
	}
	t.Logf("regrowth: %d promoted to lvl>=2, %d elections", promoted, elections)

	found, failed, _ := runLookups(c, randomPairs(c, 100), proto.AlgoG)
	if found == 0 {
		t.Fatalf("no lookup succeeds after repair: %d failed", failed)
	}
}

func TestProtocolBootstrapFromJoins(t *testing.T) {
	// No bulk build: all nodes join through node 0 and the hierarchy must
	// emerge from elections alone.
	c := New(Options{N: 48, Seed: 5, Bulk: false})
	c.Nodes[0].Start()
	boot := c.Nodes[0].Addr()
	for i, n := range c.Nodes {
		if i == 0 {
			continue
		}
		i := i
		n := n
		c.Kernel.Schedule(time.Duration(i)*200*time.Millisecond, func() { n.Join(boot) })
	}
	c.Run(60 * time.Second)

	// Level-0 connectivity: every node should know at least one peer.
	for i, n := range c.Nodes {
		if n.Table().Level0.Len() == 0 {
			t.Fatalf("node %d has empty level-0 table", i)
		}
	}
	// The hierarchy must have emerged.
	levels := map[uint8]int{}
	for _, n := range c.Nodes {
		levels[n.MaxLevel()]++
	}
	if len(levels) < 2 {
		t.Fatalf("no hierarchy emerged: %v", levels)
	}
	t.Logf("bootstrap levels: %v", levels)

	found, failed, _ := runLookups(c, randomPairs(c, 80), proto.AlgoG)
	total := found + failed
	if found < total*3/4 {
		t.Fatalf("bootstrap lookups: %d/%d found", found, total)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, uint64, netsim.Stats) {
		c := New(Options{N: 100, Seed: 42, Bulk: true})
		c.StartAll()
		c.Run(10 * time.Second)
		var in, out uint64
		for _, n := range c.Nodes {
			in += n.Stats.MsgsIn
			out += n.Stats.MsgsOut
		}
		return in, out, c.Net.Stats()
	}
	in1, out1, net1 := run()
	in2, out2, net2 := run()
	if in1 != in2 || out1 != out2 || net1 != net2 {
		t.Fatalf("non-deterministic: (%d,%d,%+v) vs (%d,%d,%+v)", in1, out1, net1, in2, out2, net2)
	}
}

func TestWireFidelityUnderLiveTraffic(t *testing.T) {
	// Round-trip every datagram the live protocol produces through the
	// binary codec: the zero-copy simulator path and the UDP path cannot
	// diverge silently.
	checked := 0
	trace := func(e netsim.TraceEvent) {
		if e.Dropped {
			return
		}
		msg, ok := e.Payload.(proto.Message)
		if !ok {
			t.Fatalf("non-message payload %T", e.Payload)
		}
		buf := proto.Encode(msg)
		if len(buf) != e.Size {
			t.Fatalf("%v: size %d, wire %d", msg.Type(), e.Size, len(buf))
		}
		if _, err := proto.Decode(buf); err != nil {
			t.Fatalf("decode %v: %v", msg.Type(), err)
		}
		checked++
	}
	c := New(Options{N: 64, Seed: 6, Bulk: true, NetOpts: []netsim.Option{netsim.WithTrace(trace)}})
	c.StartAll()
	c.Run(6 * time.Second)
	runLookups(c, randomPairs(c, 30), proto.AlgoNGSA)
	if checked < 1000 {
		t.Fatalf("only %d datagrams checked", checked)
	}
}

func TestMessageLossTolerated(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 150, Seed: 7, Bulk: true, NetOpts: []netsim.Option{netsim.WithLoss(0.05)}})
	c.StartAll()
	c.Run(10 * time.Second)
	found, failed, _ := runLookups(c, randomPairs(c, 150), proto.AlgoG)
	total := found + failed
	if found < total*4/5 {
		t.Fatalf("with 5%% loss: %d/%d found", found, total)
	}
}

func TestKillIsIdempotentAndStopsTraffic(t *testing.T) {
	c := New(Options{N: 16, Seed: 8, Bulk: true})
	c.StartAll()
	c.Run(2 * time.Second)
	n := c.Nodes[3]
	c.Kill(n)
	c.Kill(n) // idempotent
	before := n.Stats.MsgsOut
	c.Run(10 * time.Second)
	if n.Stats.MsgsOut != before {
		t.Fatal("killed node kept sending")
	}
	if c.Alive(n) {
		t.Fatal("alive after kill")
	}
	if got := len(c.AliveNodes()); got != 15 {
		t.Fatalf("alive count %d", got)
	}
}

func TestNodeByAddr(t *testing.T) {
	c := New(Options{N: 4, Seed: 9})
	for _, n := range c.Nodes {
		if c.NodeByAddr(n.Addr()) != n {
			t.Fatal("addr lookup broken")
		}
	}
	if c.NodeByAddr(99999) != nil {
		t.Fatal("unknown addr should be nil")
	}
}
