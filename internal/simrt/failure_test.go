package simrt

import (
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/netsim"
	"treep/internal/proto"
)

// TestTargetedRootKill removes the single best-connected top-level node
// and verifies lookups keep working (no single point of failure).
func TestTargetedRootKill(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 200, Seed: 21, Bulk: true})
	c.StartAll()
	c.Run(6 * time.Second)

	var top *core.Node
	for _, n := range c.Nodes {
		if top == nil || n.MaxLevel() > top.MaxLevel() {
			top = n
		}
	}
	c.Kill(top)
	c.Run(15 * time.Second)

	found, failed, _ := runLookups(c, randomPairs(c, 100), proto.AlgoG)
	if failed > found/10 {
		t.Fatalf("after killing the root: %d found, %d failed", found, failed)
	}
}

// TestRingSegmentKill wipes a contiguous run of the ID space — the worst
// case for ring locality — and verifies the overlay reconnects across the
// gap.
func TestRingSegmentKill(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 240, Seed: 22, Bulk: true})
	c.StartAll()
	c.Run(6 * time.Second)

	// Kill a contiguous 15% segment by ID order.
	nodes := append([]*core.Node(nil), c.Nodes...)
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j].ID() < nodes[i].ID() {
				nodes[i], nodes[j] = nodes[j], nodes[i]
			}
		}
	}
	start := len(nodes) / 3
	for i := start; i < start+len(nodes)*15/100; i++ {
		c.Kill(nodes[i])
	}
	c.Run(20 * time.Second)

	found, failed, _ := runLookups(c, randomPairs(c, 100), proto.AlgoG)
	total := found + failed
	if found < total*8/10 {
		t.Fatalf("after segment kill: %d/%d found", found, total)
	}
}

// TestHighLossOverlaySurvives runs the maintenance protocol under 20%
// message loss — UDP semantics at their worst — and verifies the overlay
// stays usable.
func TestHighLossOverlaySurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 150, Seed: 23, Bulk: true,
		NetOpts: []netsim.Option{netsim.WithLoss(0.20)}})
	c.StartAll()
	c.Run(15 * time.Second)

	found, failed, _ := runLookups(c, randomPairs(c, 100), proto.AlgoG)
	total := found + failed
	// A 5-hop request plus reply crosses the lossy network ~6 times:
	// per-attempt survival is only ~0.8^6 ≈ 26%, so even 50% delivered
	// demonstrates the maintenance protocol keeps routing state usable.
	if found < total/2 {
		t.Fatalf("under 20%% loss: %d/%d found", found, total)
	}
}

// TestRejoinAfterRevival revives killed endpoints and has them rejoin via
// anchors, checking that returning peers reintegrate.
func TestRejoinAfterRevival(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 100, Seed: 24, Bulk: true})
	c.StartAll()
	c.Run(6 * time.Second)

	victims := []*core.Node{c.Nodes[10], c.Nodes[40], c.Nodes[70]}
	for _, v := range victims {
		c.Kill(v)
	}
	c.Run(15 * time.Second)

	// Revive: endpoint back up, protocol restarted, rejoin through any
	// live peer.
	for _, v := range victims {
		c.Revive(v)
		v.Join(c.Nodes[0].Addr())
	}
	c.Run(15 * time.Second)

	for i, v := range victims {
		if v.Table().Level0.Len() == 0 {
			t.Fatalf("revived node %d still isolated", i)
		}
	}
	// A revived node's ID resolves again.
	found, failed, _ := runLookups(c, [][2]*core.Node{{c.Nodes[5], victims[0]}}, proto.AlgoG)
	if found != 1 {
		t.Fatalf("revived node not resolvable: %d/%d", found, failed)
	}
}

// TestMaintenanceTrafficBounded verifies the §III claim of low overhead:
// per-node maintenance traffic stays within a small constant budget per
// keep-alive interval.
func TestMaintenanceTrafficBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := New(Options{N: 300, Seed: 25, Bulk: true})
	c.StartAll()
	c.Run(10 * time.Second) // warm up past the initial bursts
	c.Net.ResetStats()
	c.Run(20 * time.Second)
	s := c.Net.Stats()
	perNodePerSecond := float64(s.Sent) / 300 / 20
	// Keep-alive interval 2s: L/R pings + pongs + child reports + acks +
	// bus pings ≈ 10 msgs / 2s. Flag anything wildly above.
	if perNodePerSecond > 25 {
		t.Fatalf("maintenance traffic %.1f msgs/node/s — overhead not low", perNodePerSecond)
	}
	t.Logf("maintenance: %.1f msgs/node/s, %.0f bytes/node/s",
		perNodePerSecond, float64(s.Bytes)/300/20)
}
