package routing

import (
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

func probeTable(ids ...uint64) *rtable.Table {
	tb := rtable.New()
	for _, id := range ids {
		r := proto.NodeRef{ID: idspace.ID(id), Addr: id}
		tb.Level0.Upsert(r, proto.FNeighbor, time.Second, tb.NextVersion(), rtable.Direct)
	}
	return tb
}

func nref(id uint64) proto.NodeRef { return proto.NodeRef{ID: idspace.ID(id), Addr: id} }

func TestProbeStepForwardsTowardVoid(t *testing.T) {
	// Left probe from origin 1000 arrives at 400, which knows 700 and 200.
	// 700 sits inside the gap (400, 1000) nearest the origin: forward there.
	tb := probeTable(700, 200)
	next, edge := ProbeStep(tb, nref(400), nref(1000), true)
	if edge || next.Addr != 700 {
		t.Fatalf("want forward to 700, got next=%v edge=%v", next, edge)
	}
	// Right probe mirror: origin 1000, receiver 1600 knows 1300.
	tb = probeTable(1300, 1800)
	next, edge = ProbeStep(tb, nref(1600), nref(1000), false)
	if edge || next.Addr != 1300 {
		t.Fatalf("want forward to 1300, got next=%v edge=%v", next, edge)
	}
}

func TestProbeStepDeclaresFarEdge(t *testing.T) {
	// Receiver 400 on the probed side knows nobody in (400, 1000): it is
	// the origin's missing left neighbour.
	tb := probeTable(200, 1500)
	next, edge := ProbeStep(tb, nref(400), nref(1000), true)
	if !edge || !next.IsZero() {
		t.Fatalf("want far edge, got next=%v edge=%v", next, edge)
	}
	// The gap shrinks strictly: entries at or below self don't count.
	tb = probeTable(400, 399)
	if _, edge := ProbeStep(tb, nref(400), nref(1000), true); !edge {
		t.Fatal("entries outside the gap must not mask the far edge")
	}
}

func TestProbeStepOffSideDropsWithoutCandidate(t *testing.T) {
	// Receiver 1200 sits right of origin 1000 but holds a left probe. It
	// may redirect into the left half-space if it knows someone there...
	tb := probeTable(600)
	next, edge := ProbeStep(tb, nref(1200), nref(1000), true)
	if edge || next.Addr != 600 {
		t.Fatalf("off-side redirect should target 600, got next=%v edge=%v", next, edge)
	}
	// ...but with no left-side knowledge it must drop, never claim the
	// edge: the void is not adjacent to it.
	tb = probeTable(1500)
	next, edge = ProbeStep(tb, nref(1200), nref(1000), true)
	if edge || !next.IsZero() {
		t.Fatalf("off-side dead end must drop, got next=%v edge=%v", next, edge)
	}
}

func TestProbeStepDegenerateAndSelf(t *testing.T) {
	tb := probeTable(500)
	// The space is a line: no probe extends below 0 or above MaxID.
	if next, edge := ProbeStep(tb, nref(300), proto.NodeRef{ID: 0, Addr: 7}, true); edge || !next.IsZero() {
		t.Fatal("left probe below origin 0 must drop")
	}
	if next, edge := ProbeStep(tb, nref(300), proto.NodeRef{ID: idspace.MaxID, Addr: 7}, false); edge || !next.IsZero() {
		t.Fatal("right probe above MaxID must drop")
	}
	// A probe that loops back to its origin dies.
	if next, edge := ProbeStep(tb, nref(300), nref(300), true); edge || !next.IsZero() {
		t.Fatal("probe arriving at its own origin must drop")
	}
}
