package routing

import (
	"math/rand"
	"testing"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

// randomTable builds a table with random content in every structure.
func randomTable(rng *rand.Rand, selfAddr uint64) *rtable.Table {
	tb := rtable.New()
	addRef := func() proto.NodeRef {
		return proto.NodeRef{
			ID:       idspace.ID(rng.Uint64()),
			Addr:     rng.Uint64()%1000 + 1,
			MaxLevel: uint8(rng.Intn(7)),
			Score:    uint16(rng.Intn(65536)),
		}
	}
	for i := 0; i < rng.Intn(8); i++ {
		tb.Level0.Upsert(addRef(), proto.FNeighbor, 0, tb.NextVersion(), rtable.Direct)
	}
	for i := 0; i < rng.Intn(6); i++ {
		lvl := uint8(1 + rng.Intn(5))
		tb.BusLevel(lvl).Upsert(addRef(), proto.FNeighbor, 0, tb.NextVersion(), rtable.Direct)
	}
	for i := 0; i < rng.Intn(5); i++ {
		tb.Children.Upsert(addRef(), proto.FChild, 0, tb.NextVersion(), rtable.Direct)
	}
	for i := 0; i < rng.Intn(4); i++ {
		tb.Superiors.Upsert(addRef(), proto.FSuperior, 0, tb.NextVersion(), rtable.Direct)
	}
	if rng.Intn(2) == 0 {
		p := addRef()
		p.MaxLevel = uint8(1 + rng.Intn(6))
		tb.SetParent(p, 0)
	}
	// The table never contains the node itself.
	tb.RemoveEverywhere(selfAddr)
	return tb
}

// TestRoutePropertyInvariants fuzzes Route over random tables and checks
// the decision invariants that the protocol relies on.
func TestRoutePropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	p := Params{Model: PaperModel{Height: 6}, Height: 6}
	for trial := 0; trial < 3000; trial++ {
		selfAddr := rng.Uint64()%1000 + 1
		self := proto.NodeRef{
			ID:       idspace.ID(rng.Uint64()),
			Addr:     selfAddr,
			MaxLevel: uint8(rng.Intn(7)),
		}
		tb := randomTable(rng, selfAddr)
		sender := rng.Uint64() % 1100
		target := idspace.ID(rng.Uint64())
		if rng.Intn(4) == 0 {
			target = self.ID // sometimes look up ourselves
		}
		req := &proto.LookupRequest{
			Origin: proto.NodeRef{ID: 1, Addr: 2000},
			Target: target,
			TTL:    uint8(rng.Intn(256)),
			Hops:   uint8(rng.Intn(256)),
			Algo:   proto.Algo(rng.Intn(3)),
		}
		if rng.Intn(3) == 0 && len(req.Alternates) == 0 {
			req.Alternates = []proto.NodeRef{{ID: idspace.ID(rng.Uint64()), Addr: 3000}}
		}
		fromParent := rng.Intn(4) == 0

		step := Route(self, tb, req, fromParent, sender, p)

		switch step.Action {
		case Forward:
			if step.Next.IsZero() {
				t.Fatalf("trial %d: forward to zero ref", trial)
			}
			if step.Next.Addr == selfAddr {
				t.Fatalf("trial %d: forward to self", trial)
			}
			if step.Next.Addr == sender && step.Next.Addr != 3000 {
				t.Fatalf("trial %d: bounced to sender (%+v)", trial, step)
			}
		case Deliver:
			if step.Found.IsZero() {
				t.Fatalf("trial %d: delivered zero ref", trial)
			}
		case Drop:
			if req.TTL != 0 {
				t.Fatalf("trial %d: dropped with TTL %d", trial, req.TTL)
			}
		}
		if req.TTL == 0 && step.Action != Drop {
			t.Fatalf("trial %d: TTL 0 must drop, got %v", trial, step.Action)
		}
		if target == self.ID && req.TTL > 0 {
			if step.Action != Deliver || step.Found.Addr != selfAddr {
				t.Fatalf("trial %d: self-target must deliver self, got %+v", trial, step)
			}
		}
	}
}

// TestRouteDoesNotMutateRequest verifies zero-copy transport safety: the
// decision function must treat the request as read-only.
func TestRouteDoesNotMutateRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := Params{Model: PaperModel{Height: 6}, Height: 6}
	for trial := 0; trial < 500; trial++ {
		selfAddr := rng.Uint64()%1000 + 1
		self := proto.NodeRef{ID: idspace.ID(rng.Uint64()), Addr: selfAddr, MaxLevel: uint8(rng.Intn(7))}
		tb := randomTable(rng, selfAddr)
		req := &proto.LookupRequest{
			Origin:     proto.NodeRef{ID: 1, Addr: 2000},
			Target:     idspace.ID(rng.Uint64()),
			TTL:        uint8(1 + rng.Intn(255)),
			Hops:       uint8(rng.Intn(200)),
			Algo:       proto.Algo(rng.Intn(3)),
			Alternates: []proto.NodeRef{{ID: 7, Addr: 3000}},
		}
		before := *req
		altBefore := append([]proto.NodeRef(nil), req.Alternates...)
		_ = Route(self, tb, req, false, 0, p)
		if req.Target != before.Target || req.TTL != before.TTL ||
			req.Hops != before.Hops || req.Algo != before.Algo || req.Origin != before.Origin {
			t.Fatalf("trial %d: request scalar fields mutated", trial)
		}
		for i := range altBefore {
			if req.Alternates[i] != altBefore[i] {
				t.Fatalf("trial %d: alternates mutated in place", trial)
			}
		}
	}
}

// TestGreedyPathTerminates replays greedy routing over a static random
// overlay graph and checks that TTL always bounds wandering (the paper
// admits G is not loop-free; the TTL is the guard).
func TestGreedyPathTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := Params{Model: PaperModel{Height: 6}, Height: 6}
	// A static population of tables.
	n := 40
	selves := make([]proto.NodeRef, n)
	tables := make([]*rtable.Table, n)
	for i := range selves {
		selves[i] = proto.NodeRef{ID: idspace.ID(rng.Uint64()), Addr: uint64(i + 1), MaxLevel: uint8(rng.Intn(4))}
	}
	for i := range tables {
		tables[i] = rtable.New()
		for j := 0; j < 6; j++ {
			other := selves[rng.Intn(n)]
			if other.Addr == selves[i].Addr {
				continue
			}
			tables[i].Level0.Upsert(other, proto.FNeighbor, 0, tables[i].NextVersion(), rtable.Direct)
		}
	}
	byAddr := map[uint64]int{}
	for i, s := range selves {
		byAddr[s.Addr] = i
	}
	for trial := 0; trial < 200; trial++ {
		cur := rng.Intn(n)
		req := &proto.LookupRequest{
			Origin: selves[cur], Target: idspace.ID(rng.Uint64()),
			TTL: 255, Algo: proto.Algo(rng.Intn(3)),
		}
		var from uint64
		steps := 0
		for {
			steps++
			if steps > 300 {
				t.Fatalf("trial %d: walk exceeded TTL bound", trial)
			}
			step := Route(selves[cur], tables[cur], req, false, from, p)
			if step.Action != Forward {
				break
			}
			from = selves[cur].Addr
			next, ok := byAddr[step.Next.Addr]
			if !ok {
				break
			}
			req.TTL--
			req.Hops++
			req.Alternates = step.Alternates
			cur = next
		}
	}
}
