package routing

import (
	"testing"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

// buildTable constructs a routing table holding the given refs in level 0
// (good enough for decision-logic tests; set-specific cases build their
// own).
func buildTable(refs ...proto.NodeRef) *rtable.Table {
	tb := rtable.New()
	for _, r := range refs {
		tb.Level0.Upsert(r, proto.FNeighbor, 0, tb.NextVersion(), rtable.Direct)
	}
	return tb
}

func lookupReq(target idspace.ID, algo proto.Algo) *proto.LookupRequest {
	return &proto.LookupRequest{Target: target, TTL: 255, Algo: algo}
}

func params() Params { return Params{Model: PaperModel{Height: 6}, Height: 6} }

func TestRouteTTLDrop(t *testing.T) {
	self := refAt(100, 0)
	req := lookupReq(500, proto.AlgoG)
	req.TTL = 0
	step := Route(self, buildTable(), req, false, 0, params())
	if step.Action != Drop {
		t.Fatalf("action %v, want drop", step.Action)
	}
}

func TestRouteDeliverSelf(t *testing.T) {
	self := refAt(100, 0)
	step := Route(self, buildTable(), lookupReq(100, proto.AlgoG), false, 0, params())
	if step.Action != Deliver || step.Found.ID != 100 {
		t.Fatalf("step %+v", step)
	}
}

func TestRouteDeliverFromTable(t *testing.T) {
	self := refAt(100, 0)
	target := refAt(500, 0)
	step := Route(self, buildTable(target), lookupReq(500, proto.AlgoG), false, 0, params())
	if step.Action != Deliver || step.Found.Addr != target.Addr {
		t.Fatalf("step %+v", step)
	}
}

func TestGreedyForwardsToClosest(t *testing.T) {
	self := refAt(idspace.FromFraction(0.1), 0)
	near := refAt(idspace.FromFraction(0.15), 0)
	far := refAt(idspace.FromFraction(0.5), 0)
	target := idspace.FromFraction(0.52)
	step := Route(self, buildTable(near, far), lookupReq(target, proto.AlgoG), false, 0, params())
	if step.Action != Forward {
		t.Fatalf("action %v", step.Action)
	}
	if step.Next.Addr != far.Addr {
		t.Fatalf("greedy chose %v, want the closest-to-target %v", step.Next.ID, far.ID)
	}
}

func TestLevelZeroForwardsWithoutHalving(t *testing.T) {
	// Neighbour improves distance but not by half: a level-0 node forwards
	// anyway.
	self := refAt(1000, 0)
	nbr := refAt(1100, 0)
	target := idspace.ID(2000)
	step := Route(self, buildTable(nbr), lookupReq(target, proto.AlgoG), false, 0, params())
	if step.Action != Forward || step.Next.Addr != nbr.Addr {
		t.Fatalf("step %+v", step)
	}
}

func TestUpperLevelEscalatesWithoutHalving(t *testing.T) {
	// A level-2 node whose only same-level candidate improves but does not
	// halve must escalate to its superior list.
	self := refAt(idspace.FromFraction(0.2), 2)
	weak := refAt(idspace.FromFraction(0.25), 0) // improves slightly
	sup := refAt(idspace.FromFraction(0.6), 5)   // covers target: D=0
	tb := buildTable(weak)
	tb.Superiors.Upsert(sup, proto.FSuperior, 0, tb.NextVersion(), rtable.Direct)
	target := idspace.FromFraction(0.8)
	step := Route(self, tb, lookupReq(target, proto.AlgoG), false, 0, params())
	if step.Action != Forward {
		t.Fatalf("action %v", step.Action)
	}
	if step.Next.Addr != sup.Addr {
		t.Fatalf("expected escalation to superior, got %v", step.Next)
	}
}

func TestEscalateDescendsToChild(t *testing.T) {
	// A level-1 parent with no improving same-level candidate but a child
	// near the target descends.
	self := refAt(idspace.FromFraction(0.5), 1)
	child := refAt(idspace.FromFraction(0.52), 0)
	tb := rtable.New()
	tb.Children.Upsert(child, proto.FChild, 0, tb.NextVersion(), rtable.Direct)
	target := idspace.FromFraction(0.521)
	step := Route(self, tb, lookupReq(target, proto.AlgoG), false, 0, params())
	if step.Action != Forward || step.Next.Addr != child.Addr {
		t.Fatalf("step %+v", step)
	}
}

func TestEscalateToParentWhenNoSuperiors(t *testing.T) {
	self := refAt(idspace.FromFraction(0.1), 0)
	parent := refAt(idspace.FromFraction(0.3), 3)
	tb := rtable.New()
	tb.SetParent(parent, 0)
	target := idspace.FromFraction(0.9)
	step := Route(self, tb, lookupReq(target, proto.AlgoG), false, 0, params())
	if step.Action != Forward || step.Next.Addr != parent.Addr {
		t.Fatalf("step %+v", step)
	}
}

func TestEmptyTableLocalOriginDeadEnds(t *testing.T) {
	// An isolated node resolving its own request must not claim ownership
	// — acknowledging writes nobody else can find strands them silently.
	self := refAt(100, 0)
	step := Route(self, rtable.New(), lookupReq(999, proto.AlgoG), false, 0, params())
	if step.Action != NotFound {
		t.Fatalf("step %+v", step)
	}
}

func TestSenderOnlyTableDeliversSelf(t *testing.T) {
	// A remote request whose only table entry is the sender means a (at
	// least) two-node overlay: the receiver is the best owner estimate it
	// knows of, and must deliver itself rather than dead-end — otherwise a
	// two-node DHT cannot store at the remote node.
	self := refAt(100, 0)
	nbr := refAt(150, 0)
	step := Route(self, buildTable(nbr), lookupReq(999, proto.AlgoG), false, nbr.Addr, params())
	if step.Action != Deliver || step.Found.Addr != self.Addr {
		t.Fatalf("step %+v", step)
	}
}

func TestSenderExcluded(t *testing.T) {
	// The only candidate is the sender: must not bounce back.
	self := refAt(100, 0)
	nbr := refAt(150, 0)
	step := Route(self, buildTable(nbr), lookupReq(200, proto.AlgoG), false, nbr.Addr, params())
	if step.Action == Forward && step.Next.Addr == nbr.Addr {
		t.Fatal("request bounced back to sender")
	}
}

func TestNGPicksFirstImproving(t *testing.T) {
	// Candidates sorted by distance-to-target: NG takes the nearest
	// improving one, same as G here, but crucially NG does not require the
	// halving rule at upper levels.
	// better improves D (0.15L < 0.2375L) but misses the halving bound
	// (0.11875L), so G escalates while NG forwards.
	self := refAt(idspace.FromFraction(0.2), 2)
	better := refAt(idspace.FromFraction(0.35), 0)
	tb := buildTable(better)
	target := idspace.FromFraction(0.5)
	step := Route(self, tb, lookupReq(target, proto.AlgoNG), false, 0, params())
	if step.Action != Forward || step.Next.Addr != better.Addr {
		t.Fatalf("NG step %+v", step)
	}
	// G on the same table escalates (no halving, level > 0, no superiors,
	// no children) and degrades to the ring walk, reaching the same hop by
	// a different rule.
	stepG := Route(self, tb, lookupReq(target, proto.AlgoG), false, 0, params())
	if stepG.Action != Forward || stepG.Next.Addr != better.Addr {
		t.Fatalf("G step %+v", stepG)
	}
	// With an empty table a locally originated G truly dead-ends.
	if s := Route(self, rtable.New(), lookupReq(target, proto.AlgoG), false, 0, params()); s.Action != NotFound {
		t.Fatalf("empty-table G step %+v", s)
	}
}

func TestNGSACollectsAlternates(t *testing.T) {
	self := refAt(idspace.FromFraction(0.1), 0)
	c1 := refAt(idspace.FromFraction(0.3), 0)
	c2 := refAt(idspace.FromFraction(0.35), 0)
	c3 := refAt(idspace.FromFraction(0.4), 0)
	target := idspace.FromFraction(0.45)
	step := Route(self, buildTable(c1, c2, c3), lookupReq(target, proto.AlgoNGSA), false, 0, params())
	if step.Action != Forward {
		t.Fatalf("step %+v", step)
	}
	// Nearest improving candidate is c3; the others become alternates.
	if step.Next.Addr != c3.Addr {
		t.Fatalf("next %v", step.Next)
	}
	if len(step.Alternates) != 2 {
		t.Fatalf("alternates %v", step.Alternates)
	}
}

func TestNGSAFallsBackToAlternate(t *testing.T) {
	// Dead end with an alternate in the request: jump to it instead of
	// giving up.
	self := refAt(100, 0)
	alt := refAt(5000, 0)
	req := lookupReq(6000, proto.AlgoNGSA)
	req.Alternates = []proto.NodeRef{alt}
	step := Route(self, rtable.New(), req, false, 0, params())
	if step.Action != Forward || step.Next.Addr != alt.Addr {
		t.Fatalf("step %+v", step)
	}
	if len(step.Alternates) != 0 {
		t.Fatalf("alternate not consumed: %v", step.Alternates)
	}
	// NG in the same position gives up without touching the alternates.
	reqNG := lookupReq(6000, proto.AlgoNG)
	reqNG.Alternates = []proto.NodeRef{alt}
	if s := Route(self, rtable.New(), reqNG, false, 0, params()); s.Action != NotFound {
		t.Fatalf("NG should not use alternates: %+v", s)
	}
}

func TestNGSAPopsNearestAlternate(t *testing.T) {
	self := refAt(100, 0)
	farAlt := refAt(9000, 0)
	nearAlt := refAt(6100, 0)
	req := lookupReq(6000, proto.AlgoNGSA)
	req.Alternates = []proto.NodeRef{farAlt, nearAlt}
	step := Route(self, rtable.New(), req, false, 0, params())
	if step.Next.Addr != nearAlt.Addr {
		t.Fatalf("popped %v, want nearest alternate", step.Next)
	}
	if len(step.Alternates) != 1 || step.Alternates[0].Addr != farAlt.Addr {
		t.Fatalf("remaining %v", step.Alternates)
	}
}

func TestFromParentRestrictsToLevelZero(t *testing.T) {
	self := refAt(idspace.FromFraction(0.5), 0)
	l0 := refAt(idspace.FromFraction(0.55), 0)
	sup := refAt(idspace.FromFraction(0.9), 4)
	tb := buildTable(l0)
	tb.Superiors.Upsert(sup, proto.FSuperior, 0, tb.NextVersion(), rtable.Direct)
	target := idspace.FromFraction(0.56)
	step := Route(self, tb, lookupReq(target, proto.AlgoG), true, 0, params())
	if step.Action != Forward || step.Next.Addr != l0.Addr {
		t.Fatalf("step %+v", step)
	}
	// With no level-0 progress available, a parent-delegated node is the
	// positionally nearest node it knows of — it delivers itself as the
	// owner (never re-escalates: that is the ping-pong Figure 3 forbids).
	tbEmpty := rtable.New()
	tbEmpty.Superiors.Upsert(sup, proto.FSuperior, 0, tbEmpty.NextVersion(), rtable.Direct)
	step = Route(self, tbEmpty, lookupReq(target, proto.AlgoG), true, 0, params())
	if step.Action != Deliver || step.Found.Addr != self.Addr {
		t.Fatalf("step %+v", step)
	}
}

func TestEuclideanFallbackAfterHeightHops(t *testing.T) {
	// A high-level far node beats a near level-0 node under the paper
	// model, but after Hops > Height the Euclidean fallback prefers the
	// near node.
	// farHigh at level 5 covers L/2: its distance to the target (0.45L
	// away) is 0 under the paper model but large under Euclidean.
	self := refAt(idspace.FromFraction(0.1), 0)
	nearL0 := refAt(idspace.FromFraction(0.3), 0)
	farHigh := refAt(idspace.FromFraction(0.8), 5)
	target := idspace.FromFraction(0.35)
	tb := buildTable(nearL0, farHigh)

	req := lookupReq(target, proto.AlgoG)
	req.Hops = 0
	step := Route(self, tb, req, false, 0, params())
	if step.Action != Forward || step.Next.Addr != farHigh.Addr {
		t.Fatalf("paper-model step %+v, want high-level node (D=0)", step)
	}

	req2 := lookupReq(target, proto.AlgoG)
	req2.Hops = 7 // > height 6
	step = Route(self, tb, req2, false, 0, params())
	if step.Action != Forward || step.Next.Addr != nearL0.Addr {
		t.Fatalf("euclidean-fallback step %+v, want near node", step)
	}
}

func TestNilModelDefaultsToEuclidean(t *testing.T) {
	self := refAt(100, 0)
	nbr := refAt(200, 0)
	step := Route(self, buildTable(nbr), lookupReq(300, proto.AlgoG), false, 0, Params{Height: 6})
	if step.Action != Forward {
		t.Fatalf("step %+v", step)
	}
}

func TestMergeAlternatesDedupAndCap(t *testing.T) {
	old := []proto.NodeRef{{ID: 1, Addr: 1}, {ID: 2, Addr: 2}}
	fresh := []proto.NodeRef{{ID: 2, Addr: 2}, {ID: 3, Addr: 3}, {ID: 4, Addr: 4}}
	out := mergeAlternates(old, fresh, 3)
	if len(out) != 3 {
		t.Fatalf("len %d", len(out))
	}
	seen := map[uint64]bool{}
	for _, r := range out {
		if seen[r.Addr] {
			t.Fatal("duplicate in merged alternates")
		}
		seen[r.Addr] = true
	}
	if got := mergeAlternates(old, nil, 3); len(got) != 2 {
		t.Fatal("no fresh: keep old")
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{Deliver: "deliver", Forward: "forward", NotFound: "not-found", Drop: "drop", Action(9): "action(?)"} {
		if a.String() != want {
			t.Errorf("%d -> %q", a, a.String())
		}
	}
}
