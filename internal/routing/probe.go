package routing

import (
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

// ProbeStep decides one hop of a ring repair probe at the node that just
// received it. A probe walks from its origin toward a suspected void on
// one side of the origin's coordinate (Left means the side with IDs below
// Origin.ID): each receiver hands it to the peer it knows nearest the
// origin inside the unexplored gap, so the gap shrinks strictly at every
// hop and the walk terminates. The roles it can assign:
//
//   - forward: a known peer sits strictly between this node and the
//     origin on the probed side — pass the probe to the one nearest the
//     origin (next, false).
//   - far edge: this node sits on the probed side and knows nobody
//     between itself and the origin — it IS the missing neighbour the
//     origin cannot see. Returns (zero, true); the caller introduces
//     itself to the origin.
//   - drop: this node sits on the wrong side of the origin and knows
//     nobody on the probed side at all. It cannot be the far edge (the
//     void is not next to it), so the probe dies. Returns (zero, false).
//
// A probe below ID 0 or above MaxID is degenerate — the space is a line,
// not a ring (§III.a), so an edge node's empty outer side is legitimate —
// and callers never launch one; ProbeStep drops it defensively.
func ProbeStep(tbl *rtable.Table, self, origin proto.NodeRef, left bool) (next proto.NodeRef, edge bool) {
	if origin.Addr == self.Addr {
		return proto.NodeRef{}, false
	}
	var lo, hi idspace.ID
	onSide := false
	if left {
		if origin.ID == 0 {
			return proto.NodeRef{}, false
		}
		lo, hi = 0, origin.ID-1
		if self.ID < origin.ID {
			onSide = true
			lo = self.ID + 1 // unexplored gap only: (self, origin)
		}
	} else {
		if origin.ID == idspace.MaxID {
			return proto.NodeRef{}, false
		}
		lo, hi = origin.ID+1, idspace.MaxID
		if self.ID > origin.ID {
			onSide = true
			hi = self.ID - 1
		}
	}
	if lo > hi {
		// On-side with an empty gap: self is adjacent to the origin.
		return proto.NodeRef{}, onSide
	}
	if cand, ok := tbl.NearestInRange(lo, hi, origin.ID, origin.Addr); ok {
		return cand, false
	}
	return proto.NodeRef{}, onSide
}
