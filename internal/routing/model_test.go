package routing

import (
	"testing"

	"treep/internal/idspace"
	"treep/internal/proto"
)

func refAt(id idspace.ID, lvl uint8) proto.NodeRef {
	return proto.NodeRef{ID: id, Addr: uint64(id) + 1, MaxLevel: lvl}
}

func TestPaperModelLevelZeroIsEuclidean(t *testing.T) {
	m := PaperModel{Height: 6}
	a := refAt(1000, 0)
	if got, want := m.D(a, 4000), float64(3000); got != want {
		t.Fatalf("D = %v, want %v", got, want)
	}
}

func TestPaperModelCoverageZeroesDistance(t *testing.T) {
	m := PaperModel{Height: 6}
	// A level-5 node covers L/2^(6-5) = L/2: any target within half the
	// space is at distance 0.
	a := refAt(0, 5)
	if got := m.D(a, idspace.FromFraction(0.4)); got != 0 {
		t.Fatalf("level-5 node should cover 0.4L: D = %v", got)
	}
	if got := m.D(a, idspace.FromFraction(0.9)); got <= 0 {
		t.Fatalf("level-5 node should not cover 0.9L: D = %v", got)
	}
}

func TestPaperModelRootCoversEverything(t *testing.T) {
	m := PaperModel{Height: 6}
	root := refAt(0, 6)
	if got := m.D(root, idspace.MaxID); got != 0 {
		t.Fatalf("root D = %v, want 0", got)
	}
	// Levels above height also cover everything (clamped).
	over := refAt(0, 7)
	if got := m.D(over, idspace.MaxID); got != 0 {
		t.Fatalf("over-height D = %v", got)
	}
}

func TestPaperModelMonotoneInLevel(t *testing.T) {
	m := PaperModel{Height: 6}
	target := idspace.FromFraction(0.7)
	prev := m.D(refAt(0, 0), target)
	for lvl := uint8(1); lvl <= 6; lvl++ {
		d := m.D(refAt(0, lvl), target)
		if d > prev {
			t.Fatalf("D must not increase with level: lvl %d: %v > %v", lvl, d, prev)
		}
		prev = d
	}
}

func TestBranchingModelWiderCoverage(t *testing.T) {
	paper := PaperModel{Height: 6}
	branch := BranchingModel{Height: 6, Branching: 4}
	a := refAt(0, 3)
	target := idspace.FromFraction(0.2)
	dp := paper.D(a, target)
	db := branch.D(a, target)
	// Base 4 coverage at level 3 is L/4^3 = L/64, smaller than paper's
	// L/2^3 = L/8, so the branching distance is LARGER here.
	if db < dp {
		t.Fatalf("branching(4) coverage should be narrower than paper at mid level: %v < %v", db, dp)
	}
	if got := branch.D(refAt(5, 0), 10); got != 5 {
		t.Fatalf("branching at level 0 should be Euclidean: %v", got)
	}
	// Degenerate branching below 2 is clamped to 2 (same as paper).
	clamped := BranchingModel{Height: 6, Branching: 0.5}
	if clamped.D(a, target) != paper.D(a, target) {
		t.Fatal("branching < 2 should clamp to paper behaviour")
	}
}

func TestEuclideanModel(t *testing.T) {
	m := EuclideanModel{}
	if m.D(refAt(10, 5), 4) != 6 {
		t.Fatal("euclidean ignores level")
	}
}

func TestModelNames(t *testing.T) {
	if (PaperModel{}).Name() != "paper" || (BranchingModel{}).Name() != "branching" || (EuclideanModel{}).Name() != "euclidean" {
		t.Fatal("model names")
	}
}
