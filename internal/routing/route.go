package routing

import (
	"slices"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

// Action is the outcome of one forwarding decision.
type Action uint8

// Forwarding outcomes.
const (
	// Deliver: the target was resolved at this node (it is this node, or a
	// node in the routing table — "IF target X is in the routing table THEN
	// transmit back the result").
	Deliver Action = iota
	// Forward: send the request to Step.Next.
	Forward
	// NotFound: dead end; reply failure to the origin.
	NotFound
	// Drop: TTL exhausted; discard silently ("IF TTL > 255 THEN discard").
	Drop
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Deliver:
		return "deliver"
	case Forward:
		return "forward"
	case NotFound:
		return "not-found"
	case Drop:
		return "drop"
	}
	return "action(?)"
}

// Step is one routing decision.
type Step struct {
	Action Action
	// Next is the forwarding destination (Action == Forward).
	Next proto.NodeRef
	// Found is the resolved node (Action == Deliver).
	Found proto.NodeRef
	// Alternates is the updated NGSA fall-back list to carry in the
	// forwarded request.
	Alternates []proto.NodeRef
}

// Params configures the decision logic.
type Params struct {
	// Model is the hierarchy-aware distance (PaperModel in experiments).
	Model Model
	// Height is the hierarchy height h; above this many hops the request
	// switches to plain Euclidean distance (§III.f: "a request that has a
	// higher TTL means that the network is unstable and/or disrupted").
	Height uint8
	// MaxAlternates caps the NGSA fall-back list ("at the expense of
	// adding data to the request").
	MaxAlternates int
	// PreferHighScore biases algorithm G's next-hop choice toward
	// higher-capability candidates: among candidates that already satisfy
	// the halving rule, the highest advertised score wins instead of the
	// strictly nearest. Distance ordering is otherwise untouched — every
	// forward still makes at least halving progress, so loop-freedom and
	// termination are exactly as without the bias. Set by core when the
	// capacity balancer is on.
	PreferHighScore bool
}

// DefaultMaxAlternates bounds the NGSA list when Params leaves it zero.
const DefaultMaxAlternates = 8

// Scratch holds reusable buffers for the routing decision. A node (or any
// single-threaded driver) keeps one Scratch and passes it to RouteWith so
// the per-hop candidate collection allocates nothing. The zero value is
// ready to use.
type Scratch struct {
	cands []proto.NodeRef
}

// Route makes the §III.f forwarding decision for req at the node self with
// routing table tbl.
//
// fromParent reports whether the request arrived from this node's own
// parent: a parent delegating into its tessellation restricts the child to
// a level-0 search and, per Figure 3, the child answers NotFound rather
// than re-escalating when it cannot make progress (preventing up-down
// ping-pong).
//
// sender is the address the request arrived from (0 for locally
// originated); it is excluded from candidates to avoid immediate
// bounce-backs.
func Route(self proto.NodeRef, tbl *rtable.Table, req *proto.LookupRequest, fromParent bool, sender uint64, p Params) Step {
	var sc Scratch
	return RouteWith(&sc, self, tbl, req, fromParent, sender, p)
}

// RouteWith is Route reusing the caller's scratch buffers; it is the
// allocation-free form used on the per-message forwarding path.
func RouteWith(sc *Scratch, self proto.NodeRef, tbl *rtable.Table, req *proto.LookupRequest, fromParent bool, sender uint64, p Params) Step {
	if req.TTL == 0 {
		return Step{Action: Drop}
	}
	x := req.Target

	// Local resolution.
	if x == self.ID {
		return Step{Action: Deliver, Found: self}
	}
	if ref, ok := tbl.FindID(x); ok {
		return Step{Action: Deliver, Found: ref}
	}

	// Distance model: after more hops than the hierarchy is tall, the
	// network is assumed disrupted and plain Euclidean distance gives the
	// finer-grained routing of §III.f.
	var model Model = p.Model
	if model == nil {
		model = EuclideanModel{}
	}
	if req.Hops > p.Height {
		model = EuclideanModel{}
	}
	dSelf := model.D(self, x)

	// Candidate set: every peer in the table, except the sender. Collected
	// once per decision into the scratch buffer; escalate and the
	// ownership checks reuse the same collection.
	cands := tbl.Candidates(sc.cands[:0])
	sc.cands = cands
	filtered := cands[:0]
	for _, c := range cands {
		if c.Addr == sender || c.Addr == self.Addr {
			continue
		}
		filtered = append(filtered, c)
	}
	cands = filtered
	sortByDistanceTo(cands, x)

	if len(cands) == 0 {
		// No candidates. For a locally originated request (sender 0) that
		// means the table is empty: the node is isolated — never joined or
		// fully cut off — and claiming ownership would let writes succeed
		// locally while the rest of the overlay resolves the key elsewhere
		// (acknowledged-but-stranded records). Dead-end instead, so the
		// caller sees the misconfiguration. A remote request whose only
		// table entry is the sender is different: at minimum a two-node
		// overlay, where the owner-resolution rule applies — nothing known
		// is closer, so self is the best owner estimate (without this a
		// two-node DHT cannot store at the remote node). Exact-node
		// lookups are judged by the origin against Best, so a wrong
		// estimate still counts as a miss. NGSA falls back to a carried
		// alternate before either answer.
		if sender == 0 {
			return finishNGSA(req, p, Step{Action: NotFound})
		}
		return finishNGSA(req, p, Step{Action: Deliver, Found: self})
	}

	// A request delegated by the own parent searches level 0 only
	// (Figure 3: "IF request from the parent of Level 1 THEN
	// N = Search_Level_Zero()"). The level-0 search is positional, so it
	// runs on plain Euclidean distance; with no lateral or downward
	// progress the answer is Not Found (never back up — that is the
	// ping-pong Figure 3 forbids).
	if fromParent {
		eu := EuclideanModel{}
		dE := idspace.DistF(self.ID, x)
		if best, ok := bestImproving(eu, tbl.Level0.Refs(), x, dE, sender, self.Addr); ok {
			return Step{Action: Forward, Next: best, Alternates: req.Alternates}
		}
		if child, ok := tbl.Children.Nearest(x); ok && child.Addr != self.Addr && child.Addr != sender {
			if idspace.Dist(child.ID, x) < idspace.Dist(self.ID, x) {
				return Step{Action: Forward, Next: child, Alternates: req.Alternates}
			}
		}
		// Owner resolution in the restricted search: the owner of a
		// coordinate is the positionally nearest node, so only ring and
		// child competitors matter here. If neither is closer, we own it.
		closer := false
		for _, r := range tbl.Level0.Refs() {
			if r.Addr != sender && r.Addr != self.Addr && idspace.Dist(r.ID, x) < idspace.Dist(self.ID, x) {
				closer = true
				break
			}
		}
		if !closer {
			for _, r := range tbl.Children.Refs() {
				if r.Addr != sender && r.Addr != self.Addr && idspace.Dist(r.ID, x) < idspace.Dist(self.ID, x) {
					closer = true
					break
				}
			}
		}
		if !closer {
			return Step{Action: Deliver, Found: self}
		}
		// "IF Request from parent of level 1 THEN Reply Not Found".
		return finishNGSA(req, p, Step{Action: NotFound})
	}

	switch req.Algo {
	case proto.AlgoNG:
		return routeNG(self, req, model, cands, x, dSelf, tbl, p, sender, false)
	case proto.AlgoNGSA:
		return routeNG(self, req, model, cands, x, dSelf, tbl, p, sender, true)
	default:
		return routeGreedy(self, req, model, cands, x, dSelf, tbl, p, sender)
	}
}

// routeGreedy is algorithm G: pick the candidate minimising D, forward when
// the halving rule D(n,x) ≤ ½·D(a,x) holds or the node is at level 0;
// otherwise escalate through children/superiors.
func routeGreedy(self proto.NodeRef, req *proto.LookupRequest, model Model, cands []proto.NodeRef, x idspace.ID, dSelf float64, tbl *rtable.Table, p Params, sender uint64) Step {
	best := cands[0]
	bestD := model.D(best, x)
	for _, c := range cands[1:] {
		if d := model.D(c, x); d < bestD {
			best, bestD = c, d
		}
	}
	if bestD < dSelf {
		switch {
		case bestD <= dSelf/2:
			// The halving-distance jump of Figure 4. With the balancer's
			// score preference on, any candidate inside the halving radius
			// is an equally valid geometric jump, so the strongest one
			// takes the traffic: load concentrates on nodes advertising
			// head-room instead of whichever peer is marginally nearest.
			// cands is distance-sorted with deterministic tiebreaks, so
			// the choice is deterministic too.
			if p.PreferHighScore {
				// Divert to a stronger candidate only among near-ties:
				// remaining distance within 12.5% of the true nearest.
				// Opt-in: even this bounded window measurably stretches
				// mean path length (wider windows are worse), which is
				// why the load balancer does not enable it by default.
				nearD := bestD
				for _, c := range cands {
					d := model.D(c, x)
					if d > dSelf/2 || d > nearD+nearD/8 {
						continue
					}
					if c.Score > best.Score {
						best, bestD = c, d
					}
				}
			}
			return Step{Action: Forward, Next: best, Alternates: req.Alternates}
		case self.MaxLevel == 0:
			// "ELSE IF Level_A == 0 THEN forward the request to N":
			// level-0 progress is linear, not geometric.
			return Step{Action: Forward, Next: best, Alternates: req.Alternates}
		}
	}
	return escalate(self, req, model, cands, x, dSelf, tbl, p, sender, false)
}

// routeNG is algorithms NG and NGSA: take the first candidate strictly
// closer to the target ("the procedure basically ends when a node
// satisfying the condition is found"); NGSA additionally accumulates the
// remaining improving candidates as fall-back alternates.
func routeNG(self proto.NodeRef, req *proto.LookupRequest, model Model, cands []proto.NodeRef, x idspace.ID, dSelf float64, tbl *rtable.Table, p Params, sender uint64, collectAlternates bool) Step {
	var first proto.NodeRef
	found := false
	var alternates []proto.NodeRef
	for _, c := range cands {
		if model.D(c, x) < dSelf {
			if !found {
				first, found = c, true
				continue
			}
			if collectAlternates {
				alternates = append(alternates, c)
			}
		}
	}
	if !found {
		return escalate(self, req, model, cands, x, dSelf, tbl, p, sender, collectAlternates)
	}
	out := req.Alternates
	if collectAlternates {
		out = mergeAlternates(req.Alternates, alternates, maxAlternates(p))
	}
	return Step{Action: Forward, Next: first, Alternates: out}
}

// escalate handles the no-progress cases of Figure 3: descend to the
// closest improving child, walk the level-0 ring when this node's own
// tessellation already covers the target, else climb via the superior node
// list (closest member satisfying the halving rule, else the highest-level
// member), else — for NGSA — fall back to an alternate carried in the
// request, else give up.
func escalate(self proto.NodeRef, req *proto.LookupRequest, model Model, cands []proto.NodeRef, x idspace.ID, dSelf float64, tbl *rtable.Table, p Params, sender uint64, ngsa bool) Step {
	// Lateral hand-off: when this node's coverage makes D = 0 it believes
	// it owns the target — but the coverage radius is an approximation,
	// and the true owner of a 1-D tessellation is the *nearest* member.
	// A known same-or-higher-level member strictly Euclidean-closer to
	// the target owns it; descending into our own subtree instead would
	// orbit the request (parent → child → ring → parent) until the TTL
	// kills it.
	if dSelf == 0 {
		dE := idspace.Dist(self.ID, x)
		var lateral proto.NodeRef
		bestD := dE
		for _, c := range cands {
			if c.MaxLevel < self.MaxLevel {
				continue
			}
			if d := idspace.Dist(c.ID, x); d < bestD {
				lateral, bestD = c, d
			}
		}
		if !lateral.IsZero() {
			return Step{Action: Forward, Next: lateral, Alternates: req.Alternates}
		}
	}

	// Descend: "N = Closest_Child(X)". The child needs no model-distance
	// improvement (a parent covering the target has D = 0, which nothing
	// improves on); strict Euclidean progress is required instead, so a
	// parent/child pair cannot ping-pong.
	if child, ok := tbl.Children.Nearest(x); ok && child.Addr != self.Addr && child.Addr != sender {
		if idspace.Dist(child.ID, x) < idspace.Dist(self.ID, x) {
			return Step{Action: Forward, Next: child, Alternates: req.Alternates}
		}
	}

	// Covering node with no useful child: the target's owner sits on the
	// level-0 ring nearby; walk it by Euclidean progress. Climbing would
	// only bounce the request back down.
	if dSelf == 0 {
		if step, ok := ringWalk(self, req, tbl, x, sender); ok {
			return step
		}
	}

	// Owner resolution: the owner of a coordinate in a 1-D tessellation is
	// the nearest node. Descent, lateral hand-off and the ring walk (all
	// requiring strict Euclidean progress) have failed — if nothing we know
	// is strictly closer to x than we are, we are the best owner estimate.
	// This is what lets the lookup "search for an object associated with
	// ID ... used for resource discovery" (§III.f): object keys hash
	// between node IDs and terminate here. Exact-node lookups are
	// unaffected — while the target is alive and reachable, someone
	// strictly closer is always known until the request stands on it.
	if !anyCloser(cands, self, x) {
		return Step{Action: Deliver, Found: self}
	}

	// Climb: superiors = superior node list plus the immediate parent.
	// Walked in place (refs slice + parent slot) rather than materialised:
	// this path runs once per escalating hop.
	parent, hasParent := tbl.Parent()
	eachSup := func(fn func(proto.NodeRef)) {
		for _, s := range tbl.Superiors.Refs() {
			if s.Addr != self.Addr && s.Addr != sender {
				fn(s)
			}
		}
		if hasParent && parent.Addr != self.Addr && parent.Addr != sender {
			fn(parent)
		}
	}
	{
		// "forward the request to the Node that is the closest to X
		// satisfying D(n,x) ≤ ½·D(a,x)".
		var best proto.NodeRef
		bestD := dSelf / 2
		found := false
		eachSup(func(s proto.NodeRef) {
			if d := model.D(s, x); d <= bestD {
				best, bestD, found = s, d, true
			}
		})
		if found {
			return Step{Action: Forward, Next: best, Alternates: req.Alternates}
		}
		// "IF none match the criteria THEN send the request to the
		// superior node with the highest level."
		var top proto.NodeRef
		eachSup(func(s proto.NodeRef) {
			if top.IsZero() || s.MaxLevel > top.MaxLevel ||
				(s.MaxLevel == top.MaxLevel && idspace.Dist(s.ID, x) < idspace.Dist(top.ID, x)) {
				top = s
			}
		})
		if !top.IsZero() {
			return Step{Action: Forward, Next: top, Alternates: req.Alternates}
		}
	}

	// Last resort before giving up: degrade to a level-0 ring walk. The
	// ring guarantees strict Euclidean progress while it is intact, so a
	// reachable target is eventually found within the TTL — the linear
	// cost only bites in the heavily damaged regimes where the paper
	// itself falls back to Euclidean routing.
	if step, ok := ringWalk(self, req, tbl, x, sender); ok {
		return step
	}

	if ngsa {
		return finishNGSA(req, p, Step{Action: NotFound})
	}
	return Step{Action: NotFound}
}

// anyCloser reports whether any candidate is strictly Euclidean-closer to
// x than self. cands is already sender- and self-filtered.
func anyCloser(cands []proto.NodeRef, self proto.NodeRef, x idspace.ID) bool {
	for _, c := range cands {
		if idspace.Dist(c.ID, x) < idspace.Dist(self.ID, x) {
			return true
		}
	}
	return false
}

// ringWalk forwards to the level-0 contact that makes the best strict
// Euclidean progress toward x, if any.
func ringWalk(self proto.NodeRef, req *proto.LookupRequest, tbl *rtable.Table, x idspace.ID, sender uint64) (Step, bool) {
	dE := idspace.DistF(self.ID, x)
	if best, ok := bestImproving(EuclideanModel{}, tbl.Level0.Refs(), x, dE, sender, self.Addr); ok {
		return Step{Action: Forward, Next: best, Alternates: req.Alternates}, true
	}
	return Step{}, false
}

// finishNGSA converts a dead end into a jump to the nearest carried
// alternate when the request has any (the "fall back" of NGSA).
func finishNGSA(req *proto.LookupRequest, p Params, dead Step) Step {
	if req.Algo != proto.AlgoNGSA || len(req.Alternates) == 0 {
		return dead
	}
	// Pop the alternate nearest to the target.
	bestIdx := 0
	bestD := idspace.Dist(req.Alternates[0].ID, req.Target)
	for i, a := range req.Alternates[1:] {
		if d := idspace.Dist(a.ID, req.Target); d < bestD {
			bestIdx, bestD = i+1, d
		}
	}
	next := req.Alternates[bestIdx]
	rest := make([]proto.NodeRef, 0, len(req.Alternates)-1)
	rest = append(rest, req.Alternates[:bestIdx]...)
	rest = append(rest, req.Alternates[bestIdx+1:]...)
	return Step{Action: Forward, Next: next, Alternates: rest}
}

// bestImproving returns the ref in refs (excluding two addresses) that
// minimises D and strictly improves on dSelf.
func bestImproving(model Model, refs []proto.NodeRef, x idspace.ID, dSelf float64, exclude1, exclude2 uint64) (proto.NodeRef, bool) {
	var best proto.NodeRef
	bestD := dSelf
	found := false
	for _, r := range refs {
		if r.Addr == exclude1 || r.Addr == exclude2 {
			continue
		}
		if d := model.D(r, x); d < bestD {
			best, bestD, found = r, d, true
		}
	}
	return best, found
}

// mergeAlternates unions old and fresh alternates (deduplicated by
// address), keeping the ones nearest to nothing in particular — insertion
// order, truncated to max. Order suffices because finishNGSA re-ranks by
// distance when popping.
func mergeAlternates(old, fresh []proto.NodeRef, max int) []proto.NodeRef {
	if len(fresh) == 0 {
		return old
	}
	// Linear-scan dedup: the list is capped at max (default 8), so a map
	// here costs two allocations per NGSA hop for no win. The result
	// still allocates — it escapes into the forwarded request.
	out := make([]proto.NodeRef, 0, len(old)+len(fresh))
	appendDedup := func(r proto.NodeRef) {
		for i := range out {
			if out[i].Addr == r.Addr {
				return
			}
		}
		out = append(out, r)
	}
	for _, r := range old {
		appendDedup(r)
	}
	for _, r := range fresh {
		appendDedup(r)
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

func maxAlternates(p Params) int {
	if p.MaxAlternates > 0 {
		return p.MaxAlternates
	}
	return DefaultMaxAlternates
}

// sortByDistanceTo orders refs by Euclidean distance to x (ties by ID then
// address) so that candidate iteration is deterministic and NG's "first
// improving" choice is the nearest improving. slices.SortFunc rather than
// sort.Slice: the latter builds a reflection-based swapper per call, and
// this runs on every lookup hop.
func sortByDistanceTo(refs []proto.NodeRef, x idspace.ID) {
	slices.SortFunc(refs, func(a, b proto.NodeRef) int {
		da, db := idspace.Dist(a.ID, x), idspace.Dist(b.ID, x)
		switch {
		case da != db:
			if da < db {
				return -1
			}
			return 1
		case a.ID != b.ID:
			if a.ID < b.ID {
				return -1
			}
			return 1
		case a.Addr < b.Addr:
			return -1
		case a.Addr > b.Addr:
			return 1
		}
		return 0
	})
}
