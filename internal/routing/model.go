// Package routing implements the TreeP lookup machinery of §III.f: the
// tessellation-aware distance function D(a,b), and the three forwarding
// algorithms G (greedy), NG (non-greedy) and NGSA (non-greedy with
// fall-back) as pure decision functions over a node's routing table.
//
// Keeping the decision logic free of protocol state means the algorithms
// are unit-testable on hand-built tables, and the same code drives the
// simulator and the real UDP transport.
package routing

import (
	"math"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// Model computes the distance D(a, b) between a node a (whose hierarchy
// level matters) and a target coordinate b. The paper (§III.f):
//
//	D(a,b) = d(a,b)                      if lvl_a = 0
//	D(a,b) = 0                           if d(a,b) ≤ L/2^(h−lvl_a)
//	D(a,b) = d(a,b) − L/2^(h−lvl_a)      otherwise
//
// "This distance function takes into account the location of a and b in
// the topology and the size of their tessellations": a node high in the
// hierarchy covers a wide slice of the space, so targets within its
// coverage radius are at distance zero.
type Model interface {
	// D returns the distance from node a to coordinate b.
	D(a proto.NodeRef, b idspace.ID) float64
	// Name identifies the model in experiment output.
	Name() string
}

// PaperModel is the literal reconstruction of the paper's formula with
// coverage radius L/2^(h−lvl). Height is the hierarchy height h.
type PaperModel struct {
	Height uint8
}

// D implements Model.
func (m PaperModel) D(a proto.NodeRef, b idspace.ID) float64 {
	d := idspace.DistF(a.ID, b)
	if a.MaxLevel == 0 {
		return d
	}
	cover := coverage(2, m.Height, a.MaxLevel)
	if d <= cover {
		return 0
	}
	return d - cover
}

// Name implements Model.
func (PaperModel) Name() string { return "paper" }

// BranchingModel generalises the coverage radius to L/c^(h−lvl), where c is
// the tree's average branching factor — the radius a level-lvl node's
// tessellation actually has in a c-ary TreeP. The ABL-1 ablation compares
// it against PaperModel.
type BranchingModel struct {
	Height    uint8
	Branching float64
}

// D implements Model.
func (m BranchingModel) D(a proto.NodeRef, b idspace.ID) float64 {
	d := idspace.DistF(a.ID, b)
	if a.MaxLevel == 0 {
		return d
	}
	c := m.Branching
	if c < 2 {
		c = 2
	}
	cover := coverage(c, m.Height, a.MaxLevel)
	if d <= cover {
		return 0
	}
	return d - cover
}

// Name implements Model.
func (BranchingModel) Name() string { return "branching" }

// EuclideanModel ignores the hierarchy entirely: D(a,b) = d(a,b). It is
// both the TTL>h fall-back of §III.f ("the Euclidian distance is used
// instead") and a baseline for ablations.
type EuclideanModel struct{}

// D implements Model.
func (EuclideanModel) D(a proto.NodeRef, b idspace.ID) float64 {
	return idspace.DistF(a.ID, b)
}

// Name implements Model.
func (EuclideanModel) Name() string { return "euclidean" }

// coverage returns L/base^(h−lvl), clamped to L. A node at the top of the
// hierarchy (lvl = h) covers the whole space.
func coverage(base float64, height, lvl uint8) float64 {
	if lvl >= height {
		return idspace.SpaceExtent
	}
	exp := float64(height - lvl)
	denom := math.Pow(base, exp)
	if denom < 1 {
		denom = 1
	}
	return idspace.SpaceExtent / denom
}
