//go:build linux

package udptransport

import "syscall"

// sysSendmmsg is sendmmsg(2)'s syscall number on linux/arm64, where the
// stdlib table does carry it (the port's table postdates Linux 3.0).
const sysSendmmsg = syscall.SYS_SENDMMSG
