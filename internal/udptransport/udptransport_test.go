package udptransport

import (
	"errors"
	"net"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/dht"
	"treep/internal/idspace"
	"treep/internal/proto"
)

func TestAddrPacking(t *testing.T) {
	cases := []string{"127.0.0.1:4000", "10.1.2.3:65535", "192.168.0.1:1"}
	for _, s := range cases {
		a, err := net.ResolveUDPAddr("udp4", s)
		if err != nil {
			t.Fatal(err)
		}
		u := AddrToUint(a)
		if u == 0 {
			t.Fatalf("%s packed to 0", s)
		}
		back := UintToAddr(u)
		if !back.IP.Equal(a.IP) || back.Port != a.Port {
			t.Fatalf("%s round-tripped to %s", s, back)
		}
	}
	if AddrToUint(&net.UDPAddr{IP: net.ParseIP("::1"), Port: 1}) != 0 {
		t.Fatal("IPv6 must be rejected")
	}
	if AddrToUint(&net.UDPAddr{IP: net.IPv4(1, 2, 3, 4), Port: 0}) != 0 {
		t.Fatal("port 0 must be rejected")
	}
}

// startNodes brings up n UDP nodes on loopback, joined through the first.
func startNodes(t *testing.T, n int) []*Transport {
	return startNodesOpts(t, n, Options{})
}

// startNodesOpts is startNodes with transport options (the batch-vs-single
// ablation tests force the fallback path through here).
func startNodesOpts(t *testing.T, n int, opts Options) []*Transport {
	t.Helper()
	trs := make([]*Transport, 0, n)
	for i := 0; i < n; i++ {
		cfg := core.Defaults()
		cfg.ID = idspace.FromFraction((float64(i) + 0.5) / float64(n))
		// Faster timers: the test runs in real time.
		cfg.KeepAlive = 200 * time.Millisecond
		cfg.EntryTTL = 800 * time.Millisecond
		cfg.SweepInterval = 100 * time.Millisecond
		cfg.ChildReport = 200 * time.Millisecond
		cfg.ElectionMin = 50 * time.Millisecond
		cfg.ElectionMax = 200 * time.Millisecond
		cfg.LookupTimeout = 2 * time.Second
		tr, err := ListenOpts(cfg, "127.0.0.1:0", int64(i+1), opts)
		if err != nil {
			t.Fatalf("listen %d: %v", i, err)
		}
		trs = append(trs, tr)
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	boot := trs[0].OverlayAddr()
	for i, tr := range trs {
		if i == 0 {
			if err := tr.Start(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := tr.Join(boot); err != nil {
			t.Fatal(err)
		}
	}
	return trs
}

func TestUDPOverlayFormsAndResolves(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	trs := startNodes(t, 12)
	// Let the overlay converge in real time.
	time.Sleep(2 * time.Second)

	// Every node should know at least one peer.
	for i, tr := range trs {
		var l0 int
		if err := tr.Do(func(n *core.Node) { l0 = n.Table().Level0.Len() }); err != nil {
			t.Fatal(err)
		}
		if l0 == 0 {
			t.Fatalf("node %d isolated over UDP", i)
		}
	}

	// Resolve node 9's ID from node 3 over real sockets.
	target := trs[9]
	var targetID idspace.ID
	_ = target.Do(func(n *core.Node) { targetID = n.ID() })

	resCh := make(chan core.LookupResult, 1)
	err := trs[3].Do(func(n *core.Node) {
		n.Lookup(targetID, proto.AlgoG, func(r core.LookupResult) { resCh <- r })
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-resCh:
		if r.Status != core.LookupFound || r.Best.ID != targetID {
			t.Fatalf("lookup result %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lookup never resolved over UDP")
	}

	// Wire health: traffic flowed, everything decoded, and the batch
	// plane actually amortised syscalls (each syscall moved ≥1 message,
	// and on the mmsg path some moved several).
	st := trs[3].Stats()
	if st.Recv == 0 || st.Sent == 0 {
		t.Fatalf("no traffic: %+v", st)
	}
	if st.DecodeErrs != 0 {
		t.Fatalf("%d decode errors on the wire", st.DecodeErrs)
	}
	if st.SendSyscalls > st.Sent || st.SendSyscalls == 0 {
		t.Fatalf("send syscalls %d vs %d datagrams: flush accounting broken", st.SendSyscalls, st.Sent)
	}
}

func TestHierarchyEmergesOverUDP(t *testing.T) {
	trs := startNodes(t, 10)
	deadline := time.Now().Add(6 * time.Second)
	for time.Now().Before(deadline) {
		levels := map[uint8]int{}
		for _, tr := range trs {
			_ = tr.Do(func(n *core.Node) { levels[n.MaxLevel()]++ })
		}
		if len(levels) >= 2 {
			t.Logf("UDP overlay levels: %v", levels)
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatal("no hierarchy emerged over UDP within the deadline")
}

// TestDHTPutGetOverUDP is the end-to-end proof that DHT storage is not a
// simulation artifact: the identical Put/Get code path (service plane,
// versioned records, replication) runs here over real UDP sockets and the
// binary codec, across a multi-node cluster.
func TestDHTPutGetOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP cluster; skipped with -short")
	}
	trs := startNodes(t, 10)
	svcs := make([]*dht.Service, len(trs))
	for i, tr := range trs {
		i := i
		if err := tr.Do(func(n *core.Node) { svcs[i] = dht.Attach(n) }); err != nil {
			t.Fatal(err)
		}
	}
	// Let the overlay converge in real time.
	time.Sleep(2 * time.Second)

	// Store through node 2, with several keys so multiple owners serve.
	keys := []string{"alpha", "bravo", "charlie", "delta"}
	for _, k := range keys {
		errCh := make(chan error, 1)
		if err := trs[2].Do(func(*core.Node) {
			svcs[2].Put([]byte(k), []byte("value-"+k), func(e error) { errCh <- e })
		}); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("put %q over UDP: %v", k, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("put %q never acknowledged over UDP", k)
		}
	}

	// Read back through an unrelated node.
	for _, k := range keys {
		type out struct {
			rec dht.Record
			err error
		}
		ch := make(chan out, 1)
		if err := trs[7].Do(func(*core.Node) {
			svcs[7].GetRecord([]byte(k), func(r dht.Record, e error) { ch <- out{r, e} })
		}); err != nil {
			t.Fatal(err)
		}
		select {
		case o := <-ch:
			if o.err != nil || string(o.rec.Value) != "value-"+k {
				t.Fatalf("get %q over UDP: %q %v", k, o.rec.Value, o.err)
			}
			if o.rec.Version == 0 {
				t.Fatalf("get %q: version 0 on a stored record", k)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("get %q never resolved over UDP", k)
		}
	}

	// Conditional store semantics hold over the wire too.
	ch := make(chan error, 1)
	if err := trs[4].Do(func(*core.Node) {
		svcs[4].PutIf([]byte("alpha"), []byte("stale"), dht.AnyVersion,
			func(_ uint64, e error) { ch <- e })
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ch:
		if !errors.Is(err, dht.ErrConflict) {
			t.Fatalf("stale CAS over UDP: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CAS never resolved over UDP")
	}

	// Replication happened across sockets: the records live on more nodes
	// than just their owners.
	time.Sleep(1 * time.Second)
	holders := 0
	for i, tr := range trs {
		i := i
		var n int
		_ = tr.Do(func(*core.Node) { n = svcs[i].Len() })
		holders += n
	}
	if holders < len(keys)*2 {
		t.Fatalf("only %d copies of %d records across the UDP cluster", holders, len(keys))
	}
}

// TestGracefulLeaveOverUDP checks the departure announcement: a peer that
// closes cleanly disappears from its direct peers' tables immediately, not
// after a failure-detection TTL. A pair guarantees the survivor is a
// direct peer (third parties learn of a departure by hearsay expiry, which
// is the TTL path by design).
func TestGracefulLeaveOverUDP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP cluster; skipped with -short")
	}
	trs := startNodes(t, 2)
	survivor, leaver := trs[0], trs[1]
	leaverAddr := leaver.OverlayAddr()
	deadline := time.Now().Add(5 * time.Second)
	known := false
	for time.Now().Before(deadline) && !known {
		_ = survivor.Do(func(n *core.Node) { known = n.Table().Level0.Get(leaverAddr) != nil })
		time.Sleep(50 * time.Millisecond)
	}
	if !known {
		t.Fatal("pair never connected")
	}

	if err := leaver.Do(func(n *core.Node) { n.Depart() }); err != nil {
		t.Fatal(err)
	}
	// Well under the 800ms EntryTTL configured by startNodes: removal must
	// come from the announcement, not expiry.
	time.Sleep(300 * time.Millisecond)
	var still bool
	_ = survivor.Do(func(n *core.Node) { still = n.Table().Level0.Get(leaverAddr) != nil })
	if still {
		t.Fatal("survivor still lists the departed peer 300ms after Leave")
	}
}

func TestCloseIsIdempotentAndDoFailsAfterClose(t *testing.T) {
	cfg := core.Defaults()
	cfg.ID = 42
	tr, err := Listen(cfg, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close()
	if err := tr.Do(func(*core.Node) {}); err == nil {
		t.Fatal("Do after Close must fail")
	}
}
