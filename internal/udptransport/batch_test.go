package udptransport

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"sort"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
)

// equivCorpus builds a deterministic mixed-type message stream; every
// message is unique (distinct Seq/ReqID), so encodings can be compared as
// multisets without caring about UDP reordering.
func equivCorpus(n int) [][]byte {
	wire := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		ref := proto.NodeRef{ID: idspace.ID(i*2654435761 + 1), Addr: uint64(i + 1), MaxLevel: uint8(i % 5)}
		var m proto.Message
		switch i % 4 {
		case 0:
			entries := make([]proto.Entry, i%7)
			for j := range entries {
				entries[j] = proto.Entry{
					Ref:     proto.NodeRef{ID: idspace.ID(i*31 + j + 1), Addr: uint64(i*31 + j + 1)},
					Level:   uint8(j % 3),
					Version: uint32(i),
					AgeDs:   uint16(i),
				}
			}
			m = &proto.Ping{From: ref, Seq: uint32(i), Entries: entries}
		case 1:
			m = &proto.Hello{From: ref, MaxChildren: uint8(i)}
		case 2:
			var val []byte
			if l := (i * 37) % 900; l > 0 {
				val = bytes.Repeat([]byte{byte(i)}, l)
			}
			m = &proto.DHTStore{From: ref, ReqID: uint64(i), Key: idspace.ID(i * 7), Value: val}
		default:
			m = &proto.LookupRequest{Origin: ref, Target: idspace.ID(i * 13), ReqID: uint64(i),
				TTL: uint8(i), Algo: proto.AlgoG}
		}
		wire = append(wire, proto.Encode(m))
	}
	return wire
}

// runStream pushes the wire corpus from one socket to another through the
// given batchIO constructor on both ends and returns the received
// payloads. Source attribution is checked on every slot.
func runStream(t *testing.T, mkIO func(*net.UDPConn) batchIO, wire [][]byte) [][]byte {
	t.Helper()
	la := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	recvConn, err := net.ListenUDP("udp4", la)
	if err != nil {
		t.Fatal(err)
	}
	defer recvConn.Close()
	sendConn, err := net.ListenUDP("udp4", la)
	if err != nil {
		t.Fatal(err)
	}
	defer sendConn.Close()
	recvIO, sendIO := mkIO(recvConn), mkIO(sendConn)

	to := AddrToUint(recvConn.LocalAddr().(*net.UDPAddr))
	fromWant := AddrToUint(sendConn.LocalAddr().(*net.UDPAddr))

	var arena []byte
	var pkts []spkt
	for _, b := range wire {
		off := len(arena)
		arena = append(arena, b...)
		pkts = append(pkts, spkt{off: off, n: len(b), to: to})
	}
	if n := sendIO.WriteBatch(arena, pkts); n <= 0 {
		t.Fatalf("WriteBatch used %d syscalls", n)
	}

	_ = recvConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var got [][]byte
	for len(got) < len(wire) {
		slots, nsys, err := recvIO.ReadBatch()
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d datagrams: %v", len(got), len(wire), err)
		}
		if nsys <= 0 {
			t.Fatalf("ReadBatch reported %d syscalls", nsys)
		}
		for i := range slots {
			s := &slots[i]
			if s.from != fromWant {
				t.Fatalf("slot source %#x, want %#x", s.from, fromWant)
			}
			got = append(got, append([]byte(nil), s.buf[:s.n]...))
		}
	}
	return got
}

func sortedMultiset(b [][]byte) []string {
	out := make([]string, len(b))
	for i, x := range b {
		out[i] = string(x)
	}
	sort.Strings(out)
	return out
}

// TestBatchSingleEquivalence is the correctness pin for the kernel batch
// path: the same message stream sent and received through the mmsg
// implementation and through the single-datagram fallback must yield the
// identical multiset of payloads, every one decodable, every one
// attributed to the right source. On platforms without the batch path
// both arms run the fallback and the test degenerates to a self-check.
func TestBatchSingleEquivalence(t *testing.T) {
	wire := equivCorpus(100)

	single := runStream(t, func(c *net.UDPConn) batchIO { return newSingleIO(c) }, wire)
	batch := runStream(t, func(c *net.UDPConn) batchIO {
		io, err := newBatchIO(c)
		if err != nil {
			t.Fatalf("newBatchIO: %v", err)
		}
		return io
	}, wire)

	want := sortedMultiset(wire)
	if got := sortedMultiset(single); !equalStrings(got, want) {
		t.Fatal("single-datagram path corrupted the stream")
	}
	if got := sortedMultiset(batch); !equalStrings(got, want) {
		t.Fatal("batch path corrupted the stream")
	}
	for _, b := range batch {
		if _, err := proto.Decode(b); err != nil {
			t.Fatalf("batch-path payload fails to decode: %v", err)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedReportsPath checks the variant selection: SingleDatagram
// forces the fallback everywhere, and the default path is the kernel
// batch implementation exactly on the gated platforms.
func TestBatchedReportsPath(t *testing.T) {
	cfg := core.Defaults()
	cfg.ID = 1
	tr, err := ListenOpts(cfg, "127.0.0.1:0", 1, Options{SingleDatagram: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Batched() {
		t.Fatal("SingleDatagram transport reports the batch path")
	}

	cfg2 := core.Defaults()
	cfg2.ID = 2
	tr2, err := Listen(cfg2, "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	wantBatch := runtime.GOOS == "linux" && (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64")
	if tr2.Batched() != wantBatch {
		t.Fatalf("default transport Batched()=%v on %s/%s, want %v",
			tr2.Batched(), runtime.GOOS, runtime.GOARCH, wantBatch)
	}
}

// waitStats polls until cond holds or the deadline passes, returning the
// final snapshot either way.
func waitStats(tr *Transport, cond func(Snapshot) bool) Snapshot {
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := tr.Stats()
		if cond(st) || time.Now().After(deadline) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSendRejectsOversizeAndZeroAddr pins the send-side guards: an
// encoding larger than proto.MaxDatagram is rejected and counted (never
// handed to the kernel to truncate), and the zero overlay address is a
// silent no-op.
func TestSendRejectsOversizeAndZeroAddr(t *testing.T) {
	cfg := core.Defaults()
	cfg.ID = 3
	tr, err := Listen(cfg, "127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	peer := AddrToUint(&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9})
	e := &env{tr: tr, addr: tr.OverlayAddr()}

	big := &proto.DHTStore{From: proto.NodeRef{ID: 1, Addr: 1}, ReqID: 1,
		Value: make([]byte, proto.MaxDatagram)}
	small := &proto.Hello{From: proto.NodeRef{ID: 1, Addr: 1}}
	if err := tr.Do(func(*core.Node) {
		e.Send(peer, big)   // oversize: rejected, counted
		e.Send(0, small)    // zero address: dropped silently
		e.Send(peer, small) // legitimate: queued and flushed
	}); err != nil {
		t.Fatal(err)
	}

	st := waitStats(tr, func(s Snapshot) bool { return s.Flushes >= 1 })
	if st.Oversize != 1 {
		t.Fatalf("oversize count %d, want 1", st.Oversize)
	}
	if st.Sent != 1 {
		t.Fatalf("sent count %d, want 1 (oversize and zero-addr must not queue)", st.Sent)
	}
	if st.Flushes < 1 || st.SendSyscalls < 1 {
		t.Fatalf("legitimate send never flushed: %+v", st)
	}
}

// scriptIO feeds the read loop a fixed sequence of receive batches, then
// blocks until released. It lets the drop/decode-error accounting be
// tested without manufacturing unroutable datagrams on a real socket.
type scriptIO struct {
	batches [][]rslot
	next    int
	stop    chan struct{}
}

func (s *scriptIO) ReadBatch() ([]rslot, int, error) {
	if s.next < len(s.batches) {
		b := s.batches[s.next]
		s.next++
		return b, 1, nil
	}
	<-s.stop
	return nil, 1, errors.New("script exhausted")
}

func (s *scriptIO) WriteBatch(arena []byte, pkts []spkt) int { return len(pkts) }
func (s *scriptIO) Batched() bool                            { return false }

// TestReadLoopCountsDropsAndDecodeErrors pins the receive-side
// accounting: a datagram with an unpackable source (from == 0) is a
// drop, a datagram that fails to parse is a decode error, and neither is
// dispatched — previously the from == 0 case was miscounted as a clean
// receive.
func TestReadLoopCountsDropsAndDecodeErrors(t *testing.T) {
	src := AddrToUint(&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 4242})
	hello := proto.Encode(&proto.Hello{From: proto.NodeRef{ID: 9, Addr: src}})
	garbage := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	mk := func(b []byte, from uint64) rslot { return rslot{buf: b, n: len(b), from: from} }

	sio := &scriptIO{
		stop: make(chan struct{}),
		batches: [][]rslot{
			{mk(hello, 0), mk(garbage, src), mk(hello, src)},
			{mk(hello, 0)},
		},
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Defaults()
	cfg.ID = 4
	tr, err := newTransport(cfg, conn, 4, sio, false)
	if err != nil {
		t.Fatal(err)
	}

	st := waitStats(tr, func(s Snapshot) bool { return s.Recv >= 4 })
	close(sio.stop)
	tr.Close()
	st = tr.Stats()
	if st.Recv != 4 {
		t.Fatalf("recv count %d, want 4", st.Recv)
	}
	if st.Drops != 2 {
		t.Fatalf("drop count %d, want 2: %+v", st.Drops, st)
	}
	if st.DecodeErrs != 1 {
		t.Fatalf("decode error count %d, want 1: %+v", st.DecodeErrs, st)
	}
}

// TestOverlayFormsSingleDatagram runs a small cluster on the forced
// fallback path: the ablation arm must remain a fully working transport,
// with the 1:1 syscall-per-datagram profile the batch path amortises.
func TestOverlayFormsSingleDatagram(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time UDP cluster; skipped with -short")
	}
	trs := startNodesOpts(t, 6, Options{SingleDatagram: true})
	time.Sleep(1500 * time.Millisecond)
	for i, tr := range trs {
		var l0 int
		if err := tr.Do(func(n *core.Node) { l0 = n.Table().Level0.Len() }); err != nil {
			t.Fatal(err)
		}
		if l0 == 0 {
			t.Fatalf("node %d isolated on the single-datagram path", i)
		}
		st := tr.Stats()
		if st.SendSyscalls != st.Sent {
			t.Fatalf("node %d: single path made %d send syscalls for %d datagrams (must be 1:1)",
				i, st.SendSyscalls, st.Sent)
		}
	}
}
