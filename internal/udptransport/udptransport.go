// Package udptransport runs TreeP nodes over real UDP sockets. The paper's
// overlay "is a UDP based overlay architecture" (§III); this transport
// drives the exact same core.Node state machines as the simulator, with
// wall-clock timers and the binary wire codec, proving the protocol is a
// real network program and not a simulation artifact.
//
// Concurrency model: each node owns one goroutine (the event loop). The
// socket reader and timer callbacks post closures into the loop channel;
// all protocol state is touched only from the loop, exactly matching the
// single-threaded contract of core.Node.
package udptransport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"treep/internal/core"
	"treep/internal/proto"
)

// AddrToUint packs an IPv4 UDP address into the overlay's uint64 address
// space: 4 bytes of IP and 2 bytes of port. Port 0 or non-IPv4 addresses
// are not representable and return 0 (the invalid address).
func AddrToUint(a *net.UDPAddr) uint64 {
	ip4 := a.IP.To4()
	if ip4 == nil || a.Port == 0 {
		return 0
	}
	return uint64(ip4[0])<<40 | uint64(ip4[1])<<32 | uint64(ip4[2])<<24 |
		uint64(ip4[3])<<16 | uint64(a.Port)
}

// UintToAddr unpacks an overlay address back into a UDP address.
func UintToAddr(u uint64) *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(byte(u>>40), byte(u>>32), byte(u>>24), byte(u>>16)),
		Port: int(u & 0xffff),
	}
}

// Transport runs one TreeP node on one UDP socket.
type Transport struct {
	conn  *net.UDPConn
	node  *core.Node
	start time.Time

	loop chan func()
	done chan struct{}

	closeOnce sync.Once
	wg        sync.WaitGroup

	// Stats counters (read via Snapshot after Close for tests).
	mu        sync.Mutex
	recvCount uint64
	sendCount uint64
	decodeErr uint64
}

// timer adapts time.Timer to core.Timer, posting the callback into the
// event loop so protocol state stays single-threaded.
type timer struct {
	t       *time.Timer
	stopped bool
}

func (t *timer) Cancel() bool {
	if t.stopped {
		return false
	}
	t.stopped = true
	return t.t.Stop()
}

// env implements core.Env over the transport.
type env struct {
	tr   *Transport
	addr uint64
	rng  *rand.Rand
}

func (e *env) Addr() uint64       { return e.addr }
func (e *env) Now() time.Duration { return time.Since(e.tr.start) }
func (e *env) Rand() *rand.Rand   { return e.rng }

func (e *env) Send(to uint64, msg proto.Message) {
	if to == 0 {
		return
	}
	buf := proto.Encode(msg)
	e.tr.mu.Lock()
	e.tr.sendCount++
	e.tr.mu.Unlock()
	// Best-effort, UDP semantics: errors are dropped datagrams.
	_, _ = e.tr.conn.WriteToUDP(buf, UintToAddr(to))
}

func (e *env) SetTimer(d time.Duration, fn func()) core.Timer {
	tm := &timer{}
	tm.t = time.AfterFunc(d, func() {
		// Deliver on the loop; drop if the transport is closing.
		select {
		case e.tr.loop <- fn:
		case <-e.tr.done:
		}
	})
	return tm
}

// periodicTimer re-arms a wall-clock timer after each delivered tick. The
// mutex covers the re-arm/cancel race: AfterFunc fires on the runtime
// timer goroutine while Cancel arrives from the event loop.
type periodicTimer struct {
	mu      sync.Mutex
	t       *time.Timer
	stopped bool
}

func (p *periodicTimer) Cancel() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	p.stopped = true
	if p.t != nil {
		p.t.Stop()
	}
	return true
}

func (e *env) SetPeriodic(d time.Duration, fn func()) core.Timer {
	p := &periodicTimer{}
	var arm func()
	arm = func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.stopped {
			return
		}
		p.t = time.AfterFunc(d, func() {
			// Deliver the tick on the loop, then re-arm from the loop so
			// ticks cannot pile up faster than the node consumes them.
			select {
			case e.tr.loop <- func() { fn(); arm() }:
			case <-e.tr.done:
			}
		})
	}
	arm()
	return p
}

// Listen binds a UDP socket on bind (e.g. "127.0.0.1:0") and creates the
// node with the given configuration. The node's overlay address derives
// from the bound socket address.
func Listen(cfg core.Config, bind string, seed int64) (*Transport, error) {
	laddr, err := net.ResolveUDPAddr("udp4", bind)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp4", laddr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen %q: %w", bind, err)
	}
	tr := &Transport{
		conn:  conn,
		start: time.Now(),
		loop:  make(chan func(), 1024),
		done:  make(chan struct{}),
	}
	self := AddrToUint(conn.LocalAddr().(*net.UDPAddr))
	if self == 0 {
		conn.Close()
		return nil, errors.New("udptransport: unsupported local address (need IPv4)")
	}
	e := &env{tr: tr, addr: self, rng: rand.New(rand.NewSource(seed ^ int64(self)))}
	tr.node = core.NewNode(cfg, e)

	tr.wg.Add(2)
	go tr.readLoop()
	go tr.eventLoop()
	return tr, nil
}

// Node returns the transport's node. Protocol state must only be inspected
// via Do (or after Close).
func (t *Transport) Node() *core.Node { return t.node }

// OverlayAddr returns the node's packed overlay address.
func (t *Transport) OverlayAddr() uint64 { return t.node.Addr() }

// Do runs fn on the node's event loop and waits for it, giving callers a
// safe window into protocol state.
func (t *Transport) Do(fn func(n *core.Node)) error {
	doneCh := make(chan struct{})
	select {
	case t.loop <- func() { fn(t.node); close(doneCh) }:
	case <-t.done:
		return errors.New("udptransport: closed")
	}
	select {
	case <-doneCh:
		return nil
	case <-t.done:
		return errors.New("udptransport: closed")
	}
}

// Start arms the node's timers (on the loop).
func (t *Transport) Start() error {
	return t.Do(func(n *core.Node) { n.Start() })
}

// Join bootstraps through the given overlay address.
func (t *Transport) Join(bootstrap uint64) error {
	return t.Do(func(n *core.Node) { n.Join(bootstrap) })
}

// Close shuts the transport down and waits for its goroutines.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		close(t.done)
		t.conn.Close()
	})
	t.wg.Wait()
}

// Snapshot returns transport-level counters.
func (t *Transport) Snapshot() (recv, sent, decodeErrs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recvCount, t.sendCount, t.decodeErr
}

func (t *Transport) readLoop() {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient read errors on UDP are ignorable.
			continue
		}
		from := AddrToUint(raddr)
		msg, derr := proto.Decode(buf[:n])
		t.mu.Lock()
		t.recvCount++
		if derr != nil {
			t.decodeErr++
		}
		t.mu.Unlock()
		if derr != nil || from == 0 {
			continue
		}
		select {
		case t.loop <- func() { t.node.HandleMessage(from, msg) }:
		case <-t.done:
			return
		}
	}
}

func (t *Transport) eventLoop() {
	defer t.wg.Done()
	for {
		select {
		case fn := <-t.loop:
			fn()
		case <-t.done:
			// Drain whatever is queued, then stop the node.
			for {
				select {
				case fn := <-t.loop:
					fn()
				default:
					t.node.Stop()
					return
				}
			}
		}
	}
}
