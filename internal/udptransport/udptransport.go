// Package udptransport runs TreeP nodes over real UDP sockets. The paper's
// overlay "is a UDP based overlay architecture" (§III); this transport
// drives the exact same core.Node state machines as the simulator, with
// wall-clock timers and the binary wire codec, proving the protocol is a
// real network program and not a simulation artifact.
//
// Concurrency model: each node owns one goroutine (the event loop). The
// socket reader pushes typed {from, msg} records into an inbound ring and
// timer callbacks post closures into the control channel; all protocol
// state is touched only from the loop, exactly matching the
// single-threaded contract of core.Node.
//
// Data path (PR 9): socket I/O is batched — recvmmsg/sendmmsg on Linux
// via the batchIO layer, a single-datagram fallback elsewhere. Outbound
// messages are serialised with proto.EncodeAppend into one recycled
// arena and every env.Send made while handling one inbound burst or
// timer tick is coalesced into a single WriteBatch flush. Inbound
// datagrams decode into pooled messages (proto.DecodePooled) that are
// released back to their pools when the handler returns — the same
// end-of-dispatch recycling contract netsim uses. Stats are atomic
// counters; nothing on the per-message path takes a lock or allocates in
// steady state.
package udptransport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"treep/internal/core"
	"treep/internal/proto"
)

// AddrToUint packs an IPv4 UDP address into the overlay's uint64 address
// space: 4 bytes of IP and 2 bytes of port. Port 0 or non-IPv4 addresses
// are not representable and return 0 (the invalid address).
func AddrToUint(a *net.UDPAddr) uint64 {
	ip4 := a.IP.To4()
	if ip4 == nil || a.Port == 0 {
		return 0
	}
	return uint64(ip4[0])<<40 | uint64(ip4[1])<<32 | uint64(ip4[2])<<24 |
		uint64(ip4[3])<<16 | uint64(a.Port)
}

// UintToAddr unpacks an overlay address back into a UDP address.
func UintToAddr(u uint64) *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(byte(u>>40), byte(u>>32), byte(u>>24), byte(u>>16)),
		Port: int(u & 0xffff),
	}
}

// Options tunes a transport. The zero value is the production
// configuration.
type Options struct {
	// SingleDatagram runs the pre-batch data path — the ablation arm of
	// treep-bench -udp, kept in-tree so the batched path's win stays
	// measurable: one blocking syscall per datagram, a fresh buffer per
	// encode, a fresh message per decode (no pooling, no recycling), and
	// a closure per inbound dispatch.
	SingleDatagram bool
}

// maxQueuedSends bounds the send queue between flushes: a pathological
// handler that emits hundreds of datagrams flushes inline rather than
// growing the arena without bound.
const maxQueuedSends = 64

// maxCoalesce bounds how many already-arrived inbound messages one loop
// wakeup dispatches before flushing replies, so a continuous inbound
// stream cannot starve timers or delay its own replies indefinitely.
const maxCoalesce = 32

// inMsg is one inbound ring slot: a decoded message and its source.
// The ring is a typed channel — dispatch allocates no closure.
type inMsg struct {
	from uint64
	msg  proto.Message
}

// Snapshot is the transport's wire-level counter state (Stats() any
// time, or read after Close in tests).
type Snapshot struct {
	// Recv counts datagrams the socket delivered; Sent counts datagrams
	// queued and flushed to the socket.
	Recv, Sent uint64
	// DecodeErrs counts received datagrams that failed to parse.
	DecodeErrs uint64
	// Drops counts received datagrams discarded before dispatch because
	// the source address is not a packable IPv4 endpoint (from == 0) —
	// previously these were miscounted as clean receives.
	Drops uint64
	// Oversize counts sends rejected because the encoding exceeds
	// proto.MaxDatagram — previously these were silent kernel-level
	// truncation mysteries.
	Oversize uint64
	// RecvSyscalls/SendSyscalls count kernel entries on each side;
	// syscalls-per-message is the batch path's headline ratio.
	RecvSyscalls, SendSyscalls uint64
	// Flushes counts send-queue flushes (each ≥1 send syscall).
	Flushes uint64
}

// Transport runs one TreeP node on one UDP socket.
type Transport struct {
	conn  *net.UDPConn
	io    batchIO
	node  *core.Node
	start time.Time
	// legacy selects the pre-batch data path (see Options.SingleDatagram).
	legacy bool

	loop chan func()
	msgs chan inMsg
	done chan struct{}

	closeOnce sync.Once
	loopWG    sync.WaitGroup
	readWG    sync.WaitGroup

	// Send queue: written only by the event-loop goroutine (every
	// env.Send happens inside a handler, timer or Do closure running on
	// the loop), so it needs no lock. arena is the flat EncodeAppend
	// buffer, pkts the per-datagram offsets.
	arena []byte
	pkts  []spkt

	// Stats counters: atomics, not a mutex — the send and receive paths
	// touch them from different goroutines on every single message.
	recvCount    atomic.Uint64
	sendCount    atomic.Uint64
	decodeErr    atomic.Uint64
	dropCount    atomic.Uint64
	oversize     atomic.Uint64
	recvSyscalls atomic.Uint64
	sendSyscalls atomic.Uint64
	flushCount   atomic.Uint64
}

// timer adapts time.Timer to core.Timer, posting the callback into the
// event loop so protocol state stays single-threaded.
type timer struct {
	t       *time.Timer
	stopped bool
}

func (t *timer) Cancel() bool {
	if t.stopped {
		return false
	}
	t.stopped = true
	return t.t.Stop()
}

// env implements core.Env over the transport.
type env struct {
	tr   *Transport
	addr uint64
	rng  *rand.Rand
}

func (e *env) Addr() uint64       { return e.addr }
func (e *env) Now() time.Duration { return time.Since(e.tr.start) }
func (e *env) Rand() *rand.Rand   { return e.rng }

// Send queues one datagram on the transport's send queue; the event loop
// flushes the whole queue in one WriteBatch when the current inbound
// burst or timer tick finishes. Encoding appends into the recycled arena
// (zero-copy, zero-alloc in steady state), and a recyclable message goes
// back to its pool here — serialisation is the end of its life, the
// send-side mirror of the receive path's end-of-dispatch release.
func (e *env) Send(to uint64, msg proto.Message) {
	t := e.tr
	if to == 0 {
		return
	}
	if proto.WireSize(msg) > proto.MaxDatagram {
		// A datagram the socket cannot carry: reject it loudly (counted)
		// instead of letting the kernel truncate or refuse it silently.
		t.oversize.Add(1)
		proto.ReleaseDecoded(msg)
		return
	}
	if t.legacy {
		// Ablation arm: fresh buffer, immediate blocking write, no
		// recycling — exactly one syscall and the pre-batch allocation
		// profile per datagram.
		_, _ = t.conn.WriteToUDP(proto.Encode(msg), UintToAddr(to))
		t.sendCount.Add(1)
		t.sendSyscalls.Add(1)
		return
	}
	off := len(t.arena)
	t.arena = proto.EncodeAppend(t.arena, msg)
	t.pkts = append(t.pkts, spkt{off: off, n: len(t.arena) - off, to: to})
	t.sendCount.Add(1)
	proto.ReleaseDecoded(msg)
	if len(t.pkts) >= maxQueuedSends {
		t.flush()
	}
}

func (e *env) SetTimer(d time.Duration, fn func()) core.Timer {
	tm := &timer{}
	tm.t = time.AfterFunc(d, func() {
		// Deliver on the loop; drop if the transport is closing.
		select {
		case e.tr.loop <- fn:
		case <-e.tr.done:
		}
	})
	return tm
}

// periodicTimer re-arms a wall-clock timer after each delivered tick. The
// mutex covers the re-arm/cancel race: AfterFunc fires on the runtime
// timer goroutine while Cancel arrives from the event loop.
type periodicTimer struct {
	mu      sync.Mutex
	t       *time.Timer
	stopped bool
}

func (p *periodicTimer) Cancel() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	p.stopped = true
	if p.t != nil {
		p.t.Stop()
	}
	return true
}

func (e *env) SetPeriodic(d time.Duration, fn func()) core.Timer {
	p := &periodicTimer{}
	// One timer and two closures for the timer's whole life: the first arm
	// creates the AfterFunc, every later arm is a Reset. Keep-alive ticks
	// are the transport's highest-frequency timer — allocating a fresh
	// timer per tick would put several allocations per tick on the hot
	// path for nothing.
	var tick func()
	arm := func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.stopped {
			return
		}
		if p.t == nil {
			p.t = time.AfterFunc(d, func() {
				// Deliver the tick on the loop, then re-arm from the loop so
				// ticks cannot pile up faster than the node consumes them.
				select {
				case e.tr.loop <- tick:
				case <-e.tr.done:
				}
			})
		} else {
			p.t.Reset(d)
		}
	}
	tick = func() { fn(); arm() }
	arm()
	return p
}

// Listen binds a UDP socket on bind (e.g. "127.0.0.1:0") and creates the
// node with the given configuration. The node's overlay address derives
// from the bound socket address.
func Listen(cfg core.Config, bind string, seed int64) (*Transport, error) {
	return ListenOpts(cfg, bind, seed, Options{})
}

// ListenOpts is Listen with transport options.
func ListenOpts(cfg core.Config, bind string, seed int64, opts Options) (*Transport, error) {
	laddr, err := net.ResolveUDPAddr("udp4", bind)
	if err != nil {
		return nil, fmt.Errorf("udptransport: resolve %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp4", laddr)
	if err != nil {
		return nil, fmt.Errorf("udptransport: listen %q: %w", bind, err)
	}
	var io batchIO
	if opts.SingleDatagram {
		io = newSingleIO(conn)
	} else if io, err = newBatchIO(conn); err != nil {
		io = newSingleIO(conn)
	}
	return newTransport(cfg, conn, seed, io, opts.SingleDatagram)
}

// newTransport assembles a transport around an already-bound socket and a
// chosen batchIO implementation (tests inject scripted ones here).
func newTransport(cfg core.Config, conn *net.UDPConn, seed int64, io batchIO, legacy bool) (*Transport, error) {
	tr := &Transport{
		conn:   conn,
		io:     io,
		start:  time.Now(),
		legacy: legacy,
		loop:   make(chan func(), 1024),
		msgs:   make(chan inMsg, 1024),
		done:   make(chan struct{}),
	}
	self := AddrToUint(conn.LocalAddr().(*net.UDPAddr))
	if self == 0 {
		conn.Close()
		return nil, errors.New("udptransport: unsupported local address (need IPv4)")
	}
	e := &env{tr: tr, addr: self, rng: rand.New(rand.NewSource(seed ^ int64(self)))}
	tr.node = core.NewNode(cfg, e)

	tr.readWG.Add(1)
	tr.loopWG.Add(1)
	go tr.readLoop()
	go tr.eventLoop()
	return tr, nil
}

// Node returns the transport's node. Protocol state must only be inspected
// via Do (or after Close).
func (t *Transport) Node() *core.Node { return t.node }

// OverlayAddr returns the node's packed overlay address.
func (t *Transport) OverlayAddr() uint64 { return t.node.Addr() }

// Batched reports whether the kernel batch path (recvmmsg/sendmmsg) is
// active, as opposed to the single-datagram fallback.
func (t *Transport) Batched() bool { return t.io.Batched() }

// Do runs fn on the node's event loop and waits for it, giving callers a
// safe window into protocol state.
func (t *Transport) Do(fn func(n *core.Node)) error {
	doneCh := make(chan struct{})
	select {
	case t.loop <- func() { fn(t.node); close(doneCh) }:
	case <-t.done:
		return errors.New("udptransport: closed")
	}
	select {
	case <-doneCh:
		return nil
	case <-t.done:
		return errors.New("udptransport: closed")
	}
}

// Start arms the node's timers (on the loop).
func (t *Transport) Start() error {
	return t.Do(func(n *core.Node) { n.Start() })
}

// Join bootstraps through the given overlay address.
func (t *Transport) Join(bootstrap uint64) error {
	return t.Do(func(n *core.Node) { n.Join(bootstrap) })
}

// Close shuts the transport down and waits for its goroutines. The event
// loop drains and flushes its final send queue (e.g. a Leave announced
// just before Close) before the socket goes away, so graceful-departure
// datagrams reach the wire.
func (t *Transport) Close() {
	t.closeOnce.Do(func() { close(t.done) })
	t.loopWG.Wait()
	t.conn.Close() // unblocks the read loop
	t.readWG.Wait()
}

// Stats returns the transport's wire counters.
func (t *Transport) Stats() Snapshot {
	return Snapshot{
		Recv:         t.recvCount.Load(),
		Sent:         t.sendCount.Load(),
		DecodeErrs:   t.decodeErr.Load(),
		Drops:        t.dropCount.Load(),
		Oversize:     t.oversize.Load(),
		RecvSyscalls: t.recvSyscalls.Load(),
		SendSyscalls: t.sendSyscalls.Load(),
		Flushes:      t.flushCount.Load(),
	}
}

// flush writes the queued sends in one WriteBatch. Event-loop goroutine
// only.
func (t *Transport) flush() {
	if len(t.pkts) == 0 {
		return
	}
	n := t.io.WriteBatch(t.arena, t.pkts)
	t.sendSyscalls.Add(uint64(n))
	t.flushCount.Add(1)
	t.pkts = t.pkts[:0]
	if cap(t.arena) > 1<<20 {
		// A rare huge flush must not pin a megabyte arena forever.
		t.arena = nil
	} else {
		t.arena = t.arena[:0]
	}
}

// readLoop drains the socket in batches, decodes into pooled messages and
// feeds the inbound ring. Decoded messages own every byte they carry
// (DecodePooled copies out of the slot), so the slots are reusable the
// moment the loop moves on — the ring can lag the socket safely.
func (t *Transport) readLoop() {
	defer t.readWG.Done()
	for {
		select {
		case <-t.done:
			return
		default:
		}
		slots, nsys, err := t.io.ReadBatch()
		t.recvSyscalls.Add(uint64(nsys))
		if err != nil {
			select {
			case <-t.done:
				return
			default:
			}
			// Transient read errors on UDP are ignorable.
			continue
		}
		t.recvCount.Add(uint64(len(slots)))
		for i := range slots {
			s := &slots[i]
			if s.from == 0 {
				// A datagram whose source cannot be represented in the
				// overlay address space is a drop, not a clean receive.
				t.dropCount.Add(1)
				continue
			}
			if t.legacy {
				// Ablation arm: fresh-allocation decode and a dispatch
				// closure per datagram, the pre-batch inbound profile.
				msg, derr := proto.Decode(s.buf[:s.n])
				if derr != nil {
					t.decodeErr.Add(1)
					continue
				}
				from := s.from
				select {
				case t.loop <- func() { t.node.HandleMessage(from, msg) }:
				case <-t.done:
					return
				}
				continue
			}
			msg, derr := proto.DecodePooled(s.buf[:s.n])
			if derr != nil {
				t.decodeErr.Add(1)
				continue
			}
			select {
			case t.msgs <- inMsg{from: s.from, msg: msg}:
			case <-t.done:
				proto.ReleaseDecoded(msg)
				return
			}
		}
	}
}

// dispatch hands one inbound message to the node and releases it back to
// its pool — the end-of-dispatch hook; handlers must not retain pooled
// messages or their slices (the same contract netsim enforces).
func (t *Transport) dispatch(m inMsg) {
	t.node.HandleMessage(m.from, m.msg)
	proto.ReleaseDecoded(m.msg)
}

// drainInbound dispatches whatever else already arrived, bounded by
// maxCoalesce, so one flush covers the whole burst.
func (t *Transport) drainInbound() {
	for i := 0; i < maxCoalesce-1; i++ {
		select {
		case m := <-t.msgs:
			t.dispatch(m)
		default:
			return
		}
	}
}

func (t *Transport) eventLoop() {
	defer t.loopWG.Done()
	for {
		select {
		case m := <-t.msgs:
			t.dispatch(m)
			t.drainInbound()
			t.flush()
		case fn := <-t.loop:
			fn()
			t.flush()
		case <-t.done:
			// Drain whatever is queued, flush the final sends, then stop
			// the node.
			for {
				select {
				case m := <-t.msgs:
					t.dispatch(m)
				case fn := <-t.loop:
					fn()
				default:
					t.flush()
					t.node.Stop()
					return
				}
			}
		}
	}
}
