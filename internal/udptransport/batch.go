package udptransport

import "net"

// readBufSize is one receive slot's capacity. It must cover
// proto.MaxDatagram (65507): a slot that cannot hold the largest legal
// datagram would let the kernel truncate it into a decode error.
const readBufSize = 64 << 10

// rslot is one received datagram: buf[:n] holds the wire bytes, from the
// packed source overlay address (0 when the source is not a packable
// IPv4 endpoint — counted as a drop by the read loop).
type rslot struct {
	buf  []byte
	n    int
	from uint64
}

// spkt is one queued outbound datagram: arena[off:off+n], destined to
// the packed overlay address to.
type spkt struct {
	off int
	n   int
	to  uint64
}

// batchIO abstracts the socket syscall layer so the transport runs
// identically over the Linux recvmmsg/sendmmsg fast path and the
// portable one-datagram-per-syscall fallback. The batch-vs-single
// equivalence test pins the two implementations to the same observable
// byte streams.
type batchIO interface {
	// ReadBatch blocks until at least one datagram arrives and returns
	// the filled slots plus the number of receive syscalls consumed.
	// Slots are valid until the next ReadBatch call; decoded messages
	// must copy everything they keep (proto.DecodePooled does).
	ReadBatch() ([]rslot, int, error)
	// WriteBatch sends every queued packet (payload bytes live in arena)
	// best-effort, returning the number of send syscalls used. UDP
	// semantics: per-datagram errors are silently dropped datagrams.
	WriteBatch(arena []byte, pkts []spkt) int
	// Batched reports whether the kernel batch path is in use.
	Batched() bool
}

// singleIO is the portable fallback and the ablation arm: one blocking
// socket call per datagram through the net package, exactly the pre-batch
// transport's syscall profile (including the per-read *UDPAddr and
// per-write UintToAddr allocations the batch path eliminates).
type singleIO struct {
	conn *net.UDPConn
	slot [1]rslot
}

func newSingleIO(conn *net.UDPConn) *singleIO {
	s := &singleIO{conn: conn}
	s.slot[0].buf = make([]byte, readBufSize)
	return s
}

// ReadBatch implements batchIO.
func (s *singleIO) ReadBatch() ([]rslot, int, error) {
	n, raddr, err := s.conn.ReadFromUDP(s.slot[0].buf)
	if err != nil {
		return nil, 1, err
	}
	s.slot[0].n = n
	s.slot[0].from = AddrToUint(raddr)
	return s.slot[:], 1, nil
}

// WriteBatch implements batchIO.
func (s *singleIO) WriteBatch(arena []byte, pkts []spkt) int {
	for _, p := range pkts {
		_, _ = s.conn.WriteToUDP(arena[p.off:p.off+p.n], UintToAddr(p.to))
	}
	return len(pkts)
}

// Batched implements batchIO.
func (s *singleIO) Batched() bool { return false }
