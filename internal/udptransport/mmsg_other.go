//go:build !(linux && (amd64 || arm64))

package udptransport

import "net"

// newBatchIO on platforms without a verified mmsg path: the portable
// single-datagram fallback. Same observable behaviour, one syscall per
// datagram (see the fallback matrix in DESIGN.md §14).
func newBatchIO(conn *net.UDPConn) (batchIO, error) {
	return newSingleIO(conn), nil
}
