//go:build linux

package udptransport

// sysSendmmsg is sendmmsg(2)'s syscall number on linux/amd64. The stdlib
// syscall package's frozen number table predates the syscall (Linux 3.0)
// on this port, so the constant lives here; SYS_RECVMMSG is old enough to
// be in the table on every port.
const sysSendmmsg = 307
