//go:build linux && (amd64 || arm64)

// Kernel-batched socket I/O: recvmmsg(2)/sendmmsg(2) through raw
// syscalls. golang.org/x/net's ipv4.PacketConn wraps the same two
// syscalls; this file is the dependency-free equivalent, integrated with
// the runtime poller via syscall.RawConn so reads still park on the
// netpoller (and unblock on Close) instead of spinning.
//
// The build is gated to the 64-bit little-endian Linux ports whose
// struct layouts are verified here (Msghdr is the 56-byte 64-bit layout
// on both; mmsghdr pads its trailing u32 to 8 bytes). Every other
// platform takes the singleIO fallback in mmsg_other.go — same observable
// behaviour, one syscall per datagram.

package udptransport

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: the msghdr plus the
// kernel-filled datagram length, padded to pointer alignment.
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

const (
	// readVlen is the recvmmsg batch width: 8 slots × 64 KiB bounds a
	// transport's receive arena at 512 KiB while already cutting the
	// per-datagram syscall cost 8× on a loaded socket.
	readVlen = 8
	// writeVlen is the sendmmsg batch width per syscall; flushes larger
	// than this loop in chunks.
	writeVlen = 64
)

// mmsgIO is the Linux batch implementation. All state is preallocated at
// construction: a ReadBatch/WriteBatch cycle performs no allocation. That
// includes the RawConn callbacks — a closure literal passed to rc.Read
// escapes (heap-allocating per call, and its captures with it), so both
// callbacks are built once here and communicate through fields.
type mmsgIO struct {
	rc syscall.RawConn

	rhdrs  [readVlen]mmsghdr
	rnames [readVlen]syscall.RawSockaddrInet4
	riov   [readVlen]syscall.Iovec
	slots  [readVlen]rslot

	whdrs  [writeVlen]mmsghdr
	wnames [writeVlen]syscall.RawSockaddrInet4
	wiov   [writeVlen]syscall.Iovec

	// readFn/writeFn results and (for writeFn) inputs.
	readFn  func(fd uintptr) bool
	writeFn func(fd uintptr) bool
	rn      int
	rerrno  syscall.Errno
	woff    int // index of the first unsent whdr this writeFn call
	wcount  int // whdrs in flight this writeFn call
	wsent   int
	werrno  syscall.Errno
}

// newBatchIO wires an mmsgIO to the connection's raw descriptor.
func newBatchIO(conn *net.UDPConn) (batchIO, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	m := &mmsgIO{rc: rc}
	for i := range m.slots {
		m.slots[i].buf = make([]byte, readBufSize)
		m.riov[i].Base = &m.slots[i].buf[0]
		m.riov[i].SetLen(readBufSize)
		m.rhdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.rnames[i]))
		m.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		m.rhdrs[i].hdr.Iov = &m.riov[i]
		m.rhdrs[i].hdr.Iovlen = 1
	}
	for i := range m.whdrs {
		m.whdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.wnames[i]))
		m.whdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		m.whdrs[i].hdr.Iov = &m.wiov[i]
		m.whdrs[i].hdr.Iovlen = 1
	}
	m.readFn = func(fd uintptr) bool {
		// The kernel overwrites Namelen per message; reset before reuse.
		for i := range m.rhdrs {
			m.rhdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet4
		}
		r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&m.rhdrs[0])), readVlen, 0, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false
		}
		m.rn, m.rerrno = int(r1), e
		return true
	}
	m.writeFn = func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&m.whdrs[m.woff])), uintptr(m.wcount), 0, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false
		}
		m.wsent, m.werrno = int(r1), e
		return true
	}
	return m, nil
}

// packSockaddr converts a kernel-filled IPv4 sockaddr to the packed
// overlay address, allocation-free (the net-package equivalent mints a
// *UDPAddr per read). The port bytes sit in network order regardless of
// host endianness, so they are read as bytes, not as a uint16.
func packSockaddr(sa *syscall.RawSockaddrInet4) uint64 {
	if sa.Family != syscall.AF_INET {
		return 0
	}
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	port := uint64(p[0])<<8 | uint64(p[1])
	if port == 0 {
		return 0
	}
	return uint64(sa.Addr[0])<<40 | uint64(sa.Addr[1])<<32 |
		uint64(sa.Addr[2])<<24 | uint64(sa.Addr[3])<<16 | port
}

// fillSockaddr is packSockaddr's inverse for the send side.
func fillSockaddr(sa *syscall.RawSockaddrInet4, to uint64) {
	sa.Family = syscall.AF_INET
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(to>>8), byte(to)
	sa.Addr[0], sa.Addr[1] = byte(to>>40), byte(to>>32)
	sa.Addr[2], sa.Addr[3] = byte(to>>24), byte(to>>16)
}

// ReadBatch implements batchIO: one recvmmsg drains up to readVlen
// datagrams. The descriptor is non-blocking (net package sockets always
// are); EAGAIN parks on the runtime poller until readable. The reported
// syscall count covers data-moving kernel entries only (EAGAIN probes are
// excluded), matching what singleIO can observe of its own net-package
// reads so the two paths' syscalls/msg ratios compare like for like.
func (m *mmsgIO) ReadBatch() ([]rslot, int, error) {
	err := m.rc.Read(m.readFn)
	if err != nil {
		return nil, 1, err
	}
	if m.rerrno != 0 {
		return nil, 1, m.rerrno
	}
	n := m.rn
	for i := 0; i < n; i++ {
		m.slots[i].n = int(m.rhdrs[i].msgLen)
		m.slots[i].from = packSockaddr(&m.rnames[i])
	}
	return m.slots[:n], 1, nil
}

// WriteBatch implements batchIO: the whole queue goes out in
// ceil(len/writeVlen) sendmmsg calls. A per-datagram kernel error skips
// that datagram and keeps going — UDP sends are best-effort, and one
// unreachable destination must not wedge the queue behind it.
func (m *mmsgIO) WriteBatch(arena []byte, pkts []spkt) int {
	syscalls := 0
	for len(pkts) > 0 {
		vlen := len(pkts)
		if vlen > writeVlen {
			vlen = writeVlen
		}
		for i := 0; i < vlen; i++ {
			p := pkts[i]
			m.wiov[i].Base = &arena[p.off]
			m.wiov[i].SetLen(p.n)
			fillSockaddr(&m.wnames[i], p.to)
		}
		sent := 0
		for sent < vlen {
			m.woff, m.wcount = sent, vlen-sent
			werr := m.rc.Write(m.writeFn)
			syscalls++
			if werr != nil {
				// Socket closed under us; the rest of the queue is moot.
				runtime.KeepAlive(arena)
				return syscalls
			}
			if m.werrno != 0 || m.wsent == 0 {
				sent++ // skip the datagram the kernel refused
				continue
			}
			sent += m.wsent
		}
		pkts = pkts[vlen:]
	}
	runtime.KeepAlive(arena)
	return syscalls
}

// Batched implements batchIO.
func (m *mmsgIO) Batched() bool { return true }
