package sim

import (
	"testing"
	"time"
)

// Edge cases of the timing-wheel kernel: deadline boundaries, past
// scheduling against an advanced cursor, pooled-record reuse through
// stale Timer handles, periodic semantics, and overflow compaction.

func TestRunUntilSimultaneousAtDeadline(t *testing.T) {
	k := New(1)
	deadline := 50 * time.Millisecond
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		k.Schedule(deadline, func() { fired = append(fired, i) })
	}
	// An event at the deadline that schedules another event at the same
	// instant: the new event is also ≤ deadline and must run too.
	k.Schedule(deadline, func() {
		k.Schedule(0, func() { fired = append(fired, 99) })
	})
	k.Schedule(deadline+1, func() { fired = append(fired, -1) })
	if err := k.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 99}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if k.Now() != deadline {
		t.Errorf("now = %v, want %v", k.Now(), deadline)
	}
	// The event one nanosecond past the deadline is still pending.
	if k.Pending() != 1 {
		t.Errorf("pending = %d, want 1", k.Pending())
	}
}

func TestScheduleAtPastAfterIdleAdvance(t *testing.T) {
	k := New(1)
	// An idle RunUntil advances the wheel cursor far ahead of any event.
	k.RunUntil(10 * time.Minute)
	fired := time.Duration(-1)
	k.ScheduleAt(time.Second, func() { fired = k.Now() }) // deep in the past
	k.Run()
	if fired != 10*time.Minute {
		t.Fatalf("past event fired at %v, want clamp to %v", fired, 10*time.Minute)
	}
}

func TestCancelThenRescheduleReusesRecord(t *testing.T) {
	k := New(1)
	aFired, bFired := false, false
	a := k.Schedule(time.Second, func() { aFired = true })
	if !a.Cancel() {
		t.Fatal("first cancel must report pending")
	}
	// The cancelled record was recycled; the next schedule reuses it.
	b := k.Schedule(time.Second, func() { bFired = true })
	if a.ev != b.ev {
		t.Log("pool did not hand back the same record; generation check untestable here")
	}
	// The stale handle must be inert against the new occupant.
	if a.Cancel() {
		t.Fatal("stale handle cancelled the record's new occupant")
	}
	if a.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if !b.Pending() {
		t.Fatal("new timer must be pending")
	}
	k.Run()
	if aFired || !bFired {
		t.Fatalf("aFired=%v bFired=%v, want false/true", aFired, bFired)
	}
	// And after firing, the handle for b is spent too.
	if b.Cancel() || b.Pending() {
		t.Fatal("fired timer must be spent")
	}
}

func TestFireThenRescheduleStaleHandle(t *testing.T) {
	k := New(1)
	c := k.Schedule(time.Millisecond, func() {})
	k.Run()
	dFired := false
	d := k.Schedule(time.Millisecond, func() { dFired = true }) // reuses c's record
	if c.Cancel() {
		t.Fatal("handle of a fired timer cancelled a reused record")
	}
	k.Run()
	if !dFired {
		t.Fatal("reused record's timer did not fire")
	}
	_ = d
}

func TestPeriodicFiresAtMultiples(t *testing.T) {
	k := New(1)
	var at []time.Duration
	tm := k.SchedulePeriodic(250*time.Millisecond, func() { at = append(at, k.Now()) })
	k.RunUntil(time.Second)
	if len(at) != 4 {
		t.Fatalf("fired %d times, want 4 (at %v)", len(at), at)
	}
	for i, a := range at {
		if want := time.Duration(i+1) * 250 * time.Millisecond; a != want {
			t.Fatalf("firing %d at %v, want %v", i, a, want)
		}
	}
	if !tm.Pending() {
		t.Fatal("periodic timer must stay pending between firings")
	}
	if !tm.Cancel() {
		t.Fatal("cancel must report pending")
	}
	k.RunUntil(2 * time.Second)
	if len(at) != 4 {
		t.Fatalf("cancelled periodic fired again: %d", len(at))
	}
}

func TestPeriodicCancelFromOwnCallback(t *testing.T) {
	k := New(1)
	count := 0
	var tm *Timer
	tm = k.SchedulePeriodic(time.Millisecond, func() {
		count++
		if count == 3 {
			if !tm.Cancel() {
				t.Error("self-cancel must report pending")
			}
		}
	})
	k.RunUntil(time.Second)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if tm.Pending() {
		t.Fatal("cancelled periodic still pending")
	}
}

func TestPeriodicFIFOAgainstOneShots(t *testing.T) {
	// A periodic firing at t must order before a one-shot scheduled for t
	// after the periodic's re-queue (higher sequence number), and after
	// one scheduled earlier — the same ordering as the reschedule idiom.
	k := New(1)
	var order []string
	k.SchedulePeriodic(10*time.Millisecond, func() { order = append(order, "p") })
	k.Schedule(10*time.Millisecond, func() { order = append(order, "a") })
	k.RunUntil(10 * time.Millisecond)
	want := []string{"p", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestPendingCountsLiveEventsOnly(t *testing.T) {
	k := New(1)
	k.Schedule(time.Second, func() {})
	tm := k.Schedule(2*time.Second, func() {})
	k.SchedulePeriodic(time.Second, func() {})
	if k.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", k.Pending())
	}
	tm.Cancel()
	if k.Pending() != 2 {
		t.Fatalf("pending after cancel = %d, want 2 (live events only)", k.Pending())
	}
}

func TestOverflowCompaction(t *testing.T) {
	k := New(1)
	// Far beyond the three wheel levels (~4.9 h): straight to overflow.
	far := 24 * time.Hour
	var timers []*Timer
	fired := 0
	for i := 0; i < 100; i++ {
		timers = append(timers, k.Schedule(far+time.Duration(i)*time.Second, func() { fired++ }))
	}
	if got := k.overflow.Len(); got != 100 {
		t.Fatalf("overflow holds %d, want 100", got)
	}
	// Cancelling more than half must trigger compaction.
	for i := 0; i < 80; i++ {
		timers[i].Cancel()
	}
	if got := k.overflow.Len(); got > 40 {
		t.Fatalf("overflow not compacted: %d entries for 20 live", got)
	}
	if k.Pending() != 20 {
		t.Fatalf("pending = %d, want 20", k.Pending())
	}
	k.Run()
	if fired != 20 {
		t.Fatalf("fired %d, want 20", fired)
	}
}

func TestPostDispatchOrderAndReuse(t *testing.T) {
	k := New(1)
	var got []int
	h := func(arg interface{}) { got = append(got, arg.(int)) }
	k.Post(2*time.Millisecond, h, 2)
	k.Post(time.Millisecond, h, 1)
	k.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	k.Post(3*time.Millisecond, h, 4) // same instant: after the earlier schedule
	k.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSteadyStatePostDoesNotAllocate(t *testing.T) {
	k := New(1)
	h := func(interface{}) {}
	// Warm the pool.
	for i := 0; i < 64; i++ {
		k.Post(time.Duration(i)*time.Millisecond, h, nil)
	}
	k.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			k.Post(time.Duration(i)*time.Millisecond, h, nil)
		}
		_ = k.Run()
	})
	if avg > 1 {
		t.Fatalf("steady-state Post allocates %.1f objects per batch, want ~0", avg)
	}
}

func TestStreamCachedAcrossCalls(t *testing.T) {
	k := New(42)
	a := k.Stream(7)
	b := k.Stream(7)
	if a != b {
		t.Fatal("same label must return the same cached stream")
	}
	if k.Stream(8) == a {
		t.Fatal("distinct labels must not share a stream")
	}
}
