// Sharded multi-core simulation: S single-threaded kernels advancing in
// lockstep epochs, exchanging cross-shard events at epoch barriers.
//
// The classic Kernel is intentionally single-threaded (see package doc);
// Sharded keeps that property per shard and adds conservative parallel
// discrete-event simulation on top. Correctness rests on a lookahead
// bound λ supplied by the caller: every event handed to Exchange must be
// due at least λ after the instant it was produced (netsim guarantees
// this with its latency floor — no datagram travels faster than the
// fastest link). Epochs then advance the global clock in steps of at
// most λ, so an event produced during epoch (W, B] is always due
// strictly after B and can be exchanged at the barrier without ever
// arriving in a shard's past.
//
// Determinism is the property the figures depend on, and it must not
// depend on the shard count. Three mechanisms make a seed reproduce
// bit-identical end states at any -shards value:
//
//   - Every shard kernel is created with the same seed, so Stream(label)
//     yields the same generator no matter which shard a label (node,
//     origin endpoint, workload) lands on.
//   - ALL inter-node events — including ones whose origin and
//     destination share a shard — travel through the exchange and are
//     released into the destination kernel in (due-time, origin, per-
//     origin sequence) order, a total order defined entirely by the
//     traffic itself, never by channel arrival or goroutine timing.
//   - Within one shard, the kernel's (at, seq) FIFO tie-break sequences
//     a node's own timers against released events identically for every
//     placement, and nodes only observe each other through exchanged
//     events.
//
// The outboxes are per-(origin shard, destination shard) slices, double
// buffered by epoch parity: during epoch e every producer appends to
// out[e&1] while consumers drain out[1-(e&1)], so no cell is ever read
// and written concurrently and no locks or atomics sit on the hot path.
// The coordinator's command/reply channels provide the happens-before
// edges that publish one epoch's writes to the next.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// XEvent is one exchanged event: a datagram (or any cross-node signal)
// produced on an origin shard and due for release on a destination
// shard. Origin and Seq form the deterministic merge key together with
// At; they must identify the producing endpoint and its send ordinal,
// not the producing shard, so the key survives re-sharding.
type XEvent struct {
	// At is the virtual time the event is due on the destination shard.
	At time.Duration
	// Origin identifies the producing endpoint (merge key, not routing).
	Origin uint64
	// Seq is the per-origin send ordinal (merge key tie-break).
	Seq uint64
	// To identifies the destination endpoint.
	To uint64
	// Size carries the wire size for accounting.
	Size int32
	// Payload is the event body, owned by the destination after release.
	Payload interface{}
}

// ExchangeHandler releases one due event into a destination shard's
// kernel. It runs on the destination shard's worker goroutine with the
// shard kernel's clock at the epoch's start, so k.Post(ev.At-k.Now(), …)
// schedules the event at its exact due time. Allocation policy lives
// with the handler: it should draw records from destination-shard-local
// pools to keep the hot path free of cross-shard sharing.
type ExchangeHandler func(shard int, k *Kernel, ev XEvent)

// Sharded runs S kernels in lockstep epochs. Construction, topology
// changes and all inspection methods (Now, Executed, Pending, Stream)
// belong to the control plane: they must only be called between Run
// calls, when every worker is parked at a barrier. RunUntil itself
// blocks until the target time is reached, so ordinary sequential use —
// build, run, inspect, mutate, run — is safe without further care.
type Sharded struct {
	seed   int64
	lambda time.Duration
	shards []*Kernel

	handler ExchangeHandler

	// now is the global clock: the barrier time every shard has reached.
	now   time.Duration
	epoch uint64

	// out[p][origin*S+dest] is the epoch-parity-p outbox for one ordered
	// shard pair: single producer (origin's worker, or the control plane
	// while parked), single consumer (dest's worker next epoch).
	out [2][][]XEvent
	// inbox[dest] holds drained-but-not-yet-due events, a hand-rolled
	// min-heap ordered by (At, Origin, Seq). container/heap would box
	// every XEvent through its interface methods; at one push per
	// datagram that is the allocation hot path, so the heap is manual.
	inbox []xheap

	// cmd/done run the epoch protocol: the coordinator sends the epoch's
	// barrier time to every worker and collects one reply per shard.
	cmd  []chan time.Duration
	done chan error

	interrupted atomic.Bool
	closed      bool
}

// NewSharded builds a sharded engine: shards kernels, all seeded with
// seed, advancing in epochs of at most lookahead. lookahead must be a
// strict lower bound on the latency of every exchanged event; netsim
// derives it from the latency model's floor. shards must be ≥ 1 — one
// shard runs the identical barrier protocol inline (no goroutines) and
// is the serial reference the equivalence oracle compares against.
func NewSharded(seed int64, shards int, lookahead time.Duration) *Sharded {
	if shards < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: NewSharded needs a positive lookahead (zero-latency links cannot be sharded)")
	}
	s := &Sharded{
		seed:   seed,
		lambda: lookahead,
		shards: make([]*Kernel, shards),
		inbox:  make([]xheap, shards),
		done:   make(chan error, shards),
	}
	for i := range s.shards {
		s.shards[i] = New(seed)
	}
	for p := 0; p < 2; p++ {
		s.out[p] = make([][]XEvent, shards*shards)
	}
	if shards > 1 {
		s.cmd = make([]chan time.Duration, shards)
		for i := range s.cmd {
			s.cmd[i] = make(chan time.Duration)
			go s.worker(i)
		}
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i's kernel. Scheduling on it directly is safe
// only from that shard's own event callbacks or from the control plane.
func (s *Sharded) Shard(i int) *Kernel { return s.shards[i] }

// Lookahead returns the epoch bound λ.
func (s *Sharded) Lookahead() time.Duration { return s.lambda }

// Seed returns the seed every shard kernel derives its streams from.
func (s *Sharded) Seed() int64 { return s.seed }

// Now returns the global barrier clock. Individual shard kernels may
// briefly run ahead of it inside an epoch, never behind.
func (s *Sharded) Now() time.Duration { return s.now }

// Stream returns the deterministic random stream for a label, shared
// with shard 0's kernel. Because every shard kernel mixes the same
// seed, a label's stream is the same object sequence regardless of
// which shard consumes it — control-plane streams (workload, IDs,
// scenario) and per-endpoint streams all stay placement-invariant.
func (s *Sharded) Stream(label uint64) *rand.Rand { return s.shards[0].Stream(label) }

// SetExchange installs the release hook. It must be set before the
// first event is exchanged and not changed afterwards.
func (s *Sharded) SetExchange(h ExchangeHandler) { s.handler = h }

// Exchange queues one event from an origin shard to a destination
// shard. Callable from the origin shard's event callbacks during an
// epoch, or from the control plane while parked; both append to the
// current-parity outbox, which the destination drains at the next
// barrier.
func (s *Sharded) Exchange(origin, dest int, ev XEvent) {
	if s.handler == nil {
		panic("sim: Exchange before SetExchange")
	}
	cell := origin*len(s.shards) + dest
	s.out[s.epoch&1][cell] = append(s.out[s.epoch&1][cell], ev)
}

// Executed returns the total events delivered across all shards.
func (s *Sharded) Executed() uint64 {
	var total uint64
	for _, k := range s.shards {
		total += k.Executed()
	}
	return total
}

// Pending returns the live scheduled events across all shards plus the
// exchanged events still waiting in inboxes and outboxes.
func (s *Sharded) Pending() int {
	total := 0
	for _, k := range s.shards {
		total += k.Pending()
	}
	for i := range s.inbox {
		total += s.inbox[i].Len()
	}
	for p := 0; p < 2; p++ {
		for _, cell := range s.out[p] {
			total += len(cell)
		}
	}
	return total
}

// Interrupt makes the innermost RunUntil return at the next epoch
// barrier. It is the only method safe to call from another goroutine
// (wall-clock budget watchdogs); the run stops at a consistent barrier,
// with the global clock short of the target.
func (s *Sharded) Interrupt() { s.interrupted.Store(true) }

// Interrupted reports whether Interrupt cut the last run short.
func (s *Sharded) Interrupted() bool { return s.interrupted.Load() }

// ClearInterrupt re-arms the engine after an interrupted run.
func (s *Sharded) ClearInterrupt() { s.interrupted.Store(false) }

// RunUntil advances every shard to the target time in lockstep epochs.
// Epoch boundaries land on the λ grid plus the target itself, so two
// runs that reach the same target through different RunUntil splits
// execute identical epochs except for extra split points — and a split
// point only ever subdivides an epoch, which cannot reorder events
// (every exchanged event's due time still falls strictly beyond the
// barrier that ships it).
func (s *Sharded) RunUntil(target time.Duration) error {
	var firstErr error
	for s.now < target && !s.interrupted.Load() {
		b := (s.now/s.lambda + 1) * s.lambda
		if target < b {
			b = target
		}
		s.epoch++
		if s.cmd == nil {
			s.drain(0)
			s.release(0, b)
			if err := s.shards[0].RunUntil(b); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			for _, c := range s.cmd {
				c <- b
			}
			for range s.cmd {
				if err := <-s.done; err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		s.now = b
		if firstErr != nil {
			break
		}
	}
	return firstErr
}

// RunFor advances the engine by d of virtual time.
func (s *Sharded) RunFor(d time.Duration) error { return s.RunUntil(s.now + d) }

// Close terminates the worker goroutines. The engine is unusable
// afterwards; Close is idempotent.
func (s *Sharded) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, c := range s.cmd {
		close(c)
	}
}

// worker is one shard's goroutine: park at the barrier, run one epoch
// on command, reply, repeat. The pprof label makes per-shard time and
// barrier stalls attributable in CPU and block profiles.
func (s *Sharded) worker(i int) {
	pprof.Do(context.Background(), pprof.Labels("shard", fmt.Sprintf("%d", i)), func(context.Context) {
		for b := range s.cmd[i] {
			s.drain(i)
			s.release(i, b)
			s.done <- s.shards[i].RunUntil(b)
		}
	})
}

// drain moves the previous epoch's outbox cells addressed to shard i
// into its inbox heap. Reading the previous parity is what makes each
// cell single-producer/single-consumer: producers of epoch e write
// parity e&1, and this drain (running in epoch e) reads parity 1-(e&1),
// whose producers all parked at the barrier before this epoch began.
func (s *Sharded) drain(i int) {
	S := len(s.shards)
	prev := 1 - s.epoch&1
	h := &s.inbox[i]
	for o := 0; o < S; o++ {
		cell := o*S + i
		buf := s.out[prev][cell]
		for _, ev := range buf {
			h.push(ev)
		}
		s.out[prev][cell] = buf[:0]
	}
}

// release feeds shard i's kernel every inbox event due at or before the
// epoch bound, in (At, Origin, Seq) order. Posting in that order stamps
// ascending kernel sequence numbers, so the kernel's own FIFO tie-break
// reproduces the merge order exactly — including against the shard's
// local timers, which always carry earlier sequence numbers when they
// were scheduled in earlier epochs.
func (s *Sharded) release(i int, bound time.Duration) {
	k := s.shards[i]
	h := &s.inbox[i]
	for h.Len() > 0 {
		ev := h.min()
		if ev.At > bound {
			return
		}
		h.pop()
		s.handler(i, k, ev)
	}
}

// xheap is a binary min-heap of XEvents ordered by (At, Origin, Seq).
type xheap []XEvent

func xless(a, b XEvent) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	return a.Seq < b.Seq
}

// Len returns the heap size.
func (h xheap) Len() int { return len(h) }

// min returns the smallest element without removing it.
func (h xheap) min() XEvent { return h[0] }

func (h *xheap) push(ev XEvent) {
	*h = append(*h, ev)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !xless(a[i], a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *xheap) pop() XEvent {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = XEvent{} // drop the payload reference for the GC
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && xless(a[l], a[small]) {
			small = l
		}
		if r < n && xless(a[r], a[small]) {
			small = r
		}
		if small == i {
			break
		}
		a[i], a[small] = a[small], a[i]
		i = small
	}
	return top
}
