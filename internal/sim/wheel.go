package sim

import (
	"container/heap"
	"math/bits"
	"time"
)

// Wheel geometry. One tick is 2^tickShift nanoseconds (~1.05 ms), chosen so
// that typical datagram latencies (tens of ms) land a few slots out and
// protocol timers (seconds) stay within the second level. Three levels of
// 256 slots cover ~4.9 hours of virtual time; anything beyond spills into
// the overflow heap, which is drained back into the wheels as the cursor
// crosses window boundaries.
const (
	tickShift   = 20
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
)

// Event locations, for Cancel and cascade bookkeeping. Wheel levels are
// locWheel0+L so the level is recoverable from the location byte.
const (
	locFree uint8 = iota
	locReady
	locOverflow
	locFiring
	locWheel0 // locWheel0+1, locWheel0+2 are the higher levels
)

// event is one scheduled callback. Records are pooled: the free list and
// the wheel buckets both thread through next/prev, and gen increments on
// every recycle so stale Timer handles cannot touch a reused record.
type event struct {
	at  time.Duration
	seq uint64
	// Exactly one of fn (closure path) or h+arg (dispatch path) is set.
	fn  func()
	h   func(interface{})
	arg interface{}
	// period > 0 marks a periodic event, re-queued after each firing.
	period time.Duration

	k          *Kernel
	next, prev *event
	gen        uint32
	where      uint8
	cancelled  bool
}

// cancel clears the callback fields so long-lived queues do not pin memory.
func (ev *event) cancel() {
	ev.cancelled = true
	ev.fn, ev.h, ev.arg = nil, nil, nil
	ev.period = 0
}

// eventTick is the wheel tick an event's timestamp falls in.
func eventTick(ev *event) int64 { return int64(ev.at) >> tickShift }

// wheelSlot is the slot index of a tick at the given level.
func wheelSlot(tick int64, level int) int {
	return int(tick>>(level*wheelBits)) & wheelMask
}

// wheelLevel is one ring of buckets. Buckets are intrusive doubly-linked
// lists (unordered — the ready heap re-establishes (at, seq) order), with
// an occupancy bitmap so the cursor can jump straight to the next busy
// slot. Cancelled events are unlinked eagerly, so occupancy is exact.
type wheelLevel struct {
	slots    [wheelSlots]*event
	occupied [wheelSlots / 64]uint64
	count    int
}

func (l *wheelLevel) add(ev *event, slot int, level int) {
	head := l.slots[slot]
	ev.next, ev.prev = head, nil
	if head != nil {
		head.prev = ev
	}
	l.slots[slot] = ev
	l.occupied[slot>>6] |= 1 << uint(slot&63)
	l.count++
	ev.where = locWheel0 + uint8(level)
}

func (l *wheelLevel) remove(ev *event, slot int) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		l.slots[slot] = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	ev.next, ev.prev = nil, nil
	if l.slots[slot] == nil {
		l.occupied[slot>>6] &^= 1 << uint(slot&63)
	}
	l.count--
}

// take detaches and returns a slot's whole bucket.
func (l *wheelLevel) take(slot int) *event {
	head := l.slots[slot]
	l.slots[slot] = nil
	l.occupied[slot>>6] &^= 1 << uint(slot&63)
	for ev := head; ev != nil; ev = ev.next {
		l.count--
	}
	return head
}

// nextOccupied returns the lowest occupied slot strictly greater than
// after. The wheel invariants guarantee pending events never sit at or
// below the cursor's own slot, so the scan never needs to wrap.
func (l *wheelLevel) nextOccupied(after int) (int, bool) {
	if l.count == 0 {
		return 0, false
	}
	w := after >> 6
	bits64 := l.occupied[w] &^ (1<<(uint(after&63)+1) - 1)
	for {
		if bits64 != 0 {
			return w<<6 + bits.TrailingZeros64(bits64), true
		}
		w++
		if w >= len(l.occupied) {
			return 0, false
		}
		bits64 = l.occupied[w]
	}
}

// --- kernel scheduling internals ---------------------------------------------

// alloc takes an event record from the pool.
func (k *Kernel) alloc() *event {
	ev := k.free
	if ev == nil {
		return &event{k: k}
	}
	k.free = ev.next
	ev.next = nil
	return ev
}

// recycle resets a record and returns it to the pool. The generation bump
// invalidates every Timer handle still pointing at the record.
func (k *Kernel) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.h, ev.arg = nil, nil, nil
	ev.period = 0
	ev.cancelled = false
	ev.where = locFree
	ev.prev = nil
	ev.next = k.free
	k.free = ev
}

// insert routes an event to the ready heap, a wheel level, or the overflow
// heap, based on where its tick falls relative to the cursor. Events at or
// before the cursor are due (the cursor may run ahead of the clock); an
// event shares level L with the cursor when their ticks agree above the
// L+1 lowest slot-index bytes.
func (k *Kernel) insert(ev *event) {
	t := eventTick(ev)
	cur := k.curTick
	switch {
	case t <= cur:
		ev.where = locReady
		heap.Push(&k.ready, ev)
	case t>>wheelBits == cur>>wheelBits:
		k.levels[0].add(ev, wheelSlot(t, 0), 0)
	case t>>(2*wheelBits) == cur>>(2*wheelBits):
		k.levels[1].add(ev, wheelSlot(t, 1), 1)
	case t>>(3*wheelBits) == cur>>(3*wheelBits):
		k.levels[2].add(ev, wheelSlot(t, 2), 2)
	default:
		ev.where = locOverflow
		heap.Push(&k.overflow, ev)
	}
}

// setTick advances the cursor to nt, cascading buckets whose window the
// cursor enters. Callers guarantee no live event lies strictly between the
// old cursor position and nt (nt is either the next busy slot's tick, the
// earliest overflow tick, or an idle deadline), so skipped slots are empty.
func (k *Kernel) setTick(nt int64) {
	old := k.curTick
	if nt <= old {
		return
	}
	k.curTick = nt
	if nt>>(3*wheelBits) != old>>(3*wheelBits) {
		k.drainOverflow(nt)
	}
	// Higher levels first: a level-2 bucket may cascade into the level-1
	// slot being entered, which then cascades onward in the same pass.
	if nt>>(2*wheelBits) != old>>(2*wheelBits) {
		k.cascade(2, wheelSlot(nt, 2))
	}
	if nt>>wheelBits != old>>wheelBits {
		k.cascade(1, wheelSlot(nt, 1))
	}
	k.cascade(0, wheelSlot(nt, 0))
}

// cascade re-inserts a bucket's events relative to the new cursor: one
// level down, or into the ready heap once their tick is reached.
func (k *Kernel) cascade(level, slot int) {
	ev := k.levels[level].take(slot)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		k.insert(ev)
		ev = next
	}
}

// drainOverflow pulls every overflow event at or before the end of the
// cursor's new top-level window back into the wheels. Lazily cancelled
// entries encountered on the way are recycled.
func (k *Kernel) drainOverflow(nt int64) {
	windowEnd := (nt>>(3*wheelBits) + 1) << (3 * wheelBits)
	for k.overflow.Len() > 0 {
		top := k.overflow[0]
		if eventTick(top) >= windowEnd {
			return
		}
		heap.Pop(&k.overflow)
		if top.cancelled {
			k.overflowCancelled--
			k.recycle(top)
			continue
		}
		k.insert(top)
	}
}

// compactOverflow drops lazily cancelled entries and re-establishes the
// heap. Order among live events is unchanged: the comparator is the total
// (at, seq) order.
func (k *Kernel) compactOverflow() {
	n := len(k.overflow)
	kept := k.overflow[:0]
	for _, ev := range k.overflow {
		if ev.cancelled {
			k.recycle(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < n; i++ {
		k.overflow[i] = nil
	}
	k.overflow = kept
	heap.Init(&k.overflow)
	k.overflowCancelled = 0
}

// peek returns the earliest live pending event, advancing the cursor (and
// cascading buckets) as far as needed; nil when nothing is scheduled. The
// returned event is the ready heap's minimum.
func (k *Kernel) peek() *event {
	for {
		for k.ready.Len() > 0 {
			top := k.ready[0]
			if !top.cancelled {
				return top
			}
			heap.Pop(&k.ready)
			k.recycle(top)
		}
		cur := k.curTick
		if s, ok := k.levels[0].nextOccupied(wheelSlot(cur, 0)); ok {
			k.setTick(cur&^wheelMask | int64(s))
			continue
		}
		if s, ok := k.levels[1].nextOccupied(wheelSlot(cur, 1)); ok {
			k.setTick((cur>>wheelBits&^wheelMask | int64(s)) << wheelBits)
			continue
		}
		if s, ok := k.levels[2].nextOccupied(wheelSlot(cur, 2)); ok {
			k.setTick((cur>>(2*wheelBits)&^wheelMask | int64(s)) << (2 * wheelBits))
			continue
		}
		if k.overflow.Len() > 0 {
			k.setTick(eventTick(k.overflow[0]))
			continue
		}
		return nil
	}
}

// eventHeap is a binary min-heap over (at, seq): the exact global event
// order. It backs both the ready heap and the far-future overflow.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
