package sim

import (
	"testing"
	"time"
)

// Kernel micro-benchmarks: the events/sec and allocs/op numbers these
// report are the substrate half of the EXPERIMENTS.md scale table (the
// other half is the end-to-end scenario benchmarks in the repo root).
// CI runs them with -benchtime=1x as a smoke job on every main build.

// benchEvents reports throughput in events per wall-clock second.
func benchEvents(b *testing.B, n int) {
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkKernelScheduleFire measures the closure one-shot path: one
// Schedule plus one delivery per event, batched like a protocol tick.
func BenchmarkKernelScheduleFire(b *testing.B) {
	k := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		batch := 1024
		if r := b.N - done; r < batch {
			batch = r
		}
		for i := 0; i < batch; i++ {
			k.Schedule(time.Duration(i%64)*time.Millisecond, fn)
		}
		_ = k.Run()
		done += batch
	}
	benchEvents(b, b.N)
}

// BenchmarkKernelPost measures the pooled closure-free dispatch path that
// netsim uses per datagram; steady state allocates nothing.
func BenchmarkKernelPost(b *testing.B) {
	k := New(1)
	h := func(interface{}) {}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		batch := 1024
		if r := b.N - done; r < batch {
			batch = r
		}
		for i := 0; i < batch; i++ {
			k.Post(time.Duration(10+i%50)*time.Millisecond, h, nil)
		}
		_ = k.Run()
		done += batch
	}
	benchEvents(b, b.N)
}

// BenchmarkKernelPeriodic measures the recurring-timer path: 64 periodic
// timers (a keep-alive population in miniature) delivering b.N ticks.
func BenchmarkKernelPeriodic(b *testing.B) {
	k := New(1)
	fn := func() {}
	const timers = 64
	for i := 0; i < timers; i++ {
		k.SchedulePeriodic(time.Duration(i+1)*time.Millisecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := k.Executed()
	for k.Executed()-start < uint64(b.N) {
		_ = k.RunFor(100 * time.Millisecond)
	}
	benchEvents(b, b.N)
}

// BenchmarkKernelCancelChurn measures the schedule-then-cancel pattern of
// protocol timers (lookups, courtships): half the events never fire.
func BenchmarkKernelCancelChurn(b *testing.B) {
	k := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		batch := 1024
		if r := b.N - done; r < batch {
			batch = r
		}
		for i := 0; i < batch; i += 2 {
			keep := k.Schedule(time.Duration(i%40)*time.Millisecond, fn)
			drop := k.Schedule(time.Duration(i%40+1)*time.Millisecond, fn)
			drop.Cancel()
			_ = keep
		}
		_ = k.Run()
		done += batch
	}
	benchEvents(b, b.N)
}

// BenchmarkKernelMixed approximates a simulation tick mix: mostly pooled
// datagram deliveries, some one-shot protocol timers, a slice cancelled,
// against a standing population of periodic maintenance timers.
func BenchmarkKernelMixed(b *testing.B) {
	k := New(1)
	fn := func() {}
	h := func(interface{}) {}
	var periodics []*Timer
	for i := 0; i < 32; i++ {
		periodics = append(periodics, k.SchedulePeriodic(time.Duration(500+i)*time.Millisecond, fn))
	}
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		batch := 1024
		if r := b.N - done; r < batch {
			batch = r
		}
		for i := 0; i < batch; i++ {
			switch i % 10 {
			case 0, 1:
				tm := k.Schedule(time.Duration(i%100)*time.Millisecond, fn)
				if i%20 == 0 {
					tm.Cancel()
				}
			default:
				k.Post(time.Duration(10+i%50)*time.Millisecond, h, nil)
			}
		}
		_ = k.RunFor(200 * time.Millisecond)
		done += batch
	}
	// Stop the maintenance population before the final drain: Run would
	// otherwise re-queue the periodic timers forever.
	for _, tm := range periodics {
		tm.Cancel()
	}
	_ = k.Run()
	benchEvents(b, b.N)
}
