package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := New(1)
	var got []int
	k.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Errorf("final time %v", k.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events must fire in scheduling order: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := New(1)
	fired := false
	k.Schedule(-time.Second, func() { fired = true })
	k.Run()
	if !fired || k.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, k.Now())
	}
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	tm := k.Schedule(time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Cancel() {
		t.Fatal("cancel should report pending=true")
	}
	if tm.Cancel() {
		t.Fatal("second cancel should report false")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Pending() {
		t.Fatal("cancelled timer still pending")
	}
}

func TestCancelAfterFire(t *testing.T) {
	k := New(1)
	tm := k.Schedule(time.Millisecond, func() {})
	k.Run()
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Cancel() {
		t.Fatal("cancel after fire should report false")
	}
}

func TestNilTimerSafe(t *testing.T) {
	var tm *Timer
	if tm.Cancel() || tm.Pending() {
		t.Fatal("nil timer must be inert")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New(1)
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 5 {
			k.Schedule(time.Millisecond, rec)
		}
	}
	k.Schedule(0, rec)
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if k.Now() != 4*time.Millisecond {
		t.Errorf("now = %v", k.Now())
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := k.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if k.Now() != 3*time.Second {
		t.Errorf("now = %v", k.Now())
	}
	// Remaining events still fire later.
	k.RunFor(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("after RunFor fired %d, want 5", len(fired))
	}
	if k.Now() != 13*time.Second {
		t.Errorf("now = %v after RunFor", k.Now())
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	k := New(1)
	k.RunUntil(time.Minute)
	if k.Now() != time.Minute {
		t.Errorf("now = %v", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		k.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (stopped)", count)
	}
	// A fresh Run resumes.
	k.Run()
	if count != 10 {
		t.Fatalf("count = %d after resume", count)
	}
}

func TestEventBudget(t *testing.T) {
	k := New(1)
	k.SetEventBudget(100)
	var loop func()
	loop = func() { k.Schedule(time.Millisecond, loop) }
	k.Schedule(0, loop)
	if err := k.Run(); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if k.Executed() != 100 {
		t.Fatalf("executed %d", k.Executed())
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	k := New(1)
	k.Schedule(time.Second, func() {})
	k.Run()
	fired := time.Duration(-1)
	k.ScheduleAt(0, func() { fired = k.Now() })
	k.Run()
	if fired != time.Second {
		t.Fatalf("past event fired at %v, want clamp to %v", fired, time.Second)
	}
}

func TestStreamsDeterministicAndIndependent(t *testing.T) {
	k1 := New(77)
	k2 := New(77)
	s1 := k1.Stream(5)
	s2 := k2.Stream(5)
	for i := 0; i < 20; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same seed+label must produce identical streams")
		}
	}
	a := New(77).Stream(1)
	b := New(77).Stream(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different labels look correlated: %d matches", same)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []time.Duration {
		k := New(seed)
		rng := k.Stream(0)
		var log []time.Duration
		var step func()
		n := 0
		step = func() {
			log = append(log, k.Now())
			n++
			if n < 50 {
				k.Schedule(time.Duration(rng.Intn(1000))*time.Microsecond, step)
			}
		}
		k.Schedule(0, step)
		k.Run()
		return log
	}
	a, b := run(9), run(9)
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPendingCount(t *testing.T) {
	k := New(1)
	k.Schedule(time.Second, func() {})
	tm := k.Schedule(2*time.Second, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d", k.Pending())
	}
	tm.Cancel()
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("pending after run = %d", k.Pending())
	}
	if k.Executed() != 1 {
		t.Fatalf("executed = %d, cancelled event must not count", k.Executed())
	}
}

func TestNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Schedule(0, nil)
}
