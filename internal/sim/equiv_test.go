package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file proves the timing-wheel scheduler is observationally identical
// to the single binary heap it replaced: for the same seed, the same
// schedule/cancel/periodic workload fires in exactly the same order at the
// same virtual times. refKernel below is the retired heap implementation,
// kept as the ordering oracle.

type refEvent struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refKernel struct {
	now    time.Duration
	seq    uint64
	events refHeap
}

func (k *refKernel) schedule(d time.Duration, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	at := k.now + d
	if at < k.now {
		at = k.now
	}
	ev := &refEvent{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return ev
}

func (k *refKernel) runUntil(deadline time.Duration) {
	for k.events.Len() > 0 {
		ev := k.events[0]
		if ev.cancelled {
			heap.Pop(&k.events)
			continue
		}
		if ev.at > deadline {
			break
		}
		heap.Pop(&k.events)
		k.now = ev.at
		ev.fn()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// testSched abstracts the two schedulers for the shared workload driver.
// schedule and schedulePeriodic return cancel functions.
type testSched interface {
	now() time.Duration
	schedule(d time.Duration, fn func()) func() bool
	schedulePeriodic(d time.Duration, fn func()) func() bool
	runUntil(t time.Duration)
}

type wheelSched struct{ k *Kernel }

func (s wheelSched) now() time.Duration { return s.k.Now() }
func (s wheelSched) schedule(d time.Duration, fn func()) func() bool {
	tm := s.k.Schedule(d, fn)
	return tm.Cancel
}
func (s wheelSched) schedulePeriodic(d time.Duration, fn func()) func() bool {
	tm := s.k.SchedulePeriodic(d, fn)
	return tm.Cancel
}
func (s wheelSched) runUntil(t time.Duration) { _ = s.k.RunUntil(t) }

type refSched struct{ k *refKernel }

func (s refSched) now() time.Duration { return s.k.now }
func (s refSched) schedule(d time.Duration, fn func()) func() bool {
	ev := s.k.schedule(d, fn)
	return func() bool {
		if ev.cancelled {
			return false
		}
		ev.cancelled = true
		return true
	}
}

// schedulePeriodic emulates the kernel's periodic contract on the heap:
// run fn, then re-queue with a fresh sequence number — the exact ordering
// of the schedule-inside-the-callback idiom the kernel API replaced.
func (s refSched) schedulePeriodic(d time.Duration, fn func()) func() bool {
	cancelled := false
	var cur *refEvent
	var tick func()
	tick = func() {
		fn()
		if !cancelled {
			cur = s.k.schedule(d, tick)
		}
	}
	cur = s.k.schedule(d, tick)
	return func() bool {
		if cancelled {
			return false
		}
		cancelled = true
		cur.cancelled = true
		return true
	}
}
func (s refSched) runUntil(t time.Duration) { s.k.runUntil(t) }

// driveWorkload runs a randomized schedule/cancel/periodic workload on the
// given scheduler and returns the fire log ("id@virtualtime" per event).
// All randomness flows from the shared rng, whose draw order depends only
// on the event fire order — so two schedulers produce identical logs iff
// they order events identically.
func driveWorkload(s testSched, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var log []string
	var cancels []func() bool
	count := 0
	const maxSpawned = 3000
	// Delays straddle every scheduler region: sub-tick, one tick exactly,
	// level-0/1/2 wheel windows, and past the ~4.9 h horizon (overflow).
	delays := []time.Duration{
		0, 1, time.Microsecond, 37 * time.Microsecond,
		time.Millisecond, 1 << tickShift, 5 * time.Millisecond,
		271 * time.Millisecond, 900 * time.Millisecond,
		3 * time.Second, 67 * time.Second, 2 * time.Minute,
		3 * time.Hour, 26 * time.Hour,
	}
	var fire func(id int) func()
	schedule := func() {
		if count >= maxSpawned {
			return
		}
		count++
		id := count
		d := delays[rng.Intn(len(delays))]
		if rng.Intn(4) == 0 {
			d += time.Duration(rng.Intn(5000)) * time.Microsecond
		}
		if rng.Intn(16) == 0 {
			p := d
			if p < 700*time.Millisecond {
				p = 700 * time.Millisecond
			}
			cancels = append(cancels, s.schedulePeriodic(p, fire(id)))
		} else {
			cancels = append(cancels, s.schedule(d, fire(id)))
		}
	}
	fire = func(id int) func() {
		return func() {
			log = append(log, fmt.Sprintf("%d@%d", id, s.now()))
			for n := rng.Intn(3); n > 0; n-- {
				schedule()
			}
			if len(cancels) > 0 && rng.Intn(3) == 0 {
				cancels[rng.Intn(len(cancels))]()
			}
		}
	}
	for i := 0; i < 50; i++ {
		schedule()
	}
	// Deadline-bounded runs with awkward boundaries, then cancel the
	// periodics and drain the far future (the overflow heap).
	for t := 900 * time.Millisecond; t <= 40*time.Second; t += 6*time.Second + 13*time.Millisecond {
		s.runUntil(t)
	}
	for _, c := range cancels {
		c()
	}
	s.runUntil(40 * time.Hour)
	return log
}

// TestWheelHeapEquivalence is the determinism contract of the refactor:
// identical seeds must produce identical event order on the wheel and on
// the reference heap.
func TestWheelHeapEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		wheel := driveWorkload(wheelSched{New(0)}, seed)
		ref := driveWorkload(refSched{&refKernel{}}, seed)
		if len(wheel) == 0 {
			t.Fatalf("seed %d: empty fire log", seed)
		}
		if len(wheel) != len(ref) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheel), len(ref))
		}
		for i := range wheel {
			if wheel[i] != ref[i] {
				t.Fatalf("seed %d: order diverges at event %d: wheel %s, heap %s",
					seed, i, wheel[i], ref[i])
			}
		}
	}
}

// TestFuzzDeterministicReplay replays a random schedule/cancel sequence
// twice on the wheel kernel; the fire logs must match exactly.
func TestFuzzDeterministicReplay(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		a := driveWorkload(wheelSched{New(0)}, seed)
		b := driveWorkload(wheelSched{New(0)}, seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: replay diverged at %d: %s vs %s", seed, i, a[i], b[i])
			}
		}
	}
}
