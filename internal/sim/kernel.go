// Package sim is a deterministic discrete-event simulation kernel.
//
// The TreeP paper evaluates the overlay with a packet-switching simulation
// (§IV); this kernel is the substrate for that evaluation. It provides a
// virtual clock, an event heap with stable FIFO ordering for simultaneous
// events, cancellable timers, and seed-derived random streams, so that every
// experiment in the repository is exactly reproducible from its seed.
//
// The kernel is intentionally single-threaded: determinism is the property
// the figures depend on. Parallelism lives one level up, in the experiment
// harness, which runs many independent kernels (trials, sweep points) on a
// worker pool.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Kernel is a discrete-event scheduler with a virtual clock starting at 0.
// The zero value is not usable; call New.
type Kernel struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	// executed counts delivered events, for budget enforcement and stats.
	executed uint64
	// maxEvents aborts runaway simulations (protocol loops); 0 = unlimited.
	maxEvents uint64
	seed      int64
	stopped   bool
}

// New returns a kernel whose random streams derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{seed: seed}
}

// SetEventBudget caps the number of events a run may execute; Run returns
// ErrBudget once the cap is hit. Zero disables the cap.
func (k *Kernel) SetEventBudget(n uint64) { k.maxEvents = n }

// ErrBudget is returned by Run and RunUntil when the event budget is hit.
var ErrBudget = fmt.Errorf("sim: event budget exhausted")

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Executed returns the number of events delivered so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing. Timers are single-shot.
type Timer struct {
	ev *event
}

// Cancel stops the timer. Cancelling an already-fired or already-cancelled
// timer is a no-op. It reports whether the event was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled {
		return false
	}
	pending := !t.ev.fired
	t.ev.cancelled = true
	t.ev.fn = nil // release closure memory for long-lived heaps
	return pending
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.fired && !t.ev.cancelled
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fires "now", after currently queued simultaneous events).
func (k *Kernel) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time. Times in the past
// are clamped to now. Events scheduled for the same instant fire in
// scheduling order.
func (k *Kernel) ScheduleAt(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if at < k.now {
		at = k.now
	}
	ev := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return &Timer{ev: ev}
}

// Step executes the next pending event. It reports false when the queue is
// empty (skipping over cancelled events without executing them).
func (k *Kernel) Step() bool {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		ev.fired = true
		fn := ev.fn
		ev.fn = nil
		k.executed++
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains, the budget is exhausted, or
// Stop is called. It returns nil on a drained queue or voluntary stop.
func (k *Kernel) Run() error {
	k.stopped = false
	for !k.stopped {
		if k.maxEvents > 0 && k.executed >= k.maxEvents {
			return ErrBudget
		}
		if !k.Step() {
			return nil
		}
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (k *Kernel) RunUntil(deadline time.Duration) error {
	k.stopped = false
	for !k.stopped {
		if k.maxEvents > 0 && k.executed >= k.maxEvents {
			return ErrBudget
		}
		next, ok := k.peekTime()
		if !ok || next > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) error { return k.RunUntil(k.now + d) }

// Stop makes the innermost Run/RunUntil return after the current event.
func (k *Kernel) Stop() { k.stopped = true }

// Pending returns the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return k.events.Len() }

func (k *Kernel) peekTime() (time.Duration, bool) {
	for k.events.Len() > 0 {
		ev := k.events[0]
		if ev.cancelled {
			heap.Pop(&k.events)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// Stream returns an independent deterministic random stream for the given
// label (e.g. one per node, one for the workload). Streams derived from the
// same kernel seed and label are identical across runs, and distinct labels
// give uncorrelated streams (seed mixing via splitmix64).
func (k *Kernel) Stream(label uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(k.seed) ^ mix64(label)))))
}

// mix64 is the splitmix64 finaliser, a cheap strong bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// event is a heap entry. fired/cancelled are flags rather than removal from
// the heap because container/heap removal by index would require index
// maintenance; lazily skipping dead events is simpler and O(log n) amortised.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	fired     bool
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
