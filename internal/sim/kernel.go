// Package sim is a deterministic discrete-event simulation kernel.
//
// The TreeP paper evaluates the overlay with a packet-switching simulation
// (§IV); this kernel is the substrate for that evaluation. It provides a
// virtual clock, a hierarchical timing-wheel scheduler with stable FIFO
// ordering for simultaneous events, cancellable one-shot and periodic
// timers, a pooled closure-free dispatch path for high-volume events, and
// seed-derived random streams, so that every experiment in the repository
// is exactly reproducible from its seed.
//
// Scheduler architecture (see DESIGN.md §7): events live in one of four
// places. Events due at or before the wheel cursor sit in a small binary
// heap (the ready heap) ordered by (time, sequence); near-future events
// hash into three cascading wheel levels of 256 slots each (~1 ms ticks,
// covering ~4.9 h); far-future events overflow into a second heap. Event
// records are pooled on a free list and recycled the moment they fire or
// are cancelled, so steady-state scheduling does not allocate. Timer
// handles carry a generation number so a handle kept past its event's
// recycling can never cancel the record's next occupant.
//
// The kernel is intentionally single-threaded: determinism is the property
// the figures depend on. Parallelism lives one level up, in the experiment
// harness, which runs many independent kernels (trials, sweep points) on a
// worker pool.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Kernel is a discrete-event scheduler with a virtual clock starting at 0.
// The zero value is not usable; call New.
type Kernel struct {
	now time.Duration
	seq uint64

	// curTick is the wheel cursor: every live event with a tick at or
	// before it is in the ready heap. The cursor may run ahead of the
	// clock (after a deadline-bounded run); it never moves backwards.
	curTick int64
	levels  [wheelLevels]wheelLevel
	// ready holds events that are due: popped in (at, seq) order, which
	// gives the exact global ordering a single binary heap would.
	ready eventHeap
	// overflow holds events beyond the wheels' horizon, plus lazily
	// cancelled entries counted by overflowCancelled and compacted when
	// they outnumber the live ones.
	overflow          eventHeap
	overflowCancelled int

	// free is the event-record pool (intrusive list through event.next).
	free *event
	// live counts scheduled, non-cancelled events (what Pending reports).
	live int

	// executed counts delivered events, for budget enforcement and stats.
	executed uint64
	// maxEvents aborts runaway simulations (protocol loops); 0 = unlimited.
	maxEvents uint64
	seed      int64
	// stopped is atomic so wall-clock watchdogs (bench -budget) may call
	// Stop from another goroutine; everything else on the kernel remains
	// single-threaded.
	stopped atomic.Bool

	// streams caches the per-label random streams so hot paths can call
	// Stream repeatedly without re-allocating a generator.
	streams map[uint64]*rand.Rand
}

// New returns a kernel whose random streams derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{seed: seed, streams: make(map[uint64]*rand.Rand)}
}

// SetEventBudget caps the number of events a run may execute; Run returns
// ErrBudget once the cap is hit. Zero disables the cap.
func (k *Kernel) SetEventBudget(n uint64) { k.maxEvents = n }

// ErrBudget is returned by Run and RunUntil when the event budget is hit.
var ErrBudget = fmt.Errorf("sim: event budget exhausted")

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Executed returns the number of events delivered so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing. The handle pins a (record, generation) pair: once the event
// completes and its record is recycled, the handle goes permanently inert.
type Timer struct {
	ev  *event
	gen uint32
}

// Cancel stops the timer. Cancelling an already-fired or already-cancelled
// timer is a no-op. It reports whether the event was still pending. For
// periodic timers, Cancel stops all future firings.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil {
		return false
	}
	ev := t.ev
	if ev.gen != t.gen || ev.cancelled {
		return false
	}
	k := ev.k
	k.live--
	switch {
	case ev.where >= locWheel0:
		// Wheel buckets are doubly linked: unlink and recycle on the
		// spot, keeping occupancy bitmaps exact so the cursor never
		// jumps to a slot holding only dead events.
		lvl := int(ev.where - locWheel0)
		k.levels[lvl].remove(ev, wheelSlot(eventTick(ev), lvl))
		k.recycle(ev)
	case ev.where == locOverflow:
		// Heap entries are cancelled lazily; compact once the dead
		// outnumber the live.
		ev.cancel()
		k.overflowCancelled++
		if k.overflowCancelled*2 > k.overflow.Len() {
			k.compactOverflow()
		}
	default: // locReady, locFiring
		ev.cancel()
	}
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
// A periodic timer stays pending until cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (fires "now", after currently queued simultaneous events).
func (k *Kernel) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time. Times in the past
// are clamped to now. Events scheduled for the same instant fire in
// scheduling order.
func (k *Kernel) ScheduleAt(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	ev := k.newEvent(at)
	ev.fn = fn
	k.insert(ev)
	return &Timer{ev: ev, gen: ev.gen}
}

// SchedulePeriodic runs fn every interval of virtual time, first after one
// interval, until the returned timer is cancelled. The single pooled event
// record is re-queued after each firing (with a fresh sequence number, so
// FIFO ordering against other events at the same instant is preserved),
// replacing the allocate-a-closure-per-tick reschedule idiom.
func (k *Kernel) SchedulePeriodic(interval time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: SchedulePeriodic with nil fn")
	}
	if interval <= 0 {
		panic("sim: SchedulePeriodic with non-positive interval")
	}
	ev := k.newEvent(k.now + interval)
	ev.fn = fn
	ev.period = interval
	k.insert(ev)
	return &Timer{ev: ev, gen: ev.gen}
}

// Post schedules h(arg) after delay without allocating: no closure is
// captured and no Timer handle is created. It is the hot path for
// high-volume fire-and-forget events (netsim schedules one per datagram);
// h is typically a package-level dispatch function and arg a pooled record.
func (k *Kernel) Post(delay time.Duration, h func(arg interface{}), arg interface{}) {
	if h == nil {
		panic("sim: Post with nil handler")
	}
	if delay < 0 {
		delay = 0
	}
	ev := k.newEvent(k.now + delay)
	ev.h = h
	ev.arg = arg
	k.insert(ev)
}

// newEvent takes a record from the pool and stamps time and sequence.
func (k *Kernel) newEvent(at time.Duration) *event {
	if at < k.now {
		at = k.now
	}
	ev := k.alloc()
	ev.at = at
	ev.seq = k.seq
	k.seq++
	k.live++
	return ev
}

// Step executes the next pending event. It reports false when nothing is
// scheduled (skipping over cancelled events without executing them).
func (k *Kernel) Step() bool {
	ev := k.peek()
	if ev == nil {
		return false
	}
	k.fire(ev)
	return true
}

// Run executes events until the queue drains, the budget is exhausted, or
// Stop is called. It returns nil on a drained queue or voluntary stop.
func (k *Kernel) Run() error {
	k.stopped.Store(false)
	for !k.stopped.Load() {
		if k.maxEvents > 0 && k.executed >= k.maxEvents {
			return ErrBudget
		}
		ev := k.peek()
		if ev == nil {
			return nil
		}
		k.fire(ev)
	}
	return nil
}

// RunUntil executes events with timestamps ≤ deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued;
// events scheduled exactly at the deadline (including from callbacks firing
// at the deadline) are executed.
func (k *Kernel) RunUntil(deadline time.Duration) error {
	k.stopped.Store(false)
	for !k.stopped.Load() {
		if k.maxEvents > 0 && k.executed >= k.maxEvents {
			return ErrBudget
		}
		ev := k.peek()
		if ev == nil || ev.at > deadline {
			// Idle until the deadline: move the cursor too, so the wheel
			// windows stay centred on the clock for future inserts. Safe
			// because nothing live remains at or before the deadline.
			if dt := int64(deadline) >> tickShift; k.curTick < dt {
				k.setTick(dt)
			}
			break
		}
		k.fire(ev)
	}
	if k.now < deadline {
		k.now = deadline
	}
	return nil
}

// RunFor advances the simulation by d of virtual time from now.
func (k *Kernel) RunFor(d time.Duration) error { return k.RunUntil(k.now + d) }

// Stop makes the innermost Run/RunUntil return after the current event.
// It is safe to call from another goroutine.
func (k *Kernel) Stop() { k.stopped.Store(true) }

// Pending returns the number of live (scheduled, non-cancelled) events.
func (k *Kernel) Pending() int { return k.live }

// fire delivers one event previously returned by peek (the ready-heap
// minimum). One-shot records are recycled before the callback runs, so the
// callback may immediately reuse the record by scheduling; periodic records
// are re-queued with a fresh sequence number after the callback, matching
// the ordering of the schedule-inside-the-callback idiom they replace.
func (k *Kernel) fire(ev *event) {
	heap.Pop(&k.ready)
	k.now = ev.at
	k.executed++
	if ev.period > 0 {
		ev.where = locFiring
		ev.fn()
		if ev.cancelled || ev.period <= 0 {
			k.recycle(ev) // cancelled from inside its own callback
			return
		}
		ev.at += ev.period
		ev.seq = k.seq
		k.seq++
		k.insert(ev)
		return
	}
	k.live--
	fn, h, arg := ev.fn, ev.h, ev.arg
	k.recycle(ev)
	if fn != nil {
		fn()
	} else {
		h(arg)
	}
}

// Stream returns an independent deterministic random stream for the given
// label (e.g. one per node, one for the workload). Streams derived from the
// same kernel seed and label are identical across runs, and distinct labels
// give uncorrelated streams (seed mixing via splitmix64). Repeated calls
// with the same label return the same stream object — the stream continues
// rather than restarting — so per-event callers pay a map hit, not a
// generator allocation.
func (k *Kernel) Stream(label uint64) *rand.Rand {
	if r, ok := k.streams[label]; ok {
		return r
	}
	r := rand.New(rand.NewSource(int64(mix64(uint64(k.seed) ^ mix64(label)))))
	k.streams[label] = r
	return r
}

// mix64 is the splitmix64 finaliser, a cheap strong bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
