package sim

import (
	"hash/fnv"
	"testing"
	"time"
)

// shardHarness is a miniature traffic generator over the sharded
// engine: M endpoints, partitioned across shards by ID range exactly
// like simrt partitions nodes, each driving a periodic timer that sends
// a datagram to a pseudo-random peer with latency ≥ the lookahead. The
// per-endpoint receive log digest is the determinism oracle: it is
// sensitive to the order in which same-instant datagrams arrive, which
// is exactly what the barrier merge must keep shard-count-invariant.
type shardHarness struct {
	s    *Sharded
	m    int
	sent []uint64 // per-endpoint send seq
	dig  []uint64 // per-endpoint receive-order digest
	rcvd []int
}

func shardOf(endpoint uint64, shards int) int {
	if shards == 1 {
		return 0
	}
	stride := ^uint64(0)/uint64(shards) + 1
	return int(endpoint / stride)
}

func newShardHarness(seed int64, shards, m int) *shardHarness {
	const lambda = 10 * time.Millisecond
	h := &shardHarness{
		s:    NewSharded(seed, shards, lambda),
		m:    m,
		sent: make([]uint64, m),
		dig:  make([]uint64, m),
		rcvd: make([]int, m),
	}
	h.s.SetExchange(func(shard int, k *Kernel, ev XEvent) {
		k.Post(ev.At-k.Now(), h.receive, ev)
	})
	for i := 0; i < m; i++ {
		ep := uint64(i) * (^uint64(0)/uint64(m) + 1) // spread across ID space
		sh := shardOf(ep, shards)
		k := h.s.Shard(sh)
		rng := k.Stream(ep)
		idx := i
		interval := time.Duration(1+idx%7) * 3 * time.Millisecond
		k.SchedulePeriodic(interval, func() {
			dest := rng.Intn(h.m)
			delay := lambda + time.Duration(rng.Int63n(int64(40*time.Millisecond)))
			h.send(idx, dest, delay)
		})
	}
	return h
}

func (h *shardHarness) endpointID(i int) uint64 {
	return uint64(i) * (^uint64(0)/uint64(h.m) + 1)
}

func (h *shardHarness) send(from, to int, delay time.Duration) {
	origin := h.endpointID(from)
	os := shardOf(origin, h.s.Shards())
	ds := shardOf(h.endpointID(to), h.s.Shards())
	seq := h.sent[from]
	h.sent[from]++
	h.s.Exchange(os, ds, XEvent{
		At:     h.s.Shard(os).Now() + delay,
		Origin: origin,
		Seq:    seq,
		To:     uint64(to),
		Size:   64,
	})
}

// receive folds one arrival into the destination's order-sensitive
// digest (runs on the destination shard's worker).
func (h *shardHarness) receive(arg interface{}) {
	ev := arg.(XEvent)
	to := int(ev.To)
	d := h.dig[to]
	d = d*1099511628211 ^ ev.Origin
	d = d*1099511628211 ^ ev.Seq
	d = d*1099511628211 ^ uint64(ev.At)
	h.dig[to] = d
	h.rcvd[to]++
}

func (h *shardHarness) digest() uint64 {
	f := fnv.New64a()
	var buf [8]byte
	for i := 0; i < h.m; i++ {
		for _, v := range []uint64{h.dig[i], uint64(h.rcvd[i]), h.sent[i]} {
			for b := 0; b < 8; b++ {
				buf[b] = byte(v >> (8 * b))
			}
			f.Write(buf[:])
		}
	}
	return f.Sum64()
}

// TestShardedDeterminismAcrossShardCounts is the kernel-level half of
// the equivalence oracle: the same seed must produce identical
// per-endpoint receive logs at every shard count.
func TestShardedDeterminismAcrossShardCounts(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		var want uint64
		for _, shards := range []int{1, 2, 4, 8} {
			h := newShardHarness(seed, shards, 24)
			if err := h.s.RunFor(2 * time.Second); err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			got := h.digest()
			h.s.Close()
			if shards == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("seed %d: digest at %d shards = %#x, want %#x (1 shard)", seed, shards, got, want)
			}
		}
	}
}

// TestShardedRunUntilSplitInvariance checks that reaching the same
// target through many small RunUntil calls (as the scenario engine
// does) produces the same state as one big call: split points only
// subdivide epochs, they never reorder events.
func TestShardedRunUntilSplitInvariance(t *testing.T) {
	one := newShardHarness(11, 4, 16)
	if err := one.s.RunFor(1 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer one.s.Close()

	many := newShardHarness(11, 4, 16)
	defer many.s.Close()
	rng := many.s.Stream(0xdead)
	for many.s.Now() < 1*time.Second {
		step := time.Duration(1 + rng.Int63n(int64(37*time.Millisecond)))
		target := many.s.Now() + step
		if target > 1*time.Second {
			target = 1 * time.Second
		}
		if err := many.s.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := many.digest(), one.digest(); got != want {
		t.Fatalf("split runs digest %#x, want %#x", got, want)
	}
}

// TestShardedBarrierEdgeDelivery pins the boundary case: an event due
// exactly on an epoch barrier is delivered exactly once, at its due
// time, with the destination clock agreeing.
func TestShardedBarrierEdgeDelivery(t *testing.T) {
	const lambda = 10 * time.Millisecond
	s := NewSharded(3, 2, lambda)
	defer s.Close()
	var got []time.Duration
	s.SetExchange(func(shard int, k *Kernel, ev XEvent) {
		k.Post(ev.At-k.Now(), func(interface{}) {
			got = append(got, k.Now())
		}, nil)
	})
	// From the control plane at t=0, an event due exactly at λ (the
	// first barrier) and one due just past it.
	s.Exchange(0, 1, XEvent{At: lambda, Origin: 1, Seq: 0, To: 2})
	s.Exchange(0, 1, XEvent{At: lambda + time.Millisecond, Origin: 1, Seq: 1, To: 2})
	if err := s.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != lambda || got[1] != lambda+time.Millisecond {
		t.Fatalf("deliveries at %v, want [%v %v]", got, lambda, lambda+time.Millisecond)
	}
	if s.Executed() != 2 {
		t.Fatalf("executed %d, want 2", s.Executed())
	}
}

// TestShardedInterrupt checks the wall-clock budget hook: Interrupt
// stops the run at a barrier short of the target, and after
// ClearInterrupt the engine resumes to completion with state intact.
func TestShardedInterrupt(t *testing.T) {
	h := newShardHarness(5, 2, 8)
	defer h.s.Close()
	h.s.Interrupt()
	if err := h.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.s.Now() != 0 {
		t.Fatalf("interrupted before start but advanced to %v", h.s.Now())
	}
	if !h.s.Interrupted() {
		t.Fatal("Interrupted() = false after Interrupt")
	}
	h.s.ClearInterrupt()
	if err := h.s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.s.Now() != time.Second {
		t.Fatalf("resumed run reached %v, want 1s", h.s.Now())
	}
	ref := newShardHarness(5, 2, 8)
	defer ref.s.Close()
	if err := ref.s.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if h.digest() != ref.digest() {
		t.Fatal("interrupt+resume diverged from uninterrupted run")
	}
}
