package nodeprof

import (
	"math/rand"
	"testing"
	"time"
)

func serverProfile() Profile {
	return Profile{CPUGHz: 8, MemoryMB: 16384, BandwidthKB: 12800,
		StorageGB: 500, Uptime: 45 * 24 * time.Hour, SysLoad: 0.1, NetLoad: 0.1}
}

func weakProfile() Profile {
	return Profile{CPUGHz: 1, MemoryMB: 512, BandwidthKB: 128,
		StorageGB: 10, Uptime: time.Hour, SysLoad: 0.9, NetLoad: 0.8}
}

func TestScoreBoundsAndOrdering(t *testing.T) {
	s := serverProfile().Score()
	w := weakProfile().Score()
	if s <= 0 || s > 1 || w < 0 || w > 1 {
		t.Fatalf("scores out of [0,1]: server=%v weak=%v", s, w)
	}
	if s <= w {
		t.Fatalf("server score %v must exceed weak score %v", s, w)
	}
	var zero Profile
	if z := zero.Score(); z < 0 || z > 1 {
		t.Errorf("zero profile score %v out of range", z)
	}
}

func TestScoreMonotoneInEachDimension(t *testing.T) {
	base := Profile{CPUGHz: 2, MemoryMB: 2048, BandwidthKB: 1024,
		StorageGB: 50, Uptime: 24 * time.Hour, SysLoad: 0.5, NetLoad: 0.5}
	s0 := base.Score()

	up := base
	up.CPUGHz = 4
	if up.Score() < s0 {
		t.Error("score must not decrease with more CPU")
	}
	up = base
	up.MemoryMB = 8192
	if up.Score() < s0 {
		t.Error("score must not decrease with more memory")
	}
	up = base
	up.BandwidthKB = 4096
	if up.Score() < s0 {
		t.Error("score must not decrease with more bandwidth")
	}
	up = base
	up.Uptime = 10 * 24 * time.Hour
	if up.Score() < s0 {
		t.Error("score must not decrease with more uptime")
	}
	up = base
	up.SysLoad = 0.9
	if up.Score() > s0 {
		t.Error("score must not increase with more system load")
	}
	up = base
	up.NetLoad = 0.9
	if up.Score() > s0 {
		t.Error("score must not increase with more network load")
	}
}

func TestElectionCountdownOrdering(t *testing.T) {
	min, max := 100*time.Millisecond, 2*time.Second
	s := serverProfile().ElectionCountdown(min, max, nil)
	w := weakProfile().ElectionCountdown(min, max, nil)
	if s >= w {
		t.Fatalf("stronger node must get shorter countdown: server=%v weak=%v", s, w)
	}
	if s < min || w > max {
		t.Fatalf("countdowns outside [min,max]: %v %v", s, w)
	}
}

func TestElectionCountdownJitterStaysBounded(t *testing.T) {
	min, max := 100*time.Millisecond, 2*time.Second
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		d := serverProfile().ElectionCountdown(min, max, rng)
		if d < min || d > max {
			t.Fatalf("jittered countdown %v outside bounds", d)
		}
	}
}

func TestElectionCountdownSwappedBounds(t *testing.T) {
	d := serverProfile().ElectionCountdown(2*time.Second, 100*time.Millisecond, nil)
	if d < 100*time.Millisecond || d > 2*time.Second {
		t.Fatalf("swapped bounds should be normalised, got %v", d)
	}
}

func TestDemotionCountdownOrdering(t *testing.T) {
	min, max := time.Second, 10*time.Second
	s := serverProfile().DemotionCountdown(min, max)
	w := weakProfile().DemotionCountdown(min, max)
	if s <= w {
		t.Fatalf("stronger node must get LONGER demotion countdown: server=%v weak=%v", s, w)
	}
}

func TestFixedPolicy(t *testing.T) {
	p := FixedPolicy{NC: 4}
	if p.MaxChildren(serverProfile()) != 4 || p.MaxChildren(weakProfile()) != 4 {
		t.Error("fixed policy must ignore the profile")
	}
	if p.Name() != "fixed-nc4" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestCapacityPolicy(t *testing.T) {
	p := CapacityPolicy{Min: 2, Max: 16}
	s := p.MaxChildren(serverProfile())
	w := p.MaxChildren(weakProfile())
	if s <= w {
		t.Fatalf("capacity policy must give stronger nodes more children: %d vs %d", s, w)
	}
	if w < 2 || s > 16 {
		t.Fatalf("children out of bounds: %d %d", w, s)
	}
	degenerate := CapacityPolicy{Min: 4, Max: 4}
	if degenerate.MaxChildren(serverProfile()) != 4 {
		t.Error("degenerate capacity policy should return Min")
	}
}

func TestProfileString(t *testing.T) {
	s := serverProfile().String()
	if s == "" {
		t.Error("String must not be empty")
	}
}
