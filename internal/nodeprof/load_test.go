package nodeprof

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestEWMAConvergesToConstant checks the core property the balancer
// relies on: feeding a constant load sample drives the average to that
// value geometrically, so profiles converge rather than oscillate.
func TestEWMAConvergesToConstant(t *testing.T) {
	for _, target := range []float64{0, 0.1, 0.5, 0.93, 1} {
		var e EWMA
		e.Observe(0.7) // arbitrary seed away from the target
		for i := 0; i < 64; i++ {
			e.Observe(target)
		}
		if d := math.Abs(e.Value() - target); d > 1e-6 {
			t.Errorf("EWMA after 64 samples of %.2f: value %.6f (off by %g)", target, e.Value(), d)
		}
	}
}

// TestEWMAStaysWithinSampleBounds: the average is a convex combination
// of its samples, so it can never leave [min(samples), max(samples)] —
// and in particular can never go negative or exceed 1, whatever the
// caller feeds it.
func TestEWMAStaysWithinSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		var e EWMA
		e.Alpha = rng.Float64() // includes 0 (→ default) and values near 1
		lo, hi := 1.0, 0.0
		for i := 0; i < 200; i++ {
			// Raw samples include out-of-range garbage; the estimator
			// clamps, so the effective sample range is within [0,1].
			s := rng.Float64()*4 - 2
			cl := s
			if cl < 0 {
				cl = 0
			}
			if cl > 1 {
				cl = 1
			}
			if cl < lo {
				lo = cl
			}
			if cl > hi {
				hi = cl
			}
			e.Observe(s)
			if v := e.Value(); v < lo-1e-12 || v > hi+1e-12 {
				t.Fatalf("trial %d sample %d: value %.6f outside sample bounds [%.6f, %.6f]",
					trial, i, v, lo, hi)
			}
			if v := e.Value(); v < 0 || v > 1 {
				t.Fatalf("trial %d: value %.6f outside [0,1]", trial, v)
			}
		}
	}
}

// TestEWMAReset checks the estimator re-seeds after Reset instead of
// blending new samples into forgotten history.
func TestEWMAReset(t *testing.T) {
	var e EWMA
	e.Observe(1)
	e.Reset()
	if e.Seeded() || e.Value() != 0 {
		t.Fatalf("after Reset: seeded=%v value=%v", e.Seeded(), e.Value())
	}
	e.Observe(0.25)
	if e.Value() != 0.25 {
		t.Fatalf("first post-reset sample should seed directly, got %v", e.Value())
	}
}

// TestProfileConvergesUnderChurn is the satellite's headline property:
// a node whose measured load fluctuates around a mean sees its
// effective score settle into a band around the steady-state score,
// never negative, never above the unloaded score. This is the
// stability statement that makes load-driven promotion safe — scores
// track load without thrashing.
func TestProfileConvergesUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := Profile{CPUGHz: 4, MemoryMB: 8192, BandwidthKB: 6400, StorageGB: 200, Uptime: 10 * 24 * time.Hour}
	unloaded := base.Score()
	steady := base.WithLoad(base.SysLoad, 0.5).Score()

	var e EWMA
	// Churn: noisy load samples with mean 0.5.
	for i := 0; i < 500; i++ {
		e.Observe(0.5 + (rng.Float64()-0.5)*0.4)
	}
	got := base.WithLoad(base.SysLoad, e.Value()).Score()
	if got < 0 || got > 1 {
		t.Fatalf("score %v outside [0,1]", got)
	}
	if got > unloaded {
		t.Fatalf("loaded score %v exceeds unloaded score %v", got, unloaded)
	}
	if d := math.Abs(got - steady); d > 0.05 {
		t.Fatalf("score %v did not converge near steady-state %v (off by %v)", got, steady, d)
	}
}

// TestClampNoNegativeCapacities: whatever garbage arrives, Clamp
// produces a profile whose every capacity is non-negative, loads are in
// [0,1], and Score stays in [0,1].
func TestClampNoNegativeCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		p := Profile{
			CPUGHz:      rng.Float64()*40 - 20,
			MemoryMB:    rng.Intn(1<<20) - 1<<19,
			BandwidthKB: rng.Intn(1<<20) - 1<<19,
			StorageGB:   rng.Intn(4096) - 2048,
			Uptime:      time.Duration(rng.Int63n(int64(100*24*time.Hour))) - 50*24*time.Hour,
			SysLoad:     rng.Float64()*6 - 3,
			NetLoad:     rng.Float64()*6 - 3,
		}.Clamp()
		if p.CPUGHz < 0 || p.MemoryMB < 0 || p.BandwidthKB < 0 || p.StorageGB < 0 || p.Uptime < 0 {
			t.Fatalf("negative capacity after Clamp: %+v", p)
		}
		if p.SysLoad < 0 || p.SysLoad > 1 || p.NetLoad < 0 || p.NetLoad > 1 {
			t.Fatalf("load outside [0,1] after Clamp: %+v", p)
		}
		if s := p.Score(); s < 0 || s > 1 {
			t.Fatalf("Score %v outside [0,1] for %+v", s, p)
		}
	}
}

// TestMergeProperties: Merge is commutative, idempotent on clamped
// profiles, and never invents capacity beyond the larger input.
func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randProfile := func() Profile {
		return Profile{
			CPUGHz:      rng.Float64() * 16,
			MemoryMB:    rng.Intn(65536),
			BandwidthKB: rng.Intn(100000),
			StorageGB:   rng.Intn(2000),
			Uptime:      time.Duration(rng.Int63n(int64(60 * 24 * time.Hour))),
			SysLoad:     rng.Float64(),
			NetLoad:     rng.Float64(),
		}
	}
	for i := 0; i < 300; i++ {
		a, b := randProfile(), randProfile()
		ab, ba := Merge(a, b), Merge(b, a)
		if ab != ba {
			t.Fatalf("Merge not commutative:\n a=%+v\n b=%+v\nab=%+v\nba=%+v", a, b, ab, ba)
		}
		if aa := Merge(a, a); aa != a.Clamp() {
			t.Fatalf("Merge not idempotent: a=%+v merge=%+v", a, aa)
		}
		if ab.CPUGHz > math.Max(a.CPUGHz, b.CPUGHz)+1e-12 {
			t.Fatalf("Merge invented CPU capacity: %v from %v, %v", ab.CPUGHz, a.CPUGHz, b.CPUGHz)
		}
		if ab.MemoryMB > max(a.MemoryMB, b.MemoryMB) {
			t.Fatalf("Merge invented memory: %v", ab.MemoryMB)
		}
		if s := ab.Score(); s < 0 || s > 1 {
			t.Fatalf("merged Score %v outside [0,1]", s)
		}
	}
}
