package nodeprof

import (
	"testing"
	"time"
)

// FuzzProfileMergeUpdate drives the profile update algebra — Clamp,
// WithLoad, Merge, EWMA — with arbitrary inputs and asserts the
// invariants every consumer (elections, demotions, child policies)
// depends on: no negative capacities, loads and scores confined to
// [0, 1], Merge commutative and closed over well-formed profiles.
func FuzzProfileMergeUpdate(f *testing.F) {
	f.Add(4.0, 8192, 6400, 200, int64(time.Hour), 0.3, 0.1,
		2.0, 2048, 1600, 50, int64(time.Minute), 0.9, 0.7, 0.5)
	f.Add(-1.0, -5, -5, -5, int64(-1), -2.0, 3.0,
		1e300, 1<<30, 1<<30, 1<<30, int64(1)<<62, 0.0, 0.0, -0.5)
	f.Add(0.0, 0, 0, 0, int64(0), 0.0, 0.0,
		0.0, 0, 0, 0, int64(0), 0.0, 0.0, 2.0)

	f.Fuzz(func(t *testing.T,
		cpuA float64, memA, bwA, stA int, upA int64, sysA, netA float64,
		cpuB float64, memB, bwB, stB int, upB int64, sysB, netB float64,
		load float64) {

		a := Profile{CPUGHz: cpuA, MemoryMB: memA, BandwidthKB: bwA,
			StorageGB: stA, Uptime: time.Duration(upA), SysLoad: sysA, NetLoad: netA}
		b := Profile{CPUGHz: cpuB, MemoryMB: memB, BandwidthKB: bwB,
			StorageGB: stB, Uptime: time.Duration(upB), SysLoad: sysB, NetLoad: netB}

		wellFormed := func(name string, p Profile) {
			t.Helper()
			if p.CPUGHz < 0 || p.MemoryMB < 0 || p.BandwidthKB < 0 || p.StorageGB < 0 || p.Uptime < 0 {
				t.Fatalf("%s: negative capacity: %+v", name, p)
			}
			if p.SysLoad < 0 || p.SysLoad > 1 || p.NetLoad < 0 || p.NetLoad > 1 {
				t.Fatalf("%s: load outside [0,1]: %+v", name, p)
			}
			if s := p.Score(); s < 0 || s > 1 || s != s {
				t.Fatalf("%s: score %v outside [0,1]: %+v", name, s, p)
			}
		}

		wellFormed("Clamp(a)", a.Clamp())
		wellFormed("Clamp(b)", b.Clamp())
		wellFormed("a.WithLoad", a.Clamp().WithLoad(sysA, load))

		m := Merge(a, b)
		wellFormed("Merge(a,b)", m)
		if m2 := Merge(b, a); m != m2 {
			t.Fatalf("Merge not commutative: %+v vs %+v", m, m2)
		}
		// Merging a profile into an already-merged pair must stay
		// well-formed (the runtime folds repeatedly).
		wellFormed("Merge(Merge(a,b),a)", Merge(m, a))

		var e EWMA
		e.Observe(load)
		e.Observe(sysA)
		e.Observe(netB)
		if v := e.Value(); v < 0 || v > 1 || v != v {
			t.Fatalf("EWMA value %v outside [0,1]", v)
		}
		wellFormed("WithLoad(EWMA)", a.Clamp().WithLoad(a.SysLoad, e.Value()))
	})
}
