package nodeprof

import (
	"testing"
	"time"
)

func TestGeneratorReproducible(t *testing.T) {
	g1 := NewGenerator(DefaultClasses(), 42)
	g2 := NewGenerator(DefaultClasses(), 42)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("iteration %d: same seed produced different profiles\n%v\n%v", i, a, b)
		}
	}
}

func TestGeneratorDifferentSeedsDiffer(t *testing.T) {
	g1 := NewGenerator(DefaultClasses(), 1)
	g2 := NewGenerator(DefaultClasses(), 2)
	same := 0
	for i := 0; i < 50; i++ {
		if g1.Next() == g2.Next() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical populations")
	}
}

func TestPopulationSizeAndValidity(t *testing.T) {
	g := NewGenerator(DefaultClasses(), 7)
	pop := g.Population(500)
	if len(pop) != 500 {
		t.Fatalf("population size %d", len(pop))
	}
	for i, p := range pop {
		if p.CPUGHz <= 0 || p.MemoryMB <= 0 || p.BandwidthKB <= 0 {
			t.Fatalf("profile %d has non-positive capacity: %v", i, p)
		}
		if p.SysLoad < 0 || p.SysLoad > 1 || p.NetLoad < 0 || p.NetLoad > 1 {
			t.Fatalf("profile %d has load outside [0,1]: %v", i, p)
		}
		if s := p.Score(); s < 0 || s > 1 {
			t.Fatalf("profile %d score %v out of range", i, s)
		}
	}
}

func TestDefaultMixtureIsSkewed(t *testing.T) {
	g := NewGenerator(DefaultClasses(), 99)
	pop := g.Population(3000)
	strong, weak := 0, 0
	for _, p := range pop {
		s := p.Score()
		if s > 0.7 {
			strong++
		}
		if s < 0.3 {
			weak++
		}
	}
	if strong == 0 {
		t.Error("expected some server-class peers")
	}
	if weak == 0 {
		t.Error("expected some weak peers")
	}
	if strong >= weak {
		t.Errorf("population should be bottom-heavy: strong=%d weak=%d", strong, weak)
	}
}

func TestUniformClassesAreHomogeneous(t *testing.T) {
	g := NewGenerator(UniformClasses(), 3)
	pop := g.Population(200)
	min, max := 1.0, 0.0
	for _, p := range pop {
		s := p.Score()
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 0.15 {
		t.Errorf("uniform population score spread too wide: [%v, %v]", min, max)
	}
}

func TestGeneratorFallsBackOnEmptyClasses(t *testing.T) {
	g := NewGenerator(nil, 1)
	p := g.Next()
	if p.CPUGHz <= 0 {
		t.Fatal("fallback generator produced invalid profile")
	}
	g2 := NewGenerator([]Class{{Name: "zero", Weight: 0}}, 1)
	if g2.Next().CPUGHz <= 0 {
		t.Fatal("all-zero-weight classes should fall back to uniform")
	}
}

func TestClassWeightsRespected(t *testing.T) {
	classes := []Class{
		{Name: "a", Weight: 0.9, Base: Profile{CPUGHz: 8, MemoryMB: 1024, BandwidthKB: 1024, StorageGB: 10, Uptime: time.Hour}},
		{Name: "b", Weight: 0.1, Base: Profile{CPUGHz: 1, MemoryMB: 1024, BandwidthKB: 1024, StorageGB: 10, Uptime: time.Hour}},
	}
	g := NewGenerator(classes, 4)
	highCPU := 0
	n := 2000
	for i := 0; i < n; i++ {
		if g.Next().CPUGHz > 4 {
			highCPU++
		}
	}
	frac := float64(highCPU) / float64(n)
	if frac < 0.8 || frac > 0.98 {
		t.Errorf("class a share %v, want ~0.9", frac)
	}
}
