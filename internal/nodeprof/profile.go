// Package nodeprof models the heterogeneous capabilities of peers.
//
// TreeP promotes nodes "based on the characteristics of the nodes such as:
// CPU, Memory, Bandwidth, network load, systems load, Uptime and Storage
// Space" (§III.a) and sizes election countdowns from the same
// characteristics (§III.b). The paper's evaluation additionally needs a
// *population* of such profiles with realistic skew; this package provides
// the profile struct, a scalar capability score, the fixed / capacity-driven
// maximum-children policies of §IV, and population generators that mirror
// measured P2P host heterogeneity (a small fraction of server-class peers,
// a long tail of weak ones).
package nodeprof

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Profile describes one peer's hardware and behaviour. Units are concrete
// so that generated populations read naturally in logs; only relative
// magnitudes matter to the protocol.
type Profile struct {
	CPUGHz      float64       // aggregate compute
	MemoryMB    int           // RAM
	BandwidthKB int           // access-link bandwidth, KB/s
	StorageGB   int           // shareable storage
	Uptime      time.Duration // observed cumulative uptime
	SysLoad     float64       // current system load in [0,1]
	NetLoad     float64       // current network utilisation in [0,1]
}

// String summarises the profile for logs.
func (p Profile) String() string {
	return fmt.Sprintf("cpu=%.1fGHz mem=%dMB bw=%dKB/s store=%dGB up=%s sys=%.2f net=%.2f",
		p.CPUGHz, p.MemoryMB, p.BandwidthKB, p.StorageGB, p.Uptime.Truncate(time.Minute), p.SysLoad, p.NetLoad)
}

// Reference values that map each dimension onto [0,1]. A peer at or above
// the reference counts as 1.0 in that dimension; the score saturates rather
// than letting one outlier dimension dominate.
const (
	refCPUGHz      = 8.0
	refMemoryMB    = 16384
	refBandwidthKB = 12800 // ~100 Mbit/s
	refStorageGB   = 500
	refUptime      = 30 * 24 * time.Hour
)

// Score collapses the profile into a single capability value in [0,1].
// Static capacity dimensions are averaged, then discounted by the current
// system and network load; uptime acts as a stability weight. The exact
// blend is not specified by the paper ("calculated according to the node
// characteristics"); this one is monotone in every dimension the paper
// lists, which is the property elections rely on.
func (p Profile) Score() float64 {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	static := (clamp(p.CPUGHz/refCPUGHz) +
		clamp(float64(p.MemoryMB)/refMemoryMB) +
		clamp(float64(p.BandwidthKB)/refBandwidthKB) +
		clamp(float64(p.StorageGB)/refStorageGB)) / 4
	stability := clamp(float64(p.Uptime) / float64(refUptime))
	loadFactor := 1 - (clamp(p.SysLoad)+clamp(p.NetLoad))/2
	// 60% raw capacity, 25% stability, and the whole thing scaled by the
	// head-room left under current load.
	return clamp((0.6*static + 0.25*stability + 0.15) * loadFactor)
}

// ElectionCountdown converts the score into the §III.b election countdown:
// "a node that has higher characteristics will have smaller countdown
// initial value". The countdown is linear between min and max; jitter
// breaks ties between identical profiles so elections stay leaderless.
func (p Profile) ElectionCountdown(min, max time.Duration, rng *rand.Rand) time.Duration {
	if max < min {
		min, max = max, min
	}
	span := float64(max - min)
	d := time.Duration(float64(min) + span*(1-p.Score()))
	if rng != nil && span > 0 {
		d += time.Duration(rng.Int63n(int64(span)/10 + 1))
	}
	if d < min {
		d = min
	}
	if d > max {
		d = max
	}
	return d
}

// DemotionCountdown is the reverse rule for parents with fewer than two
// children: "the higher is the characteristic the longer is the countdown",
// so strong nodes linger in upper levels and weak ones fall quickly.
func (p Profile) DemotionCountdown(min, max time.Duration) time.Duration {
	if max < min {
		min, max = max, min
	}
	span := float64(max - min)
	return time.Duration(float64(min) + span*p.Score())
}

// ChildPolicy determines a parent's maximum number of children nc. §IV
// evaluates two cases: nc fixed to 4, and nc "defined according to the
// nodes capabilities such as CPU, Memory, bandwidth".
type ChildPolicy interface {
	// MaxChildren returns nc for a node with the given profile.
	MaxChildren(p Profile) int
	// Name identifies the policy in experiment output.
	Name() string
}

// FixedPolicy always returns NC (the paper's first case, NC = 4).
type FixedPolicy struct{ NC int }

// MaxChildren implements ChildPolicy.
func (f FixedPolicy) MaxChildren(Profile) int { return f.NC }

// Name implements ChildPolicy.
func (f FixedPolicy) Name() string { return fmt.Sprintf("fixed-nc%d", f.NC) }

// CapacityPolicy scales nc with the capability score between Min and Max
// (the paper's second case). With Min=2, Max=16 a median desktop gets ~6
// children and a server-class peer the full 16, flattening the hierarchy
// exactly as §IV.b describes.
type CapacityPolicy struct {
	Min, Max int
}

// MaxChildren implements ChildPolicy.
func (c CapacityPolicy) MaxChildren(p Profile) int {
	if c.Max <= c.Min {
		return c.Min
	}
	nc := c.Min + int(math.Round(p.Score()*float64(c.Max-c.Min)))
	if nc < c.Min {
		nc = c.Min
	}
	if nc > c.Max {
		nc = c.Max
	}
	return nc
}

// Name implements ChildPolicy.
func (c CapacityPolicy) Name() string { return fmt.Sprintf("capacity-nc%d..%d", c.Min, c.Max) }
