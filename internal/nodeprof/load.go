package nodeprof

// load.go holds the dynamic side of node profiling: an EWMA load
// estimator the overlay feeds with observed message rates, and the
// clamp/merge algebra that keeps profiles well-formed as they are
// updated at runtime. The static Profile describes what a node *could*
// do; the estimator tracks what it is currently being asked to do, and
// WithLoad folds the two into the effective profile that drives
// promotion, demotion and child-capacity decisions.

// EWMA is an exponentially weighted moving average over load samples in
// [0, 1]. The zero value is usable: the first observation seeds the
// average directly (no bias toward zero), later ones decay with Alpha.
type EWMA struct {
	// Alpha is the smoothing factor in (0, 1]; zero means DefaultAlpha.
	Alpha float64

	value  float64
	seeded bool
}

// DefaultAlpha smooths over roughly the last 1/0.25 = 4 observations —
// fast enough to track a flash crowd arriving within a few sweep
// periods, slow enough that a single bursty sweep does not flip a
// node's score.
const DefaultAlpha = 0.25

// Observe folds one load sample into the average. Samples are clamped
// to [0, 1] first, so the average can never leave the unit interval no
// matter what the caller measured.
func (e *EWMA) Observe(sample float64) {
	sample = clamp01(sample)
	if !e.seeded {
		e.value = sample
		e.seeded = true
		return
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = DefaultAlpha
	}
	e.value += a * (sample - e.value)
}

// Value returns the current average, always in [0, 1].
func (e *EWMA) Value() float64 { return e.value }

// Seeded reports whether Observe has run at least once.
func (e *EWMA) Seeded() bool { return e.seeded }

// Reset forgets all observations; the next Observe re-seeds.
func (e *EWMA) Reset() {
	e.value = 0
	e.seeded = false
}

// Clamp returns the profile with every field forced into its legal
// range: capacities non-negative, load factors in [0, 1]. Profiles
// cross the runtime as plain structs, so any arithmetic that could
// overshoot (merge, load updates, fuzzed inputs) runs through Clamp
// before the result is scored.
func (p Profile) Clamp() Profile {
	if p.CPUGHz < 0 {
		p.CPUGHz = 0
	}
	if p.MemoryMB < 0 {
		p.MemoryMB = 0
	}
	if p.BandwidthKB < 0 {
		p.BandwidthKB = 0
	}
	if p.StorageGB < 0 {
		p.StorageGB = 0
	}
	if p.Uptime < 0 {
		p.Uptime = 0
	}
	p.SysLoad = clamp01(p.SysLoad)
	p.NetLoad = clamp01(p.NetLoad)
	return p
}

// WithLoad returns the profile with its load factors replaced by the
// given observations (clamped to [0, 1]). The static load fields
// describe the node's background occupancy at configuration time;
// WithLoad is how the runtime overrides them with what it measures.
func (p Profile) WithLoad(sys, net float64) Profile {
	p.SysLoad = clamp01(sys)
	p.NetLoad = clamp01(net)
	return p
}

// Merge combines two observations of the same node's profile into one:
// capacity dimensions take the maximum (a capability once demonstrated
// is real — a smaller later reading reflects contention, which the
// load factors carry), uptime takes the maximum for the same reason,
// and load factors average (two samples of a fluctuating quantity).
// The result is clamped, so merging well-formed profiles is closed
// over well-formed profiles, and Merge is commutative.
func Merge(a, b Profile) Profile {
	return Profile{
		CPUGHz:      maxf(a.CPUGHz, b.CPUGHz),
		MemoryMB:    maxi(a.MemoryMB, b.MemoryMB),
		BandwidthKB: maxi(a.BandwidthKB, b.BandwidthKB),
		StorageGB:   maxi(a.StorageGB, b.StorageGB),
		Uptime:      maxi(a.Uptime, b.Uptime),
		SysLoad:     (clamp01(a.SysLoad) + clamp01(b.SysLoad)) / 2,
		NetLoad:     (clamp01(a.NetLoad) + clamp01(b.NetLoad)) / 2,
	}.Clamp()
}

func maxf(a, b float64) float64 {
	if a != a {
		a = 0
	}
	if b != b {
		b = 0
	}
	if a > b {
		return a
	}
	return b
}

func maxi[T ~int | ~int64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
