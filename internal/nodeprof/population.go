package nodeprof

import (
	"math/rand"
	"time"
)

// Class is a band of the peer population with similar hardware. Measured
// P2P populations (e.g. the Napster/Gnutella host studies the paper cites)
// are strongly skewed: a few well-provisioned, long-lived hosts and a large
// mass of weak, transient ones. Populations are described as a mixture of
// classes.
type Class struct {
	Name string
	// Weight is the relative share of peers drawn from this class.
	Weight float64
	// Base profile for the class; individual peers jitter around it.
	Base Profile
	// Jitter is the maximum relative perturbation (±) applied per dimension.
	Jitter float64
}

// DefaultClasses is a three-band mixture: server-class peers (5%),
// desktops (35%), and weak transient peers (60%). The shares follow the
// shape (not the exact numbers) of the host-measurement studies in the
// paper's references.
func DefaultClasses() []Class {
	return []Class{
		{
			Name:   "server",
			Weight: 0.05,
			Base: Profile{
				CPUGHz: 8, MemoryMB: 16384, BandwidthKB: 12800,
				StorageGB: 500, Uptime: 45 * 24 * time.Hour,
				SysLoad: 0.2, NetLoad: 0.2,
			},
			Jitter: 0.2,
		},
		{
			Name:   "desktop",
			Weight: 0.35,
			Base: Profile{
				CPUGHz: 3, MemoryMB: 4096, BandwidthKB: 2560,
				StorageGB: 120, Uptime: 7 * 24 * time.Hour,
				SysLoad: 0.4, NetLoad: 0.35,
			},
			Jitter: 0.35,
		},
		{
			Name:   "transient",
			Weight: 0.60,
			Base: Profile{
				CPUGHz: 1.5, MemoryMB: 1024, BandwidthKB: 640,
				StorageGB: 20, Uptime: 8 * time.Hour,
				SysLoad: 0.6, NetLoad: 0.5,
			},
			Jitter: 0.5,
		},
	}
}

// UniformClasses is a homogeneous population (every peer a mid-range
// desktop); useful as a control in ablations.
func UniformClasses() []Class {
	return []Class{{
		Name:   "uniform",
		Weight: 1,
		Base: Profile{
			CPUGHz: 3, MemoryMB: 4096, BandwidthKB: 2560,
			StorageGB: 120, Uptime: 7 * 24 * time.Hour,
			SysLoad: 0.4, NetLoad: 0.4,
		},
		Jitter: 0.05,
	}}
}

// Generator draws peer profiles from a class mixture with a private RNG so
// populations are reproducible from a seed.
type Generator struct {
	classes []Class
	total   float64
	rng     *rand.Rand
}

// NewGenerator builds a Generator over the given classes. Classes with
// non-positive weight are ignored; an empty (or fully ignored) class list
// falls back to UniformClasses.
func NewGenerator(classes []Class, seed int64) *Generator {
	kept := make([]Class, 0, len(classes))
	total := 0.0
	for _, c := range classes {
		if c.Weight > 0 {
			kept = append(kept, c)
			total += c.Weight
		}
	}
	if len(kept) == 0 {
		kept = UniformClasses()
		total = kept[0].Weight
	}
	return &Generator{classes: kept, total: total, rng: rand.New(rand.NewSource(seed))}
}

// Next draws one profile.
func (g *Generator) Next() Profile {
	c := g.pick()
	j := func(v float64) float64 {
		if c.Jitter <= 0 {
			return v
		}
		f := 1 + (g.rng.Float64()*2-1)*c.Jitter
		if f < 0.05 {
			f = 0.05
		}
		return v * f
	}
	p := Profile{
		CPUGHz:      j(c.Base.CPUGHz),
		MemoryMB:    int(j(float64(c.Base.MemoryMB))),
		BandwidthKB: int(j(float64(c.Base.BandwidthKB))),
		StorageGB:   int(j(float64(c.Base.StorageGB))),
		Uptime:      time.Duration(j(float64(c.Base.Uptime))),
		SysLoad:     clamp01(j(c.Base.SysLoad)),
		NetLoad:     clamp01(j(c.Base.NetLoad)),
	}
	return p
}

// Population draws n profiles.
func (g *Generator) Population(n int) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func (g *Generator) pick() Class {
	r := g.rng.Float64() * g.total
	acc := 0.0
	for _, c := range g.classes {
		acc += c.Weight
		if r < acc {
			return c
		}
	}
	return g.classes[len(g.classes)-1]
}

func clamp01(v float64) float64 {
	if v < 0 || v != v { // NaN guard: a poisoned sample must not stick
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
