package svc

import (
	"errors"
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/proto"
	"treep/internal/simrt"
)

// echoHandler registers a DHTFetch→DHTFetchReply echo on a plane: the
// reply's Version carries back the request's Key so tests can check the
// right request reached the right handler.
func echoHandler(p *Plane) {
	p.Handle(proto.TDHTFetch, func(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
		f := req.(*proto.DHTFetch)
		respond(&proto.DHTFetchReply{Found: true, Version: uint64(f.Key)})
	})
	p.ExpectResponse(proto.TDHTFetchReply)
}

func planeCluster(t *testing.T, n int, seed int64, netOpts ...netsim.Option) (*simrt.Cluster, []*Plane) {
	t.Helper()
	c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true, NetOpts: netOpts})
	planes := make([]*Plane, n)
	for i, nd := range c.Nodes {
		planes[i] = Attach(nd)
		echoHandler(planes[i])
	}
	c.StartAll()
	c.Run(4 * time.Second)
	return c, planes
}

func TestCallRoundTrip(t *testing.T) {
	c, planes := planeCluster(t, 20, 1)
	var got proto.SvcResponse
	var err error
	done := false
	to := c.Nodes[7].Addr()
	planes[0].Call(to, &proto.DHTFetch{Key: 42}, CallOpts{}, func(r proto.SvcResponse, e error) {
		got, err, done = r, e, true
	})
	c.Run(2 * time.Second)
	if !done || err != nil {
		t.Fatalf("call: done=%v err=%v", done, err)
	}
	if rep, ok := got.(*proto.DHTFetchReply); !ok || rep.Version != 42 {
		t.Fatalf("wrong response %#v", got)
	}
	if planes[7].Stats.Served != 1 {
		t.Fatalf("server Served=%d", planes[7].Stats.Served)
	}
}

func TestCallLocalFastPath(t *testing.T) {
	_, planes := planeCluster(t, 4, 2)
	done := false
	planes[1].Call(planes[1].Node().Addr(), &proto.DHTFetch{Key: 9}, CallOpts{},
		func(r proto.SvcResponse, e error) {
			if e != nil || r.(*proto.DHTFetchReply).Version != 9 {
				t.Fatalf("local call: %v %#v", e, r)
			}
			done = true
		})
	// Local dispatch is synchronous: no virtual time needed.
	if !done {
		t.Fatal("local call did not complete synchronously")
	}
}

func TestCallTimeoutOnDeadPeer(t *testing.T) {
	c, planes := planeCluster(t, 10, 3)
	dead := c.Nodes[5]
	c.Kill(dead)
	var err error
	done := false
	planes[0].Call(dead.Addr(), &proto.DHTFetch{Key: 1}, CallOpts{Timeout: time.Second},
		func(_ proto.SvcResponse, e error) { err = e; done = true })
	c.Run(3 * time.Second)
	if !done || !errors.Is(err, ErrTimeout) {
		t.Fatalf("done=%v err=%v", done, err)
	}
	if planes[0].Pending() != 0 {
		t.Fatalf("pending leak: %d", planes[0].Pending())
	}
}

func TestCallRetriesThroughLoss(t *testing.T) {
	// 40% datagram loss: a single attempt fails often, four retries almost
	// never do (the response can be lost too, hence the generous budget).
	c, planes := planeCluster(t, 12, 4, netsim.WithLoss(0.4))
	to := c.Nodes[8].Addr()
	ok := 0
	const calls = 20
	for i := 0; i < calls; i++ {
		planes[2].Call(to, &proto.DHTFetch{Key: idspace.ID(i)}, CallOpts{Timeout: 500 * time.Millisecond, Retries: 4},
			func(r proto.SvcResponse, e error) {
				if e == nil {
					ok++
				}
			})
		c.Run(4 * time.Second)
	}
	if ok < calls*3/4 {
		t.Fatalf("only %d/%d calls survived 40%% loss with retries", ok, calls)
	}
	if planes[2].Stats.Retries == 0 {
		t.Fatal("no retries recorded under 40% loss")
	}
}

func TestCallKeyResolvesOwner(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, planes := planeCluster(t, 100, 5)
	// Use a node's own coordinate so the expected owner is unambiguous.
	target := c.Nodes[60].ID()
	var owner proto.NodeRef
	var err error
	done := false
	planes[3].CallKey(target, proto.AlgoG, &proto.DHTFetch{Key: target}, CallOpts{},
		func(o proto.NodeRef, r proto.SvcResponse, e error) { owner, err, done = o, e, true })
	c.Run(4 * time.Second)
	if !done || err != nil {
		t.Fatalf("callkey: done=%v err=%v", done, err)
	}
	if owner.ID != target {
		t.Fatalf("owner %v, want %v", owner.ID, target)
	}
}

func TestCallKeyLocalOwner(t *testing.T) {
	c, planes := planeCluster(t, 10, 6)
	// A node's own ID resolves to itself: the call must serve locally.
	self := c.Nodes[2].ID()
	done := false
	planes[2].CallKey(self, proto.AlgoG, &proto.DHTFetch{Key: self}, CallOpts{},
		func(o proto.NodeRef, r proto.SvcResponse, e error) {
			if e != nil || o.Addr != c.Nodes[2].Addr() {
				t.Fatalf("local owner: %v %v", o, e)
			}
			done = true
		})
	c.Run(2 * time.Second)
	if !done {
		t.Fatal("callkey never resolved")
	}
}

func TestNoHandlerError(t *testing.T) {
	c, planes := planeCluster(t, 4, 7)
	var err error
	// DHTStore has no registered handler in this test fixture; a local
	// call reports ErrNoHandler immediately.
	planes[0].Call(c.Nodes[0].Addr(), &proto.DHTStore{Key: 1}, CallOpts{},
		func(_ proto.SvcResponse, e error) { err = e })
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err=%v", err)
	}
}

func TestAsyncHandlerResponds(t *testing.T) {
	c, planes := planeCluster(t, 8, 8)
	// Re-register node 5's fetch handler to answer after a delay, as a
	// handler that consults other nodes would.
	nd := c.Nodes[5]
	planes[5].Handle(proto.TDHTFetch, func(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
		key := req.(*proto.DHTFetch).Key // copy before going async
		nd.SetTimer(700*time.Millisecond, func() {
			respond(&proto.DHTFetchReply{Found: true, Version: uint64(key)})
		})
	})
	done := false
	planes[1].Call(nd.Addr(), &proto.DHTFetch{Key: 77}, CallOpts{Timeout: 2 * time.Second},
		func(r proto.SvcResponse, e error) {
			if e != nil || r.(*proto.DHTFetchReply).Version != 77 {
				t.Fatalf("async response: %v %#v", e, r)
			}
			done = true
		})
	c.Run(3 * time.Second)
	if !done {
		t.Fatal("async handler response never arrived")
	}
}

func TestLateResponseAbsorbed(t *testing.T) {
	c, planes := planeCluster(t, 8, 9)
	nd := c.Nodes[4]
	// Answer after the caller's deadline: the caller must see exactly one
	// callback (the timeout), and the late response must be dropped.
	planes[4].Handle(proto.TDHTFetch, func(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
		nd.SetTimer(2*time.Second, func() {
			respond(&proto.DHTFetchReply{Found: true})
		})
	})
	fired := 0
	var firstErr error
	planes[0].Call(nd.Addr(), &proto.DHTFetch{Key: 3}, CallOpts{Timeout: 500 * time.Millisecond},
		func(_ proto.SvcResponse, e error) {
			fired++
			if fired == 1 {
				firstErr = e
			}
		})
	c.Run(5 * time.Second)
	if fired != 1 || !errors.Is(firstErr, ErrTimeout) {
		t.Fatalf("fired=%d err=%v", fired, firstErr)
	}
}
