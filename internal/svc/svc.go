// Package svc is the generic service plane: overlay-routed request /
// response plumbing for layered services (the DHT, discovery, anything
// built on top of the overlay).
//
// Before this plane existed every service hand-rolled the same machinery —
// a pending-operation map, request id allocation, a timeout timer per
// in-flight exchange — and none of them retried, so a single lost datagram
// failed the operation. The plane centralises that once, per node:
//
//   - a typed handler registry hanging off core.Node's extension slot:
//     services register a handler per request message type and the plane
//     dispatches inbound requests to it, stamping the response's id and
//     sender automatically;
//   - Call: a direct request to a known address with a per-attempt
//     deadline and bounded retries (UDP loses datagrams; requests are
//     idempotent or receiver-deduplicated by design);
//   - CallKey: resolve the overlay owner of a coordinate via the §III.f
//     lookup, then Call it — re-resolving on every retry, because under
//     churn the owner may have changed between attempts. When the lookup
//     resolves to the local node the request is dispatched to the local
//     handler through the same code path, so services behave identically
//     whether the key lands on the caller or across the network.
//
// Like core.Node, a Plane is single-threaded: all methods and callbacks
// run on the node's event loop.
package svc

import (
	"errors"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
)

// Errors delivered to Call/CallKey callbacks.
var (
	// ErrLookupFailed: the overlay could not resolve the key's owner.
	ErrLookupFailed = errors.New("svc: owner lookup failed")
	// ErrTimeout: no response arrived within the deadline, all retries
	// included.
	ErrTimeout = errors.New("svc: request timed out")
	// ErrNoHandler: the (possibly local) destination has no handler
	// registered for the request type.
	ErrNoHandler = errors.New("svc: no handler for request type")
)

// Handler serves one request type. It must call respond exactly once —
// synchronously or later (a handler may itself issue Calls before
// answering). Responding nil drops the request silently: the caller times
// out and retries, which is the correct reaction when the handler cannot
// answer authoritatively. The plane stamps the response's id and sender;
// handlers fill only their own fields.
//
// A handler that answers asynchronously must copy what it needs out of req
// before returning: pooled request messages are recycled when the
// delivering datagram ends (see proto.Recyclable), so retaining req or any
// slice it carries past the handler's own frame is a use-after-recycle.
type Handler func(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse))

// CallOpts bounds one logical request.
type CallOpts struct {
	// Timeout is the per-attempt deadline (default 2s).
	Timeout time.Duration
	// Retries is how many times a timed-out attempt is re-sent before the
	// caller sees ErrTimeout (default 0: single attempt).
	Retries int
}

func (o CallOpts) withDefaults() CallOpts {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// Stats counts service-plane events on one node.
type Stats struct {
	CallsStarted uint64
	Responses    uint64
	Retries      uint64
	Timeouts     uint64
	Served       uint64 // requests dispatched to a local handler
	Unhandled    uint64 // inbound requests with no registered handler
}

type call struct {
	timer   core.Timer
	cb      func(proto.SvcResponse, error)
	resend  func()
	retries int
}

// Plane is one node's service plane. Create with Attach; all methods must
// run on the node's event loop.
type Plane struct {
	node *core.Node

	// handlers is indexed by request MsgType; respTypes marks the message
	// types matched against the pending-call table.
	handlers  map[proto.MsgType]Handler
	respTypes map[proto.MsgType]bool

	pending map[uint64]*call
	nextID  uint64

	// next receives messages the plane does not consume, preserving the
	// one-extension-per-node contract for services that bypass the plane.
	next func(from uint64, msg proto.Message) bool

	// Stats counters.
	Stats Stats
}

// Attach creates the plane and installs it in the node's extension slot,
// replacing whatever extension was installed before. A caller that wants
// its own extension to keep receiving the messages the plane does not
// consume must chain it explicitly with SetNext.
func Attach(n *core.Node) *Plane {
	p := &Plane{
		node:      n,
		handlers:  map[proto.MsgType]Handler{},
		respTypes: map[proto.MsgType]bool{},
		pending:   map[uint64]*call{},
	}
	n.SetExtension(p.handle)
	return p
}

// Node returns the underlying TreeP node.
func (p *Plane) Node() *core.Node { return p.node }

// SetNext chains a fallback extension for messages the plane ignores.
func (p *Plane) SetNext(fn func(from uint64, msg proto.Message) bool) { p.next = fn }

// Handle registers the handler for one request message type. Last
// registration wins; services own disjoint type sets by construction.
func (p *Plane) Handle(t proto.MsgType, h Handler) { p.handlers[t] = h }

// ExpectResponse declares a message type to be a response: inbound
// messages of this type are matched against the pending-call table by
// SvcID instead of being dispatched to a handler.
func (p *Plane) ExpectResponse(t proto.MsgType) { p.respTypes[t] = true }

// Pending returns the number of in-flight calls (tests and shutdown
// diagnostics).
func (p *Plane) Pending() int { return len(p.pending) }

// Call sends req to a known overlay address and invokes cb exactly once
// with the response or an error. The request id is assigned here; retries
// re-send with the same id, so duplicate responses are absorbed by the
// pending-table delete and receivers can deduplicate re-applied requests.
// A local destination dispatches to the local handler directly.
func (p *Plane) Call(to uint64, req proto.SvcRequest, o CallOpts, cb func(proto.SvcResponse, error)) {
	p.nextID++
	p.callWithID(p.nextID, to, req, o, cb)
}

// callWithID is Call with a caller-chosen request id: CallKey keeps one id
// across its re-resolved attempts so the (eventual) owner can recognise a
// retried request whose earlier ack was lost.
func (p *Plane) callWithID(id, to uint64, req proto.SvcRequest, o CallOpts, cb func(proto.SvcResponse, error)) {
	o = o.withDefaults()
	p.Stats.CallsStarted++
	req.SetSvc(id, p.node.Ref())

	if to == p.node.Addr() || to == 0 {
		p.serveLocal(req, cb)
		return
	}

	c := &call{cb: cb, retries: o.Retries}
	c.resend = func() { p.node.Send(to, req) }
	p.pending[id] = c
	p.armAttempt(id, c, o.Timeout)
	c.resend()
}

// CallKey resolves the overlay owner of key and Calls it. Every retry
// re-runs the lookup: under churn the owner of a coordinate changes, and
// re-sending to a dead owner would burn the whole retry budget on a node
// that can no longer answer. A failed lookup also consumes a retry, after
// a short backoff — mid-churn lookup failures are transient (the overlay
// repairs on its keep-alive cadence) and an immediate re-lookup would hit
// the same stale tables. cb receives the owner that answered alongside the
// response.
func (p *Plane) CallKey(key idspace.ID, algo proto.Algo, req proto.SvcRequest, o CallOpts,
	cb func(proto.NodeRef, proto.SvcResponse, error)) {
	o = o.withDefaults()
	// One id for the whole logical operation: every attempt — even against
	// a re-resolved owner — carries it, so a receiver that already applied
	// the request replays its recorded answer instead of re-applying.
	p.nextID++
	id := p.nextID
	attempt := 0
	var try func()
	try = func() {
		p.node.Lookup(key, algo, func(r core.LookupResult) {
			if r.Status != core.LookupFound {
				if attempt < o.Retries {
					attempt++
					p.Stats.Retries++
					p.node.SetTimer(o.Timeout/2, try)
					return
				}
				cb(proto.NodeRef{}, nil, ErrLookupFailed)
				return
			}
			owner := r.Best
			p.callWithID(id, owner.Addr, req, CallOpts{Timeout: o.Timeout}, func(resp proto.SvcResponse, err error) {
				if err == nil {
					cb(owner, resp, nil)
					return
				}
				if attempt < o.Retries {
					attempt++
					p.Stats.Retries++
					try()
					return
				}
				cb(owner, nil, err)
			})
		})
	}
	try()
}

// armAttempt schedules the deadline for one attempt of call id.
func (p *Plane) armAttempt(id uint64, c *call, timeout time.Duration) {
	c.timer = p.node.SetTimer(timeout, func() {
		if _, ok := p.pending[id]; !ok {
			return
		}
		if c.retries > 0 {
			c.retries--
			p.Stats.Retries++
			p.armAttempt(id, c, timeout)
			c.resend()
			return
		}
		delete(p.pending, id)
		p.Stats.Timeouts++
		c.cb(nil, ErrTimeout)
	})
}

// serveLocal dispatches a request whose owner is this node to the local
// handler, keeping local and remote keys on one code path. The response is
// recycled after the callback returns — exactly what the network does at
// end-of-datagram on the remote path — so callbacks must copy anything
// they keep (the same contract they already obey for remote responses).
func (p *Plane) serveLocal(req proto.SvcRequest, cb func(proto.SvcResponse, error)) {
	h, ok := p.handlers[req.Type()]
	if !ok {
		cb(nil, ErrNoHandler)
		return
	}
	p.Stats.Served++
	h(p.node.Addr(), req, func(resp proto.SvcResponse) {
		if resp == nil {
			cb(nil, ErrTimeout)
			return
		}
		resp.SetSvc(req.SvcID(), p.node.Ref())
		cb(resp, nil)
		if r, ok := resp.(proto.Recyclable); ok {
			r.Recycle()
		}
	})
}

// handle is the node-extension hook: responses match pending calls,
// requests dispatch to their registered handler.
func (p *Plane) handle(from uint64, msg proto.Message) bool {
	t := msg.Type()
	if p.respTypes[t] {
		resp, ok := msg.(proto.SvcResponse)
		if !ok {
			return false
		}
		c, ok := p.pending[resp.SvcID()]
		if !ok {
			return true // duplicate or late response
		}
		delete(p.pending, resp.SvcID())
		if c.timer != nil {
			c.timer.Cancel()
		}
		p.Stats.Responses++
		c.cb(resp, nil)
		return true
	}
	if h, ok := p.handlers[t]; ok {
		req, isReq := msg.(proto.SvcRequest)
		if !isReq {
			return false
		}
		p.Stats.Served++
		id := req.SvcID()
		h(from, req, func(resp proto.SvcResponse) {
			if resp == nil {
				return
			}
			resp.SetSvc(id, p.node.Ref())
			p.node.Send(from, resp)
		})
		return true
	}
	if _, isReq := msg.(proto.SvcRequest); isReq {
		p.Stats.Unhandled++
	}
	if p.next != nil {
		return p.next(from, msg)
	}
	return false
}
