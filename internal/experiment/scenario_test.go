package experiment

import (
	"testing"
	"time"

	"treep/internal/proto"
	"treep/internal/scenario"
)

func TestRunScenarioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	res := RunScenario(ScenarioOptions{
		N:     150,
		Seeds: []int64{1, 2},
		Phases: []scenario.Phase{
			scenario.Churn{For: 10 * time.Second, JoinRate: 2, LeaveRate: 2},
			scenario.Settle{For: 12 * time.Second},
		},
		LookupsPerPhase: 30,
	})
	if len(res.Trials) != 2 {
		t.Fatalf("trials %d", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if len(tr.Steps) != 2 {
			t.Fatalf("steps %d, want 2", len(tr.Steps))
		}
		if tr.Result.Joins == 0 || tr.Result.Leaves == 0 {
			t.Fatalf("seed %d: churn injected nothing (%d joins, %d leaves)",
				tr.Seed, tr.Result.Joins, tr.Result.Leaves)
		}
		final := tr.Steps[len(tr.Steps)-1]
		if final.Phase != "settle" {
			t.Fatalf("final phase %q", final.Phase)
		}
		if final.Violations != 0 {
			t.Fatalf("seed %d: %d invariant violations after settle", tr.Seed, final.Violations)
		}
		a := final.PerAlgo[proto.AlgoG]
		if a == nil || a.Found+a.Failed() != 30 {
			t.Fatalf("seed %d: lookups unaccounted: %+v", tr.Seed, a)
		}
	}
	// Aggregations cover every phase boundary.
	if s := res.FailRateByPhase(proto.AlgoG); len(s.Y) != 2 {
		t.Fatalf("fail series %v", s.Y)
	}
	if s := res.ViolationsByPhase(); len(s.Y) != 2 {
		t.Fatalf("violation series %v", s.Y)
	}
}

func TestRunScenarioDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	opts := ScenarioOptions{
		N:     120,
		Seeds: []int64{7},
		Phases: []scenario.Phase{
			scenario.FlashCrowd{Joins: 20, Over: 3 * time.Second},
			scenario.Settle{For: 8 * time.Second},
		},
		LookupsPerPhase: 20,
	}
	a, b := RunScenario(opts), RunScenario(opts)
	sa, sb := a.Trials[0].Steps, b.Trials[0].Steps
	for i := range sa {
		ga, gb := sa[i].PerAlgo[proto.AlgoG], sb[i].PerAlgo[proto.AlgoG]
		if sa[i].Alive != sb[i].Alive || ga.Found != gb.Found || ga.Failed() != gb.Failed() {
			t.Fatalf("phase %d diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}
