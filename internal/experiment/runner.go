// Package experiment reproduces the TreeP paper's evaluation (§IV) and
// extends it: the kill sweep that drives Figures A–I (RunKillSweep), the
// analytic checks of §III.e (height law, routing-table sizes), the
// ablations documented in DESIGN.md, the scripted-scenario experiments
// (RunScenario), and the cross-protocol comparative runner (RunCompare)
// that plays TreeP, Chord and flooding through identical scenario
// scripts from identical seeds. Each trial is an independent
// deterministic simulation; trials run concurrently on a worker pool.
package experiment

import (
	"runtime"
	"sync"
	"time"

	"treep/internal/core"
	"treep/internal/metrics"
	"treep/internal/netsim"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
	"treep/internal/simrt"
)

// Options configures a kill sweep (§IV: "we randomly disconnected some
// nodes at a rate of 5% ... until the number of the remaining nodes
// reached a threshold of 5% of the initial topology").
type Options struct {
	// N is the network size.
	N int
	// Seeds: one deterministic trial per seed.
	Seeds []int64
	// Algos are the lookup algorithms measured each step.
	Algos []proto.Algo
	// Policy is the max-children policy (fixed nc=4 vs capacity-driven —
	// the paper's two cases). Nil means fixed nc=4.
	Policy nodeprof.ChildPolicy
	// Model overrides the routing distance model (nil = paper model).
	Model routing.Model
	// KillStep is the fraction of the initial population killed per step.
	KillStep float64
	// MaxKill stops the sweep once this fraction has been killed.
	MaxKill float64
	// WarmUp is the initial steady-state run before the first kill.
	WarmUp time.Duration
	// Settle is the repair window after each kill step, before measuring.
	// The paper measures while the network is still absorbing the blow;
	// small values reproduce its failure levels, large values show the
	// self-healing limit.
	Settle time.Duration
	// LookupsPerStep is the number of lookups per algorithm per step.
	LookupsPerStep int
	// RetainUpperLevels enables the §VI future-work demotion strategy.
	RetainUpperLevels bool
	// PiggybackOnly disables immediate update pushes (ABL-2).
	PiggybackOnly bool
	// Parallel caps concurrent trials (default: GOMAXPROCS).
	Parallel int
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 1000
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if len(o.Algos) == 0 {
		o.Algos = []proto.Algo{proto.AlgoG, proto.AlgoNG, proto.AlgoNGSA}
	}
	if o.Policy == nil {
		o.Policy = nodeprof.FixedPolicy{NC: 4}
	}
	if o.KillStep == 0 {
		o.KillStep = 0.05
	}
	if o.MaxKill == 0 {
		o.MaxKill = 0.80
	}
	if o.WarmUp == 0 {
		o.WarmUp = 8 * time.Second
	}
	if o.Settle == 0 {
		o.Settle = 4 * time.Second
	}
	if o.LookupsPerStep == 0 {
		o.LookupsPerStep = 100
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// AlgoStep holds one algorithm's measurements at one kill level.
type AlgoStep struct {
	Found    int
	NotFound int
	Timeout  int
	// Hops is the hop histogram of successful lookups.
	Hops *metrics.Histogram
}

// Failed returns the failed-lookup count.
func (a *AlgoStep) Failed() int { return a.NotFound + a.Timeout }

// FailRate returns failures / total in [0,1].
func (a *AlgoStep) FailRate() float64 {
	total := a.Found + a.Failed()
	if total == 0 {
		return 0
	}
	return float64(a.Failed()) / float64(total)
}

// Step is one kill level of one trial.
type Step struct {
	// KillPct is the cumulative percentage of the initial population
	// killed before this measurement.
	KillPct int
	// Alive is the surviving node count.
	Alive int
	// Partitions is the number of connected components of the live
	// knowledge graph (Figure E attributes its spike to partitioning).
	Partitions int
	// PerAlgo holds measurements keyed by lookup algorithm.
	PerAlgo map[proto.Algo]*AlgoStep
}

// Trial is one seed's full sweep.
type Trial struct {
	Seed  int64
	Steps []Step
}

// SweepResult aggregates all trials of a sweep.
type SweepResult struct {
	Opts   Options
	Trials []Trial
}

// RunKillSweep executes the sweep, one deterministic trial per seed,
// trials in parallel.
func RunKillSweep(o Options) *SweepResult {
	o = o.withDefaults()
	res := &SweepResult{Opts: o, Trials: make([]Trial, len(o.Seeds))}

	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallel)
	for i, seed := range o.Seeds {
		wg.Add(1)
		go func(slot int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res.Trials[slot] = runTrial(o, seed)
		}(i, seed)
	}
	wg.Wait()
	return res
}

func runTrial(o Options, seed int64) Trial {
	cfg := core.Defaults()
	cfg.ChildPolicy = o.Policy
	cfg.RetainUpperLevels = o.RetainUpperLevels
	cfg.ImmediateUpdates = !o.PiggybackOnly
	if o.Model != nil {
		cfg.Routing.Model = o.Model
	}
	c := simrt.New(simrt.Options{
		N:      o.N,
		Seed:   seed,
		Config: cfg,
		Bulk:   true,
	})
	c.StartAll()
	c.Run(o.WarmUp)

	trial := Trial{Seed: seed}
	rng := c.Rand()
	killed := 0

	for frac := o.KillStep; frac <= o.MaxKill+1e-9; frac += o.KillStep {
		target := int(frac * float64(o.N))
		for killed < target {
			n := c.Nodes[rng.Intn(len(c.Nodes))]
			if c.Alive(n) {
				c.Kill(n)
				killed++
			}
		}
		c.Run(o.Settle)

		alive := c.AliveNodes()
		if len(alive) < 2 {
			break
		}
		step := Step{
			KillPct:    int(frac*100 + 0.5),
			Alive:      len(alive),
			Partitions: countPartitions(c),
			PerAlgo:    map[proto.Algo]*AlgoStep{},
		}

		// The same origin/target pairs are measured under every algorithm
		// so their curves are comparable.
		pairs := make([][2]*core.Node, o.LookupsPerStep)
		for i := range pairs {
			pairs[i] = [2]*core.Node{
				alive[rng.Intn(len(alive))],
				alive[rng.Intn(len(alive))],
			}
		}
		for _, algo := range o.Algos {
			step.PerAlgo[algo] = measure(c, pairs, algo)
		}
		trial.Steps = append(trial.Steps, step)
	}
	return trial
}

// measure issues the lookups and advances virtual time until every one has
// resolved or timed out. On a sharded cluster each completion callback
// runs on its origin node's shard worker, so the shared tallies take a
// lock; counters and histogram merges are commutative, so completion
// order cannot leak into the results.
func measure(c *simrt.Cluster, pairs [][2]*core.Node, algo proto.Algo) *AlgoStep {
	out := &AlgoStep{Hops: &metrics.Histogram{}}
	var mu sync.Mutex
	for _, p := range pairs {
		origin, target := p[0], p[1]
		targetID := target.ID()
		origin.Lookup(targetID, algo, func(r core.LookupResult) {
			mu.Lock()
			defer mu.Unlock()
			switch {
			case r.Status == core.LookupFound && r.Best.ID == targetID:
				out.Found++
				out.Hops.Observe(r.Hops)
			case r.Status == core.LookupTimeout:
				out.Timeout++
			default:
				// NotFound, or resolved to a different owner: the ID was
				// not found.
				out.NotFound++
			}
		})
	}
	timeout := c.Nodes[0].Config().LookupTimeout
	c.Run(timeout + time.Second)
	return out
}

// countPartitions builds the live knowledge graph (node → its live table
// candidates) and counts connected components.
func countPartitions(c *simrt.Cluster) int {
	alive := c.AliveNodes()
	index := make(map[uint64]int, len(alive))
	for i, n := range alive {
		index[n.Addr()] = i
	}
	uf := metrics.NewUnionFind(len(alive))
	for i, n := range alive {
		for _, cand := range n.Table().Candidates(nil) {
			if j, ok := index[cand.Addr]; ok {
				uf.Union(i, j)
			}
		}
	}
	return uf.Sets()
}

// --- aggregation -------------------------------------------------------------

// KillPcts returns the kill percentages present in the first trial.
func (r *SweepResult) KillPcts() []float64 {
	if len(r.Trials) == 0 {
		return nil
	}
	out := make([]float64, 0, len(r.Trials[0].Steps))
	for _, s := range r.Trials[0].Steps {
		out = append(out, float64(s.KillPct))
	}
	return out
}

// FailRateSeries returns mean failed-lookup percentage per kill level
// (Figures A and C).
func (r *SweepResult) FailRateSeries(algo proto.Algo) *metrics.Series {
	s := &metrics.Series{Name: "fail%/" + algo.String()}
	r.perStep(func(killPct int, steps []*AlgoStep) {
		var sum float64
		for _, st := range steps {
			sum += st.FailRate()
		}
		s.Add(float64(killPct), 100*sum/float64(len(steps)))
	}, algo)
	return s
}

// AvgHopsSeries returns mean hops of successful lookups per kill level
// (Figures B and D).
func (r *SweepResult) AvgHopsSeries(algo proto.Algo) *metrics.Series {
	s := &metrics.Series{Name: "hops/" + algo.String()}
	r.perStep(func(killPct int, steps []*AlgoStep) {
		var sum float64
		var n int
		for _, st := range steps {
			if st.Hops.Total() > 0 {
				sum += st.Hops.Mean()
				n++
			}
		}
		if n == 0 {
			s.Add(float64(killPct), 0)
			return
		}
		s.Add(float64(killPct), sum/float64(n))
	}, algo)
	return s
}

// FailEnvelope returns the min and max failed-lookup percentage across
// trials per kill level (Figure E).
func (r *SweepResult) FailEnvelope(algo proto.Algo) (min, max *metrics.Series) {
	min = &metrics.Series{Name: "min-fail%/" + algo.String()}
	max = &metrics.Series{Name: "max-fail%/" + algo.String()}
	r.perStep(func(killPct int, steps []*AlgoStep) {
		var mm metrics.MinMax
		for _, st := range steps {
			mm.Observe(100 * st.FailRate())
		}
		min.Add(float64(killPct), mm.Min())
		max.Add(float64(killPct), mm.Max())
	}, algo)
	return min, max
}

// HopSurface merges all trials' hop histograms into the Figures F–I
// surface for one algorithm.
func (r *SweepResult) HopSurface(algo proto.Algo) *metrics.Surface {
	surf := metrics.NewSurface()
	for _, tr := range r.Trials {
		for _, st := range tr.Steps {
			if a, ok := st.PerAlgo[algo]; ok {
				surf.At(st.KillPct).Merge(a.Hops)
			}
		}
	}
	return surf
}

// PartitionSeries returns the mean partition count per kill level.
func (r *SweepResult) PartitionSeries() *metrics.Series {
	s := &metrics.Series{Name: "partitions"}
	if len(r.Trials) == 0 {
		return s
	}
	for i := range r.Trials[0].Steps {
		var sum float64
		var n int
		for _, tr := range r.Trials {
			if i < len(tr.Steps) {
				sum += float64(tr.Steps[i].Partitions)
				n++
			}
		}
		s.Add(float64(r.Trials[0].Steps[i].KillPct), sum/float64(n))
	}
	return s
}

// perStep calls fn once per kill level with that level's AlgoSteps across
// trials.
func (r *SweepResult) perStep(fn func(killPct int, steps []*AlgoStep), algo proto.Algo) {
	if len(r.Trials) == 0 {
		return
	}
	for i, ref := range r.Trials[0].Steps {
		var steps []*AlgoStep
		for _, tr := range r.Trials {
			if i < len(tr.Steps) {
				if a, ok := tr.Steps[i].PerAlgo[algo]; ok {
					steps = append(steps, a)
				}
			}
		}
		if len(steps) > 0 {
			fn(ref.KillPct, steps)
		}
	}
}

// NetOptions exposes netsim configuration for scenario tools (latency and
// loss sweeps in cmd/treep-sim).
type NetOptions = []netsim.Option
