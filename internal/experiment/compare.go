package experiment

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"treep/internal/metrics"
	"treep/internal/overlay"
	"treep/internal/scenario"
)

// CompareBackends lists the protocols the comparative harness knows, in
// report order.
var CompareBackends = []string{"treep", "chord", "flood"}

// CompareScenarios lists the phase scripts ComparePhases can build.
var CompareScenarios = []string{"churn", "flashcrowd", "zonefail", "partition"}

// CompareOptions configures a head-to-head run: every backend plays the
// same phase script once per seed, and every (backend, seed) trial is an
// independent deterministic simulation fanned out across the worker pool.
type CompareOptions struct {
	// N is the initial population of every backend.
	N int
	// Seeds: one trial per seed per backend. Backend b with seed s and
	// backend b' with seed s absorb the identical workload timeline.
	Seeds []int64
	// Backends is the subset of CompareBackends to run.
	Backends []string
	// Scenario labels the records; Phases is the script. When Phases is
	// nil it is built from Scenario via ComparePhases.
	Scenario string
	Phases   []scenario.Phase
	// WarmUp is the steady-state run before the first phase.
	WarmUp time.Duration
	// LookupsPerPhase is the number of lookups measured at each boundary.
	LookupsPerPhase int
	// FloodDegree and FloodTTL configure the flooding baseline (package
	// defaults when zero).
	FloodDegree, FloodTTL int
	// Parallel caps concurrent trials (default: GOMAXPROCS).
	Parallel int
}

func (o CompareOptions) withDefaults() (CompareOptions, error) {
	if o.N == 0 {
		o.N = 1000
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if len(o.Backends) == 0 {
		o.Backends = append([]string(nil), CompareBackends...)
	}
	for _, b := range o.Backends {
		if err := validateBackend(b); err != nil {
			return o, err
		}
	}
	if o.Scenario == "" {
		o.Scenario = "churn"
	}
	if o.Phases == nil {
		phases, err := ComparePhases(o.Scenario, o.N)
		if err != nil {
			return o, err
		}
		o.Phases = phases
	}
	for _, ph := range o.Phases {
		if !overlay.Supported(ph) {
			return o, fmt.Errorf("phase %q is not supported by the comparative interpreter", ph.Name())
		}
	}
	if o.WarmUp == 0 {
		o.WarmUp = 8 * time.Second
	}
	if o.LookupsPerPhase == 0 {
		o.LookupsPerPhase = 200
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o, nil
}

// ComparePhases builds the named protocol-agnostic phase script for an
// initial population of n: "churn" (arrivals and departures at a rate
// scaled to n, then settle), "flashcrowd" (n/10 joins in a burst),
// "zonefail" (a contiguous 15% of the ID space dies), or "partition"
// (mid-space split, hold, heal).
func ComparePhases(name string, n int) ([]scenario.Phase, error) {
	settle := 10 * time.Second
	switch name {
	case "churn":
		rate := float64(n) / 500
		if rate < 1 {
			rate = 1
		}
		return []scenario.Phase{
			scenario.Churn{For: 20 * time.Second, JoinRate: rate, LeaveRate: rate},
			scenario.Settle{For: settle},
		}, nil
	case "flashcrowd":
		return []scenario.Phase{
			scenario.FlashCrowd{Joins: n / 10, Over: 5 * time.Second},
			scenario.Settle{For: settle},
		}, nil
	case "zonefail":
		return []scenario.Phase{
			scenario.ZoneFailure{Zone: scenario.ZoneFraction(0.40, 0.55), Settle: settle},
		}, nil
	case "partition":
		return []scenario.Phase{
			scenario.PartitionHeal{Hold: 10 * time.Second, Heal: settle},
		}, nil
	}
	return nil, fmt.Errorf("unknown scenario %q (want %s)", name, strings.Join(CompareScenarios, ", "))
}

// validateBackend checks a backend name against the known set.
func validateBackend(name string) error {
	for _, b := range CompareBackends {
		if b == name {
			return nil
		}
	}
	return fmt.Errorf("unknown backend %q (want %s)", name, strings.Join(CompareBackends, ", "))
}

// newBackendSeeded constructs one backend instance of n nodes.
func newBackendSeeded(name string, n int, seed int64, o CompareOptions) (overlay.Overlay, error) {
	switch name {
	case "treep":
		return overlay.NewTreeP(n, seed), nil
	case "chord":
		return overlay.NewChord(n, seed), nil
	case "flood":
		return overlay.NewFlood(n, o.FloodDegree, o.FloodTTL, seed), nil
	}
	return nil, validateBackend(name)
}

// CompareResult holds every trial's per-phase records.
type CompareResult struct {
	Opts     CompareOptions
	Recorder metrics.Recorder
}

// RunCompare drives every configured backend through the same phase
// script once per seed and returns the per-phase records. Trials run
// concurrently; records come back sorted by (backend, seed, phase).
func RunCompare(o CompareOptions) (*CompareResult, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &CompareResult{Opts: o}

	type trialKey struct {
		backend string
		seed    int64
	}
	var keys []trialKey
	for _, b := range o.Backends {
		for _, s := range o.Seeds {
			keys = append(keys, trialKey{b, s})
		}
	}
	records := make([][]metrics.PhaseRecord, len(keys))
	errs := make([]error, len(keys))

	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallel)
	for i, key := range keys {
		wg.Add(1)
		go func(slot int, key trialKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			records[slot], errs[slot] = runCompareTrial(o, key.backend, key.seed)
		}(i, key)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %s/seed=%d: %w", keys[i].backend, keys[i].seed, err)
		}
	}
	for _, rs := range records {
		for _, r := range rs {
			res.Recorder.Add(r)
		}
	}
	res.Recorder.Sort()
	return res, nil
}

// runCompareTrial plays the phase script against one backend with one
// seed, measuring at every phase boundary. The workload RNG is seeded
// from the trial seed alone, so every backend sees the same event
// timeline and the same lookup draws.
func runCompareTrial(o CompareOptions, backend string, seed int64) ([]metrics.PhaseRecord, error) {
	ov, err := newBackendSeeded(backend, o.N, seed, o)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ov.Run(o.WarmUp)

	var out []metrics.PhaseRecord
	for idx, ph := range o.Phases {
		before := ov.NetStats()
		phaseStart := ov.Kernel().Now()
		played, err := overlay.Play(ov, rng, ph)
		if err != nil {
			// withDefaults validated the script, so this only fires when
			// Supported and the interpreter disagree — fail loudly rather
			// than export records with silently missing rows.
			return nil, err
		}
		ov.MaintenanceTick()
		maint := ov.NetStats()
		phaseSecs := (ov.Kernel().Now() - phaseStart).Seconds()

		rec := metrics.PhaseRecord{
			Backend:    ov.Name(),
			Scenario:   o.Scenario,
			Phase:      ph.Name(),
			PhaseIdx:   idx,
			Seed:       seed,
			N:          o.N,
			Alive:      ov.AliveCount(),
			Joins:      played.Joins,
			Leaves:     played.Leaves,
			ZoneKilled: played.ZoneKilled,
			MaintMsgs:  maint.Sent - before.Sent,
			MaintBytes: maint.Bytes - before.Bytes,
			PhaseSecs:  phaseSecs,
		}
		measureLookups(ov, rng, o.LookupsPerPhase, &rec)
		rec.StateSize = ov.StateSize()
		if rec.Alive > 0 {
			rec.StatePerNode = float64(rec.StateSize) / float64(rec.Alive)
		}
		out = append(out, rec)
	}
	return out, nil
}

// measureLookups issues lookups between random live pairs, advances
// virtual time until all have resolved or timed out, and fills the
// record's lookup fields plus the measurement-window traffic delta.
func measureLookups(ov overlay.Overlay, rng *rand.Rand, lookups int, rec *metrics.PhaseRecord) {
	ids := ov.AliveIDs()
	if len(ids) < 2 {
		return
	}
	before := ov.NetStats()
	hops := &metrics.Histogram{}
	var latencySum time.Duration
	for i := 0; i < lookups; i++ {
		origin := rng.Intn(len(ids))
		target := ids[rng.Intn(len(ids))]
		ov.Lookup(origin, target, func(r overlay.Outcome) {
			rec.Lookups++
			if r.Found {
				rec.Found++
				hops.Observe(r.Hops)
				latencySum += r.Latency
			}
		})
	}
	window := ov.LookupWindow()
	ov.Run(window)
	after := ov.NetStats()

	rec.LookupMsgs = after.Sent - before.Sent
	rec.LookupBytes = after.Bytes - before.Bytes
	rec.WindowSecs = window.Seconds()
	if rec.Lookups > 0 {
		rec.FailPct = 100 * float64(rec.Lookups-rec.Found) / float64(rec.Lookups)
		rec.MsgsPerLookup = float64(rec.LookupMsgs) / float64(rec.Lookups)
		// Subtract the phase's maintenance rate from the window to
		// estimate pure routing cost (background maintenance keeps
		// running while lookups resolve).
		net := float64(rec.LookupMsgs)
		if rec.PhaseSecs > 0 {
			net -= float64(rec.MaintMsgs) / rec.PhaseSecs * rec.WindowSecs
		}
		if net < 0 {
			net = 0
		}
		rec.NetMsgsPerLookup = net / float64(rec.Lookups)
	}
	if rec.Found > 0 {
		rec.HopMean = hops.Mean()
		rec.HopP50 = hops.Percentile(0.50)
		rec.HopP99 = hops.Percentile(0.99)
		rec.LatencyMeanMs = float64(latencySum.Milliseconds()) / float64(rec.Found)
	}
}

// CompareSummary aggregates a result across trials: one row per
// (backend, phase) with trial means, rendered as a TSV table in the style
// of the paper's figures.
func CompareSummary(res *CompareResult) string {
	type key struct {
		backend string
		idx     int
	}
	type agg struct {
		phase                        string
		trials                       int
		alive, failPct, hops, latMs  float64
		maintMsgs, lookupMsgs, state float64
		netPerLookup                 float64
		// measuredN / foundN count the records contributing to the
		// lookup-conditioned columns: a trial where nothing was measured
		// (or nothing succeeded) must not drag those means toward zero.
		measuredN, foundN int
	}
	byKey := map[key]*agg{}
	for i := range res.Recorder.Records {
		r := &res.Recorder.Records[i]
		k := key{r.Backend, r.PhaseIdx}
		a := byKey[k]
		if a == nil {
			a = &agg{phase: r.Phase}
			byKey[k] = a
		}
		a.trials++
		a.alive += float64(r.Alive)
		a.maintMsgs += float64(r.MaintMsgs)
		a.lookupMsgs += float64(r.LookupMsgs)
		a.state += r.StatePerNode
		if r.Lookups > 0 {
			a.measuredN++
			a.failPct += r.FailPct
			a.netPerLookup += r.NetMsgsPerLookup
		}
		if r.Found > 0 {
			a.foundN++
			a.hops += r.HopMean
			a.latMs += r.LatencyMeanMs
		}
	}
	keys := make([]key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		bi := backendRank(keys[i].backend)
		bj := backendRank(keys[j].backend)
		if bi != bj {
			return bi < bj
		}
		return keys[i].idx < keys[j].idx
	})

	var b strings.Builder
	b.WriteString("backend\tphase\ttrials\talive\tfail%\thops\tlat(ms)\tmaint-msgs\tlookup-msgs\tnet-msgs/lookup\tstate/node\n")
	for _, k := range keys {
		a := byKey[k]
		n := float64(a.trials)
		mean := func(sum float64, count int) float64 {
			if count == 0 {
				return 0
			}
			return sum / float64(count)
		}
		fmt.Fprintf(&b, "%s\t%s\t%d\t%.0f\t%.1f\t%.2f\t%.0f\t%.0f\t%.0f\t%.1f\t%.1f\n",
			k.backend, a.phase, a.trials, a.alive/n,
			mean(a.failPct, a.measuredN), mean(a.hops, a.foundN), mean(a.latMs, a.foundN),
			a.maintMsgs/n, a.lookupMsgs/n, mean(a.netPerLookup, a.measuredN), a.state/n)
	}
	return b.String()
}

func backendRank(name string) int {
	for i, b := range CompareBackends {
		if b == name {
			return i
		}
	}
	return len(CompareBackends)
}
