package experiment

import (
	"testing"
	"time"

	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
)

// smallOpts keeps test sweeps fast.
func smallOpts() Options {
	return Options{
		N:              150,
		Seeds:          []int64{1, 2},
		KillStep:       0.10,
		MaxKill:        0.50,
		WarmUp:         6 * time.Second,
		Settle:         3 * time.Second,
		LookupsPerStep: 40,
	}
}

func TestKillSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	res := RunKillSweep(smallOpts())
	if len(res.Trials) != 2 {
		t.Fatalf("trials %d", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if len(tr.Steps) != 5 {
			t.Fatalf("steps %d, want 5 (10..50%%)", len(tr.Steps))
		}
		for _, st := range tr.Steps {
			if len(st.PerAlgo) != 3 {
				t.Fatalf("algos per step %d", len(st.PerAlgo))
			}
			for algo, a := range st.PerAlgo {
				if a.Found+a.Failed() != 40 {
					t.Fatalf("%v at %d%%: %d lookups accounted",
						algo, st.KillPct, a.Found+a.Failed())
				}
			}
			if st.Partitions < 1 {
				t.Fatal("partition count must be >= 1")
			}
		}
	}
}

func TestKillSweepDeterministicPerSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	o := smallOpts()
	o.Seeds = []int64{7}
	a := RunKillSweep(o)
	b := RunKillSweep(o)
	for i := range a.Trials[0].Steps {
		sa, sb := a.Trials[0].Steps[i], b.Trials[0].Steps[i]
		for _, algo := range []proto.Algo{proto.AlgoG, proto.AlgoNG, proto.AlgoNGSA} {
			if sa.PerAlgo[algo].Found != sb.PerAlgo[algo].Found ||
				sa.PerAlgo[algo].Failed() != sb.PerAlgo[algo].Failed() {
				t.Fatalf("step %d algo %v not deterministic", i, algo)
			}
		}
	}
}

func TestSweepAggregations(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	res := RunKillSweep(smallOpts())
	kills := res.KillPcts()
	if len(kills) != 5 || kills[0] != 10 || kills[4] != 50 {
		t.Fatalf("kill pcts %v", kills)
	}
	fail := res.FailRateSeries(proto.AlgoG)
	if len(fail.Y) != 5 {
		t.Fatalf("fail series %v", fail.Y)
	}
	for _, v := range fail.Y {
		if v < 0 || v > 100 {
			t.Fatalf("fail%% out of range: %v", v)
		}
	}
	hops := res.AvgHopsSeries(proto.AlgoG)
	if len(hops.Y) != 5 {
		t.Fatal("hops series size")
	}
	lo, hi := res.FailEnvelope(proto.AlgoG)
	for i := range lo.Y {
		if lo.Y[i] > hi.Y[i] {
			t.Fatalf("envelope inverted at %d", i)
		}
	}
	surf := res.HopSurface(proto.AlgoG)
	if len(surf.KillPcts()) != 5 {
		t.Fatalf("surface kills %v", surf.KillPcts())
	}
	parts := res.PartitionSeries()
	if len(parts.Y) != 5 {
		t.Fatal("partition series size")
	}
}

func TestSweepPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	// The qualitative claims of §IV.a on a reduced network: failures grow
	// with the kill fraction; the three algorithms stay within a band of
	// each other; hop counts stay bounded.
	o := smallOpts()
	o.Seeds = []int64{1, 2, 3}
	res := RunKillSweep(o)

	g := res.FailRateSeries(proto.AlgoG)
	if g.Y[0] > 30 {
		t.Fatalf("early failure rate too high: %v", g.Y)
	}
	ng := res.FailRateSeries(proto.AlgoNG)
	ngsa := res.FailRateSeries(proto.AlgoNGSA)
	for i := range g.Y {
		// "these algorithms achieve similar performance": allow a wide
		// band on the small test network.
		if diff := g.Y[i] - ng.Y[i]; diff > 40 || diff < -40 {
			t.Fatalf("G vs NG diverge at step %d: %v vs %v", i, g.Y[i], ng.Y[i])
		}
		if diff := g.Y[i] - ngsa.Y[i]; diff > 40 || diff < -40 {
			t.Fatalf("G vs NGSA diverge at step %d", i)
		}
	}
	hops := res.AvgHopsSeries(proto.AlgoG)
	for _, v := range hops.Y {
		if v > 25 {
			t.Fatalf("avg hops exploded: %v", hops.Y)
		}
	}
}

func TestVariablePolicySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	o := smallOpts()
	o.Seeds = []int64{1}
	o.Policy = nodeprof.CapacityPolicy{Min: 2, Max: 16}
	res := RunKillSweep(o)
	if len(res.Trials[0].Steps) == 0 {
		t.Fatal("no steps")
	}
}

func TestAblationOptionsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	o := smallOpts()
	o.Seeds = []int64{1}
	o.MaxKill = 0.2
	o.RetainUpperLevels = true
	o.PiggybackOnly = true
	o.Model = routing.BranchingModel{Height: 6, Branching: 4}
	res := RunKillSweep(o)
	if len(res.Trials[0].Steps) != 2 {
		t.Fatalf("steps %d", len(res.Trials[0].Steps))
	}
}

func TestHeightLaw(t *testing.T) {
	points := HeightLaw([]int{64, 256, 1024}, nil, 1)
	if len(points) != 3 {
		t.Fatal("points")
	}
	prev := 0
	for _, p := range points {
		if p.Height < prev {
			t.Fatalf("height must not shrink with n: %+v", points)
		}
		prev = p.Height
		if diff := float64(p.Height) - p.Predicted; diff > 3 || diff < -3 {
			t.Fatalf("height %d far from prediction %.1f (n=%d)", p.Height, p.Predicted, p.N)
		}
	}
	if RenderHeightLaw(points) == "" {
		t.Fatal("render")
	}
}

func TestTableSizes(t *testing.T) {
	rows := TableSizes(300, 1)
	if len(rows) < 3 {
		t.Fatalf("rows %v", rows)
	}
	for _, r := range rows {
		if r.AvgSize <= 0 {
			t.Fatalf("level %d empty tables", r.Level)
		}
		// Tables must stay within a small constant factor of the §III.e
		// formulas — the paper's point is that they are small.
		if r.AvgSize > 4*r.FormulaSize+20 {
			t.Fatalf("level %d table size %.1f >> formula %.1f", r.Level, r.AvgSize, r.FormulaSize)
		}
	}
	// Level-0 nodes must have smaller tables than upper-level nodes.
	if rows[0].AvgSize >= rows[len(rows)-1].AvgSize {
		t.Fatalf("level-0 tables should be smallest: %+v", rows)
	}
	if RenderTableSizes(rows) == "" {
		t.Fatal("render")
	}
}

func TestLogNHops(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	points := LogNHops([]int{100, 400}, 1, 60)
	if len(points) != 2 {
		t.Fatal("points")
	}
	for _, p := range points {
		if p.FailRate > 0.15 {
			t.Fatalf("steady state fail rate %v at n=%d", p.FailRate, p.N)
		}
		if p.AvgHops <= 0 || p.AvgHops > 15 {
			t.Fatalf("hops %v at n=%d", p.AvgHops, p.N)
		}
	}
	// 4x the network must cost far less than 4x the hops.
	if points[1].AvgHops > 3*points[0].AvgHops+2 {
		t.Fatalf("hops not logarithmic: %+v", points)
	}
	if RenderHops(points) == "" {
		t.Fatal("render")
	}
}
