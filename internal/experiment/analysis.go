package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"treep/internal/core"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/simrt"
)

// HeightPoint is one measurement for the §III.e height law
// h ≈ log_c((n+1)/2).
type HeightPoint struct {
	N         int
	Height    int
	Predicted float64
	// LevelCounts is members per level.
	LevelCounts []int
}

// HeightLaw builds steady-state networks across sizes and compares the
// measured hierarchy height with the B-tree bound of §III.e (AN-1).
func HeightLaw(ns []int, policy nodeprof.ChildPolicy, seed int64) []HeightPoint {
	if policy == nil {
		policy = nodeprof.FixedPolicy{NC: 4}
	}
	out := make([]HeightPoint, 0, len(ns))
	for _, n := range ns {
		cfg := core.Defaults()
		cfg.ChildPolicy = policy
		cfg.MaxHeight = 12 // let the build find its natural height
		c := simrt.New(simrt.Options{N: n, Seed: seed, Config: cfg, Bulk: true})
		// Average branching for the prediction: mean nc across nodes.
		var ncSum int
		for _, nd := range c.Nodes {
			ncSum += nd.MaxChildren()
		}
		avgC := float64(ncSum) / float64(len(c.Nodes))
		out = append(out, HeightPoint{
			N:           n,
			Height:      len(c.LevelCounts) - 1,
			Predicted:   math.Log(float64(n+1)/2) / math.Log(avgC),
			LevelCounts: c.LevelCounts,
		})
	}
	return out
}

// TableSizeRow summarises routing-table sizes at one hierarchy level
// against the §III.e formulas (AN-2).
type TableSizeRow struct {
	Level       int
	Nodes       int
	AvgSize     float64
	AvgActive   float64 // actively maintained connections
	FormulaSize float64 // l0 + h (level 0) or l0+li+Li+ci+ca+da+h-i
}

// TableSizes builds a steady-state network, runs it briefly, and measures
// per-level routing-table sizes and active-connection counts (AN-2).
func TableSizes(n int, seed int64) []TableSizeRow {
	cfg := core.Defaults()
	c := simrt.New(simrt.Options{N: n, Seed: seed, Config: cfg, Bulk: true})
	c.StartAll()
	c.Run(6 * time.Second)

	h := len(c.LevelCounts) - 1
	type acc struct {
		nodes  int
		size   int
		active int
	}
	byLevel := map[int]*acc{}
	for _, nd := range c.Nodes {
		lvl := int(nd.MaxLevel())
		a, ok := byLevel[lvl]
		if !ok {
			a = &acc{}
			byLevel[lvl] = a
		}
		a.nodes++
		a.size += nd.Table().Size()
		// Active connections: level-0 direct neighbours + per-level bus
		// neighbours + parent (§III.e counts l0 + ca + da etc.; we measure
		// the live links a node maintains with keep-alives and reports).
		active := min(nd.Table().Level0.Len(), 2)
		for l := uint8(1); l <= nd.MaxLevel(); l++ {
			if s, ok := nd.Table().Bus[l]; ok {
				active += min(s.Len(), 2)
			}
		}
		if _, ok := nd.Table().Parent(); ok {
			active++
		}
		active += nd.Table().Children.Len()
		a.active += active
	}

	var rows []TableSizeRow
	for lvl := 0; lvl <= h; lvl++ {
		a, ok := byLevel[lvl]
		if !ok {
			continue
		}
		row := TableSizeRow{
			Level:     lvl,
			Nodes:     a.nodes,
			AvgSize:   float64(a.size) / float64(a.nodes),
			AvgActive: float64(a.active) / float64(a.nodes),
		}
		// §III.e: level-0 nodes: l0 + h. Level-i nodes:
		// l0 + li + Li + ci + ca + da + h − i, with the paper's bounds
		// l0≈2(direct)+indirect, li≤2, da≤2, ca≈nc, ci≈2nc, Li small.
		l0 := 2.0 * (1 + 2) // direct + two indirect per side
		if lvl == 0 {
			row.FormulaSize = l0 + float64(h)
		} else {
			nc := 4.0
			row.FormulaSize = l0 + 2 + nc + 2*nc + 2 + float64(h-lvl) + nc
		}
		rows = append(rows, row)
	}
	return rows
}

// HopsPoint is one measurement for the O(log n) routing claim (AN-3).
type HopsPoint struct {
	N        int
	AvgHops  float64
	P95Hops  int
	FailRate float64
}

// LogNHops measures steady-state lookup hops across network sizes (AN-3).
func LogNHops(ns []int, seed int64, lookups int) []HopsPoint {
	out := make([]HopsPoint, 0, len(ns))
	for _, n := range ns {
		cfg := core.Defaults()
		c := simrt.New(simrt.Options{N: n, Seed: seed, Config: cfg, Bulk: true})
		c.StartAll()
		c.Run(8 * time.Second)
		alive := c.AliveNodes()
		rng := c.Rand()
		pairs := make([][2]*core.Node, lookups)
		for i := range pairs {
			pairs[i] = [2]*core.Node{alive[rng.Intn(len(alive))], alive[rng.Intn(len(alive))]}
		}
		st := measure(c, pairs, proto.AlgoG)
		out = append(out, HopsPoint{
			N:        n,
			AvgHops:  st.Hops.Mean(),
			P95Hops:  st.Hops.Percentile(0.95),
			FailRate: st.FailRate(),
		})
	}
	return out
}

// RenderHeightLaw formats AN-1 results.
func RenderHeightLaw(points []HeightPoint) string {
	var b strings.Builder
	b.WriteString("n\theight\tpredicted\tlevels\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d\t%d\t%.1f\t%v\n", p.N, p.Height, p.Predicted, p.LevelCounts)
	}
	return b.String()
}

// RenderTableSizes formats AN-2 results.
func RenderTableSizes(rows []TableSizeRow) string {
	var b strings.Builder
	b.WriteString("level\tnodes\tavg-size\tformula\tavg-active\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%d\t%.1f\t%.1f\t%.1f\n", r.Level, r.Nodes, r.AvgSize, r.FormulaSize, r.AvgActive)
	}
	return b.String()
}

// RenderHops formats AN-3 results.
func RenderHops(points []HopsPoint) string {
	var b strings.Builder
	b.WriteString("n\tavg-hops\tp95\tfail\n")
	for _, p := range points {
		fmt.Fprintf(&b, "%d\t%.2f\t%d\t%.3f\n", p.N, p.AvgHops, p.P95Hops, p.FailRate)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
