package experiment

import (
	"runtime"
	"sync"
	"time"

	"treep/internal/core"
	"treep/internal/metrics"
	"treep/internal/proto"
	"treep/internal/scenario"
	"treep/internal/simrt"
)

// ScenarioOptions configures a scripted-scenario experiment: the same
// deterministic trial-per-seed structure as the kill sweep, but the
// workload is a scenario timeline (continuous churn, flash crowds, zone
// failures, partitions) instead of the one-way decimation, and runtime
// invariant checkers sample the overlay as it runs.
type ScenarioOptions struct {
	// N is the initial network size.
	N int
	// Seeds: one deterministic trial per seed.
	Seeds []int64
	// Algos are the lookup algorithms measured after each phase.
	Algos []proto.Algo
	// Phases is the timeline every trial plays. Phases are immutable
	// values, shared safely across concurrent trials.
	Phases []scenario.Phase
	// Checkers are the invariants evaluated at each phase boundary (and on
	// SampleEvery's cadence mid-phase). Nil means scenario.AllCheckers.
	Checkers []scenario.Checker
	// SampleEvery is the mid-phase invariant sampling interval (0 = only
	// at phase boundaries).
	SampleEvery time.Duration
	// WarmUp is the steady-state run before the first phase.
	WarmUp time.Duration
	// LookupsPerPhase is the number of lookups per algorithm measured at
	// each phase boundary.
	LookupsPerPhase int
	// Parallel caps concurrent trials (default: GOMAXPROCS).
	Parallel int
	// Shards selects the simulation engine: 0 runs the classic
	// single-threaded kernel, ≥1 runs the sharded multi-core kernel with
	// that many shards (see simrt.Options.Shards for the determinism
	// contract).
	Shards int
	// Budget caps each trial's wall-clock time. When it expires the
	// trial's cluster is interrupted — the virtual clock freezes, the
	// remaining timeline drains without advancing, and the trial is marked
	// Truncated. Zero means no cap. Truncated trials report whatever was
	// measured before the cut; consumers (benchguard, the scale table)
	// must treat them as incomplete, not as fast.
	Budget time.Duration
}

func (o ScenarioOptions) withDefaults() ScenarioOptions {
	if o.N == 0 {
		o.N = 1000
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if len(o.Algos) == 0 {
		o.Algos = []proto.Algo{proto.AlgoG}
	}
	if o.Checkers == nil {
		o.Checkers = scenario.AllCheckers()
	}
	if o.WarmUp == 0 {
		o.WarmUp = 8 * time.Second
	}
	if o.LookupsPerPhase == 0 {
		o.LookupsPerPhase = 100
	}
	if o.Parallel == 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	return o
}

// PhaseStep is the measurement taken at one phase boundary of one trial.
type PhaseStep struct {
	// Phase is the name of the phase that just finished.
	Phase string
	// Alive is the live population at the boundary.
	Alive int
	// Violations is the number of invariant violations at the boundary.
	Violations int
	// PerAlgo holds lookup measurements keyed by algorithm.
	PerAlgo map[proto.Algo]*AlgoStep
}

// ScenarioTrial is one seed's full scenario run.
type ScenarioTrial struct {
	Seed int64
	// Steps has one entry per phase, in timeline order.
	Steps []PhaseStep
	// Result is the engine's event accounting and mid-run samples.
	Result *scenario.Result
	// Truncated reports that the wall-clock Budget expired before the
	// timeline finished; the measurements cover only the completed prefix.
	Truncated bool
}

// ScenarioSweepResult aggregates all trials of a scenario experiment.
type ScenarioSweepResult struct {
	Opts   ScenarioOptions
	Trials []ScenarioTrial
}

// RunScenario executes the scenario timeline once per seed, trials in
// parallel on the worker pool, measuring lookups and invariants at every
// phase boundary.
func RunScenario(o ScenarioOptions) *ScenarioSweepResult {
	o = o.withDefaults()
	res := &ScenarioSweepResult{Opts: o, Trials: make([]ScenarioTrial, len(o.Seeds))}

	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Parallel)
	for i, seed := range o.Seeds {
		wg.Add(1)
		go func(slot int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res.Trials[slot] = runScenarioTrial(o, seed)
		}(i, seed)
	}
	wg.Wait()
	return res
}

func runScenarioTrial(o ScenarioOptions, seed int64) ScenarioTrial {
	c := simrt.New(simrt.Options{
		N:      o.N,
		Seed:   seed,
		Config: core.Defaults(),
		Bulk:   true,
		Shards: o.Shards,
	})
	if c.Engine != nil {
		defer c.Engine.Close()
	}
	if o.Budget > 0 {
		watchdog := time.AfterFunc(o.Budget, c.Interrupt)
		defer watchdog.Stop()
	}
	c.StartAll()
	c.Run(o.WarmUp)

	eng := scenario.NewEngine(c, scenario.Options{
		Checkers:    o.Checkers,
		SampleEvery: o.SampleEvery,
	})
	trial := ScenarioTrial{Seed: seed}
	rng := c.Rand()
	for _, ph := range o.Phases {
		trial.Result = eng.Play(ph)
		alive := c.AliveNodes()
		step := PhaseStep{
			Phase:      ph.Name(),
			Alive:      len(alive),
			Violations: len(trial.Result.Final),
			PerAlgo:    map[proto.Algo]*AlgoStep{},
		}
		if len(alive) >= 2 {
			pairs := make([][2]*core.Node, o.LookupsPerPhase)
			for i := range pairs {
				pairs[i] = [2]*core.Node{
					alive[rng.Intn(len(alive))],
					alive[rng.Intn(len(alive))],
				}
			}
			for _, algo := range o.Algos {
				step.PerAlgo[algo] = measure(c, pairs, algo)
			}
		}
		trial.Steps = append(trial.Steps, step)
	}
	trial.Truncated = c.Interrupted()
	return trial
}

// FailRateByPhase returns the mean failed-lookup percentage per phase
// boundary across trials.
func (r *ScenarioSweepResult) FailRateByPhase(algo proto.Algo) *metrics.Series {
	s := &metrics.Series{Name: "fail%/" + algo.String()}
	if len(r.Trials) == 0 {
		return s
	}
	for i := range r.Trials[0].Steps {
		var sum float64
		var n int
		for _, tr := range r.Trials {
			if i < len(tr.Steps) {
				if a, ok := tr.Steps[i].PerAlgo[algo]; ok {
					sum += a.FailRate()
					n++
				}
			}
		}
		if n > 0 {
			s.Add(float64(i), 100*sum/float64(n))
		}
	}
	return s
}

// ViolationsByPhase returns the mean invariant-violation count per phase
// boundary across trials.
func (r *ScenarioSweepResult) ViolationsByPhase() *metrics.Series {
	s := &metrics.Series{Name: "violations"}
	if len(r.Trials) == 0 {
		return s
	}
	for i := range r.Trials[0].Steps {
		var sum float64
		var n int
		for _, tr := range r.Trials {
			if i < len(tr.Steps) {
				sum += float64(tr.Steps[i].Violations)
				n++
			}
		}
		if n > 0 {
			s.Add(float64(i), sum/float64(n))
		}
	}
	return s
}
