package experiment

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"testing"
	"time"

	"treep/internal/metrics"
	"treep/internal/scenario"
)

// compareOpts is a small, fast head-to-head configuration.
func compareOpts() CompareOptions {
	return CompareOptions{
		N:     80,
		Seeds: []int64{1, 2},
		Phases: []scenario.Phase{
			scenario.Churn{For: 5 * time.Second, JoinRate: 2, LeaveRate: 2},
			scenario.Settle{For: 6 * time.Second},
		},
		Scenario:        "churn",
		WarmUp:          4 * time.Second,
		LookupsPerPhase: 40,
	}
}

// TestRunCompareProducesCompleteRecords: every backend × seed × phase has
// exactly one record with lookups measured and maintenance accounted.
func TestRunCompareProducesCompleteRecords(t *testing.T) {
	res, err := RunCompare(compareOpts())
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	recs := res.Recorder.Records
	wantRows := len(CompareBackends) * 2 /*seeds*/ * 2 /*phases*/
	if len(recs) != wantRows {
		t.Fatalf("got %d records, want %d", len(recs), wantRows)
	}

	type cell struct {
		backend string
		seed    int64
		idx     int
	}
	seen := map[cell]bool{}
	for _, r := range recs {
		seen[cell{r.Backend, r.Seed, r.PhaseIdx}] = true
		if r.Lookups == 0 {
			t.Errorf("%s seed=%d phase=%d: no lookups measured", r.Backend, r.Seed, r.PhaseIdx)
		}
		if r.Backend != "flood" && r.MaintMsgs == 0 {
			t.Errorf("%s seed=%d phase=%d: no maintenance traffic recorded", r.Backend, r.Seed, r.PhaseIdx)
		}
		if r.StateSize == 0 {
			t.Errorf("%s seed=%d phase=%d: StateSize = 0", r.Backend, r.Seed, r.PhaseIdx)
		}
		if r.Scenario != "churn" {
			t.Errorf("record scenario = %q, want churn", r.Scenario)
		}
	}
	for _, b := range CompareBackends {
		for _, s := range []int64{1, 2} {
			for idx := 0; idx < 2; idx++ {
				if !seen[cell{b, s, idx}] {
					t.Errorf("missing record for %s seed=%d phase=%d", b, s, idx)
				}
			}
		}
	}

	// Seed-replicated workload: for a given seed, every backend must have
	// absorbed the same join/leave schedule during the churn phase.
	joins := map[int64]map[string]int{1: {}, 2: {}}
	for _, r := range recs {
		if r.PhaseIdx == 0 {
			joins[r.Seed][r.Backend] = r.Joins
		}
	}
	for seed, byBackend := range joins {
		want := byBackend[CompareBackends[0]]
		for b, got := range byBackend {
			if got != want {
				t.Errorf("seed %d: backend %s saw %d joins, %s saw %d — timelines diverged",
					seed, b, got, CompareBackends[0], want)
			}
		}
	}

	if CompareSummary(res) == "" {
		t.Error("CompareSummary returned an empty table")
	}
}

// TestRunCompareDeterministic: the same options give byte-identical CSV.
func TestRunCompareDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("deterministic replay is a double run; skipped in -short")
	}
	run := func() []byte {
		res, err := RunCompare(compareOpts())
		if err != nil {
			t.Fatalf("RunCompare: %v", err)
		}
		var buf bytes.Buffer
		if err := res.Recorder.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("two runs with identical options produced different CSV records")
	}
}

// TestRunCompareExport: the CSV parses with the right shape and the JSON
// round-trips.
func TestRunCompareExport(t *testing.T) {
	opts := compareOpts()
	opts.Seeds = []int64{1}
	opts.Backends = []string{"chord", "flood"}
	res, err := RunCompare(opts)
	if err != nil {
		t.Fatalf("RunCompare: %v", err)
	}
	dir := t.TempDir()
	csvPath, jsonPath, err := res.Recorder.Export(dir, "compare-churn")
	if err != nil {
		t.Fatalf("Export: %v", err)
	}

	var buf bytes.Buffer
	if err := res.Recorder.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("parsing exported CSV: %v", err)
	}
	if len(rows) != 1+len(res.Recorder.Records) {
		t.Errorf("CSV has %d rows, want header + %d", len(rows), len(res.Recorder.Records))
	}

	var jbuf bytes.Buffer
	if err := res.Recorder.WriteJSON(&jbuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back []metrics.PhaseRecord
	if err := json.Unmarshal(jbuf.Bytes(), &back); err != nil {
		t.Fatalf("parsing exported JSON: %v", err)
	}
	if len(back) != len(res.Recorder.Records) {
		t.Errorf("JSON round-trip has %d records, want %d", len(back), len(res.Recorder.Records))
	}
	if csvPath == "" || jsonPath == "" {
		t.Error("Export returned empty paths")
	}
}

// TestRunCompareRejectsBadConfig: unknown backends and unsupported phases
// error out before any trial runs.
func TestRunCompareRejectsBadConfig(t *testing.T) {
	bad := compareOpts()
	bad.Backends = []string{"treep", "pastry"}
	if _, err := RunCompare(bad); err == nil {
		t.Error("RunCompare accepted unknown backend \"pastry\"")
	}

	bad = compareOpts()
	bad.Phases = []scenario.Phase{scenario.RevivalWave{Over: time.Second}}
	if _, err := RunCompare(bad); err == nil {
		t.Error("RunCompare accepted the unsupported RevivalWave phase")
	}

	if _, err := ComparePhases("nosuch", 100); err == nil {
		t.Error("ComparePhases accepted an unknown scenario name")
	}
	for _, name := range CompareScenarios {
		if _, err := ComparePhases(name, 100); err != nil {
			t.Errorf("ComparePhases(%q): %v", name, err)
		}
	}
}
