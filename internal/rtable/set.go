// Package rtable implements the TreeP routing-table system of §III.c/d.
//
// A node's routing state is six structures, all holding (ID, IP, Port)
// tuples with "a timestamp associated with each node providing the
// information ... reset at every occurrence of an active communication ...
// the entry will be deleted after the expiration of the timestamp":
//
//  1. level-0 routing table (every node has one),
//  2. level-i (i>0) routing table: direct and indirect same-level
//     neighbours,
//  3. children routing table: own children plus children of direct
//     neighbours,
//  4. the level-1 parent (here: the immediate parent of the node's top
//     level),
//  5. the superior node list: ancestors and the immediate parent's
//     neighbours.
//
// Entries carry versions stamped from a per-table monotone counter so a
// node can ship *only out-of-date data* to each neighbour (§III.d): every
// neighbour remembers the table version it last saw, and the delta is
// "entries stamped later than that".
package rtable

import (
	"sort"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// Entry is one routing-table item.
type Entry struct {
	Ref   proto.NodeRef
	Flags proto.EntryFlag
	// LastSeen is the time this knowledge was last refreshed — by direct
	// contact or by a peer re-advertising it. Entries expire TTL after it.
	LastSeen time.Duration
	// LastDirect is the time of the last active communication with the
	// node itself (§III.c: the timestamp "is reset at every occurrence of
	// an active communication with the corresponding node"). Hearsay never
	// advances it; only direct-fresh entries may be re-advertised to
	// others, which is what stops dead nodes from being kept alive by
	// gossip loops.
	LastDirect time.Duration
	// Version is the table-local modification stamp used for delta sync.
	Version uint32
}

// neverDirect marks an entry that has never been heard from directly. Far
// enough in the past that now-LastDirect always exceeds any TTL, without
// risking duration overflow.
const neverDirect = time.Duration(-1) << 40

// DirectFresh reports whether the node itself was heard from within ttl.
func (e *Entry) DirectFresh(now, ttl time.Duration) bool {
	return now-e.LastDirect <= ttl
}

// Set is a collection of entries keyed by transport address, with an
// ID-sorted view for neighbour queries. The zero value is not usable; use
// NewSet.
type Set struct {
	byAddr map[uint64]*Entry
	// sorted caches the ID-ordered refs; rebuilt lazily after mutation.
	sorted []proto.NodeRef
	dirty  bool
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{byAddr: map[uint64]*Entry{}} }

// Len returns the number of entries.
func (s *Set) Len() int { return len(s.byAddr) }

// Get returns the entry for addr, or nil.
func (s *Set) Get(addr uint64) *Entry { return s.byAddr[addr] }

// UpsertMode grades how trustworthy an update's source is. The grades
// control which timestamps an update may advance — the mechanism that
// bounds how long dead nodes survive in routing tables (see Entry).
type UpsertMode uint8

// Upsert source grades.
const (
	// Direct: a message from the node itself. Advances both timestamps.
	Direct UpsertMode = iota
	// Vouched: an authoritative relation re-advertising its own dependants
	// (a parent shipping its superior list to children, a bus neighbour
	// shipping its children). Advances LastSeen only; the vouching chains
	// follow the tree and are acyclic, so staleness stays bounded.
	Vouched
	// Hearsay: any other third-party mention. Never advances timestamps of
	// an existing entry and only upgrades content (a node's advertised
	// level is taken monotonically upward, which stops stale copies from
	// echoing between peers forever).
	Hearsay
)

// Upsert inserts or refreshes an entry: the ref's metadata (level, score)
// is updated, flags are OR-ed in, timestamps advance according to mode,
// and the version stamp is applied when the stored data actually changed
// (pure keep-alive refreshes do not create delta traffic).
//
// validated is the instant the update's information was last confirmed: the
// current time for a direct message, or now minus the shipped age for
// relayed entries. Timestamps never move backward, so a stale relay cannot
// regress fresher knowledge — and because ages accumulate across hops, a
// dead node's entries drain everywhere within one TTL of its last words.
func (s *Set) Upsert(ref proto.NodeRef, flags proto.EntryFlag, validated time.Duration, version uint32, mode UpsertMode) *Entry {
	e, ok := s.byAddr[ref.Addr]
	if !ok {
		e = &Entry{Ref: ref, Flags: flags, LastSeen: validated, Version: version, LastDirect: neverDirect}
		if mode == Direct {
			e.LastDirect = validated
		}
		s.byAddr[ref.Addr] = e
		s.dirty = true
		return e
	}
	applyContent := e.Ref != ref
	if mode == Hearsay && ref.MaxLevel < e.Ref.MaxLevel {
		applyContent = false
	}
	if applyContent {
		if e.Ref.ID != ref.ID {
			s.dirty = true
		}
		e.Ref = ref
		e.Version = version
	}
	if e.Flags|flags != e.Flags {
		e.Flags |= flags
		e.Version = version
	}
	switch mode {
	case Direct:
		if validated > e.LastSeen {
			e.LastSeen = validated
		}
		if validated > e.LastDirect {
			e.LastDirect = validated
		}
	case Vouched:
		if validated > e.LastSeen {
			e.LastSeen = validated
		}
	}
	return e
}

// Touch records an active communication with addr, refreshing both
// timestamps. It reports whether the entry exists.
func (s *Set) Touch(addr uint64, now time.Duration) bool {
	if e, ok := s.byAddr[addr]; ok {
		e.LastSeen = now
		e.LastDirect = now
		return true
	}
	return false
}

// Remove deletes the entry for addr, reporting whether it existed.
func (s *Set) Remove(addr uint64) bool {
	if _, ok := s.byAddr[addr]; !ok {
		return false
	}
	delete(s.byAddr, addr)
	s.dirty = true
	return true
}

// Sweep removes entries whose LastSeen is older than now-ttl and returns
// the removed refs (callers react to losses, e.g. a vanished parent).
func (s *Set) Sweep(now, ttl time.Duration) []proto.NodeRef {
	var removed []proto.NodeRef
	for addr, e := range s.byAddr {
		if now-e.LastSeen > ttl {
			removed = append(removed, e.Ref)
			delete(s.byAddr, addr)
		}
	}
	if removed != nil {
		s.dirty = true
		// Map iteration order is random; deterministic callers need a
		// stable order.
		sortRefsByID(removed)
	}
	return removed
}

// sortRefsByID orders refs by (ID, Addr). Insertion sort: routing sets are
// small (§III.e bounds them to a handful per structure) and the reflection
// machinery of sort.Slice allocates on a path hit once per table mutation.
func sortRefsByID(refs []proto.NodeRef) {
	for i := 1; i < len(refs); i++ {
		r := refs[i]
		j := i - 1
		for j >= 0 && (refs[j].ID > r.ID || (refs[j].ID == r.ID && refs[j].Addr > r.Addr)) {
			refs[j+1] = refs[j]
			j--
		}
		refs[j+1] = r
	}
}

// Refs returns the entries' refs sorted by ID. The slice is shared with the
// set's cache: callers must not mutate it.
func (s *Set) Refs() []proto.NodeRef {
	if s.dirty || s.sorted == nil {
		s.sorted = s.sorted[:0]
		for _, e := range s.byAddr {
			s.sorted = append(s.sorted, e.Ref)
		}
		sortRefsByID(s.sorted)
		s.dirty = false
	}
	return s.sorted
}

// Each calls fn for every entry in ID order.
func (s *Set) Each(fn func(*Entry)) {
	for _, ref := range s.Refs() {
		fn(s.byAddr[ref.Addr])
	}
}

// Nearest returns the ref whose ID is Euclidean-nearest to x, and false on
// an empty set.
func (s *Set) Nearest(x idspace.ID) (proto.NodeRef, bool) {
	refs := s.Refs()
	if len(refs) == 0 {
		return proto.NodeRef{}, false
	}
	best := refs[0]
	bestD := idspace.Dist(best.ID, x)
	for _, r := range refs[1:] {
		if d := idspace.Dist(r.ID, x); d < bestD {
			best, bestD = r, d
		}
	}
	return best, true
}

// Neighbors returns the refs immediately left and right of x in ID order
// (excluding any entry with exactly ID x). Either result may be zero when x
// is at an edge of the set.
func (s *Set) Neighbors(x idspace.ID) (left, right proto.NodeRef) {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	if i > 0 {
		left = refs[i-1]
	}
	for i < len(refs) && refs[i].ID == x {
		i++
	}
	if i < len(refs) {
		right = refs[i]
	}
	return left, right
}

// NeighborsFresh returns the direct-fresh refs immediately left and right
// of x: the neighbours this node may legitimately vouch for to others.
// Hearsay entries (never heard from directly, or silent beyond ttl) are
// skipped, which is what keeps dead nodes from circulating forever.
func (s *Set) NeighborsFresh(x idspace.ID, now, ttl time.Duration) (left, right proto.NodeRef) {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	for l := i - 1; l >= 0; l-- {
		if e := s.byAddr[refs[l].Addr]; e != nil && e.DirectFresh(now, ttl) {
			left = refs[l]
			break
		}
	}
	for r := i; r < len(refs); r++ {
		if refs[r].ID == x {
			continue
		}
		if e := s.byAddr[refs[r].Addr]; e != nil && e.DirectFresh(now, ttl) {
			right = refs[r]
			break
		}
	}
	return left, right
}

// NeighborsFreshK returns up to k direct-fresh refs on one side of x
// (left = below x), nearest first.
func (s *Set) NeighborsFreshK(x idspace.ID, now, ttl time.Duration, k int, leftSide bool) []proto.NodeRef {
	return s.AppendNeighborsFreshK(nil, x, now, ttl, k, leftSide)
}

// AppendNeighborsFreshK is NeighborsFreshK appending into out, for callers
// that reuse a scratch buffer on the per-keep-alive hot path.
func (s *Set) AppendNeighborsFreshK(out []proto.NodeRef, x idspace.ID, now, ttl time.Duration, k int, leftSide bool) []proto.NodeRef {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	found := 0
	if leftSide {
		for l := i - 1; l >= 0 && found < k; l-- {
			if e := s.byAddr[refs[l].Addr]; e != nil && e.DirectFresh(now, ttl) {
				out = append(out, refs[l])
				found++
			}
		}
		return out
	}
	for r := i; r < len(refs) && found < k; r++ {
		if refs[r].ID == x {
			continue
		}
		if e := s.byAddr[refs[r].Addr]; e != nil && e.DirectFresh(now, ttl) {
			out = append(out, refs[r])
			found++
		}
	}
	return out
}

// SideRank returns how many entries lie strictly between x and id on id's
// side of x — 0 for the immediate neighbour. Used to bound how much
// level-0 knowledge a node accumulates per side.
func (s *Set) SideRank(x, id idspace.ID) int {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	rank := 0
	if id < x {
		for l := i - 1; l >= 0; l-- {
			if refs[l].ID <= id {
				break
			}
			rank++
		}
		return rank
	}
	for r := i; r < len(refs); r++ {
		if refs[r].ID == x {
			continue
		}
		if refs[r].ID >= id {
			break
		}
		rank++
	}
	return rank
}

// FreshRefs returns the refs of entries heard from directly within ttl.
func (s *Set) FreshRefs(now, ttl time.Duration) []proto.NodeRef {
	return s.AppendFreshRefs(nil, now, ttl)
}

// AppendFreshRefs is FreshRefs appending into out (scratch-buffer form).
func (s *Set) AppendFreshRefs(out []proto.NodeRef, now, ttl time.Duration) []proto.NodeRef {
	for _, r := range s.Refs() {
		if e := s.byAddr[r.Addr]; e != nil && e.DirectFresh(now, ttl) {
			out = append(out, r)
		}
	}
	return out
}

// HasID reports whether any entry has exactly the given ID and returns it.
func (s *Set) HasID(x idspace.ID) (proto.NodeRef, bool) {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	if i < len(refs) && refs[i].ID == x {
		return refs[i], true
	}
	return proto.NodeRef{}, false
}

// ChangedSince appends to out one proto.Entry per item whose version is
// newer than since, tagging each with level, the entry flags, and its age
// at this provider. It implements the "exchange only out-of-date data"
// delta of §III.d.
func (s *Set) ChangedSince(since uint32, level uint8, now time.Duration, out []proto.Entry) []proto.Entry {
	// Plain loop rather than Each: the closure Each would need captures
	// out, and this runs once per structure per outgoing keep-alive.
	for _, r := range s.Refs() {
		e := s.byAddr[r.Addr]
		if e != nil && e.Version > since {
			out = append(out, proto.Entry{
				Ref: e.Ref, Level: level, Flags: e.Flags, Version: e.Version,
				AgeDs: proto.AgeFrom(now, e.LastSeen),
			})
		}
	}
	return out
}
