// Package rtable implements the TreeP routing-table system of §III.c/d.
//
// A node's routing state is six structures, all holding (ID, IP, Port)
// tuples with "a timestamp associated with each node providing the
// information ... reset at every occurrence of an active communication ...
// the entry will be deleted after the expiration of the timestamp":
//
//  1. level-0 routing table (every node has one),
//  2. level-i (i>0) routing table: direct and indirect same-level
//     neighbours,
//  3. children routing table: own children plus children of direct
//     neighbours,
//  4. the level-1 parent (here: the immediate parent of the node's top
//     level),
//  5. the superior node list: ancestors and the immediate parent's
//     neighbours.
//
// Entries carry versions stamped from a per-table monotone counter so a
// node can ship *only out-of-date data* to each neighbour (§III.d): every
// neighbour remembers the table version it last saw, and the delta is
// "entries stamped later than that".
package rtable

import (
	"sort"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// Entry is one routing-table item.
type Entry struct {
	Ref   proto.NodeRef
	Flags proto.EntryFlag
	// LastSeen is the time this knowledge was last refreshed — by direct
	// contact or by a peer re-advertising it. Entries expire TTL after it.
	LastSeen time.Duration
	// LastDirect is the time of the last active communication with the
	// node itself (§III.c: the timestamp "is reset at every occurrence of
	// an active communication with the corresponding node"). Hearsay never
	// advances it; only direct-fresh entries may be re-advertised to
	// others, which is what stops dead nodes from being kept alive by
	// gossip loops.
	LastDirect time.Duration
	// Version is the table-local modification stamp used for delta sync.
	Version uint32
}

// neverDirect marks an entry that has never been heard from directly. Far
// enough in the past that now-LastDirect always exceeds any TTL, without
// risking duration overflow.
const neverDirect = time.Duration(-1) << 40

// DirectFresh reports whether the node itself was heard from within ttl.
func (e *Entry) DirectFresh(now, ttl time.Duration) bool {
	return now-e.LastDirect <= ttl
}

// Set is a collection of entries keyed by transport address, with an
// ID-sorted view for neighbour queries. The zero value is not usable; use
// NewSet.
//
// Storage layout (the protocol hot path runs through these sets several
// times per message, so the representation is chosen for cache locality
// over pointer convenience):
//
//   - slab: a contiguous []Entry. Slots freed by Remove/Sweep go on a
//     free list and are reused by the next insert, so steady-state churn
//     allocates nothing.
//   - keys/vals: a small open-addressed (linear probing, backward-shift
//     deletion) hash table mapping address → slab slot. One cache line
//     per probe instead of the general map machinery.
//   - order: the live slots in (ID, Addr) order, maintained incrementally
//     on insert/remove/ID-change (an O(n) memmove on sets §III.e bounds
//     to a handful of entries — never a full re-sort).
//
// Pointers returned by Get/Upsert point into the slab and are valid only
// until the next mutating call on the set.
type Set struct {
	slab  []Entry
	free  []int32
	order []int32
	// Open-addressed index: idx[i].ref == 0 means empty, otherwise the
	// slab slot is idx[i].ref-1. len(idx) is a power of two; key and
	// value share a cache line (this probe is the hottest operation on
	// the protocol path — six structures are touched per inbound
	// message).
	idx []setSlot
	// sorted caches the ID-ordered refs; rebuilt lazily (a straight copy
	// through order, no sorting) after a membership or ID change.
	sorted []proto.NodeRef
	dirty  bool
}

// NewSet returns an empty set.
func NewSet() *Set { return &Set{} }

// Len returns the number of entries.
func (s *Set) Len() int { return len(s.order) }

// setSlot is one probe-table slot: an address and its slab index + 1
// (0 marks an empty slot, so any address — including 0 — can be a key).
type setSlot struct {
	addr uint64
	ref  int32
}

// fibMult spreads addresses over the probe table (Fibonacci hashing).
const fibMult = 0x9E3779B97F4A7C15

// probeHome returns the preferred probe slot for addr.
func (s *Set) probeHome(addr uint64) uint64 {
	// Multiply-shift wants the top bits; mask them down to the table.
	return (addr * fibMult) >> 32 & uint64(len(s.idx)-1)
}

// lookup returns the probe position and slab slot for addr, or ok=false
// (with the position of the first empty probe slot) when absent.
func (s *Set) lookup(addr uint64) (pos uint64, slot int32, ok bool) {
	if len(s.idx) == 0 {
		return 0, 0, false
	}
	mask := uint64(len(s.idx) - 1)
	for pos = s.probeHome(addr); ; pos = (pos + 1) & mask {
		sl := s.idx[pos]
		if sl.ref == 0 {
			return pos, 0, false
		}
		if sl.addr == addr {
			return pos, sl.ref - 1, true
		}
	}
}

// idxInsert adds addr→slot to the probe table, growing it as needed.
func (s *Set) idxInsert(addr uint64, slot int32) {
	if len(s.idx) == 0 || 4*(len(s.order)+1) > 3*len(s.idx) {
		s.idxGrow()
	}
	pos, _, ok := s.lookup(addr)
	if ok {
		s.idx[pos].ref = slot + 1
		return
	}
	s.idx[pos] = setSlot{addr: addr, ref: slot + 1}
}

// idxGrow rebuilds the probe table at double capacity from the live slots.
func (s *Set) idxGrow() {
	n := 2 * len(s.idx)
	if n < 8 {
		n = 8
	}
	s.idx = make([]setSlot, n)
	mask := uint64(n - 1)
	for _, slot := range s.order {
		addr := s.slab[slot].Ref.Addr
		pos := s.probeHome(addr)
		for s.idx[pos].ref != 0 {
			pos = (pos + 1) & mask
		}
		s.idx[pos] = setSlot{addr: addr, ref: slot + 1}
	}
}

// idxDelete removes the probe entry at pos, backward-shifting the cluster
// so linear probing needs no tombstones.
func (s *Set) idxDelete(pos uint64) {
	mask := uint64(len(s.idx) - 1)
	i := pos
	for {
		s.idx[i].ref = 0
		j := i
		for {
			j = (j + 1) & mask
			if s.idx[j].ref == 0 {
				return
			}
			home := s.probeHome(s.idx[j].addr)
			// Move j back to i unless j's home lies cyclically in (i, j]
			// — then j is already as close to home as it can get.
			if i <= j {
				if i < home && home <= j {
					continue
				}
			} else if i < home || home <= j {
				continue
			}
			s.idx[i] = s.idx[j]
			i = j
			break
		}
	}
}

// Get returns the entry for addr, or nil. The pointer is valid until the
// next mutating call on the set.
func (s *Set) Get(addr uint64) *Entry {
	if _, slot, ok := s.lookup(addr); ok {
		return &s.slab[slot]
	}
	return nil
}

// refLess orders refs by (ID, Addr).
func refLess(a, b proto.NodeRef) bool {
	return a.ID < b.ID || (a.ID == b.ID && a.Addr < b.Addr)
}

// orderPos returns the position in order where ref belongs (the first
// live entry not ordered before ref).
func (s *Set) orderPos(ref proto.NodeRef) int {
	return sort.Search(len(s.order), func(i int) bool {
		return !refLess(s.slab[s.order[i]].Ref, ref)
	})
}

// orderInsert places slot into the ordered view.
func (s *Set) orderInsert(slot int32) {
	pos := s.orderPos(s.slab[slot].Ref)
	if s.order == nil {
		s.order = make([]int32, 0, 8)
	}
	s.order = append(s.order, 0)
	copy(s.order[pos+1:], s.order[pos:])
	s.order[pos] = slot
}

// orderRemove drops the entry holding ref from the ordered view.
func (s *Set) orderRemove(ref proto.NodeRef) {
	pos := s.orderPos(ref)
	// Duplicate (ID, Addr) pairs cannot exist (Addr is the key), so pos
	// names the slot exactly.
	s.order = append(s.order[:pos], s.order[pos+1:]...)
}

// newSlot takes a slab slot from the free list or extends the slab. The
// first extension reserves a handful of slots at once: routing sets hold
// several entries from their first use, and seeding the capacity skips
// the 1-2-4-8 growth ladder on every set in a large population.
func (s *Set) newSlot() int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	if s.slab == nil {
		s.slab = make([]Entry, 0, 8)
	}
	s.slab = append(s.slab, Entry{})
	return int32(len(s.slab) - 1)
}

// UpsertMode grades how trustworthy an update's source is. The grades
// control which timestamps an update may advance — the mechanism that
// bounds how long dead nodes survive in routing tables (see Entry).
type UpsertMode uint8

// Upsert source grades.
const (
	// Direct: a message from the node itself. Advances both timestamps.
	Direct UpsertMode = iota
	// Vouched: an authoritative relation re-advertising its own dependants
	// (a parent shipping its superior list to children, a bus neighbour
	// shipping its children). Advances LastSeen only; the vouching chains
	// follow the tree and are acyclic, so staleness stays bounded.
	Vouched
	// Hearsay: any other third-party mention. Never advances timestamps of
	// an existing entry and only upgrades content (a node's advertised
	// level is taken monotonically upward, which stops stale copies from
	// echoing between peers forever).
	Hearsay
)

// Upsert inserts or refreshes an entry: the ref's metadata (level, score)
// is updated, flags are OR-ed in, timestamps advance according to mode,
// and the version stamp is applied when the stored data actually changed
// (pure keep-alive refreshes do not create delta traffic).
//
// validated is the instant the update's information was last confirmed: the
// current time for a direct message, or now minus the shipped age for
// relayed entries. Timestamps never move backward, so a stale relay cannot
// regress fresher knowledge — and because ages accumulate across hops, a
// dead node's entries drain everywhere within one TTL of its last words.
//
// The returned pointer is valid until the next mutating call on the set.
func (s *Set) Upsert(ref proto.NodeRef, flags proto.EntryFlag, validated time.Duration, version uint32, mode UpsertMode) *Entry {
	_, slot, ok := s.lookup(ref.Addr)
	if !ok {
		slot = s.newSlot()
		e := &s.slab[slot]
		*e = Entry{Ref: ref, Flags: flags, LastSeen: validated, Version: version, LastDirect: neverDirect}
		if mode == Direct {
			e.LastDirect = validated
		}
		s.idxInsert(ref.Addr, slot)
		s.orderInsert(slot)
		s.dirty = true
		return e
	}
	e := &s.slab[slot]
	applyContent := e.Ref != ref
	if mode == Hearsay && ref.MaxLevel < e.Ref.MaxLevel {
		applyContent = false
	}
	if applyContent {
		if e.Ref.ID != ref.ID {
			s.orderRemove(e.Ref)
			e.Ref = ref
			s.orderInsert(slot)
			s.dirty = true
		} else {
			e.Ref = ref
		}
		e.Version = version
	}
	if e.Flags|flags != e.Flags {
		e.Flags |= flags
		e.Version = version
	}
	switch mode {
	case Direct:
		if validated > e.LastSeen {
			e.LastSeen = validated
		}
		if validated > e.LastDirect {
			e.LastDirect = validated
		}
	case Vouched:
		if validated > e.LastSeen {
			e.LastSeen = validated
		}
	}
	return e
}

// Touch records an active communication with addr, refreshing both
// timestamps. It reports whether the entry exists.
func (s *Set) Touch(addr uint64, now time.Duration) bool {
	if _, slot, ok := s.lookup(addr); ok {
		e := &s.slab[slot]
		e.LastSeen = now
		e.LastDirect = now
		return true
	}
	return false
}

// Remove deletes the entry for addr, reporting whether it existed.
func (s *Set) Remove(addr uint64) bool {
	pos, slot, ok := s.lookup(addr)
	if !ok {
		return false
	}
	s.orderRemove(s.slab[slot].Ref)
	s.idxDelete(pos)
	s.free = append(s.free, slot)
	s.dirty = true
	return true
}

// Sweep removes entries whose LastSeen is older than now-ttl and returns
// the removed refs in (ID, Addr) order (callers react to losses, e.g. a
// vanished parent). The returned slice is freshly allocated; Table.Sweep
// uses the scratch-buffered sweepInto instead.
func (s *Set) Sweep(now, ttl time.Duration) []proto.NodeRef {
	return s.sweepInto(nil, now, ttl)
}

// sweepInto is Sweep appending into out (Table.Sweep reuses one scratch
// buffer per structure across sweep ticks).
func (s *Set) sweepInto(out []proto.NodeRef, now, ttl time.Duration) []proto.NodeRef {
	w := 0
	for _, slot := range s.order {
		e := &s.slab[slot]
		if now-e.LastSeen > ttl {
			out = append(out, e.Ref)
			pos, _, ok := s.lookup(e.Ref.Addr)
			if ok {
				s.idxDelete(pos)
			}
			s.free = append(s.free, slot)
			continue
		}
		s.order[w] = slot
		w++
	}
	if w != len(s.order) {
		s.order = s.order[:w]
		s.dirty = true
	}
	return out
}

// Refs returns the entries' refs sorted by ID. The slice is shared with the
// set's cache: callers must not mutate it.
func (s *Set) Refs() []proto.NodeRef {
	if s.dirty || s.sorted == nil {
		s.sorted = s.sorted[:0]
		for _, slot := range s.order {
			s.sorted = append(s.sorted, s.slab[slot].Ref)
		}
		s.dirty = false
	}
	return s.sorted
}

// Each calls fn for every entry in ID order. The *Entry is valid for the
// duration of the callback; fn must not mutate the set.
func (s *Set) Each(fn func(*Entry)) {
	s.Refs() // keep the cache-refresh side effect of the refs-driven walk
	for _, slot := range s.order {
		fn(&s.slab[slot])
	}
}

// Nearest returns the ref whose ID is Euclidean-nearest to x, and false on
// an empty set.
func (s *Set) Nearest(x idspace.ID) (proto.NodeRef, bool) {
	refs := s.Refs()
	if len(refs) == 0 {
		return proto.NodeRef{}, false
	}
	best := refs[0]
	bestD := idspace.Dist(best.ID, x)
	for _, r := range refs[1:] {
		if d := idspace.Dist(r.ID, x); d < bestD {
			best, bestD = r, d
		}
	}
	return best, true
}

// searchID returns the first position in the ordered view whose ID is >= x.
func (s *Set) searchID(refs []proto.NodeRef, x idspace.ID) int {
	return sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
}

// Neighbors returns the refs immediately left and right of x in ID order
// (excluding any entry with exactly ID x). Either result may be zero when x
// is at an edge of the set.
func (s *Set) Neighbors(x idspace.ID) (left, right proto.NodeRef) {
	refs := s.Refs()
	i := s.searchID(refs, x)
	if i > 0 {
		left = refs[i-1]
	}
	for i < len(refs) && refs[i].ID == x {
		i++
	}
	if i < len(refs) {
		right = refs[i]
	}
	return left, right
}

// entryAt returns the live entry at ordered position i. Callers must have
// materialised refs via Refs() in the same unmutated state, so positions
// align between the refs cache and the order view.
func (s *Set) entryAt(i int) *Entry { return &s.slab[s.order[i]] }

// NeighborsFresh returns the direct-fresh refs immediately left and right
// of x: the neighbours this node may legitimately vouch for to others.
// Hearsay entries (never heard from directly, or silent beyond ttl) are
// skipped, which is what keeps dead nodes from circulating forever.
func (s *Set) NeighborsFresh(x idspace.ID, now, ttl time.Duration) (left, right proto.NodeRef) {
	refs := s.Refs()
	i := s.searchID(refs, x)
	for l := i - 1; l >= 0; l-- {
		if s.entryAt(l).DirectFresh(now, ttl) {
			left = refs[l]
			break
		}
	}
	for r := i; r < len(refs); r++ {
		if refs[r].ID == x {
			continue
		}
		if s.entryAt(r).DirectFresh(now, ttl) {
			right = refs[r]
			break
		}
	}
	return left, right
}

// NeighborsFreshK returns up to k direct-fresh refs on one side of x
// (left = below x), nearest first.
func (s *Set) NeighborsFreshK(x idspace.ID, now, ttl time.Duration, k int, leftSide bool) []proto.NodeRef {
	return s.AppendNeighborsFreshK(nil, x, now, ttl, k, leftSide)
}

// AppendNeighborsFreshK is NeighborsFreshK appending into out, for callers
// that reuse a scratch buffer on the per-keep-alive hot path.
func (s *Set) AppendNeighborsFreshK(out []proto.NodeRef, x idspace.ID, now, ttl time.Duration, k int, leftSide bool) []proto.NodeRef {
	refs := s.Refs()
	i := s.searchID(refs, x)
	found := 0
	if leftSide {
		for l := i - 1; l >= 0 && found < k; l-- {
			if s.entryAt(l).DirectFresh(now, ttl) {
				out = append(out, refs[l])
				found++
			}
		}
		return out
	}
	for r := i; r < len(refs) && found < k; r++ {
		if refs[r].ID == x {
			continue
		}
		if s.entryAt(r).DirectFresh(now, ttl) {
			out = append(out, refs[r])
			found++
		}
	}
	return out
}

// SideRank returns how many entries lie strictly between x and id on id's
// side of x — 0 for the immediate neighbour. Used to bound how much
// level-0 knowledge a node accumulates per side.
func (s *Set) SideRank(x, id idspace.ID) int {
	refs := s.Refs()
	i := s.searchID(refs, x)
	rank := 0
	if id < x {
		for l := i - 1; l >= 0; l-- {
			if refs[l].ID <= id {
				break
			}
			rank++
		}
		return rank
	}
	for r := i; r < len(refs); r++ {
		if refs[r].ID == x {
			continue
		}
		if refs[r].ID >= id {
			break
		}
		rank++
	}
	return rank
}

// FreshRefs returns the refs of entries heard from directly within ttl.
func (s *Set) FreshRefs(now, ttl time.Duration) []proto.NodeRef {
	return s.AppendFreshRefs(nil, now, ttl)
}

// AppendFreshRefs is FreshRefs appending into out (scratch-buffer form).
// Like every refs-returning query it hands out the cached view (which may
// lag content-only updates until the next membership change), not the live
// entry refs — callers advertise from the same snapshot Refs() shows.
func (s *Set) AppendFreshRefs(out []proto.NodeRef, now, ttl time.Duration) []proto.NodeRef {
	refs := s.Refs()
	for i, r := range refs {
		if s.entryAt(i).DirectFresh(now, ttl) {
			out = append(out, r)
		}
	}
	return out
}

// HasID reports whether any entry has exactly the given ID and returns it.
func (s *Set) HasID(x idspace.ID) (proto.NodeRef, bool) {
	refs := s.Refs()
	i := s.searchID(refs, x)
	if i < len(refs) && refs[i].ID == x {
		return refs[i], true
	}
	return proto.NodeRef{}, false
}

// ChangedSince appends to out one proto.Entry per item whose version is
// newer than since, tagging each with level, the entry flags, and its age
// at this provider. It implements the "exchange only out-of-date data"
// delta of §III.d.
func (s *Set) ChangedSince(since uint32, level uint8, now time.Duration, out []proto.Entry) []proto.Entry {
	// Materialise the refs cache first: delta composition runs on every
	// keep-alive, and the cache-refresh side effect (old code iterated
	// Refs() here) is what bounds how long content-only updates stay
	// invisible to the positional queries.
	s.Refs()
	for _, slot := range s.order {
		e := &s.slab[slot]
		if e.Version > since {
			out = append(out, proto.Entry{
				Ref: e.Ref, Level: level, Flags: e.Flags, Version: e.Version,
				AgeDs: proto.AgeFrom(now, e.LastSeen),
			})
		}
	}
	return out
}
