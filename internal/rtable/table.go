package rtable

import (
	"fmt"
	"strings"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// Table aggregates a node's complete routing state: the six structures of
// §III.c plus the version counter driving delta synchronisation.
type Table struct {
	// Level0 holds the node's level-0 neighbours (§III.c table 1).
	Level0 *Set
	// Bus holds, per level i > 0, the node's same-level view: direct bus
	// neighbours, indirect neighbours (neighbours-of-neighbours), and
	// level-0 contacts known to be members of level i (§III.c table 2).
	Bus map[uint8]*Set
	// Children holds the node's own children (§III.c table 3, first part).
	Children *Set
	// NbrChildren holds children of direct bus neighbours (table 3, second
	// part) — the replication that lets a node adopt orphans when a
	// neighbour dies.
	NbrChildren *Set
	// Superiors is the superior node list: ancestors plus the immediate
	// parent's direct neighbours (§III.c table 5).
	Superiors *Set

	// parent is the immediate parent of the node's top level (table 4).
	// Tracked outside the sets because it is a single slot with dedicated
	// loss semantics.
	parent    *Entry
	hasParent bool

	// version is the monotone stamp for delta sync; bumped on every
	// data-changing mutation.
	version uint32

	// levels caches the ascending occupied bus levels (rebuilt lazily; the
	// delta composition walks them once per outgoing keep-alive).
	levels      []uint8
	levelsDirty bool

	// sweepScratch backs the SweepResult slices handed out by Sweep, so
	// the per-node sweep tick allocates nothing in steady state. One
	// sweep's result is valid until the next Sweep on this table.
	sweepScratch struct {
		level0, children, nbrChildren, superiors []proto.NodeRef
		bus                                      []proto.NodeRef // shared backing for all levels
		busLvls                                  []uint8
		busEnds                                  []int
		busMap                                   map[uint8][]proto.NodeRef
	}
}

// New returns an empty table.
func New() *Table {
	return &Table{
		Level0:      NewSet(),
		Bus:         map[uint8]*Set{},
		Children:    NewSet(),
		NbrChildren: NewSet(),
		Superiors:   NewSet(),
	}
}

// NextVersion bumps and returns the table version stamp.
func (t *Table) NextVersion() uint32 {
	t.version++
	return t.version
}

// Version returns the current version stamp.
func (t *Table) Version() uint32 { return t.version }

// BusLevel returns the set for level i, creating it when needed.
func (t *Table) BusLevel(i uint8) *Set {
	s, ok := t.Bus[i]
	if !ok {
		s = NewSet()
		t.Bus[i] = s
		t.levelsDirty = true
	}
	return s
}

// DropLevel removes the whole set for a bus level (demotion vacates it).
func (t *Table) DropLevel(i uint8) {
	if _, ok := t.Bus[i]; ok {
		delete(t.Bus, i)
		t.levelsDirty = true
	}
}

// busLevels returns the occupied bus levels in ascending order, so that
// behaviour never depends on map iteration order. The slice is cached and
// must not be mutated by callers.
func (t *Table) busLevels() []uint8 {
	if t.levelsDirty || (t.levels == nil && len(t.Bus) > 0) {
		t.levels = t.levels[:0]
		for lvl := range t.Bus {
			t.levels = append(t.levels, lvl)
		}
		for i := 1; i < len(t.levels); i++ {
			for j := i; j > 0 && t.levels[j-1] > t.levels[j]; j-- {
				t.levels[j-1], t.levels[j] = t.levels[j], t.levels[j-1]
			}
		}
		t.levelsDirty = false
	}
	return t.levels
}

// SetParent installs or refreshes the parent slot. Adoption counts as
// direct credit: the relationship is probed immediately by a child report,
// and expiry reclaims the slot if the parent never answers.
func (t *Table) SetParent(ref proto.NodeRef, now time.Duration) {
	t.parent = &Entry{Ref: ref, Flags: proto.FParent, LastSeen: now, LastDirect: now, Version: t.NextVersion()}
	t.hasParent = true
}

// Parent returns the parent ref and whether one is known.
func (t *Table) Parent() (proto.NodeRef, bool) {
	if !t.hasParent {
		return proto.NodeRef{}, false
	}
	return t.parent.Ref, true
}

// ClearParent drops the parent slot.
func (t *Table) ClearParent() {
	t.parent = nil
	t.hasParent = false
}

// TouchParent refreshes the parent's timestamps if from matches it.
func (t *Table) TouchParent(from uint64, now time.Duration) {
	if t.hasParent && t.parent.Ref.Addr == from {
		t.parent.LastSeen = now
		t.parent.LastDirect = now
	}
}

// ParentExpired reports whether a parent is set and stale.
func (t *Table) ParentExpired(now, ttl time.Duration) bool {
	return t.hasParent && now-t.parent.LastSeen > ttl
}

// Touch refreshes LastSeen for addr in every structure that knows it; it
// implements "this timestamp is reset at every occurrence of an active
// communication with the corresponding node".
func (t *Table) Touch(addr uint64, now time.Duration) {
	t.Level0.Touch(addr, now)
	for _, s := range t.Bus {
		s.Touch(addr, now)
	}
	t.Children.Touch(addr, now)
	t.NbrChildren.Touch(addr, now)
	t.Superiors.Touch(addr, now)
	t.TouchParent(addr, now)
}

// RemoveEverywhere deletes addr from every structure (a peer known dead).
// It reports whether anything was removed and whether the parent slot was
// cleared.
func (t *Table) RemoveEverywhere(addr uint64) (removed, parentLost bool) {
	if t.Level0.Remove(addr) {
		removed = true
	}
	for _, s := range t.Bus {
		if s.Remove(addr) {
			removed = true
		}
	}
	if t.Children.Remove(addr) {
		removed = true
	}
	if t.NbrChildren.Remove(addr) {
		removed = true
	}
	if t.Superiors.Remove(addr) {
		removed = true
	}
	if t.hasParent && t.parent.Ref.Addr == addr {
		t.ClearParent()
		removed, parentLost = true, true
	}
	return removed, parentLost
}

// DowngradeLevels removes addr from every bus level above maxLevel: the
// peer itself just advertised the lower level, so higher-level membership
// knowledge about it is stale by first-hand evidence. (A demoting node
// only tells its direct bus neighbours; everyone else holds the entry
// until this, since any direct traffic keeps refreshing its timestamp.)
func (t *Table) DowngradeLevels(addr uint64, maxLevel uint8) bool {
	removed := false
	for lvl, s := range t.Bus {
		if lvl > maxLevel && s.Remove(addr) {
			removed = true
			if s.Len() == 0 {
				delete(t.Bus, lvl)
				t.levelsDirty = true
			}
		}
	}
	return removed
}

// SweepResult lists what a Sweep expired, so the protocol can react
// (restart elections, adopt orphans, relink the bus).
type SweepResult struct {
	Level0      []proto.NodeRef
	Bus         map[uint8][]proto.NodeRef
	Children    []proto.NodeRef
	NbrChildren []proto.NodeRef
	Superiors   []proto.NodeRef
	ParentLost  bool
	Parent      proto.NodeRef
}

// Empty reports whether the sweep removed nothing.
func (r SweepResult) Empty() bool {
	return len(r.Level0) == 0 && len(r.Bus) == 0 && len(r.Children) == 0 &&
		len(r.NbrChildren) == 0 && len(r.Superiors) == 0 && !r.ParentLost
}

// Sweep expires stale entries in every structure. The slices in the
// result share the table's scratch buffers and are valid until the next
// Sweep on this table.
func (t *Table) Sweep(now, ttl time.Duration) SweepResult {
	sc := &t.sweepScratch
	res := SweepResult{}
	res.Level0 = t.Level0.sweepInto(sc.level0[:0], now, ttl)
	sc.level0 = res.Level0

	// Bus removals for all levels share one backing array; per-level
	// sub-slices are cut from it after the loop. Growth inside append
	// copies the prefix, so earlier spans stay valid in the final array.
	bus := sc.bus[:0]
	sc.busLvls, sc.busEnds = sc.busLvls[:0], sc.busEnds[:0]
	for lvl, s := range t.Bus {
		start := len(bus)
		bus = s.sweepInto(bus, now, ttl)
		if len(bus) > start {
			sc.busLvls = append(sc.busLvls, lvl)
			sc.busEnds = append(sc.busEnds, len(bus))
		}
		if s.Len() == 0 {
			delete(t.Bus, lvl)
			t.levelsDirty = true
		}
	}
	sc.bus = bus
	if len(sc.busLvls) > 0 {
		if sc.busMap == nil {
			sc.busMap = map[uint8][]proto.NodeRef{}
		}
		clear(sc.busMap)
		res.Bus = sc.busMap
		start := 0
		for i, lvl := range sc.busLvls {
			end := sc.busEnds[i]
			res.Bus[lvl] = bus[start:end:end]
			start = end
		}
	}

	res.Children = t.Children.sweepInto(sc.children[:0], now, ttl)
	sc.children = res.Children
	res.NbrChildren = t.NbrChildren.sweepInto(sc.nbrChildren[:0], now, ttl)
	sc.nbrChildren = res.NbrChildren
	res.Superiors = t.Superiors.sweepInto(sc.superiors[:0], now, ttl)
	sc.superiors = res.Superiors
	if t.ParentExpired(now, ttl) {
		res.ParentLost = true
		res.Parent = t.parent.Ref
		t.ClearParent()
	}
	return res
}

// FindID looks for an exact ID anywhere in the table (the "target X is in
// the routing table" test of the §III.f routing algorithm).
func (t *Table) FindID(x idspace.ID) (proto.NodeRef, bool) {
	if r, ok := t.Level0.HasID(x); ok {
		return r, true
	}
	for _, lvl := range t.busLevels() {
		if s := t.Bus[lvl]; s != nil {
			if r, ok := s.HasID(x); ok {
				return r, true
			}
		}
	}
	if r, ok := t.Children.HasID(x); ok {
		return r, true
	}
	if r, ok := t.NbrChildren.HasID(x); ok {
		return r, true
	}
	if r, ok := t.Superiors.HasID(x); ok {
		return r, true
	}
	if t.hasParent && t.parent.Ref.ID == x {
		return t.parent.Ref, true
	}
	return proto.NodeRef{}, false
}

// Candidates appends every distinct peer in the table to out (deduplicated
// by address, keeping the ref with the highest MaxLevel, since that one
// carries the most routing power). The result is the candidate set C(a)
// the lookup algorithms select next hops from.
func (t *Table) Candidates(out []proto.NodeRef) []proto.NodeRef {
	// Linear-scan dedup from the caller's starting point: the table holds
	// a few dozen entries at most (§III.e), and a map here costs two
	// allocations on every routing decision. A plain helper (not a
	// closure) keeps the hot path allocation-free.
	base := len(out)
	out = appendCandidates(out, base, t.Level0.Refs())
	for _, lvl := range t.busLevels() {
		if s := t.Bus[lvl]; s != nil {
			out = appendCandidates(out, base, s.Refs())
		}
	}
	out = appendCandidates(out, base, t.Children.Refs())
	out = appendCandidates(out, base, t.NbrChildren.Refs())
	out = appendCandidates(out, base, t.Superiors.Refs())
	if t.hasParent {
		out = appendCandidate(out, base, t.parent.Ref)
	}
	return out
}

// appendCandidates merges refs into out[base:], deduplicating by address
// and keeping the higher MaxLevel per peer.
func appendCandidates(out []proto.NodeRef, base int, refs []proto.NodeRef) []proto.NodeRef {
	for _, r := range refs {
		out = appendCandidate(out, base, r)
	}
	return out
}

func appendCandidate(out []proto.NodeRef, base int, r proto.NodeRef) []proto.NodeRef {
	for i := base; i < len(out); i++ {
		if out[i].Addr == r.Addr {
			if r.MaxLevel > out[i].MaxLevel {
				out[i] = r
			}
			return out
		}
	}
	return append(out, r)
}

// NearestInRange returns the known peer with ID in [lo, hi] nearest to
// toward, excluding the given address, across every structure in the
// table. Ring repair probes use it to pick the next hop toward a void:
// the interval is the unexplored gap, toward is its near edge, and the
// hierarchy/bus entries let a probe cross stretches where level-0
// knowledge has died out. Ties break on (distance, ID, address) so every
// replica of the same table picks the same hop. lo > hi means an empty
// interval. Allocation-free: it runs on the periodic sweep path.
func (t *Table) NearestInRange(lo, hi, toward idspace.ID, exclude uint64) (proto.NodeRef, bool) {
	var sc nearScan
	sc.lo, sc.hi, sc.toward, sc.exclude = lo, hi, toward, exclude
	if lo > hi {
		return proto.NodeRef{}, false
	}
	sc.refs(t.Level0.Refs())
	for _, lvl := range t.busLevels() {
		if s := t.Bus[lvl]; s != nil {
			sc.refs(s.Refs())
		}
	}
	sc.refs(t.Children.Refs())
	sc.refs(t.NbrChildren.Refs())
	sc.refs(t.Superiors.Refs())
	if t.hasParent {
		sc.consider(t.parent.Ref)
	}
	return sc.best, sc.found
}

// nearScan accumulates the NearestInRange winner. A plain struct with
// methods (not closures over locals) keeps the scan allocation-free.
type nearScan struct {
	lo, hi, toward idspace.ID
	exclude        uint64
	best           proto.NodeRef
	bestDist       uint64
	found          bool
}

func (sc *nearScan) refs(refs []proto.NodeRef) {
	for _, r := range refs {
		sc.consider(r)
	}
}

func (sc *nearScan) consider(r proto.NodeRef) {
	if r.Addr == sc.exclude || r.ID < sc.lo || r.ID > sc.hi {
		return
	}
	d := idspace.Dist(r.ID, sc.toward)
	if !sc.found || d < sc.bestDist ||
		(d == sc.bestDist && (r.ID < sc.best.ID || (r.ID == sc.best.ID && r.Addr < sc.best.Addr))) {
		sc.best, sc.bestDist, sc.found = r, d, true
	}
}

// Size returns the total number of entries across all structures (the
// quantity §III.e bounds analytically), counting the parent slot.
func (t *Table) Size() int {
	n := t.Level0.Len() + t.Children.Len() + t.NbrChildren.Len() + t.Superiors.Len()
	for _, s := range t.Bus {
		n += s.Len()
	}
	if t.hasParent {
		n++
	}
	return n
}

// Delta collects every entry newer than since across all structures, for
// shipment to a neighbour that last saw version since. Entries carry their
// age at this node (relative to now) so staleness accumulates across hops.
func (t *Table) Delta(since uint32, now time.Duration) []proto.Entry {
	return t.AppendDelta(nil, since, now)
}

// AppendDelta is Delta appending into out, for callers that reuse a
// scratch buffer on the per-message hot path.
func (t *Table) AppendDelta(out []proto.Entry, since uint32, now time.Duration) []proto.Entry {
	out = t.Level0.ChangedSince(since, 0, now, out)
	for _, lvl := range t.busLevels() {
		if s := t.Bus[lvl]; s != nil {
			out = s.ChangedSince(since, lvl, now, out)
		}
	}
	out = t.Children.ChangedSince(since, 0, now, out)
	out = t.NbrChildren.ChangedSince(since, 0, now, out)
	out = t.Superiors.ChangedSince(since, 0, now, out)
	if t.hasParent && t.parent.Version > since {
		out = append(out, proto.Entry{
			Ref: t.parent.Ref, Level: t.parent.Ref.MaxLevel, Flags: proto.FParent,
			Version: t.parent.Version, AgeDs: proto.AgeFrom(now, t.parent.LastSeen),
		})
	}
	return out
}

// ParentEntry returns a copy of the parent slot's entry for timestamp
// inspection.
func (t *Table) ParentEntry() (Entry, bool) {
	if !t.hasParent {
		return Entry{}, false
	}
	return *t.parent, true
}

// String renders a compact summary for debugging.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rtable{l0:%d", t.Level0.Len())
	for lvl, s := range t.Bus {
		fmt.Fprintf(&b, " l%d:%d", lvl, s.Len())
	}
	fmt.Fprintf(&b, " ch:%d nch:%d sup:%d", t.Children.Len(), t.NbrChildren.Len(), t.Superiors.Len())
	if t.hasParent {
		fmt.Fprintf(&b, " parent:%s", t.parent.Ref.ID)
	}
	b.WriteString("}")
	return b.String()
}
