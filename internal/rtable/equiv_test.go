package rtable

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// refSet is the pre-slab, map-based Set implementation, kept verbatim as
// the behavioural oracle: the slab rewrite must be observation-equivalent
// under every operation sequence.
type refSet struct {
	byAddr map[uint64]*Entry
	sorted []proto.NodeRef
	dirty  bool
}

func newRefSet() *refSet { return &refSet{byAddr: map[uint64]*Entry{}} }

func (s *refSet) Len() int               { return len(s.byAddr) }
func (s *refSet) Get(addr uint64) *Entry { return s.byAddr[addr] }

func (s *refSet) Upsert(ref proto.NodeRef, flags proto.EntryFlag, validated time.Duration, version uint32, mode UpsertMode) *Entry {
	e, ok := s.byAddr[ref.Addr]
	if !ok {
		e = &Entry{Ref: ref, Flags: flags, LastSeen: validated, Version: version, LastDirect: neverDirect}
		if mode == Direct {
			e.LastDirect = validated
		}
		s.byAddr[ref.Addr] = e
		s.dirty = true
		return e
	}
	applyContent := e.Ref != ref
	if mode == Hearsay && ref.MaxLevel < e.Ref.MaxLevel {
		applyContent = false
	}
	if applyContent {
		if e.Ref.ID != ref.ID {
			s.dirty = true
		}
		e.Ref = ref
		e.Version = version
	}
	if e.Flags|flags != e.Flags {
		e.Flags |= flags
		e.Version = version
	}
	switch mode {
	case Direct:
		if validated > e.LastSeen {
			e.LastSeen = validated
		}
		if validated > e.LastDirect {
			e.LastDirect = validated
		}
	case Vouched:
		if validated > e.LastSeen {
			e.LastSeen = validated
		}
	}
	return e
}

func (s *refSet) Touch(addr uint64, now time.Duration) bool {
	if e, ok := s.byAddr[addr]; ok {
		e.LastSeen = now
		e.LastDirect = now
		return true
	}
	return false
}

func (s *refSet) Remove(addr uint64) bool {
	if _, ok := s.byAddr[addr]; !ok {
		return false
	}
	delete(s.byAddr, addr)
	s.dirty = true
	return true
}

func (s *refSet) Sweep(now, ttl time.Duration) []proto.NodeRef {
	var removed []proto.NodeRef
	for addr, e := range s.byAddr {
		if now-e.LastSeen > ttl {
			removed = append(removed, e.Ref)
			delete(s.byAddr, addr)
		}
	}
	if removed != nil {
		s.dirty = true
		sort.Slice(removed, func(i, j int) bool {
			return refLess(removed[i], removed[j])
		})
	}
	return removed
}

func (s *refSet) Refs() []proto.NodeRef {
	if s.dirty || s.sorted == nil {
		s.sorted = s.sorted[:0]
		for _, e := range s.byAddr {
			s.sorted = append(s.sorted, e.Ref)
		}
		sort.Slice(s.sorted, func(i, j int) bool {
			return refLess(s.sorted[i], s.sorted[j])
		})
		s.dirty = false
	}
	return s.sorted
}

func (s *refSet) ChangedSince(since uint32, level uint8, now time.Duration, out []proto.Entry) []proto.Entry {
	for _, r := range s.Refs() {
		e := s.byAddr[r.Addr]
		if e != nil && e.Version > since {
			out = append(out, proto.Entry{
				Ref: e.Ref, Level: level, Flags: e.Flags, Version: e.Version,
				AgeDs: proto.AgeFrom(now, e.LastSeen),
			})
		}
	}
	return out
}

func (s *refSet) FreshRefs(now, ttl time.Duration) []proto.NodeRef {
	var out []proto.NodeRef
	for _, r := range s.Refs() {
		if e := s.byAddr[r.Addr]; e != nil && e.DirectFresh(now, ttl) {
			out = append(out, r)
		}
	}
	return out
}

func (s *refSet) Neighbors(x idspace.ID) (left, right proto.NodeRef) {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	if i > 0 {
		left = refs[i-1]
	}
	for i < len(refs) && refs[i].ID == x {
		i++
	}
	if i < len(refs) {
		right = refs[i]
	}
	return left, right
}

func (s *refSet) NeighborsFresh(x idspace.ID, now, ttl time.Duration) (left, right proto.NodeRef) {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	for l := i - 1; l >= 0; l-- {
		if e := s.byAddr[refs[l].Addr]; e != nil && e.DirectFresh(now, ttl) {
			left = refs[l]
			break
		}
	}
	for r := i; r < len(refs); r++ {
		if refs[r].ID == x {
			continue
		}
		if e := s.byAddr[refs[r].Addr]; e != nil && e.DirectFresh(now, ttl) {
			right = refs[r]
			break
		}
	}
	return left, right
}

func (s *refSet) NeighborsFreshK(x idspace.ID, now, ttl time.Duration, k int, leftSide bool) []proto.NodeRef {
	var out []proto.NodeRef
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	found := 0
	if leftSide {
		for l := i - 1; l >= 0 && found < k; l-- {
			if e := s.byAddr[refs[l].Addr]; e != nil && e.DirectFresh(now, ttl) {
				out = append(out, refs[l])
				found++
			}
		}
		return out
	}
	for r := i; r < len(refs) && found < k; r++ {
		if refs[r].ID == x {
			continue
		}
		if e := s.byAddr[refs[r].Addr]; e != nil && e.DirectFresh(now, ttl) {
			out = append(out, refs[r])
			found++
		}
	}
	return out
}

func (s *refSet) SideRank(x, id idspace.ID) int {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	rank := 0
	if id < x {
		for l := i - 1; l >= 0; l-- {
			if refs[l].ID <= id {
				break
			}
			rank++
		}
		return rank
	}
	for r := i; r < len(refs); r++ {
		if refs[r].ID == x {
			continue
		}
		if refs[r].ID >= id {
			break
		}
		rank++
	}
	return rank
}

func (s *refSet) Nearest(x idspace.ID) (proto.NodeRef, bool) {
	refs := s.Refs()
	if len(refs) == 0 {
		return proto.NodeRef{}, false
	}
	best := refs[0]
	bestD := idspace.Dist(best.ID, x)
	for _, r := range refs[1:] {
		if d := idspace.Dist(r.ID, x); d < bestD {
			best, bestD = r, d
		}
	}
	return best, true
}

func (s *refSet) HasID(x idspace.ID) (proto.NodeRef, bool) {
	refs := s.Refs()
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ID >= x })
	if i < len(refs) && refs[i].ID == x {
		return refs[i], true
	}
	return proto.NodeRef{}, false
}

// equivOps drives one operation sequence against both implementations and
// fails at the first observable divergence. Addresses and IDs draw from a
// small pool so collisions (re-inserts, same-ID entries, slot reuse after
// expiry) happen constantly.
func equivOps(t *testing.T, ops []byte) {
	t.Helper()
	slab := NewSet()
	ref := newRefSet()
	now := time.Duration(0)
	const ttl = 100 * time.Millisecond

	u64 := func(i int) uint64 {
		if i+1 < len(ops) {
			return uint64(ops[i])<<8 | uint64(ops[i+1])
		}
		return uint64(ops[i%len(ops)])
	}
	var version uint32

	for i := 0; i+4 < len(ops); i += 5 {
		op := ops[i] % 6
		addr := 1 + u64(i+1)%24
		// IDs derive from the address so that re-upserting a live peer is
		// usually a content-only update (level/score change, same ID) —
		// the case whose staleness semantics the refs cache is allowed to
		// defer — with occasional genuine ID moves mixed in.
		id := idspace.ID(addr * 0x0A0000000000000)
		if ops[i+2]%16 == 0 {
			id += idspace.ID(ops[i+2]) * 0x04000000000000
		}
		now += time.Duration(ops[i+3]%50) * time.Millisecond
		switch op {
		case 0, 1: // Upsert dominates real traffic.
			version++
			mode := UpsertMode(ops[i+4] % 3)
			r := proto.NodeRef{ID: id, Addr: addr, MaxLevel: ops[i+4] % 4, Score: uint16(ops[i+4])}
			flags := proto.EntryFlag(1 << (ops[i+4] % 5))
			validated := now - time.Duration(ops[i+4]%120)*time.Millisecond
			a := slab.Upsert(r, flags, validated, version, mode)
			b := ref.Upsert(r, flags, validated, version, mode)
			if *a != *b {
				t.Fatalf("op %d: Upsert result diverged: slab=%+v ref=%+v", i, *a, *b)
			}
		case 2:
			if got, want := slab.Touch(addr, now), ref.Touch(addr, now); got != want {
				t.Fatalf("op %d: Touch(%d) slab=%v ref=%v", i, addr, got, want)
			}
		case 3:
			if got, want := slab.Remove(addr), ref.Remove(addr); got != want {
				t.Fatalf("op %d: Remove(%d) slab=%v ref=%v", i, addr, got, want)
			}
		case 4:
			a := slab.Sweep(now, ttl)
			b := ref.Sweep(now, ttl)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("op %d: Sweep diverged:\nslab %v\nref  %v", i, a, b)
			}
		case 5: // pure queries, checked below
		}
		// Compare only ONE query family per op, selected by the input.
		// Each query call has cache-materialisation side effects (the
		// refs cache refreshes lazily, and stale content-only updates
		// stay invisible until then — load-bearing protocol semantics);
		// comparing everything every op would force both caches fresh
		// and mask divergences in exactly that laziness. The selector
		// lets staleness windows build up differently per sequence.
		checkEquiv(t, i, slab, ref, now, ttl, id, int(ops[i+4]%8))
	}
	// Final full sweep over every view.
	for sel := 0; sel < 8; sel++ {
		checkEquiv(t, -1, slab, ref, now, ttl, idspace.ID(0x4000000000000000), sel)
	}
}

// checkEquiv compares one observable view (selected by sel) of the two
// sets.
func checkEquiv(t *testing.T, op int, slab *Set, ref *refSet, now, ttl time.Duration, x idspace.ID, sel int) {
	t.Helper()
	if slab.Len() != ref.Len() {
		t.Fatalf("op %d: Len slab=%d ref=%d", op, slab.Len(), ref.Len())
	}
	switch sel {
	case 0:
		a, b := slab.Refs(), ref.Refs()
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("op %d: Refs diverged:\nslab %v\nref  %v", op, a, b)
		}
		for _, r := range b {
			ea, eb := slab.Get(r.Addr), ref.Get(r.Addr)
			if ea == nil || *ea != *eb {
				t.Fatalf("op %d: Get(%d) diverged: slab=%+v ref=%+v", op, r.Addr, ea, eb)
			}
		}
	case 1:
		da := slab.ChangedSince(0, 1, now, nil)
		db := ref.ChangedSince(0, 1, now, nil)
		if fmt.Sprint(da) != fmt.Sprint(db) {
			t.Fatalf("op %d: ChangedSince diverged:\nslab %v\nref  %v", op, da, db)
		}
	case 2:
		fa, fb := slab.FreshRefs(now, ttl), ref.FreshRefs(now, ttl)
		if fmt.Sprint(fa) != fmt.Sprint(fb) {
			t.Fatalf("op %d: FreshRefs diverged:\nslab %v\nref  %v", op, fa, fb)
		}
	case 3:
		la, ra := slab.Neighbors(x)
		lb, rb := ref.Neighbors(x)
		if la != lb || ra != rb {
			t.Fatalf("op %d: Neighbors(%v) diverged: slab=(%v,%v) ref=(%v,%v)", op, x, la, ra, lb, rb)
		}
	case 4:
		la, ra := slab.NeighborsFresh(x, now, ttl)
		lb, rb := ref.NeighborsFresh(x, now, ttl)
		if la != lb || ra != rb {
			t.Fatalf("op %d: NeighborsFresh(%v) diverged: slab=(%v,%v) ref=(%v,%v)", op, x, la, ra, lb, rb)
		}
	case 5:
		for _, left := range []bool{true, false} {
			ka := slab.NeighborsFreshK(x, now, ttl, 3, left)
			kb := ref.NeighborsFreshK(x, now, ttl, 3, left)
			if fmt.Sprint(ka) != fmt.Sprint(kb) {
				t.Fatalf("op %d: NeighborsFreshK(%v,left=%v) diverged:\nslab %v\nref  %v", op, x, left, ka, kb)
			}
		}
	case 6:
		if ga, gb := slab.SideRank(x, x+1), ref.SideRank(x, x+1); ga != gb {
			t.Fatalf("op %d: SideRank diverged: slab=%d ref=%d", op, ga, gb)
		}
		na, oka := slab.Nearest(x)
		nb, okb := ref.Nearest(x)
		if oka != okb || na != nb {
			t.Fatalf("op %d: Nearest(%v) diverged: slab=(%v,%v) ref=(%v,%v)", op, x, na, oka, nb, okb)
		}
	case 7:
		ha, oka := slab.HasID(x)
		hb, okb := ref.HasID(x)
		if oka != okb || ha != hb {
			t.Fatalf("op %d: HasID(%v) diverged: slab=(%v,%v) ref=(%v,%v)", op, x, ha, oka, hb, okb)
		}
	}
}

// TestSetEquivalenceRandom drives long random operation sequences through
// the slab-backed Set and the map-based reference.
func TestSetEquivalenceRandom(t *testing.T) {
	seeds := 150
	opsLen := 600
	if testing.Short() {
		seeds = 30
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		ops := make([]byte, opsLen)
		rng.Read(ops)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { equivOps(t, ops) })
	}
}

// FuzzSetEquivalence lets the fuzzer search for diverging sequences.
func FuzzSetEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4; i++ {
		ops := make([]byte, 100)
		rng.Read(ops)
		f.Add(ops)
	}
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) < 5 {
			return
		}
		equivOps(t, ops)
	})
}

// TestSetSteadyStateAllocs pins the refresh-heavy hot paths at zero
// allocations: keep-alive traffic touches, re-upserts and delta
// composition over an existing population must not allocate.
func TestSetSteadyStateAllocs(t *testing.T) {
	s := NewSet()
	now := time.Duration(0)
	refs := make([]proto.NodeRef, 12)
	for i := range refs {
		refs[i] = proto.NodeRef{ID: idspace.ID(i) << 40, Addr: uint64(i + 1), MaxLevel: uint8(i % 3)}
		s.Upsert(refs[i], proto.FNeighbor, now, uint32(i+1), Direct)
	}
	scratch := make([]proto.Entry, 0, 32)
	allocs := testing.AllocsPerRun(200, func() {
		now += time.Millisecond
		for _, r := range refs {
			s.Upsert(r, proto.FNeighbor, now, 99, Direct)
			s.Touch(r.Addr, now)
		}
		scratch = s.ChangedSince(0, 0, now, scratch[:0])
		s.Refs()
		s.NeighborsFresh(refs[3].ID, now, time.Hour)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Set operations allocated %.1f times per run, want 0", allocs)
	}
}

// TestSetSlotReuse verifies expired slots are recycled rather than growing
// the slab: a churn loop (insert + expire) must keep slab capacity bounded.
func TestSetSlotReuse(t *testing.T) {
	s := NewSet()
	const ttl = 10 * time.Millisecond
	now := time.Duration(0)
	for round := 0; round < 1000; round++ {
		now += time.Minute
		addr := uint64(1 + round%7)
		s.Upsert(proto.NodeRef{ID: idspace.ID(round) << 32, Addr: addr}, proto.FNeighbor, now, uint32(round), Direct)
		now += time.Minute
		s.Sweep(now, ttl)
	}
	if cap(s.slab) > 16 {
		t.Fatalf("slab grew to %d slots under churn; free-list reuse broken", cap(s.slab))
	}
}
