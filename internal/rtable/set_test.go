package rtable

import (
	"math/rand"
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

func ref(id idspace.ID, addr uint64) proto.NodeRef {
	return proto.NodeRef{ID: id, Addr: addr}
}

func TestSetUpsertAndGet(t *testing.T) {
	s := NewSet()
	e := s.Upsert(ref(10, 1), proto.FNeighbor, 5*time.Second, 1, Direct)
	if e == nil || s.Len() != 1 {
		t.Fatal("upsert failed")
	}
	if got := s.Get(1); got != e {
		t.Fatal("get returned different entry")
	}
	if s.Get(99) != nil {
		t.Fatal("get of unknown addr")
	}
}

func TestUpsertRefreshesWithoutVersionBumpOnNoChange(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), proto.FNeighbor, 0, 1, Direct)
	e := s.Upsert(ref(10, 1), proto.FNeighbor, 10*time.Second, 2, Direct)
	if e.Version != 1 {
		t.Fatalf("pure refresh must keep version 1, got %d", e.Version)
	}
	if e.LastSeen != 10*time.Second {
		t.Fatal("refresh must update LastSeen")
	}
}

func TestUpsertBumpsVersionOnChange(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), proto.FNeighbor, 0, 1, Direct)
	// Same peer, now seen at a higher level.
	r := ref(10, 1)
	r.MaxLevel = 2
	e := s.Upsert(r, proto.FNeighbor, 1, 5, Direct)
	if e.Version != 5 {
		t.Fatalf("metadata change must restamp: version %d", e.Version)
	}
	// New flag also restamps.
	e = s.Upsert(r, proto.FSuperior, 2, 7, Direct)
	if e.Version != 7 || e.Flags != proto.FNeighbor|proto.FSuperior {
		t.Fatalf("flag change: version %d flags %b", e.Version, e.Flags)
	}
}

func TestTouch(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	if !s.Touch(1, 9*time.Second) {
		t.Fatal("touch known addr")
	}
	if s.Touch(2, 9*time.Second) {
		t.Fatal("touch unknown addr")
	}
	if s.Get(1).LastSeen != 9*time.Second {
		t.Fatal("touch did not update LastSeen")
	}
}

func TestRemove(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("remove semantics")
	}
	if s.Len() != 0 {
		t.Fatal("len after remove")
	}
}

func TestSweep(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	s.Upsert(ref(20, 2), 0, 5*time.Second, 2, Direct)
	s.Upsert(ref(30, 3), 0, 10*time.Second, 3, Direct)
	removed := s.Sweep(6*time.Second, 5*time.Second)
	if len(removed) != 1 || removed[0].ID != 10 {
		t.Fatalf("sweep removed %v", removed)
	}
	if s.Len() != 2 {
		t.Fatalf("len after sweep %d", s.Len())
	}
	// Entries at exactly ttl age survive (strict >): ages are 5s and 0s.
	removed = s.Sweep(10*time.Second, 5*time.Second)
	if len(removed) != 0 {
		t.Fatalf("boundary sweep removed %v", removed)
	}
}

func TestSweepDeterministicOrder(t *testing.T) {
	s := NewSet()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		s.Upsert(ref(idspace.ID(rng.Uint64()), uint64(i+1)), 0, 0, 1, Direct)
	}
	removed := s.Sweep(time.Hour, time.Second)
	for i := 1; i < len(removed); i++ {
		if removed[i-1].ID > removed[i].ID {
			t.Fatal("sweep result not ID-sorted")
		}
	}
}

func TestRefsSortedAndCached(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(30, 3), 0, 0, 1, Direct)
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	s.Upsert(ref(20, 2), 0, 0, 1, Direct)
	refs := s.Refs()
	if len(refs) != 3 || refs[0].ID != 10 || refs[1].ID != 20 || refs[2].ID != 30 {
		t.Fatalf("refs %v", refs)
	}
	// Mutation invalidates the cache.
	s.Remove(2)
	refs = s.Refs()
	if len(refs) != 2 || refs[1].ID != 30 {
		t.Fatalf("refs after remove %v", refs)
	}
}

func TestNearest(t *testing.T) {
	s := NewSet()
	if _, ok := s.Nearest(5); ok {
		t.Fatal("nearest on empty set")
	}
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	s.Upsert(ref(100, 2), 0, 0, 1, Direct)
	s.Upsert(ref(1000, 3), 0, 0, 1, Direct)
	if r, _ := s.Nearest(90); r.ID != 100 {
		t.Fatalf("nearest(90) = %v", r.ID)
	}
	if r, _ := s.Nearest(0); r.ID != 10 {
		t.Fatalf("nearest(0) = %v", r.ID)
	}
	if r, _ := s.Nearest(2000); r.ID != 1000 {
		t.Fatalf("nearest(2000) = %v", r.ID)
	}
}

func TestNeighbors(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	s.Upsert(ref(20, 2), 0, 0, 1, Direct)
	s.Upsert(ref(30, 3), 0, 0, 1, Direct)
	l, r := s.Neighbors(20)
	if l.ID != 10 || r.ID != 30 {
		t.Fatalf("neighbors(20) = %v %v", l.ID, r.ID)
	}
	l, r = s.Neighbors(5)
	if !l.IsZero() || r.ID != 10 {
		t.Fatalf("neighbors(5) = %v %v", l, r)
	}
	l, r = s.Neighbors(35)
	if l.ID != 30 || !r.IsZero() {
		t.Fatalf("neighbors(35) = %v %v", l, r)
	}
	l, r = s.Neighbors(25)
	if l.ID != 20 || r.ID != 30 {
		t.Fatalf("neighbors(25) = %v %v", l, r)
	}
}

func TestHasID(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	if _, ok := s.HasID(10); !ok {
		t.Fatal("HasID miss")
	}
	if _, ok := s.HasID(11); ok {
		t.Fatal("HasID false positive")
	}
}

func TestChangedSince(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(10, 1), proto.FNeighbor, 0, 1, Direct)
	s.Upsert(ref(20, 2), proto.FNeighbor, 0, 5, Direct)
	s.Upsert(ref(30, 3), proto.FNeighbor, 0, 9, Direct)
	out := s.ChangedSince(4, 2, 0, nil)
	if len(out) != 2 {
		t.Fatalf("delta size %d", len(out))
	}
	for _, e := range out {
		if e.Version <= 4 || e.Level != 2 {
			t.Fatalf("bad delta entry %+v", e)
		}
	}
	if got := s.ChangedSince(100, 0, 0, nil); len(got) != 0 {
		t.Fatal("nothing newer than 100")
	}
}

func TestEachOrder(t *testing.T) {
	s := NewSet()
	s.Upsert(ref(30, 3), 0, 0, 1, Direct)
	s.Upsert(ref(10, 1), 0, 0, 1, Direct)
	var ids []idspace.ID
	s.Each(func(e *Entry) { ids = append(ids, e.Ref.ID) })
	if len(ids) != 2 || ids[0] != 10 || ids[1] != 30 {
		t.Fatalf("each order %v", ids)
	}
}
