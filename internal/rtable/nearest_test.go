package rtable

import (
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

func TestNearestInRange(t *testing.T) {
	tb := New()
	now := time.Second
	add := func(s *Set, id idspace.ID, addr uint64) {
		s.Upsert(ref(id, addr), proto.FNeighbor, now, tb.NextVersion(), Direct)
	}
	add(tb.Level0, 100, 1)
	add(tb.Level0, 300, 3)
	add(tb.BusLevel(1), 200, 2)
	add(tb.Children, 250, 4)
	add(tb.Superiors, 260, 5)
	tb.SetParent(ref(280, 6), now)

	// Nearest to 290 within [150, 290]: the parent at 280.
	if r, ok := tb.NearestInRange(150, 290, 290, 0); !ok || r.Addr != 6 {
		t.Fatalf("want parent (addr 6), got %v ok=%v", r, ok)
	}
	// Excluding the parent's address falls back to the superior at 260.
	if r, ok := tb.NearestInRange(150, 290, 290, 6); !ok || r.Addr != 5 {
		t.Fatalf("want superior (addr 5), got %v ok=%v", r, ok)
	}
	// Bus and child entries are candidates too: nearest to 150 is 200.
	if r, ok := tb.NearestInRange(150, 240, 150, 0); !ok || r.Addr != 2 {
		t.Fatalf("want bus entry (addr 2), got %v ok=%v", r, ok)
	}
	// Empty interval (lo > hi) and intervals with no member find nothing.
	if _, ok := tb.NearestInRange(500, 400, 450, 0); ok {
		t.Fatal("lo > hi must be empty")
	}
	if _, ok := tb.NearestInRange(301, 400, 301, 0); ok {
		t.Fatal("no member in [301, 400]")
	}
	// Bounds are inclusive.
	if r, ok := tb.NearestInRange(300, 300, 300, 0); !ok || r.Addr != 3 {
		t.Fatalf("inclusive bound missed entry at 300: %v ok=%v", r, ok)
	}
}

func TestNearestInRangeDeterministicTieBreak(t *testing.T) {
	tb := New()
	now := time.Second
	// Two entries equidistant from 200; the lower ID must win regardless
	// of insertion order.
	tb.Level0.Upsert(ref(190, 9), proto.FNeighbor, now, tb.NextVersion(), Direct)
	tb.Level0.Upsert(ref(210, 8), proto.FNeighbor, now, tb.NextVersion(), Direct)
	r, ok := tb.NearestInRange(0, idspace.MaxID, 200, 0)
	if !ok || r.Addr != 9 {
		t.Fatalf("tie must break to lower ID: got %v ok=%v", r, ok)
	}
}

func TestNearestInRangeNoAlloc(t *testing.T) {
	tb := New()
	now := time.Second
	for i := uint64(1); i <= 16; i++ {
		tb.Level0.Upsert(ref(idspace.ID(i*100), i), proto.FNeighbor, now, tb.NextVersion(), Direct)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tb.NearestInRange(0, idspace.MaxID, 800, 3)
	})
	if allocs != 0 {
		t.Fatalf("NearestInRange allocates %.1f per call; must be 0 (sweep path)", allocs)
	}
}
