package rtable

import (
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

func TestTableParentSlot(t *testing.T) {
	tb := New()
	if _, ok := tb.Parent(); ok {
		t.Fatal("fresh table has no parent")
	}
	p := ref(50, 7)
	tb.SetParent(p, time.Second)
	got, ok := tb.Parent()
	if !ok || got.Addr != 7 {
		t.Fatal("parent not set")
	}
	tb.ClearParent()
	if _, ok := tb.Parent(); ok {
		t.Fatal("parent not cleared")
	}
}

func TestTableParentExpiry(t *testing.T) {
	tb := New()
	tb.SetParent(ref(50, 7), 0)
	if tb.ParentExpired(time.Second, 5*time.Second) {
		t.Fatal("fresh parent expired")
	}
	if !tb.ParentExpired(6*time.Second, 5*time.Second) {
		t.Fatal("stale parent not expired")
	}
	tb.SetParent(ref(50, 7), 0)
	tb.TouchParent(7, 6*time.Second)
	if tb.ParentExpired(8*time.Second, 5*time.Second) {
		t.Fatal("touched parent should be fresh")
	}
	tb.TouchParent(99, 100*time.Second) // wrong addr: no-op
	if !tb.ParentExpired(100*time.Second, 5*time.Second) {
		t.Fatal("touch with wrong addr must not refresh")
	}
}

func TestTableTouchEverywhere(t *testing.T) {
	tb := New()
	tb.Level0.Upsert(ref(10, 1), 0, 0, tb.NextVersion(), Direct)
	tb.BusLevel(2).Upsert(ref(10, 1), 0, 0, tb.NextVersion(), Direct)
	tb.Children.Upsert(ref(10, 1), 0, 0, tb.NextVersion(), Direct)
	tb.SetParent(ref(10, 1), 0)
	tb.Touch(1, 9*time.Second)
	if tb.Level0.Get(1).LastSeen != 9*time.Second ||
		tb.BusLevel(2).Get(1).LastSeen != 9*time.Second ||
		tb.Children.Get(1).LastSeen != 9*time.Second {
		t.Fatal("touch must refresh all structures")
	}
	if tb.ParentExpired(10*time.Second, 5*time.Second) {
		t.Fatal("touch must refresh parent")
	}
}

func TestRemoveEverywhere(t *testing.T) {
	tb := New()
	tb.Level0.Upsert(ref(10, 1), 0, 0, 1, Direct)
	tb.BusLevel(1).Upsert(ref(10, 1), 0, 0, 1, Direct)
	tb.Superiors.Upsert(ref(10, 1), 0, 0, 1, Direct)
	tb.SetParent(ref(10, 1), 0)
	removed, parentLost := tb.RemoveEverywhere(1)
	if !removed || !parentLost {
		t.Fatalf("removed=%v parentLost=%v", removed, parentLost)
	}
	if tb.Size() != 0 {
		t.Fatalf("size %d after removal", tb.Size())
	}
	removed, parentLost = tb.RemoveEverywhere(1)
	if removed || parentLost {
		t.Fatal("second removal must be a no-op")
	}
}

func TestTableSweep(t *testing.T) {
	tb := New()
	tb.Level0.Upsert(ref(10, 1), 0, 0, 1, Direct)
	tb.Level0.Upsert(ref(20, 2), 0, 10*time.Second, 1, Direct)
	tb.BusLevel(1).Upsert(ref(30, 3), 0, 0, 1, Direct)
	tb.Children.Upsert(ref(40, 4), 0, 0, 1, Direct)
	tb.SetParent(ref(50, 5), 0)
	res := tb.Sweep(12*time.Second, 5*time.Second)
	if res.Empty() {
		t.Fatal("sweep should remove")
	}
	if len(res.Level0) != 1 || res.Level0[0].ID != 10 {
		t.Fatalf("level0 sweep %v", res.Level0)
	}
	if len(res.Bus[1]) != 1 {
		t.Fatalf("bus sweep %v", res.Bus)
	}
	if len(res.Children) != 1 {
		t.Fatalf("children sweep %v", res.Children)
	}
	if !res.ParentLost || res.Parent.ID != 50 {
		t.Fatalf("parent sweep %+v", res)
	}
	// Emptied bus level is dropped from the map.
	if _, ok := tb.Bus[1]; ok {
		t.Fatal("empty bus level should be pruned")
	}
	// A fresh table sweeps empty.
	if !New().Sweep(time.Hour, time.Second).Empty() {
		t.Fatal("empty table sweep must be empty")
	}
}

func TestFindID(t *testing.T) {
	tb := New()
	tb.Level0.Upsert(ref(10, 1), 0, 0, 1, Direct)
	tb.BusLevel(1).Upsert(ref(20, 2), 0, 0, 1, Direct)
	tb.Children.Upsert(ref(30, 3), 0, 0, 1, Direct)
	tb.NbrChildren.Upsert(ref(40, 4), 0, 0, 1, Direct)
	tb.Superiors.Upsert(ref(50, 5), 0, 0, 1, Direct)
	tb.SetParent(ref(60, 6), 0)
	for _, id := range []idspace.ID{10, 20, 30, 40, 50, 60} {
		if _, ok := tb.FindID(id); !ok {
			t.Fatalf("FindID(%d) miss", id)
		}
	}
	if _, ok := tb.FindID(99); ok {
		t.Fatal("FindID false positive")
	}
}

func TestCandidatesDedup(t *testing.T) {
	tb := New()
	// Same peer known at level 0 and on bus level 2 with a higher
	// MaxLevel: candidates must keep one copy, preferring the bus ref.
	low := ref(10, 1)
	high := ref(10, 1)
	high.MaxLevel = 2
	tb.Level0.Upsert(low, 0, 0, 1, Direct)
	tb.BusLevel(2).Upsert(high, 0, 0, 1, Direct)
	tb.Children.Upsert(ref(30, 3), 0, 0, 1, Direct)
	tb.SetParent(ref(60, 6), 0)
	cands := tb.Candidates(nil)
	if len(cands) != 3 {
		t.Fatalf("candidates %v", cands)
	}
	for _, c := range cands {
		if c.Addr == 1 && c.MaxLevel != 2 {
			t.Fatal("dedup must keep highest MaxLevel ref")
		}
	}
}

func TestTableSizeAndVersion(t *testing.T) {
	tb := New()
	if tb.Size() != 0 {
		t.Fatal("empty size")
	}
	v1 := tb.NextVersion()
	v2 := tb.NextVersion()
	if v2 <= v1 {
		t.Fatal("version must be monotone")
	}
	tb.Level0.Upsert(ref(10, 1), 0, 0, tb.NextVersion(), Direct)
	tb.SetParent(ref(60, 6), 0)
	if tb.Size() != 2 {
		t.Fatalf("size %d", tb.Size())
	}
}

func TestTableDelta(t *testing.T) {
	tb := New()
	tb.Level0.Upsert(ref(10, 1), proto.FNeighbor, 0, tb.NextVersion(), Direct) // v1
	mark := tb.Version()
	tb.BusLevel(2).Upsert(ref(20, 2), proto.FNeighbor, 0, tb.NextVersion(), Direct) // v2
	tb.SetParent(ref(60, 6), 0)                                                     // v3
	delta := tb.Delta(mark, 0)
	if len(delta) != 2 {
		t.Fatalf("delta %v", delta)
	}
	seenParent, seenBus := false, false
	for _, e := range delta {
		if e.Flags&proto.FParent != 0 && e.Ref.ID == 60 {
			seenParent = true
		}
		if e.Level == 2 && e.Ref.ID == 20 {
			seenBus = true
		}
	}
	if !seenParent || !seenBus {
		t.Fatalf("delta contents %+v", delta)
	}
	if len(tb.Delta(tb.Version(), 0)) != 0 {
		t.Fatal("delta since current version must be empty")
	}
}

func TestTableString(t *testing.T) {
	tb := New()
	tb.Level0.Upsert(ref(10, 1), 0, 0, 1, Direct)
	tb.SetParent(ref(60, 6), 0)
	if s := tb.String(); s == "" {
		t.Fatal("string empty")
	}
}
