package overlay

import (
	"math/rand"
	"time"

	"treep/internal/chord"
	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/sim"
)

// Chord adapts the chord.Cluster baseline to the Overlay interface. A
// lookup succeeds when successor(target) resolves to the exact live
// target node — the same "find this node" workload the other backends
// run.
type Chord struct {
	C *chord.Cluster

	rng *rand.Rand
}

// NewChord builds a steady-state Chord ring of n nodes with periodic
// stabilisation running.
func NewChord(n int, seed int64) *Chord {
	c := chord.New(n, seed)
	return &Chord{C: c, rng: c.Kernel.Stream(0x6f766c79)} // "ovly"
}

// Name implements Overlay.
func (a *Chord) Name() string { return "chord" }

// Kernel implements Overlay.
func (a *Chord) Kernel() *sim.Kernel { return a.C.Kernel }

// NetStats implements Overlay.
func (a *Chord) NetStats() netsim.Stats { return a.C.Net.Stats() }

// AliveCount implements Overlay.
func (a *Chord) AliveCount() int { return len(a.C.AliveNodes()) }

// AliveIDs implements Overlay.
func (a *Chord) AliveIDs() []idspace.ID {
	alive := a.C.AliveNodes()
	out := make([]idspace.ID, len(alive))
	for i, n := range alive {
		out[i] = n.ID()
	}
	return out
}

// Join implements Overlay.
func (a *Chord) Join() bool { return a.C.Join() != nil }

// Leave implements Overlay.
func (a *Chord) Leave() bool {
	alive := a.C.AliveNodes()
	if len(alive) <= 2 {
		return false
	}
	a.C.Kill(alive[a.rng.Intn(len(alive))])
	return true
}

// KillZone implements Overlay.
func (a *Chord) KillZone(zone idspace.Region) int {
	killed := 0
	for _, n := range a.C.AliveNodes() {
		if zone.Contains(n.ID()) {
			a.C.Kill(n)
			killed++
		}
	}
	return killed
}

// Partition implements Overlay.
func (a *Chord) Partition(split idspace.ID) { a.C.Partition(split) }

// Heal implements Overlay.
func (a *Chord) Heal() { a.C.Heal() }

// MaintenanceTick implements Overlay: run Chord's timeout-based failure
// eviction (modelled out-of-band, see chord.DropDead).
func (a *Chord) MaintenanceTick() { a.C.DropDead() }

// Lookup implements Overlay.
func (a *Chord) Lookup(origin int, target idspace.ID, cb func(Outcome)) {
	alive := a.C.AliveNodes()
	if len(alive) == 0 {
		cb(Outcome{})
		return
	}
	n := alive[origin%len(alive)]
	start := a.C.Kernel.Now()
	n.Lookup(a.C, target, func(r chord.LookupResult) {
		cb(Outcome{
			Found:   r.Found && r.Succ == target,
			Hops:    r.Hops,
			Latency: a.C.Kernel.Now() - start,
		})
	})
}

// LookupWindow implements Overlay.
func (a *Chord) LookupWindow() time.Duration { return a.C.LookupTimeout() + time.Second }

// Run implements Overlay.
func (a *Chord) Run(d time.Duration) { a.C.Run(d) }

// StateSize implements Overlay.
func (a *Chord) StateSize() int {
	total := 0
	for _, n := range a.C.AliveNodes() {
		total += n.StateSize()
	}
	return total
}
