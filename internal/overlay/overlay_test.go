package overlay

import (
	"math/rand"
	"testing"
	"time"

	"treep/internal/scenario"
)

// backends builds one small instance of every adapter.
func backends(t *testing.T, n int, seed int64) []Overlay {
	t.Helper()
	return []Overlay{
		NewTreeP(n, seed),
		NewChord(n, seed),
		NewFlood(n, 0, 0, seed),
	}
}

// TestConformanceSteadyState: every backend resolves lookups between live
// nodes in a quiet network.
func TestConformanceSteadyState(t *testing.T) {
	for _, ov := range backends(t, 100, 1) {
		ov.Run(8 * time.Second)
		if got := ov.AliveCount(); got != 100 {
			t.Errorf("%s: AliveCount = %d, want 100", ov.Name(), got)
		}
		ids := ov.AliveIDs()
		if len(ids) != 100 {
			t.Fatalf("%s: AliveIDs len = %d, want 100", ov.Name(), len(ids))
		}
		rng := rand.New(rand.NewSource(7))
		found, issued := 0, 40
		for i := 0; i < issued; i++ {
			origin := rng.Intn(len(ids))
			target := ids[rng.Intn(len(ids))]
			ov.Lookup(origin, target, func(r Outcome) {
				if r.Found {
					found++
				}
			})
		}
		ov.Run(ov.LookupWindow())
		if found < issued*9/10 {
			t.Errorf("%s: steady state resolved %d/%d lookups", ov.Name(), found, issued)
		}
		if ov.StateSize() <= 0 {
			t.Errorf("%s: StateSize = %d, want > 0", ov.Name(), ov.StateSize())
		}
	}
}

// TestPlayChurnTimeline: the interpreter injects the same churn schedule
// into every backend (identically seeded RNGs draw identical event times)
// and each backend keeps resolving lookups afterwards.
func TestPlayChurnTimeline(t *testing.T) {
	script := []scenario.Phase{
		scenario.Churn{For: 8 * time.Second, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 8 * time.Second},
	}
	var events []PlayResult
	for _, ov := range backends(t, 100, 3) {
		ov.Run(4 * time.Second)
		rng := rand.New(rand.NewSource(99))
		res, err := Play(ov, rng, script...)
		if err != nil {
			t.Fatalf("%s: Play: %v", ov.Name(), err)
		}
		if res.Joins == 0 && res.Leaves == 0 {
			t.Errorf("%s: churn injected no events", ov.Name())
		}
		events = append(events, res)
		ov.MaintenanceTick()

		ids := ov.AliveIDs()
		rng2 := rand.New(rand.NewSource(5))
		found, issued := 0, 40
		for i := 0; i < issued; i++ {
			origin := rng2.Intn(len(ids))
			target := ids[rng2.Intn(len(ids))]
			ov.Lookup(origin, target, func(r Outcome) {
				if r.Found {
					found++
				}
			})
		}
		ov.Run(ov.LookupWindow())
		if found < issued*7/10 {
			t.Errorf("%s: post-churn resolved only %d/%d lookups", ov.Name(), found, issued)
		}
	}
	// The seed-replicated timeline must inject the same event counts into
	// every backend.
	for i := 1; i < len(events); i++ {
		if events[i].Joins != events[0].Joins || events[i].Leaves != events[0].Leaves {
			t.Errorf("backend %d saw %+v events, backend 0 saw %+v — timelines diverged",
				i, events[i], events[0])
		}
	}
}

// TestPlayZoneFailure: a contiguous region dies in every backend, the
// dead stay dead, and the survivors keep resolving each other.
func TestPlayZoneFailure(t *testing.T) {
	script := []scenario.Phase{
		scenario.ZoneFailure{Zone: scenario.ZoneFraction(0.40, 0.55), Settle: 8 * time.Second},
	}
	for _, ov := range backends(t, 100, 5) {
		ov.Run(4 * time.Second)
		res, err := Play(ov, rand.New(rand.NewSource(11)), script...)
		if err != nil {
			t.Fatalf("%s: Play: %v", ov.Name(), err)
		}
		if res.ZoneKilled == 0 {
			t.Errorf("%s: zone failure killed nobody", ov.Name())
		}
		if got := ov.AliveCount(); got != 100-res.ZoneKilled {
			t.Errorf("%s: AliveCount = %d, want %d", ov.Name(), got, 100-res.ZoneKilled)
		}
		ov.MaintenanceTick()
		ids := ov.AliveIDs()
		rng := rand.New(rand.NewSource(13))
		found, issued := 0, 40
		for i := 0; i < issued; i++ {
			origin := rng.Intn(len(ids))
			target := ids[rng.Intn(len(ids))]
			ov.Lookup(origin, target, func(r Outcome) {
				if r.Found {
					found++
				}
			})
		}
		ov.Run(ov.LookupWindow())
		if found < issued*7/10 {
			t.Errorf("%s: post-zone-failure resolved only %d/%d lookups", ov.Name(), found, issued)
		}
	}
}

// TestPlayPartitionHeal: while split, cross-side lookups fail; after
// healing and settling, they recover.
func TestPlayPartitionHeal(t *testing.T) {
	for _, ov := range backends(t, 100, 9) {
		ov.Run(4 * time.Second)
		res, err := Play(ov, rand.New(rand.NewSource(17)),
			scenario.PartitionHeal{Hold: 6 * time.Second, Heal: 10 * time.Second})
		if err != nil {
			t.Fatalf("%s: Play: %v", ov.Name(), err)
		}
		_ = res
		ov.MaintenanceTick()
		ids := ov.AliveIDs()
		rng := rand.New(rand.NewSource(19))
		found, issued := 0, 40
		for i := 0; i < issued; i++ {
			origin := rng.Intn(len(ids))
			target := ids[rng.Intn(len(ids))]
			ov.Lookup(origin, target, func(r Outcome) {
				if r.Found {
					found++
				}
			})
		}
		ov.Run(ov.LookupWindow())
		if found < issued*7/10 {
			t.Errorf("%s: post-heal resolved only %d/%d lookups", ov.Name(), found, issued)
		}
	}
}

// TestPlayRejectsUnsupportedPhase: TreeP-specific phases are refused, not
// silently skipped.
func TestPlayRejectsUnsupportedPhase(t *testing.T) {
	ov := NewFlood(20, 0, 0, 1)
	if _, err := Play(ov, rand.New(rand.NewSource(1)), scenario.RevivalWave{Over: time.Second}); err == nil {
		t.Fatal("Play accepted RevivalWave; want an unsupported-phase error")
	}
	if Supported(scenario.RevivalWave{}) {
		t.Error("Supported(RevivalWave) = true, want false")
	}
	if !Supported(scenario.Churn{}) {
		t.Error("Supported(Churn) = false, want true")
	}
}
