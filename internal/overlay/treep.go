package overlay

import (
	"math/rand"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/proto"
	"treep/internal/sim"
	"treep/internal/simrt"
)

// TreeP adapts a simrt.Cluster (the paper's overlay) to the Overlay
// interface. Lookups use algorithm G — the paper's baseline greedy
// algorithm — so the cross-protocol comparison measures the architecture,
// not the smartest retry strategy.
type TreeP struct {
	C *simrt.Cluster

	algo proto.Algo
	rng  *rand.Rand
}

// NewTreeP builds a bulk-initialised, started TreeP cluster of n nodes.
func NewTreeP(n int, seed int64) *TreeP {
	c := simrt.New(simrt.Options{
		N:      n,
		Seed:   seed,
		Config: core.Defaults(),
		Bulk:   true,
	})
	c.StartAll()
	return &TreeP{C: c, algo: proto.AlgoG, rng: c.Kernel.Stream(0x6f766c79)} // "ovly"
}

// Name implements Overlay.
func (t *TreeP) Name() string { return "treep" }

// Kernel implements Overlay.
func (t *TreeP) Kernel() *sim.Kernel { return t.C.Kernel }

// NetStats implements Overlay.
func (t *TreeP) NetStats() netsim.Stats { return t.C.Net.Stats() }

// AliveCount implements Overlay.
func (t *TreeP) AliveCount() int { return t.C.AliveCount() }

// AliveIDs implements Overlay.
func (t *TreeP) AliveIDs() []idspace.ID {
	alive := t.C.AliveNodes()
	out := make([]idspace.ID, len(alive))
	for i, n := range alive {
		out[i] = n.ID()
	}
	return out
}

// Join implements Overlay: spawn a fresh node and bootstrap it through a
// live peer (the protocol's dynamic join).
func (t *TreeP) Join() bool { return t.C.SpawnJoin() != nil }

// Leave implements Overlay.
func (t *TreeP) Leave() bool {
	alive := t.C.AliveNodes()
	if len(alive) <= 2 {
		return false
	}
	t.C.Kill(alive[t.rng.Intn(len(alive))])
	return true
}

// KillZone implements Overlay.
func (t *TreeP) KillZone(zone idspace.Region) int {
	killed := 0
	for _, n := range t.C.AliveNodes() {
		if zone.Contains(n.ID()) {
			t.C.Kill(n)
			killed++
		}
	}
	return killed
}

// Partition implements Overlay.
func (t *TreeP) Partition(split idspace.ID) { t.C.Partition(split) }

// Heal implements Overlay.
func (t *TreeP) Heal() { t.C.Heal() }

// MaintenanceTick implements Overlay. TreeP's failure detection is fully
// in-protocol (parent keepalives, table sweeps), so there is nothing to
// model out-of-band.
func (t *TreeP) MaintenanceTick() {}

// Lookup implements Overlay.
func (t *TreeP) Lookup(origin int, target idspace.ID, cb func(Outcome)) {
	alive := t.C.AliveNodes()
	if len(alive) == 0 {
		cb(Outcome{})
		return
	}
	n := alive[origin%len(alive)]
	n.Lookup(target, t.algo, func(r core.LookupResult) {
		cb(Outcome{
			Found:   r.Status == core.LookupFound && r.Best.ID == target,
			Hops:    r.Hops,
			Latency: r.Latency,
		})
	})
}

// LookupWindow implements Overlay.
func (t *TreeP) LookupWindow() time.Duration {
	return t.C.Nodes[0].Config().LookupTimeout + time.Second
}

// Run implements Overlay.
func (t *TreeP) Run(d time.Duration) { t.C.Run(d) }

// StateSize implements Overlay: total routing-table entries across live
// nodes (parents, buses, rings — everything the table holds).
func (t *TreeP) StateSize() int {
	total := 0
	for _, n := range t.C.AliveNodes() {
		total += n.Table().Size()
	}
	return total
}
