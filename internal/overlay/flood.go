package overlay

import (
	"math/rand"
	"time"

	"treep/internal/flood"
	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/sim"
)

// DefaultFloodDegree is the random-graph degree used when callers do not
// specify one (a typical Gnutella client keeps 4–8 neighbours).
const DefaultFloodDegree = 6

// DefaultFloodTTL is the flood hop budget (Gnutella shipped with TTL 7; one
// extra hop covers the sparser corners of a churned graph).
const DefaultFloodTTL = 8

// Flood adapts the flood.Cluster baseline to the Overlay interface.
// Lookups flood for the exact target ID with a fixed TTL.
type Flood struct {
	C *flood.Cluster

	ttl uint8
	rng *rand.Rand
}

// NewFlood builds a flooding network of n nodes wired at the given degree;
// degree and ttl fall back to the package defaults when non-positive.
func NewFlood(n, degree, ttl int, seed int64) *Flood {
	if degree <= 0 {
		degree = DefaultFloodDegree
	}
	if ttl <= 0 {
		ttl = DefaultFloodTTL
	}
	c := flood.New(n, degree, seed)
	return &Flood{C: c, ttl: uint8(ttl), rng: c.Kernel.Stream(0x6f766c79)} // "ovly"
}

// Name implements Overlay.
func (a *Flood) Name() string { return "flood" }

// Kernel implements Overlay.
func (a *Flood) Kernel() *sim.Kernel { return a.C.Kernel }

// NetStats implements Overlay.
func (a *Flood) NetStats() netsim.Stats { return a.C.Net.Stats() }

// AliveCount implements Overlay.
func (a *Flood) AliveCount() int { return len(a.C.AliveNodes()) }

// AliveIDs implements Overlay.
func (a *Flood) AliveIDs() []idspace.ID {
	alive := a.C.AliveNodes()
	out := make([]idspace.ID, len(alive))
	for i, n := range alive {
		out[i] = n.ID()
	}
	return out
}

// Join implements Overlay.
func (a *Flood) Join() bool { return a.C.Join() != nil }

// Leave implements Overlay.
func (a *Flood) Leave() bool {
	alive := a.C.AliveNodes()
	if len(alive) <= 2 {
		return false
	}
	a.C.Kill(alive[a.rng.Intn(len(alive))])
	return true
}

// KillZone implements Overlay.
func (a *Flood) KillZone(zone idspace.Region) int {
	killed := 0
	for _, n := range a.C.AliveNodes() {
		if zone.Contains(n.ID()) {
			a.C.Kill(n)
			killed++
		}
	}
	return killed
}

// Partition implements Overlay.
func (a *Flood) Partition(split idspace.ID) { a.C.Partition(split) }

// Heal implements Overlay.
func (a *Flood) Heal() { a.C.Heal() }

// MaintenanceTick implements Overlay: evict dead neighbours and re-dial
// under-connected nodes (modelled out-of-band, see flood.PruneDead).
func (a *Flood) MaintenanceTick() { a.C.PruneDead() }

// Lookup implements Overlay.
func (a *Flood) Lookup(origin int, target idspace.ID, cb func(Outcome)) {
	alive := a.C.AliveNodes()
	if len(alive) == 0 {
		cb(Outcome{})
		return
	}
	n := alive[origin%len(alive)]
	start := a.C.Kernel.Now()
	n.Lookup(a.C, target, a.ttl, func(r flood.Result) {
		cb(Outcome{
			Found:   r.Found,
			Hops:    r.Hops,
			Latency: a.C.Kernel.Now() - start,
		})
	})
}

// LookupWindow implements Overlay.
func (a *Flood) LookupWindow() time.Duration { return a.C.LookupTimeout() + time.Second }

// Run implements Overlay.
func (a *Flood) Run(d time.Duration) { a.C.Run(d) }

// StateSize implements Overlay.
func (a *Flood) StateSize() int {
	total := 0
	for _, n := range a.C.AliveNodes() {
		total += n.StateSize()
	}
	return total
}
