package overlay

import (
	"fmt"
	"math/rand"
	"time"

	"treep/internal/idspace"
	"treep/internal/scenario"
)

// PlayResult counts the events a scenario script injected into a backend.
type PlayResult struct {
	// Joins counts nodes spawned and bootstrapped into the overlay.
	Joins int
	// Leaves counts nodes fail-stopped by churn.
	Leaves int
	// ZoneKilled counts nodes fail-stopped by zone failures.
	ZoneKilled int
}

// Add accumulates another result into r.
func (r *PlayResult) Add(o PlayResult) {
	r.Joins += o.Joins
	r.Leaves += o.Leaves
	r.ZoneKilled += o.ZoneKilled
}

// Supported reports whether the comparative interpreter can play the
// phase (callers validate scripts before fanning out trials).
func Supported(ph scenario.Phase) bool {
	switch ph.(type) {
	case scenario.Settle, scenario.Churn, scenario.FlashCrowd,
		scenario.ZoneFailure, scenario.PartitionHeal:
		return true
	}
	return false
}

// Play interprets scenario phase scripts against any backend. It supports
// the protocol-agnostic phases — Settle, Churn, FlashCrowd, ZoneFailure,
// PartitionHeal — and returns an error for TreeP-specific ones
// (RevivalWave needs per-node stale-state revival that the baselines do
// not model). Event times and intensities are drawn from rng, so two
// backends played with identically seeded RNGs absorb the same timeline.
func Play(ov Overlay, rng *rand.Rand, phases ...scenario.Phase) (PlayResult, error) {
	var res PlayResult
	for _, ph := range phases {
		r, err := playOne(ov, rng, ph)
		if err != nil {
			return res, err
		}
		res.Add(r)
	}
	return res, nil
}

// playOne interprets a single phase.
func playOne(ov Overlay, rng *rand.Rand, ph scenario.Phase) (PlayResult, error) {
	var res PlayResult
	switch p := ph.(type) {
	case scenario.Settle:
		ov.Run(p.For)

	case scenario.Churn:
		playChurn(ov, rng, p, &res)

	case scenario.FlashCrowd:
		if p.Joins <= 0 {
			break
		}
		step := p.Over / time.Duration(p.Joins)
		for i := 0; i < p.Joins; i++ {
			if ov.Join() {
				res.Joins++
			}
			if step > 0 {
				ov.Run(step)
			}
		}

	case scenario.ZoneFailure:
		res.ZoneKilled = ov.KillZone(p.Zone)
		ov.Run(p.Settle)

	case scenario.PartitionHeal:
		at := p.At
		if at == 0 {
			at = idspace.MaxID / 2
		}
		ov.Partition(at)
		ov.Run(p.Hold)
		ov.Heal()
		ov.Run(p.Heal)

	default:
		return res, fmt.Errorf("overlay: phase %q is not supported by the comparative interpreter", ph.Name())
	}
	return res, nil
}

// playChurn replays scenario.Churn's Poisson arrival/departure process
// through the Overlay interface, drawing inter-event gaps from rng.
func playChurn(ov Overlay, rng *rand.Rand, c scenario.Churn, res *PlayResult) {
	now := ov.Kernel().Now()
	end := now + c.For
	nextJoin, nextLeave := maxDuration, maxDuration
	if d := expDelay(rng, c.JoinRate); d < maxDuration {
		nextJoin = now + d
	}
	if d := expDelay(rng, c.LeaveRate); d < maxDuration {
		nextLeave = now + d
	}
	for {
		next := nextJoin
		if nextLeave < next {
			next = nextLeave
		}
		if next > end {
			runUntil(ov, end)
			return
		}
		runUntil(ov, next)
		if next == nextJoin {
			if ov.Join() {
				res.Joins++
			}
			nextJoin = next + expDelay(rng, c.JoinRate)
		} else {
			if ov.Leave() {
				res.Leaves++
			}
			nextLeave = next + expDelay(rng, c.LeaveRate)
		}
	}
}
