// Package overlay defines the protocol-agnostic surface the comparative
// evaluation harness drives: an Overlay is any routed peer-to-peer network
// (TreeP, the Chord baseline, the flooding baseline) that can join and
// lose members, resolve lookups for node IDs, and run its own maintenance
// on the shared timing-wheel kernel.
//
// Key types:
//
//   - Overlay — the interface every backend implements (join / leave /
//     lookup / maintenance-tick, plus partition injection and state
//     accounting). Adapters: TreeP, Chord, Flood.
//   - Outcome — one lookup's origin-observed result, normalised across
//     protocols (found / hops / latency).
//   - PlayResult — the event accounting of a scenario script interpreted
//     against a backend by Play.
//
// Play re-uses the phase scripts of internal/scenario (Settle, Churn,
// FlashCrowd, ZoneFailure, PartitionHeal) and interprets them through the
// Overlay interface, so all backends absorb the *same* workload timeline:
// event times and intensities come from a caller-owned RNG, which the
// comparative runner re-seeds identically per backend.
package overlay

import (
	"math/rand"
	"time"

	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/sim"
)

// Outcome is one lookup's origin-observed result, normalised across
// protocols so backends can be compared row for row.
type Outcome struct {
	// Found reports whether the lookup resolved to the exact target node.
	Found bool
	// Hops is the overlay forward count of a successful lookup.
	Hops int
	// Latency is the origin-observed virtual time to resolution.
	Latency time.Duration
}

// Overlay is a routed peer-to-peer network under test. One Overlay owns
// one sim.Kernel and one netsim.Network; all state mutation happens on the
// kernel's event loop, so an Overlay is not safe for concurrent use.
type Overlay interface {
	// Name identifies the backend in records ("treep", "chord", "flood").
	Name() string
	// Kernel exposes the simulation clock the overlay runs on.
	Kernel() *sim.Kernel
	// NetStats returns the network's cumulative message accounting;
	// callers diff snapshots to charge traffic to phases.
	NetStats() netsim.Stats
	// AliveCount returns the live population.
	AliveCount() int
	// AliveIDs returns the live nodes' IDs in a stable order. The slice is
	// a snapshot owned by the caller; index i corresponds to origin i of
	// Lookup until the next membership change.
	AliveIDs() []idspace.ID
	// Join spawns a brand-new node and bootstraps it through a live peer,
	// reporting whether a bootstrap existed. Integration completes
	// asynchronously as virtual time advances.
	Join() bool
	// Leave fail-stops one live node chosen by the overlay's own
	// deterministic stream (no goodbye message), refusing to shrink the
	// population below two.
	Leave() bool
	// KillZone fail-stops every live node whose ID falls in the region and
	// returns how many died (correlated regional failure).
	KillZone(zone idspace.Region) int
	// Partition splits the network at the coordinate: datagrams between
	// nodes on opposite sides vanish in flight until Heal.
	Partition(split idspace.ID)
	// Heal removes the partition installed by Partition.
	Heal()
	// MaintenanceTick runs the protocol-specific failure handling that the
	// simulation models out-of-band (Chord's timeout-based eviction, the
	// flooding graph's neighbour re-wiring). TreeP detects failures in
	// protocol, so its tick is a no-op. The harness calls it once per
	// phase boundary, before measuring.
	MaintenanceTick()
	// Lookup resolves target from the origin-th live node (an index into
	// the current AliveIDs snapshot) and calls cb exactly once after the
	// caller advances virtual time by at least LookupWindow.
	Lookup(origin int, target idspace.ID, cb func(Outcome))
	// LookupWindow is how much virtual time guarantees every issued lookup
	// has resolved or timed out.
	LookupWindow() time.Duration
	// Run advances virtual time by d, firing deliveries and maintenance.
	Run(d time.Duration)
	// StateSize returns the total routing-state entry count across live
	// nodes (the per-protocol "memory cost" metric).
	StateSize() int
}

// runUntil advances the overlay's clock to the absolute virtual time t.
func runUntil(ov Overlay, t time.Duration) {
	if d := t - ov.Kernel().Now(); d > 0 {
		ov.Run(d)
	}
}

// expDelay draws a Poisson inter-arrival gap for the given events/second
// rate from rng; a non-positive rate means the event never fires.
func expDelay(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return maxDuration
	}
	return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
}

// maxDuration is "never" for next-event bookkeeping.
const maxDuration = time.Duration(1<<63 - 1)
