//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; see
// TestProtocolSteadyStateAllocs.
const raceEnabled = false
