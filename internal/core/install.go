package core

import (
	"treep/internal/proto"
	"treep/internal/rtable"
)

// Direct state-installation API used by the BulkBuilder to materialise a
// steady-state overlay without replaying the join protocol (§IV evaluates
// "when the system reaches its steady state"). The live protocol then
// maintains the installed structure.

// InstallLevel sets the node's top level directly.
func (n *Node) InstallLevel(maxLevel uint8) { n.maxLevel = maxLevel }

// InstallLevel0 seeds level-0 neighbour entries.
func (n *Node) InstallLevel0(refs ...proto.NodeRef) {
	now := n.env.Now()
	for _, r := range refs {
		if r.IsZero() || r.Addr == n.Addr() {
			continue
		}
		n.table.Level0.Upsert(r, proto.FNeighbor, now, n.table.NextVersion(), rtable.Direct)
	}
}

// InstallBus seeds same-level neighbour entries at the given level.
func (n *Node) InstallBus(level uint8, refs ...proto.NodeRef) {
	if level == 0 {
		n.InstallLevel0(refs...)
		return
	}
	now := n.env.Now()
	for _, r := range refs {
		if r.IsZero() || r.Addr == n.Addr() {
			continue
		}
		n.table.BusLevel(level).Upsert(r, proto.FNeighbor, now, n.table.NextVersion(), rtable.Direct)
	}
}

// InstallChildren seeds the children table.
func (n *Node) InstallChildren(refs ...proto.NodeRef) {
	now := n.env.Now()
	for _, r := range refs {
		if r.IsZero() || r.Addr == n.Addr() {
			continue
		}
		n.table.Children.Upsert(r, proto.FChild, now, n.table.NextVersion(), rtable.Direct)
	}
}

// InstallNbrChildren seeds the children-of-neighbours table.
func (n *Node) InstallNbrChildren(refs ...proto.NodeRef) {
	now := n.env.Now()
	for _, r := range refs {
		if r.IsZero() || r.Addr == n.Addr() {
			continue
		}
		n.table.NbrChildren.Upsert(r, proto.FChild|proto.FIndirect, now, n.table.NextVersion(), rtable.Direct)
	}
}

// InstallParent seeds the parent slot.
func (n *Node) InstallParent(ref proto.NodeRef) {
	if ref.IsZero() || ref.Addr == n.Addr() {
		return
	}
	n.table.SetParent(ref, n.env.Now())
}

// InstallSuperiors seeds the superior node list.
func (n *Node) InstallSuperiors(refs ...proto.NodeRef) {
	now := n.env.Now()
	for _, r := range refs {
		if r.IsZero() || r.Addr == n.Addr() {
			continue
		}
		n.table.Superiors.Upsert(r, proto.FSuperior, now, n.table.NextVersion(), rtable.Direct)
	}
}
