package core

import (
	"sort"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// BulkBuild materialises a steady-state TreeP hierarchy across the given
// nodes, mirroring a B+tree bulk load: level-(j) members are elected
// greedily from level-(j-1) in ID order, each group contributing its
// strongest node, with group sizes set by the parent's child policy. The
// §IV evaluation measures the overlay "when the system reaches its steady
// state"; experiments start from this structure and let the live protocol
// maintain it.
//
// The routing tables are seeded exactly as §III.c prescribes: level-0
// direct plus indirect neighbours, per-level bus neighbours (direct and
// indirect), children by midpoint tessellation, children of direct bus
// neighbours, the parent slot, and the superior node list (ancestors plus
// the parent's bus neighbours).
//
// It returns the number of members per level (index 0 = level 0 = all).
func BulkBuild(nodes []*Node, maxHeight uint8) []int {
	if len(nodes) == 0 {
		return nil
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })

	// Elect members level by level.
	levels := make([][]*Node, 1, maxHeight+1)
	levels[0] = sorted
	for lvl := uint8(1); lvl <= maxHeight; lvl++ {
		prev := levels[len(levels)-1]
		if len(prev) <= 2 {
			break
		}
		var cur []*Node
		i := 0
		for i < len(prev) {
			// Scout window: pick the strongest of the next few nodes as the
			// group's parent, then size the group by that parent's policy.
			w := 4
			if w > len(prev)-i {
				w = len(prev) - i
			}
			best := prev[i]
			for _, cand := range prev[i+1 : i+w] {
				if cand.Score() > best.Score() {
					best = cand
				}
			}
			g := best.MaxChildren()
			if g < 2 {
				g = 2
			}
			if g > len(prev)-i {
				g = len(prev) - i
			}
			cur = append(cur, best)
			i += g
		}
		levels = append(levels, cur)
	}

	// Assign top levels.
	for lvl := len(levels) - 1; lvl >= 1; lvl-- {
		for _, nd := range levels[lvl] {
			if nd.maxLevel < uint8(lvl) {
				nd.InstallLevel(uint8(lvl))
			}
		}
	}

	// Per-level sorted member refs (post level assignment, so refs carry
	// the right MaxLevel).
	memberRefs := make([][]proto.NodeRef, len(levels))
	memberIDs := make([][]idspace.ID, len(levels))
	for lvl := range levels {
		refs := make([]proto.NodeRef, len(levels[lvl]))
		ids := make([]idspace.ID, len(levels[lvl]))
		for i, nd := range levels[lvl] {
			refs[i] = nd.Ref()
			ids[i] = nd.ID()
		}
		memberRefs[lvl] = refs
		memberIDs[lvl] = ids
	}

	// parentOf: each node reports to the nearest member of level
	// maxLevel+1 (midpoint tessellation).
	parentRef := func(nd *Node) (proto.NodeRef, bool) {
		need := int(nd.maxLevel) + 1
		if need >= len(levels) {
			return proto.NodeRef{}, false
		}
		idx := idspace.NearestIndex(memberIDs[need], nd.ID())
		ref := memberRefs[need][idx]
		if ref.Addr == nd.Addr() {
			// A node cannot parent itself; this only happens on duplicate
			// IDs, where any neighbour will do.
			return proto.NodeRef{}, false
		}
		return ref, true
	}

	// children lists keyed by parent address.
	childrenOf := map[uint64][]proto.NodeRef{}
	for _, nd := range sorted {
		if p, ok := parentRef(nd); ok {
			childrenOf[p.Addr] = append(childrenOf[p.Addr], nd.Ref())
		}
	}

	// neighbours returns up to `span` refs on each side of position i.
	neighbours := func(refs []proto.NodeRef, i, span int) []proto.NodeRef {
		var out []proto.NodeRef
		for d := 1; d <= span; d++ {
			if i-d >= 0 {
				out = append(out, refs[i-d])
			}
			if i+d < len(refs) {
				out = append(out, refs[i+d])
			}
		}
		return out
	}

	// indexIn finds nd's position among the level's members.
	indexIn := func(lvl int, nd *Node) int {
		ids := memberIDs[lvl]
		i := sort.Search(len(ids), func(i int) bool { return ids[i] >= nd.ID() })
		for i < len(ids) && memberRefs[lvl][i].Addr != nd.Addr() {
			i++
		}
		return i
	}

	// Seed every node's table.
	for _, nd := range sorted {
		// Level 0: direct + indirect neighbours (level0Span each side).
		i0 := indexIn(0, nd)
		nd.InstallLevel0(neighbours(memberRefs[0], i0, level0Span)...)

		// Buses for levels 1..maxLevel.
		for lvl := 1; lvl <= int(nd.maxLevel) && lvl < len(levels); lvl++ {
			bi := indexIn(lvl, nd)
			if bi < len(memberRefs[lvl]) {
				nd.InstallBus(uint8(lvl), neighbours(memberRefs[lvl], bi, 2)...)
			}
		}

		// Parent and superiors: the ancestor chain plus the parent's
		// direct bus neighbours at the parent's level.
		if p, ok := parentRef(nd); ok {
			nd.InstallParent(p)
			var sups []proto.NodeRef
			cur := p
			for {
				need := int(cur.MaxLevel) + 1
				if need >= len(levels) {
					break
				}
				idx := idspace.NearestIndex(memberIDs[need], cur.ID)
				up := memberRefs[need][idx]
				if up.Addr == cur.Addr || up.Addr == nd.Addr() {
					break
				}
				sups = append(sups, up)
				cur = up
			}
			pi := idspace.NearestIndex(memberIDs[p.MaxLevel], p.ID)
			for _, nb := range neighbours(memberRefs[p.MaxLevel], pi, 1) {
				if nb.Addr != nd.Addr() {
					sups = append(sups, nb)
				}
			}
			nd.InstallSuperiors(sups...)
		}

		// Children + children of direct bus neighbours.
		if kids := childrenOf[nd.Addr()]; len(kids) > 0 {
			nd.InstallChildren(kids...)
		}
		if nd.maxLevel >= 1 {
			bi := indexIn(int(nd.maxLevel), nd)
			for _, nb := range neighbours(memberRefs[nd.maxLevel], bi, 1) {
				nd.InstallNbrChildren(childrenOf[nb.Addr]...)
			}
		}
	}

	counts := make([]int, len(levels))
	for lvl := range levels {
		counts[lvl] = len(levels[lvl])
	}
	return counts
}
