package core

import (
	"math/rand"
	"sort"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

// fakeEnv is a manually driven core.Env for unit tests: sent messages are
// recorded, timers fire only when the test advances the clock.
type fakeEnv struct {
	addr   uint64
	now    time.Duration
	sent   []sentMsg
	timers []*fakeTimer
	rng    *rand.Rand
}

type sentMsg struct {
	to  uint64
	msg proto.Message
}

type fakeTimer struct {
	at        time.Duration
	fn        func()
	cancelled bool
	fired     bool
	// period > 0 marks a recurring timer: advance re-arms it after each
	// firing instead of marking it fired.
	period time.Duration
}

func (t *fakeTimer) Cancel() bool {
	if t.cancelled || t.fired {
		return false
	}
	t.cancelled = true
	return true
}

func newFakeEnv(addr uint64) *fakeEnv {
	return &fakeEnv{addr: addr, rng: rand.New(rand.NewSource(int64(addr)))}
}

func (e *fakeEnv) Addr() uint64       { return e.addr }
func (e *fakeEnv) Now() time.Duration { return e.now }
func (e *fakeEnv) Rand() *rand.Rand   { return e.rng }

func (e *fakeEnv) Send(to uint64, msg proto.Message) {
	e.sent = append(e.sent, sentMsg{to: to, msg: msg})
}

func (e *fakeEnv) SetTimer(d time.Duration, fn func()) Timer {
	t := &fakeTimer{at: e.now + d, fn: fn}
	e.timers = append(e.timers, t)
	return t
}

func (e *fakeEnv) SetPeriodic(d time.Duration, fn func()) Timer {
	t := &fakeTimer{at: e.now + d, fn: fn, period: d}
	e.timers = append(e.timers, t)
	return t
}

// advance moves the clock forward, firing due timers in time order.
func (e *fakeEnv) advance(d time.Duration) {
	target := e.now + d
	for {
		var next *fakeTimer
		for _, t := range e.timers {
			if t.cancelled || t.fired || t.at > target {
				continue
			}
			if next == nil || t.at < next.at {
				next = t
			}
		}
		if next == nil {
			break
		}
		e.now = next.at
		if next.period > 0 {
			next.at += next.period
		} else {
			next.fired = true
		}
		next.fn()
	}
	e.now = target
}

// drain returns and clears the recorded sends.
func (e *fakeEnv) drain() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

// sentTo filters recorded sends by destination without clearing.
func (e *fakeEnv) sentTo(addr uint64) []proto.Message {
	var out []proto.Message
	for _, s := range e.sent {
		if s.to == addr {
			out = append(out, s.msg)
		}
	}
	return out
}

// sentOfType returns all recorded messages matching the given type check.
func msgsOfType[T proto.Message](msgs []sentMsg) []T {
	var out []T
	for _, s := range msgs {
		if m, ok := s.msg.(T); ok {
			out = append(out, m)
		}
	}
	return out
}

// mkRef builds a test NodeRef.
func mkRef(id idspace.ID, addr uint64, lvl uint8) proto.NodeRef {
	return proto.NodeRef{ID: id, Addr: addr, MaxLevel: lvl, Score: 30000}
}

// testNode builds a started node with the given ID/address and fast timers.
func testNode(id idspace.ID, addr uint64, mutate ...func(*Config)) (*Node, *fakeEnv) {
	env := newFakeEnv(addr)
	cfg := Defaults()
	cfg.ID = id
	for _, m := range mutate {
		m(&cfg)
	}
	n := NewNode(cfg, env)
	n.Start()
	env.drain() // discard any startup traffic
	return n, env
}

// sortedAddrs lists destination addresses of the recorded sends.
func sortedAddrs(msgs []sentMsg) []uint64 {
	var out []uint64
	for _, m := range msgs {
		out = append(out, m.to)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
