package core

import (
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/routing"
)

// LookupStatus is the origin-side outcome of a lookup.
type LookupStatus uint8

// Lookup outcomes as observed by the origin.
const (
	// LookupFound: a node answered with the target (or its owner).
	LookupFound LookupStatus = iota
	// LookupNotFound: a node on the path dead-ended and said so.
	LookupNotFound
	// LookupTimeout: no reply arrived in time (TTL death, message loss,
	// or a partitioned network).
	LookupTimeout
)

// String implements fmt.Stringer.
func (s LookupStatus) String() string {
	switch s {
	case LookupFound:
		return "found"
	case LookupNotFound:
		return "not-found"
	case LookupTimeout:
		return "timeout"
	}
	return "status(?)"
}

// LookupResult is delivered to the origin's callback.
type LookupResult struct {
	Status LookupStatus
	// Best is the resolved node (valid when Status == LookupFound).
	Best proto.NodeRef
	// Hops is the number of overlay forwards the request took (0 when the
	// origin resolved it locally; meaningless on timeout).
	Hops int
	// Latency is the origin-observed wall/virtual time to resolution.
	Latency time.Duration
}

// Lookup resolves the node responsible for target using the given §III.f
// algorithm and invokes cb exactly once (found, not-found, or timeout).
// It returns the request id.
func (n *Node) Lookup(target idspace.ID, algo proto.Algo, cb func(LookupResult)) uint64 {
	n.nextReqID++
	reqID := n.nextReqID
	n.Stats.LookupsStarted++
	start := n.env.Now()

	req := &proto.LookupRequest{
		Origin: n.Ref(),
		Target: target,
		ReqID:  reqID,
		TTL:    n.cfg.MaxTTL,
		Hops:   0,
		Algo:   algo,
	}

	pl := &pendingLookup{cb: cb, algo: algo, started: start}
	n.pending[reqID] = pl

	finish := func(res LookupResult) {
		if _, ok := n.pending[reqID]; !ok {
			return
		}
		delete(n.pending, reqID)
		if pl.timer != nil {
			pl.timer.Cancel()
		}
		res.Latency = n.env.Now() - start
		cb(res)
	}

	// Route the first step locally.
	step := routing.RouteWith(&n.routeScratch, n.Ref(), n.table, req, false, 0, n.cfg.Routing)
	switch step.Action {
	case routing.Deliver:
		n.Stats.LookupsDelivered++
		finish(LookupResult{Status: LookupFound, Best: step.Found, Hops: 0})
		return reqID
	case routing.NotFound, routing.Drop:
		n.Stats.LookupsNotFound++
		finish(LookupResult{Status: LookupNotFound, Hops: 0})
		return reqID
	}

	pl.timer = n.env.SetTimer(n.cfg.LookupTimeout, func() {
		if _, ok := n.pending[reqID]; !ok {
			return
		}
		delete(n.pending, reqID)
		cb(LookupResult{Status: LookupTimeout, Hops: int(n.cfg.MaxTTL), Latency: n.env.Now() - start})
	})

	fwd := *req
	fwd.TTL--
	fwd.Hops++
	fwd.Alternates = step.Alternates
	n.Stats.LookupsForwarded++
	n.send(step.Next.Addr, &fwd)
	return reqID
}

// PendingLookups returns the number of in-flight origin lookups.
func (n *Node) PendingLookups() int { return len(n.pending) }

func (n *Node) handleLookupRequest(from uint64, m *proto.LookupRequest) {
	parent, hasParent := n.table.Parent()
	fromParent := hasParent && parent.Addr == from

	step := routing.RouteWith(&n.routeScratch, n.Ref(), n.table, m, fromParent, from, n.cfg.Routing)
	switch step.Action {
	case routing.Deliver:
		n.Stats.LookupsDelivered++
		n.reply(m, &proto.LookupReply{
			From: n.Ref(), ReqID: m.ReqID,
			Status: proto.LookupFound, Best: step.Found, Hops: m.Hops,
		})
	case routing.Forward:
		fwd := *m
		fwd.TTL--
		fwd.Hops++
		fwd.Alternates = step.Alternates
		n.Stats.LookupsForwarded++
		n.send(step.Next.Addr, &fwd)
	case routing.NotFound:
		n.Stats.LookupsNotFound++
		n.reply(m, &proto.LookupReply{
			From: n.Ref(), ReqID: m.ReqID,
			Status: proto.LookupNotFound, Hops: m.Hops,
		})
	case routing.Drop:
		// "IF TTL > 255 THEN discard the request" — the origin times out.
		n.Stats.LookupsDropped++
	}
}

// reply delivers a lookup reply to the origin — directly over the wire,
// or locally when a wandering request resolved back at its own origin
// (common for key lookups whose owner is the asking node).
func (n *Node) reply(req *proto.LookupRequest, rep *proto.LookupReply) {
	if req.Origin.Addr == n.Addr() {
		n.handleLookupReply(n.Addr(), rep)
		return
	}
	n.send(req.Origin.Addr, rep)
}

func (n *Node) handleLookupReply(from uint64, m *proto.LookupReply) {
	pl, ok := n.pending[m.ReqID]
	if !ok {
		return // duplicate or late reply
	}
	delete(n.pending, m.ReqID)
	if pl.timer != nil {
		pl.timer.Cancel()
	}
	res := LookupResult{Hops: int(m.Hops), Latency: n.env.Now() - pl.started}
	if m.Status == proto.LookupFound {
		res.Status = LookupFound
		res.Best = m.Best
	} else {
		res.Status = LookupNotFound
	}
	pl.cb(res)
}
