package core

// Stats counts protocol events on one node. Counters are plain fields —
// nodes are single-threaded, and the experiment harness aggregates
// snapshots between phases.
type Stats struct {
	MsgsIn  uint64
	MsgsOut uint64

	PingsSent      uint64
	PongsSent      uint64
	UpdatesApplied uint64

	ElectionsStarted uint64
	ElectionsWon     uint64
	ParentAdopted    uint64
	Splits           uint64
	Promotions       uint64 // level gains (election wins + grants accepted)
	Demotions        uint64
	Reparents        uint64
	ReparentsStation uint64 // redirects: child needs a level above ours
	ReparentsCloser  uint64 // redirects: a member strictly closer exists
	ReparentsSplit   uint64 // re-homes after a promotion grant
	BusRepairs       uint64

	LookupsStarted   uint64
	LookupsForwarded uint64
	LookupsDelivered uint64
	LookupsNotFound  uint64
	LookupsDropped   uint64 // TTL exhaustion observed at this node

	LeavesSent uint64 // graceful-departure announcements sent
	LeavesRecv uint64 // peers dropped on a received departure

	ProbesSent      uint64 // ring repair probes originated (verification + void)
	ProbesForwarded uint64 // probes relayed toward the void
	ProbeEdges      uint64 // probes answered as the far edge of a gap
	MergeIntrosSent uint64 // ring-zip introductions originated
	MergeGreets     uint64 // introductions acted on with a greeting
}

// Add accumulates other into s (for network-wide aggregation).
func (s *Stats) Add(o Stats) {
	s.MsgsIn += o.MsgsIn
	s.MsgsOut += o.MsgsOut
	s.PingsSent += o.PingsSent
	s.PongsSent += o.PongsSent
	s.UpdatesApplied += o.UpdatesApplied
	s.ElectionsStarted += o.ElectionsStarted
	s.ElectionsWon += o.ElectionsWon
	s.ParentAdopted += o.ParentAdopted
	s.Splits += o.Splits
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.Reparents += o.Reparents
	s.ReparentsStation += o.ReparentsStation
	s.ReparentsCloser += o.ReparentsCloser
	s.ReparentsSplit += o.ReparentsSplit
	s.BusRepairs += o.BusRepairs
	s.LookupsStarted += o.LookupsStarted
	s.LookupsForwarded += o.LookupsForwarded
	s.LookupsDelivered += o.LookupsDelivered
	s.LookupsNotFound += o.LookupsNotFound
	s.LookupsDropped += o.LookupsDropped
	s.LeavesSent += o.LeavesSent
	s.LeavesRecv += o.LeavesRecv
	s.ProbesSent += o.ProbesSent
	s.ProbesForwarded += o.ProbesForwarded
	s.ProbeEdges += o.ProbeEdges
	s.MergeIntrosSent += o.MergeIntrosSent
	s.MergeGreets += o.MergeGreets
}
