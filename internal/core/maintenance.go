package core

import (
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

// distTo abbreviates the Euclidean metric in protocol code.
func distTo(a, b idspace.ID) uint64 { return idspace.Dist(a, b) }

// --- periodic timers ---------------------------------------------------------

// The three maintenance loops are recurring timers armed once at Start and
// cancelled at Stop: no per-tick re-arm closure, which matters at scale
// (three timers per node per interval across a 10k-node simulation).

func (n *Node) armKeepalive() {
	if !n.started {
		return
	}
	n.keepaliveTimer = n.env.SetPeriodic(n.cfg.KeepAlive, n.keepaliveTick)
}

func (n *Node) armSweep() {
	if !n.started {
		return
	}
	n.sweepTimer = n.env.SetPeriodic(n.cfg.SweepInterval, n.sweepTick)
}

func (n *Node) armReport() {
	if !n.started {
		return
	}
	n.reportTimer = n.env.SetPeriodic(n.cfg.ChildReport, n.reportTick)
}

// keepaliveTick pings every active connection, piggybacking the routing
// delta each peer has not yet seen (§III.d: "the update can be delayed,
// waiting to be piggybacked during a keep-alive exchange").
func (n *Node) keepaliveTick() {
	for _, peer := range n.activePeers() {
		n.sendPing(peer.Addr)
	}
}

func (n *Node) sendPing(to uint64) {
	n.pingSeq++
	n.Stats.PingsSent++
	p := proto.AcquirePing()
	p.From, p.Seq = n.Ref(), n.pingSeq
	p.Entries = n.composeUpdateInto(p.Entries, to, false)
	n.send(to, p)
}

// pushUpdates immediately ships pending deltas to all active peers; called
// after membership changes when ImmediateUpdates is set (the paper's
// current implementation: "the update is exchanged immediately").
func (n *Node) pushUpdates() {
	if !n.cfg.ImmediateUpdates || !n.started {
		return
	}
	v := n.table.Version()
	for _, peer := range n.activePeers() {
		if ps, ok := n.peers[peer.Addr]; !ok || ps.lastSent < v {
			n.sendPing(peer.Addr)
		}
	}
}

// sweepTick expires stale routing entries and repairs the structures that
// lost members.
func (n *Node) sweepTick() {
	now := n.env.Now()
	if n.cfg.Balancer {
		n.updateLoad(now)
	}
	freshDegree := n.farewellCheck(now)
	res := n.table.Sweep(now, n.cfg.EntryTTL)
	for addr, ps := range n.peers {
		if ps.hasClaim && now-ps.claimAt >= n.cfg.EntryTTL {
			ps.hasClaim = false
		}
		if ps.refused && now-ps.refusedAt >= n.cfg.EntryTTL {
			n.clearRefusal(ps)
		}
		// A state that carries nothing any more is dropped. Delta cursors
		// for long-idle peers go too — without this the table grows with
		// every address ever contacted, a slow leak under perpetual
		// churn. Dropping an idle cursor is safe: recontacting the peer
		// just resends a full (receiver-deduplicated) table once. The
		// horizon is several TTLs so active-connection cursors, which
		// refresh every keep-alive, are never touched.
		idleCursor := ps.lastSent == 0 || now-ps.lastSentAt >= 4*n.cfg.EntryTTL
		if !ps.hasClaim && !ps.refused && idleCursor {
			delete(n.peers, addr)
		}
	}
	if n.table.Level0.Len() == 0 {
		// Every contact is gone: only an anchor can bring us back.
		n.contactAnchor()
	} else if freshDegree < ringDegreeFloor {
		// A handful of fresh contacts is how a stranded segment looks
		// from the inside: its members keep each other alive while the
		// rest of the overlay has forgotten them, so the empty-table
		// rejoin above never fires (repair.go, anchorHello).
		n.anchorHello(now)
	}
	// Ring self-healing runs every sweep regardless of what expired: the
	// gaps it closes are the ones no expiry ever reports (repair.go).
	n.probeTick()
	if res.Empty() {
		n.ensureHierarchy()
		return
	}

	// Level-0 repair: if a direct neighbour disappeared, promote the next
	// nearest known contact to a direct link by greeting it.
	if len(res.Level0) > 0 {
		l, r := n.table.Level0.Neighbors(n.cfg.ID)
		for _, nb := range []proto.NodeRef{l, r} {
			if !nb.IsZero() {
				n.sendHello(nb.Addr)
			}
		}
	}

	// Bus repair per level (ascending, for cross-process determinism):
	// relink towards the new nearest member.
	if len(res.Bus) > 0 {
		levels := n.scratchLevels[:0]
		for lvl := range res.Bus {
			levels = append(levels, lvl)
		}
		for i := 1; i < len(levels); i++ {
			for j := i; j > 0 && levels[j-1] > levels[j]; j-- {
				levels[j-1], levels[j] = levels[j], levels[j-1]
			}
		}
		n.scratchLevels = levels
		for _, lvl := range levels {
			if lvl > n.maxLevel {
				continue
			}
			if best, _, ok := n.bestKnownMember(lvl, n.cfg.ID); ok {
				n.Stats.BusRepairs++
				n.sendBusLinkReq(best.Addr, lvl)
			}
		}
	}

	// Parent loss: purge the dead parent from every structure so it cannot
	// be immediately re-adopted from the superior list, then repair —
	// preferably by adopting a replacement from the replicated knowledge
	// ("this replication of information provides a higher degree of
	// robustness at minimum cost"), otherwise by election.
	if res.ParentLost {
		n.table.RemoveEverywhere(res.Parent.Addr)
		n.adoptOrElect()
	}

	// Child loss: an under-filled parent starts its demotion countdown.
	if len(res.Children) > 0 {
		n.maybeStartDemotion()
	}

	n.ensureHierarchy()
}

// reportTick sends the child→parent heartbeat (§III.a: children that stop
// reporting are deleted by the parent).
func (n *Node) reportTick() {
	if p, ok := n.table.Parent(); ok {
		n.sendChildReport(p.Addr)
		return
	}
	n.adoptOrElect()
	// Still nothing in motion: the overlay around us cannot help (no known
	// candidate, not enough degree to elect). Pull fresh knowledge through
	// an anchor (§III's anchor system) — isolation and fragment merging
	// both need an out-of-band contact.
	if _, ok := n.table.Parent(); !ok && n.courting == 0 && n.electionTimer == nil {
		n.contactAnchor()
	}
}

// sendHello sends a pooled first-contact/repair greeting.
func (n *Node) sendHello(to uint64) {
	h := proto.AcquireHello()
	h.From, h.MaxChildren = n.Ref(), uint8(n.maxChildren)
	n.send(to, h)
}

// sendBusLinkReq sends a pooled bus (re)link request.
func (n *Node) sendBusLinkReq(to uint64, lvl uint8) {
	r := proto.AcquireBusLinkReq()
	r.From, r.Level = n.Ref(), lvl
	n.send(to, r)
}

// sendChildReport sends the pooled child→parent heartbeat.
func (n *Node) sendChildReport(to uint64) {
	cr := proto.AcquireChildReport()
	cr.From, cr.Degree = n.Ref(), uint8(n.degreeAt(0))
	n.send(to, cr)
}

// contactAnchor greets a random anchor; isolated nodes rejoin through it.
// A fully dark node (empty level-0 table) additionally retries through its
// recent-peers ring: under sustained churn every static anchor can be
// dead, and without a dynamic fallback such a node loops join requests at
// dead addresses forever while the rest of the overlay, having expired
// it, closes the ring over its head.
func (n *Node) contactAnchor() {
	dark := n.table.Level0.Len() == 0
	if dark {
		if p := n.nextRecentPeer(); p != 0 {
			n.send(p, &proto.JoinRequest{From: n.Ref()})
		}
		// The recent ring can consist entirely of peers that died in the
		// same wave (a dying neighbourhood talks mostly to itself near
		// the end); the bootstrap cache reaches back over the node's
		// whole lifetime and across the whole ID space.
		if p := n.nextBootPeer(); p != 0 {
			n.send(p, &proto.JoinRequest{From: n.Ref()})
		}
	}
	if len(n.cfg.Anchors) == 0 {
		return
	}
	a := n.cfg.Anchors[n.env.Rand().Intn(len(n.cfg.Anchors))]
	if a == n.Addr() {
		return
	}
	if dark {
		// Fully dark: full re-join.
		n.send(a, &proto.JoinRequest{From: n.Ref()})
		return
	}
	n.sendHello(a)
}

// nextRecentPeer rotates through the recent-peers ring, skipping empty
// slots and this node's own address; zero means the ring is empty.
func (n *Node) nextRecentPeer() uint64 {
	for i := 0; i < recentPeerSlots; i++ {
		n.recentScan = (n.recentScan + 1) % recentPeerSlots
		if p := n.recentPeers[n.recentScan]; p != 0 && p != n.Addr() {
			return p
		}
	}
	return 0
}

// nextBootPeer rotates through the bootstrap cache the same way.
func (n *Node) nextBootPeer() uint64 {
	for i := 0; i < bootCacheSlots; i++ {
		n.bootScan = (n.bootScan + 1) % bootCacheSlots
		if p := n.bootCache[n.bootScan]; p != 0 && p != n.Addr() {
			return p
		}
	}
	return 0
}

// ensureHierarchy re-checks the standing conditions that drive hierarchy
// dynamics; cheap because all triggers are guarded.
func (n *Node) ensureHierarchy() {
	if _, ok := n.table.Parent(); !ok {
		n.maybeStartElection()
	}
	n.maybeStartDemotion()
	n.maybeCancelDemotion()
}

// --- first contact and joins ---------------------------------------------------

func (n *Node) handleHello(from uint64, m *proto.Hello) {
	known := n.table.Level0.Get(from) != nil
	n.ringUpsert(m.From)
	n.noteRef(m.From, true)
	if !known {
		// Mutual introduction: "When two nodes communicate for the first
		// time they exchange information about their resources and state."
		n.sendHello(from)
	}
}

func (n *Node) handlePing(from uint64, m *proto.Ping) {
	n.ringUpsert(m.From)
	n.noteRef(m.From, true)
	n.applyEntries(from, m.From, m.Entries)
	n.Stats.PongsSent++
	pong := proto.AcquirePong()
	pong.From, pong.Seq = n.Ref(), m.Seq
	pong.Entries = n.composeUpdateInto(pong.Entries, from, n.table.Children.Get(from) != nil)
	n.send(from, pong)
}

func (n *Node) handlePong(from uint64, m *proto.Pong) {
	n.ringUpsert(m.From)
	n.noteRef(m.From, true)
	n.applyEntries(from, m.From, m.Entries)
}

func (n *Node) handleJoinRequest(from uint64, m *proto.JoinRequest) {
	// Route the joiner to the level-0 position nearest its coordinate.
	nearest, ok := n.table.Level0.Nearest(m.From.ID)
	selfD := distTo(n.cfg.ID, m.From.ID)
	if ok && distTo(nearest.ID, m.From.ID) < selfD && nearest.Addr != from {
		n.send(from, &proto.JoinRedirect{From: n.Ref(), Closer: nearest})
		return
	}
	// This node is the best known position: hand the joiner its
	// neighbours and the responsible parent.
	left, right := n.table.Level0.Neighbors(m.From.ID)
	// The accepting node is itself one of the joiner's neighbours.
	if n.cfg.ID <= m.From.ID {
		if left.IsZero() || left.ID < n.cfg.ID {
			left = n.Ref()
		}
	} else if right.IsZero() || right.ID > n.cfg.ID {
		right = n.Ref()
	}
	var parent proto.NodeRef
	if p, ok := n.table.Parent(); ok {
		parent = p
	}
	if best, _, ok := n.bestKnownMember(m.From.MaxLevel+1, m.From.ID); ok {
		parent = best
	}
	// ringUpsert, not a plain upsert: a joiner arriving over a bridge link
	// from a foreign ring must fire the zip introductions here too.
	n.ringUpsert(m.From)
	n.send(from, &proto.JoinAccept{From: n.Ref(), Left: left, Right: right, Parent: parent})
	n.pushUpdates()
}

func (n *Node) handleJoinRedirect(from uint64, m *proto.JoinRedirect) {
	if m.Closer.IsZero() || m.Closer.Addr == n.Addr() {
		return
	}
	n.noteRefAt(m.Closer, false, n.env.Now()-n.cfg.EntryTTL/2)
	n.send(m.Closer.Addr, &proto.JoinRequest{From: n.Ref()})
}

func (n *Node) handleJoinAccept(from uint64, m *proto.JoinAccept) {
	now := n.env.Now()
	n.ringUpsert(m.From)
	for _, nb := range []proto.NodeRef{m.Left, m.Right} {
		if nb.IsZero() || nb.Addr == n.Addr() {
			continue
		}
		n.table.Level0.Upsert(nb, proto.FNeighbor, now, n.table.NextVersion(), rtable.Hearsay)
		n.sendHello(nb.Addr)
	}
	if !m.Parent.IsZero() && m.Parent.Addr != n.Addr() {
		// The suggested parent is hearsay from the acceptor: court it
		// (half-TTL knowledge credit until it answers).
		n.noteRefAt(m.Parent, false, n.env.Now()-n.cfg.EntryTTL/2)
		n.courtRef(m.Parent)
	}
	n.ensureHierarchy()
}

// --- received-entry application ------------------------------------------------

// noteRef files a freshly learned ref into the right structures based on
// its advertised level (membership knowledge for routing and bus repair).
// direct distinguishes the message sender itself from hearsay refs.
func (n *Node) noteRef(r proto.NodeRef, direct bool) {
	n.noteRefAt(r, direct, n.env.Now())
}

// noteRefAt is noteRef with an explicit validation instant (now minus the
// shipped age, for relayed entries). It reports whether the ref was new to
// any structure — fresh upper-level knowledge is forwarded up the tree.
func (n *Node) noteRefAt(r proto.NodeRef, direct bool, validated time.Duration) bool {
	if r.IsZero() || r.Addr == n.Addr() {
		return false
	}
	mode := rtable.Hearsay
	if direct {
		mode = rtable.Direct
	}
	created := false
	top := n.claimCap(r.Addr, r.MaxLevel)
	if top > 0 {
		for lvl := uint8(1); lvl <= top && lvl <= n.cfg.MaxHeight; lvl++ {
			// Record membership only at levels this node has a stake in:
			// its own levels (bus upkeep) and one above (parent search) —
			// and only the nearest few members per side, so tables stay at
			// the §III.e sizes instead of accumulating the whole level.
			if lvl > n.maxLevel+1 {
				continue
			}
			set := n.table.BusLevel(lvl)
			if set.Get(r.Addr) == nil {
				if !direct && set.SideRank(n.cfg.ID, r.ID) >= busSpan {
					continue
				}
				created = true
			}
			set.Upsert(r, proto.FNeighbor, validated, n.table.NextVersion(), mode)
		}
	}
	return created
}

// claimCap bounds a peer's believed level by its own fresh first-hand
// claim: hearsay advertising a level above what the peer last said about
// itself is stale and must not resurrect phantom bus membership.
func (n *Node) claimCap(addr uint64, advertised uint8) uint8 {
	var ps *peerState
	if addr == n.curAddr && n.curPeer != nil {
		ps = n.curPeer // the sender itself: no extra lookup
	} else if p, ok := n.peers[addr]; ok {
		ps = p
	}
	if ps == nil || !ps.hasClaim || n.env.Now()-ps.claimAt >= n.cfg.EntryTTL {
		return advertised
	}
	if ps.claimLevel < advertised {
		return ps.claimLevel
	}
	return advertised
}

// applyEntries merges a received routing delta, applying the §III.c
// placement rules relative to who sent it.
func (n *Node) applyEntries(from uint64, sender proto.NodeRef, entries []proto.Entry) {
	if len(entries) == 0 {
		return
	}
	now := n.env.Now()
	parent, hasParent := n.table.Parent()
	fromParent := hasParent && parent.Addr == from
	// §III.c stores children of *direct* neighbours only.
	bl, br := n.busNeighbors(n.maxLevel)
	fromBusNbr := (!bl.IsZero() && bl.Addr == from) || (!br.IsZero() && br.Addr == from)
	// Newly learned upper-level members are forwarded to the parent in a
	// pooled Pong, acquired only when something actually flows upward.
	var up *proto.Pong
	for _, e := range entries {
		if e.Ref.IsZero() || e.Ref.Addr == n.Addr() {
			continue
		}
		// Shipped ages accumulate across hops; information already older
		// than the entry TTL is dead on arrival.
		age := e.AgeDuration()
		if age >= n.cfg.EntryTTL {
			continue
		}
		validated := now - age
		n.Stats.UpdatesApplied++
		switch {
		case e.Flags&proto.FParent != 0 && fromParent:
			// Parent's parent: an ancestor for the superior node list. The
			// parent vouches for its own relations (acyclic chain), so the
			// entry's liveness follows the parent's.
			n.table.Superiors.Upsert(e.Ref, proto.FSuperior, validated, n.table.NextVersion(), rtable.Vouched)
		case e.Flags&proto.FSuperior != 0 && fromParent:
			// Ancestors propagate down the parent chain (Figure 2).
			n.table.Superiors.Upsert(e.Ref, proto.FSuperior, validated, n.table.NextVersion(), rtable.Vouched)
		case e.Flags&proto.FNeighbor != 0 && fromParent &&
			e.Level >= n.maxLevel+1 && e.Ref.MaxLevel >= n.maxLevel+1:
			// Parent's bus neighbours (at our parent level or above)
			// complete the superior node list; the parent's level-0 ring
			// ads stay out of it.
			n.table.Superiors.Upsert(e.Ref, proto.FSuperior, validated, n.table.NextVersion(), rtable.Vouched)
		case e.Flags&proto.FChild != 0 && fromBusNbr && n.maxLevel >= 1:
			// Children of direct neighbours (§III.c children table — only
			// nodes above level 0 maintain it); the neighbour vouches for
			// its own reporting children. Capped so neighbour turnover
			// cannot accumulate history.
			set := n.table.NbrChildren
			if set.Get(e.Ref.Addr) != nil || set.Len() < 2*n.maxChildren {
				set.Upsert(e.Ref, proto.FChild|proto.FIndirect, validated, n.table.NextVersion(), rtable.Vouched)
			}
		case e.Level == 0:
			// Indirect level-0 neighbours: keep the nearest few per side
			// (§III.c allows l0 up to n-1; a handful per side is enough to
			// bridge failure gaps while keeping the table near the paper's
			// sizes).
			if n.table.Level0.SideRank(n.cfg.ID, e.Ref.ID) < level0Span {
				n.table.Level0.Upsert(e.Ref, proto.FNeighbor|proto.FIndirect, validated, n.table.NextVersion(), rtable.Hearsay)
			}
		}
		// Independent of placement: learn level membership. Newly learned
		// upper-level members are forwarded to our own parent — §III.d:
		// a previously unknown parent entry "will be added and then
		// forwarded to its own parent. Such exchange prevents the network
		// from having two roots of the tree that are not connected."
		if n.noteRefAt(e.Ref, false, validated) && e.Ref.MaxLevel > 0 && hasParent &&
			from != parent.Addr && e.Ref.Addr != parent.Addr {
			if up == nil {
				up = proto.AcquirePong()
				up.From = n.Ref()
			}
			if len(up.Entries) >= proto.MaxKeepAliveEntries {
				// Wire-safety clamp (see composeUpdateInto): the forward
				// must stay sendable over real UDP.
				continue
			}
			up.Entries = append(up.Entries, proto.Entry{
				Ref: e.Ref, Level: e.Ref.MaxLevel, Flags: proto.FNeighbor,
				Version: n.table.Version(), AgeDs: proto.AgeFrom(now, validated),
			})
		}
	}
	if up != nil {
		n.send(parent.Addr, up)
	}
	n.ensureHierarchy()
}

// level0Span is how many level-0 contacts a node retains per side. The
// ring survives level0Span consecutive failures without external help.
const level0Span = 4

// busSpan is how many same-level members a node retains per side on each
// bus; two suffice for the direct+indirect neighbour scheme of §III.c.
const busSpan = 2
