package core

import (
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/rtable"
)

// --- elections (§III.b) -------------------------------------------------------

// maybeStartElection triggers the §III.b election: "when a node reaches a
// degree of 2 and does not have a parent, it will search for a parent by
// contacting its neighbours". Each participant runs a countdown scaled
// inversely to its capability; the first to expire claims parenthood.
func (n *Node) maybeStartElection() {
	if !n.started || n.electionTimer != nil {
		return
	}
	if _, ok := n.table.Parent(); ok {
		return
	}
	if n.maxLevel >= n.cfg.MaxHeight {
		return
	}
	if n.degreeAt(n.maxLevel) < 2 {
		return
	}
	// Cheap repair first: adopt a known member of the needed level.
	if n.adoptParent() {
		return
	}
	level := n.maxLevel + 1
	n.Stats.ElectionsStarted++
	l, r := n.busNeighbors(n.maxLevel)
	for _, nb := range []proto.NodeRef{l, r} {
		if !nb.IsZero() {
			n.send(nb.Addr, &proto.ElectionCall{From: n.Ref(), Level: level})
		}
	}
	n.startElectionCountdown(level)
}

func (n *Node) startElectionCountdown(level uint8) {
	if n.electionTimer != nil {
		return
	}
	// Election races run on the STATIC profile, like demotion: capacity
	// decides who should hold hierarchy roles; load is redistributed at
	// the traffic layer (the DHT's hot-key fan-out), never by reshaping
	// the hierarchy. Folding live load into the countdown was tried:
	// the reshaped topologies looped ~1% of lookups to TTL death (255
	// hops of wandering each), inflating the very per-node load the
	// balancer exists to cap. See updateLoad for the full ledger of
	// rejected load→topology couplings.
	d := n.cfg.Profile.ElectionCountdown(n.cfg.ElectionMin, n.cfg.ElectionMax, n.env.Rand())
	n.electionTimer = n.env.SetTimer(d, func() {
		n.electionTimer = nil
		n.electionExpired(level)
	})
}

// electionExpired is the countdown trigger: "when the countdown of a node
// reaches 0 and if no other node was elected during this time, it will
// signal to its neighbours that it is their new parent".
func (n *Node) electionExpired(level uint8) {
	if _, ok := n.table.Parent(); ok {
		return // someone else won and we adopted them
	}
	if level != n.maxLevel+1 || level > n.cfg.MaxHeight {
		return // stale countdown from before a level change
	}
	n.Stats.ElectionsWon++
	n.promoteSelf(level)
}

func (n *Node) handleElectionCall(from uint64, m *proto.ElectionCall) {
	n.noteRef(m.From, true)
	if m.Level != n.maxLevel+1 {
		return // different cohort
	}
	if _, ok := n.table.Parent(); ok {
		// Already parented: tell the caller about our parent so it can
		// adopt instead of electing.
		if p, ok := n.table.Parent(); ok {
			n.send(from, &proto.ParentClaim{From: p, Level: m.Level, Region: proto.FromIDSpace(idspace.FullRegion())})
		}
		return
	}
	n.startElectionCountdown(m.Level)
}

// promoteSelf raises the node to the given level: it joins the level's bus,
// claims the tessellation it now owns, and looks for its own parent one
// level further up.
func (n *Node) promoteSelf(level uint8) {
	if level <= n.maxLevel || level > n.cfg.MaxHeight {
		return
	}
	n.maxLevel = level
	n.Stats.Promotions++

	// Join the bus: link towards the nearest known member.
	if best, _, ok := n.bestKnownMember(level, n.cfg.ID); ok && best.MaxLevel >= level {
		n.sendBusLinkReq(best.Addr, level)
	}

	// Claim children: announce to every known peer inside the region whose
	// parent level we now are.
	region := n.regionAt(level)
	claim := &proto.ParentClaim{From: n.Ref(), Level: level, Region: proto.FromIDSpace(region)}
	for _, c := range n.table.Candidates(nil) {
		if c.Addr == n.Addr() || !region.Contains(c.ID) {
			continue
		}
		if c.MaxLevel+1 == level {
			n.send(c.Addr, claim)
		}
	}

	// Find our own parent at level+1.
	n.adoptParent()
	n.pushUpdates()
}

// adoptParent starts courting the nearest known member of level
// maxLevel+1: a child report goes out, and the slot is installed when the
// candidate answers (confirmCourtship). A silent candidate is purged after
// a short probation so repair does not stall on stale knowledge. It
// returns whether a parent exists or a courtship is in progress.
func (n *Node) adoptParent() bool {
	if _, ok := n.table.Parent(); ok {
		return true
	}
	if n.courting != 0 {
		return true
	}
	best, _, ok := n.bestKnownMember(n.maxLevel+1, n.cfg.ID)
	if !ok {
		return false
	}
	n.courtRef(best)
	return true
}

// courtRef probes ref as a prospective parent.
func (n *Node) courtRef(ref proto.NodeRef) {
	if ref.IsZero() || ref.Addr == n.Addr() {
		return
	}
	if n.courtTimer != nil {
		n.courtTimer.Cancel()
	}
	n.courting = ref.Addr
	n.sendChildReport(ref.Addr)
	probation := n.cfg.ElectionMin
	if probation < 500*time.Millisecond {
		probation = 500 * time.Millisecond
	}
	n.courtTimer = n.env.SetTimer(3*probation, func() {
		n.courtTimer = nil
		dead := n.courting
		n.courting = 0
		if _, ok := n.table.Parent(); ok || dead == 0 {
			return
		}
		// No answer: the candidate is gone; purge and try the next one.
		n.table.RemoveEverywhere(dead)
		n.adoptOrElect()
	})
}

// confirmCourtship installs the courted parent once it has proven itself
// alive by any direct message.
func (n *Node) confirmCourtship(from uint64, ref proto.NodeRef) {
	if n.courting == 0 || n.courting != from {
		return
	}
	n.courting = 0
	if n.courtTimer != nil {
		n.courtTimer.Cancel()
		n.courtTimer = nil
	}
	if _, ok := n.table.Parent(); ok {
		return
	}
	if ref.MaxLevel < n.maxLevel+1 {
		// We were promoted while courting; this candidate can no longer be
		// our parent.
		return
	}
	n.table.SetParent(ref, n.env.Now())
	n.Stats.ParentAdopted++
	if n.electionTimer != nil {
		n.electionTimer.Cancel()
		n.electionTimer = nil
	}
}

// adoptOrElect is the parent-loss reaction: prefer the superior-node-list
// repair, fall back to an election.
func (n *Node) adoptOrElect() {
	if n.adoptParent() {
		return
	}
	n.maybeStartElection()
}

func (n *Node) handleParentClaim(from uint64, m *proto.ParentClaim) {
	n.noteRef(m.From, true)
	region := m.Region.ToIDSpace()
	if m.Level == n.maxLevel+1 && region.Contains(n.cfg.ID) {
		cur, has := n.table.Parent()
		if !has || distTo(m.From.ID, n.cfg.ID) < distTo(cur.ID, n.cfg.ID) {
			n.table.SetParent(m.From, n.env.Now())
			n.Stats.ParentAdopted++
			if n.electionTimer != nil {
				n.electionTimer.Cancel()
				n.electionTimer = nil
			}
			n.sendChildReport(m.From.Addr)
		}
		return
	}
	if m.Level <= n.maxLevel {
		// A peer on one of our buses; link up if it is now a direct
		// neighbour.
		n.table.BusLevel(m.Level).Upsert(m.From, proto.FNeighbor, n.env.Now(), n.table.NextVersion(), rtable.Direct)
		l, r := n.busNeighbors(m.Level)
		if l.Addr == m.From.Addr || r.Addr == m.From.Addr {
			n.sendBusLinkReq(m.From.Addr, m.Level)
		}
	}
}

// --- parent/child maintenance (§III.a) ----------------------------------------

func (n *Node) handleChildReport(from uint64, m *proto.ChildReport) {
	child := m.From
	n.noteRef(child, true)
	needLevel := child.MaxLevel + 1

	// Above our station: we cannot be this child's parent at all. Even
	// here the redirect target must be strictly closer to the child than
	// we are — redirect chains must monotonically decrease that distance
	// or stale level knowledge lets them cycle at network speed.
	if needLevel > n.maxLevel {
		if best, seen, ok := n.bestKnownMember(needLevel, child.ID); ok &&
			best.Addr != n.Addr() && best.Addr != from &&
			distTo(best.ID, child.ID) < distTo(n.cfg.ID, child.ID) {
			n.Stats.Reparents++
			n.Stats.ReparentsStation++
			n.send(from, &proto.Reparent{From: n.Ref(), NewParent: best,
				AgeDs: proto.AgeFrom(n.env.Now(), seen)})
			return
		}
		// No redirect available: refuse explicitly (zero NewParent) so the
		// child stops courting us — its knowledge of our level is stale,
		// and silence would leave it re-courting forever.
		n.send(from, &proto.Reparent{From: n.Ref()})
		return
	}

	// Tessellation ownership, decided by a globally consistent rule:
	// redirect only to a member STRICTLY closer to the child than we are.
	// Strictness matters — two parents evaluating region membership from
	// different partial bus views would bounce a boundary child between
	// each other forever; a shared distance comparison cannot cycle.
	if best, seen, ok := n.bestKnownMember(needLevel, child.ID); ok && best.Addr != from {
		if distTo(best.ID, child.ID) < distTo(n.cfg.ID, child.ID) {
			n.Stats.Reparents++
			n.Stats.ReparentsCloser++
			n.send(from, &proto.Reparent{From: n.Ref(), NewParent: best,
				AgeDs: proto.AgeFrom(n.env.Now(), seen)})
			return
		}
	}

	n.table.Children.Upsert(child, proto.FChild, n.env.Now(), n.table.NextVersion(), rtable.Direct)
	n.maybeCancelDemotion()

	// Ack so children learn our ancestors and bus neighbours (their
	// superior node lists) and keep that knowledge fresh.
	ack := proto.AcquirePong()
	ack.From = n.Ref()
	ack.Entries = n.composeUpdateInto(ack.Entries, from, true)
	n.send(from, ack)

	n.maybeSplit()
}

func (n *Node) handleReparent(from uint64, m *proto.Reparent) {
	// A refusal from a node we were courting: remember it so the
	// candidate search stops offering it, then try the next option.
	if m.NewParent.IsZero() && n.courting == from {
		n.markRefused(from)
		n.courting = 0
		if n.courtTimer != nil {
			n.courtTimer.Cancel()
			n.courtTimer = nil
		}
		n.adoptOrElect()
		return
	}
	cur, has := n.table.Parent()
	if has && cur.Addr != from {
		return // only the current parent may move us
	}
	if m.NewParent.IsZero() || m.NewParent.Addr == n.Addr() {
		n.table.ClearParent()
		n.ensureHierarchy()
		return
	}
	// A redirect based on knowledge as old as the entry TTL is noise; a
	// cluster of confused nodes must not re-mint freshness for a dead
	// node by redirecting each other to it.
	age := time.Duration(m.AgeDs) * 100 * time.Millisecond
	if age >= n.cfg.EntryTTL {
		n.ensureHierarchy()
		return
	}
	// The hand-off target is hearsay until it answers: court it.
	n.Stats.Reparents++
	n.table.ClearParent()
	n.noteRefAt(m.NewParent, false, n.env.Now()-age)
	n.courtRef(m.NewParent)
}

// maybeSplit performs the B+tree-style split: when the children table
// exceeds nc, the strongest child is promoted one level and takes over the
// half of the tessellation around it ("A parent is also responsible for
// promoting a child to its level of the hierarchy"). A cooldown keeps the
// parent from re-issuing grants faster than a promotee can accept and the
// moved children can re-home.
func (n *Node) maybeSplit() {
	if n.table.Children.Len() <= n.maxChildren {
		return
	}
	now := n.env.Now()
	if n.lastSplit != 0 && now-n.lastSplit < 2*n.cfg.ChildReport {
		return
	}
	// Strongest child wins promotion (§III.a: promotion criteria are the
	// node characteristics). Only children heard from directly within the
	// TTL qualify: promoting a child that stopped reporting upserts it
	// below as a direct-fresh bus member with a current timestamp, and if
	// it is actually dead that single false entry re-advertises through
	// the delta gossip and resurrects the dead node across the whole
	// neighbourhood — every lookup routed at its coordinate black-holes
	// until the false entry ages out again.
	var best proto.NodeRef
	var bestScore uint16
	found := false
	for _, r := range n.table.Children.Refs() {
		if r.MaxLevel+1 > n.maxLevel || r.MaxLevel+1 > n.cfg.MaxHeight {
			continue
		}
		if e := n.table.Children.Get(r.Addr); e == nil || !e.DirectFresh(now, n.cfg.EntryTTL) {
			continue
		}
		if !found || r.Score > bestScore || (r.Score == bestScore && r.ID < best.ID) {
			best, bestScore, found = r, r.Score, true
		}
	}
	if !found {
		return
	}
	newLvl := best.MaxLevel + 1
	n.Stats.Splits++
	n.lastSplit = now

	// The promotee's bus neighbours at its new level: the members flanking
	// it in our view (including ourselves when we are a member).
	members := n.busMembersWithSelf(newLvl)
	var left, right proto.NodeRef
	for _, mref := range members {
		if mref.ID < best.ID && mref.Addr != best.Addr {
			left = mref
		}
		if mref.ID > best.ID && right.IsZero() && mref.Addr != best.Addr {
			right = mref
		}
	}
	region := cellAround(members, best)
	n.send(best.Addr, &proto.PromoteGrant{
		From: n.Ref(), Level: newLvl,
		Region: proto.FromIDSpace(region),
		Left:   left, Right: right,
	})

	// Re-home the children that fall into the promotee's new cell.
	promoted := best
	promoted.MaxLevel = newLvl
	var moved []proto.NodeRef
	for _, r := range n.table.Children.Refs() {
		if r.Addr == best.Addr {
			continue
		}
		if r.MaxLevel+1 == newLvl && region.Contains(r.ID) {
			moved = append(moved, r)
		}
	}
	for _, r := range moved {
		n.Stats.Reparents++
		n.Stats.ReparentsSplit++
		n.send(r.Addr, &proto.Reparent{From: n.Ref(), NewParent: promoted})
		n.table.Children.Remove(r.Addr)
	}
	// The promotee stops being a child when it reaches our own level.
	if newLvl >= n.maxLevel {
		n.table.Children.Remove(best.Addr)
	}
	n.table.BusLevel(newLvl).Upsert(promoted, proto.FNeighbor, n.env.Now(), n.table.NextVersion(), rtable.Direct)
	n.pushUpdates()
	n.maybeStartDemotion()
}

// cellAround computes the tessellation cell ref will own among the sorted
// member list once inserted (ref is being promoted into the level, so it is
// not a member yet). Used to scope a promotion grant.
func cellAround(members []proto.NodeRef, ref proto.NodeRef) idspace.Region {
	ids := make([]idspace.ID, 0, len(members)+1)
	for _, m := range members {
		if m.Addr == ref.Addr {
			continue
		}
		ids = append(ids, m.ID)
	}
	pos := 0
	for pos < len(ids) && ids[pos] < ref.ID {
		pos++
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = ref.ID
	return idspace.FullRegion().CellOf(ids, pos)
}

func (n *Node) handlePromoteGrant(from uint64, m *proto.PromoteGrant) {
	p, has := n.table.Parent()
	if !has || p.Addr != from {
		return // only our parent promotes us
	}
	if m.Level != n.maxLevel+1 || m.Level > n.cfg.MaxHeight {
		return
	}
	now := n.env.Now()
	for _, nb := range []proto.NodeRef{m.Left, m.Right} {
		if nb.IsZero() || nb.Addr == n.Addr() || n.claimCap(nb.Addr, nb.MaxLevel) < m.Level {
			continue
		}
		n.table.BusLevel(m.Level).Upsert(nb, proto.FNeighbor, now, n.table.NextVersion(), rtable.Hearsay)
	}
	n.maxLevel = m.Level
	n.Stats.Promotions++
	// Link into the bus and announce the claimed tessellation.
	l, r := n.busNeighbors(m.Level)
	for _, nb := range []proto.NodeRef{l, r} {
		if !nb.IsZero() {
			n.sendBusLinkReq(nb.Addr, m.Level)
		}
	}
	claim := &proto.ParentClaim{From: n.Ref(), Level: m.Level, Region: m.Region}
	region := m.Region.ToIDSpace()
	for _, c := range n.table.Candidates(nil) {
		if c.Addr == n.Addr() || c.Addr == from || !region.Contains(c.ID) {
			continue
		}
		if c.MaxLevel+1 == m.Level {
			n.send(c.Addr, claim)
		}
	}
	// Our parent may still cover us at the new level + 1; re-report so it
	// refreshes our level, or get redirected to the right member.
	n.sendChildReport(from)
	n.pushUpdates()
}

// --- demotion (§III.b) ----------------------------------------------------------

// maybeStartDemotion arms the reverse countdown: "if a parent has less than
// two children, it will start a countdown ... the higher the characteristic
// the longer the countdown".
func (n *Node) maybeStartDemotion() {
	if !n.started || n.demotionTimer != nil || n.maxLevel == 0 {
		return
	}
	if n.table.Children.Len() >= 2 {
		return
	}
	if n.cfg.RetainUpperLevels && n.maxLevel > 1 {
		// §VI future-work strategy: strong upper-level nodes keep their
		// status even without children.
		return
	}
	// Demotion stays on the STATIC profile even with the balancer on:
	// a funnel node's message load is positional — whoever holds the
	// level inherits it — so load-accelerated demotion just moves the
	// hotspot to the next victim and thrashes elections. Load steers
	// who wins promotions (election countdown, routing bias), not how
	// long an incumbent survives.
	n.demotionTimer = n.env.SetTimer(n.cfg.Profile.DemotionCountdown(n.cfg.DemotionMin, n.cfg.DemotionMax), func() {
		n.demotionTimer = nil
		n.demotionExpired()
	})
}

func (n *Node) maybeCancelDemotion() {
	if n.demotionTimer != nil && n.table.Children.Len() >= 2 {
		n.demotionTimer.Cancel()
		n.demotionTimer = nil
	}
}

// demotionExpired demotes the node one level: "at the end of the countdown,
// if it still has less than two children it will leave its current level".
func (n *Node) demotionExpired() {
	if n.maxLevel == 0 || n.table.Children.Len() >= 2 {
		return
	}
	oldLvl := n.maxLevel
	left, right := n.busNeighbors(oldLvl)
	successor := left
	if successor.IsZero() || (!right.IsZero() && distTo(right.ID, n.cfg.ID) < distTo(left.ID, n.cfg.ID)) {
		successor = right
	}

	// Tell the bus and hand children to the successor.
	for _, nb := range []proto.NodeRef{left, right} {
		if !nb.IsZero() {
			n.send(nb.Addr, &proto.Demote{From: n.Ref(), Level: oldLvl, Successor: successor})
		}
	}
	for _, c := range n.table.Children.Refs() {
		n.Stats.Reparents++
		n.send(c.Addr, &proto.Reparent{From: n.Ref(), NewParent: successor})
	}

	n.maxLevel = oldLvl - 1
	n.Stats.Demotions++
	n.table.DropLevel(oldLvl)

	// Our own parent requirement dropped a level; the old parent is still
	// a member of the lower level's bus, but the successor may be nearer.
	if !successor.IsZero() {
		n.table.ClearParent()
		n.courtRef(successor)
	}
	n.pushUpdates()
	// Cascade: we may now be under-filled at the lower level too.
	n.maybeStartDemotion()
}

func (n *Node) handleDemote(from uint64, m *proto.Demote) {
	demoted := m.From
	demoted.MaxLevel = m.Level - 1
	// Remove the node from the vacated level, keep it at the one below.
	if s, ok := n.table.Bus[m.Level]; ok {
		s.Remove(from)
	}
	if m.Level-1 > 0 {
		n.table.BusLevel(m.Level-1).Upsert(demoted, proto.FNeighbor, n.env.Now(), n.table.NextVersion(), rtable.Direct)
	}
	if p, ok := n.table.Parent(); ok && p.Addr == from {
		n.table.ClearParent()
		if !m.Successor.IsZero() && m.Successor.Addr != n.Addr() {
			n.courtRef(m.Successor)
		} else {
			n.ensureHierarchy()
		}
	}
	// Bus repair towards the successor.
	if !m.Successor.IsZero() && m.Successor.Addr != n.Addr() && m.Level <= n.maxLevel {
		n.sendBusLinkReq(m.Successor.Addr, m.Level)
	}
}

// --- bus linking ----------------------------------------------------------------

func (n *Node) handleBusLinkReq(from uint64, m *proto.BusLinkReq) {
	n.noteRef(m.From, true)
	lvl := m.Level
	if lvl == 0 || lvl > n.cfg.MaxHeight {
		return
	}
	now := n.env.Now()
	s := n.table.BusLevel(lvl)
	s.Upsert(m.From, proto.FNeighbor, now, n.table.NextVersion(), rtable.Direct)
	// Answer with the members flanking the requester in our view — but
	// only members with fresh direct contact. The ack receiver files these
	// as current knowledge, so handing out a member we merely heard about
	// re-mints freshness for it; if that member is dead, every bus-link
	// exchange re-seeds it into the neighbourhood's tables and the delta
	// gossip keeps it alive forever (routing trusts every entry).
	members := n.busMembersWithSelf(lvl)
	var left, right proto.NodeRef
	for _, mref := range members {
		if mref.Addr == m.From.Addr {
			continue
		}
		if mref.Addr != n.Addr() {
			if e := s.Get(mref.Addr); e == nil || !e.DirectFresh(now, n.cfg.EntryTTL) {
				continue
			}
		}
		if mref.ID <= m.From.ID {
			left = mref
		} else if right.IsZero() {
			right = mref
		}
	}
	ack := proto.AcquireBusLinkAck()
	ack.From, ack.Level, ack.Left, ack.Right = n.Ref(), lvl, left, right
	n.send(from, ack)
}

func (n *Node) handleBusLinkAck(from uint64, m *proto.BusLinkAck) {
	now := n.env.Now()
	if m.Level == 0 || m.Level > n.maxLevel+1 {
		return
	}
	n.table.BusLevel(m.Level).Upsert(m.From, proto.FNeighbor, now, n.table.NextVersion(), rtable.Direct)
	for _, nb := range []proto.NodeRef{m.Left, m.Right} {
		if nb.IsZero() || nb.Addr == n.Addr() || n.claimCap(nb.Addr, nb.MaxLevel) < m.Level {
			continue
		}
		n.table.BusLevel(m.Level).Upsert(nb, proto.FNeighbor, now, n.table.NextVersion(), rtable.Hearsay)
	}
}
