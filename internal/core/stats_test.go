package core

import (
	"reflect"
	"testing"
)

// TestStatsAddAccumulates sets every counter in the source to a distinct
// value and verifies Add sums them all — via reflection, so a counter
// added to the struct but forgotten in Add fails here instead of silently
// reading zero in experiment aggregation.
func TestStatsAddAccumulates(t *testing.T) {
	var s, o Stats
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < ov.NumField(); i++ {
		ov.Field(i).SetUint(uint64(i + 1))
	}
	s.Add(o)
	sv := reflect.ValueOf(&s).Elem()
	for i := 0; i < sv.NumField(); i++ {
		if got, want := sv.Field(i).Uint(), uint64(i+1); got != want {
			t.Errorf("field %s: got %d, want %d (missing from Add?)",
				sv.Type().Field(i).Name, got, want)
		}
	}
}

// TestStatsAddTwiceDoubles checks accumulation on non-zero state.
func TestStatsAddTwiceDoubles(t *testing.T) {
	var s Stats
	o := Stats{MsgsIn: 3, LookupsStarted: 5, Demotions: 7}
	s.Add(o)
	s.Add(o)
	if s.MsgsIn != 6 || s.LookupsStarted != 10 || s.Demotions != 14 {
		t.Fatalf("double add: %+v", s)
	}
}
