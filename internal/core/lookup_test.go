package core

import (
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

func TestLookupLocalDeliver(t *testing.T) {
	n, _ := testNode(100, 1)
	target := mkRef(500, 5, 0)
	n.InstallLevel0(target)
	var got LookupResult
	n.Lookup(500, proto.AlgoG, func(r LookupResult) { got = r })
	if got.Status != LookupFound || got.Best.Addr != 5 || got.Hops != 0 {
		t.Fatalf("result %+v", got)
	}
	if n.PendingLookups() != 0 {
		t.Fatal("pending leak")
	}
	if n.Stats.LookupsStarted != 1 || n.Stats.LookupsDelivered != 1 {
		t.Fatal("stats")
	}
}

func TestLookupSelfTarget(t *testing.T) {
	n, _ := testNode(100, 1)
	var got LookupResult
	n.Lookup(100, proto.AlgoG, func(r LookupResult) { got = r })
	if got.Status != LookupFound || got.Best.Addr != 1 {
		t.Fatalf("result %+v", got)
	}
}

func TestLookupImmediateNotFound(t *testing.T) {
	// An isolated node's own lookups dead-end immediately: claiming
	// ownership of every coordinate would let writes succeed locally while
	// the rest of the overlay resolves the key elsewhere.
	n, _ := testNode(100, 1)
	var got LookupResult
	n.Lookup(999, proto.AlgoG, func(r LookupResult) { got = r })
	if got.Status != LookupNotFound {
		t.Fatalf("result %+v", got)
	}
}

func TestLookupForwardAndReply(t *testing.T) {
	n, env := testNode(100, 1)
	nbr := mkRef(400, 4, 0)
	n.InstallLevel0(nbr)
	env.drain()
	fired := false
	var got LookupResult
	id := n.Lookup(500, proto.AlgoG, func(r LookupResult) { fired = true; got = r })
	reqs := msgsOfType[*proto.LookupRequest](env.drain())
	if len(reqs) != 1 {
		t.Fatalf("forwarded %d requests", len(reqs))
	}
	if reqs[0].Hops != 1 || reqs[0].TTL != n.cfg.MaxTTL-1 {
		t.Fatalf("hop/ttl accounting: %+v", reqs[0])
	}
	if fired {
		t.Fatal("callback before reply")
	}
	// Reply arrives.
	n.HandleMessage(4, &proto.LookupReply{
		From: nbr, ReqID: id, Status: proto.LookupFound,
		Best: mkRef(500, 5, 0), Hops: 3,
	})
	if !fired || got.Status != LookupFound || got.Hops != 3 {
		t.Fatalf("result %+v", got)
	}
	// Duplicate reply is ignored.
	n.HandleMessage(4, &proto.LookupReply{From: nbr, ReqID: id, Status: proto.LookupNotFound})
	if got.Status != LookupFound {
		t.Fatal("duplicate reply overwrote result")
	}
}

func TestLookupTimeout(t *testing.T) {
	n, env := testNode(100, 1)
	n.InstallLevel0(mkRef(400, 4, 0))
	var got LookupResult
	fired := false
	n.Lookup(500, proto.AlgoG, func(r LookupResult) { fired = true; got = r })
	env.advance(n.cfg.LookupTimeout + time.Second)
	if !fired || got.Status != LookupTimeout {
		t.Fatalf("fired=%v result %+v", fired, got)
	}
	if n.PendingLookups() != 0 {
		t.Fatal("pending leak after timeout")
	}
}

func TestHandleLookupRequestDeliver(t *testing.T) {
	n, env := testNode(500, 5)
	origin := mkRef(100, 1, 0)
	req := &proto.LookupRequest{Origin: origin, Target: 500, ReqID: 9, TTL: 200, Hops: 3, Algo: proto.AlgoG}
	n.HandleMessage(4, req)
	replies := msgsOfType[*proto.LookupReply](env.drain())
	if len(replies) != 1 {
		t.Fatal("no reply")
	}
	r := replies[0]
	if r.Status != proto.LookupFound || r.Best.Addr != 5 || r.Hops != 3 || r.ReqID != 9 {
		t.Fatalf("reply %+v", r)
	}
}

func TestHandleLookupRequestForwardDecrementsTTL(t *testing.T) {
	n, env := testNode(100, 1)
	n.InstallLevel0(mkRef(400, 4, 0))
	env.drain()
	req := &proto.LookupRequest{Origin: mkRef(50, 9, 0), Target: 500, ReqID: 9, TTL: 10, Hops: 2, Algo: proto.AlgoG}
	n.HandleMessage(9, req)
	fwds := msgsOfType[*proto.LookupRequest](env.drain())
	if len(fwds) != 1 || fwds[0].TTL != 9 || fwds[0].Hops != 3 {
		t.Fatalf("forward %+v", fwds)
	}
	// Original request object must not be mutated (zero-copy transport).
	if req.TTL != 10 || req.Hops != 2 {
		t.Fatal("request mutated in place")
	}
}

func TestHandleLookupRequestTTLDrop(t *testing.T) {
	n, env := testNode(100, 1)
	n.InstallLevel0(mkRef(400, 4, 0))
	env.drain()
	req := &proto.LookupRequest{Origin: mkRef(50, 9, 0), Target: 500, ReqID: 9, TTL: 0, Hops: 255, Algo: proto.AlgoG}
	n.HandleMessage(9, req)
	if len(env.drain()) != 0 {
		t.Fatal("TTL-dead request must be silently discarded")
	}
	if n.Stats.LookupsDropped != 1 {
		t.Fatal("drop not counted")
	}
}

func TestHandleLookupRequestIsolatedDeliversSelf(t *testing.T) {
	// A node that knows nobody but the sender is its own best owner
	// estimate (the owner of a coordinate is the nearest node): it answers
	// Found with itself rather than NotFound, which is what lets a
	// two-node overlay resolve key owners. The origin judges exact-node
	// lookups against Best, so a wrong estimate still reads as a miss.
	n, env := testNode(100, 1)
	req := &proto.LookupRequest{Origin: mkRef(50, 9, 0), Target: 500, ReqID: 9, TTL: 10, Algo: proto.AlgoG}
	n.HandleMessage(9, req)
	replies := msgsOfType[*proto.LookupReply](env.drain())
	if len(replies) != 1 || replies[0].Status != proto.LookupFound || replies[0].Best.Addr != n.Addr() {
		t.Fatalf("replies %+v", replies)
	}
}

func TestLookupStatusString(t *testing.T) {
	for s, want := range map[LookupStatus]string{
		LookupFound: "found", LookupNotFound: "not-found", LookupTimeout: "timeout", LookupStatus(9): "status(?)",
	} {
		if s.String() != want {
			t.Errorf("%d -> %q", s, s.String())
		}
	}
}

func TestStopClearsPendingLookups(t *testing.T) {
	n, env := testNode(100, 1)
	n.InstallLevel0(mkRef(400, 4, 0))
	n.Lookup(500, proto.AlgoG, func(LookupResult) { t.Fatal("callback after stop") })
	n.Stop()
	env.advance(time.Minute)
	if n.PendingLookups() != 0 {
		t.Fatal("pending leak after stop")
	}
}

func TestLookupHopsZeroBased(t *testing.T) {
	// The origin resolving from its own table reports 0 hops; a neighbour
	// that delivers reports the hops the request had accumulated.
	n, _ := testNode(100, 1)
	n.InstallLevel0(mkRef(idspace.ID(500), 5, 0))
	var got LookupResult
	n.Lookup(500, proto.AlgoNG, func(r LookupResult) { got = r })
	if got.Hops != 0 {
		t.Fatalf("local hops %d", got.Hops)
	}
}
