// Package core implements the TreeP overlay protocol of Hudzia et al.:
// hierarchy creation and maintenance (§III.a–b), the six-table routing
// state (§III.c–d), and the lookup machinery (§III.f), as an event-driven
// state machine independent of any particular transport.
//
// Hierarchy model. A node occupies levels 0..MaxLevel of the overlay
// (§III.c: the superior node list "consists of nodes with more than one
// level"). The members of level j are exactly the nodes with MaxLevel ≥ j;
// within each level they form a bus ordered by ID (§III.a), and the level-j
// tessellation is the midpoint partition of the ID space among the level-j
// members. A node's parent is the nearest member of level MaxLevel+1; its
// children are the nodes that report to it. Elections promote parentless
// well-connected nodes (§III.b), capacity overflows split B+tree-style by
// promoting the strongest child, and parents with fewer than two children
// demote after a capability-scaled countdown.
//
// All state transitions happen on a single logical event loop per node:
// runtimes (the deterministic simulator, the UDP transport) serialise calls
// into HandleMessage and timer callbacks. Node is not safe for concurrent
// use by design — concurrency lives in the runtime, not the protocol.
package core

import (
	"math/rand"
	"time"

	"treep/internal/proto"
)

// Timer is a cancellable timer handle (single-shot or periodic; cancelling
// a periodic timer stops all future firings).
type Timer interface {
	// Cancel stops the timer, reporting whether it was still pending.
	Cancel() bool
}

// Env is everything a node needs from its runtime: identity, virtual or
// real time, best-effort datagram sending, timers, and a deterministic
// random stream. Implementations must invoke timer callbacks and
// HandleMessage on the same logical event loop.
type Env interface {
	// Addr returns this node's transport address.
	Addr() uint64
	// Now returns the current time (virtual in simulation).
	Now() time.Duration
	// Send transmits a message best-effort; it must not block.
	Send(to uint64, msg proto.Message)
	// SetTimer schedules fn once, after d; the returned handle cancels it.
	SetTimer(d time.Duration, fn func()) Timer
	// SetPeriodic schedules fn every d (first firing after d) until the
	// returned handle is cancelled. Runtimes back this with a recurring
	// timer primitive so steady-state ticks do not re-arm per firing.
	SetPeriodic(d time.Duration, fn func()) Timer
	// Rand returns this node's random stream.
	Rand() *rand.Rand
}
