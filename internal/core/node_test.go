package core

import (
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
)

func TestNewNodeDefaults(t *testing.T) {
	env := newFakeEnv(1)
	n := NewNode(Config{ID: 42}, env)
	if n.cfg.MaxHeight != 6 || n.cfg.MaxTTL != 255 {
		t.Fatalf("defaults not applied: %+v", n.cfg)
	}
	if n.MaxChildren() < 2 {
		t.Fatal("maxChildren floor")
	}
	if n.Ref().ID != 42 || n.Ref().Addr != 1 || n.Ref().MaxLevel != 0 {
		t.Fatalf("ref %v", n.Ref())
	}
	if n.String() == "" {
		t.Fatal("String")
	}
}

func TestHelloHandshake(t *testing.T) {
	n, env := testNode(100, 1)
	peer := mkRef(200, 2, 0)
	n.HandleMessage(2, &proto.Hello{From: peer, MaxChildren: 4})
	replies := msgsOfType[*proto.Hello](env.drain())
	if len(replies) != 1 {
		t.Fatalf("first hello should be answered, got %d replies", len(replies))
	}
	// Second hello from a known peer: no re-introduction.
	n.HandleMessage(2, &proto.Hello{From: peer, MaxChildren: 4})
	if len(msgsOfType[*proto.Hello](env.drain())) != 0 {
		t.Fatal("known peer re-greeted")
	}
	if n.Table().Level0.Get(2) == nil {
		t.Fatal("peer not in level-0 table")
	}
}

func TestPingPongDelta(t *testing.T) {
	n, env := testNode(100, 1)
	peer := mkRef(200, 2, 0)
	// Three level-0 entries on the right: 110 and 120 are within the
	// structural advertisement window (two per side, re-shipped every
	// pong); 150 is an indirect entry that must ship once as delta and
	// then stay quiet.
	n.InstallLevel0(mkRef(110, 5, 0), mkRef(120, 4, 0), mkRef(150, 3, 0))
	n.HandleMessage(2, &proto.Ping{From: peer, Seq: 7})
	pongs := msgsOfType[*proto.Pong](env.drain())
	if len(pongs) != 1 || pongs[0].Seq != 7 {
		t.Fatalf("pong: %+v", pongs)
	}
	first := pongs[0].Entries
	if len(first) == 0 {
		t.Fatal("first pong should carry the table delta")
	}
	saw150 := false
	for _, e := range first {
		if e.Ref.Addr == 3 {
			saw150 = true
		}
	}
	if !saw150 {
		t.Fatal("first pong must include the indirect entry")
	}
	// Second ping with no table change: the indirect entry must not be
	// re-shipped (only structural relationships repeat).
	n.HandleMessage(2, &proto.Ping{From: peer, Seq: 8})
	pongs = msgsOfType[*proto.Pong](env.drain())
	if len(pongs) != 1 {
		t.Fatal("second pong missing")
	}
	for _, e := range pongs[0].Entries {
		if e.Ref.Addr == 3 {
			t.Fatalf("unchanged indirect entry reshipped: %+v", e)
		}
	}
}

func TestKeepaliveTickPingsActivePeers(t *testing.T) {
	n, env := testNode(100, 1)
	n.InstallLevel0(mkRef(90, 2, 0), mkRef(110, 3, 0))
	env.drain()
	env.advance(n.cfg.KeepAlive + time.Millisecond)
	pings := msgsOfType[*proto.Ping](env.drain())
	if len(pings) < 2 {
		t.Fatalf("keepalive pinged %d peers, want >= 2", len(pings))
	}
	if n.Stats.PingsSent < 2 {
		t.Fatal("stats not counted")
	}
}

func TestJoinAcceptAndRedirect(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	// No better candidate: accept.
	joiner := mkRef(idspace.FromFraction(0.51), 9, 0)
	n.HandleMessage(9, &proto.JoinRequest{From: joiner})
	accepts := msgsOfType[*proto.JoinAccept](env.drain())
	if len(accepts) != 1 {
		t.Fatal("expected accept")
	}
	if accepts[0].Left.Addr != 1 {
		t.Fatalf("acceptor should be the joiner's left neighbour: %+v", accepts[0])
	}
	// A closer known node: redirect.
	closer := mkRef(idspace.FromFraction(0.8), 5, 0)
	n.InstallLevel0(closer)
	joiner2 := mkRef(idspace.FromFraction(0.82), 10, 0)
	n.HandleMessage(10, &proto.JoinRequest{From: joiner2})
	redirects := msgsOfType[*proto.JoinRedirect](env.drain())
	if len(redirects) != 1 || redirects[0].Closer.Addr != 5 {
		t.Fatalf("expected redirect to 5: %+v", redirects)
	}
}

func TestJoinAcceptHandling(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.3), 1)
	acc := &proto.JoinAccept{
		From:   mkRef(idspace.FromFraction(0.29), 2, 0),
		Left:   mkRef(idspace.FromFraction(0.28), 3, 0),
		Right:  mkRef(idspace.FromFraction(0.31), 4, 0),
		Parent: mkRef(idspace.FromFraction(0.25), 5, 1),
	}
	n.HandleMessage(2, acc)
	sent := env.drain()
	if len(msgsOfType[*proto.Hello](sent)) != 2 {
		t.Fatalf("should greet both neighbours: %v", sortedAddrs(sent))
	}
	reports := msgsOfType[*proto.ChildReport](sent)
	if len(reports) != 1 {
		t.Fatal("should court the given parent with a child report")
	}
	if _, ok := n.Table().Parent(); ok {
		t.Fatal("unverified parent must not be installed before its ack")
	}
	// The courted parent answers: adoption completes.
	n.HandleMessage(5, &proto.Pong{From: acc.Parent, Seq: 0})
	if p, ok := n.Table().Parent(); !ok || p.Addr != 5 {
		t.Fatal("parent not installed after ack")
	}
}

func TestChildReportAcceptAndAck(t *testing.T) {
	// A level-1 node with no other level-1 members covers everything.
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel(1)
	child := mkRef(idspace.FromFraction(0.52), 7, 0)
	n.HandleMessage(7, &proto.ChildReport{From: child, Degree: 2})
	if n.Table().Children.Get(7) == nil {
		t.Fatal("child not recorded")
	}
	acks := msgsOfType[*proto.Pong](env.drain())
	if len(acks) != 1 {
		t.Fatal("child report should be acked with a delta pong")
	}
}

func TestChildReportRedirects(t *testing.T) {
	// Child needs a level-2 parent but we are level 1: redirect to a known
	// level-2 member — provided it is strictly closer to the child than we
	// are (redirect chains must make monotone progress).
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel(1)
	member2 := mkRef(idspace.FromFraction(0.53), 8, 2)
	n.InstallBus(2, member2)
	child := mkRef(idspace.FromFraction(0.54), 7, 1)
	n.HandleMessage(7, &proto.ChildReport{From: child, Degree: 2})
	reps := msgsOfType[*proto.Reparent](env.drain())
	if len(reps) != 1 || reps[0].NewParent.Addr != 8 {
		t.Fatalf("expected reparent to level-2 member: %+v", reps)
	}
	if n.Table().Children.Get(7) != nil {
		t.Fatal("redirected child must not be recorded")
	}
	// A known member *farther* from the child than us must not be offered:
	// instead of a redirect cycle we refuse explicitly (zero NewParent) so
	// the child stops courting us.
	far := mkRef(idspace.FromFraction(0.9), 9, 2)
	n2, env2 := testNode(idspace.FromFraction(0.5), 2)
	n2.InstallLevel(1)
	n2.InstallBus(2, far)
	n2.HandleMessage(7, &proto.ChildReport{From: child, Degree: 2})
	got := msgsOfType[*proto.Reparent](env2.drain())
	if len(got) != 1 || !got[0].NewParent.IsZero() {
		t.Fatalf("expected an explicit refusal: %+v", got)
	}
}

func TestChildReportOutsideRegionRedirects(t *testing.T) {
	// Two level-1 members: self at 0.25 and peer at 0.75; a child at 0.9
	// belongs to the peer's cell.
	n, env := testNode(idspace.FromFraction(0.25), 1)
	n.InstallLevel(1)
	peer := mkRef(idspace.FromFraction(0.75), 8, 1)
	n.InstallBus(1, peer)
	child := mkRef(idspace.FromFraction(0.9), 7, 0)
	n.HandleMessage(7, &proto.ChildReport{From: child, Degree: 2})
	reps := msgsOfType[*proto.Reparent](env.drain())
	if len(reps) != 1 || reps[0].NewParent.Addr != 8 {
		t.Fatalf("expected redirect to peer: %+v", reps)
	}
}

func TestSplitPromotesStrongestChild(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel(1)
	// nc defaults to 4: a fifth child triggers a split.
	kids := []proto.NodeRef{
		{ID: idspace.FromFraction(0.40), Addr: 11, Score: 1000},
		{ID: idspace.FromFraction(0.45), Addr: 12, Score: 2000},
		{ID: idspace.FromFraction(0.55), Addr: 13, Score: 60000}, // strongest
		{ID: idspace.FromFraction(0.60), Addr: 14, Score: 3000},
	}
	n.InstallChildren(kids...)
	fifth := proto.NodeRef{ID: idspace.FromFraction(0.62), Addr: 15, Score: 500}
	n.HandleMessage(15, &proto.ChildReport{From: fifth, Degree: 2})
	sent := env.drain()
	grants := msgsOfType[*proto.PromoteGrant](sent)
	if len(grants) != 1 {
		t.Fatalf("expected one grant: %+v", grants)
	}
	var grantTo uint64
	for _, s := range sent {
		if _, ok := s.msg.(*proto.PromoteGrant); ok {
			grantTo = s.to
		}
	}
	if grantTo != 13 {
		t.Fatalf("grant went to %d, want strongest child 13", grantTo)
	}
	if grants[0].Level != 1 {
		t.Fatalf("grant level %d", grants[0].Level)
	}
	// Children in the promotee's cell are re-homed.
	reps := msgsOfType[*proto.Reparent](sent)
	if len(reps) == 0 {
		t.Fatal("expected reparents for moved children")
	}
	for _, r := range reps {
		if r.NewParent.Addr != 13 {
			t.Fatalf("reparent to %d, want 13", r.NewParent.Addr)
		}
	}
	if n.Stats.Splits != 1 {
		t.Fatal("split not counted")
	}
}

func TestPromoteGrantAccepted(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	parent := mkRef(idspace.FromFraction(0.4), 2, 1)
	n.InstallParent(parent)
	env.drain()
	grant := &proto.PromoteGrant{
		From:   parent,
		Level:  1,
		Region: proto.FromIDSpace(idspace.Region{Lo: idspace.FromFraction(0.45), Hi: idspace.MaxID}),
		Left:   parent,
	}
	n.HandleMessage(2, grant)
	if n.MaxLevel() != 1 {
		t.Fatalf("maxLevel %d after grant", n.MaxLevel())
	}
	sent := env.drain()
	if len(msgsOfType[*proto.BusLinkReq](sent)) == 0 {
		t.Fatal("promoted node should link into the bus")
	}
	if len(msgsOfType[*proto.ChildReport](sent)) == 0 {
		t.Fatal("promoted node should re-report to its parent")
	}
	if n.Stats.Promotions != 1 {
		t.Fatal("promotion not counted")
	}
	// A grant from a non-parent is ignored.
	n2, _ := testNode(idspace.FromFraction(0.5), 1)
	n2.HandleMessage(9, grant)
	if n2.MaxLevel() != 0 {
		t.Fatal("grant from stranger accepted")
	}
}

func TestElectionFlow(t *testing.T) {
	// Parentless node with two level-0 neighbours: election starts, and
	// with no competing claim the countdown promotes it.
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel0(mkRef(idspace.FromFraction(0.45), 2, 0), mkRef(idspace.FromFraction(0.55), 3, 0))
	env.drain()
	env.advance(n.cfg.SweepInterval + time.Millisecond) // sweep runs ensureHierarchy
	calls := msgsOfType[*proto.ElectionCall](env.drain())
	if len(calls) != 2 {
		t.Fatalf("election calls %d, want 2 (both neighbours)", len(calls))
	}
	if n.Stats.ElectionsStarted != 1 {
		t.Fatal("election not counted")
	}
	env.advance(n.cfg.ElectionMax + time.Second)
	if n.MaxLevel() != 1 {
		t.Fatalf("maxLevel %d after winning election", n.MaxLevel())
	}
	if n.Stats.ElectionsWon != 1 {
		t.Fatal("win not counted")
	}
	claims := msgsOfType[*proto.ParentClaim](env.drain())
	if len(claims) == 0 {
		t.Fatal("winner should claim its children")
	}
}

func TestParentClaimAdoptionCancelsElection(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel0(mkRef(idspace.FromFraction(0.45), 2, 0), mkRef(idspace.FromFraction(0.55), 3, 0))
	env.advance(n.cfg.SweepInterval + time.Millisecond) // start election
	env.drain()
	claimant := mkRef(idspace.FromFraction(0.48), 4, 1)
	n.HandleMessage(4, &proto.ParentClaim{From: claimant, Level: 1, Region: proto.FromIDSpace(idspace.FullRegion())})
	if p, ok := n.Table().Parent(); !ok || p.Addr != 4 {
		t.Fatal("claim not adopted")
	}
	reports := msgsOfType[*proto.ChildReport](env.drain())
	if len(reports) != 1 {
		t.Fatal("adoption should trigger a child report")
	}
	// The countdown must be dead: advancing far must not promote us.
	env.advance(time.Minute)
	if n.MaxLevel() != 0 {
		t.Fatal("election fired after adoption")
	}
}

func TestElectionCallFromParentedNodeAnswersWithClaim(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	parent := mkRef(idspace.FromFraction(0.4), 2, 1)
	n.InstallParent(parent)
	env.drain()
	n.HandleMessage(9, &proto.ElectionCall{From: mkRef(idspace.FromFraction(0.52), 9, 0), Level: 1})
	claims := msgsOfType[*proto.ParentClaim](env.drain())
	if len(claims) != 1 || claims[0].From.Addr != 2 {
		t.Fatalf("parented node should forward its parent as claim: %+v", claims)
	}
}

func TestDemotionAfterChildLoss(t *testing.T) {
	// Long EntryTTL: this test exercises the demotion countdown, not entry
	// expiry (no live peers are refreshing the installed refs).
	n, env := testNode(idspace.FromFraction(0.5), 1, func(c *Config) { c.EntryTTL = time.Hour })
	n.InstallLevel(1)
	peer := mkRef(idspace.FromFraction(0.7), 8, 1)
	n.InstallBus(1, peer)
	child := mkRef(idspace.FromFraction(0.51), 7, 0)
	n.InstallChildren(child)
	env.drain()
	// One child < 2: demotion countdown arms on the next sweep and fires.
	env.advance(n.cfg.SweepInterval + n.cfg.DemotionMax + time.Second)
	if n.MaxLevel() != 0 {
		t.Fatalf("maxLevel %d, want demoted to 0", n.MaxLevel())
	}
	sent := env.drain()
	if len(msgsOfType[*proto.Demote](sent)) == 0 {
		t.Fatal("bus neighbours not told about demotion")
	}
	reps := msgsOfType[*proto.Reparent](sent)
	if len(reps) == 0 || reps[0].NewParent.Addr != 8 {
		t.Fatalf("children should be handed to the successor: %+v", reps)
	}
	if n.Stats.Demotions != 1 {
		t.Fatal("demotion not counted")
	}
}

func TestDemotionCancelledWhenChildrenRecover(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1, func(c *Config) { c.EntryTTL = time.Hour })
	n.InstallLevel(1)
	n.InstallChildren(mkRef(idspace.FromFraction(0.51), 7, 0))
	env.advance(n.cfg.SweepInterval + time.Millisecond) // arm countdown
	// Second child arrives before expiry.
	n.HandleMessage(9, &proto.ChildReport{From: mkRef(idspace.FromFraction(0.49), 9, 0), Degree: 2})
	env.advance(n.cfg.DemotionMax + time.Second)
	if n.MaxLevel() != 1 {
		t.Fatal("demotion fired despite recovered children")
	}
}

func TestRetainUpperLevelsSkipsDemotion(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1, func(c *Config) { c.RetainUpperLevels = true })
	n.InstallLevel(2)
	env.advance(n.cfg.SweepInterval + n.cfg.DemotionMax + 2*time.Second)
	if n.MaxLevel() != 2 {
		t.Fatal("retain-upper-levels node demoted")
	}
}

func TestDemoteMessageUpdatesParent(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	parent := mkRef(idspace.FromFraction(0.4), 2, 1)
	successor := mkRef(idspace.FromFraction(0.6), 3, 1)
	n.InstallParent(parent)
	env.drain()
	n.HandleMessage(2, &proto.Demote{From: parent, Level: 1, Successor: successor})
	if len(msgsOfType[*proto.ChildReport](env.drain())) == 0 {
		t.Fatal("should court the successor with a report")
	}
	// Successor answers: it becomes the parent.
	n.HandleMessage(3, &proto.Pong{From: successor, Seq: 0})
	if p, ok := n.Table().Parent(); !ok || p.Addr != 3 {
		t.Fatal("parent not switched to successor after ack")
	}
}

func TestBusLinkReqAck(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel(2)
	other := mkRef(idspace.FromFraction(0.2), 4, 2)
	n.InstallBus(2, other)
	joiner := mkRef(idspace.FromFraction(0.7), 9, 2)
	n.HandleMessage(9, &proto.BusLinkReq{From: joiner, Level: 2})
	acks := msgsOfType[*proto.BusLinkAck](env.drain())
	if len(acks) != 1 {
		t.Fatal("no ack")
	}
	if acks[0].Left.Addr != 1 {
		t.Fatalf("joiner's left should be self: %+v", acks[0])
	}
	if n.Table().BusLevel(2).Get(9) == nil {
		t.Fatal("joiner not recorded on bus")
	}
}

func TestBusLinkAckMergesNeighbors(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel(1)
	env.drain()
	ack := &proto.BusLinkAck{
		From:  mkRef(idspace.FromFraction(0.6), 4, 1),
		Level: 1,
		Left:  mkRef(idspace.FromFraction(0.45), 5, 1),
		Right: mkRef(idspace.FromFraction(0.7), 6, 1),
	}
	n.HandleMessage(4, ack)
	bus := n.Table().BusLevel(1)
	if bus.Get(4) == nil || bus.Get(5) == nil || bus.Get(6) == nil {
		t.Fatal("ack refs not merged")
	}
}

func TestApplyEntriesPlacement(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	parent := mkRef(idspace.FromFraction(0.4), 2, 1)
	n.InstallParent(parent)
	env.drain()
	grandparent := mkRef(idspace.FromFraction(0.3), 10, 2)
	parentNbr := mkRef(idspace.FromFraction(0.8), 11, 1)
	entries := []proto.Entry{
		{Ref: grandparent, Level: 2, Flags: proto.FParent, Version: 1},
		{Ref: parentNbr, Level: 1, Flags: proto.FNeighbor, Version: 2},
	}
	n.HandleMessage(2, &proto.Pong{From: parent, Seq: 1, Entries: entries})
	if n.Table().Superiors.Get(10) == nil {
		t.Fatal("grandparent should enter the superior list")
	}
	if n.Table().Superiors.Get(11) == nil {
		t.Fatal("parent's bus neighbour should enter the superior list")
	}
}

func TestApplyEntriesLevel0Gating(t *testing.T) {
	n, _ := testNode(idspace.FromFraction(0.5), 1)
	// Fill the left side beyond the retention span.
	var refs []proto.NodeRef
	for i := 0; i < 5; i++ {
		refs = append(refs, mkRef(idspace.FromFraction(0.49-float64(i)*0.01), uint64(20+i), 0))
	}
	l := mkRef(idspace.FromFraction(0.495), 2, 0)
	refs = append(refs, l)
	n.InstallLevel0(refs...)
	// A far-away level-0 ref beyond the per-side span must not be adopted.
	far := mkRef(idspace.FromFraction(0.05), 9, 0)
	n.HandleMessage(2, &proto.Pong{From: l, Seq: 1, Entries: []proto.Entry{
		{Ref: far, Level: 0, Flags: proto.FNeighbor, Version: 1},
	}})
	if n.Table().Level0.Get(9) != nil {
		t.Fatal("distant level-0 ref adopted")
	}
	// A nearer one is adopted.
	near := mkRef(idspace.FromFraction(0.502), 10, 0)
	n.HandleMessage(2, &proto.Pong{From: l, Seq: 2, Entries: []proto.Entry{
		{Ref: near, Level: 0, Flags: proto.FNeighbor, Version: 2},
	}})
	if n.Table().Level0.Get(10) == nil {
		t.Fatal("adjacent level-0 ref not adopted")
	}
}

func TestStopCancelsTimers(t *testing.T) {
	n, env := testNode(idspace.FromFraction(0.5), 1)
	n.InstallLevel0(mkRef(idspace.FromFraction(0.45), 2, 0))
	n.Stop()
	env.drain()
	env.advance(time.Minute)
	if got := env.drain(); len(got) != 0 {
		t.Fatalf("stopped node still sent %d messages", len(got))
	}
}

func TestReparentFromStrangerIgnored(t *testing.T) {
	n, _ := testNode(idspace.FromFraction(0.5), 1)
	parent := mkRef(idspace.FromFraction(0.4), 2, 1)
	n.InstallParent(parent)
	n.HandleMessage(99, &proto.Reparent{From: mkRef(0, 99, 1), NewParent: mkRef(1, 98, 1)})
	if p, _ := n.Table().Parent(); p.Addr != 2 {
		t.Fatal("stranger moved our parent")
	}
}
