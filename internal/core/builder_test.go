package core

import (
	"math"
	"testing"

	"treep/internal/idspace"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
)

// buildNodes creates n nodes with evenly spread IDs and mid-range profiles.
func buildNodes(t *testing.T, n int, mutate ...func(*Config)) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	gen := nodeprof.NewGenerator(nodeprof.DefaultClasses(), 42)
	assigner := idspace.BalancedAssigner{}
	for i := 0; i < n; i++ {
		cfg := Defaults()
		cfg.ID = assigner.Assign(i, n, "")
		cfg.Profile = gen.Next()
		for _, m := range mutate {
			m(&cfg)
		}
		nodes[i] = NewNode(cfg, newFakeEnv(uint64(i+1)))
	}
	return nodes
}

func TestBulkBuildLevelCounts(t *testing.T) {
	nodes := buildNodes(t, 256)
	counts := BulkBuild(nodes, 6)
	if counts[0] != 256 {
		t.Fatalf("level 0 count %d", counts[0])
	}
	for lvl := 1; lvl < len(counts); lvl++ {
		if counts[lvl] >= counts[lvl-1] {
			t.Fatalf("level %d (%d) not smaller than level %d (%d)",
				lvl, counts[lvl], lvl-1, counts[lvl-1])
		}
	}
	// With nc=4 the reduction factor should be close to 4.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("level reduction ratio %v, want ~4", ratio)
	}
}

func TestBulkBuildHeightLaw(t *testing.T) {
	// §III.e: h ≈ log_c((n+1)/2). With c≈4 and n=1024 the height should be
	// about 4–6 levels.
	nodes := buildNodes(t, 1024)
	counts := BulkBuild(nodes, 8)
	h := len(counts) - 1
	predicted := math.Log(float64(1024+1)/2) / math.Log(4)
	if float64(h) < predicted-2 || float64(h) > predicted+3 {
		t.Fatalf("height %d far from predicted %.1f", h, predicted)
	}
}

func TestBulkBuildEveryNodeHasParentExceptTop(t *testing.T) {
	nodes := buildNodes(t, 128)
	counts := BulkBuild(nodes, 6)
	top := uint8(len(counts) - 1)
	for _, nd := range nodes {
		_, hasParent := nd.Table().Parent()
		if nd.MaxLevel() == top {
			continue // top-level members may be parentless
		}
		if !hasParent {
			t.Fatalf("node %v (lvl %d) has no parent", nd.ID(), nd.MaxLevel())
		}
	}
}

func TestBulkBuildParentCoversChild(t *testing.T) {
	nodes := buildNodes(t, 128)
	BulkBuild(nodes, 6)
	byAddr := map[uint64]*Node{}
	for _, nd := range nodes {
		byAddr[nd.Addr()] = nd
	}
	for _, nd := range nodes {
		p, ok := nd.Table().Parent()
		if !ok {
			continue
		}
		parent := byAddr[p.Addr]
		if parent == nil {
			t.Fatalf("parent addr %d unknown", p.Addr)
		}
		if parent.MaxLevel() < nd.MaxLevel()+1 {
			t.Fatalf("parent level %d too low for child level %d",
				parent.MaxLevel(), nd.MaxLevel())
		}
		// The child must appear in the parent's children table.
		if parent.Table().Children.Get(nd.Addr()) == nil {
			t.Fatalf("child %v missing from parent %v children table", nd.ID(), parent.ID())
		}
	}
}

func TestBulkBuildChildLoadRespectsPolicy(t *testing.T) {
	nodes := buildNodes(t, 256)
	BulkBuild(nodes, 6)
	over := 0
	for _, nd := range nodes {
		if nd.MaxLevel() == 0 {
			continue
		}
		if nd.Table().Children.Len() > nd.MaxChildren()+2 {
			over++
		}
	}
	// Midpoint tessellation can overload a few parents slightly; the live
	// protocol splits them. Tolerate a small fraction.
	if over > len(nodes)/10 {
		t.Fatalf("%d parents grossly overloaded", over)
	}
}

func TestBulkBuildLevel0Neighbors(t *testing.T) {
	nodes := buildNodes(t, 64)
	BulkBuild(nodes, 6)
	for i, nd := range nodes {
		l0 := nd.Table().Level0.Len()
		if l0 < 2 {
			t.Fatalf("node %d has only %d level-0 entries", i, l0)
		}
	}
}

func TestBulkBuildBusLinks(t *testing.T) {
	nodes := buildNodes(t, 256)
	counts := BulkBuild(nodes, 6)
	if len(counts) < 3 {
		t.Skip("tree too shallow")
	}
	for _, nd := range nodes {
		for lvl := uint8(1); lvl <= nd.MaxLevel(); lvl++ {
			bus, ok := nd.Table().Bus[lvl]
			if counts[lvl] > 1 && (!ok || bus.Len() == 0) {
				t.Fatalf("node %v member of lvl %d has no bus entries", nd.ID(), lvl)
			}
		}
	}
}

func TestBulkBuildSuperiors(t *testing.T) {
	nodes := buildNodes(t, 256)
	counts := BulkBuild(nodes, 6)
	if len(counts) < 3 {
		t.Skip("tree too shallow")
	}
	// Level-0 nodes deep in the tree should know ancestors above their
	// parent.
	withSups := 0
	for _, nd := range nodes {
		if nd.MaxLevel() == 0 && nd.Table().Superiors.Len() > 0 {
			withSups++
		}
	}
	if withSups == 0 {
		t.Fatal("no level-0 node has a superior list")
	}
}

func TestBulkBuildLookupWorksOffline(t *testing.T) {
	// Routing over bulk-built tables alone (no protocol running): every
	// origin should resolve every target within the TTL by walking tables.
	nodes := buildNodes(t, 128)
	BulkBuild(nodes, 6)
	byAddr := map[uint64]*Node{}
	for _, nd := range nodes {
		byAddr[nd.Addr()] = nd
	}
	resolve := func(origin *Node, target idspace.ID) (bool, int) {
		req := &proto.LookupRequest{Origin: origin.Ref(), Target: target, TTL: 255, Algo: proto.AlgoG}
		cur := origin
		var from uint64
		for hops := 0; hops < 256; hops++ {
			parent, hasParent := cur.Table().Parent()
			fromParent := hasParent && parent.Addr == from
			step := routing.Route(cur.Ref(), cur.Table(), req, fromParent, from, cur.Config().Routing)
			switch step.Action {
			case routing.Deliver:
				return true, hops
			case routing.NotFound, routing.Drop:
				return false, hops
			}
			from = cur.Addr()
			next := byAddr[step.Next.Addr]
			if next == nil {
				return false, hops
			}
			req.TTL--
			req.Hops++
			req.Alternates = step.Alternates
			cur = next
		}
		return false, 255
	}
	ok, fail := 0, 0
	var totalHops int
	for i := 0; i < len(nodes); i += 7 {
		for j := 3; j < len(nodes); j += 13 {
			found, hops := resolve(nodes[i], nodes[j].ID())
			if found {
				ok++
				totalHops += hops
			} else {
				fail++
			}
		}
	}
	if fail > 0 {
		t.Fatalf("steady-state lookups failed: %d ok, %d failed", ok, fail)
	}
	avg := float64(totalHops) / float64(ok)
	if avg > 12 {
		t.Fatalf("average hops %.1f too high for steady state", avg)
	}
}
