package core

import (
	"time"

	"treep/internal/idspace"
	"treep/internal/nodeprof"
	"treep/internal/routing"
)

// Config parameterises one TreeP node. Zero-valued fields are filled from
// Defaults by NewNode.
type Config struct {
	// ID is the node's coordinate in the 1-D space (§III: "the ID provides
	// a spatial coordinates in the system").
	ID idspace.ID
	// Profile describes the node's hardware and load; it drives election
	// and demotion countdowns and the capacity-based child policy.
	Profile nodeprof.Profile
	// ChildPolicy computes the maximum number of children nc (fixed 4 or
	// capacity-driven in the paper's two evaluation cases).
	ChildPolicy nodeprof.ChildPolicy
	// MaxHeight caps the hierarchy height h (6 in the paper's evaluation);
	// elections stop promoting at this level.
	MaxHeight uint8
	// Routing selects the distance model and lookup parameters.
	Routing routing.Params

	// KeepAlive is the interval between Pings on active connections.
	KeepAlive time.Duration
	// EntryTTL expires routing entries that have seen no active
	// communication (§III.c); it should cover a few missed keep-alives.
	EntryTTL time.Duration
	// SweepInterval is how often the expiry sweep runs.
	SweepInterval time.Duration
	// ProbeInterval paces the ring self-healing probes (repair.go): each
	// occupied side verifies its nearest neighbour's adjacency this often,
	// and a side that stays empty past EntryTTL retries its void probe at
	// the same cadence.
	ProbeInterval time.Duration
	// ChildReport is the child→parent heartbeat interval.
	ChildReport time.Duration
	// ElectionMin/Max bound the capability countdown of §III.b.
	ElectionMin, ElectionMax time.Duration
	// DemotionMin/Max bound the reverse countdown for under-filled parents.
	DemotionMin, DemotionMax time.Duration
	// LookupTimeout bounds how long an origin waits for a reply.
	LookupTimeout time.Duration
	// MaxTTL is the lookup hop budget ("IF TTL > 255 THEN discard").
	MaxTTL uint8

	// ImmediateUpdates pushes routing deltas to active peers as soon as
	// they happen, the paper's current implementation ("the update is
	// exchanged immediately"); false delays them to the next keep-alive
	// piggyback (ABL-2 compares the two).
	ImmediateUpdates bool
	// RetainUpperLevels keeps nodes at levels > 1 in place even with no
	// children (the §VI future-work strategy, ABL-3).
	RetainUpperLevels bool

	// Balancer turns on per-node load measurement: the node tracks its
	// observed message rate (EWMA, updated each sweep, normalised by
	// LoadRef) and exposes it through LoadEstimate. The estimate is
	// observability only — it deliberately does not feed the advertised
	// score, elections, demotions, or child capacity (see updateLoad
	// for the measured reasons). Traffic-layer balancing — the DHT's
	// hot-key fan-out cache — is what acts on load. Off by default:
	// every pre-balancer experiment stays bit-identical.
	Balancer bool
	// LoadRef is the message rate (msgs/sec, in and out combined) that
	// counts as full network load for the balancer; rates are clamped at
	// 1.0 above it. Zero means DefaultLoadRef.
	LoadRef float64

	// Anchors are well-known rendezvous addresses (the paper's §III
	// "anchor system"): contacted only when the node is isolated or cannot
	// find a parent through the overlay, never used for routing. In a real
	// deployment these are bootstrap hosts.
	Anchors []uint64
}

// Defaults returns the baseline configuration used by the experiments.
// Times are virtual-time friendly: keep-alive 2 s, entries live for three
// missed keep-alives.
func Defaults() Config {
	return Config{
		ChildPolicy:      nodeprof.FixedPolicy{NC: 4},
		MaxHeight:        6,
		KeepAlive:        2 * time.Second,
		EntryTTL:         6 * time.Second,
		SweepInterval:    time.Second,
		ProbeInterval:    5 * time.Second,
		ChildReport:      2 * time.Second,
		ElectionMin:      200 * time.Millisecond,
		ElectionMax:      2 * time.Second,
		DemotionMin:      5 * time.Second,
		DemotionMax:      30 * time.Second,
		LookupTimeout:    10 * time.Second,
		MaxTTL:           255,
		ImmediateUpdates: true,
	}
}

// withDefaults fills zero fields from Defaults.
func (c Config) withDefaults() Config {
	d := Defaults()
	if c.ChildPolicy == nil {
		c.ChildPolicy = d.ChildPolicy
	}
	if c.MaxHeight == 0 {
		c.MaxHeight = d.MaxHeight
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = d.KeepAlive
	}
	if c.EntryTTL == 0 {
		c.EntryTTL = d.EntryTTL
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = d.SweepInterval
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.ChildReport == 0 {
		c.ChildReport = d.ChildReport
	}
	if c.ElectionMin == 0 {
		c.ElectionMin = d.ElectionMin
	}
	if c.ElectionMax == 0 {
		c.ElectionMax = d.ElectionMax
	}
	if c.DemotionMin == 0 {
		c.DemotionMin = d.DemotionMin
	}
	if c.DemotionMax == 0 {
		c.DemotionMax = d.DemotionMax
	}
	if c.LookupTimeout == 0 {
		c.LookupTimeout = d.LookupTimeout
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = d.MaxTTL
	}
	if c.Routing.Height == 0 {
		c.Routing.Height = c.MaxHeight
	}
	if c.Routing.Model == nil {
		c.Routing.Model = routing.PaperModel{Height: c.MaxHeight}
	}
	if c.LoadRef == 0 {
		c.LoadRef = DefaultLoadRef
	}
	// Balancer deliberately does NOT enable Routing.PreferHighScore:
	// measured runs showed next-hop diversion — even bounded to near-tie
	// candidates — stretching mean lookup paths 15–30% and multiplying
	// dead-end walks, for no per-node load relief the fan-out cache does
	// not already deliver. The bias remains an opt-in routing parameter.
	return c
}

// DefaultLoadRef is the message rate treated as full network load when
// the balancer is on. The steady-state maintenance rate of a node with
// a handful of active connections is ~5–10 msgs/sec under the default
// timers, so the default keeps healthy nodes well below 0.1 load while
// a hot-key owner taking hundreds of requests a second saturates.
const DefaultLoadRef = 200.0
