package core

import (
	"time"

	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/routing"
	"treep/internal/rtable"
)

// Ring self-healing and partition merge.
//
// The passive repair machinery (structural advertisements piggybacked on
// keep-alives, plus the post-sweep re-greet) closes most churn gaps, but
// not all of them: at ~10% of seeds under sustained churn two ID-adjacent
// survivors end up mutually unaware, with no common live peer whose
// two-per-side advertisement window covers both. Nothing in the passive
// protocol ever closes such a gap — coverage is probabilistic. The
// probes below make repair an enforced invariant:
//
//   - Verification probe: every ProbeInterval a node asks its nearest
//     direct-fresh neighbour on each side, "do you know anyone between
//     us?" The probe ring-walks toward the void (ProbeStep), the gap
//     shrinking strictly at every hop, until the true far edge answers
//     with a RingProbeAck and a mutual greeting follows.
//   - Void probe: a side with no direct-fresh neighbour at all past
//     EntryTTL launches the same walk through the best same-side
//     candidate anywhere in the table (bus links, children, superiors —
//     the hierarchy crosses stretches where level-0 knowledge died).
//     No candidate on that side means this node is the legitimate edge
//     of the line-shaped ID space (§III.a) and no probe fires.
//
// Probes cannot merge two overlays that formed independently: no node on
// a probe's walk knows any member of the other ring inside the void it
// probes. That takes one bridge link and the zip cascade: whenever a node
// gains a NEW direct level-0 contact on a side where it already held a
// different fresh nearest neighbour, it introduces the two to each other
// (MergeIntro both ways). Each introduction that names a peer not already
// direct-fresh at its receiver triggers a greeting, which creates a new
// direct contact on the far ring, which fires the trigger again one step
// further along — zipping two interleaved rings a1<b1<a2<b2<… together in
// O(n) introductions. The cascade halts exactly where the rings are
// already merged, because introductions naming direct-fresh peers are
// dropped.

// probeTTL bounds a probe walk. The walked gap shrinks strictly at every
// hop, so this is a safety net against stale-table cycles, not a
// tuning knob; churn gaps span a handful of nodes.
const probeTTL = 32

// farewellWindow (in entry TTLs) bounds how long after the last direct
// exchange an expiring level-0 entry still earns a farewell greeting
// (maintenance.go, sweepTick). Long enough to cover hearsay extending an
// entry's LastSeen past its last direct contact; short enough that
// once-direct far entries stop costing datagrams after a few TTLs.
const farewellWindow = 4

// ringDegreeFloor is the fresh level-0 degree below which a node
// suspects it is stranded and greets an anchor (sweepTick). A healthy
// node holds its pinged adjacents plus a halo of advertised neighbours,
// above the floor; small stranded segments hold only each other (larger
// ones are caught by the void branch at their outward-facing ends).
const ringDegreeFloor = 3

// farewellCheck runs just before the sweep, while the evidence still
// exists: a level-0 entry about to expire that (a) was recently in
// DIRECT contact and (b) has no surviving fresh entry between us — it
// was this node's effective nearest on its side — is either dead (the
// common case; the greeting vanishes) or alive with a table that rotted
// under churn. In the second case this node may be the peer's LAST
// holder: once every holder expires it, nobody ever contacts it again,
// the overlay closes the ring over its head, and the orphan — or a
// whole drifted segment clinging to a false far adjacency — becomes
// permanently unreachable. One greeting resurrects the link, and the
// zip introductions re-chain the rest.
//
// Both conditions are load-bearing dampers. Hearsay-only entries
// (LastDirect never advanced) age out and are re-learned from
// advertisements as a matter of course; greeting each would re-create
// the link just to watch it expire again, a permanent hello cycle
// across the whole table. And the effective-nearest condition is what
// keeps the cycle from re-arming itself: a farewell exchange makes the
// rescued link direct, so without it every second-and-further
// neighbour would re-qualify at its next expiry, forever.
// It returns the number of surviving (non-expiring) level-0 entries —
// the node's fresh ring degree, which sweepTick uses to detect
// stranded-segment membership.
func (n *Node) farewellCheck(now time.Duration) int {
	ttl := n.cfg.EntryTTL
	fresh := 0
	// Nearest surviving (non-expiring) entry per side.
	var survLeft, survRight proto.NodeRef
	for _, r := range n.table.Level0.Refs() {
		e := n.table.Level0.Get(r.Addr)
		if now-e.LastSeen > ttl {
			continue
		}
		fresh++
		if r.ID < n.cfg.ID && (survLeft.IsZero() || r.ID > survLeft.ID) {
			survLeft = r
		} else if r.ID > n.cfg.ID && (survRight.IsZero() || r.ID < survRight.ID) {
			survRight = r
		}
	}
	for _, r := range n.table.Level0.Refs() {
		e := n.table.Level0.Get(r.Addr)
		if now-e.LastSeen <= ttl || now-e.LastDirect > farewellWindow*ttl {
			continue
		}
		inner := (r.ID < n.cfg.ID && (survLeft.IsZero() || r.ID > survLeft.ID)) ||
			(r.ID > n.cfg.ID && (survRight.IsZero() || r.ID < survRight.ID))
		if inner {
			n.sendHello(r.Addr)
		}
	}
	return fresh
}

// anchorHello greets a random rendezvous anchor at a slow cadence. It is
// the stranded-segment escape hatch: a cluster of nodes the rest of the
// overlay has expired — the ring closed over their heads — keeps each
// other fresh, so the empty-table rejoin never fires, and their repair
// probes either dead-end at the segment's own false "space edge" (the
// void holds no candidate) or bounce between members. No local evidence
// distinguishes a stranded segment from the genuine edge of the line
// space; the anchor is the rendezvous that can. One greeting re-opens a
// delta exchange with the main component, after which the probes and
// zip introductions re-chain the whole segment. Genuine edge nodes pay
// one datagram per entry TTL, the steady-state cost of not being
// strandable.
func (n *Node) anchorHello(now time.Duration) {
	if len(n.cfg.Anchors) == 0 || now-n.lastAnchorHello < n.cfg.EntryTTL {
		return
	}
	n.lastAnchorHello = now
	a := n.cfg.Anchors[n.env.Rand().Intn(len(n.cfg.Anchors))]
	if a != n.Addr() {
		n.sendHello(a)
	}
}

// probeTick drives one round of ring self-healing; called from sweepTick.
func (n *Node) probeTick() {
	now := n.env.Now()
	left, right := n.table.Level0.NeighborsFresh(n.cfg.ID, now, n.cfg.EntryTTL)
	n.probeSide(0, left, now)
	n.probeSide(1, right, now)
}

func (n *Node) probeSide(side int, nearest proto.NodeRef, now time.Duration) {
	left := side == 0
	if !nearest.IsZero() {
		// Occupied side: verify adjacency at the probe cadence. The
		// neighbour we see may not be the survivor actually adjacent to
		// us — the churn hole is exactly that state.
		n.sideEmptySince[side] = 0
		if now-n.lastProbe[side] < n.cfg.ProbeInterval {
			return
		}
		n.lastProbe[side] = now
		n.sendRingProbe(nearest.Addr, left)
		return
	}
	if n.sideEmptySince[side] == 0 {
		n.sideEmptySince[side] = now
		return
	}
	if now-n.sideEmptySince[side] < n.cfg.EntryTTL || now-n.lastProbe[side] < n.cfg.ProbeInterval {
		return
	}
	// The side has been empty past its TTL: hunt for the far edge through
	// the best same-side candidate anywhere in the table.
	var cand proto.NodeRef
	var ok bool
	if left {
		if n.cfg.ID == 0 {
			return
		}
		cand, ok = n.table.NearestInRange(0, n.cfg.ID-1, n.cfg.ID, n.Addr())
	} else {
		if n.cfg.ID == idspace.MaxID {
			return
		}
		cand, ok = n.table.NearestInRange(n.cfg.ID+1, idspace.MaxID, n.cfg.ID, n.Addr())
	}
	if !ok {
		// Nobody known on that side at all: either the legitimate space
		// edge, or a stranded segment's false one — ask an anchor.
		n.anchorHello(now)
		return
	}
	n.lastProbe[side] = now
	n.sendRingProbe(cand.Addr, left)
}

func (n *Node) sendRingProbe(to uint64, left bool) {
	n.Stats.ProbesSent++
	p := proto.AcquireRingProbe()
	p.From, p.Origin, p.Left, p.TTL = n.Ref(), n.Ref(), left, probeTTL
	n.send(to, p)
}

func (n *Node) handleRingProbe(from uint64, m *proto.RingProbe) {
	if m.Origin.IsZero() || m.Origin.Addr == n.Addr() {
		return
	}
	now := n.env.Now()
	age := time.Duration(m.AgeDs) * 100 * time.Millisecond
	if age >= n.cfg.EntryTTL {
		return // knowledge of the origin drained in flight
	}
	validated := now - age
	next, edge := routing.ProbeStep(n.table, n.Ref(), m.Origin, m.Left)
	switch {
	case edge:
		// This node is the origin's missing neighbour — unless the pair is
		// already mutually linked: a verification probe between two healthy
		// adjacent nodes ends here every round, and answering it would be
		// steady-state noise. An ack is owed only when this side does not
		// hold the origin fresh.
		if e := n.table.Level0.Get(m.Origin.Addr); e != nil && e.DirectFresh(now, n.cfg.EntryTTL) {
			return
		}
		// File the origin (hearsay at the shipped age — the ack round
		// makes it direct) and introduce ourselves; the origin answers
		// with a greeting, making the link mutual.
		n.Stats.ProbeEdges++
		n.table.Level0.Upsert(m.Origin, proto.FNeighbor, validated, n.table.NextVersion(), rtable.Hearsay)
		ack := proto.AcquireRingProbeAck()
		ack.From, ack.Left, ack.Hops = n.Ref(), m.Left, probeTTL-m.TTL
		n.send(m.Origin.Addr, ack)
	case !next.IsZero():
		if m.TTL == 0 {
			return
		}
		n.Stats.ProbesForwarded++
		fwd := proto.AcquireRingProbe()
		fwd.From, fwd.Origin, fwd.Left, fwd.TTL = n.Ref(), m.Origin, m.Left, m.TTL-1
		fwd.AgeDs = proto.AgeFrom(now, validated)
		n.send(next.Addr, fwd)
	}
}

func (n *Node) handleRingProbeAck(from uint64, m *proto.RingProbeAck) {
	if m.From.Addr != from {
		return
	}
	side := 1
	if m.Left {
		side = 0
	}
	n.sideEmptySince[side] = 0
	// The far edge spoke to us directly: file it (firing the zip trigger
	// if it is new) and greet back so the edge's hearsay entry for us
	// turns direct too.
	n.ringUpsert(m.From)
	n.sendHello(from)
}

// ringUpsert files a direct level-0 contact, replacing the plain upsert
// in the keep-alive and greeting handlers. When the contact is brand-new
// (not direct-fresh before this message — curNew, stamped in
// HandleMessage), lands on a side where a different fresh neighbour is
// already held, AND sits strictly BEYOND that neighbour, the two are
// introduced to each other: one step of the zip cascade that merges
// independently formed rings.
//
// Two conditions damp the cascade to linear; both are load-bearing.
// (1) Beyond the nearest: a contact arriving BETWEEN self and the known
// nearest refines our own adjacency and needs no introduction; only one
// landing past the nearest extends the merge frontier outward. (2)
// Within the span horizon: the contact must land among this node's
// level0Span nearest on its side. Distant direct contacts are routine —
// bus peers, parents and children ping across the whole space — and
// introducing those starts an O(N) march of pointless greetings through
// the neighbourhood, each greeting a far pair that re-fires the trigger
// at both ends: a self-sustaining storm (measured at ~4000 intros/s
// across a 300-node overlay) that saturates every level-0 table. A
// foreign RING, by contrast, interleaves with ours, so its members land
// inside the horizon where the trigger stays armed.
func (n *Node) ringUpsert(r proto.NodeRef) {
	now := n.env.Now()
	var prev proto.NodeRef
	if n.curNew && r.Addr == n.curAddr && r.ID != n.cfg.ID &&
		n.table.Level0.SideRank(n.cfg.ID, r.ID) < level0Span {
		left, right := n.table.Level0.NeighborsFresh(n.cfg.ID, now, n.cfg.EntryTTL)
		if r.ID < n.cfg.ID && !left.IsZero() && r.ID < left.ID {
			prev = left
		} else if r.ID > n.cfg.ID && !right.IsZero() && r.ID > right.ID {
			prev = right
		}
	}
	n.table.Level0.Upsert(r, proto.FNeighbor, now, n.table.NextVersion(), rtable.Direct)
	if !prev.IsZero() && prev.Addr != r.Addr {
		n.sendMergeIntro(prev.Addr, r, now)
		n.sendMergeIntro(r.Addr, prev, now)
	}
	if n.curNew && r.Addr == n.curAddr {
		// First-contact handshake ("when two nodes communicate for the
		// first time they exchange information about their resources and
		// state"): ping back without waiting out the keep-alive, deferred
		// (node.go firstPing) until the current handler has composed its
		// reply. During a partition merge this is what moves the frontier
		// at network speed — each new cross-ring link immediately elicits
		// the other ring's neighbourhood delta, whose entries seed the
		// next link — rather than one hop per keep-alive round.
		// Ring-local contacts only: far first contacts (bus relinks,
		// hierarchy traffic) already exchange deltas on their own cadence,
		// and pinging every one of them measurably inflates steady-state
		// message and allocation volume.
		// The ring-change hook shares the guard: a far contact does not
		// alter ring adjacency, so there is nothing for the DHT to
		// reconcile.
		if n.table.Level0.SideRank(n.cfg.ID, r.ID) < level0Span {
			n.firstPing = r.Addr
			n.ringChanged()
		}
	}
}

func (n *Node) sendMergeIntro(to uint64, peer proto.NodeRef, now time.Duration) {
	var age uint16
	if e := n.table.Level0.Get(peer.Addr); e != nil {
		age = proto.AgeFrom(now, e.LastDirect)
	}
	n.Stats.MergeIntrosSent++
	m := proto.AcquireMergeIntro()
	m.From, m.Peer, m.AgeDs = n.Ref(), peer, age
	n.send(to, m)
}

func (n *Node) handleMergeIntro(from uint64, m *proto.MergeIntro) {
	if m.Peer.IsZero() || m.Peer.Addr == n.Addr() {
		return
	}
	now := n.env.Now()
	age := time.Duration(m.AgeDs) * 100 * time.Millisecond
	if age >= n.cfg.EntryTTL {
		return
	}
	if e := n.table.Level0.Get(m.Peer.Addr); e != nil && e.DirectFresh(now, n.cfg.EntryTTL) {
		return // already merged here: the cascade stops
	}
	// Greet the named peer — and file NOTHING yet. The greeting exchange
	// makes the link direct on both ends and re-fires the new-contact
	// trigger there, advancing the zip frontier; a table entry appears
	// only when the peer answers. Filing the introduction as hearsay
	// would be faster by half a round-trip, but an introducer can
	// honestly name a peer that died inside the freshness window, and
	// routing trusts every table entry — after a correlated failure
	// burst those pre-seeded ghosts black-hole greedy lookups from
	// tables that never had the dead node in the first place.
	n.Stats.MergeGreets++
	n.sendHello(m.Peer.Addr)
}
