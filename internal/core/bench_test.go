package core

import (
	"math/rand"
	"runtime/debug"
	"testing"
	"time"

	"treep/internal/idspace"
	"treep/internal/nodeprof"
	"treep/internal/proto"
)

// benchEnv is a minimal Env for protocol micro-benchmarks: sends are
// dropped after recycling pooled payloads (emulating the network's
// end-of-delivery hook), timers are inert. This isolates per-message
// protocol cost from both the simulator kernel and the network model —
// the number BenchmarkProtocolStep reports is what one inbound keep-alive
// costs the node itself.
type benchEnv struct {
	addr uint64
	now  time.Duration
	rng  *rand.Rand
	sent uint64
}

func (e *benchEnv) Addr() uint64       { return e.addr }
func (e *benchEnv) Now() time.Duration { return e.now }
func (e *benchEnv) Rand() *rand.Rand   { return e.rng }

func (e *benchEnv) Send(to uint64, msg proto.Message) {
	e.sent++
	if r, ok := msg.(proto.Recyclable); ok {
		r.Recycle()
	}
}

type benchTimer struct{}

func (benchTimer) Cancel() bool { return false }

func (e *benchEnv) SetTimer(d time.Duration, fn func()) Timer    { return benchTimer{} }
func (e *benchEnv) SetPeriodic(d time.Duration, fn func()) Timer { return benchTimer{} }

// benchCluster bulk-builds n steady-state nodes on benchEnvs and returns
// them in ID order together with a realistic inbound Ping for the target
// node (composed by its ring neighbour, delta plus structural entries).
func benchCluster(n int) (nodes []*Node, target *Node, from uint64, ping *proto.Ping) {
	gen := nodeprof.NewGenerator(nodeprof.DefaultClasses(), 42)
	assigner := idspace.BalancedAssigner{}
	nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		cfg := Defaults()
		cfg.ID = assigner.Assign(i, n, "")
		cfg.Profile = gen.Next()
		nodes[i] = NewNode(cfg, &benchEnv{addr: uint64(i + 1), rng: rand.New(rand.NewSource(int64(i + 1)))})
	}
	BulkBuild(nodes, Defaults().MaxHeight)

	target = nodes[n/2]
	nbr := nodes[n/2-1]
	ping = &proto.Ping{From: nbr.Ref(), Seq: 1}
	ping.Entries = nbr.composeUpdateInto(nil, target.Addr(), false)
	return nodes, target, nbr.Addr(), ping
}

// BenchmarkProtocolStep measures one inbound keep-alive Ping through
// HandleMessage — touch, delta application, membership notes, and the
// composed Pong reply — with no kernel or network in the loop. This is
// the per-message protocol cost that must stay flat as N grows.
func BenchmarkProtocolStep(b *testing.B) {
	_, target, from, ping := benchCluster(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target.HandleMessage(from, ping)
	}
	b.ReportMetric(float64(target.Stats.MsgsOut)/float64(b.N), "replies/op")
}

// BenchmarkProtocolKeepalive measures one outbound keep-alive tick: the
// active-peer walk and one composed update per active connection.
func BenchmarkProtocolKeepalive(b *testing.B) {
	_, target, _, _ := benchCluster(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target.keepaliveTick()
	}
}

// TestProtocolSteadyStateAllocs pins the pooled protocol paths at zero
// steady-state allocations: handling an inbound keep-alive (including the
// pooled Pong reply) and running an outbound keep-alive tick must not
// allocate once buffers are warm.
func TestProtocolSteadyStateAllocs(t *testing.T) {
	// Pooled paths cannot be alloc-free under the race detector: race-mode
	// sync.Pool deliberately drops a quarter of all Puts on the floor
	// (sync/pool.go), so every few operations a Get misses and refills.
	// That is an instrumentation artifact, not a leak — skip rather than
	// flake.
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under -race; pooled paths cannot be alloc-free")
	}
	// Disable the collector for the duration of the test. AllocsPerRun
	// counts mallocs, and a GC cycle mid-run empties the message pools'
	// victim caches (sync.Pool retains objects for only one cycle), so a
	// badly timed collection makes a genuinely pooled path report
	// refill allocations.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	_, target, from, ping := benchCluster(512)
	// Warm every scratch buffer and pool.
	for i := 0; i < 16; i++ {
		target.HandleMessage(from, ping)
		target.keepaliveTick()
	}
	if allocs := testing.AllocsPerRun(200, func() {
		target.HandleMessage(from, ping)
	}); allocs != 0 {
		t.Fatalf("inbound keep-alive allocated %.1f times per message, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		target.keepaliveTick()
	}); allocs != 0 {
		t.Fatalf("keep-alive tick allocated %.1f times per tick, want 0", allocs)
	}
}
