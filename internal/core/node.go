package core

import (
	"fmt"
	"sort"
	"time"

	"treep/internal/idspace"
	"treep/internal/nodeprof"
	"treep/internal/proto"
	"treep/internal/routing"
	"treep/internal/rtable"
)

// Node is one TreeP peer: the protocol state machine of §III. All methods
// must be called from the node's single logical event loop (see package
// comment).
type Node struct {
	cfg Config
	env Env

	// maxLevel is the node's top hierarchy level; the node is a member of
	// every level 0..maxLevel.
	maxLevel uint8
	// score caches the capability score of the profile.
	score float64
	// maxChildren is nc under the configured child policy.
	maxChildren int

	table *rtable.Table

	// peers is the per-peer protocol state (delta-sync cursor, fresh level
	// claim, courtship refusal), one table looked up once per inbound
	// message instead of one map per concern. curAddr/curPeer cache the
	// state of the message currently being handled, so the per-entry
	// claimCap checks on the apply path cost no extra lookups for the
	// sender itself.
	peers   map[uint64]*peerState
	curAddr uint64
	curPeer *peerState
	// curNew marks the in-flight message's sender as NOT direct-fresh in
	// Level0 before this message arrived. It must be computed up front in
	// HandleMessage: the Touch below advances LastDirect, so by the time a
	// handler runs, the entry always looks fresh. ringUpsert reads it to
	// detect genuinely new ring contacts — the trigger for the merge-zip
	// introductions (repair.go).
	curNew bool
	// refusals counts peers with a live refusal, so the candidate search
	// skips per-candidate lookups entirely in the common all-clear state.
	refusals int
	pingSeq  uint32

	// Election/demotion countdowns (§III.b). One of each at a time.
	electionTimer Timer
	demotionTimer Timer

	// courting is the address of a prospective parent that has been sent a
	// child report but has not yet answered; the slot is only installed on
	// the candidate's direct reply, so a dead candidate costs one short
	// probation instead of a full entry TTL.
	courting   uint64
	courtTimer Timer

	// lastSplit rate-limits promotion grants (see maybeSplit).
	lastSplit time.Duration

	// Balancer load tracking (Config.Balancer): loadEWMA smooths the
	// message rate observed between sweeps, normalised by LoadRef;
	// lastLoadMsgs/lastLoadAt are the previous sweep's counter snapshot;
	// loadSweeps counts observations (see loadWarmupSweeps).
	loadEWMA     nodeprof.EWMA
	lastLoadMsgs uint64
	lastLoadAt   time.Duration
	loadSweeps   int

	// Periodic timers.
	keepaliveTimer Timer
	sweepTimer     Timer
	reportTimer    Timer

	started bool

	// Scratch buffers for the per-message composition hot path. The node
	// runs on a single logical event loop, and none of these survive the
	// call frame that fills them, so reuse is safe; together they keep the
	// keep-alive/delta path allocation-free except for the entry slice
	// that escapes into each outgoing message.
	scratchEntries []proto.Entry
	scratchDelta   []proto.Entry
	scratchRefs    []proto.NodeRef
	scratchPeers   []proto.NodeRef
	scratchMembers []proto.NodeRef
	scratchIDs     []idspace.ID
	scratchLevels  []uint8
	routeScratch   routing.Scratch

	// Origin-side lookup bookkeeping.
	pending   map[uint64]*pendingLookup
	nextReqID uint64

	// Stats counts protocol events; the experiment harness reads it.
	Stats Stats

	// extension receives messages the core protocol does not handle
	// (DHT, discovery); it reports whether it consumed the message.
	extension func(from uint64, msg proto.Message) bool

	// Ring self-healing state (repair.go): per-side probe pacing and
	// empty-slot age tracking. Index 0 is the left side (IDs below ours).
	lastProbe       [2]time.Duration
	sideEmptySince  [2]time.Duration
	lastAnchorHello time.Duration

	// firstPing defers the first-contact greeting ping (ringUpsert) to
	// the end of the in-flight HandleMessage: sent inline it would ship
	// the routing delta before the handler composes its reply, leaving
	// the reply — the exchange the peer is actually waiting on — empty.
	firstPing uint64

	// ringHook fires when the node gains a new direct level-0 contact
	// (see SetRingChangeHook).
	ringHook func()

	// recentPeers rings the addresses this node most recently heard from
	// for the first time (or again after an expiry). It is the first
	// rejoin fallback: the static anchors can all die under sustained
	// churn, and a node whose table has fully drained would otherwise
	// retry dead rendezvous addresses forever (maintenance.go,
	// contactAnchor). recentScan rotates the fallback target.
	recentPeers [recentPeerSlots]uint64
	recentIdx   int
	recentScan  int

	// bootCache is the second, longer-memory rejoin fallback. The recent
	// ring is recency-biased: a node at the centre of a dying
	// neighbourhood spends its last healthy minutes talking only to peers
	// that are about to die with it, so by the time its table drains the
	// whole ring can point at corpses (and so can every static anchor).
	// The cache instead keeps one slot per address-hash bucket, touched
	// on every first contact over the node's lifetime — hierarchy and bus
	// traffic cross the entire ID space, so the buckets hold a spread of
	// addresses uniform over history, of which a decent fraction
	// survives any churn wave. Hash-slotting rather than reservoir
	// sampling keeps the choice deterministic and free of RNG draws.
	bootCache [bootCacheSlots]uint64
	bootScan  int
}

// recentPeerSlots sizes the recent-peers ring. Sixteen distinct senders
// span well past one churn wave, so at least one slot points at a
// survivor with overwhelming probability.
const recentPeerSlots = 16

// bootCacheSlots sizes the bootstrap cache. Thirty-two buckets over a
// lifetime of first contacts keeps several live addresses through even a
// churn wave that replaces half the overlay.
const bootCacheSlots = 32

// bootSlot buckets an address (Fibonacci hash, top bits).
func bootSlot(addr uint64) int {
	return int(addr * 0x9E3779B97F4A7C15 >> 59)
}

// SetRingChangeHook registers a callback fired whenever the node gains a
// new direct level-0 contact — a repaired gap, a merged partition, a
// fresh neighbour. Layered services use it to reconcile state that
// depends on ring adjacency: the DHT re-runs ownership handoff and
// replica placement immediately instead of waiting out its maintenance
// interval. One hook per node; services compose by chaining.
func (n *Node) SetRingChangeHook(fn func()) { n.ringHook = fn }

func (n *Node) ringChanged() {
	if n.ringHook != nil {
		n.ringHook()
	}
}

// SetExtension installs a handler for non-core messages (layered services
// such as the DHT). One extension per node; services compose by chaining.
func (n *Node) SetExtension(fn func(from uint64, msg proto.Message) bool) { n.extension = fn }

// Send exposes best-effort sending to layered services.
func (n *Node) Send(to uint64, msg proto.Message) { n.send(to, msg) }

// SetTimer exposes the runtime timer to layered services.
func (n *Node) SetTimer(d time.Duration, fn func()) Timer { return n.env.SetTimer(d, fn) }

// SetPeriodic exposes the runtime's recurring timer to layered services.
func (n *Node) SetPeriodic(d time.Duration, fn func()) Timer { return n.env.SetPeriodic(d, fn) }

// Now exposes the runtime clock to layered services.
func (n *Node) Now() time.Duration { return n.env.Now() }

// peerState is everything the node tracks about one peer outside the
// routing table:
//
//   - lastSent: the table version already shipped to the peer — the
//     "exchange only out-of-date data" delta cursor of §III.d;
//   - the peer's fresh self-claimed level. Hearsay cannot raise a peer's
//     believed membership above its own fresh claim: without this, stale
//     bus refs circulate in keep-alive advertisements between third
//     parties faster than direct contact corrects them, and a demoted
//     peer stays a phantom member of its old level forever;
//   - a refusal mark for peers that explicitly declined to parent us
//     (usually because our knowledge of their level was stale), so the
//     candidate search skips them for a TTL instead of re-courting in a
//     livelock.
type peerState struct {
	lastSent   uint32
	lastSentAt time.Duration
	claimLevel uint8
	hasClaim   bool
	claimAt    time.Duration
	refused    bool
	refusedAt  time.Duration
}

// peerFor returns the peer-state entry for addr, creating it on first use.
func (n *Node) peerFor(addr uint64) *peerState {
	if addr == n.curAddr && n.curPeer != nil {
		return n.curPeer
	}
	ps, ok := n.peers[addr]
	if !ok {
		ps = &peerState{}
		n.peers[addr] = ps
	}
	return ps
}

// markRefused records an explicit parenting refusal from addr.
func (n *Node) markRefused(addr uint64) {
	ps := n.peerFor(addr)
	if !ps.refused {
		n.refusals++
	}
	ps.refused = true
	ps.refusedAt = n.env.Now()
}

// clearRefusal drops an expired refusal mark.
func (n *Node) clearRefusal(ps *peerState) {
	if ps.refused {
		ps.refused = false
		n.refusals--
	}
}

type pendingLookup struct {
	cb      func(LookupResult)
	timer   Timer
	algo    proto.Algo
	started time.Duration
}

// NewNode constructs a node; it does not touch the network until Start or
// Join is called.
func NewNode(cfg Config, env Env) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:     cfg,
		env:     env,
		score:   cfg.Profile.Score(),
		table:   rtable.New(),
		peers:   map[uint64]*peerState{},
		pending: map[uint64]*pendingLookup{},
	}
	n.maxChildren = cfg.ChildPolicy.MaxChildren(cfg.Profile)
	if n.maxChildren < 2 {
		n.maxChildren = 2
	}
	return n
}

// Ref returns the node's current wire identity.
func (n *Node) Ref() proto.NodeRef {
	return proto.NodeRef{
		ID:       n.cfg.ID,
		Addr:     n.env.Addr(),
		MaxLevel: n.maxLevel,
		Score:    proto.QuantizeScore(n.score),
	}
}

// ID returns the node's coordinate.
func (n *Node) ID() idspace.ID { return n.cfg.ID }

// Addr returns the node's transport address.
func (n *Node) Addr() uint64 { return n.env.Addr() }

// MaxLevel returns the node's top hierarchy level.
func (n *Node) MaxLevel() uint8 { return n.maxLevel }

// Score returns the capability score.
func (n *Node) Score() float64 { return n.score }

// MaxChildren returns nc for this node under the configured policy.
func (n *Node) MaxChildren() int { return n.maxChildren }

// LoadEstimate returns the balancer's smoothed load estimate in [0, 1]
// (zero when the balancer is off or has not observed a sweep yet).
func (n *Node) LoadEstimate() float64 { return n.loadEWMA.Value() }

// updateLoad folds the message traffic since the last sweep into the
// load estimate. Called once per sweep when the balancer is on.
//
// The estimate deliberately does NOT feed back into the advertised
// score, child capacity, or election/demotion countdowns. Every such
// coupling was tried and measured under a Zipf read workload, and every
// one reshaped the hierarchy in response to traffic: load-discounted
// scores made maybeSplit promote storm-idle (poorly connected) children
// and stretched mean lookup paths 15–30%; load-biased elections built
// topologies that looped ~1% of lookups to TTL death; load-shrunk child
// capacity evicted children and deepened the tree. Capacity (the static
// profile) decides who holds hierarchy roles; load is redistributed at
// the traffic layer instead — the DHT's hot-key fan-out cache — which
// cuts tail load 3×+ without moving a single hierarchy role.
func (n *Node) updateLoad(now time.Duration) {
	dt := now - n.lastLoadAt
	if dt <= 0 {
		return
	}
	total := n.Stats.MsgsIn + n.Stats.MsgsOut
	rate := float64(total-n.lastLoadMsgs) / dt.Seconds()
	n.lastLoadMsgs, n.lastLoadAt = total, now
	n.loadEWMA.Observe(rate / n.cfg.LoadRef)
	n.loadSweeps++
}

// Table exposes the routing table for analysis (AN-2 measures its size
// against the §III.e formulas). Callers must not mutate it.
func (n *Node) Table() *rtable.Table { return n.table }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("node(%s lvl%d)", n.cfg.ID, n.maxLevel)
}

// Start arms the periodic maintenance timers. Idempotent.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	n.lastLoadMsgs = n.Stats.MsgsIn + n.Stats.MsgsOut
	n.lastLoadAt = n.env.Now()
	n.armKeepalive()
	n.armSweep()
	n.armReport()
}

// Stop cancels all timers (node shutdown). In-flight messages addressed to
// the node are the runtime's concern.
func (n *Node) Stop() {
	n.started = false
	for _, t := range []Timer{n.keepaliveTimer, n.sweepTimer, n.reportTimer, n.electionTimer, n.demotionTimer, n.courtTimer} {
		if t != nil {
			t.Cancel()
		}
	}
	n.electionTimer, n.demotionTimer, n.courtTimer = nil, nil, nil
	n.courting = 0
	for id, p := range n.pending {
		if p.timer != nil {
			p.timer.Cancel()
		}
		delete(n.pending, id)
	}
}

// Join bootstraps the node into an existing overlay through any live peer
// (§III.a: "the joining peers are assigned to the lowest [level]").
func (n *Node) Join(bootstrap uint64) {
	n.Start()
	n.send(bootstrap, &proto.JoinRequest{From: n.Ref()})
}

// Depart is the graceful shutdown: it announces the departure to every
// peer holding a load-bearing reference to this node — active-connection
// neighbours, children, the parent — so they repair immediately instead of
// waiting out a failure-detection round, then stops the node. The
// announcement is best-effort datagrams; peers that miss it fall back to
// the TTL path exactly as for a crash.
func (n *Node) Depart() {
	ref := n.Ref()
	msg := proto.Leave{From: ref}
	// Snapshot the recipient set first: activePeers and Refs share scratch
	// buffers that must not be re-entered while sending.
	targets := make([]uint64, 0, 16)
	add := func(addr uint64) {
		if addr == 0 || addr == n.Addr() {
			return
		}
		for _, a := range targets {
			if a == addr {
				return
			}
		}
		targets = append(targets, addr)
	}
	for _, p := range n.activePeers() {
		add(p.Addr)
	}
	for _, c := range n.table.Children.Refs() {
		add(c.Addr)
	}
	if p, ok := n.table.Parent(); ok {
		add(p.Addr)
	}
	for _, a := range targets {
		n.Stats.LeavesSent++
		n.send(a, &msg)
	}
	n.Stop()
}

// handleLeave reacts to a peer's graceful departure: the sender is purged
// from every table on the spot (its information is first-hand and final),
// and the structures it held together are repaired immediately.
func (n *Node) handleLeave(from uint64, m *proto.Leave) {
	wasChild := n.table.Children.Get(from) != nil
	removed, parentLost := n.table.RemoveEverywhere(from)
	// Forget it as a rejoin fallback too: a departed node may keep
	// answering datagrams while its process drains, and one JoinRequest
	// from the dark-table path would re-file it as a live peer.
	for i := range n.recentPeers {
		if n.recentPeers[i] == from {
			n.recentPeers[i] = 0
		}
	}
	if n.bootCache[bootSlot(from)] == from {
		n.bootCache[bootSlot(from)] = 0
	}
	if ps, ok := n.peers[from]; ok {
		n.clearRefusal(ps)
		delete(n.peers, from)
	}
	if n.courting == from {
		n.courting = 0
		if n.courtTimer != nil {
			n.courtTimer.Cancel()
			n.courtTimer = nil
		}
	}
	if !removed && !parentLost {
		return
	}
	n.Stats.LeavesRecv++
	// Mirror the sweep-time repairs, without waiting for the next sweep:
	// re-greet the surviving ring neighbours so the gap closes, re-adopt or
	// elect if the parent left, and start the demotion countdown if a child
	// did.
	l, r := n.table.Level0.Neighbors(n.cfg.ID)
	for _, nb := range [2]proto.NodeRef{l, r} {
		if !nb.IsZero() {
			n.sendHello(nb.Addr)
		}
	}
	if parentLost {
		n.adoptOrElect()
	}
	if wasChild {
		n.maybeStartDemotion()
	}
	n.ensureHierarchy()
}

// HandleMessage dispatches one received datagram. Unknown message types are
// ignored (wire compatibility).
func (n *Node) HandleMessage(from uint64, msg proto.Message) {
	n.Stats.MsgsIn++
	// One peer-state lookup per inbound message; everything downstream
	// (claim checks, delta cursor) reads the cached pointer.
	n.curAddr, n.curPeer = from, n.peerFor(from)
	defer func() {
		n.curAddr, n.curPeer, n.curNew = 0, nil, false
		if p := n.firstPing; p != 0 {
			n.firstPing = 0
			n.sendPing(p)
		}
	}()
	// Record whether the sender was a fresh direct ring contact BEFORE the
	// Touch below refreshes its timestamps; handlers cannot recover this
	// afterwards, and ringUpsert keys the merge-zip trigger on it.
	if e := n.table.Level0.Get(from); e == nil || !e.DirectFresh(n.env.Now(), n.cfg.EntryTTL) {
		n.curNew = true
		if last := (n.recentIdx + recentPeerSlots - 1) % recentPeerSlots; n.recentPeers[last] != from {
			n.recentPeers[n.recentIdx] = from
			n.recentIdx = (n.recentIdx + 1) % recentPeerSlots
		}
		n.bootCache[bootSlot(from)] = from
	}
	// Any authenticated-by-arrival communication refreshes the sender's
	// timestamps (§III.c).
	n.table.Touch(from, n.env.Now())
	// The sender's self-identification is first-hand: bus membership it no
	// longer claims is stale knowledge, dropped on the spot and barred
	// from hearsay re-introduction while the claim stays fresh.
	if ref, ok := senderRef(msg); ok && ref.Addr == from {
		n.curPeer.claimLevel, n.curPeer.hasClaim, n.curPeer.claimAt = ref.MaxLevel, true, n.env.Now()
		n.table.DowngradeLevels(from, ref.MaxLevel)
	}
	// A courted parent proves itself alive with any direct message —
	// except one that explicitly declines the role (Reparent, Demote) or
	// leaves altogether, which its own handler processes.
	if n.courting == from {
		switch msg.(type) {
		case *proto.Reparent, *proto.Demote, *proto.Leave:
		default:
			if ref, ok := senderRef(msg); ok && ref.Addr == from {
				n.confirmCourtship(from, ref)
			}
		}
	}

	switch m := msg.(type) {
	case *proto.Hello:
		n.handleHello(from, m)
	case *proto.Ping:
		n.handlePing(from, m)
	case *proto.Pong:
		n.handlePong(from, m)
	case *proto.JoinRequest:
		n.handleJoinRequest(from, m)
	case *proto.JoinRedirect:
		n.handleJoinRedirect(from, m)
	case *proto.JoinAccept:
		n.handleJoinAccept(from, m)
	case *proto.ElectionCall:
		n.handleElectionCall(from, m)
	case *proto.ParentClaim:
		n.handleParentClaim(from, m)
	case *proto.ChildReport:
		n.handleChildReport(from, m)
	case *proto.PromoteGrant:
		n.handlePromoteGrant(from, m)
	case *proto.Demote:
		n.handleDemote(from, m)
	case *proto.Reparent:
		n.handleReparent(from, m)
	case *proto.BusLinkReq:
		n.handleBusLinkReq(from, m)
	case *proto.BusLinkAck:
		n.handleBusLinkAck(from, m)
	case *proto.LookupRequest:
		n.handleLookupRequest(from, m)
	case *proto.LookupReply:
		n.handleLookupReply(from, m)
	case *proto.Leave:
		n.handleLeave(from, m)
	case *proto.RingProbe:
		n.handleRingProbe(from, m)
	case *proto.RingProbeAck:
		n.handleRingProbeAck(from, m)
	case *proto.MergeIntro:
		n.handleMergeIntro(from, m)
	default:
		if n.extension != nil {
			n.extension(from, msg)
		}
	}
}

// senderRef extracts the self-identification a message carries about its
// sender (not origin fields that name third parties).
func senderRef(msg proto.Message) (proto.NodeRef, bool) {
	switch m := msg.(type) {
	case *proto.Hello:
		return m.From, true
	case *proto.Ping:
		return m.From, true
	case *proto.Pong:
		return m.From, true
	case *proto.JoinRequest:
		return m.From, true
	case *proto.JoinRedirect:
		return m.From, true
	case *proto.JoinAccept:
		return m.From, true
	case *proto.ElectionCall:
		return m.From, true
	case *proto.ParentClaim:
		return m.From, true
	case *proto.ChildReport:
		return m.From, true
	case *proto.PromoteGrant:
		return m.From, true
	case *proto.Demote:
		return m.From, true
	case *proto.Reparent:
		return m.From, true
	case *proto.BusLinkReq:
		return m.From, true
	case *proto.BusLinkAck:
		return m.From, true
	case *proto.LookupReply:
		return m.From, true
	case *proto.Leave:
		return m.From, true
	case *proto.RingProbe:
		return m.From, true
	case *proto.RingProbeAck:
		return m.From, true
	case *proto.MergeIntro:
		return m.From, true
	}
	return proto.NodeRef{}, false
}

// send transmits a message and counts it.
func (n *Node) send(to uint64, msg proto.Message) {
	if to == 0 || to == n.Addr() {
		return
	}
	n.Stats.MsgsOut++
	n.env.Send(to, msg)
}

// --- derived hierarchy state ------------------------------------------------

// degreeAt returns the node's degree at the given level: the number of
// same-level connections (level-0 table below, bus table above). §III.b
// triggers elections at degree ≥ 2.
func (n *Node) degreeAt(level uint8) int {
	if level == 0 {
		return n.table.Level0.Len()
	}
	if s, ok := n.table.Bus[level]; ok {
		return s.Len()
	}
	return 0
}

// busMembersWithSelf returns the node's view of the level members,
// including itself, sorted by ID. The slice is a shared scratch buffer:
// callers must not retain it across another call into the node.
func (n *Node) busMembersWithSelf(level uint8) []proto.NodeRef {
	var refs []proto.NodeRef
	if level == 0 {
		refs = n.table.Level0.Refs()
	} else if s, ok := n.table.Bus[level]; ok {
		refs = s.Refs()
	}
	out := append(n.scratchMembers[:0], refs...)
	out = append(out, n.Ref())
	// refs is already ID-sorted; a single insertion places self.
	for i := len(out) - 1; i > 0 && out[i-1].ID > out[i].ID; i-- {
		out[i-1], out[i] = out[i], out[i-1]
	}
	n.scratchMembers = out
	return out
}

// regionAt derives the node's tessellation cell at the given level from its
// known bus members: cell boundaries fall midway between adjacent members
// (§III.a). For level 0 or an unknown level the cell degenerates to the
// node's own coordinate neighbourhood.
func (n *Node) regionAt(level uint8) idspace.Region {
	members := n.busMembersWithSelf(level)
	ids := n.scratchIDs[:0]
	for _, m := range members {
		ids = append(ids, m.ID)
	}
	n.scratchIDs = ids
	idx := sort.Search(len(ids), func(i int) bool { return ids[i] >= n.cfg.ID })
	// Self is in the list by construction; handle duplicate IDs by scanning.
	for idx < len(ids) && members[idx].Addr != n.Addr() && ids[idx] == n.cfg.ID {
		idx++
	}
	if idx >= len(ids) || ids[idx] != n.cfg.ID {
		return idspace.FullRegion()
	}
	return idspace.FullRegion().CellOf(ids, idx)
}

// covers reports whether the node's tessellation at the given level
// contains the coordinate.
func (n *Node) covers(x idspace.ID, level uint8) bool {
	if level > n.maxLevel {
		return false
	}
	return n.regionAt(level).Contains(x)
}

// busNeighbors returns the node's direct left/right neighbours at a level
// (either may be zero at the edges).
func (n *Node) busNeighbors(level uint8) (left, right proto.NodeRef) {
	if level == 0 {
		return n.table.Level0.Neighbors(n.cfg.ID)
	}
	if s, ok := n.table.Bus[level]; ok {
		return s.Neighbors(n.cfg.ID)
	}
	return proto.NodeRef{}, proto.NodeRef{}
}

// activePeers returns the distinct addresses of the node's actively
// maintained connections: level-0 direct neighbours and per-level bus
// neighbours (§III.a "all the edges of the hierarchy (called active
// connections) are actively maintained"; parent and children links have
// their own report mechanism).
func (n *Node) activePeers() []proto.NodeRef {
	out := n.scratchPeers[:0]
	self := n.Addr()
	l, r := n.table.Level0.Neighbors(n.cfg.ID)
	out = appendPeerDedup(out, l, self)
	out = appendPeerDedup(out, r, self)
	for lvl := uint8(1); lvl <= n.maxLevel; lvl++ {
		bl, br := n.busNeighbors(lvl)
		out = appendPeerDedup(out, bl, self)
		out = appendPeerDedup(out, br, self)
	}
	n.scratchPeers = out
	return out
}

// appendPeerDedup appends r unless it is zero, self, or already present.
// Linear scan: the active-connection set is two refs per occupied level.
func appendPeerDedup(out []proto.NodeRef, r proto.NodeRef, self uint64) []proto.NodeRef {
	if r.IsZero() || r.Addr == self {
		return out
	}
	for i := range out {
		if out[i].Addr == r.Addr {
			return out
		}
	}
	return append(out, r)
}

// bestKnownMember returns the nearest known member of the given level
// (searching bus knowledge, superiors and the parent slot), excluding the
// node itself, together with the time that knowledge was last validated —
// callers relaying the ref to third parties must ship that age along. Ties
// break on (ID, Addr) so behaviour is deterministic.
func (n *Node) bestKnownMember(level uint8, near idspace.ID) (proto.NodeRef, time.Duration, bool) {
	var best proto.NodeRef
	var bestSeen time.Duration
	var bestD uint64
	found := false
	now := n.env.Now()
	consider := func(r proto.NodeRef, seen time.Duration) {
		if r.IsZero() || r.Addr == n.Addr() || r.MaxLevel < level {
			return
		}
		if n.refusals > 0 {
			if ps, ok := n.peers[r.Addr]; ok && ps.refused {
				if now-ps.refusedAt < n.cfg.EntryTTL {
					return
				}
				n.clearRefusal(ps)
			}
		}
		d := idspace.Dist(r.ID, near)
		if !found || d < bestD ||
			(d == bestD && (r.ID < best.ID || (r.ID == best.ID && r.Addr < best.Addr))) {
			best, bestSeen, bestD, found = r, seen, d, true
		}
	}
	considerSet := func(s *rtable.Set) {
		for _, r := range s.Refs() {
			seen := time.Duration(0)
			if e := s.Get(r.Addr); e != nil {
				seen = e.LastSeen
			}
			consider(r, seen)
		}
	}
	for lvl := level; lvl <= n.cfg.MaxHeight; lvl++ {
		if s, ok := n.table.Bus[lvl]; ok {
			considerSet(s)
		}
	}
	considerSet(n.table.Superiors)
	if p, ok := n.table.Parent(); ok {
		seen := time.Duration(0)
		if pe, ok2 := n.table.ParentEntry(); ok2 {
			seen = pe.LastSeen
		}
		consider(p, seen)
	}
	considerSet(n.table.Level0)
	return best, bestSeen, found
}

// structuralEntries lists the node's own load-bearing relationships —
// parent, level-0 neighbours, top-level bus neighbours, children — for
// inclusion in every keep-alive. Unlike version-gated deltas these repeat
// while the relationship holds, so the replicated knowledge that §III.c
// relies on for robustness (superior lists, neighbours' children, indirect
// neighbours) stays fresh at its consumers exactly as long as the provider
// is alive.
//
// Only relations with fresh *direct* contact are advertised: a node may
// vouch for peers it has actually heard from, never for hearsay. Without
// this rule two survivors can keep a dead neighbour alive forever by
// echoing each other's advertisements. Superiors are the one exception —
// they are vouched for by the parent chain, which is acyclic, so staleness
// there is bounded by depth × TTL rather than unbounded.
func (n *Node) structuralEntries(out []proto.Entry) []proto.Entry {
	now := n.env.Now()
	ttl := n.cfg.EntryTTL
	v := n.table.Version()
	if p, ok := n.table.Parent(); ok && !n.table.ParentExpired(now, ttl) {
		pe, _ := n.table.ParentEntry()
		out = append(out, proto.Entry{Ref: p, Level: p.MaxLevel, Flags: proto.FParent, Version: v,
			AgeDs: proto.AgeFrom(now, pe.LastDirect)})
	}
	age := func(s *rtable.Set, addr uint64) uint16 {
		if e := s.Get(addr); e != nil {
			return proto.AgeFrom(now, e.LastDirect)
		}
		return 0
	}
	// Two direct-fresh ring contacts per side: the wider advertisement is
	// what lets survivors bridge multi-node gaps after failures (§III.c
	// allows l0 up to n-1; we keep it small but not minimal).
	nbrs := n.table.Level0.AppendNeighborsFreshK(n.scratchRefs[:0], n.cfg.ID, now, ttl, 2, true)
	nbrs = n.table.Level0.AppendNeighborsFreshK(nbrs, n.cfg.ID, now, ttl, 2, false)
	n.scratchRefs = nbrs
	for _, nb := range nbrs {
		out = append(out, proto.Entry{Ref: nb, Level: 0, Flags: proto.FNeighbor, Version: v,
			AgeDs: age(n.table.Level0, nb.Addr)})
	}
	for lvl := uint8(1); lvl <= n.maxLevel; lvl++ {
		if s, ok := n.table.Bus[lvl]; ok {
			bl, br := s.NeighborsFresh(n.cfg.ID, now, ttl)
			for _, nb := range [2]proto.NodeRef{bl, br} {
				if !nb.IsZero() {
					out = append(out, proto.Entry{Ref: nb, Level: lvl, Flags: proto.FNeighbor, Version: v,
						AgeDs: age(s, nb.Addr)})
				}
			}
		}
	}
	fresh := n.table.Children.AppendFreshRefs(n.scratchRefs[:0], now, ttl)
	n.scratchRefs = fresh
	for _, c := range fresh {
		out = append(out, proto.Entry{Ref: c, Level: c.MaxLevel, Flags: proto.FChild, Version: v,
			AgeDs: age(n.table.Children, c.Addr)})
	}
	return out
}

// superiorEntries lists the node's superior list for shipment to its
// children (their ancestors, Figure 2). Shipped only on the child-report
// ack: no other peer applies them, and spreading them wide would let stale
// upper-level refs circulate.
func (n *Node) superiorEntries(out []proto.Entry) []proto.Entry {
	now := n.env.Now()
	v := n.table.Version()
	for _, s := range n.table.Superiors.Refs() {
		var ds uint16
		if e := n.table.Superiors.Get(s.Addr); e != nil {
			ds = proto.AgeFrom(now, e.LastSeen)
		}
		out = append(out, proto.Entry{Ref: s, Level: s.MaxLevel, Flags: proto.FSuperior, Version: v, AgeDs: ds})
	}
	return out
}

// composeUpdateInto merges the version-gated delta for a peer with the
// always-shipped structural entries (deduplicated by address+flags, delta
// first), appending into out — normally a pooled message's recycled entry
// buffer, which makes the keep-alive path allocation-free in steady
// state. forChild additionally ships the superior list.
func (n *Node) composeUpdateInto(out []proto.Entry, peer uint64, forChild bool) []proto.Entry {
	ps := n.peerFor(peer)
	delta := n.table.AppendDelta(n.scratchDelta[:0], ps.lastSent, n.env.Now())
	n.scratchDelta = delta
	ps.lastSent = n.table.Version()
	ps.lastSentAt = n.env.Now()
	structural := n.structuralEntries(n.scratchEntries[:0])
	if forChild {
		structural = n.superiorEntries(structural)
	}
	n.scratchEntries = structural
	for _, e := range delta {
		out = appendEntryDedup(out, e)
	}
	for _, e := range structural {
		out = appendEntryDedup(out, e)
	}
	if len(out) > proto.MaxKeepAliveEntries {
		// Wire-safety clamp: a keep-alive must fit proto.MaxDatagram on
		// the real-socket plane. §III.e bounds tables to dozens of
		// entries, so this never fires in practice; dropped entries
		// simply ride a later piggyback.
		out = out[:proto.MaxKeepAliveEntries]
	}
	return out
}

// appendEntryDedup appends e unless an entry with the same (address,
// flags) is already present. Linear scan: updates are a few dozen entries
// at most (§III.e bounds the table, the delta is the changed subset), and
// a map here costs an allocation per outgoing message.
func appendEntryDedup(out []proto.Entry, e proto.Entry) []proto.Entry {
	for i := range out {
		if out[i].Ref.Addr == e.Ref.Addr && out[i].Flags == e.Flags {
			return out
		}
	}
	return append(out, e)
}
