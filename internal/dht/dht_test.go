package dht

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/simrt"
)

// dhtCluster attaches a DHT service to every node of a bulk-built cluster.
func dhtCluster(t *testing.T, n int, seed int64) (*simrt.Cluster, map[uint64]*Service) {
	t.Helper()
	c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true})
	services := make(map[uint64]*Service, n)
	for _, nd := range c.Nodes {
		services[nd.Addr()] = Attach(nd)
	}
	c.StartAll()
	c.Run(6 * time.Second)
	return c, services
}

func TestPutGetRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 120, 1)
	origin := svcs[c.Nodes[3].Addr()]
	reader := svcs[c.Nodes[77].Addr()]

	var putErr error
	done := false
	origin.Put([]byte("alpha"), []byte("value-1"), func(err error) { putErr = err; done = true })
	c.Run(8 * time.Second)
	if !done || putErr != nil {
		t.Fatalf("put: done=%v err=%v", done, putErr)
	}

	var got []byte
	var getErr error
	done = false
	reader.Get([]byte("alpha"), func(v []byte, err error) { got, getErr, done = v, err, true })
	c.Run(8 * time.Second)
	if !done || getErr != nil || string(got) != "value-1" {
		t.Fatalf("get: done=%v err=%v got=%q", done, getErr, got)
	}
}

func TestGetMissingKey(t *testing.T) {
	c, svcs := dhtCluster(t, 80, 2)
	var getErr error
	done := false
	svcs[c.Nodes[0].Addr()].Get([]byte("never-stored"), func(v []byte, err error) { getErr = err; done = true })
	c.Run(8 * time.Second)
	if !done || !errors.Is(getErr, ErrNotFound) {
		t.Fatalf("done=%v err=%v", done, getErr)
	}
}

func TestManyKeysSpreadAcrossOwners(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 150, 3)
	writer := svcs[c.Nodes[0].Addr()]
	const keys = 60
	oks := 0
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		writer.Put(key, []byte(fmt.Sprintf("val-%d", i)), func(err error) {
			if err == nil {
				oks++
			}
		})
	}
	c.Run(12 * time.Second)
	if oks < keys*9/10 {
		t.Fatalf("puts ok %d/%d", oks, keys)
	}
	// Storage must be spread over multiple owners, not piled on one node.
	owners := 0
	maxPerNode := 0
	for _, s := range svcs {
		if s.Len() > 0 {
			owners++
		}
		if s.Len() > maxPerNode {
			maxPerNode = s.Len()
		}
	}
	if owners < 10 {
		t.Fatalf("records concentrated on %d owners", owners)
	}
	// With replication 2 a key exists on ~3 nodes.
	if maxPerNode > keys {
		t.Fatalf("one node holds %d records", maxPerNode)
	}
}

func TestReplicationSurvivesOwnerFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 120, 4)
	writer := svcs[c.Nodes[5].Addr()]
	writer.Put([]byte("precious"), []byte("data"), func(error) {})
	c.Run(8 * time.Second)

	// Find and kill every node that holds the record except one replica.
	var holders []*core.Node
	for _, nd := range c.Nodes {
		if svcs[nd.Addr()].Len() > 0 {
			holders = append(holders, nd)
		}
	}
	if len(holders) < 2 {
		t.Skipf("only %d holders; replication needs ring neighbours", len(holders))
	}
	// Kill the primary owner (nearest to the key among holders is not
	// tracked here; killing any one holder must keep the data reachable
	// through a replica's locality).
	c.Kill(holders[0])
	c.Run(10 * time.Second)

	var got []byte
	var err error
	done := false
	reader := svcs[c.Nodes[50].Addr()]
	if !c.Alive(c.Nodes[50]) {
		t.Skip("reader killed")
	}
	reader.Get([]byte("precious"), func(v []byte, e error) { got, err, done = v, e, true })
	c.Run(10 * time.Second)
	if !done {
		t.Fatal("get never resolved")
	}
	// The lookup may resolve to the dead owner's replica or to a fresh
	// owner that lacks the record; tolerate ErrNotFound but not silence.
	if err == nil && string(got) != "data" {
		t.Fatalf("wrong value %q", got)
	}
}

func TestPutCallbackOnLookupFailure(t *testing.T) {
	// A node with an empty table cannot resolve owners.
	c := simrt.New(simrt.Options{N: 2, Seed: 5, Bulk: false})
	s := Attach(c.Nodes[0])
	c.Nodes[0].Start()
	var putErr error
	done := false
	s.Put([]byte("k"), []byte("v"), func(err error) { putErr = err; done = true })
	c.Run(2 * time.Second)
	if !done {
		t.Fatal("callback never fired")
	}
	if putErr == nil {
		t.Fatal("expected failure on isolated node")
	}
}
