package dht

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/simrt"
)

// dhtCluster attaches a DHT service to every node of a bulk-built cluster.
func dhtCluster(t *testing.T, n int, seed int64) (*simrt.Cluster, map[uint64]*Service) {
	t.Helper()
	c := simrt.New(simrt.Options{N: n, Seed: seed, Bulk: true})
	services := make(map[uint64]*Service, n)
	for _, nd := range c.Nodes {
		services[nd.Addr()] = Attach(nd)
	}
	c.StartAll()
	c.Run(6 * time.Second)
	return c, services
}

// keyOwnedBy searches for a raw key whose hash is nearest to want's ID
// among all cluster nodes (deterministic, for tests that need to steer
// ownership).
func keyOwnedBy(t *testing.T, c *simrt.Cluster, want *core.Node) []byte {
	t.Helper()
	for i := 0; i < 100000; i++ {
		key := []byte(fmt.Sprintf("steered-%d", i))
		h := idspace.HashKey(key)
		best := c.Nodes[0]
		bestD := idspace.Dist(best.ID(), h)
		for _, nd := range c.Nodes[1:] {
			if d := idspace.Dist(nd.ID(), h); d < bestD {
				best, bestD = nd, d
			}
		}
		if best == want {
			return key
		}
	}
	t.Fatal("no key found owned by target node")
	return nil
}

func TestPutGetRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 120, 1)
	origin := svcs[c.Nodes[3].Addr()]
	reader := svcs[c.Nodes[77].Addr()]

	var putErr error
	done := false
	origin.Put([]byte("alpha"), []byte("value-1"), func(err error) { putErr = err; done = true })
	c.Run(8 * time.Second)
	if !done || putErr != nil {
		t.Fatalf("put: done=%v err=%v", done, putErr)
	}

	var got []byte
	var getErr error
	done = false
	reader.Get([]byte("alpha"), func(v []byte, err error) { got, getErr, done = v, err, true })
	c.Run(8 * time.Second)
	if !done || getErr != nil || string(got) != "value-1" {
		t.Fatalf("get: done=%v err=%v got=%q", done, getErr, got)
	}
}

func TestGetMissingKey(t *testing.T) {
	c, svcs := dhtCluster(t, 80, 2)
	var getErr error
	done := false
	svcs[c.Nodes[0].Addr()].Get([]byte("never-stored"), func(v []byte, err error) { getErr = err; done = true })
	c.Run(8 * time.Second)
	if !done || !errors.Is(getErr, ErrNotFound) {
		t.Fatalf("done=%v err=%v", done, getErr)
	}
}

func TestVersionsIncreaseAcrossPuts(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 60, 3)
	w := svcs[c.Nodes[5].Addr()]
	key := []byte("counter")

	for i, want := range []string{"one", "two", "three"} {
		done := false
		w.Put(key, []byte(want), func(err error) {
			if err != nil {
				t.Errorf("put %d: %v", i, err)
			}
			done = true
		})
		c.Run(6 * time.Second)
		if !done {
			t.Fatalf("put %d never resolved", i)
		}
	}
	var rec Record
	done := false
	svcs[c.Nodes[40].Addr()].GetRecord(key, func(r Record, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
		}
		rec, done = r, true
	})
	c.Run(6 * time.Second)
	if !done || string(rec.Value) != "three" {
		t.Fatalf("read %q (done=%v)", rec.Value, done)
	}
	if rec.Version < 3 {
		t.Fatalf("version %d after 3 puts", rec.Version)
	}
}

func TestPutIfConflict(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 60, 4)
	w := svcs[c.Nodes[2].Addr()]
	key := []byte("cas-key")

	var v1 uint64
	done := false
	w.PutIf(key, []byte("first"), AnyVersion, func(v uint64, err error) {
		if err != nil {
			t.Errorf("initial cas: %v", err)
		}
		v1, done = v, true
	})
	c.Run(6 * time.Second)
	if !done || v1 == 0 {
		t.Fatalf("initial cas: done=%v v=%d", done, v1)
	}

	// A writer with a stale base must get ErrConflict, not silently win.
	done = false
	var conflictErr error
	w.PutIf(key, []byte("stale"), AnyVersion, func(_ uint64, err error) { conflictErr = err; done = true })
	c.Run(6 * time.Second)
	if !done || !errors.Is(conflictErr, ErrConflict) {
		t.Fatalf("stale cas: done=%v err=%v", done, conflictErr)
	}

	// The correct base succeeds and bumps the version.
	done = false
	var v2 uint64
	w.PutIf(key, []byte("second"), v1, func(v uint64, err error) {
		if err != nil {
			t.Errorf("cas with base: %v", err)
		}
		v2, done = v, true
	})
	c.Run(6 * time.Second)
	if !done || v2 <= v1 {
		t.Fatalf("cas with base: done=%v v=%d (was %d)", done, v2, v1)
	}

	var got []byte
	done = false
	svcs[c.Nodes[30].Addr()].Get(key, func(v []byte, err error) { got, done = v, true })
	c.Run(6 * time.Second)
	if !done || string(got) != "second" {
		t.Fatalf("read %q", got)
	}
}

func TestManyKeysSpreadAcrossOwners(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 150, 5)
	writer := svcs[c.Nodes[0].Addr()]
	const keys = 60
	oks := 0
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		writer.Put(key, []byte(fmt.Sprintf("val-%d", i)), func(err error) {
			if err == nil {
				oks++
			}
		})
	}
	c.Run(12 * time.Second)
	if oks < keys*9/10 {
		t.Fatalf("puts ok %d/%d", oks, keys)
	}
	// Storage must be spread over multiple owners, not piled on one node.
	owners := 0
	maxPerNode := 0
	for _, s := range svcs {
		if s.Len() > 0 {
			owners++
		}
		if s.Len() > maxPerNode {
			maxPerNode = s.Len()
		}
	}
	if owners < 10 {
		t.Fatalf("records concentrated on %d owners", owners)
	}
	if maxPerNode > keys {
		t.Fatalf("one node holds %d records", maxPerNode)
	}
}

func TestReplicationSurvivesOwnerFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 120, 6)
	owner := c.Nodes[33]
	key := keyOwnedBy(t, c, owner)

	writer := svcs[c.Nodes[5].Addr()]
	done := false
	writer.Put(key, []byte("data"), func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		done = true
	})
	c.Run(8 * time.Second)
	if !done {
		t.Fatal("put never resolved")
	}
	if _, ok := svcs[owner.Addr()].Local(key); !ok {
		t.Fatal("owner does not hold the key it owns")
	}

	// Kill the owner: the record must stay readable — the new owner heals
	// from a replica (read-repair) or maintenance has re-homed it already.
	c.Kill(owner)
	c.Run(10 * time.Second)

	var got []byte
	var err error
	done = false
	svcs[c.Nodes[50].Addr()].Get(key, func(v []byte, e error) { got, err, done = v, e, true })
	c.Run(10 * time.Second)
	if !done {
		t.Fatal("get never resolved")
	}
	if err != nil || string(got) != "data" {
		t.Fatalf("record lost after owner failure: err=%v got=%q", err, got)
	}
}

func TestHandoffToRejoiningCloserNode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c, svcs := dhtCluster(t, 100, 7)
	owner := c.Nodes[42]
	key := keyOwnedBy(t, c, owner)

	// Write the record while the rightful owner is dead: someone else
	// accepts it.
	c.Kill(owner)
	c.Run(8 * time.Second)
	done := false
	svcs[c.Nodes[3].Addr()].Put(key, []byte("migrant"), func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		done = true
	})
	c.Run(8 * time.Second)
	if !done {
		t.Fatal("put never resolved")
	}
	if _, ok := svcs[owner.Addr()].Local(key); ok {
		t.Fatal("dead owner holds the record")
	}

	// The closer node rejoins: ownership handoff must migrate the record
	// to it without any new write.
	c.Revive(owner)
	alive := c.AliveNodes()
	owner.Join(alive[0].Addr())
	c.Run(20 * time.Second)

	if rec, ok := svcs[owner.Addr()].Local(key); !ok || string(rec.Value) != "migrant" {
		t.Fatalf("record did not migrate to the rejoined closer node (ok=%v)", ok)
	}
}

func TestReadRepairWithoutMaintenance(t *testing.T) {
	if testing.Short() {
		t.Skip("slow simulation; skipped with -short")
	}
	c := simrt.New(simrt.Options{N: 120, Seed: 8, Bulk: true})
	svcs := make(map[uint64]*Service, 120)
	for _, nd := range c.Nodes {
		s := Attach(nd)
		// Disarm periodic maintenance so only the read path can heal.
		s.SetMaintainInterval(time.Hour)
		svcs[nd.Addr()] = s
	}
	c.StartAll()
	c.Run(6 * time.Second)

	owner := c.Nodes[17]
	key := keyOwnedBy(t, c, owner)
	done := false
	svcs[c.Nodes[2].Addr()].Put(key, []byte("fragile"), func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
		done = true
	})
	c.Run(8 * time.Second)
	if !done {
		t.Fatal("put never resolved")
	}

	c.Kill(owner)
	c.Run(8 * time.Second) // let the overlay repair the ring, not the data

	var got []byte
	var err error
	done = false
	svcs[c.Nodes[90].Addr()].Get(key, func(v []byte, e error) { got, err, done = v, e, true })
	c.Run(10 * time.Second)
	if !done {
		t.Fatal("get never resolved")
	}
	if err != nil || string(got) != "fragile" {
		t.Fatalf("read-repair failed: err=%v got=%q", err, got)
	}
}

func TestPutCallbackOnLookupFailure(t *testing.T) {
	// A node with an empty table cannot resolve owners: the put must fail
	// (never claim local ownership of a key the overlay would resolve
	// elsewhere) and the callback must fire exactly once.
	c := simrt.New(simrt.Options{N: 2, Seed: 9, Bulk: false})
	s := Attach(c.Nodes[0])
	c.Nodes[0].Start()
	var putErr error
	done := false
	s.Put([]byte("k"), []byte("v"), func(err error) { putErr = err; done = true })
	c.Run(8 * time.Second)
	if !done {
		t.Fatal("callback never fired")
	}
	if putErr == nil {
		t.Fatal("expected failure on isolated node")
	}
}

// TestStoreRetryReplaysAck covers the lost-ack retry path: the service
// plane re-sends a store with the same request id, and the owner must
// replay the recorded outcome instead of re-applying — a committed
// conditional store retried against its own bumped version would
// otherwise answer a spurious conflict.
func TestStoreRetryReplaysAck(t *testing.T) {
	c := simrt.New(simrt.Options{N: 2, Seed: 11, Bulk: false})
	s := Attach(c.Nodes[0])
	k := idspace.ID(99)

	var acks []*proto.DHTStoreAck
	store := func() {
		s.handleStore(42, &proto.DHTStore{From: proto.NodeRef{Addr: 42}, ReqID: 7,
			Key: k, Value: []byte("v"), Cond: true, Base: AnyVersion},
			func(resp proto.SvcResponse) { acks = append(acks, resp.(*proto.DHTStoreAck)) })
	}
	store()
	store() // the retry: same requester, same request id
	if len(acks) != 2 {
		t.Fatalf("%d acks", len(acks))
	}
	if acks[0].Status != proto.StoreOK || acks[0].Version != 1 {
		t.Fatalf("first ack %+v", acks[0])
	}
	if acks[1].Status != proto.StoreOK || acks[1].Version != 1 {
		t.Fatalf("retry must replay the recorded ack, got %+v", acks[1])
	}
	if rec, ok := s.LocalHashed(k); !ok || rec.Version != 1 {
		t.Fatalf("store re-applied: %+v", rec)
	}

	// A different id from the same requester is a new operation.
	s.handleStore(42, &proto.DHTStore{From: proto.NodeRef{Addr: 42}, ReqID: 8,
		Key: k, Value: []byte("w"), Cond: true, Base: AnyVersion},
		func(resp proto.SvcResponse) { acks = append(acks, resp.(*proto.DHTStoreAck)) })
	if acks[2].Status != proto.StoreConflict {
		t.Fatalf("fresh conditional store with stale base must conflict, got %+v", acks[2])
	}
}

func TestMergeOrdering(t *testing.T) {
	c := simrt.New(simrt.Options{N: 2, Seed: 10, Bulk: false})
	s := Attach(c.Nodes[0])
	k := idspace.ID(42)

	if !s.merge(k, []byte("a"), 1, 10) {
		t.Fatal("fresh record rejected")
	}
	if s.merge(k, []byte("b"), 1, 9) {
		t.Fatal("same version, lower origin must lose")
	}
	if !s.merge(k, []byte("c"), 1, 11) {
		t.Fatal("same version, higher origin must win")
	}
	if s.merge(k, []byte("d"), 1, 11) {
		t.Fatal("identical (version, origin) must be a no-op")
	}
	if !s.merge(k, []byte("e"), 2, 1) {
		t.Fatal("higher version must win regardless of origin")
	}
	if s.merge(k, []byte("f"), 1, 99) {
		t.Fatal("lower version must lose")
	}
	rec, ok := s.LocalHashed(k)
	if !ok || string(rec.Value) != "e" || rec.Version != 2 {
		t.Fatalf("final record %+v ok=%v", rec, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d", s.Len())
	}
	s.drop(k)
	if s.Len() != 0 {
		t.Fatalf("Len after drop=%d", s.Len())
	}
}
