// Package dht realises the paper's claim that TreeP "can be easily
// modified to provide Distributed Hash Table (DHT) functionality": keys
// hash into the same 1-D space as nodes, the TreeP lookup resolves the
// owner (the node nearest the key), and values are stored there with
// replication on the owner's ring neighbours so that single failures do
// not lose data.
package dht

import (
	"errors"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
)

// Errors returned by Put/Get callbacks.
var (
	// ErrLookupFailed: the overlay could not resolve the key's owner.
	ErrLookupFailed = errors.New("dht: owner lookup failed")
	// ErrTimeout: the owner resolved but did not answer in time.
	ErrTimeout = errors.New("dht: request timed out")
	// ErrNotFound: the owner answered but has no value for the key.
	ErrNotFound = errors.New("dht: key not found")
)

// Service layers DHT storage on a TreeP node. Create one per node with
// Attach; all methods must run on the node's event loop (as with Node).
type Service struct {
	node *core.Node
	// store holds this node's records, keyed by the hashed key.
	store map[idspace.ID][]byte
	// Replicate is how many ring neighbours receive copies on Put.
	Replicate int
	// RequestTimeout bounds the direct owner exchange after the lookup.
	RequestTimeout time.Duration

	nextReq uint64
	pending map[uint64]*pendingOp

	// Stats counters.
	Stats Stats
}

// Stats counts DHT events on one node.
type Stats struct {
	PutsServed uint64
	GetsServed uint64
	Stored     uint64
	Replicas   uint64
}

type pendingOp struct {
	timer core.Timer
	onPut func(error)
	onGet func([]byte, error)
}

// Attach creates the service and hooks it into the node's extension slot.
func Attach(n *core.Node) *Service {
	s := &Service{
		node:           n,
		store:          map[idspace.ID][]byte{},
		Replicate:      2,
		RequestTimeout: 5 * time.Second,
		pending:        map[uint64]*pendingOp{},
	}
	n.SetExtension(s.handle)
	return s
}

// Node returns the underlying TreeP node.
func (s *Service) Node() *core.Node { return s.node }

// Len returns the number of records stored locally.
func (s *Service) Len() int { return len(s.store) }

// Put stores value under key: the TreeP lookup resolves the owner, then
// the value travels directly to it. cb fires exactly once.
func (s *Service) Put(key []byte, value []byte, cb func(error)) {
	k := idspace.HashKey(key)
	s.node.Lookup(k, proto.AlgoG, func(r core.LookupResult) {
		if r.Status != core.LookupFound {
			cb(ErrLookupFailed)
			return
		}
		if r.Best.Addr == s.node.Addr() {
			s.storeLocal(k, value, s.Replicate)
			cb(nil)
			return
		}
		s.nextReq++
		req := s.nextReq
		op := &pendingOp{onPut: cb}
		s.pending[req] = op
		op.timer = s.node.SetTimer(s.RequestTimeout, func() {
			if _, ok := s.pending[req]; !ok {
				return
			}
			delete(s.pending, req)
			cb(ErrTimeout)
		})
		s.node.Send(r.Best.Addr, &proto.DHTPut{
			From: s.node.Ref(), ReqID: req, Key: k,
			Value: value, Replicate: uint8(s.Replicate),
		})
	})
}

// Get fetches the value for key. cb fires exactly once with the value or
// an error.
func (s *Service) Get(key []byte, cb func([]byte, error)) {
	k := idspace.HashKey(key)
	s.node.Lookup(k, proto.AlgoG, func(r core.LookupResult) {
		if r.Status != core.LookupFound {
			cb(nil, ErrLookupFailed)
			return
		}
		if r.Best.Addr == s.node.Addr() {
			if v, ok := s.store[k]; ok {
				cb(v, nil)
			} else {
				cb(nil, ErrNotFound)
			}
			return
		}
		s.nextReq++
		req := s.nextReq
		op := &pendingOp{onGet: cb}
		s.pending[req] = op
		op.timer = s.node.SetTimer(s.RequestTimeout, func() {
			if _, ok := s.pending[req]; !ok {
				return
			}
			delete(s.pending, req)
			cb(nil, ErrTimeout)
		})
		s.node.Send(r.Best.Addr, &proto.DHTGet{From: s.node.Ref(), ReqID: req, Key: k})
	})
}

// storeLocal stores a record and pushes copies to ring neighbours.
func (s *Service) storeLocal(k idspace.ID, value []byte, replicate int) {
	s.store[k] = value
	s.Stats.Stored++
	if replicate <= 0 {
		return
	}
	l, r := s.node.Table().Level0.Neighbors(s.node.ID())
	sent := 0
	for _, nb := range []proto.NodeRef{l, r} {
		if nb.IsZero() || sent >= replicate {
			continue
		}
		s.node.Send(nb.Addr, &proto.DHTPut{
			From: s.node.Ref(), ReqID: 0, Key: k, Value: value, Replicate: 0,
		})
		s.Stats.Replicas++
		sent++
	}
}

// handle is the extension hook for DHT messages.
func (s *Service) handle(from uint64, msg proto.Message) bool {
	switch m := msg.(type) {
	case *proto.DHTPut:
		s.Stats.PutsServed++
		s.storeLocal(m.Key, m.Value, int(m.Replicate))
		if m.ReqID != 0 {
			s.node.Send(from, &proto.DHTPutAck{From: s.node.Ref(), ReqID: m.ReqID, Stored: true})
		}
		return true
	case *proto.DHTPutAck:
		if op, ok := s.pending[m.ReqID]; ok && op.onPut != nil {
			delete(s.pending, m.ReqID)
			if op.timer != nil {
				op.timer.Cancel()
			}
			op.onPut(nil)
		}
		return true
	case *proto.DHTGet:
		s.Stats.GetsServed++
		v, ok := s.store[m.Key]
		s.node.Send(from, &proto.DHTGetReply{
			From: s.node.Ref(), ReqID: m.ReqID, Found: ok, Value: v,
		})
		return true
	case *proto.DHTGetReply:
		if op, ok := s.pending[m.ReqID]; ok && op.onGet != nil {
			delete(s.pending, m.ReqID)
			if op.timer != nil {
				op.timer.Cancel()
			}
			if m.Found {
				op.onGet(m.Value, nil)
			} else {
				op.onGet(nil, ErrNotFound)
			}
		}
		return true
	}
	return false
}
