// Package dht realises the paper's claim that TreeP "can be easily
// modified to provide Distributed Hash Table (DHT) functionality" as a
// churn-resilient replicated store. Keys hash into the same 1-D space as
// nodes, the TreeP lookup resolves the owner (the node nearest the key),
// and the owner holds the record with copies on its ring neighbours.
//
// Records are versioned: the owner assigns a monotonically increasing
// per-key version on every store, and every copy carries (version, origin)
// where origin is the writer that caused the version. Replicas merge by
// that pair — newest version wins, higher origin breaks ties — so any two
// nodes holding copies of a key converge to the same record no matter the
// order or duplication of deliveries. Conditional stores (PutIf) are
// accepted only while the owner's current version matches the writer's
// base, which turns read-modify-write sequences into compare-and-swap
// loops instead of lost updates.
//
// Durability is active, not put-time-only:
//
//   - periodic replica maintenance re-replicates every owned record when
//     the owner's ring neighbourhood changes (a replica died or a new
//     neighbour joined), and re-pushes records whose version moved;
//   - ownership handoff: a node that finds a known peer closer to one of
//     its keys pushes the record to that peer and, once acknowledged,
//     drops its copy only if it is no longer within replica distance;
//   - read-repair: an owner that misses on a Get consults its ring
//     neighbours before answering, adopts the highest-versioned surviving
//     copy, and serves it — so a freshly responsible node heals from its
//     replicas on first touch instead of returning not-found.
//
// The request/response plumbing (request ids, deadlines, retries,
// owner lookup) is the generic service plane of internal/svc; the same
// Put/Get code path runs over the deterministic simulator and over real
// UDP sockets.
package dht

import (
	"errors"
	"hash/maphash"
	"sort"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/svc"
)

// Errors returned by Put/Get callbacks.
var (
	// ErrLookupFailed: the overlay could not resolve the key's owner.
	ErrLookupFailed = errors.New("dht: owner lookup failed")
	// ErrTimeout: the owner resolved but did not answer in time.
	ErrTimeout = errors.New("dht: request timed out")
	// ErrNotFound: the owner answered but has no value for the key.
	ErrNotFound = errors.New("dht: key not found")
	// ErrConflict: a conditional store's base version no longer matches;
	// re-read and retry the read-modify-write.
	ErrConflict = errors.New("dht: version conflict")
)

// AnyVersion is the PutIf base that matches only a key with no record yet.
const AnyVersion = 0

// Record is one versioned key-value pair as seen by a reader.
type Record struct {
	Value   []byte
	Version uint64
	Origin  uint64
}

// record is the stored form, with replica-push bookkeeping.
type record struct {
	value   []byte
	version uint64
	origin  uint64
	// pushedSig and pushedVersion remember the ring-neighbourhood signature
	// and version of the last replica push, so maintenance re-replicates
	// exactly when neighbours changed or the record did.
	pushedSig     uint64
	pushedVersion uint64
}

// Stats counts DHT events on one node.
type Stats struct {
	PutsServed uint64 // store requests served as owner
	GetsServed uint64 // fetch requests served
	Stored     uint64 // merges that accepted a new record or version
	Conflicts  uint64 // conditional stores rejected
	Replicas   uint64 // replica pushes sent
	Handoffs   uint64 // ownership handoffs initiated
	Dropped    uint64 // local copies released after handoff
	Consults   uint64 // fetch misses that consulted replicas
	Repairs    uint64 // records adopted from a replica on read-repair
}

// Service layers the replicated store on a TreeP node. Create one per node
// with Attach; all methods must run on the node's event loop (as with
// Node). Callers must not mutate key or value slices they pass in until
// the callback fires.
type Service struct {
	node  *core.Node
	plane *svc.Plane

	// recs and keys are the same store: the map serves point lookups, the
	// sorted slice gives maintenance a deterministic iteration order (the
	// simulator's reproducibility forbids ranging over a map here).
	recs map[idspace.ID]*record
	keys []idspace.ID

	// ReplicationFactor is the total number of copies a record aims for:
	// the owner plus factor-1 ring neighbours. Default 3.
	ReplicationFactor int
	// ActiveRepair enables the churn-resilience machinery: periodic
	// replica maintenance, ownership handoff, and read-repair consults.
	// Disabling it reverts to put-time-only replication — the seed
	// implementation's behaviour, kept as the ablation switch behind
	// EXPERIMENTS.md's durability table.
	ActiveRepair bool
	// RequestTimeout bounds each attempt of an owner exchange.
	RequestTimeout time.Duration
	// Retries is how many times a timed-out attempt is re-tried (with a
	// fresh owner lookup each time). Default 2.
	Retries int
	// MaintainInterval is the replica-maintenance cadence (default 2s).
	// Attach arms the timer with it; changing the cadence afterwards goes
	// through SetMaintainInterval, which re-arms.
	MaintainInterval time.Duration

	maintTimer core.Timer
	scratch    []proto.NodeRef

	// nudgePending debounces ring-change nudges: a merge zip reports a
	// burst of new contacts, and one maintenance pass covers them all.
	nudgePending bool

	// memos is a bounded ring of recent store outcomes keyed by
	// (requester, request id). The service plane retries a store whose
	// ack was lost by re-sending the same request id; without replaying
	// the recorded outcome the owner would re-apply the store — bumping
	// the version again and, worse, answering a conditional store that
	// already committed with a spurious conflict.
	memos   [storeMemoSize]storeMemo
	memoPos int

	// Stats counters.
	Stats Stats
}

// storeMemoSize bounds the ack-replay window. Retries arrive within one
// request timeout; 64 in-flight stores per owner is far beyond any real
// concurrency here.
const storeMemoSize = 64

type storeMemo struct {
	from    uint64
	reqID   uint64
	status  proto.StoreStatus
	version uint64
	origin  uint64
}

var sigSeed = maphash.MakeSeed()

// Attach creates the service on a fresh service plane and hooks it into
// the node's extension slot.
func Attach(n *core.Node) *Service { return AttachPlane(svc.Attach(n)) }

// AttachPlane creates the service on an existing plane (services sharing
// one node compose by sharing its plane).
func AttachPlane(p *svc.Plane) *Service {
	s := &Service{
		node:              p.Node(),
		plane:             p,
		recs:              map[idspace.ID]*record{},
		ReplicationFactor: 3,
		ActiveRepair:      true,
		RequestTimeout:    2 * time.Second,
		Retries:           2,
		MaintainInterval:  2 * time.Second,
	}
	p.Handle(proto.TDHTStore, s.handleStore)
	p.Handle(proto.TDHTFetch, s.handleFetch)
	p.Handle(proto.TDHTReplicate, s.handleReplicate)
	p.ExpectResponse(proto.TDHTStoreAck)
	p.ExpectResponse(proto.TDHTFetchReply)
	p.ExpectResponse(proto.TDHTReplicateAck)
	s.maintTimer = s.node.SetPeriodic(s.MaintainInterval, s.maintainTick)
	s.node.SetRingChangeHook(s.ringNudge)
	return s
}

// ringNudge reacts to a ring-adjacency change reported by the core — a
// repaired gap, a merged partition. One near-immediate maintenance pass
// re-runs ownership handoff and replica placement, so keys whose owner
// changed in a merge reconcile in milliseconds instead of waiting out
// MaintainInterval. The periodic tick remains the backstop.
func (s *Service) ringNudge() {
	if s.nudgePending {
		return
	}
	s.nudgePending = true
	s.node.SetTimer(ringNudgeDelay, func() {
		s.nudgePending = false
		s.maintainTick()
	})
}

// ringNudgeDelay lets one zip burst settle before reconciling.
const ringNudgeDelay = 250 * time.Millisecond

// Node returns the underlying TreeP node.
func (s *Service) Node() *core.Node { return s.node }

// SetMaintainInterval re-arms the replica-maintenance timer with a new
// cadence (the timer is armed at Attach, so writing the field alone after
// that has no effect).
func (s *Service) SetMaintainInterval(d time.Duration) {
	s.MaintainInterval = d
	if s.maintTimer != nil {
		s.maintTimer.Cancel()
	}
	s.maintTimer = s.node.SetPeriodic(d, s.maintainTick)
}

// Plane returns the service plane the DHT runs on.
func (s *Service) Plane() *svc.Plane { return s.plane }

// Len returns the number of records stored locally.
func (s *Service) Len() int { return len(s.keys) }

// Local returns the locally stored record for a raw (unhashed) key, for
// tests and diagnostics.
func (s *Service) Local(key []byte) (Record, bool) { return s.LocalHashed(idspace.HashKey(key)) }

// LocalHashed is Local for an already-hashed key.
func (s *Service) LocalHashed(k idspace.ID) (Record, bool) {
	if rec, ok := s.recs[k]; ok {
		return Record{Value: rec.value, Version: rec.version, Origin: rec.origin}, true
	}
	return Record{}, false
}

// callOpts bundles the service's retry policy.
func (s *Service) callOpts() svc.CallOpts {
	return svc.CallOpts{Timeout: s.RequestTimeout, Retries: s.Retries}
}

// Put stores value under key unconditionally: the owner assigns the next
// version. cb fires exactly once.
func (s *Service) Put(key []byte, value []byte, cb func(error)) {
	s.storeVia(key, value, false, 0, func(_ uint64, err error) { cb(err) })
}

// PutIf stores value under key only while the owner's current version
// equals base (AnyVersion for "no record yet"): compare-and-swap for
// read-modify-write writers. On ErrConflict re-read and retry. cb receives
// the resulting version on success.
func (s *Service) PutIf(key []byte, value []byte, base uint64, cb func(version uint64, err error)) {
	s.storeVia(key, value, true, base, cb)
}

func (s *Service) storeVia(key, value []byte, cond bool, base uint64, cb func(uint64, error)) {
	k := idspace.HashKey(key)
	req := &proto.DHTStore{Key: k, Value: value, Base: base, Cond: cond}
	s.plane.CallKey(k, proto.AlgoG, req, s.callOpts(),
		func(_ proto.NodeRef, resp proto.SvcResponse, err error) {
			if err != nil {
				cb(0, mapErr(err))
				return
			}
			ack, ok := resp.(*proto.DHTStoreAck)
			if !ok {
				cb(0, ErrTimeout)
				return
			}
			if ack.Status == proto.StoreConflict {
				cb(ack.Version, ErrConflict)
				return
			}
			cb(ack.Version, nil)
		})
}

// Get fetches the value for key. cb fires exactly once with the value or
// an error.
func (s *Service) Get(key []byte, cb func([]byte, error)) {
	s.GetRecord(key, func(rec Record, err error) { cb(rec.Value, err) })
}

// GetRecord fetches the record for key with its version, for writers that
// intend a PutIf against what they read.
func (s *Service) GetRecord(key []byte, cb func(Record, error)) {
	k := idspace.HashKey(key)
	req := &proto.DHTFetch{Key: k}
	s.plane.CallKey(k, proto.AlgoG, req, s.callOpts(),
		func(_ proto.NodeRef, resp proto.SvcResponse, err error) {
			if err != nil {
				cb(Record{}, mapErr(err))
				return
			}
			rep, ok := resp.(*proto.DHTFetchReply)
			if !ok || !rep.Found {
				cb(Record{}, ErrNotFound)
				return
			}
			// Copy out: the reply message may be pooled and is recycled when
			// this delivery ends.
			cb(Record{
				Value:   append([]byte(nil), rep.Value...),
				Version: rep.Version,
				Origin:  rep.Origin,
			}, nil)
		})
}

// mapErr translates service-plane errors into the DHT's error set.
func mapErr(err error) error {
	switch {
	case errors.Is(err, svc.ErrLookupFailed):
		return ErrLookupFailed
	case errors.Is(err, svc.ErrTimeout):
		return ErrTimeout
	default:
		return err
	}
}

// --- local store ------------------------------------------------------------

// merge applies an incoming copy by the (version, origin) order and
// reports whether it won. Values are always copied in.
func (s *Service) merge(k idspace.ID, value []byte, version, origin uint64) bool {
	cur, ok := s.recs[k]
	if ok && (version < cur.version || (version == cur.version && origin <= cur.origin)) {
		return false
	}
	if !ok {
		cur = &record{}
		s.recs[k] = cur
		i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
		s.keys = append(s.keys, 0)
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = k
	}
	cur.value = append(cur.value[:0], value...)
	cur.version, cur.origin = version, origin
	s.Stats.Stored++
	return true
}

// drop releases the local copy of k.
func (s *Service) drop(k idspace.ID) {
	if _, ok := s.recs[k]; !ok {
		return
	}
	delete(s.recs, k)
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	if i < len(s.keys) && s.keys[i] == k {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
	s.Stats.Dropped++
}

// --- handlers ---------------------------------------------------------------

// handleStore is the owner's store path: version assignment, CAS check,
// immediate replica fan-out, ack. A store for a key this node does not
// hold first consults the replicas of whoever owned it before — otherwise
// a freshly responsible owner would restart versions at 1 and its writes
// would lose every merge against the surviving higher-versioned copies
// (and conditional stores would pass a base check they should fail).
func (s *Service) handleStore(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
	m := req.(*proto.DHTStore)
	s.Stats.PutsServed++
	// A retried store (ack lost in flight) replays the recorded outcome
	// instead of re-applying: stores are not idempotent (the owner assigns
	// version current+1 each time), and a committed conditional store
	// re-checked against the bumped version would answer conflict.
	for i := range s.memos {
		mm := &s.memos[i]
		if mm.reqID == m.ReqID && mm.from == from && mm.reqID != 0 {
			ack := proto.AcquireDHTStoreAck()
			ack.Status, ack.Version, ack.Origin = mm.status, mm.version, mm.origin
			respond(ack)
			return
		}
	}
	if _, ok := s.recs[m.Key]; ok || !s.ActiveRepair {
		// Synchronous path: merge copies the value into the record's own
		// buffer within this frame, so m.Value passes through uncopied.
		s.finishStore(m.Key, m.Value, m.Base, m.Cond, from, m.ReqID, respond)
		return
	}
	// Copy everything out of m before going async: the request message is
	// owned by the sender and this frame only.
	key, base, cond, reqID := m.Key, m.Base, m.Cond, m.ReqID
	value := append([]byte(nil), m.Value...)
	s.consult(key, func(found bool, rec Record) {
		if found {
			s.Stats.Repairs++
			s.merge(key, rec.Value, rec.Version, rec.Origin)
		}
		s.finishStore(key, value, base, cond, from, reqID, respond)
	})
}

// finishStore applies a store against the now-settled current version and
// records the outcome for ack replay.
func (s *Service) finishStore(key idspace.ID, value []byte, base uint64, cond bool, from, reqID uint64,
	respond func(proto.SvcResponse)) {
	var curVersion, curOrigin uint64
	if cur, ok := s.recs[key]; ok {
		curVersion, curOrigin = cur.version, cur.origin
	}
	ack := proto.AcquireDHTStoreAck()
	if cond && base != curVersion {
		s.Stats.Conflicts++
		ack.Status, ack.Version, ack.Origin = proto.StoreConflict, curVersion, curOrigin
	} else {
		version := curVersion + 1
		s.merge(key, value, version, from)
		if rec, ok := s.recs[key]; ok {
			s.pushReplicas(key, rec)
			rec.pushedSig, rec.pushedVersion = s.ringSig(), rec.version
		}
		ack.Status, ack.Version, ack.Origin = proto.StoreOK, version, from
	}
	s.memos[s.memoPos] = storeMemo{from: from, reqID: reqID,
		status: ack.Status, version: ack.Version, origin: ack.Origin}
	s.memoPos = (s.memoPos + 1) % storeMemoSize
	respond(ack)
}

// handleFetch serves reads. A miss on a non-local fetch consults the ring
// neighbours — the replica set of whoever owned the key before us — and
// adopts the best surviving copy before answering (read-repair).
func (s *Service) handleFetch(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
	m := req.(*proto.DHTFetch)
	s.Stats.GetsServed++
	if rec, ok := s.recs[m.Key]; ok {
		respond(s.fetchReply(rec))
		return
	}
	if m.Local || !s.ActiveRepair {
		rep := proto.AcquireDHTFetchReply()
		rep.Found = false
		respond(rep)
		return
	}
	key := m.Key
	s.consult(key, func(found bool, rec Record) {
		if !found {
			rep := proto.AcquireDHTFetchReply()
			rep.Found = false
			respond(rep)
			return
		}
		s.Stats.Repairs++
		s.merge(key, rec.Value, rec.Version, rec.Origin)
		if cur, ok := s.recs[key]; ok {
			respond(s.fetchReply(cur))
			return
		}
		rep := proto.AcquireDHTFetchReply()
		rep.Found = false
		respond(rep)
	})
}

// consult queries the ring neighbours for a key this node believes it owns
// but does not hold and reports the newest surviving copy. The sub-fetches
// are Local so a confused neighbourhood cannot recurse. Sub-call deadlines
// are half the request timeout so the answer (including a dead neighbour's
// silence) fits inside the client's own attempt window.
func (s *Service) consult(key idspace.ID, cb func(bool, Record)) {
	targets := s.replicaTargets(key)
	if len(targets) == 0 {
		cb(false, Record{})
		return
	}
	s.Stats.Consults++
	remaining := len(targets)
	best := Record{}
	found := false
	for _, tgt := range targets {
		sub := &proto.DHTFetch{Key: key, Local: true}
		s.plane.Call(tgt.Addr, sub, svc.CallOpts{Timeout: s.RequestTimeout / 2},
			func(resp proto.SvcResponse, err error) {
				remaining--
				if err == nil {
					if rep, ok := resp.(*proto.DHTFetchReply); ok && rep.Found {
						if !found || rep.Version > best.Version ||
							(rep.Version == best.Version && rep.Origin > best.Origin) {
							// Copy: the reply is recycled after this delivery.
							best.Value = append(best.Value[:0], rep.Value...)
							best.Version, best.Origin = rep.Version, rep.Origin
							found = true
						}
					}
				}
				if remaining == 0 {
					cb(found, best)
				}
			})
	}
}

// fetchReply builds a pooled found-reply carrying a copy of the record.
func (s *Service) fetchReply(rec *record) *proto.DHTFetchReply {
	rep := proto.AcquireDHTFetchReply()
	rep.Found = true
	rep.Value = append(rep.Value[:0], rec.value...)
	rep.Version, rep.Origin = rec.version, rec.origin
	return rep
}

// handleReplicate merges a pushed copy; ReqID zero is fire-and-forget.
func (s *Service) handleReplicate(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
	m := req.(*proto.DHTReplicate)
	stored := s.merge(m.Key, m.Value, m.Version, m.Origin)
	if m.ReqID == 0 {
		respond(nil)
		return
	}
	ack := proto.AcquireDHTReplicateAck()
	ack.Stored = stored
	respond(ack)
}

// --- replica maintenance ----------------------------------------------------

// maintainTick walks the local records (deterministic key order): records
// this node still owns are re-pushed to the current replica set when the
// neighbourhood or the version changed since the last push; records a
// known closer node should own are handed off.
func (s *Service) maintainTick() {
	if !s.ActiveRepair || len(s.keys) == 0 {
		return
	}
	sig := s.ringSig()
	for _, k := range s.keys {
		rec, ok := s.recs[k]
		if !ok {
			continue
		}
		if best, betterOwner := s.closerOwner(k); betterOwner {
			s.handoff(k, rec, best)
			continue
		}
		if rec.pushedSig == sig && rec.pushedVersion == rec.version {
			continue
		}
		s.pushReplicas(k, rec)
		rec.pushedSig, rec.pushedVersion = sig, rec.version
	}
}

// pushReplicas sends fire-and-forget copies of rec to the key's current
// replica targets. Each push gets its own message and value copy: in the
// simulator payloads travel by reference, and the record may be rewritten
// while the datagram is in flight.
func (s *Service) pushReplicas(k idspace.ID, rec *record) {
	for _, tgt := range s.replicaTargets(k) {
		m := &proto.DHTReplicate{
			From:    s.node.Ref(),
			Key:     k,
			Value:   append([]byte(nil), rec.value...),
			Version: rec.version,
			Origin:  rec.origin,
		}
		s.Stats.Replicas++
		s.node.Send(tgt.Addr, m)
	}
}

// handoff pushes rec to a closer node (the believed new owner) and, once
// acknowledged, drops the local copy if this node is outside the replica
// set — so records migrate toward joiners instead of being lost when the
// old owner eventually departs.
func (s *Service) handoff(k idspace.ID, rec *record, owner proto.NodeRef) {
	s.Stats.Handoffs++
	pushedVersion := rec.version
	m := &proto.DHTReplicate{
		Key:     k,
		Value:   append([]byte(nil), rec.value...),
		Version: rec.version,
		Origin:  rec.origin,
	}
	s.plane.Call(owner.Addr, m, svc.CallOpts{Timeout: s.RequestTimeout, Retries: 1},
		func(resp proto.SvcResponse, err error) {
			if err != nil {
				return // keep the copy; next tick retries
			}
			cur, ok := s.recs[k]
			if !ok || cur.version != pushedVersion {
				return // rewritten while in flight; next tick reconsiders
			}
			if s.withinReplicaSet(k) {
				return
			}
			s.drop(k)
		})
}

// ReplicaTargets returns up to ReplicationFactor-1 fresh ring contacts
// nearest to k: the replica set this node would push to as owner, and the
// consult set it would query on a miss. The slice is a shared scratch
// buffer; callers must not retain it across another call into the service.
// Exposed for the scenario engine's durability checker, which mirrors the
// Get path statically.
func (s *Service) ReplicaTargets(k idspace.ID) []proto.NodeRef { return s.replicaTargets(k) }

func (s *Service) replicaTargets(k idspace.ID) []proto.NodeRef {
	want := s.ReplicationFactor - 1
	if want <= 0 {
		return nil
	}
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	// Collect up to `want` fresh contacts from each side, then keep the
	// `want` nearest by distance. The ID space is a line, not a ring: a
	// key near an extreme has fewer (or no) contacts on one side, and
	// taking a fixed count per side would under-replicate it — the far
	// side must make up the difference.
	out := l0.AppendNeighborsFreshK(s.scratch[:0], k, now, ttl, want, true)
	out = l0.AppendNeighborsFreshK(out, k, now, ttl, want, false)
	self := s.node.Addr()
	n := 0
	for _, r := range out {
		if r.Addr != self {
			out[n] = r
			n++
		}
	}
	out = out[:n]
	// Insertion sort by (distance, ID, Addr): at most 2·want tiny entries.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && replicaCloser(out[j], out[j-1], k); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if len(out) > want {
		out = out[:want]
	}
	s.scratch = out
	return out
}

// replicaCloser orders replica candidates by distance to k with a
// deterministic (ID, Addr) tiebreak.
func replicaCloser(a, b proto.NodeRef, k idspace.ID) bool {
	da, db := idspace.Dist(a.ID, k), idspace.Dist(b.ID, k)
	if da != db {
		return da < db
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Addr < b.Addr
}

// closerOwner reports whether a known *fresh* level-0 contact is strictly
// closer to k than this node (with the deterministic ID tiebreak), i.e.
// whether the key has a better owner to hand off to. Staleness matters:
// handing off to a dead-but-unexpired neighbour burns the call's retries
// for nothing.
func (s *Service) closerOwner(k idspace.ID) (proto.NodeRef, bool) {
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	dSelf := idspace.Dist(s.node.ID(), k)
	selfID := s.node.ID()
	var best proto.NodeRef
	var bestD uint64
	found := false
	for _, r := range l0.Refs() {
		if r.Addr == s.node.Addr() {
			continue
		}
		e := l0.Get(r.Addr)
		if e == nil || !e.DirectFresh(now, ttl) {
			continue
		}
		d := idspace.Dist(r.ID, k)
		if d > dSelf || (d == dSelf && r.ID >= selfID) {
			continue
		}
		if !found || d < bestD || (d == bestD && r.ID < best.ID) {
			best, bestD, found = r, d, true
		}
	}
	return best, found
}

// withinReplicaSet reports whether this node is among the
// ReplicationFactor nearest *fresh* holders of k (itself plus level-0
// contacts), i.e. still responsible for keeping a copy. Only direct-fresh
// contacts count: a dead-but-unexpired neighbour must not displace a live
// replica, or churn concentrates every copy on one node (the survivors
// each see the corpses as "closer" and drop) and a single further failure
// loses the record.
func (s *Service) withinReplicaSet(k idspace.ID) bool {
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	dSelf := idspace.Dist(s.node.ID(), k)
	selfID := s.node.ID()
	closer := 0
	for _, r := range l0.Refs() {
		if r.Addr == s.node.Addr() {
			continue
		}
		e := l0.Get(r.Addr)
		if e == nil || !e.DirectFresh(now, ttl) {
			continue
		}
		d := idspace.Dist(r.ID, k)
		if d < dSelf || (d == dSelf && r.ID < selfID) {
			closer++
			if closer >= s.ReplicationFactor {
				return false
			}
		}
	}
	return true
}

// ringSig hashes the current replica neighbourhood of this node's own
// coordinate; a changed signature means a replica died or a new neighbour
// joined, and every owned record needs a re-push.
func (s *Service) ringSig() uint64 {
	var h maphash.Hash
	h.SetSeed(sigSeed)
	for _, r := range s.replicaTargets(s.node.ID()) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(r.Addr >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}
