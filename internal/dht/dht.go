// Package dht realises the paper's claim that TreeP "can be easily
// modified to provide Distributed Hash Table (DHT) functionality" as a
// churn-resilient replicated store. Keys hash into the same 1-D space as
// nodes, the TreeP lookup resolves the owner (the node nearest the key),
// and the owner holds the record with copies on its ring neighbours.
//
// Records are versioned: the owner assigns a monotonically increasing
// per-key version on every store, and every copy carries (version, origin)
// where origin is the writer that caused the version. Replicas merge by
// that pair — newest version wins, higher origin breaks ties — so any two
// nodes holding copies of a key converge to the same record no matter the
// order or duplication of deliveries. Conditional stores (PutIf) are
// accepted only while the owner's current version matches the writer's
// base, which turns read-modify-write sequences into compare-and-swap
// loops instead of lost updates.
//
// Durability is active, not put-time-only:
//
//   - periodic replica maintenance re-replicates every owned record when
//     the owner's ring neighbourhood changes (a replica died or a new
//     neighbour joined), and re-pushes records whose version moved;
//   - ownership handoff: a node that finds a known peer closer to one of
//     its keys pushes the record to that peer and, once acknowledged,
//     drops its copy only if it is no longer within replica distance;
//   - read-repair: an owner that misses on a Get consults its ring
//     neighbours before answering, adopts the highest-versioned surviving
//     copy, and serves it — so a freshly responsible node heals from its
//     replicas on first touch instead of returning not-found.
//
// The request/response plumbing (request ids, deadlines, retries,
// owner lookup) is the generic service plane of internal/svc; the same
// Put/Get code path runs over the deterministic simulator and over real
// UDP sockets.
package dht

import (
	"encoding/binary"
	"errors"
	"hash/maphash"
	"sort"
	"time"

	"treep/internal/core"
	"treep/internal/idspace"
	"treep/internal/proto"
	"treep/internal/svc"
)

// Errors returned by Put/Get callbacks.
var (
	// ErrLookupFailed: the overlay could not resolve the key's owner.
	ErrLookupFailed = errors.New("dht: owner lookup failed")
	// ErrTimeout: the owner resolved but did not answer in time.
	ErrTimeout = errors.New("dht: request timed out")
	// ErrNotFound: the owner answered but has no value for the key.
	ErrNotFound = errors.New("dht: key not found")
	// ErrConflict: a conditional store's base version no longer matches;
	// re-read and retry the read-modify-write.
	ErrConflict = errors.New("dht: version conflict")
)

// AnyVersion is the PutIf base that matches only a key with no record yet.
const AnyVersion = 0

// Record is one versioned key-value pair as seen by a reader.
type Record struct {
	Value   []byte
	Version uint64
	Origin  uint64
}

// record is the stored form, with replica-push bookkeeping.
type record struct {
	value   []byte
	version uint64
	origin  uint64
	// pushedSig and pushedVersion remember the ring-neighbourhood signature
	// and version of the last replica push, so maintenance re-replicates
	// exactly when neighbours changed or the record did.
	pushedSig     uint64
	pushedVersion uint64
}

// Stats counts DHT events on one node.
type Stats struct {
	PutsServed uint64 // store requests served as owner
	GetsServed uint64 // fetch requests served
	Stored     uint64 // merges that accepted a new record or version
	Conflicts  uint64 // conditional stores rejected
	Replicas   uint64 // replica pushes sent
	Handoffs   uint64 // ownership handoffs initiated
	Dropped    uint64 // local copies released after handoff
	Consults   uint64 // fetch misses that consulted replicas
	Repairs    uint64 // records adopted from a replica on read-repair

	CacheServes   uint64 // reads answered from the hot-key cache
	CacheStores   uint64 // cache entries stored or refreshed
	Fanouts       uint64 // hot-key copies pushed to reader-side caches
	Invalidations uint64 // store-time re-pushes to an active fan-out set
	HorizonProbes uint64 // table-training lookups fired by cache hits
}

// Service layers the replicated store on a TreeP node. Create one per node
// with Attach; all methods must run on the node's event loop (as with
// Node). Callers must not mutate key or value slices they pass in until
// the callback fires.
type Service struct {
	node  *core.Node
	plane *svc.Plane

	// recs and keys are the same store: the map serves point lookups, the
	// sorted slice gives maintenance a deterministic iteration order (the
	// simulator's reproducibility forbids ranging over a map here).
	recs map[idspace.ID]*record
	keys []idspace.ID

	// ReplicationFactor is the total number of copies a record aims for:
	// the owner plus factor-1 ring neighbours. Default 3.
	ReplicationFactor int
	// ActiveRepair enables the churn-resilience machinery: periodic
	// replica maintenance, ownership handoff, and read-repair consults.
	// Disabling it reverts to put-time-only replication — the seed
	// implementation's behaviour, kept as the ablation switch behind
	// EXPERIMENTS.md's durability table.
	ActiveRepair bool
	// RequestTimeout bounds each attempt of an owner exchange.
	RequestTimeout time.Duration
	// Retries is how many times a timed-out attempt is re-tried (with a
	// fresh owner lookup each time). Default 2.
	Retries int
	// MaintainInterval is the replica-maintenance cadence (default 2s).
	// Attach arms the timer with it; changing the cadence afterwards goes
	// through SetMaintainInterval, which re-arms.
	MaintainInterval time.Duration

	// HotCache enables hot-key replica fan-out: owners count reads per
	// key per maintenance window, and keys read at least HotThreshold
	// times are pushed (fire-and-forget DHTReplicate) to their recent
	// readers and the strongest ring contacts. Receivers outside the
	// key's replica set file the copy in a bounded TTL'd cache instead of
	// the authoritative store; readers serve fresh cached copies locally,
	// and a store on a fanned-out key re-pushes the new version to the
	// fan-out set (versioned invalidation — the ordinary (version,
	// origin) merge makes the newer copy win everywhere). Off by
	// default; the durability story is unchanged either way because
	// cached copies never count as replicas.
	HotCache bool
	// HotThreshold is the reads-per-window level that marks an owned key
	// hot (default 4 per 2s window — low on purpose: the owner only ever
	// sees the reads its fan-out has NOT absorbed, and a key worth two
	// full lookups a second is already worth a paced push).
	HotThreshold int
	// FanoutWidth caps how many reader-side copies one hot key maintains
	// (default hotReaderSlots, so every remembered reader is covered — a
	// reader outside the fan-out set re-fetches through the lookup
	// funnel every CacheTTL, which is the load the fan-out exists to
	// absorb).
	FanoutWidth int
	// CacheTTL bounds the staleness of cached copies between refresh
	// pushes (default 30s). The bound only bites for keys that are read
	// but not hot: hot keys' copies are refreshed (and invalidated on
	// store) by owner pushes every few maintenance windows, far inside
	// the TTL.
	CacheTTL time.Duration

	maintTimer core.Timer
	scratch    []proto.NodeRef

	// cache and cacheKeys are the reader-side hot-key cache (same
	// map+sorted-keys shape as recs: deterministic iteration, bounded by
	// maxCacheEntries).
	cache     map[idspace.ID]*cacheEntry
	cacheKeys []idspace.ID

	// hot and hotKeys track read popularity of locally owned keys.
	hot     map[idspace.ID]*hotKey
	hotKeys []idspace.ID

	// horizonHits counts local cache hits toward the next horizon
	// refresh (see horizonEvery).
	horizonHits uint64

	// nudgePending debounces ring-change nudges: a merge zip reports a
	// burst of new contacts, and one maintenance pass covers them all.
	nudgePending bool

	// memos is a bounded ring of recent store outcomes keyed by
	// (requester, request id). The service plane retries a store whose
	// ack was lost by re-sending the same request id; without replaying
	// the recorded outcome the owner would re-apply the store — bumping
	// the version again and, worse, answering a conditional store that
	// already committed with a spurious conflict.
	memos   [storeMemoSize]storeMemo
	memoPos int

	// Stats counters.
	Stats Stats
}

// storeMemoSize bounds the ack-replay window. Retries arrive within one
// request timeout; 64 in-flight stores per owner is far beyond any real
// concurrency here.
const storeMemoSize = 64

type storeMemo struct {
	from    uint64
	reqID   uint64
	status  proto.StoreStatus
	version uint64
	origin  uint64
}

// cacheEntry is one reader-side copy of a hot record. It lives outside
// recs: it is never replicated, never handed off, and never counted by
// the durability machinery — it only short-circuits reads while fresh.
type cacheEntry struct {
	value   []byte
	version uint64
	origin  uint64
	expires time.Duration
}

// hotKey is the owner-side popularity state for one stored key.
type hotKey struct {
	// reads counts fetches in the current maintenance window.
	reads int
	// readers rings the most recent distinct reader addresses; they are
	// the primary fan-out audience.
	readers   [hotReaderSlots]uint64
	readerIdx int
	// fanout is the address set the last push went to; stores re-push
	// here (invalidation) and refresh pushes keep its caches warm.
	fanout []uint64
	// cool counts the remaining lease windows; the key stays fanned-out
	// until it reaches zero (refresh pushes suppress the reads that
	// would re-mark it hot, so the lease is the hysteresis).
	cool int
	// age counts windows since the fan-out set was (re)built, pacing
	// refresh pushes to every fanoutRefreshEvery windows.
	age int
}

const (
	// hotReaderSlots rings the distinct readers remembered per hot key.
	// Sized to cover a realistic repeat-reader population: every reader
	// the ring remembers gets refresh pushes and never re-enters the
	// lookup funnel for the key, so coverage here converts directly into
	// hierarchy load removed.
	hotReaderSlots = 64
	// hotLinger is the warm lease: how many maintenance windows a
	// fan-out set is kept refreshed after the last window that tripped
	// HotThreshold. Long on purpose — a working fan-out hides its own
	// demand from the owner, so a short lease would oscillate
	// (fan → quiet → drop → burst → fan).
	hotLinger = 30
	// fanoutNeighborSeed caps the capacity-weighted standby copies kept
	// at ring contacts alongside the reader-side set.
	fanoutNeighborSeed = 2
	// fanoutRefreshEvery paces refresh pushes to one per this many
	// maintenance windows — often enough to keep fanned copies well
	// inside the cache TTL, without flooding a push per window.
	fanoutRefreshEvery = 4
	// maxHotKeys bounds the per-owner popularity table.
	maxHotKeys = 64
	// maxCacheEntries bounds the reader-side cache.
	maxCacheEntries = 128
	// horizonEvery paces the cache-hit-driven horizon refresh: every
	// this many locally served cache hits, the node fires one pure
	// lookup at a rotating uniform coordinate. Absorbing reads into
	// caches starves the overlay of the long-range table entries that
	// lookup replies incidentally train (direct refs from distant
	// high-level responders); without the refresh those entries age out
	// and the residual cold-key lookups run ~15% longer paths. The
	// refresh budget is proportional to the traffic a cache absorbs,
	// so idle caches cost nothing.
	horizonEvery = 16
)

var sigSeed = maphash.MakeSeed()

// Attach creates the service on a fresh service plane and hooks it into
// the node's extension slot.
func Attach(n *core.Node) *Service { return AttachPlane(svc.Attach(n)) }

// AttachPlane creates the service on an existing plane (services sharing
// one node compose by sharing its plane).
func AttachPlane(p *svc.Plane) *Service {
	s := &Service{
		node:              p.Node(),
		plane:             p,
		recs:              map[idspace.ID]*record{},
		ReplicationFactor: 3,
		ActiveRepair:      true,
		RequestTimeout:    2 * time.Second,
		Retries:           2,
		MaintainInterval:  2 * time.Second,
		HotThreshold:      4,
		FanoutWidth:       hotReaderSlots,
		CacheTTL:          30 * time.Second,
		cache:             map[idspace.ID]*cacheEntry{},
		hot:               map[idspace.ID]*hotKey{},
	}
	p.Handle(proto.TDHTStore, s.handleStore)
	p.Handle(proto.TDHTFetch, s.handleFetch)
	p.Handle(proto.TDHTReplicate, s.handleReplicate)
	p.ExpectResponse(proto.TDHTStoreAck)
	p.ExpectResponse(proto.TDHTFetchReply)
	p.ExpectResponse(proto.TDHTReplicateAck)
	s.maintTimer = s.node.SetPeriodic(s.MaintainInterval, s.maintainTick)
	s.node.SetRingChangeHook(s.ringNudge)
	return s
}

// ringNudge reacts to a ring-adjacency change reported by the core — a
// repaired gap, a merged partition. One near-immediate maintenance pass
// re-runs ownership handoff and replica placement, so keys whose owner
// changed in a merge reconcile in milliseconds instead of waiting out
// MaintainInterval. The periodic tick remains the backstop.
func (s *Service) ringNudge() {
	if s.nudgePending {
		return
	}
	s.nudgePending = true
	s.node.SetTimer(ringNudgeDelay, func() {
		s.nudgePending = false
		s.maintainTick()
	})
}

// ringNudgeDelay lets one zip burst settle before reconciling.
const ringNudgeDelay = 250 * time.Millisecond

// Node returns the underlying TreeP node.
func (s *Service) Node() *core.Node { return s.node }

// SetMaintainInterval re-arms the replica-maintenance timer with a new
// cadence (the timer is armed at Attach, so writing the field alone after
// that has no effect).
func (s *Service) SetMaintainInterval(d time.Duration) {
	s.MaintainInterval = d
	if s.maintTimer != nil {
		s.maintTimer.Cancel()
	}
	s.maintTimer = s.node.SetPeriodic(d, s.maintainTick)
}

// Plane returns the service plane the DHT runs on.
func (s *Service) Plane() *svc.Plane { return s.plane }

// Len returns the number of records stored locally.
func (s *Service) Len() int { return len(s.keys) }

// Local returns the locally stored record for a raw (unhashed) key, for
// tests and diagnostics.
func (s *Service) Local(key []byte) (Record, bool) { return s.LocalHashed(idspace.HashKey(key)) }

// LocalHashed is Local for an already-hashed key.
func (s *Service) LocalHashed(k idspace.ID) (Record, bool) {
	if rec, ok := s.recs[k]; ok {
		return Record{Value: rec.value, Version: rec.version, Origin: rec.origin}, true
	}
	return Record{}, false
}

// callOpts bundles the service's retry policy.
func (s *Service) callOpts() svc.CallOpts {
	return svc.CallOpts{Timeout: s.RequestTimeout, Retries: s.Retries}
}

// Put stores value under key unconditionally: the owner assigns the next
// version. cb fires exactly once.
func (s *Service) Put(key []byte, value []byte, cb func(error)) {
	s.storeVia(key, value, false, 0, func(_ uint64, err error) { cb(err) })
}

// PutIf stores value under key only while the owner's current version
// equals base (AnyVersion for "no record yet"): compare-and-swap for
// read-modify-write writers. On ErrConflict re-read and retry. cb receives
// the resulting version on success.
func (s *Service) PutIf(key []byte, value []byte, base uint64, cb func(version uint64, err error)) {
	s.storeVia(key, value, true, base, cb)
}

func (s *Service) storeVia(key, value []byte, cond bool, base uint64, cb func(uint64, error)) {
	k := idspace.HashKey(key)
	req := &proto.DHTStore{Key: k, Value: value, Base: base, Cond: cond}
	s.plane.CallKey(k, proto.AlgoG, req, s.callOpts(),
		func(_ proto.NodeRef, resp proto.SvcResponse, err error) {
			if err != nil {
				cb(0, mapErr(err))
				return
			}
			ack, ok := resp.(*proto.DHTStoreAck)
			if !ok {
				cb(0, ErrTimeout)
				return
			}
			if ack.Status == proto.StoreConflict {
				cb(ack.Version, ErrConflict)
				return
			}
			cb(ack.Version, nil)
		})
}

// Get fetches the value for key. cb fires exactly once with the value or
// an error.
func (s *Service) Get(key []byte, cb func([]byte, error)) {
	s.GetRecord(key, func(rec Record, err error) { cb(rec.Value, err) })
}

// GetRecord fetches the record for key with its version, for writers that
// intend a PutIf against what they read.
func (s *Service) GetRecord(key []byte, cb func(Record, error)) {
	k := idspace.HashKey(key)
	// Hot-key short-circuit: a fresh cached copy answers locally — this
	// is where a flash crowd's traffic disappears from the owner's inbox.
	// Staleness is bounded by CacheTTL, and the owner's refresh pushes
	// keep a fanned-out key's caches both warm and current. The callback
	// still fires asynchronously (zero-delay timer) so callers see one
	// calling convention on hit and miss alike.
	if s.HotCache {
		if ce, ok := s.cache[k]; ok && s.node.Now() < ce.expires {
			s.Stats.CacheServes++
			rec := Record{
				Value:   append([]byte(nil), ce.value...),
				Version: ce.version,
				Origin:  ce.origin,
			}
			s.node.SetTimer(0, func() { cb(rec, nil) })
			s.horizonHits++
			if s.horizonHits%horizonEvery == 0 {
				s.refreshHorizon()
			}
			return
		}
	}
	req := &proto.DHTFetch{Key: k}
	s.plane.CallKey(k, proto.AlgoG, req, s.callOpts(),
		func(_ proto.NodeRef, resp proto.SvcResponse, err error) {
			if err != nil {
				cb(Record{}, mapErr(err))
				return
			}
			rep, ok := resp.(*proto.DHTFetchReply)
			if !ok || !rep.Found {
				cb(Record{}, ErrNotFound)
				return
			}
			// Copy out: the reply message may be pooled and is recycled when
			// this delivery ends.
			rec := Record{
				Value:   append([]byte(nil), rep.Value...),
				Version: rep.Version,
				Origin:  rep.Origin,
			}
			if s.HotCache {
				// Every successful remote read primes the local cache, so a
				// repeat reader stops asking the owner even before any
				// fan-out reaches it.
				s.cacheMerge(k, rec.Value, rec.Version, rec.Origin)
			}
			cb(rec, nil)
		})
}

// mapErr translates service-plane errors into the DHT's error set.
func mapErr(err error) error {
	switch {
	case errors.Is(err, svc.ErrLookupFailed):
		return ErrLookupFailed
	case errors.Is(err, svc.ErrTimeout):
		return ErrTimeout
	default:
		return err
	}
}

// --- local store ------------------------------------------------------------

// merge applies an incoming copy by the (version, origin) order and
// reports whether it won. Values are always copied in.
func (s *Service) merge(k idspace.ID, value []byte, version, origin uint64) bool {
	cur, ok := s.recs[k]
	if ok && (version < cur.version || (version == cur.version && origin <= cur.origin)) {
		return false
	}
	if !ok {
		cur = &record{}
		s.recs[k] = cur
		i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
		s.keys = append(s.keys, 0)
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = k
	}
	cur.value = append(cur.value[:0], value...)
	cur.version, cur.origin = version, origin
	s.Stats.Stored++
	return true
}

// drop releases the local copy of k.
func (s *Service) drop(k idspace.ID) {
	if _, ok := s.recs[k]; !ok {
		return
	}
	delete(s.recs, k)
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	if i < len(s.keys) && s.keys[i] == k {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
	s.Stats.Dropped++
}

// --- hot-key cache ----------------------------------------------------------

// cacheMerge files a pushed or fetched copy in the reader-side cache by
// the same (version, origin) order as the authoritative store; an equal
// or newer copy also refreshes the entry's TTL (the owner's periodic
// re-push rides this to keep hot caches warm). Strictly older copies
// neither overwrite nor refresh.
func (s *Service) cacheMerge(k idspace.ID, value []byte, version, origin uint64) {
	now := s.node.Now()
	ce, ok := s.cache[k]
	if ok {
		if version < ce.version || (version == ce.version && origin < ce.origin) {
			return
		}
	} else {
		if len(s.cacheKeys) >= maxCacheEntries {
			s.evictCache(now)
			if len(s.cacheKeys) >= maxCacheEntries {
				return
			}
		}
		ce = &cacheEntry{}
		s.cache[k] = ce
		i := sort.Search(len(s.cacheKeys), func(i int) bool { return s.cacheKeys[i] >= k })
		s.cacheKeys = append(s.cacheKeys, 0)
		copy(s.cacheKeys[i+1:], s.cacheKeys[i:])
		s.cacheKeys[i] = k
	}
	ce.value = append(ce.value[:0], value...)
	ce.version, ce.origin = version, origin
	ce.expires = now + s.CacheTTL
	s.Stats.CacheStores++
}

// evictCache clears expired entries; if nothing has expired it drops the
// entry closest to expiry (smallest key on ties), so admission under a
// full cache is deterministic.
func (s *Service) evictCache(now time.Duration) {
	n := 0
	var victim idspace.ID
	var victimAt time.Duration
	hasVictim := false
	for _, k := range s.cacheKeys {
		ce := s.cache[k]
		if ce.expires <= now {
			delete(s.cache, k)
			continue
		}
		if !hasVictim || ce.expires < victimAt {
			victim, victimAt, hasVictim = k, ce.expires, true
		}
		s.cacheKeys[n] = k
		n++
	}
	if n == len(s.cacheKeys) && hasVictim {
		delete(s.cache, victim)
		i := sort.Search(n, func(i int) bool { return s.cacheKeys[i] >= victim })
		copy(s.cacheKeys[i:], s.cacheKeys[i+1:])
		n--
	}
	s.cacheKeys = s.cacheKeys[:n]
}

// CacheLen returns the number of live cache entries, for tests.
func (s *Service) CacheLen() int { return len(s.cacheKeys) }

// CachedHashed returns the cached copy for an already-hashed key if it
// is still fresh, for tests and diagnostics.
func (s *Service) CachedHashed(k idspace.ID) (Record, bool) {
	if ce, ok := s.cache[k]; ok && s.node.Now() < ce.expires {
		return Record{Value: ce.value, Version: ce.version, Origin: ce.origin}, true
	}
	return Record{}, false
}

// noteRead counts a fetch against the owner-side popularity table and
// remembers the reader for the fan-out audience.
func (s *Service) noteRead(k idspace.ID, from uint64) {
	if _, owned := s.recs[k]; !owned {
		return
	}
	hk, ok := s.hot[k]
	if !ok {
		if len(s.hotKeys) >= maxHotKeys {
			return
		}
		hk = &hotKey{}
		s.hot[k] = hk
		i := sort.Search(len(s.hotKeys), func(i int) bool { return s.hotKeys[i] >= k })
		s.hotKeys = append(s.hotKeys, 0)
		copy(s.hotKeys[i+1:], s.hotKeys[i:])
		s.hotKeys[i] = k
	}
	hk.reads++
	if from == 0 || from == s.node.Addr() {
		return
	}
	for _, a := range hk.readers {
		if a == from {
			return
		}
	}
	hk.readers[hk.readerIdx] = from
	hk.readerIdx = (hk.readerIdx + 1) % hotReaderSlots
}

// dropHot forgets the popularity state at index i of hotKeys.
func (s *Service) dropHot(i int, k idspace.ID) {
	delete(s.hot, k)
	s.hotKeys = append(s.hotKeys[:i], s.hotKeys[i+1:]...)
}

// fanoutTick runs once per maintenance window: reads are windowed, and
// keys at or above HotThreshold (re)build their fan-out set and take a
// long warm lease. A fanned-out key's cached copies absorb the reads
// that would re-mark it hot — the owner goes quiet precisely because the
// fan-out works — so the lease, not the owner-visible read rate, decides
// how long copies are maintained: refresh pushes go out every
// fanoutRefreshEvery windows (re-arming the readers' cache TTLs and
// carrying any version the set has not seen), and when the lease runs
// out the pushes stop, the copies age out, and genuinely surviving
// demand re-trips the threshold within a window or two. Iteration is
// over the sorted key slice, deterministic.
// refreshHorizon fires one pure lookup (no fetch) at a deterministic
// rotating coordinate. The reply's direct ref from a distant responder
// is exactly the long-range table entry that ordinary lookup traffic
// would have trained before the cache absorbed it; see horizonEvery.
func (s *Service) refreshHorizon() {
	s.Stats.HorizonProbes++
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], s.node.Addr())
	binary.LittleEndian.PutUint64(b[8:], s.horizonHits)
	s.node.Lookup(idspace.HashKey(b[:]), proto.AlgoG, func(core.LookupResult) {})
}

func (s *Service) fanoutTick() {
	i := 0
	for i < len(s.hotKeys) {
		k := s.hotKeys[i]
		hk := s.hot[k]
		reads := hk.reads
		hk.reads = 0
		rec, owned := s.recs[k]
		if !owned {
			// Handed off or dropped: the new owner rebuilds its own
			// popularity picture.
			s.dropHot(i, k)
			continue
		}
		if reads >= s.HotThreshold {
			hk.cool = hotLinger
			hk.fanout = s.fanoutTargets(k, hk)
			hk.age = 0 // push immediately below, then every refresh interval
		} else if hk.cool > 0 {
			hk.cool--
		}
		if hk.cool > 0 && len(hk.fanout) > 0 {
			if hk.age%fanoutRefreshEvery == 0 {
				// Rebuild from the current reader ring before pushing: a
				// reader that missed (and got ringed) after the key went
				// hot must join the set, or it re-fetches through the
				// funnel every TTL for the whole lease.
				hk.fanout = s.fanoutTargets(k, hk)
				s.pushFanout(k, rec, hk)
			}
			hk.age++
		}
		if hk.cool == 0 {
			s.dropHot(i, k)
			continue
		}
		i++
	}
}

// fanoutTargets assembles the addresses a hot key's copies go to: the
// recent distinct readers (they asked; their caches pay off on their
// very next read), plus a couple of the highest-scoring fresh level-0
// contacts — capacity-weighted standby copies that answer fetches
// mid-ownership-transition. The seed is deliberately tiny: a copy at a
// node nobody reads through is pure push traffic, so the reader ring is
// the audience and capacity only breaks the tie for the standby slots.
func (s *Service) fanoutTargets(k idspace.ID, hk *hotKey) []uint64 {
	width := s.FanoutWidth
	if width <= 0 {
		width = 1
	}
	out := hk.fanout[:0]
	self := s.node.Addr()
	add := func(addr uint64) {
		if addr == 0 || addr == self || len(out) >= width {
			return
		}
		for _, a := range out {
			if a == addr {
				return
			}
		}
		out = append(out, addr)
	}
	// Ring order starting at readerIdx: oldest remembered reader first,
	// most recent last — a stable order for a deterministically filled
	// ring.
	for j := 0; j < hotReaderSlots; j++ {
		add(hk.readers[(hk.readerIdx+j)%hotReaderSlots])
	}
	if seed := len(out) + fanoutNeighborSeed; seed < width {
		width = seed
	}
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	refs := l0.AppendNeighborsFreshK(s.scratch[:0], k, now, ttl, fanoutNeighborSeed, true)
	refs = l0.AppendNeighborsFreshK(refs, k, now, ttl, fanoutNeighborSeed, false)
	s.scratch = refs
	// Insertion sort by score descending (ID, Addr tiebreak): the
	// strongest nearby nodes take the standby slots.
	for a := 1; a < len(refs); a++ {
		for b := a; b > 0 && scoreBetter(refs[b], refs[b-1]); b-- {
			refs[b-1], refs[b] = refs[b], refs[b-1]
		}
	}
	for _, r := range refs {
		add(r.Addr)
	}
	return out
}

// scoreBetter orders fan-out candidates by advertised score descending
// with deterministic tiebreaks.
func scoreBetter(a, b proto.NodeRef) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Addr < b.Addr
}

// pushFanout sends fire-and-forget copies of rec to the key's fan-out
// set. Receivers outside the replica set cache them (handleReplicate);
// the occasional true replica in the set just re-merges a version it
// already has.
func (s *Service) pushFanout(k idspace.ID, rec *record, hk *hotKey) {
	for _, addr := range hk.fanout {
		m := &proto.DHTReplicate{
			From:    s.node.Ref(),
			Key:     k,
			Value:   append([]byte(nil), rec.value...),
			Version: rec.version,
			Origin:  rec.origin,
			Cache:   true,
		}
		s.Stats.Fanouts++
		s.node.Send(addr, m)
	}
}

// --- handlers ---------------------------------------------------------------

// handleStore is the owner's store path: version assignment, CAS check,
// immediate replica fan-out, ack. A store for a key this node does not
// hold first consults the replicas of whoever owned it before — otherwise
// a freshly responsible owner would restart versions at 1 and its writes
// would lose every merge against the surviving higher-versioned copies
// (and conditional stores would pass a base check they should fail).
func (s *Service) handleStore(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
	m := req.(*proto.DHTStore)
	s.Stats.PutsServed++
	// A retried store (ack lost in flight) replays the recorded outcome
	// instead of re-applying: stores are not idempotent (the owner assigns
	// version current+1 each time), and a committed conditional store
	// re-checked against the bumped version would answer conflict.
	for i := range s.memos {
		mm := &s.memos[i]
		if mm.reqID == m.ReqID && mm.from == from && mm.reqID != 0 {
			ack := proto.AcquireDHTStoreAck()
			ack.Status, ack.Version, ack.Origin = mm.status, mm.version, mm.origin
			respond(ack)
			return
		}
	}
	if _, ok := s.recs[m.Key]; ok || !s.ActiveRepair {
		// Synchronous path: merge copies the value into the record's own
		// buffer within this frame, so m.Value passes through uncopied.
		s.finishStore(m.Key, m.Value, m.Base, m.Cond, from, m.ReqID, respond)
		return
	}
	// Copy everything out of m before going async: the request message is
	// owned by the sender and this frame only.
	key, base, cond, reqID := m.Key, m.Base, m.Cond, m.ReqID
	value := append([]byte(nil), m.Value...)
	s.consult(key, func(found bool, rec Record) {
		if found {
			s.Stats.Repairs++
			s.merge(key, rec.Value, rec.Version, rec.Origin)
		}
		s.finishStore(key, value, base, cond, from, reqID, respond)
	})
}

// finishStore applies a store against the now-settled current version and
// records the outcome for ack replay.
func (s *Service) finishStore(key idspace.ID, value []byte, base uint64, cond bool, from, reqID uint64,
	respond func(proto.SvcResponse)) {
	var curVersion, curOrigin uint64
	if cur, ok := s.recs[key]; ok {
		curVersion, curOrigin = cur.version, cur.origin
	}
	ack := proto.AcquireDHTStoreAck()
	if cond && base != curVersion {
		s.Stats.Conflicts++
		ack.Status, ack.Version, ack.Origin = proto.StoreConflict, curVersion, curOrigin
	} else {
		version := curVersion + 1
		s.merge(key, value, version, from)
		if rec, ok := s.recs[key]; ok {
			s.pushReplicas(key, rec)
			rec.pushedSig, rec.pushedVersion = s.ringSig(), rec.version
			// Versioned invalidation: a fanned-out key's cached copies
			// must not serve the old value for a full CacheTTL. The new
			// version goes straight to the fan-out set; cacheMerge at the
			// receivers makes it win by version order.
			if s.HotCache {
				if hk, ok := s.hot[key]; ok && len(hk.fanout) > 0 {
					s.Stats.Invalidations++
					s.pushFanout(key, rec, hk)
				}
			}
		}
		ack.Status, ack.Version, ack.Origin = proto.StoreOK, version, from
	}
	s.memos[s.memoPos] = storeMemo{from: from, reqID: reqID,
		status: ack.Status, version: ack.Version, origin: ack.Origin}
	s.memoPos = (s.memoPos + 1) % storeMemoSize
	respond(ack)
}

// handleFetch serves reads. A miss on a non-local fetch consults the ring
// neighbours — the replica set of whoever owned the key before us — and
// adopts the best surviving copy before answering (read-repair).
func (s *Service) handleFetch(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
	m := req.(*proto.DHTFetch)
	s.Stats.GetsServed++
	if s.HotCache && !m.Local {
		s.noteRead(m.Key, from)
	}
	if rec, ok := s.recs[m.Key]; ok {
		respond(s.fetchReply(rec))
		return
	}
	// Not holding the record: a fresh cached copy still answers (a reader
	// that got routed here benefits from the fan-out too). Versioned
	// staleness bounds apply as for the local-serve path.
	if s.HotCache {
		if ce, ok := s.cache[m.Key]; ok && s.node.Now() < ce.expires {
			s.Stats.CacheServes++
			rep := proto.AcquireDHTFetchReply()
			rep.Found = true
			rep.Value = append(rep.Value[:0], ce.value...)
			rep.Version, rep.Origin = ce.version, ce.origin
			respond(rep)
			return
		}
	}
	if m.Local || !s.ActiveRepair {
		rep := proto.AcquireDHTFetchReply()
		rep.Found = false
		respond(rep)
		return
	}
	key := m.Key
	s.consult(key, func(found bool, rec Record) {
		if !found {
			rep := proto.AcquireDHTFetchReply()
			rep.Found = false
			respond(rep)
			return
		}
		s.Stats.Repairs++
		s.merge(key, rec.Value, rec.Version, rec.Origin)
		if cur, ok := s.recs[key]; ok {
			respond(s.fetchReply(cur))
			return
		}
		rep := proto.AcquireDHTFetchReply()
		rep.Found = false
		respond(rep)
	})
}

// consult queries the ring neighbours for a key this node believes it owns
// but does not hold and reports the newest surviving copy. The sub-fetches
// are Local so a confused neighbourhood cannot recurse. Sub-call deadlines
// are half the request timeout so the answer (including a dead neighbour's
// silence) fits inside the client's own attempt window.
func (s *Service) consult(key idspace.ID, cb func(bool, Record)) {
	targets := s.replicaTargets(key)
	if len(targets) == 0 {
		cb(false, Record{})
		return
	}
	s.Stats.Consults++
	remaining := len(targets)
	best := Record{}
	found := false
	for _, tgt := range targets {
		sub := &proto.DHTFetch{Key: key, Local: true}
		s.plane.Call(tgt.Addr, sub, svc.CallOpts{Timeout: s.RequestTimeout / 2},
			func(resp proto.SvcResponse, err error) {
				remaining--
				if err == nil {
					if rep, ok := resp.(*proto.DHTFetchReply); ok && rep.Found {
						if !found || rep.Version > best.Version ||
							(rep.Version == best.Version && rep.Origin > best.Origin) {
							// Copy: the reply is recycled after this delivery.
							best.Value = append(best.Value[:0], rep.Value...)
							best.Version, best.Origin = rep.Version, rep.Origin
							found = true
						}
					}
				}
				if remaining == 0 {
					cb(found, best)
				}
			})
	}
}

// fetchReply builds a pooled found-reply carrying a copy of the record.
func (s *Service) fetchReply(rec *record) *proto.DHTFetchReply {
	rep := proto.AcquireDHTFetchReply()
	rep.Found = true
	rep.Value = append(rep.Value[:0], rec.value...)
	rep.Version, rep.Origin = rec.version, rec.origin
	return rep
}

// handleReplicate merges a pushed copy; ReqID zero is fire-and-forget.
// With the hot-key cache on, a fire-and-forget push for a key outside
// this node's replica set is a fan-out copy, filed in the cache rather
// than the authoritative store — it must not become a durable orphan the
// maintenance loop then tries to hand back. Acked pushes (handoff) and
// pushes we are genuinely in the replica set for merge as before.
func (s *Service) handleReplicate(from uint64, req proto.SvcRequest, respond func(proto.SvcResponse)) {
	m := req.(*proto.DHTReplicate)
	if m.Cache {
		// Fan-out copy: cache it, never adopt it as an authoritative
		// replica — adopting would leave this node believing a "closer
		// owner" exists and re-handing the record off every maintenance
		// tick. The one exception is a key this node already holds for
		// real (it is in the replica set and the push carries a newer
		// version): the ordinary merge keeps the authoritative copy
		// current.
		if _, held := s.recs[m.Key]; held {
			s.merge(m.Key, m.Value, m.Version, m.Origin)
		} else {
			s.cacheMerge(m.Key, m.Value, m.Version, m.Origin)
		}
		respond(nil)
		return
	}
	stored := s.merge(m.Key, m.Value, m.Version, m.Origin)
	if m.ReqID == 0 {
		respond(nil)
		return
	}
	ack := proto.AcquireDHTReplicateAck()
	ack.Stored = stored
	respond(ack)
}

// --- replica maintenance ----------------------------------------------------

// maintainTick walks the local records (deterministic key order): records
// this node still owns are re-pushed to the current replica set when the
// neighbourhood or the version changed since the last push; records a
// known closer node should own are handed off.
func (s *Service) maintainTick() {
	if s.HotCache {
		s.fanoutTick()
	}
	if !s.ActiveRepair || len(s.keys) == 0 {
		return
	}
	sig := s.ringSig()
	for _, k := range s.keys {
		rec, ok := s.recs[k]
		if !ok {
			continue
		}
		if best, betterOwner := s.closerOwner(k); betterOwner {
			s.handoff(k, rec, best)
			continue
		}
		if rec.pushedSig == sig && rec.pushedVersion == rec.version {
			continue
		}
		s.pushReplicas(k, rec)
		rec.pushedSig, rec.pushedVersion = sig, rec.version
	}
}

// pushReplicas sends fire-and-forget copies of rec to the key's current
// replica targets. Each push gets its own message and value copy: in the
// simulator payloads travel by reference, and the record may be rewritten
// while the datagram is in flight.
func (s *Service) pushReplicas(k idspace.ID, rec *record) {
	for _, tgt := range s.replicaTargets(k) {
		m := &proto.DHTReplicate{
			From:    s.node.Ref(),
			Key:     k,
			Value:   append([]byte(nil), rec.value...),
			Version: rec.version,
			Origin:  rec.origin,
		}
		s.Stats.Replicas++
		s.node.Send(tgt.Addr, m)
	}
}

// handoff pushes rec to a closer node (the believed new owner) and, once
// acknowledged, drops the local copy if this node is outside the replica
// set — so records migrate toward joiners instead of being lost when the
// old owner eventually departs.
func (s *Service) handoff(k idspace.ID, rec *record, owner proto.NodeRef) {
	s.Stats.Handoffs++
	pushedVersion := rec.version
	m := &proto.DHTReplicate{
		Key:     k,
		Value:   append([]byte(nil), rec.value...),
		Version: rec.version,
		Origin:  rec.origin,
	}
	s.plane.Call(owner.Addr, m, svc.CallOpts{Timeout: s.RequestTimeout, Retries: 1},
		func(resp proto.SvcResponse, err error) {
			if err != nil {
				return // keep the copy; next tick retries
			}
			cur, ok := s.recs[k]
			if !ok || cur.version != pushedVersion {
				return // rewritten while in flight; next tick reconsiders
			}
			if s.withinReplicaSet(k) {
				return
			}
			s.drop(k)
		})
}

// ReplicaTargets returns up to ReplicationFactor-1 fresh ring contacts
// nearest to k: the replica set this node would push to as owner, and the
// consult set it would query on a miss. The slice is a shared scratch
// buffer; callers must not retain it across another call into the service.
// Exposed for the scenario engine's durability checker, which mirrors the
// Get path statically.
func (s *Service) ReplicaTargets(k idspace.ID) []proto.NodeRef { return s.replicaTargets(k) }

func (s *Service) replicaTargets(k idspace.ID) []proto.NodeRef {
	want := s.ReplicationFactor - 1
	if want <= 0 {
		return nil
	}
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	// Collect up to `want` fresh contacts from each side, then keep the
	// `want` nearest by distance. The ID space is a line, not a ring: a
	// key near an extreme has fewer (or no) contacts on one side, and
	// taking a fixed count per side would under-replicate it — the far
	// side must make up the difference.
	out := l0.AppendNeighborsFreshK(s.scratch[:0], k, now, ttl, want, true)
	out = l0.AppendNeighborsFreshK(out, k, now, ttl, want, false)
	self := s.node.Addr()
	n := 0
	for _, r := range out {
		if r.Addr != self {
			out[n] = r
			n++
		}
	}
	out = out[:n]
	// Insertion sort by (distance, ID, Addr): at most 2·want tiny entries.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && replicaCloser(out[j], out[j-1], k); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if len(out) > want {
		out = out[:want]
	}
	s.scratch = out
	return out
}

// replicaCloser orders replica candidates by distance to k with a
// deterministic (ID, Addr) tiebreak.
func replicaCloser(a, b proto.NodeRef, k idspace.ID) bool {
	da, db := idspace.Dist(a.ID, k), idspace.Dist(b.ID, k)
	if da != db {
		return da < db
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Addr < b.Addr
}

// closerOwner reports whether a known *fresh* level-0 contact is strictly
// closer to k than this node (with the deterministic ID tiebreak), i.e.
// whether the key has a better owner to hand off to. Staleness matters:
// handing off to a dead-but-unexpired neighbour burns the call's retries
// for nothing.
func (s *Service) closerOwner(k idspace.ID) (proto.NodeRef, bool) {
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	dSelf := idspace.Dist(s.node.ID(), k)
	selfID := s.node.ID()
	var best proto.NodeRef
	var bestD uint64
	found := false
	for _, r := range l0.Refs() {
		if r.Addr == s.node.Addr() {
			continue
		}
		e := l0.Get(r.Addr)
		if e == nil || !e.DirectFresh(now, ttl) {
			continue
		}
		d := idspace.Dist(r.ID, k)
		if d > dSelf || (d == dSelf && r.ID >= selfID) {
			continue
		}
		if !found || d < bestD || (d == bestD && r.ID < best.ID) {
			best, bestD, found = r, d, true
		}
	}
	return best, found
}

// withinReplicaSet reports whether this node is among the
// ReplicationFactor nearest *fresh* holders of k (itself plus level-0
// contacts), i.e. still responsible for keeping a copy. Only direct-fresh
// contacts count: a dead-but-unexpired neighbour must not displace a live
// replica, or churn concentrates every copy on one node (the survivors
// each see the corpses as "closer" and drop) and a single further failure
// loses the record.
func (s *Service) withinReplicaSet(k idspace.ID) bool {
	l0 := s.node.Table().Level0
	now, ttl := s.node.Now(), s.node.Config().EntryTTL
	dSelf := idspace.Dist(s.node.ID(), k)
	selfID := s.node.ID()
	closer := 0
	for _, r := range l0.Refs() {
		if r.Addr == s.node.Addr() {
			continue
		}
		e := l0.Get(r.Addr)
		if e == nil || !e.DirectFresh(now, ttl) {
			continue
		}
		d := idspace.Dist(r.ID, k)
		if d < dSelf || (d == dSelf && r.ID < selfID) {
			closer++
			if closer >= s.ReplicationFactor {
				return false
			}
		}
	}
	return true
}

// ringSig hashes the current replica neighbourhood of this node's own
// coordinate; a changed signature means a replica died or a new neighbour
// joined, and every owned record needs a re-push.
func (s *Service) ringSig() uint64 {
	var h maphash.Hash
	h.SetSeed(sigSeed)
	for _, r := range s.replicaTargets(s.node.ID()) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(r.Addr >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}
