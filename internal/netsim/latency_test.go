package netsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestFixedLatency(t *testing.T) {
	m := FixedLatency(7 * time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if d := m.Delay(1, 2, rng); d != 7*time.Millisecond {
			t.Fatalf("delay %v", d)
		}
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	m := UniformLatency{Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		d := m.Delay(1, 2, rng)
		if d < m.Min || d > m.Max {
			t.Fatalf("delay %v outside [%v,%v]", d, m.Min, m.Max)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Errorf("uniform latency not dispersed: %d distinct values", len(seen))
	}
	degenerate := UniformLatency{Min: 5 * time.Millisecond, Max: 5 * time.Millisecond}
	if d := degenerate.Delay(1, 2, rng); d != 5*time.Millisecond {
		t.Errorf("degenerate uniform = %v", d)
	}
}

func TestClusteredLatency(t *testing.T) {
	m := ClusteredLatency{ClusterSize: 10, Near: 2 * time.Millisecond, Far: 50 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	var nearSum, farSum time.Duration
	const n = 500
	for i := 0; i < n; i++ {
		nearSum += m.Delay(1, 2, rng)   // same cluster (0)
		farSum += m.Delay(1, 2000, rng) // different cluster
	}
	if nearSum/n >= farSum/n {
		t.Fatalf("near avg %v should be < far avg %v", nearSum/n, farSum/n)
	}
	for i := 0; i < 100; i++ {
		if d := m.Delay(1, 999, rng); d < 0 {
			t.Fatal("negative delay")
		}
	}
	zero := ClusteredLatency{ClusterSize: 10}
	if d := zero.Delay(1, 2, rng); d != 0 {
		t.Errorf("zero-base latency should be 0, got %v", d)
	}
}
