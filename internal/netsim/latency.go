package netsim

import (
	"math/rand"
	"time"
)

// LatencyModel produces one-way datagram delays.
type LatencyModel interface {
	Delay(from, to Addr, rng *rand.Rand) time.Duration
}

// Floorer is implemented by latency models that can state a lower bound
// on every delay they produce. The sharded engine's lookahead — the
// epoch length of the conservative parallel simulation — is exactly this
// floor, so sharded networks require their model to implement it with a
// positive value.
type Floorer interface {
	Floor() time.Duration
}

// FixedLatency delays every datagram by the same amount; the right model
// for analytical checks because hop counts translate linearly to time.
type FixedLatency time.Duration

// Delay implements LatencyModel.
func (f FixedLatency) Delay(_, _ Addr, _ *rand.Rand) time.Duration { return time.Duration(f) }

// Floor implements Floorer: every delay is the fixed value.
func (f FixedLatency) Floor() time.Duration { return time.Duration(f) }

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(_, _ Addr, rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// Floor implements Floorer: no draw undercuts Min.
func (u UniformLatency) Floor() time.Duration { return u.Min }

// ClusteredLatency models a two-tier topology: endpoints whose addresses
// fall in the same cluster (addr / ClusterSize) see Near latency, others
// see Far latency, each with ±25% jitter. It is a cheap stand-in for the
// LAN/WAN mix of a grid deployment (the paper targets grid middleware).
type ClusteredLatency struct {
	ClusterSize uint64
	Near, Far   time.Duration
}

// Delay implements LatencyModel.
func (c ClusteredLatency) Delay(from, to Addr, rng *rand.Rand) time.Duration {
	base := c.Far
	if c.ClusterSize > 0 && uint64(from)/c.ClusterSize == uint64(to)/c.ClusterSize {
		base = c.Near
	}
	if base <= 0 {
		return 0
	}
	jitter := time.Duration(rng.Int63n(int64(base)/2+1)) - base/4
	d := base + jitter
	if d < 0 {
		d = 0
	}
	return d
}

// Floor implements Floorer: the jitter never subtracts more than a
// quarter of the base, and the near tier is the smaller base.
func (c ClusteredLatency) Floor() time.Duration {
	base := c.Far
	if c.ClusterSize > 0 && c.Near < base {
		base = c.Near
	}
	return base - base/4
}
