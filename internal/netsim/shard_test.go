package netsim

import (
	"testing"
	"time"
)

// shardOfEp spreads test endpoints round-robin over shards; any fixed
// assignment works — the determinism tests only require that the
// *digests* agree across different placements, not that the placements
// themselves match.
func shardOfEp(i, shards int) int { return i % shards }

// TestShardedDelivery checks the basic sharded datagram path: send from
// one shard, arrive on another at exactly the fixed latency, with the
// per-shard stats summing correctly.
func TestShardedDelivery(t *testing.T) {
	n := NewSharded(1, 2, WithLatency(FixedLatency(5*time.Millisecond)))
	defer n.Engine().Close()
	var got []rec
	a := n.AttachOn(0, func(from Addr, p interface{}, size int) {})
	// Handlers run mid-epoch on their shard's worker: the shard kernel's
	// clock is the authoritative "now" there (Engine.Now() is the parked
	// barrier time, which lags inside an epoch).
	b := n.AttachOn(1, func(from Addr, p interface{}, size int) {
		got = append(got, rec{from, p, size, n.Engine().Shard(1).Now()})
	})
	if n.ShardOf(a) != 0 || n.ShardOf(b) != 1 {
		t.Fatalf("placement: ShardOf(a)=%d ShardOf(b)=%d", n.ShardOf(a), n.ShardOf(b))
	}
	n.Send(a, b, "hello", 5)
	if err := n.Engine().RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	r := got[0]
	if r.from != a || r.payload != "hello" || r.size != 5 || r.at != 5*time.Millisecond {
		t.Fatalf("bad delivery %+v", r)
	}
	if s := n.Stats(); s.Sent != 1 || s.Delivered != 1 || s.Bytes != 5 {
		t.Fatalf("stats %+v", s)
	}
}

// TestShardedNetworkDeterminism drives a ping-pong mesh — handlers
// resend from shard workers, the control plane injects bursts between
// runs — and requires per-endpoint arrival digests to be identical at
// every shard count, under loss and jittered latency.
func TestShardedNetworkDeterminism(t *testing.T) {
	const eps = 12
	digest := func(shards int) [eps]uint64 {
		n := NewSharded(7, shards,
			WithLoss(0.1),
			WithLatency(UniformLatency{Min: 2 * time.Millisecond, Max: 20 * time.Millisecond}))
		defer n.Engine().Close()
		var dig [eps]uint64
		addrs := make([]Addr, eps)
		for i := 0; i < eps; i++ {
			i := i
			sh := shardOfEp(i, shards)
			addrs[i] = n.AttachOn(sh, func(from Addr, p interface{}, size int) {
				// Order-sensitive fold over (arrival time, sender, value):
				// any reordering of this endpoint's arrivals changes the
				// digest. The shard kernel's clock is the in-epoch "now".
				h := dig[i]
				h = (h*1099511628211 ^ uint64(from)) + uint64(n.Engine().Shard(sh).Now())
				h = h*1099511628211 ^ uint64(p.(int))
				dig[i] = h
				// Bounce a decremented token to the next endpoint; the
				// resend happens on this endpoint's shard worker.
				if v := p.(int); v > 0 {
					n.Send(addrs[i], addrs[(i+1)%eps], v-1, size)
				}
			})
		}
		for round := 0; round < 5; round++ {
			for i, a := range addrs {
				n.Send(a, addrs[(i+eps/2)%eps], 8, 16)
			}
			if err := n.Engine().RunFor(300 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		return dig
	}
	want := digest(1)
	for _, shards := range []int{2, 4} {
		if got := digest(shards); got != want {
			t.Fatalf("digest mismatch at %d shards:\n got %v\nwant %v", shards, got, want)
		}
	}
}

// TestShardedNeedsFloor pins the lookahead precondition: a latency model
// that can produce zero delay cannot bound epochs, so construction must
// refuse it rather than silently losing causality.
func TestShardedNeedsFloor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero latency floor")
		}
	}()
	NewSharded(1, 2, WithLatency(FixedLatency(0)))
}
