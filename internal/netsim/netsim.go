// Package netsim simulates a UDP/IP substrate on top of the sim kernel.
//
// TreeP is "a UDP based overlay architecture" (§III); its evaluation is a
// packet-switching simulation in which "routing decisions are made locally
// to each node without knowledge of the global state of the network" (§IV).
// netsim supplies exactly that: unreliable, unordered, best-effort datagram
// delivery between addressable endpoints, with configurable latency and
// loss models, node failure injection, and per-message accounting.
//
// The package is protocol-agnostic — the TreeP overlay, the Chord baseline
// and the flooding baseline all run unmodified on top of it. Payloads
// travel as Go values (zero-copy) for simulation speed; wire fidelity is
// covered by the proto package's codec tests and by the real UDP transport.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"treep/internal/idspace"
	"treep/internal/sim"
)

// Addr identifies an endpoint. Address 0 is reserved as "no address".
type Addr uint64

// NoAddr is the zero, invalid address.
const NoAddr Addr = 0

// String implements fmt.Stringer.
func (a Addr) String() string { return fmt.Sprintf("addr(%d)", uint64(a)) }

// Handler receives datagrams addressed to an endpoint.
type Handler func(from Addr, payload interface{}, size int)

// Stats aggregates network-wide message accounting.
type Stats struct {
	Sent         uint64 // datagrams handed to the network
	Delivered    uint64 // datagrams delivered to a live endpoint
	LostRandom   uint64 // dropped by the loss model
	LostDead     uint64 // addressed to a dead or unknown endpoint
	LostFiltered uint64 // dropped by the link filter (partitions)
	Bytes        uint64 // wire bytes of all sent datagrams
}

// TraceEvent describes one datagram for the optional trace hook.
type TraceEvent struct {
	At       time.Duration
	From, To Addr
	Size     int
	Payload  interface{}
	Dropped  bool
	Reason   string // "", "loss", "dead", "mtu", "filtered"
}

// Network is a simulated datagram network. It is not safe for concurrent
// use; one network belongs to one sim.Kernel and runs on its event loop.
type Network struct {
	kernel  *sim.Kernel
	latency LatencyModel
	// lossRate is the probability a datagram is silently dropped in flight.
	lossRate float64
	rng      *rand.Rand
	// eps is indexed by address: Attach hands out sequential addresses
	// starting at 1 (slot 0 is NoAddr), so endpoint resolution on the
	// per-datagram path is an array index, not a map probe.
	eps   []*endpoint
	stats Stats
	trace func(TraceEvent)
	// mtu drops datagrams larger than this size when > 0, mirroring the
	// 64 KiB UDP limit by default.
	mtu int
	// linkFilter, when set, vetoes individual links: a datagram is dropped
	// in flight when the filter returns false for its (from, to) pair.
	// Scenario tools use it to simulate network partitions.
	linkFilter func(from, to Addr) bool
	// freeDeliveries pools in-flight datagram records so the per-datagram
	// hot path (one delivery event per Send) does not allocate.
	freeDeliveries *delivery
}

// recyclable matches payloads that want to be returned to a pool once
// the network is finished with them (see proto.Recyclable). Recycling is
// suppressed while a trace hook is installed: trace consumers may retain
// payloads beyond the delivery instant.
type recyclable interface{ Recycle() }

// release recycles a payload whose datagram life has ended (delivered or
// dropped), unless tracing retains payloads.
func (n *Network) release(payload interface{}) {
	if n.trace != nil {
		return
	}
	if r, ok := payload.(recyclable); ok {
		r.Recycle()
	}
}

// delivery is one in-flight datagram, scheduled through the kernel's
// closure-free dispatch path and recycled on arrival.
type delivery struct {
	net     *Network
	ep      *endpoint
	from    Addr
	payload interface{}
	size    int
	next    *delivery
}

// deliverDatagram is the single dispatch function for every in-flight
// datagram (sim.Kernel.Post's handler; no per-datagram closure).
func deliverDatagram(arg interface{}) { arg.(*delivery).deliver() }

func (d *delivery) deliver() {
	n, ep, from, payload, size := d.net, d.ep, d.from, d.payload, d.size
	d.net, d.ep, d.payload = nil, nil, nil
	d.next = n.freeDeliveries
	n.freeDeliveries = d

	// Liveness is checked at arrival, not at send: UDP gives the sender
	// no feedback, so a datagram to a dead host leaves the sender
	// normally and vanishes in the network.
	if !ep.alive {
		n.stats.LostDead++
		if n.trace != nil {
			n.trace(TraceEvent{At: n.kernel.Now(), From: from, To: ep.addr, Size: size, Payload: payload, Dropped: true, Reason: "dead"})
		}
		n.release(payload)
		return
	}
	n.stats.Delivered++
	ep.handler(from, payload, size)
	n.release(payload)
}

type endpoint struct {
	addr    Addr
	handler Handler
	alive   bool
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the latency model (default: Uniform 10–60 ms, roughly a
// wide-area mix).
func WithLatency(m LatencyModel) Option { return func(n *Network) { n.latency = m } }

// WithLoss sets the random loss probability in [0,1).
func WithLoss(p float64) Option { return func(n *Network) { n.lossRate = p } }

// WithMTU sets the maximum datagram size in bytes (0 disables the check).
func WithMTU(mtu int) Option { return func(n *Network) { n.mtu = mtu } }

// WithTrace installs a hook invoked for every datagram send.
func WithTrace(fn func(TraceEvent)) Option { return func(n *Network) { n.trace = fn } }

// New creates a network bound to the kernel.
func New(k *sim.Kernel, opts ...Option) *Network {
	n := &Network{
		kernel:  k,
		latency: UniformLatency{Min: 10 * time.Millisecond, Max: 60 * time.Millisecond},
		rng:     k.Stream(0x6e6574), // "net"
		eps:     []*endpoint{nil},   // slot 0 = NoAddr
		mtu:     64 << 10,
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Kernel returns the kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Attach registers a new endpoint and returns its address. The handler is
// invoked from the kernel's event loop for each delivered datagram.
func (n *Network) Attach(h Handler) Addr {
	if h == nil {
		panic("netsim: Attach with nil handler")
	}
	a := Addr(len(n.eps))
	n.eps = append(n.eps, &endpoint{addr: a, handler: h, alive: true})
	return a
}

// ep resolves an address to its endpoint, or nil.
func (n *Network) ep(a Addr) *endpoint {
	if a == NoAddr || int(a) >= len(n.eps) {
		return nil
	}
	return n.eps[a]
}

// SetHandler replaces the handler of an existing endpoint (used by runtimes
// that attach before constructing the protocol state machine).
func (n *Network) SetHandler(a Addr, h Handler) {
	ep := n.ep(a)
	if ep == nil {
		panic(fmt.Sprintf("netsim: SetHandler on unknown %v", a))
	}
	ep.handler = h
}

// Kill marks the endpoint dead: it stops receiving, and datagrams to it are
// dropped. In-flight datagrams scheduled before the kill are also dropped on
// arrival (the process is gone). Killing an unknown or dead endpoint is a
// no-op so failure injectors can be sloppy.
func (n *Network) Kill(a Addr) {
	if ep := n.ep(a); ep != nil {
		ep.alive = false
	}
}

// Revive brings a killed endpoint back (node restart). The endpoint keeps
// its address and handler.
func (n *Network) Revive(a Addr) {
	if ep := n.ep(a); ep != nil {
		ep.alive = true
	}
}

// SetLinkFilter installs (or, with nil, removes) a per-link veto: while
// set, a datagram is silently dropped when fn(from, to) is false. The
// filter models partitions and asymmetric connectivity failures; it is
// consulted at send time, like a routing black hole between the sides.
func (n *Network) SetLinkFilter(fn func(from, to Addr) bool) { n.linkFilter = fn }

// SplitFilter builds a link filter that partitions endpoints into two
// sides at an overlay coordinate: a datagram passes only when both ends
// sit on the same side of split. idOf resolves an endpoint's overlay ID;
// endpoints it cannot resolve pass unconditionally. Sides are resolved
// lazily at send time, so nodes attached mid-partition are partitioned
// correctly too. Every overlay backend shares this one implementation:
//
//	net.SetLinkFilter(netsim.SplitFilter(split, idOf))
func SplitFilter(split idspace.ID, idOf func(Addr) (idspace.ID, bool)) func(from, to Addr) bool {
	return func(from, to Addr) bool {
		a, aok := idOf(from)
		b, bok := idOf(to)
		if !aok || !bok {
			return true
		}
		return (a <= split) == (b <= split)
	}
}

// Alive reports whether the endpoint exists and is live.
func (n *Network) Alive(a Addr) bool {
	ep := n.ep(a)
	return ep != nil && ep.alive
}

// Size returns the number of attached endpoints (live or dead).
func (n *Network) Size() int { return len(n.eps) - 1 }

// Stats returns a copy of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the counters (used between experiment phases so that
// steady-state maintenance traffic is not charged to the lookup phase).
func (n *Network) ResetStats() { n.stats = Stats{} }

// Send transmits one datagram. Delivery is best-effort: the datagram may be
// dropped by the loss model, because the destination is dead, or because it
// exceeds the MTU. size is the datagram's wire size in bytes (payload is
// carried by reference for speed; see package comment). The in-flight leg
// is a pooled record dispatched through the kernel's closure-free path, so
// steady-state traffic does not allocate per datagram.
func (n *Network) Send(from, to Addr, payload interface{}, size int) {
	n.stats.Sent++
	n.stats.Bytes += uint64(size)

	if n.mtu > 0 && size > n.mtu {
		n.stats.LostDead++ // accounted as undeliverable
		n.traceDrop(from, to, payload, size, "mtu")
		n.release(payload)
		return
	}
	ep := n.ep(to)
	if ep == nil {
		n.stats.LostDead++
		n.traceDrop(from, to, payload, size, "dead")
		n.release(payload)
		return
	}
	if n.linkFilter != nil && !n.linkFilter(from, to) {
		n.stats.LostFiltered++
		n.traceDrop(from, to, payload, size, "filtered")
		n.release(payload)
		return
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		n.stats.LostRandom++
		n.traceDrop(from, to, payload, size, "loss")
		n.release(payload)
		return
	}
	if n.trace != nil {
		n.trace(TraceEvent{At: n.kernel.Now(), From: from, To: to, Size: size, Payload: payload})
	}
	delay := n.latency.Delay(from, to, n.rng)
	d := n.freeDeliveries
	if d == nil {
		d = &delivery{}
	} else {
		n.freeDeliveries = d.next
		d.next = nil
	}
	d.net, d.ep, d.from, d.payload, d.size = n, ep, from, payload, size
	n.kernel.Post(delay, deliverDatagram, d)
}

func (n *Network) traceDrop(from, to Addr, payload interface{}, size int, reason string) {
	if n.trace != nil {
		n.trace(TraceEvent{At: n.kernel.Now(), From: from, To: to, Size: size, Payload: payload, Dropped: true, Reason: reason})
	}
}
