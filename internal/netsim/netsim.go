// Package netsim simulates a UDP/IP substrate on top of the sim kernel.
//
// TreeP is "a UDP based overlay architecture" (§III); its evaluation is a
// packet-switching simulation in which "routing decisions are made locally
// to each node without knowledge of the global state of the network" (§IV).
// netsim supplies exactly that: unreliable, unordered, best-effort datagram
// delivery between addressable endpoints, with configurable latency and
// loss models, node failure injection, and per-message accounting.
//
// The package is protocol-agnostic — the TreeP overlay, the Chord baseline
// and the flooding baseline all run unmodified on top of it. Payloads
// travel as Go values (zero-copy) for simulation speed; wire fidelity is
// covered by the proto package's codec tests and by the real UDP transport.
//
// A network runs in one of two modes. Classic (New): one sim.Kernel, one
// global latency/loss stream, strictly single-threaded — the reference
// semantics every pre-sharding experiment was recorded under. Sharded
// (NewSharded): endpoints are pinned to shards of a sim.Sharded engine,
// every datagram travels through the engine's deterministic barrier
// exchange keyed by (due time, origin endpoint, per-origin sequence), and
// latency/loss draws come from per-origin streams so the draw sequence —
// and therefore the entire run — is invariant under the shard count. The
// two modes share the drop/accounting semantics but not their random
// streams: classic consumes one global stream in global send order, which
// no parallel schedule can reproduce, so classic and sharded runs of the
// same seed are each internally deterministic but differ from each other.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"treep/internal/idspace"
	"treep/internal/sim"
)

// Addr identifies an endpoint. Address 0 is reserved as "no address".
type Addr uint64

// NoAddr is the zero, invalid address.
const NoAddr Addr = 0

// String implements fmt.Stringer.
func (a Addr) String() string { return fmt.Sprintf("addr(%d)", uint64(a)) }

// Handler receives datagrams addressed to an endpoint.
type Handler func(from Addr, payload interface{}, size int)

// Stats aggregates network-wide message accounting.
type Stats struct {
	Sent         uint64 // datagrams handed to the network
	Delivered    uint64 // datagrams delivered to a live endpoint
	LostRandom   uint64 // dropped by the loss model
	LostDead     uint64 // addressed to a dead or unknown endpoint
	LostFiltered uint64 // dropped by the link filter (partitions)
	Bytes        uint64 // wire bytes of all sent datagrams
}

// add folds another counter set in (sharded-mode aggregation).
func (s *Stats) add(o Stats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.LostRandom += o.LostRandom
	s.LostDead += o.LostDead
	s.LostFiltered += o.LostFiltered
	s.Bytes += o.Bytes
}

// TraceEvent describes one datagram for the optional trace hook.
type TraceEvent struct {
	At       time.Duration
	From, To Addr
	Size     int
	Payload  interface{}
	Dropped  bool
	Reason   string // "", "loss", "dead", "mtu", "filtered"
}

// Network is a simulated datagram network. In classic mode it is not safe
// for concurrent use; one network belongs to one sim.Kernel and runs on
// its event loop. In sharded mode the per-endpoint state is struct-of-
// arrays so shard workers touch disjoint contiguous slots, and the only
// cross-shard traffic is the engine's barrier exchange; construction and
// topology changes (Attach, Kill, Revive, SetLinkFilter, Stats) remain
// control-plane-only, between engine runs.
type Network struct {
	kernel  *sim.Kernel
	latency LatencyModel
	// lossRate is the probability a datagram is silently dropped in flight.
	lossRate float64
	// rng draws loss and latency in classic mode: one global stream,
	// consumed in global send order.
	rng *rand.Rand

	// Endpoint state, indexed by address (slot 0 = NoAddr): Attach hands
	// out sequential addresses, so the per-datagram path is an array
	// index, not a map probe. Struct-of-arrays rather than a slice of
	// endpoint structs: the delivery path reads alive then handler, and
	// in sharded mode the slabs keep each shard's slots contiguous.
	handlers []Handler
	epAlive  []bool

	stats Stats
	trace func(TraceEvent)
	// mtu drops datagrams larger than this size when > 0, mirroring the
	// 64 KiB UDP limit by default.
	mtu int
	// linkFilter, when set, vetoes individual links: a datagram is dropped
	// in flight when the filter returns false for its (from, to) pair.
	// Scenario tools use it to simulate network partitions.
	linkFilter func(from, to Addr) bool
	// freeDeliveries pools in-flight datagram records so the per-datagram
	// hot path (one delivery event per Send) does not allocate.
	freeDeliveries *delivery

	// Sharded mode (nil engine = classic).
	engine *sim.Sharded
	// floor is the latency model's minimum one-way delay — the engine's
	// lookahead. Draws are clamped to it defensively; for the shipped
	// models the clamp never binds.
	floor time.Duration
	// epShard pins each endpoint to its shard.
	epShard []int32
	// originSeq / originRng give each origin endpoint its own send
	// ordinal and latency/loss stream. The ordinal is the exchange merge
	// key; the stream makes draw order per-origin (each origin's sends
	// are totally ordered by its own execution), so neither depends on
	// how endpoints are placed across shards.
	originSeq []uint64
	originRng []*rand.Rand
	// shardStats / shardFree are per-shard counter and free-list slabs:
	// send-side counters belong to the origin's shard, arrival-side to
	// the destination's, so no counter is written by two workers.
	shardStats []Stats
	shardFree  []*delivery
}

// recyclable matches payloads that want to be returned to a pool once
// the network is finished with them (see proto.Recyclable). Recycling is
// suppressed while a trace hook is installed: trace consumers may retain
// payloads beyond the delivery instant.
type recyclable interface{ Recycle() }

// release recycles a payload whose datagram life has ended (delivered or
// dropped), unless tracing retains payloads.
func (n *Network) release(payload interface{}) {
	if n.trace != nil {
		return
	}
	if r, ok := payload.(recyclable); ok {
		r.Recycle()
	}
}

// delivery is one in-flight datagram, scheduled through the kernel's
// closure-free dispatch path and recycled on arrival. shard is the
// destination shard whose free list owns the record (-1 in classic
// mode): records never migrate between shards, so recycling needs no
// atomics.
type delivery struct {
	net     *Network
	from    Addr
	to      Addr
	payload interface{}
	size    int
	shard   int32
	next    *delivery
}

// deliverDatagram is the single dispatch function for every in-flight
// datagram (sim.Kernel.Post's handler; no per-datagram closure).
func deliverDatagram(arg interface{}) { arg.(*delivery).deliver() }

func (d *delivery) deliver() {
	n, from, to, payload, size, shard := d.net, d.from, d.to, d.payload, d.size, d.shard
	d.net, d.payload = nil, nil
	if shard >= 0 {
		d.next = n.shardFree[shard]
		n.shardFree[shard] = d
	} else {
		d.next = n.freeDeliveries
		n.freeDeliveries = d
	}

	stats := &n.stats
	if shard >= 0 {
		stats = &n.shardStats[shard]
	}
	// Liveness is checked at arrival, not at send: UDP gives the sender
	// no feedback, so a datagram to a dead host leaves the sender
	// normally and vanishes in the network.
	if !n.epAlive[to] {
		stats.LostDead++
		if n.trace != nil {
			n.trace(TraceEvent{At: n.kernel.Now(), From: from, To: to, Size: size, Payload: payload, Dropped: true, Reason: "dead"})
		}
		n.release(payload)
		return
	}
	stats.Delivered++
	n.handlers[to](from, payload, size)
	n.release(payload)
}

// Option configures a Network.
type Option func(*Network)

// WithLatency sets the latency model (default: Uniform 10–60 ms, roughly a
// wide-area mix).
func WithLatency(m LatencyModel) Option { return func(n *Network) { n.latency = m } }

// WithLoss sets the random loss probability in [0,1).
func WithLoss(p float64) Option { return func(n *Network) { n.lossRate = p } }

// WithMTU sets the maximum datagram size in bytes (0 disables the check).
func WithMTU(mtu int) Option { return func(n *Network) { n.mtu = mtu } }

// WithTrace installs a hook invoked for every datagram send.
func WithTrace(fn func(TraceEvent)) Option { return func(n *Network) { n.trace = fn } }

// New creates a classic single-threaded network bound to the kernel.
func New(k *sim.Kernel, opts ...Option) *Network {
	n := &Network{
		kernel:   k,
		latency:  UniformLatency{Min: 10 * time.Millisecond, Max: 60 * time.Millisecond},
		rng:      k.Stream(0x6e6574), // "net"
		handlers: []Handler{nil},     // slot 0 = NoAddr
		epAlive:  []bool{false},
		mtu:      64 << 10,
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// NewSharded creates a sharded network: it builds the sim.Sharded engine
// itself, because the engine's lookahead is the latency model's floor and
// the model arrives through the options. The latency model must implement
// Floorer with a positive floor (all shipped models do unless configured
// with zero minimum latency). Tracing is control-plane machinery and is
// not supported sharded.
func NewSharded(seed int64, shards int, opts ...Option) *Network {
	n := &Network{
		latency:  UniformLatency{Min: 10 * time.Millisecond, Max: 60 * time.Millisecond},
		handlers: []Handler{nil},
		epAlive:  []bool{false},
		mtu:      64 << 10,
	}
	for _, o := range opts {
		o(n)
	}
	if n.trace != nil {
		panic("netsim: tracing is not supported in sharded mode")
	}
	f, ok := n.latency.(Floorer)
	if !ok {
		panic(fmt.Sprintf("netsim: latency model %T has no Floor; sharding needs a latency lower bound", n.latency))
	}
	n.floor = f.Floor()
	if n.floor <= 0 {
		panic("netsim: latency floor must be positive to shard (zero-latency links serialize the world)")
	}
	n.engine = sim.NewSharded(seed, shards, n.floor)
	n.kernel = n.engine.Shard(0)
	n.epShard = []int32{0}
	n.originSeq = []uint64{0}
	n.originRng = []*rand.Rand{nil}
	n.shardStats = make([]Stats, shards)
	n.shardFree = make([]*delivery, shards)
	n.engine.SetExchange(n.exchange)
	return n
}

// Kernel returns the kernel the network runs on (shard 0's in sharded
// mode; prefer Engine there).
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Engine returns the sharded engine, or nil in classic mode.
func (n *Network) Engine() *sim.Sharded { return n.engine }

// Floor returns the latency floor the sharded engine runs on (zero in
// classic mode).
func (n *Network) Floor() time.Duration { return n.floor }

// Attach registers a new endpoint and returns its address. The handler is
// invoked from the kernel's event loop for each delivered datagram. In
// sharded mode the endpoint lands on shard 0; use AttachOn to place it.
func (n *Network) Attach(h Handler) Addr { return n.AttachOn(0, h) }

// AttachOn registers a new endpoint pinned to a shard (control plane
// only). In classic mode the shard must be 0.
func (n *Network) AttachOn(shard int, h Handler) Addr {
	if h == nil {
		panic("netsim: Attach with nil handler")
	}
	a := Addr(len(n.handlers))
	n.handlers = append(n.handlers, h)
	n.epAlive = append(n.epAlive, true)
	if n.engine == nil {
		if shard != 0 {
			panic("netsim: AttachOn with nonzero shard on a classic network")
		}
		return a
	}
	if shard < 0 || shard >= n.engine.Shards() {
		panic(fmt.Sprintf("netsim: AttachOn shard %d out of range", shard))
	}
	n.epShard = append(n.epShard, int32(shard))
	n.originSeq = append(n.originSeq, 0)
	// The origin stream's label embeds the address under a "net" prefix
	// (disjoint from node-env streams labelled by bare address and from
	// the four-byte control-plane labels); deriving it from the owning
	// shard's kernel is a locality choice only — every shard kernel
	// shares the seed, so placement cannot change the stream.
	n.originRng = append(n.originRng, n.engine.Shard(shard).Stream(0x6e6574<<40|uint64(a)))
	return a
}

// valid reports whether the address names an attached endpoint.
func (n *Network) valid(a Addr) bool { return a != NoAddr && int(a) < len(n.handlers) }

// ShardOf returns the shard an endpoint is pinned to (0 in classic mode).
func (n *Network) ShardOf(a Addr) int {
	if n.engine == nil || !n.valid(a) {
		return 0
	}
	return int(n.epShard[a])
}

// SetHandler replaces the handler of an existing endpoint (used by runtimes
// that attach before constructing the protocol state machine).
func (n *Network) SetHandler(a Addr, h Handler) {
	if !n.valid(a) {
		panic(fmt.Sprintf("netsim: SetHandler on unknown %v", a))
	}
	n.handlers[a] = h
}

// Kill marks the endpoint dead: it stops receiving, and datagrams to it are
// dropped. In-flight datagrams scheduled before the kill are also dropped on
// arrival (the process is gone). Killing an unknown or dead endpoint is a
// no-op so failure injectors can be sloppy.
func (n *Network) Kill(a Addr) {
	if n.valid(a) {
		n.epAlive[a] = false
	}
}

// Revive brings a killed endpoint back (node restart). The endpoint keeps
// its address and handler.
func (n *Network) Revive(a Addr) {
	if n.valid(a) {
		n.epAlive[a] = true
	}
}

// SetLinkFilter installs (or, with nil, removes) a per-link veto: while
// set, a datagram is silently dropped when fn(from, to) is false. The
// filter models partitions and asymmetric connectivity failures; it is
// consulted at send time, like a routing black hole between the sides.
// Sharded callers' filters must be read-only over state that only changes
// on the control plane (SplitFilter and PartitionBy qualify): the filter
// runs on shard workers.
func (n *Network) SetLinkFilter(fn func(from, to Addr) bool) { n.linkFilter = fn }

// SplitFilter builds a link filter that partitions endpoints into two
// sides at an overlay coordinate: a datagram passes only when both ends
// sit on the same side of split. idOf resolves an endpoint's overlay ID;
// endpoints it cannot resolve pass unconditionally. Sides are resolved
// lazily at send time, so nodes attached mid-partition are partitioned
// correctly too. Every overlay backend shares this one implementation:
//
//	net.SetLinkFilter(netsim.SplitFilter(split, idOf))
func SplitFilter(split idspace.ID, idOf func(Addr) (idspace.ID, bool)) func(from, to Addr) bool {
	return func(from, to Addr) bool {
		a, aok := idOf(from)
		b, bok := idOf(to)
		if !aok || !bok {
			return true
		}
		return (a <= split) == (b <= split)
	}
}

// Alive reports whether the endpoint exists and is live.
func (n *Network) Alive(a Addr) bool { return n.valid(a) && n.epAlive[a] }

// Size returns the number of attached endpoints (live or dead).
func (n *Network) Size() int { return len(n.handlers) - 1 }

// Stats returns a copy of the accumulated counters (summed across shards
// in sharded mode; control plane only).
func (n *Network) Stats() Stats {
	out := n.stats
	for i := range n.shardStats {
		out.add(n.shardStats[i])
	}
	return out
}

// ResetStats zeroes the counters (used between experiment phases so that
// steady-state maintenance traffic is not charged to the lookup phase).
func (n *Network) ResetStats() {
	n.stats = Stats{}
	for i := range n.shardStats {
		n.shardStats[i] = Stats{}
	}
}

// Send transmits one datagram. Delivery is best-effort: the datagram may be
// dropped by the loss model, because the destination is dead, or because it
// exceeds the MTU. size is the datagram's wire size in bytes (payload is
// carried by reference for speed; see package comment). The in-flight leg
// is a pooled record dispatched through the kernel's closure-free path, so
// steady-state traffic does not allocate per datagram.
func (n *Network) Send(from, to Addr, payload interface{}, size int) {
	if n.engine != nil {
		n.sendSharded(from, to, payload, size)
		return
	}
	n.stats.Sent++
	n.stats.Bytes += uint64(size)

	if n.mtu > 0 && size > n.mtu {
		n.stats.LostDead++ // accounted as undeliverable
		n.traceDrop(from, to, payload, size, "mtu")
		n.release(payload)
		return
	}
	if !n.valid(to) {
		n.stats.LostDead++
		n.traceDrop(from, to, payload, size, "dead")
		n.release(payload)
		return
	}
	if n.linkFilter != nil && !n.linkFilter(from, to) {
		n.stats.LostFiltered++
		n.traceDrop(from, to, payload, size, "filtered")
		n.release(payload)
		return
	}
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		n.stats.LostRandom++
		n.traceDrop(from, to, payload, size, "loss")
		n.release(payload)
		return
	}
	if n.trace != nil {
		n.trace(TraceEvent{At: n.kernel.Now(), From: from, To: to, Size: size, Payload: payload})
	}
	delay := n.latency.Delay(from, to, n.rng)
	d := n.freeDeliveries
	if d == nil {
		d = &delivery{shard: -1}
	} else {
		n.freeDeliveries = d.next
		d.next = nil
	}
	d.net, d.from, d.to, d.payload, d.size = n, from, to, payload, size
	n.kernel.Post(delay, deliverDatagram, d)
}

// sendSharded is Send on a sharded network: callable from the origin
// endpoint's shard worker (or the control plane while parked). It mirrors
// the classic drop semantics, but draws loss and latency from the origin's
// own stream, stamps the origin's send ordinal, and hands the datagram to
// the engine's barrier exchange instead of posting it directly — including
// for intra-shard traffic, so all same-instant deliveries share one
// placement-invariant order.
func (n *Network) sendSharded(from, to Addr, payload interface{}, size int) {
	os := int(n.epShard[from])
	st := &n.shardStats[os]
	st.Sent++
	st.Bytes += uint64(size)

	if n.mtu > 0 && size > n.mtu {
		st.LostDead++
		n.release(payload)
		return
	}
	if !n.valid(to) {
		st.LostDead++
		n.release(payload)
		return
	}
	if n.linkFilter != nil && !n.linkFilter(from, to) {
		st.LostFiltered++
		n.release(payload)
		return
	}
	rng := n.originRng[from]
	if n.lossRate > 0 && rng.Float64() < n.lossRate {
		st.LostRandom++
		n.release(payload)
		return
	}
	delay := n.latency.Delay(from, to, rng)
	if delay < n.floor {
		delay = n.floor
	}
	seq := n.originSeq[from]
	n.originSeq[from]++
	k := n.engine.Shard(os)
	n.engine.Exchange(os, int(n.epShard[to]), sim.XEvent{
		At:      k.Now() + delay,
		Origin:  uint64(from),
		Seq:     seq,
		To:      uint64(to),
		Size:    int32(size),
		Payload: payload,
	})
}

// exchange is the engine's release hook: it runs on the destination
// shard's worker and builds the in-flight delivery record from that
// shard's own free list — the origin never touches destination-owned
// memory, which is what keeps both free lists atomic-free.
func (n *Network) exchange(shard int, k *sim.Kernel, ev sim.XEvent) {
	d := n.shardFree[shard]
	if d == nil {
		d = &delivery{}
	} else {
		n.shardFree[shard] = d.next
		d.next = nil
	}
	d.net, d.from, d.to, d.payload, d.size, d.shard = n, Addr(ev.Origin), Addr(ev.To), ev.Payload, int(ev.Size), int32(shard)
	k.Post(ev.At-k.Now(), deliverDatagram, d)
}

func (n *Network) traceDrop(from, to Addr, payload interface{}, size int, reason string) {
	if n.trace != nil {
		n.trace(TraceEvent{At: n.kernel.Now(), From: from, To: to, Size: size, Payload: payload, Dropped: true, Reason: reason})
	}
}
