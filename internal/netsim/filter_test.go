package netsim

import (
	"testing"
	"time"

	"treep/internal/sim"
)

// TestLinkFilterDropsAndCounts verifies the per-link veto: filtered pairs
// lose their datagrams (counted as LostFiltered), unfiltered pairs
// deliver, and removing the filter restores the link.
func TestLinkFilterDropsAndCounts(t *testing.T) {
	k := sim.New(1)
	n := New(k, WithLatency(FixedLatency(time.Millisecond)))
	got := map[Addr]int{}
	a := n.Attach(func(from Addr, payload interface{}, size int) { got[1]++ })
	b := n.Attach(func(from Addr, payload interface{}, size int) { got[2]++ })
	c := n.Attach(func(from Addr, payload interface{}, size int) { got[3]++ })

	// Block only a→b.
	n.SetLinkFilter(func(from, to Addr) bool { return !(from == a && to == b) })
	n.Send(a, b, "x", 1)
	n.Send(a, c, "x", 1)
	n.Send(b, a, "x", 1)
	_ = k.RunFor(time.Second)
	if got[2] != 0 {
		t.Fatalf("filtered link delivered %d", got[2])
	}
	if got[3] != 1 || got[1] != 1 {
		t.Fatalf("unfiltered links: a=%d c=%d", got[1], got[3])
	}
	if s := n.Stats(); s.LostFiltered != 1 {
		t.Fatalf("LostFiltered = %d, want 1", s.LostFiltered)
	}

	n.SetLinkFilter(nil)
	n.Send(a, b, "x", 1)
	_ = k.RunFor(time.Second)
	if got[2] != 1 {
		t.Fatalf("link still dead after filter removal: %d", got[2])
	}
}
