package netsim

import (
	"testing"
	"time"

	"treep/internal/sim"
)

type rec struct {
	from    Addr
	payload interface{}
	size    int
	at      time.Duration
}

func setup(t *testing.T, opts ...Option) (*sim.Kernel, *Network, Addr, Addr, *[]rec) {
	t.Helper()
	k := sim.New(1)
	n := New(k, opts...)
	var got []rec
	a := n.Attach(func(from Addr, p interface{}, size int) {})
	b := n.Attach(func(from Addr, p interface{}, size int) {
		got = append(got, rec{from, p, size, k.Now()})
	})
	return k, n, a, b, &got
}

func TestDelivery(t *testing.T) {
	k, n, a, b, got := setup(t, WithLatency(FixedLatency(5*time.Millisecond)))
	n.Send(a, b, "hello", 5)
	k.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	r := (*got)[0]
	if r.from != a || r.payload != "hello" || r.size != 5 {
		t.Fatalf("bad delivery %+v", r)
	}
	if r.at != 5*time.Millisecond {
		t.Fatalf("arrival at %v, want 5ms", r.at)
	}
	s := n.Stats()
	if s.Sent != 1 || s.Delivered != 1 || s.Bytes != 5 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSendToUnknownAddr(t *testing.T) {
	k, n, a, _, _ := setup(t)
	n.Send(a, Addr(9999), "x", 1)
	k.Run()
	if s := n.Stats(); s.LostDead != 1 || s.Delivered != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestKillStopsDelivery(t *testing.T) {
	k, n, a, b, got := setup(t)
	n.Kill(b)
	n.Send(a, b, "x", 1)
	k.Run()
	if len(*got) != 0 {
		t.Fatal("dead endpoint received datagram")
	}
	if !n.Alive(a) || n.Alive(b) {
		t.Fatal("liveness flags wrong")
	}
	// Revive restores delivery.
	n.Revive(b)
	n.Send(a, b, "y", 1)
	k.Run()
	if len(*got) != 1 {
		t.Fatal("revived endpoint should receive")
	}
}

func TestKillDropsInFlight(t *testing.T) {
	k, n, a, b, got := setup(t, WithLatency(FixedLatency(10*time.Millisecond)))
	n.Send(a, b, "x", 1)
	// Kill while the datagram is in flight.
	k.Schedule(5*time.Millisecond, func() { n.Kill(b) })
	k.Run()
	if len(*got) != 0 {
		t.Fatal("in-flight datagram delivered to endpoint killed before arrival")
	}
	if s := n.Stats(); s.LostDead != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLossRate(t *testing.T) {
	k := sim.New(2)
	n := New(k, WithLoss(0.5), WithLatency(FixedLatency(time.Millisecond)))
	delivered := 0
	a := n.Attach(func(Addr, interface{}, int) {})
	b := n.Attach(func(Addr, interface{}, int) { delivered++ })
	const total = 2000
	for i := 0; i < total; i++ {
		n.Send(a, b, i, 8)
	}
	k.Run()
	if delivered < total/2-150 || delivered > total/2+150 {
		t.Fatalf("delivered %d of %d at 50%% loss", delivered, total)
	}
	s := n.Stats()
	if s.LostRandom+uint64(delivered) != total {
		t.Fatalf("loss accounting: %+v delivered=%d", s, delivered)
	}
}

func TestMTU(t *testing.T) {
	k, n, a, b, got := setup(t, WithMTU(100))
	n.Send(a, b, "big", 101)
	n.Send(a, b, "ok", 100)
	k.Run()
	if len(*got) != 1 || (*got)[0].payload != "ok" {
		t.Fatalf("MTU filtering failed: %+v", *got)
	}
}

func TestTraceHook(t *testing.T) {
	k := sim.New(1)
	var events []TraceEvent
	n := New(k, WithTrace(func(e TraceEvent) { events = append(events, e) }), WithLatency(FixedLatency(0)))
	a := n.Attach(func(Addr, interface{}, int) {})
	b := n.Attach(func(Addr, interface{}, int) {})
	n.Send(a, b, "x", 1)
	k.Run()
	n.Kill(b)
	n.Send(a, b, "y", 1)
	k.Run()
	// Three events: x sent, y sent, y dropped-dead at arrival time.
	if len(events) != 3 {
		t.Fatalf("trace events %d, want 3: %+v", len(events), events)
	}
	if events[0].Dropped || events[1].Dropped {
		t.Error("send-time events should not be dropped")
	}
	if !events[2].Dropped || events[2].Reason != "dead" {
		t.Errorf("arrival event should be dropped dead: %+v", events[2])
	}
}

func TestResetStats(t *testing.T) {
	k, n, a, b, _ := setup(t)
	n.Send(a, b, "x", 1)
	k.Run()
	n.ResetStats()
	if s := n.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestSetHandler(t *testing.T) {
	k := sim.New(1)
	n := New(k, WithLatency(FixedLatency(0)))
	a := n.Attach(func(Addr, interface{}, int) {})
	b := n.Attach(func(Addr, interface{}, int) { t.Fatal("old handler invoked") })
	hit := false
	n.SetHandler(b, func(Addr, interface{}, int) { hit = true })
	n.Send(a, b, "x", 1)
	k.Run()
	if !hit {
		t.Fatal("new handler not invoked")
	}
}

func TestAttachNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.New(1)).Attach(nil)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		k := sim.New(42)
		n := New(k, WithLoss(0.2))
		var arrivals []time.Duration
		a := n.Attach(func(Addr, interface{}, int) {})
		b := n.Attach(func(Addr, interface{}, int) { arrivals = append(arrivals, k.Now()) })
		for i := 0; i < 100; i++ {
			n.Send(a, b, i, 4)
		}
		k.Run()
		return arrivals
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatal("non-deterministic delivery count")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("non-deterministic arrival times")
		}
	}
}
