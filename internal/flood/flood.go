// Package flood is a Gnutella-style unstructured baseline: nodes form a
// random k-regular-ish graph and lookups flood with a TTL and duplicate
// suppression. The paper's introduction dismisses blind flooding as
// unscalable (§I, citing "Why Gnutella Can't Scale"); the comparative
// harness shows the message-cost gap against TreeP on identical
// workloads. Key types: Cluster (a simulated deployment, with dynamic
// Join and keepalive-modelled PruneDead re-wiring), Node, Result. The
// comparative harness drives it through the overlay.Flood adapter.
package flood

import (
	"math/rand"
	"time"

	"treep/internal/idspace"
	"treep/internal/netsim"
	"treep/internal/sim"
)

// query is the flooded message.
type query struct {
	Origin netsim.Addr
	Target idspace.ID
	ReqID  uint64
	TTL    uint8
	// Hops counts forwards taken so far, so a hit can report path length.
	Hops uint8
}

// queryHit answers the origin directly.
type queryHit struct {
	ReqID uint64
	ID    idspace.ID
	Addr  netsim.Addr
	Hops  uint8
}

// Node is one flooding peer.
type Node struct {
	id    idspace.ID
	addr  netsim.Addr
	net   *netsim.Network
	peers []netsim.Addr
	alive bool

	seen    map[uint64]bool
	pending map[uint64]*pending

	// Stats counters.
	Stats Stats
}

// Stats counts flooding traffic.
type Stats struct {
	LookupsStarted uint64
	Floods         uint64
	Hits           uint64
}

type pending struct {
	cb    func(Result)
	timer *sim.Timer
	hops  uint8
	done  bool
}

// Result reports a flood lookup outcome.
type Result struct {
	Found bool
	Hops  int
}

// Cluster is a simulated flooding network.
type Cluster struct {
	Kernel *sim.Kernel
	Net    *netsim.Network
	Nodes  []*Node

	byAddr  map[netsim.Addr]*Node
	degree  int
	wire    *rand.Rand
	idRand  *rand.Rand
	timeout time.Duration
	// nextReq numbers lookups; per-cluster (not package-global) so
	// concurrent trials in different clusters do not race.
	nextReq uint64
}

// New builds n nodes wired into a random graph of the given degree.
func New(n, degree int, seed int64) *Cluster {
	k := sim.New(seed)
	net := netsim.New(k)
	c := &Cluster{
		Kernel:  k,
		Net:     net,
		byAddr:  map[netsim.Addr]*Node{},
		degree:  degree,
		wire:    k.Stream(0x77697265), // "wire"
		idRand:  k.Stream(0x666c6f6f), // "floo"
		timeout: 10 * time.Second,
	}
	for i := 0; i < n; i++ {
		c.attach()
	}
	// Random graph: each node draws `degree` distinct peers; edges are
	// symmetric.
	for i, nd := range c.Nodes {
		for len(nd.peers) < degree {
			j := c.wire.Intn(n)
			if j == i {
				continue
			}
			other := c.Nodes[j]
			if hasPeer(nd, other.addr) {
				continue
			}
			nd.peers = append(nd.peers, other.addr)
			if !hasPeer(other, nd.addr) {
				other.peers = append(other.peers, nd.addr)
			}
		}
	}
	return c
}

// attach creates one unwired live node on the network.
func (c *Cluster) attach() *Node {
	nd := &Node{
		net:     c.Net,
		alive:   true,
		id:      idspace.ID(c.idRand.Uint64()),
		seen:    map[uint64]bool{},
		pending: map[uint64]*pending{},
	}
	nd.addr = c.Net.Attach(func(from netsim.Addr, payload interface{}, size int) {
		nd.handle(from, payload)
	})
	c.Nodes = append(c.Nodes, nd)
	c.byAddr[nd.addr] = nd
	return nd
}

// Join spawns a new node mid-simulation and wires it to `degree` random
// live peers with symmetric edges (a Gnutella client dialling its host
// cache). It returns nil when no live peer exists to dial.
func (c *Cluster) Join() *Node {
	alive := c.AliveNodes()
	if len(alive) == 0 {
		return nil
	}
	nd := c.attach()
	for tries := 0; len(nd.peers) < c.degree && tries < 8*c.degree; tries++ {
		other := alive[c.wire.Intn(len(alive))]
		if other.addr == nd.addr || hasPeer(nd, other.addr) {
			continue
		}
		nd.peers = append(nd.peers, other.addr)
		other.peers = append(other.peers, nd.addr)
	}
	return nd
}

// PruneDead drops dead endpoints from every live node's adjacency list and
// re-wires under-connected nodes back up to the target degree — the
// harness's stand-in for Gnutella's keepalive-based neighbour eviction and
// host-cache re-dialling. Called at phase boundaries, mirroring
// (*chord.Cluster).DropDead.
func (c *Cluster) PruneDead() {
	alive := c.AliveNodes()
	aliveAddr := make(map[netsim.Addr]bool, len(alive))
	for _, nd := range alive {
		aliveAddr[nd.addr] = true
	}
	for _, nd := range alive {
		kept := nd.peers[:0]
		for _, p := range nd.peers {
			if aliveAddr[p] {
				kept = append(kept, p)
			}
		}
		nd.peers = kept
	}
	for _, nd := range alive {
		for tries := 0; len(nd.peers) < c.degree && tries < 8*c.degree; tries++ {
			other := alive[c.wire.Intn(len(alive))]
			if other.addr == nd.addr || hasPeer(nd, other.addr) {
				continue
			}
			nd.peers = append(nd.peers, other.addr)
			other.peers = append(other.peers, nd.addr)
		}
	}
}

// Partition splits the network at the given coordinate: datagrams between
// nodes on opposite sides of split are dropped until Heal.
func (c *Cluster) Partition(split idspace.ID) {
	c.Net.SetLinkFilter(netsim.SplitFilter(split, func(a netsim.Addr) (idspace.ID, bool) {
		nd, ok := c.byAddr[a]
		if !ok {
			return 0, false
		}
		return nd.id, true
	}))
}

// Heal removes the partition installed by Partition.
func (c *Cluster) Heal() { c.Net.SetLinkFilter(nil) }

// LookupTimeout reports how long a lookup can stay pending before its
// origin gives up.
func (c *Cluster) LookupTimeout() time.Duration { return c.timeout }

// Degree returns the target adjacency degree of the random graph.
func (c *Cluster) Degree() int { return c.degree }

// StateSize returns the node's routing-state entry count (its adjacency
// list — flooding keeps no other routing state).
func (nd *Node) StateSize() int { return len(nd.peers) }

func hasPeer(nd *Node, a netsim.Addr) bool {
	for _, p := range nd.peers {
		if p == a {
			return true
		}
	}
	return false
}

// Run advances virtual time.
func (c *Cluster) Run(d time.Duration) { _ = c.Kernel.RunFor(d) }

// Kill fail-stops a node.
func (c *Cluster) Kill(nd *Node) {
	nd.alive = false
	c.Net.Kill(nd.addr)
}

// Alive reports liveness.
func (c *Cluster) Alive(nd *Node) bool { return nd.alive }

// AliveNodes lists live nodes.
func (c *Cluster) AliveNodes() []*Node {
	out := make([]*Node, 0, len(c.Nodes))
	for _, nd := range c.Nodes {
		if nd.alive {
			out = append(out, nd)
		}
	}
	return out
}

// ID returns the node's identifier.
func (nd *Node) ID() idspace.ID { return nd.id }

// MessagesSent returns the network-wide datagram count (flooding's cost
// metric).
func (c *Cluster) MessagesSent() uint64 { return c.Net.Stats().Sent }

// Lookup floods for the exact target ID; cb fires once with the outcome.
func (nd *Node) Lookup(c *Cluster, target idspace.ID, ttl uint8, cb func(Result)) {
	nd.Stats.LookupsStarted++
	c.nextReq++
	req := c.nextReq
	p := &pending{cb: cb}
	nd.pending[req] = p
	p.timer = c.Kernel.Schedule(c.timeout, func() {
		if pp, ok := nd.pending[req]; ok && !pp.done {
			delete(nd.pending, req)
			cb(Result{Found: false})
		}
	})
	nd.seen[req] = true
	q := &query{Origin: nd.addr, Target: target, ReqID: req, TTL: ttl}
	if nd.id == target {
		p.done = true
		delete(nd.pending, req)
		p.timer.Cancel()
		cb(Result{Found: true, Hops: 0})
		return
	}
	nd.flood(q, 0)
}

func (nd *Node) flood(q *query, except netsim.Addr) {
	if q.TTL == 0 {
		return
	}
	next := *q
	next.TTL--
	next.Hops++
	for _, p := range nd.peers {
		if p == except {
			continue
		}
		nd.Stats.Floods++
		nd.net.Send(nd.addr, p, &next, 32)
	}
}

func (nd *Node) handle(from netsim.Addr, payload interface{}) {
	if !nd.alive {
		return
	}
	switch m := payload.(type) {
	case *query:
		if nd.seen[m.ReqID] {
			return
		}
		nd.seen[m.ReqID] = true
		if nd.id == m.Target {
			nd.Stats.Hits++
			nd.net.Send(nd.addr, m.Origin, &queryHit{ReqID: m.ReqID, ID: nd.id, Addr: nd.addr, Hops: m.Hops}, 32)
			return
		}
		nd.flood(m, from)
	case *queryHit:
		if p, ok := nd.pending[m.ReqID]; ok && !p.done {
			p.done = true
			delete(nd.pending, m.ReqID)
			p.timer.Cancel()
			p.cb(Result{Found: true, Hops: int(m.Hops)})
		}
	}
}
