package flood_test

// Lookup correctness of the flooding baseline under the scenario engine's
// dynamic phases, driven through the comparative overlay adapter. The
// in-package tests cover a static graph; these cover live membership
// change — new nodes dialling into the graph mid-run while others
// fail-stop — and the neighbour eviction/re-wiring tick.

import (
	"math/rand"
	"testing"
	"time"

	"treep/internal/overlay"
	"treep/internal/scenario"
)

// measure issues lookups between random live pairs and returns
// (found, issued).
func measure(ov overlay.Overlay, seed int64, issued int) (int, int) {
	ids := ov.AliveIDs()
	rng := rand.New(rand.NewSource(seed))
	found := 0
	for i := 0; i < issued; i++ {
		origin := rng.Intn(len(ids))
		target := ids[rng.Intn(len(ids))]
		ov.Lookup(origin, target, func(r overlay.Outcome) {
			if r.Found {
				found++
			}
		})
	}
	ov.Run(ov.LookupWindow())
	return found, issued
}

// TestFloodLookupUnderChurn: joined nodes become reachable flood targets
// and the graph keeps finding the surviving population.
func TestFloodLookupUnderChurn(t *testing.T) {
	ov := overlay.NewFlood(150, 0, 0, 1)
	ov.Run(4 * time.Second)

	res, err := overlay.Play(ov, rand.New(rand.NewSource(42)),
		scenario.Churn{For: 15 * time.Second, JoinRate: 2, LeaveRate: 2},
		scenario.Settle{For: 6 * time.Second},
	)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if res.Joins == 0 || res.Leaves == 0 {
		t.Fatalf("churn injected %d joins, %d leaves; want both > 0", res.Joins, res.Leaves)
	}
	ov.MaintenanceTick()

	found, issued := measure(ov, 7, 80)
	if found < issued*9/10 {
		t.Errorf("post-churn: %d/%d lookups resolved; want >= 90%%", found, issued)
	}
	if got := ov.AliveCount(); got != 150+res.Joins-res.Leaves {
		t.Errorf("AliveCount = %d, want %d", got, 150+res.Joins-res.Leaves)
	}
}

// TestFloodRewireAfterZoneFailure: a correlated kill thins the graph;
// the prune/re-wire tick must keep the survivors connected enough for
// floods to reach their targets.
func TestFloodRewireAfterZoneFailure(t *testing.T) {
	ov := overlay.NewFlood(150, 0, 0, 3)
	ov.Run(4 * time.Second)

	res, err := overlay.Play(ov, rand.New(rand.NewSource(4)),
		scenario.ZoneFailure{Zone: scenario.ZoneFraction(0.35, 0.60), Settle: 4 * time.Second},
	)
	if err != nil {
		t.Fatalf("Play: %v", err)
	}
	if res.ZoneKilled == 0 {
		t.Fatal("zone failure killed nobody")
	}
	ov.MaintenanceTick()

	found, issued := measure(ov, 11, 80)
	if found < issued*9/10 {
		t.Errorf("post-zone-failure: %d/%d lookups resolved; want >= 90%%", found, issued)
	}
}
