package flood

import (
	"testing"
	"time"
)

func TestFloodFindsTargets(t *testing.T) {
	c := New(200, 4, 1)
	rng := c.Kernel.Stream(3)
	found, failed := 0, 0
	for i := 0; i < 50; i++ {
		origin := c.Nodes[rng.Intn(len(c.Nodes))]
		target := c.Nodes[rng.Intn(len(c.Nodes))]
		origin.Lookup(c, target.ID(), 8, func(r Result) {
			if r.Found {
				found++
			} else {
				failed++
			}
		})
	}
	c.Run(15 * time.Second)
	if found < 45 {
		t.Fatalf("flood found %d/50", found)
	}
}

func TestFloodMessageCostIsHigh(t *testing.T) {
	// The point of the baseline: message cost per lookup is O(n), far
	// beyond TreeP's handful of forwards.
	c := New(300, 4, 2)
	origin := c.Nodes[0]
	target := c.Nodes[200]
	before := c.MessagesSent()
	ok := false
	origin.Lookup(c, target.ID(), 8, func(r Result) { ok = r.Found })
	c.Run(15 * time.Second)
	cost := c.MessagesSent() - before
	if !ok {
		t.Skip("unlucky graph; flood missed")
	}
	if cost < 50 {
		t.Fatalf("flood cost %d messages — implausibly cheap", cost)
	}
	t.Logf("flood cost: %d messages for one lookup", cost)
}

func TestTTLBoundsFlood(t *testing.T) {
	c := New(400, 4, 3)
	origin := c.Nodes[0]
	// TTL 1 reaches only direct peers: a random far target is missed.
	misses := 0
	for i := 350; i < 360; i++ {
		target := c.Nodes[i]
		origin.Lookup(c, target.ID(), 1, func(r Result) {
			if !r.Found {
				misses++
			}
		})
	}
	c.Run(15 * time.Second)
	if misses < 8 {
		t.Fatalf("TTL 1 should miss most far targets, missed %d/10", misses)
	}
}

func TestFloodSurvivesFailures(t *testing.T) {
	c := New(250, 5, 4)
	rng := c.Kernel.Stream(9)
	killed := 0
	for killed < 50 {
		nd := c.Nodes[rng.Intn(len(c.Nodes))]
		if c.Alive(nd) {
			c.Kill(nd)
			killed++
		}
	}
	alive := c.AliveNodes()
	found := 0
	for i := 0; i < 50; i++ {
		origin := alive[rng.Intn(len(alive))]
		target := alive[rng.Intn(len(alive))]
		origin.Lookup(c, target.ID(), 8, func(r Result) {
			if r.Found {
				found++
			}
		})
	}
	c.Run(15 * time.Second)
	// Unstructured flooding is naturally failure-tolerant.
	if found < 35 {
		t.Fatalf("flood after 20%% kill found %d/50", found)
	}
}
