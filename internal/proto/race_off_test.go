//go:build !race

package proto

// raceEnabled reports whether the race detector is compiled in; alloc
// assertions are skipped under -race (instrumentation allocates).
const raceEnabled = false
