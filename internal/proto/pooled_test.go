package proto

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEncodeAppendMatchesEncode fuzzes byte-equality between the fresh
// and appending encode paths over every message type: EncodeAppend onto
// an arbitrary prefix must produce exactly Encode's bytes after the
// prefix, leaving the prefix intact. This is the correctness contract
// that lets the UDP transport serialise a whole send queue into one
// arena and slice datagrams back out of it.
func TestEncodeAppendMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		prefix := make([]byte, rng.Intn(64))
		rng.Read(prefix)
		for _, m := range sampleMessages(rng) {
			fresh := Encode(m)
			appended := EncodeAppend(append([]byte(nil), prefix...), m)
			if !bytes.Equal(appended[:len(prefix)], prefix) {
				t.Fatalf("%v: EncodeAppend clobbered its prefix", m.Type())
			}
			if !bytes.Equal(appended[len(prefix):], fresh) {
				t.Fatalf("%v: EncodeAppend bytes differ from Encode:\n append: %x\n  fresh: %x",
					m.Type(), appended[len(prefix):], fresh)
			}
		}
	}
}

// TestEncodeAppendZeroAlloc pins the arena promise: appending into a
// buffer with sufficient capacity performs no allocation.
func TestEncodeAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rng := rand.New(rand.NewSource(12))
	msgs := sampleMessages(rng)
	buf := make([]byte, 0, 1<<20)
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		for _, m := range msgs {
			buf = EncodeAppend(buf, m)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeAppend into a pre-sized arena allocated %.1f times per run", allocs)
	}
}

// pooledWireTypes is the authoritative list of message types DecodePooled
// must draw from a pool. It mirrors the pool declarations in pool.go; a
// type added there must be added here (and vice versa) or
// TestDecodePooledCoversTypes fails.
var pooledWireTypes = map[MsgType]bool{
	THello:           true,
	TPing:            true,
	TPong:            true,
	TChildReport:     true,
	TBusLinkReq:      true,
	TBusLinkAck:      true,
	TRingProbe:       true,
	TRingProbeAck:    true,
	TMergeIntro:      true,
	TDHTStoreAck:     true,
	TDHTFetchReply:   true,
	TDHTReplicateAck: true,
}

// TestDecodePooledCoversTypes pins every wire type to a working pooled
// decode: acquireMessage and newMessage must stay in lockstep, the pooled
// decode must re-encode to the identical bytes, and exactly the types
// listed in pooledWireTypes must come back Recyclable.
func TestDecodePooledCoversTypes(t *testing.T) {
	for ty := TInvalid + 1; ty < tMaxMsgType; ty++ {
		m := acquireMessage(ty)
		if m == nil {
			t.Fatalf("acquireMessage(%v) returned nil but newMessage knows the type", ty)
		}
		if m.Type() != ty {
			t.Fatalf("acquireMessage(%v) returned a %v", ty, m.Type())
		}
		_, recyclable := m.(Recyclable)
		if recyclable != pooledWireTypes[ty] {
			t.Fatalf("%v: recyclable=%v, pooledWireTypes says %v", ty, recyclable, pooledWireTypes[ty])
		}
		ReleaseDecoded(m)
	}

	// Round-trip every sample through the pooled path twice, so the second
	// pass decodes into recycled objects with dirty slice capacity.
	rng := rand.New(rand.NewSource(13))
	for pass := 0; pass < 2; pass++ {
		for _, m := range sampleMessages(rng) {
			b := Encode(m)
			got, err := DecodePooled(b)
			if err != nil {
				t.Fatalf("%v: pooled decode: %v", m.Type(), err)
			}
			if reenc := Encode(got); !bytes.Equal(reenc, b) {
				t.Fatalf("%v: pooled decode re-encodes differently:\n in: %x\nout: %x", m.Type(), b, reenc)
			}
			ReleaseDecoded(got)
		}
	}
}

// TestDecodePooledReleasesOnError checks that a failed pooled decode does
// not leak the acquired object mid-parse (it must go back to the pool) and
// reports the same error the fresh path does.
func TestDecodePooledReleasesOnError(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, m := range sampleMessages(rng) {
		full := Encode(m)
		for cut := headerSize; cut < len(full); cut++ {
			pm, err := DecodePooled(full[:cut])
			if err == nil {
				t.Fatalf("%v: pooled decode of %d/%d bytes succeeded", m.Type(), cut, len(full))
			}
			if pm != nil {
				t.Fatalf("%v: pooled decode returned both a message and %v", m.Type(), err)
			}
		}
	}
}

// TestPooledDecodeLifetime is the aliasing contract of DecodePooled: a
// decoded message owns its bytes (the source buffer may be reused
// immediately), two live pooled messages never share storage, and a
// message's contents stay stable until ReleaseDecoded — only after
// release may its storage be recycled into the next decode.
func TestPooledDecodeLifetime(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	mkPing := func(seq uint32) []byte {
		return Encode(&Ping{From: sampleRef(rng), Seq: seq, Entries: sampleEntries(rng, 6)})
	}

	// Decode A, then trash its source buffer: A must be unaffected.
	bufA := mkPing(1)
	mA, err := DecodePooled(bufA)
	if err != nil {
		t.Fatal(err)
	}
	pingA := mA.(*Ping)
	wantA := Encode(pingA)
	for i := range bufA {
		bufA[i] = 0xFF
	}
	if !bytes.Equal(Encode(pingA), wantA) {
		t.Fatal("pooled message aliases its source buffer")
	}

	// Decode B while A is live: they must come from distinct pool objects,
	// and writing through B must not reach A.
	mB, err := DecodePooled(mkPing(2))
	if err != nil {
		t.Fatal(err)
	}
	pingB := mB.(*Ping)
	if pingA == pingB {
		t.Fatal("two live pooled decodes returned the same object")
	}
	for i := range pingB.Entries {
		pingB.Entries[i].Version = 0xDEADBEEF
	}
	pingB.Seq = 999
	if !bytes.Equal(Encode(pingA), wantA) {
		t.Fatal("live pooled messages share entry storage")
	}
	ReleaseDecoded(mA)
	ReleaseDecoded(mB)

	// After release the storage is fair game: steady-state decode/release
	// cycles must reuse it rather than allocating per message.
	if raceEnabled {
		return // allocation counts are unreliable under the race detector
	}
	warm := mkPing(3)
	// Prime the pool so seed capacities exist before counting.
	if m, err := DecodePooled(warm); err != nil {
		t.Fatal(err)
	} else {
		ReleaseDecoded(m)
	}
	allocs := testing.AllocsPerRun(500, func() {
		m, err := DecodePooled(warm)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseDecoded(m)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pooled decode allocated %.1f times per message", allocs)
	}
}
