package proto

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzRoundTrip drives Decode with arbitrary datagrams, seeded with one
// valid encoding of every message type. For any input that decodes, the
// decoded message must re-encode and decode back to an identical value:
// the codec's canonical form is a fixed point, so nothing a peer can put
// on the wire produces a message the codec cannot faithfully reproduce.
// (Byte-identity of the re-encoding is not required — booleans decode any
// non-zero byte as true and re-encode as 1.)
func FuzzRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range sampleMessages(rng) {
		f.Add(Encode(m))
	}
	// A few malformed shapes so the corpus exercises the error paths too.
	f.Add([]byte{})
	f.Add([]byte{wireMagic, wireVersion})
	f.Add([]byte{wireMagic, wireVersion, byte(tMaxMsgType)})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			if m != nil {
				t.Fatalf("Decode returned both a message and error %v", err)
			}
			return
		}
		b := Encode(m)
		if len(b) != WireSize(m) {
			t.Fatalf("%v: WireSize=%d but re-encoded %d bytes", m.Type(), WireSize(m), len(b))
		}
		m2, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: re-decode of canonical encoding failed: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%v: canonical round-trip mismatch:\n in: %#v\nout: %#v", m.Type(), m, m2)
		}
	})
}
