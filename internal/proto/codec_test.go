package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"treep/internal/idspace"
)

func sampleRef(rng *rand.Rand) NodeRef {
	return NodeRef{
		ID:       idspace.ID(rng.Uint64()),
		Addr:     rng.Uint64() | 1, // non-zero
		MaxLevel: uint8(rng.Intn(8)),
		Score:    uint16(rng.Intn(65536)),
	}
}

func sampleEntries(rng *rand.Rand, n int) []Entry {
	if n == 0 {
		return nil
	}
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Ref:     sampleRef(rng),
			Level:   uint8(rng.Intn(8)),
			Flags:   EntryFlag(rng.Intn(32)),
			Version: rng.Uint32(),
			AgeDs:   uint16(rng.Intn(65536)),
		}
	}
	return out
}

func sampleRefs(rng *rand.Rand, n int) []NodeRef {
	if n == 0 {
		return nil
	}
	out := make([]NodeRef, n)
	for i := range out {
		out[i] = sampleRef(rng)
	}
	return out
}

// sampleMessages returns one randomised instance of every message type.
func sampleMessages(rng *rand.Rand) []Message {
	val := make([]byte, rng.Intn(64))
	rng.Read(val)
	if len(val) == 0 {
		val = nil
	}
	return []Message{
		&Hello{From: sampleRef(rng), MaxChildren: uint8(rng.Intn(32))},
		&Ping{From: sampleRef(rng), Seq: rng.Uint32(), Entries: sampleEntries(rng, rng.Intn(5))},
		&Pong{From: sampleRef(rng), Seq: rng.Uint32(), Entries: sampleEntries(rng, rng.Intn(5))},
		&JoinRequest{From: sampleRef(rng)},
		&JoinRedirect{From: sampleRef(rng), Closer: sampleRef(rng)},
		&JoinAccept{From: sampleRef(rng), Left: sampleRef(rng), Right: NodeRef{}, Parent: sampleRef(rng)},
		&ElectionCall{From: sampleRef(rng), Level: uint8(rng.Intn(8))},
		&ParentClaim{From: sampleRef(rng), Level: 2, Region: Region{Lo: 5, Hi: idspace.MaxID - 5}},
		&ChildReport{From: sampleRef(rng), Degree: uint8(rng.Intn(8))},
		&PromoteGrant{From: sampleRef(rng), Level: 3, Region: Region{Lo: 0, Hi: 99}, Left: sampleRef(rng), Right: NodeRef{}},
		&Demote{From: sampleRef(rng), Level: 1, Successor: sampleRef(rng)},
		&BusLinkReq{From: sampleRef(rng), Level: 4},
		&BusLinkAck{From: sampleRef(rng), Level: 4, Left: sampleRef(rng), Right: sampleRef(rng)},
		&LookupRequest{Origin: sampleRef(rng), Target: idspace.ID(rng.Uint64()), ReqID: rng.Uint64(),
			TTL: uint8(rng.Intn(256)), Hops: uint8(rng.Intn(256)), Algo: Algo(rng.Intn(3)),
			Alternates: sampleRefs(rng, rng.Intn(4))},
		&LookupReply{From: sampleRef(rng), ReqID: rng.Uint64(), Status: LookupStatus(rng.Intn(2)),
			Best: sampleRef(rng), Hops: uint8(rng.Intn(256))},
		&DHTStore{From: sampleRef(rng), ReqID: rng.Uint64(), Key: idspace.ID(rng.Uint64()), Value: val,
			Base: rng.Uint64(), Cond: rng.Intn(2) == 0},
		&DHTStoreAck{From: sampleRef(rng), ReqID: rng.Uint64(), Status: StoreStatus(rng.Intn(2)),
			Version: rng.Uint64(), Origin: rng.Uint64()},
		&DHTFetch{From: sampleRef(rng), ReqID: rng.Uint64(), Key: idspace.ID(rng.Uint64()), Local: rng.Intn(2) == 0},
		&DHTFetchReply{From: sampleRef(rng), ReqID: rng.Uint64(), Found: rng.Intn(2) == 0, Value: val,
			Version: rng.Uint64(), Origin: rng.Uint64()},
		&DHTReplicate{From: sampleRef(rng), ReqID: rng.Uint64(), Key: idspace.ID(rng.Uint64()), Value: val,
			Version: rng.Uint64(), Origin: rng.Uint64()},
		&DHTReplicateAck{From: sampleRef(rng), ReqID: rng.Uint64(), Stored: rng.Intn(2) == 0},
		&Reparent{From: sampleRef(rng), NewParent: sampleRef(rng), AgeDs: uint16(rng.Intn(65536))},
		&Leave{From: sampleRef(rng)},
		&RingProbe{From: sampleRef(rng), Origin: sampleRef(rng), Left: rng.Intn(2) == 0,
			TTL: uint8(rng.Intn(256)), AgeDs: uint16(rng.Intn(65536))},
		&RingProbeAck{From: sampleRef(rng), Left: rng.Intn(2) == 0, Hops: uint8(rng.Intn(256))},
		&MergeIntro{From: sampleRef(rng), Peer: sampleRef(rng), AgeDs: uint16(rng.Intn(65536))},
	}
}

// TestSampleMessagesCoverEveryType guards the sample set (and with it the
// fuzz corpus, which seeds from it) against drifting from the MsgType
// enumeration when message types are added.
func TestSampleMessagesCoverEveryType(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[MsgType]bool{}
	for _, m := range sampleMessages(rng) {
		seen[m.Type()] = true
	}
	for ty := TInvalid + 1; ty < tMaxMsgType; ty++ {
		if !seen[ty] {
			t.Errorf("no sample message for type %v", ty)
		}
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		for _, m := range sampleMessages(rng) {
			b := Encode(m)
			got, err := Decode(b)
			if err != nil {
				t.Fatalf("%v: decode: %v", m.Type(), err)
			}
			if !reflect.DeepEqual(m, got) {
				t.Fatalf("%v: round-trip mismatch:\n in: %#v\nout: %#v", m.Type(), m, got)
			}
		}
	}
}

func TestEncodedSizeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		for _, m := range sampleMessages(rng) {
			b := Encode(m)
			if len(b) != WireSize(m) {
				t.Fatalf("%v: WireSize=%d but encoded %d bytes", m.Type(), WireSize(m), len(b))
			}
			if len(b)-headerSize != m.EncodedSize() {
				t.Fatalf("%v: EncodedSize=%d but body is %d bytes", m.Type(), m.EncodedSize(), len(b)-headerSize)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrShort) {
		t.Errorf("nil: %v", err)
	}
	if _, err := Decode([]byte{wireMagic, wireVersion}); !errors.Is(err, ErrShort) {
		t.Errorf("2 bytes: %v", err)
	}
	if _, err := Decode([]byte{0xFF, wireVersion, byte(THello)}); !errors.Is(err, ErrMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := Decode([]byte{wireMagic, 99, byte(THello)}); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
	if _, err := Decode([]byte{wireMagic, wireVersion, 0}); !errors.Is(err, ErrType) {
		t.Errorf("type 0: %v", err)
	}
	if _, err := Decode([]byte{wireMagic, wireVersion, byte(tMaxMsgType)}); !errors.Is(err, ErrType) {
		t.Errorf("type max: %v", err)
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range sampleMessages(rng) {
		full := Encode(m)
		for cut := headerSize; cut < len(full); cut++ {
			if _, err := Decode(full[:cut]); err == nil {
				t.Fatalf("%v: truncation to %d/%d bytes decoded without error", m.Type(), cut, len(full))
			}
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	m := &Hello{From: NodeRef{ID: 1, Addr: 2}}
	b := append(Encode(m), 0xAB)
	if _, err := Decode(b); !errors.Is(err, ErrTrail) {
		t.Fatalf("trailing byte: %v", err)
	}
}

func TestDecodeRandomGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		// Force plausible headers half the time so bodies get exercised.
		if len(b) >= 3 && i%2 == 0 {
			b[0] = wireMagic
			b[1] = wireVersion
			b[2] = byte(1 + rng.Intn(int(tMaxMsgType)-1))
		}
		_, _ = Decode(b) // must not panic
	}
}

func TestHostileListLength(t *testing.T) {
	// A Ping whose entry count claims 65535 entries but has no body must be
	// rejected without allocating.
	b := []byte{wireMagic, wireVersion, byte(TPing)}
	var w writer
	w.ref(NodeRef{ID: 1, Addr: 1})
	w.u32(7)
	w.u16(65535)
	b = append(b, w.buf...)
	if _, err := Decode(b); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestCorruptionDetectionBitFlips(t *testing.T) {
	// Flipping any single header bit must fail; body flips may still parse
	// (no checksum — UDP provides one) but must never panic.
	m := &LookupRequest{Origin: NodeRef{ID: 9, Addr: 9}, Target: 42, ReqID: 7, TTL: 8, Algo: AlgoNGSA,
		Alternates: []NodeRef{{ID: 1, Addr: 3}}}
	orig := Encode(m)
	for bit := 0; bit < len(orig)*8; bit++ {
		b := bytes.Clone(orig)
		b[bit/8] ^= 1 << (bit % 8)
		_, _ = Decode(b)
	}
}

func TestQuantizeScore(t *testing.T) {
	cases := []struct {
		in   float64
		want uint16
	}{
		{-1, 0}, {0, 0}, {1, 65535}, {2, 65535},
	}
	for _, c := range cases {
		if got := QuantizeScore(c.in); got != c.want {
			t.Errorf("QuantizeScore(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, s := range []float64{0.1, 0.5, 0.9} {
		back := UnquantizeScore(QuantizeScore(s))
		if diff := back - s; diff > 1e-4 || diff < -1e-4 {
			t.Errorf("quantise roundtrip %v -> %v", s, back)
		}
	}
}

func TestNodeRefZero(t *testing.T) {
	var z NodeRef
	if !z.IsZero() {
		t.Error("zero ref should be zero")
	}
	if (NodeRef{Addr: 1}).IsZero() {
		t.Error("ref with addr should not be zero")
	}
	if z.String() != "ref(-)" {
		t.Errorf("zero ref string %q", z.String())
	}
}

func TestRegionConversion(t *testing.T) {
	r := idspace.Region{Lo: 3, Hi: 9}
	if FromIDSpace(r).ToIDSpace() != r {
		t.Error("region conversion roundtrip")
	}
}

func TestMsgTypeString(t *testing.T) {
	if THello.String() != "hello" || TLookupRequest.String() != "lookup-request" {
		t.Error("known names")
	}
	if MsgType(200).String() != "msgtype(200)" {
		t.Errorf("unknown name: %q", MsgType(200).String())
	}
}

func TestAlgoString(t *testing.T) {
	if AlgoG.String() != "G" || AlgoNG.String() != "NG" || AlgoNGSA.String() != "NGSA" {
		t.Error("algo names")
	}
	if Algo(9).String() != "algo(9)" {
		t.Error("unknown algo name")
	}
}

func BenchmarkEncodeLookupRequest(b *testing.B) {
	m := &LookupRequest{Origin: NodeRef{ID: 9, Addr: 9}, Target: 42, ReqID: 7, TTL: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

func BenchmarkDecodeLookupRequest(b *testing.B) {
	buf := Encode(&LookupRequest{Origin: NodeRef{ID: 9, Addr: 9}, Target: 42, ReqID: 7, TTL: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
