package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"treep/internal/idspace"
)

// Wire format: a 3-byte header (magic 'T', version, message type) followed
// by the fixed-layout body. Integers are big-endian. Variable-length
// sections (entry lists, DHT values) carry a uint16 count/length prefix.
const (
	wireMagic   = 0x54 // 'T'
	wireVersion = 1
	headerSize  = 3
)

// Codec errors.
var (
	ErrShort   = errors.New("proto: truncated message")
	ErrMagic   = errors.New("proto: bad magic byte")
	ErrVersion = errors.New("proto: unsupported protocol version")
	ErrType    = errors.New("proto: unknown message type")
	ErrTrail   = errors.New("proto: trailing bytes after message body")
)

// maxListLen bounds decoded list lengths; a datagram cannot legitimately
// carry more (64 KiB / 19-byte refs), and the bound stops hostile length
// prefixes from forcing huge allocations.
const maxListLen = 4096

// MaxDatagram is the largest wire encoding a transport will carry: the
// maximum UDP-over-IPv4 payload (65535 - 20 IP - 8 UDP). The simulator
// has no packet size limit, but the real-socket plane rejects larger
// encodes instead of letting the kernel truncate or refuse them silently.
const MaxDatagram = 65507

// MaxKeepAliveEntries is how many entries a Ping/Pong can carry and still
// fit in MaxDatagram. Keep-alive composition clamps to this bound so an
// update can never compose an unsendable datagram (in practice updates
// are a few dozen entries; the clamp is the safety rail, not the norm).
const MaxKeepAliveEntries = (MaxDatagram - headerSize - nodeRefSize - 4 - 2) / entrySize

// Encode serialises a message into a fresh buffer, header included.
func Encode(m Message) []byte {
	return EncodeAppend(make([]byte, 0, headerSize+m.EncodedSize()), m)
}

// writerPool and readerPool recycle the codec cursors. A stack-local
// cursor would be free, but escape analysis can't keep one on the stack
// across the encodeBody/decodeBody interface call, so without pooling
// every encode and decode pays one heap allocation just for the cursor.
var (
	writerPool = sync.Pool{New: func() interface{} { return new(writer) }}
	readerPool = sync.Pool{New: func() interface{} { return new(reader) }}
)

// EncodeAppend serialises a message, header included, appending to dst and
// returning the extended slice. With a dst of sufficient capacity the
// encode allocates nothing, which is what lets the batched UDP transport
// serialise a whole send queue into one recycled arena.
func EncodeAppend(dst []byte, m Message) []byte {
	w := writerPool.Get().(*writer)
	w.buf = dst
	w.u8(wireMagic)
	w.u8(wireVersion)
	w.u8(uint8(m.Type()))
	m.encodeBody(w)
	out := w.buf
	w.buf = nil
	writerPool.Put(w)
	return out
}

// Decode parses one datagram into a fresh message value. The whole buffer
// must be consumed: trailing garbage is an error, as a corrupted datagram
// must not half-parse.
func Decode(b []byte) (Message, error) {
	return decode(b, false)
}

// DecodePooled parses one datagram like Decode, but draws pooled message
// types (keep-alives, probes, DHT responses) from their pools and reuses
// the pooled value's slice capacity, so a transport's steady-state decode
// path allocates nothing. Every decoded field is copied out of b: the
// caller may reuse b the moment DecodePooled returns. The returned
// message must be handed back via ReleaseDecoded once dispatch is done
// (non-recyclable types make that a no-op).
func DecodePooled(b []byte) (Message, error) {
	return decode(b, true)
}

// ReleaseDecoded returns a DecodePooled message to its pool after the
// handler is finished with it — the transport's end-of-dispatch hook,
// mirroring netsim's end-of-datagram release. The message (and any slice
// it carries) must not be touched afterwards.
func ReleaseDecoded(m Message) {
	if r, ok := m.(Recyclable); ok {
		r.Recycle()
	}
}

func decode(b []byte, pooled bool) (Message, error) {
	if len(b) < headerSize {
		return nil, ErrShort
	}
	if b[0] != wireMagic {
		return nil, ErrMagic
	}
	if b[1] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, b[1])
	}
	t := MsgType(b[2])
	var m Message
	if pooled {
		m = acquireMessage(t)
	} else {
		m = newMessage(t)
	}
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrType, b[2])
	}
	r := readerPool.Get().(*reader)
	r.buf, r.err = b[headerSize:], nil
	m.decodeBody(r)
	if r.err == nil && len(r.buf) != 0 {
		r.err = ErrTrail
	}
	err := r.err
	r.buf, r.err = nil, nil
	readerPool.Put(r)
	if err != nil {
		if pooled {
			ReleaseDecoded(m)
		}
		return nil, err
	}
	return m, nil
}

// WireSize returns the total datagram size for a message, header included.
// The simulator charges this many bytes per send without serialising.
func WireSize(m Message) int { return headerSize + m.EncodedSize() }

func newMessage(t MsgType) Message {
	switch t {
	case THello:
		return &Hello{}
	case TPing:
		return &Ping{}
	case TPong:
		return &Pong{}
	case TJoinRequest:
		return &JoinRequest{}
	case TJoinRedirect:
		return &JoinRedirect{}
	case TJoinAccept:
		return &JoinAccept{}
	case TElectionCall:
		return &ElectionCall{}
	case TParentClaim:
		return &ParentClaim{}
	case TChildReport:
		return &ChildReport{}
	case TPromoteGrant:
		return &PromoteGrant{}
	case TDemote:
		return &Demote{}
	case TBusLinkReq:
		return &BusLinkReq{}
	case TBusLinkAck:
		return &BusLinkAck{}
	case TLookupRequest:
		return &LookupRequest{}
	case TLookupReply:
		return &LookupReply{}
	case TDHTStore:
		return &DHTStore{}
	case TDHTStoreAck:
		return &DHTStoreAck{}
	case TDHTFetch:
		return &DHTFetch{}
	case TDHTFetchReply:
		return &DHTFetchReply{}
	case TDHTReplicate:
		return &DHTReplicate{}
	case TDHTReplicateAck:
		return &DHTReplicateAck{}
	case TReparent:
		return &Reparent{}
	case TLeave:
		return &Leave{}
	case TRingProbe:
		return &RingProbe{}
	case TRingProbeAck:
		return &RingProbeAck{}
	case TMergeIntro:
		return &MergeIntro{}
	}
	return nil
}

// --- writer ----------------------------------------------------------------

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) ref(r NodeRef) {
	w.u64(uint64(r.ID))
	w.u64(r.Addr)
	w.u8(r.MaxLevel)
	w.u16(r.Score)
}

func (w *writer) region(r Region) {
	w.u64(uint64(r.Lo))
	w.u64(uint64(r.Hi))
}

func (w *writer) entry(e Entry) {
	w.ref(e.Ref)
	w.u8(e.Level)
	w.u8(uint8(e.Flags))
	w.u32(e.Version)
	w.u16(e.AgeDs)
}

func (w *writer) entries(es []Entry) {
	w.u16(uint16(len(es)))
	for _, e := range es {
		w.entry(e)
	}
}

func (w *writer) refs(rs []NodeRef) {
	w.u16(uint16(len(rs)))
	for _, r := range rs {
		w.ref(r)
	}
}

func (w *writer) bytes(b []byte) {
	w.u16(uint16(len(b)))
	w.buf = append(w.buf, b...)
}

// --- reader ----------------------------------------------------------------

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrShort
	}
	r.buf = nil
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.buf) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) ref() NodeRef {
	return NodeRef{
		ID:       idspace.ID(r.u64()),
		Addr:     r.u64(),
		MaxLevel: r.u8(),
		Score:    r.u16(),
	}
}

func (r *reader) region() Region {
	return Region{Lo: idspace.ID(r.u64()), Hi: idspace.ID(r.u64())}
}

func (r *reader) entry() Entry {
	return Entry{
		Ref:     r.ref(),
		Level:   r.u8(),
		Flags:   EntryFlag(r.u8()),
		Version: r.u32(),
		AgeDs:   r.u16(),
	}
}

// entriesInto decodes an entry list, appending into dst so pooled
// messages reuse their recycled capacity. A nil dst (the fresh Decode
// path) behaves exactly like the old allocate-per-decode reader,
// including returning nil for an empty list.
func (r *reader) entriesInto(dst []Entry) []Entry {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n > maxListLen || len(r.buf) < n*entrySize {
		r.fail()
		return nil
	}
	if n == 0 {
		return dst
	}
	if cap(dst) < n {
		dst = make([]Entry, 0, n)
	}
	for i := 0; i < n; i++ {
		dst = append(dst, r.entry())
	}
	return dst
}

func (r *reader) refs() []NodeRef {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n > maxListLen || len(r.buf) < n*nodeRefSize {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]NodeRef, n)
	for i := range out {
		out[i] = r.ref()
	}
	return out
}

// bytesInto decodes a length-prefixed byte field, appending into dst (see
// entriesInto). The bytes are always copied out of the wire buffer: a
// decoded message never aliases the datagram it came from.
func (r *reader) bytesInto(dst []byte) []byte {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.fail()
		return nil
	}
	if n == 0 {
		return dst
	}
	dst = append(dst, r.buf[:n]...)
	r.buf = r.buf[n:]
	return dst
}

// --- per-message encode/decode/size ----------------------------------------

// Type implements Message.
func (*Hello) Type() MsgType { return THello }

// EncodedSize implements Message.
func (*Hello) EncodedSize() int { return nodeRefSize + 1 }

func (m *Hello) encodeBody(w *writer) { w.ref(m.From); w.u8(m.MaxChildren) }
func (m *Hello) decodeBody(r *reader) { m.From = r.ref(); m.MaxChildren = r.u8() }

// Type implements Message.
func (*Ping) Type() MsgType { return TPing }

// EncodedSize implements Message.
func (m *Ping) EncodedSize() int { return nodeRefSize + 4 + 2 + len(m.Entries)*entrySize }

func (m *Ping) encodeBody(w *writer) { w.ref(m.From); w.u32(m.Seq); w.entries(m.Entries) }
func (m *Ping) decodeBody(r *reader) {
	m.From = r.ref()
	m.Seq = r.u32()
	m.Entries = r.entriesInto(m.Entries[:0])
}

// Type implements Message.
func (*Pong) Type() MsgType { return TPong }

// EncodedSize implements Message.
func (m *Pong) EncodedSize() int { return nodeRefSize + 4 + 2 + len(m.Entries)*entrySize }

func (m *Pong) encodeBody(w *writer) { w.ref(m.From); w.u32(m.Seq); w.entries(m.Entries) }
func (m *Pong) decodeBody(r *reader) {
	m.From = r.ref()
	m.Seq = r.u32()
	m.Entries = r.entriesInto(m.Entries[:0])
}

// Type implements Message.
func (*JoinRequest) Type() MsgType { return TJoinRequest }

// EncodedSize implements Message.
func (*JoinRequest) EncodedSize() int { return nodeRefSize }

func (m *JoinRequest) encodeBody(w *writer) { w.ref(m.From) }
func (m *JoinRequest) decodeBody(r *reader) { m.From = r.ref() }

// Type implements Message.
func (*JoinRedirect) Type() MsgType { return TJoinRedirect }

// EncodedSize implements Message.
func (*JoinRedirect) EncodedSize() int { return 2 * nodeRefSize }

func (m *JoinRedirect) encodeBody(w *writer) { w.ref(m.From); w.ref(m.Closer) }
func (m *JoinRedirect) decodeBody(r *reader) { m.From = r.ref(); m.Closer = r.ref() }

// Type implements Message.
func (*JoinAccept) Type() MsgType { return TJoinAccept }

// EncodedSize implements Message.
func (*JoinAccept) EncodedSize() int { return 4 * nodeRefSize }

func (m *JoinAccept) encodeBody(w *writer) {
	w.ref(m.From)
	w.ref(m.Left)
	w.ref(m.Right)
	w.ref(m.Parent)
}

func (m *JoinAccept) decodeBody(r *reader) {
	m.From = r.ref()
	m.Left = r.ref()
	m.Right = r.ref()
	m.Parent = r.ref()
}

// Type implements Message.
func (*ElectionCall) Type() MsgType { return TElectionCall }

// EncodedSize implements Message.
func (*ElectionCall) EncodedSize() int { return nodeRefSize + 1 }

func (m *ElectionCall) encodeBody(w *writer) { w.ref(m.From); w.u8(m.Level) }
func (m *ElectionCall) decodeBody(r *reader) { m.From = r.ref(); m.Level = r.u8() }

// Type implements Message.
func (*ParentClaim) Type() MsgType { return TParentClaim }

// EncodedSize implements Message.
func (*ParentClaim) EncodedSize() int { return nodeRefSize + 1 + regionSize }

func (m *ParentClaim) encodeBody(w *writer) { w.ref(m.From); w.u8(m.Level); w.region(m.Region) }
func (m *ParentClaim) decodeBody(r *reader) {
	m.From = r.ref()
	m.Level = r.u8()
	m.Region = r.region()
}

// Type implements Message.
func (*ChildReport) Type() MsgType { return TChildReport }

// EncodedSize implements Message.
func (*ChildReport) EncodedSize() int { return nodeRefSize + 1 }

func (m *ChildReport) encodeBody(w *writer) { w.ref(m.From); w.u8(m.Degree) }
func (m *ChildReport) decodeBody(r *reader) { m.From = r.ref(); m.Degree = r.u8() }

// Type implements Message.
func (*PromoteGrant) Type() MsgType { return TPromoteGrant }

// EncodedSize implements Message.
func (*PromoteGrant) EncodedSize() int { return nodeRefSize + 1 + regionSize + 2*nodeRefSize }

func (m *PromoteGrant) encodeBody(w *writer) {
	w.ref(m.From)
	w.u8(m.Level)
	w.region(m.Region)
	w.ref(m.Left)
	w.ref(m.Right)
}

func (m *PromoteGrant) decodeBody(r *reader) {
	m.From = r.ref()
	m.Level = r.u8()
	m.Region = r.region()
	m.Left = r.ref()
	m.Right = r.ref()
}

// Type implements Message.
func (*Demote) Type() MsgType { return TDemote }

// EncodedSize implements Message.
func (*Demote) EncodedSize() int { return nodeRefSize + 1 + nodeRefSize }

func (m *Demote) encodeBody(w *writer) { w.ref(m.From); w.u8(m.Level); w.ref(m.Successor) }
func (m *Demote) decodeBody(r *reader) { m.From = r.ref(); m.Level = r.u8(); m.Successor = r.ref() }

// Type implements Message.
func (*BusLinkReq) Type() MsgType { return TBusLinkReq }

// EncodedSize implements Message.
func (*BusLinkReq) EncodedSize() int { return nodeRefSize + 1 }

func (m *BusLinkReq) encodeBody(w *writer) { w.ref(m.From); w.u8(m.Level) }
func (m *BusLinkReq) decodeBody(r *reader) { m.From = r.ref(); m.Level = r.u8() }

// Type implements Message.
func (*BusLinkAck) Type() MsgType { return TBusLinkAck }

// EncodedSize implements Message.
func (*BusLinkAck) EncodedSize() int { return nodeRefSize + 1 + 2*nodeRefSize }

func (m *BusLinkAck) encodeBody(w *writer) {
	w.ref(m.From)
	w.u8(m.Level)
	w.ref(m.Left)
	w.ref(m.Right)
}

func (m *BusLinkAck) decodeBody(r *reader) {
	m.From = r.ref()
	m.Level = r.u8()
	m.Left = r.ref()
	m.Right = r.ref()
}

// Type implements Message.
func (*LookupRequest) Type() MsgType { return TLookupRequest }

// EncodedSize implements Message.
func (m *LookupRequest) EncodedSize() int {
	return nodeRefSize + 8 + 8 + 1 + 1 + 1 + 2 + len(m.Alternates)*nodeRefSize
}

func (m *LookupRequest) encodeBody(w *writer) {
	w.ref(m.Origin)
	w.u64(uint64(m.Target))
	w.u64(m.ReqID)
	w.u8(m.TTL)
	w.u8(m.Hops)
	w.u8(uint8(m.Algo))
	w.refs(m.Alternates)
}

func (m *LookupRequest) decodeBody(r *reader) {
	m.Origin = r.ref()
	m.Target = idspace.ID(r.u64())
	m.ReqID = r.u64()
	m.TTL = r.u8()
	m.Hops = r.u8()
	m.Algo = Algo(r.u8())
	m.Alternates = r.refs()
}

// Type implements Message.
func (*LookupReply) Type() MsgType { return TLookupReply }

// EncodedSize implements Message.
func (*LookupReply) EncodedSize() int { return nodeRefSize + 8 + 1 + nodeRefSize + 1 }

func (m *LookupReply) encodeBody(w *writer) {
	w.ref(m.From)
	w.u64(m.ReqID)
	w.u8(uint8(m.Status))
	w.ref(m.Best)
	w.u8(m.Hops)
}

func (m *LookupReply) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Status = LookupStatus(r.u8())
	m.Best = r.ref()
	m.Hops = r.u8()
}

// Type implements Message.
func (*DHTStore) Type() MsgType { return TDHTStore }

// EncodedSize implements Message.
func (m *DHTStore) EncodedSize() int { return nodeRefSize + 8 + 8 + 2 + len(m.Value) + 8 + 1 }

func (m *DHTStore) encodeBody(w *writer) {
	w.ref(m.From)
	w.u64(m.ReqID)
	w.u64(uint64(m.Key))
	w.bytes(m.Value)
	w.u64(m.Base)
	w.boolean(m.Cond)
}

func (m *DHTStore) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Key = idspace.ID(r.u64())
	m.Value = r.bytesInto(m.Value[:0])
	m.Base = r.u64()
	m.Cond = r.boolean()
}

// Type implements Message.
func (*DHTStoreAck) Type() MsgType { return TDHTStoreAck }

// EncodedSize implements Message.
func (*DHTStoreAck) EncodedSize() int { return nodeRefSize + 8 + 1 + 8 + 8 }

func (m *DHTStoreAck) encodeBody(w *writer) {
	w.ref(m.From)
	w.u64(m.ReqID)
	w.u8(uint8(m.Status))
	w.u64(m.Version)
	w.u64(m.Origin)
}

func (m *DHTStoreAck) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Status = StoreStatus(r.u8())
	m.Version = r.u64()
	m.Origin = r.u64()
}

// Type implements Message.
func (*DHTFetch) Type() MsgType { return TDHTFetch }

// EncodedSize implements Message.
func (*DHTFetch) EncodedSize() int { return nodeRefSize + 8 + 8 + 1 }

func (m *DHTFetch) encodeBody(w *writer) {
	w.ref(m.From)
	w.u64(m.ReqID)
	w.u64(uint64(m.Key))
	w.boolean(m.Local)
}

func (m *DHTFetch) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Key = idspace.ID(r.u64())
	m.Local = r.boolean()
}

// Type implements Message.
func (*DHTFetchReply) Type() MsgType { return TDHTFetchReply }

// EncodedSize implements Message.
func (m *DHTFetchReply) EncodedSize() int { return nodeRefSize + 8 + 1 + 2 + len(m.Value) + 8 + 8 }

func (m *DHTFetchReply) encodeBody(w *writer) {
	w.ref(m.From)
	w.u64(m.ReqID)
	w.boolean(m.Found)
	w.bytes(m.Value)
	w.u64(m.Version)
	w.u64(m.Origin)
}

func (m *DHTFetchReply) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Found = r.boolean()
	m.Value = r.bytesInto(m.Value[:0])
	m.Version = r.u64()
	m.Origin = r.u64()
}

// Type implements Message.
func (*DHTReplicate) Type() MsgType { return TDHTReplicate }

// EncodedSize implements Message.
func (m *DHTReplicate) EncodedSize() int {
	return nodeRefSize + 8 + 8 + 2 + len(m.Value) + 8 + 8 + 1
}

func (m *DHTReplicate) encodeBody(w *writer) {
	w.ref(m.From)
	w.u64(m.ReqID)
	w.u64(uint64(m.Key))
	w.bytes(m.Value)
	w.u64(m.Version)
	w.u64(m.Origin)
	w.boolean(m.Cache)
}

func (m *DHTReplicate) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Key = idspace.ID(r.u64())
	m.Value = r.bytesInto(m.Value[:0])
	m.Version = r.u64()
	m.Origin = r.u64()
	m.Cache = r.boolean()
}

// Type implements Message.
func (*DHTReplicateAck) Type() MsgType { return TDHTReplicateAck }

// EncodedSize implements Message.
func (*DHTReplicateAck) EncodedSize() int { return nodeRefSize + 8 + 1 }

func (m *DHTReplicateAck) encodeBody(w *writer) { w.ref(m.From); w.u64(m.ReqID); w.boolean(m.Stored) }
func (m *DHTReplicateAck) decodeBody(r *reader) {
	m.From = r.ref()
	m.ReqID = r.u64()
	m.Stored = r.boolean()
}

// Type implements Message.
func (*Leave) Type() MsgType { return TLeave }

// EncodedSize implements Message.
func (*Leave) EncodedSize() int { return nodeRefSize }

func (m *Leave) encodeBody(w *writer) { w.ref(m.From) }
func (m *Leave) decodeBody(r *reader) { m.From = r.ref() }

// Type implements Message.
func (*Reparent) Type() MsgType { return TReparent }

// EncodedSize implements Message.
func (*Reparent) EncodedSize() int { return 2*nodeRefSize + 2 }

func (m *Reparent) encodeBody(w *writer) { w.ref(m.From); w.ref(m.NewParent); w.u16(m.AgeDs) }
func (m *Reparent) decodeBody(r *reader) { m.From = r.ref(); m.NewParent = r.ref(); m.AgeDs = r.u16() }

// Type implements Message.
func (*RingProbe) Type() MsgType { return TRingProbe }

// EncodedSize implements Message.
func (*RingProbe) EncodedSize() int { return 2*nodeRefSize + 1 + 1 + 2 }

func (m *RingProbe) encodeBody(w *writer) {
	w.ref(m.From)
	w.ref(m.Origin)
	w.boolean(m.Left)
	w.u8(m.TTL)
	w.u16(m.AgeDs)
}

func (m *RingProbe) decodeBody(r *reader) {
	m.From = r.ref()
	m.Origin = r.ref()
	m.Left = r.boolean()
	m.TTL = r.u8()
	m.AgeDs = r.u16()
}

// Type implements Message.
func (*RingProbeAck) Type() MsgType { return TRingProbeAck }

// EncodedSize implements Message.
func (*RingProbeAck) EncodedSize() int { return nodeRefSize + 1 + 1 }

func (m *RingProbeAck) encodeBody(w *writer) { w.ref(m.From); w.boolean(m.Left); w.u8(m.Hops) }
func (m *RingProbeAck) decodeBody(r *reader) { m.From = r.ref(); m.Left = r.boolean(); m.Hops = r.u8() }

// Type implements Message.
func (*MergeIntro) Type() MsgType { return TMergeIntro }

// EncodedSize implements Message.
func (*MergeIntro) EncodedSize() int { return 2*nodeRefSize + 2 }

func (m *MergeIntro) encodeBody(w *writer) { w.ref(m.From); w.ref(m.Peer); w.u16(m.AgeDs) }
func (m *MergeIntro) decodeBody(r *reader) { m.From = r.ref(); m.Peer = r.ref(); m.AgeDs = r.u16() }
